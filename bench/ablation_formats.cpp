// Ablation for §5.3/§7.2: what does setupMatrix's format adaptation cost?
//
// The LISI adapter accepts CSR, COO/FEM, MSR, and VBR and converts to the
// backend's internal structure, "freeing users from doing it on their own".
// This bench measures the adaptation cost per input format for the paper's
// PDE matrix, plus the raw library-level conversion kernels.
#include <benchmark/benchmark.h>

#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/convert.hpp"

namespace {

using lisi::RArray;
using lisi::SparseStruct;

/// Run setupMatrix with a given format repeatedly through a real component.
template <class FeedFn>
void runSetupBench(benchmark::State& state, int gridN, FeedFn&& feed) {
  lisi::registerSolverComponents();
  lisi::comm::World::run(1, [&](lisi::comm::Comm& comm) {
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = gridN;
    const auto sys = lisi::mesh::assembleGlobal(spec);
    cca::Framework fw;
    fw.instantiate("s", lisi::kPkspComponentClass);
    auto port = fw.getProvidesPortAs<lisi::SparseSolver>(
        "s", lisi::kSparseSolverPortName);
    const long h = lisi::comm::registerHandle(comm);
    port->initialize(h);
    port->setStartRow(0);
    port->setLocalRows(sys.localA.rows);
    port->setGlobalCols(sys.globalN);
    for (auto _ : state) {
      const int rc = feed(*port, sys);
      if (rc != 0) state.SkipWithError("setupMatrix failed");
      benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * sys.localA.nnz());
    lisi::comm::releaseHandle(h);
  });
}

void BM_SetupMatrixCsr(benchmark::State& state) {
  runSetupBench(state, static_cast<int>(state.range(0)),
                [](lisi::SparseSolver& s,
                   const lisi::mesh::Pde5ptLocalSystem& sys) {
                  const int m = sys.localA.rows;
                  return s.setupMatrix(
                      RArray<const double>(sys.localA.values.data(),
                                           sys.localA.nnz()),
                      RArray<const int>(sys.localA.rowPtr.data(), m + 1),
                      RArray<const int>(sys.localA.colIdx.data(),
                                        sys.localA.nnz()),
                      SparseStruct::kCsr, m + 1, sys.localA.nnz());
                });
}
BENCHMARK(BM_SetupMatrixCsr)->Arg(50)->Arg(100)->Arg(200);

void BM_SetupMatrixCoo(benchmark::State& state) {
  const int gridN = static_cast<int>(state.range(0));
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = gridN;
  const auto sys0 = lisi::mesh::assembleGlobal(spec);
  const auto coo = lisi::sparse::csrToCoo(sys0.localA);
  runSetupBench(state, gridN,
                [&coo](lisi::SparseSolver& s,
                       const lisi::mesh::Pde5ptLocalSystem&) {
                  return s.setupMatrix(
                      RArray<const double>(coo.values.data(), coo.nnz()),
                      RArray<const int>(coo.rowIdx.data(), coo.nnz()),
                      RArray<const int>(coo.colIdx.data(), coo.nnz()),
                      coo.nnz());
                });
}
BENCHMARK(BM_SetupMatrixCoo)->Arg(50)->Arg(100)->Arg(200);

void BM_SetupMatrixMsr(benchmark::State& state) {
  const int gridN = static_cast<int>(state.range(0));
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = gridN;
  const auto sys0 = lisi::mesh::assembleGlobal(spec);
  const auto msr = lisi::sparse::csrToMsr(sys0.localA);
  const int m = msr.n;
  // LISI MSR input: values = full MSR val array, rows = pointer section,
  // columns = off-diagonal column indices.
  const std::vector<int> colSection(msr.bindx.begin() + m + 1,
                                    msr.bindx.end());
  runSetupBench(
      state, gridN,
      [&](lisi::SparseSolver& s, const lisi::mesh::Pde5ptLocalSystem&) {
        return s.setupMatrix(
            RArray<const double>(msr.val.data(),
                                 static_cast<int>(msr.val.size())),
            RArray<const int>(msr.bindx.data(), m + 1),
            RArray<const int>(colSection.data(),
                              static_cast<int>(colSection.size())),
            SparseStruct::kMsr, m + 1, static_cast<int>(msr.val.size()));
      });
}
BENCHMARK(BM_SetupMatrixMsr)->Arg(50)->Arg(100)->Arg(200);

// Raw conversion kernels, for reference against the component path.
void BM_RawCooToCsr(benchmark::State& state) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = static_cast<int>(state.range(0));
  const auto sys = lisi::mesh::assembleGlobal(spec);
  const auto coo = lisi::sparse::csrToCoo(sys.localA);
  for (auto _ : state) {
    auto csr = lisi::sparse::cooToCsr(coo);
    benchmark::DoNotOptimize(csr.values.data());
  }
  state.SetItemsProcessed(state.iterations() * coo.nnz());
}
BENCHMARK(BM_RawCooToCsr)->Arg(50)->Arg(100)->Arg(200);

void BM_RawCsrToCsc(benchmark::State& state) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = static_cast<int>(state.range(0));
  const auto sys = lisi::mesh::assembleGlobal(spec);
  for (auto _ : state) {
    auto csc = lisi::sparse::csrToCsc(sys.localA);
    benchmark::DoNotOptimize(csc.values.data());
  }
  state.SetItemsProcessed(state.iterations() * sys.localA.nnz());
}
BENCHMARK(BM_RawCsrToCsc)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
