// Reuse ablation: full per-step operator rebuild vs same-pattern value-only
// re-setup across every LISI backend, in a time-stepping loop.
//
// The scenario is §5.2 use case (d) iterated: each step produces new matrix
// values on an unchanged sparsity pattern (a time-dependent coefficient, a
// quasi-Newton update).  The REBUILD arm instantiates a fresh solver
// component every step, so each step pays the full operator pipeline: halo
// plan construction, symbolic analysis + numeric factorization (slu),
// hierarchy + transfer construction (hymg), preconditioner build (pksp,
// aztec).  The REUSE arm feeds the same component instance, so step >= 1
// takes the structure-aware path: value-only distributed update, numeric
// refactorization over the frozen pattern, hierarchy value refresh,
// preconditioner refresh.
//
// Step 0 (the unavoidable first build) is excluded from both means; both
// arms run back to back inside the SAME world instance with the order
// alternated every rep.  Results go to stdout and BENCH_reuse.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using lisi::comm::Comm;
using lisi::comm::World;

constexpr int kGridN = 31;  // 2^5 - 1 so hymg coarsens 31 -> 15 -> 7 -> 3
constexpr int kSteps = 5;   // steps 1..kSteps-1 are timed

const char* componentClass(const std::string& backend) {
  if (backend == "pksp") return lisi::kPkspComponentClass;
  if (backend == "aztec") return lisi::kAztecComponentClass;
  if (backend == "slu") return lisi::kSluComponentClass;
  return lisi::kHymgComponentClass;
}

/// initialize + distribution + backend parameters (the per-instance part of
/// bench_common's ccaSolve, split out so one instance can serve many steps).
int configureSolver(lisi::SparseSolver& s, long handle,
                    const bench::LocalSystem& ls, const std::string& backend) {
  const auto& sys = ls.sys;
  int rc = s.initialize(handle);
  if (rc == 0) rc = s.setStartRow(sys.startRow);
  if (rc == 0) rc = s.setLocalRows(sys.localA.rows);
  if (rc == 0) rc = s.setGlobalCols(sys.globalN);
  if (backend == "slu") {
    if (rc == 0) rc = s.set("ordering", "rcm");
  } else if (backend == "hymg") {
    if (rc == 0) rc = s.setInt("mg_grid_n", kGridN);
    if (rc == 0) rc = s.setDouble("mg_bx", 3.0);
    if (rc == 0) rc = s.setDouble("tol", bench::kTol);
    if (rc == 0) rc = s.setInt("maxits", 200);
  } else {
    if (rc == 0) rc = s.set("solver", "gmres");
    if (rc == 0) rc = s.set("preconditioner", "ilu");
    if (rc == 0) rc = s.setDouble("tol", bench::kTol);
    if (rc == 0) rc = s.setInt("maxits", bench::kMaxIts);
    if (rc == 0) rc = s.setInt("restart", bench::kRestart);
  }
  return rc;
}

/// One time step: feed scale*A (same pattern), the RHS, and solve.
int stepSolve(lisi::SparseSolver& s, const bench::LocalSystem& ls,
              double scale) {
  const auto& sys = ls.sys;
  const int m = sys.localA.rows;
  lisi::sparse::CsrMatrix a = sys.localA;
  for (double& v : a.values) v *= scale;
  int rc = s.setupMatrix(
      lisi::RArray<const double>(a.values.data(), a.nnz()),
      lisi::RArray<const int>(a.rowPtr.data(), m + 1),
      lisi::RArray<const int>(a.colIdx.data(), a.nnz()),
      lisi::SparseStruct::kCsr, m + 1, a.nnz());
  if (rc == 0) {
    rc = s.setupRHS(lisi::RArray<const double>(sys.localB.data(), m), m, 1);
  }
  std::vector<double> x(static_cast<std::size_t>(m), 0.0);
  std::vector<double> st(lisi::kStatusLength, 0.0);
  if (rc == 0) {
    rc = s.solve(lisi::RArray<double>(x.data(), m),
                 lisi::RArray<double>(st.data(), lisi::kStatusLength), m,
                 lisi::kStatusLength);
  }
  return rc;
}

struct ArmResult {
  double perStepSec = 0.0;  ///< mean seconds per step over steps 1..kSteps-1
  bool ok = true;
};

/// Run kSteps time steps through one backend.  reuse=true keeps one solver
/// component alive for the whole loop; reuse=false rebuilds it every step.
ArmResult runArm(const Comm& c, const std::string& backend,
                 const bench::LocalSystem& ls, bool reuse) {
  lisi::registerSolverComponents();
  cca::Framework fw;
  const long h = lisi::comm::registerHandle(c);
  ArmResult res;
  std::shared_ptr<lisi::SparseSolver> s;
  double sum = 0.0;
  for (int step = 0; step < kSteps; ++step) {
    if (!reuse || step == 0) {
      const std::string name = "s" + std::to_string(step);
      fw.instantiate(name, componentClass(backend));
      s = fw.getProvidesPortAs<lisi::SparseSolver>(name,
                                                   lisi::kSparseSolverPortName);
      if (configureSolver(*s, h, ls, backend) != 0) {
        res.ok = false;
        break;
      }
    }
    // HyMG checks the matrix against its rediscretized stencil, so its step
    // "update" re-feeds the same values; the others get genuinely new ones.
    const double scale = backend == "hymg" ? 1.0 : 1.0 + 0.02 * step;
    c.barrier();
    lisi::WallTimer timer;
    const int rc = stepSolve(*s, ls, scale);
    c.barrier();
    if (step >= 1) sum += timer.seconds();
    res.ok = res.ok && rc == 0;
  }
  lisi::comm::releaseHandle(h);
  res.perStepSec = sum / (kSteps - 1);
  return res;
}

struct Row {
  std::string backend;
  int procs = 0;
  double rebuildSec = 0.0;  ///< mean per-step seconds, full rebuild arm
  double reuseSec = 0.0;    ///< mean per-step seconds, same-pattern arm
  bool ok = true;
};

Row runCase(const std::string& backend, int procs, int reps) {
  Row row;
  row.backend = backend;
  row.procs = procs;
  lisi::RunStats rebuildStats;
  lisi::RunStats reuseStats;
  for (int rep = 0; rep < reps; ++rep) {
    World::run(procs, [&](Comm& c) {
      const bench::LocalSystem ls = bench::assembleFor(c, kGridN);
      ArmResult rebuild, reuse;
      // Alternate the order every rep so warmup / host-speed drift hits
      // both arms equally.
      if (rep % 2 == 0) {
        rebuild = runArm(c, backend, ls, /*reuse=*/false);
        reuse = runArm(c, backend, ls, /*reuse=*/true);
      } else {
        reuse = runArm(c, backend, ls, /*reuse=*/true);
        rebuild = runArm(c, backend, ls, /*reuse=*/false);
      }
      if (c.rank() == 0) {
        rebuildStats.add(rebuild.perStepSec);
        reuseStats.add(reuse.perStepSec);
        row.ok = row.ok && rebuild.ok && reuse.ok;
      }
    });
  }
  row.rebuildSec = rebuildStats.mean();
  row.reuseSec = reuseStats.mean();
  return row;
}

}  // namespace

int main() {
  const int reps = bench::repetitions();
  std::printf(
      "# Reuse ablation: per-step solver time in a %d-step time loop,\n"
      "# full component rebuild vs same-pattern value-only re-setup.\n"
      "# grid %dx%d, rtol %g, %d runs per point (mean over steps 1..%d)\n",
      kSteps, kGridN, kGridN, bench::kTol, reps, kSteps - 1);
  std::printf("%-7s %6s %14s %14s %9s\n", "backend", "procs", "rebuild(s)",
              "reuse(s)", "speedup");

  std::vector<Row> rows;
  for (const std::string backend : {"pksp", "aztec", "slu", "hymg"}) {
    for (const int procs : {1, 4}) {
      rows.push_back(runCase(backend, procs, reps));
    }
  }

  for (const Row& r : rows) {
    const double speedup = r.reuseSec > 0 ? r.rebuildSec / r.reuseSec : 0.0;
    std::printf("%-7s %6d %14.6f %14.6f %8.2fx%s\n", r.backend.c_str(),
                r.procs, r.rebuildSec, r.reuseSec, speedup,
                r.ok ? "" : "  SOLVE FAILED");
  }
  std::printf("# shape check: reuse <= rebuild everywhere; slu and hymg gain "
              "the most (skipped symbolic / hierarchy work).\n");

  std::FILE* f = std::fopen("BENCH_reuse.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_reuse.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_reuse\",\n");
  std::fprintf(f,
               "  \"grid_n\": %d,\n  \"steps\": %d,\n  \"rtol\": %g,\n"
               "  \"reps\": %d,\n",
               kGridN, kSteps, bench::kTol, reps);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"procs\": %d, "
        "\"rebuild_s_per_step\": %.6f, \"reuse_s_per_step\": %.6f, "
        "\"speedup\": %.3f, \"ok\": %s}%s\n",
        r.backend.c_str(), r.procs, r.rebuildSec, r.reuseSec,
        r.reuseSec > 0 ? r.rebuildSec / r.reuseSec : 0.0,
        r.ok ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_reuse.json\n");
  return 0;
}
