// Ablation for §6.3/§6.5: generic string parameter-setting methods vs
// native typed setter calls.
//
// LISI routes every parameter through set(key, value) string pairs (so one
// interface fits every package); the native path calls the package's typed
// setters directly.  This bench measures the per-parameter cost of the
// generic path — the price paid for package independence — and the cost of
// the separate-methods design (setStartRow/setLocalRows/... once) compared
// with passing distribution data on every call.
#include <benchmark/benchmark.h>

#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "pksp/pksp.hpp"

namespace {

/// Generic LISI path: four typical parameters via string keys.
void BM_GenericParamSet(benchmark::State& state) {
  lisi::registerSolverComponents();
  lisi::comm::World::run(1, [&](lisi::comm::Comm& comm) {
    cca::Framework fw;
    fw.instantiate("s", lisi::kPkspComponentClass);
    auto port = fw.getProvidesPortAs<lisi::SparseSolver>(
        "s", lisi::kSparseSolverPortName);
    const long h = lisi::comm::registerHandle(comm);
    port->initialize(h);
    for (auto _ : state) {
      port->set("solver", "gmres");
      port->set("preconditioner", "ilu");
      port->setDouble("tol", 1e-8);
      port->setInt("maxits", 500);
      benchmark::ClobberMemory();
    }
    lisi::comm::releaseHandle(h);
  });
}
BENCHMARK(BM_GenericParamSet);

/// Native path: the same four parameters through PKSP's typed API.
void BM_NativeParamSet(benchmark::State& state) {
  lisi::comm::World::run(1, [&](lisi::comm::Comm& comm) {
    pksp::KSP ksp = nullptr;
    pksp::KSPCreate(comm, &ksp);
    for (auto _ : state) {
      pksp::KSPSetType(ksp, pksp::PKSP_GMRES);
      pksp::KSPSetPCType(ksp, pksp::PKSP_PC_ILU0);
      pksp::KSPSetTolerances(ksp, 1e-8, -1, 500);
      benchmark::ClobberMemory();
    }
    pksp::KSPDestroy(&ksp);
  });
}
BENCHMARK(BM_NativeParamSet);

/// PETSc-style options-string parsing (what KSPSetFromString costs).
void BM_OptionsStringParse(benchmark::State& state) {
  lisi::comm::World::run(1, [&](lisi::comm::Comm& comm) {
    pksp::KSP ksp = nullptr;
    pksp::KSPCreate(comm, &ksp);
    for (auto _ : state) {
      pksp::KSPSetFromString(
          ksp, "-ksp_type gmres -pc_type ilu -ksp_rtol 1e-8 -ksp_max_it 500");
      benchmark::ClobberMemory();
    }
    pksp::KSPDestroy(&ksp);
  });
}
BENCHMARK(BM_OptionsStringParse);

/// The §6.3 design: distribution set once via separate methods.
void BM_SeparateDistributionSetters(benchmark::State& state) {
  lisi::registerSolverComponents();
  lisi::comm::World::run(1, [&](lisi::comm::Comm& comm) {
    cca::Framework fw;
    fw.instantiate("s", lisi::kPkspComponentClass);
    auto port = fw.getProvidesPortAs<lisi::SparseSolver>(
        "s", lisi::kSparseSolverPortName);
    const long h = lisi::comm::registerHandle(comm);
    port->initialize(h);
    for (auto _ : state) {
      port->setStartRow(0);
      port->setLocalRows(10000);
      port->setLocalNNZ(49600);
      port->setGlobalCols(10000);
      benchmark::ClobberMemory();
    }
    lisi::comm::releaseHandle(h);
  });
}
BENCHMARK(BM_SeparateDistributionSetters);

}  // namespace

BENCHMARK_MAIN();
