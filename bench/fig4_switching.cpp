// Figure 4 companion benchmark: the cost of the dynamic solver switching
// the CCA wiring diagram enables.
//
// Figure 4 itself is the component diagram (one driver, three solver
// components, one live link at a time).  This benchmark quantifies what
// run-time switching costs: per-swap disconnect+connect time, component
// instantiation time, and a full solve-through-each-backend sweep with the
// same driver — the operation an application performs when hunting for the
// best solver on a new problem (§1, §2.1).
#include <cstdio>

#include "bench_common.hpp"
#include "lisi/pde_driver.hpp"

int main() {
  const int procs = 4;
  const int gridN = 63;  // odd so the multigrid component can participate
  const int reps = bench::repetitions();
  lisi::registerSolverComponents();
  lisi::registerDriverComponent();

  // --- wiring microcosts (single rank; framework calls are rank-local) ---
  {
    cca::Framework fw;
    fw.instantiate("driver", lisi::kDriverComponentClass);
    fw.instantiate("a", lisi::kPkspComponentClass);
    fw.instantiate("b", lisi::kAztecComponentClass);
    const int wireIters = 100000;
    lisi::WallTimer t;
    for (int i = 0; i < wireIters; ++i) {
      fw.connect("driver", lisi::kSparseSolverPortName, i % 2 ? "a" : "b",
                 lisi::kSparseSolverPortName);
      fw.disconnect("driver", lisi::kSparseSolverPortName);
    }
    std::printf("# Figure 4 switching microcosts\n");
    std::printf("connect+disconnect pair: %.3f us\n",
                1e6 * t.seconds() / wireIters);
    const int instIters = 20000;
    lisi::WallTimer t2;
    for (int i = 0; i < instIters; ++i) {
      const std::string name = "tmp" + std::to_string(i);
      fw.instantiate(name, lisi::kPkspComponentClass);
      fw.destroy(name);
    }
    std::printf("instantiate+destroy:     %.3f us\n",
                1e6 * t2.seconds() / instIters);
  }

  // --- solver hunt: one driver, four backends, swapped at run time -------
  std::printf("\n# solver hunt on the paper PDE, grid %dx%d, %d procs, "
              "%d runs (mean)\n",
              gridN, gridN, procs, reps);
  std::printf("%-12s %12s %8s %14s\n", "component", "solve(s)", "iters",
              "residual");
  struct Case {
    const char* label;
    const char* cls;
    const char* backend;
  };
  const Case cases[] = {
      {"pksp", lisi::kPkspComponentClass, "pksp"},
      {"aztec", lisi::kAztecComponentClass, "aztec"},
      {"slu", lisi::kSluComponentClass, "slu"},
      {"hymg", lisi::kHymgComponentClass, "hymg"},
  };
  for (const Case& c : cases) {
    auto [stats, last] = bench::repeatOnRanks(
        procs, reps, [&](lisi::comm::Comm& comm) {
          const bench::LocalSystem ls = bench::assembleFor(comm, gridN);
          cca::Framework fw;
          fw.instantiate("solver", c.cls);
          auto port = fw.getProvidesPortAs<lisi::SparseSolver>(
              "solver", lisi::kSparseSolverPortName);
          return bench::ccaSolve(comm, *port, ls, c.backend);
        });
    if (!last.ok) {
      std::printf("%-12s  SOLVE FAILED\n", c.label);
      continue;
    }
    std::printf("%-12s %12.4f %8d %14.3e\n", c.label, stats.mean(),
                last.iterations, last.residualNorm);
    std::fflush(stdout);
  }
  std::printf("# all rows solve the same system through the same driver "
              "code; only the component wiring differs.\n");
  return 0;
}
