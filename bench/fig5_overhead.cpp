// Figure 5 reproduction: CCA-component execution time vs native (NonCCA)
// execution time for the PETSc-, Trilinos- and SuperLU-style solvers on
// 1, 2, 4 and 8 processors.
//
// Paper setup (§8): 5-point operator on the unit square, coefficient
// matrix with 199 200 nonzeros (a 200x200 interior grid), ten timed runs
// per point, mean reported.  The expected *shape* is the two curves lying
// nearly on top of each other for every package — the LISI layer adds only
// a small overhead.
//
// Note: this repository's ranks are threads on one node, so times do not
// shrink with rank count the way the paper's cluster times do (on a
// single-core host they grow); the CCA-vs-NonCCA comparison at equal rank
// count — the figure's actual claim — is unaffected.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using bench::LocalSystem;
using bench::SolveSample;

struct SolverCase {
  const char* label;        ///< paper name of the wrapped package
  const char* component;    ///< LISI component class
  const char* backend;      ///< backend tag for ccaSolve parameterization
  SolveSample (*direct)(const lisi::comm::Comm&, const LocalSystem&);
};

}  // namespace

int main() {
  const int gridN = 200;  // 199200 nonzeros, as in the paper
  const int reps = bench::repetitions();
  const SolverCase cases[] = {
      {"PETSc-style (pksp)", lisi::kPkspComponentClass, "pksp",
       &bench::directPksp},
      {"Trilinos-style (aztec)", lisi::kAztecComponentClass, "aztec",
       &bench::directAztec},
      {"SuperLU-style (slu)", lisi::kSluComponentClass, "slu",
       &bench::directSlu},
  };

  lisi::registerSolverComponents();
  std::printf("# Figure 5: CCA vs NonCCA execution time, grid %dx%d "
              "(nnz=%lld), %d runs per point (mean)\n",
              gridN, gridN, lisi::mesh::pde5ptNnz(gridN), reps);
  std::printf("%-24s %6s %12s %12s %14s %8s\n", "solver", "procs", "CCA(s)",
              "NonCCA(s)", "overhead(s)/%", "iters");

  for (const SolverCase& sc : cases) {
    for (int procs : {1, 2, 4, 8}) {
      // CCA path: component instantiated per rank outside the timed region.
      auto [ccaStats, ccaLast] = bench::repeatOnRanks(
          procs, reps, [&](lisi::comm::Comm& comm) {
            const LocalSystem ls = bench::assembleFor(comm, gridN);
            cca::Framework fw;
            fw.instantiate("solver", sc.component);
            auto port = fw.getProvidesPortAs<lisi::SparseSolver>(
                "solver", lisi::kSparseSolverPortName);
            return bench::ccaSolve(comm, *port, ls, sc.backend);
          });
      auto [directStats, directLast] = bench::repeatOnRanks(
          procs, reps, [&](lisi::comm::Comm& comm) {
            const LocalSystem ls = bench::assembleFor(comm, gridN);
            return sc.direct(comm, ls);
          });
      if (!ccaLast.ok || !directLast.ok) {
        std::printf("%-24s %6d  SOLVE FAILED (cca ok=%d direct ok=%d)\n",
                    sc.label, procs, ccaLast.ok, directLast.ok);
        continue;
      }
      const double ccaMean = ccaStats.mean();
      const double directMean = directStats.mean();
      const double overhead = ccaMean - directMean;
      std::printf("%-24s %6d %12.4f %12.4f %8.4f/%5.2f %8d\n", sc.label,
                  procs, ccaMean, directMean, overhead,
                  100.0 * overhead / directMean, ccaLast.iterations);
      std::fflush(stdout);
    }
  }
  std::printf("# shape check: CCA and NonCCA columns should nearly "
              "coincide for every solver (paper: curves overlaid).\n");
  return 0;
}
