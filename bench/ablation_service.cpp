// Service ablation: session-pool throughput vs one serialized World.
//
// The workload is the paper's multi-domain scenario: a burst of L
// independent small solves against one shared operator arrives at once
// (offered load).  Two arms consume the burst:
//
//   * service: a SolverService with two 2-rank sessions.  The burst is
//     queued up front, the session leaders greedily fuse same-operator
//     requests into blocked multi-RHS solves (multi_rhs=blocked), and the
//     two sessions drain the queue concurrently.
//   * serial:  one 4-rank World holding a single pksp component, solving
//     the L requests one setupRHS+solve at a time — the World-bound model
//     the service layer refactors away.
//
// Reported per load level: solves/second and the p50/p99 of per-request
// latency (submit-to-result for the service arm, burst-start-to-result for
// the serial arm — both charge queueing delay to the request).  Results go
// to stdout and BENCH_service.json.
//
// Shape check: the service arm clears >= 1.5x the serialized solves/sec on
// these small systems once the load offers any batching at all — two
// sessions overlap their communication stalls, and each blocked batch pays
// one operator setup + one fused collective stream for up to four lanes.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/service.hpp"
#include "sparse/generate.hpp"
#include "support/timer.hpp"

namespace {

using lisi::comm::Comm;
using lisi::comm::World;

constexpr int kGridN = 16;       // 256 unknowns: small on purpose
constexpr double kTol = 1e-8;
constexpr int kSessions = 2;
constexpr int kRanksPerSession = 2;
constexpr int kBatchWindow = 4;

struct ArmStats {
  double solvesPerSec = 0.0;
  double p50Ms = 0.0;
  double p99Ms = 0.0;
  bool ok = true;
};

double percentileMs(std::vector<double>& latenciesSec, double q) {
  std::sort(latenciesSec.begin(), latenciesSec.end());
  const auto n = latenciesSec.size();
  if (n == 0) return 0.0;
  const auto idx = std::min(n - 1, static_cast<std::size_t>(
                                       q * static_cast<double>(n - 1) + 0.5));
  return latenciesSec[idx] * 1e3;
}

lisi::service::SolveRequest makeRequest(
    const std::shared_ptr<lisi::sparse::CsrMatrix>& a,
    const std::vector<double>& rhs) {
  lisi::service::SolveRequest req;
  req.matrix = a;
  req.rhs = rhs;
  req.backend = "pksp";
  req.operatorId = 1;  // one shared operator: the whole burst is batchable
  req.stringParams = {{"solver", "cg"}, {"preconditioner", "jacobi"}};
  req.doubleParams = {{"tol", kTol}};
  return req;
}

/// Service arm: queue the burst, start the pool, drain.
ArmStats runService(const std::shared_ptr<lisi::sparse::CsrMatrix>& a,
                    const std::vector<double>& rhs, int load) {
  lisi::service::ServiceConfig cfg;
  cfg.sessions = kSessions;
  cfg.ranksPerSession = kRanksPerSession;
  cfg.queueDepth = load;  // the whole burst must be admitted
  cfg.batchWindow = kBatchWindow;
  lisi::service::SolverService svc(cfg);

  std::vector<std::future<lisi::service::SolveResult>> futures;
  futures.reserve(static_cast<std::size_t>(load));
  for (int k = 0; k < load; ++k) {
    auto f = svc.submit(makeRequest(a, rhs));
    if (!f.has_value()) return {0.0, 0.0, 0.0, false};
    futures.push_back(std::move(*f));
  }

  lisi::WallTimer timer;
  svc.start();
  ArmStats stats;
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (auto& f : futures) {
    const lisi::service::SolveResult res = f.get();
    stats.ok = stats.ok && res.ok;
    latencies.push_back(res.queueSeconds + res.solveSeconds);
  }
  const double wall = timer.seconds();
  svc.stop();
  stats.solvesPerSec = static_cast<double>(load) / wall;
  stats.p50Ms = percentileMs(latencies, 0.50);
  stats.p99Ms = percentileMs(latencies, 0.99);
  return stats;
}

/// Serial arm: one 4-rank World, one component, one solve per request.
ArmStats runSerial(const lisi::sparse::CsrMatrix& g,
                   const std::vector<double>& rhs, int load) {
  ArmStats stats;
  std::vector<double> latencies;
  const int worldRanks = kSessions * kRanksPerSession;
  World::run(worldRanks, [&](Comm& c) {
    const int n = g.rows;
    const int base = n / c.size();
    const int rem = n % c.size();
    const int m = base + (c.rank() < rem ? 1 : 0);
    const int start = c.rank() * base + std::min(c.rank(), rem);
    lisi::sparse::CsrMatrix local;
    local.rows = m;
    local.cols = n;
    local.rowPtr.resize(static_cast<std::size_t>(m) + 1);
    const int nzB = g.rowPtr[static_cast<std::size_t>(start)];
    const int nzE = g.rowPtr[static_cast<std::size_t>(start + m)];
    for (int i = 0; i <= m; ++i) {
      local.rowPtr[static_cast<std::size_t>(i)] =
          g.rowPtr[static_cast<std::size_t>(start + i)] - nzB;
    }
    local.colIdx.assign(g.colIdx.begin() + nzB, g.colIdx.begin() + nzE);
    local.values.assign(g.values.begin() + nzB, g.values.begin() + nzE);

    lisi::registerSolverComponents();
    cca::Framework fw;
    const long h = lisi::comm::registerHandle(c);
    fw.instantiate("s", lisi::kPkspComponentClass);
    auto s = fw.getProvidesPortAs<lisi::SparseSolver>(
        "s", lisi::kSparseSolverPortName);
    int rc = s->initialize(h);
    if (rc == 0) rc = s->setStartRow(start);
    if (rc == 0) rc = s->setLocalRows(m);
    if (rc == 0) rc = s->setGlobalCols(n);
    if (rc == 0) rc = s->set("solver", "cg");
    if (rc == 0) rc = s->set("preconditioner", "jacobi");
    if (rc == 0) rc = s->setDouble("tol", kTol);

    c.barrier();
    lisi::WallTimer timer;
    for (int k = 0; k < load && rc == 0; ++k) {
      rc = s->setupMatrix(
          lisi::RArray<const double>(local.values.data(), local.nnz()),
          lisi::RArray<const int>(local.rowPtr.data(), m + 1),
          lisi::RArray<const int>(local.colIdx.data(), local.nnz()),
          lisi::SparseStruct::kCsr, m + 1, local.nnz());
      std::vector<double> b(rhs.begin() + start, rhs.begin() + start + m);
      if (rc == 0) {
        rc = s->setupRHS(lisi::RArray<const double>(b.data(), m), m, 1);
      }
      std::vector<double> x(static_cast<std::size_t>(m), 0.0);
      std::vector<double> st(lisi::kStatusLength, 0.0);
      if (rc == 0) {
        rc = s->solve(lisi::RArray<double>(x.data(), m),
                      lisi::RArray<double>(st.data(), lisi::kStatusLength), m,
                      lisi::kStatusLength);
      }
      if (c.rank() == 0) {
        // Burst semantics: every request arrived at t0, so request k's
        // latency is the time until its serialized turn finished.
        latencies.push_back(timer.seconds());
      }
    }
    const double wall = timer.seconds();
    if (c.rank() == 0) {
      stats.ok = rc == 0;
      stats.solvesPerSec = static_cast<double>(load) / wall;
    }
    lisi::comm::releaseHandle(h);
  });
  stats.p50Ms = percentileMs(latencies, 0.50);
  stats.p99Ms = percentileMs(latencies, 0.99);
  return stats;
}

struct Row {
  int load = 0;
  ArmStats service;
  ArmStats serial;
  [[nodiscard]] double speedup() const {
    return serial.solvesPerSec > 0 ? service.solvesPerSec / serial.solvesPerSec
                                   : 0.0;
  }
  [[nodiscard]] bool ok() const { return service.ok && serial.ok; }
};

}  // namespace

int main() {
  const int reps = bench::repetitions(3);
  auto a = std::make_shared<lisi::sparse::CsrMatrix>(
      lisi::sparse::laplacian2d(kGridN, kGridN));
  std::vector<double> rhs(static_cast<std::size_t>(a->rows));
  for (int i = 0; i < a->rows; ++i) {
    rhs[static_cast<std::size_t>(i)] = 1.0 + 0.25 * (i % 5);
  }

  std::printf(
      "# Service ablation: %dx%d-rank session pool vs one serialized "
      "%d-rank World,\n"
      "# %dx%d grid (n=%d), cg+jacobi rtol %g, batch window %d, "
      "best of %d runs per load.\n",
      kSessions, kRanksPerSession, kSessions * kRanksPerSession, kGridN,
      kGridN, a->rows, kTol, kBatchWindow, reps);
  std::printf("%6s %18s %18s %9s %9s %9s %9s %9s\n", "load", "svc(solve/s)",
              "serial(solve/s)", "speedup", "svc p50", "svc p99", "ser p50",
              "ser p99");

  std::vector<Row> rows;
  for (const int load : {4, 8, 16}) {
    Row best;
    best.load = load;
    // Keep the best run per arm: on an oversubscribed CI host the slow
    // tail is scheduler noise, and the arms are noisy independently.
    for (int rep = 0; rep < reps; ++rep) {
      const ArmStats svc = runService(a, rhs, load);
      const ArmStats ser = runSerial(*a, rhs, load);
      if (svc.solvesPerSec > best.service.solvesPerSec) best.service = svc;
      if (ser.solvesPerSec > best.serial.solvesPerSec) best.serial = ser;
      best.service.ok = best.service.ok && svc.ok;
      best.serial.ok = best.serial.ok && ser.ok;
    }
    rows.push_back(best);
    std::printf("%6d %18.1f %18.1f %8.2fx %7.2fms %7.2fms %7.2fms %7.2fms%s\n",
                load, best.service.solvesPerSec, best.serial.solvesPerSec,
                best.speedup(), best.service.p50Ms, best.service.p99Ms,
                best.serial.p50Ms, best.serial.p99Ms,
                best.ok() ? "" : "  SOLVE FAILED");
  }
  std::printf("# shape check: speedup >= 1.5x once load >= 2x batch window "
              "(two sessions, batched lanes).\n");

  std::FILE* f = std::fopen("BENCH_service.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_service.json for writing\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"service\",\n  \"grid_n\": %d,\n"
               "  \"sessions\": %d,\n  \"ranks_per_session\": %d,\n"
               "  \"batch_window\": %d,\n  \"loads\": [\n",
               kGridN, kSessions, kRanksPerSession, kBatchWindow);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"load\": %d, \"ok\": %s, \"speedup\": %.3f,\n"
        "     \"service\": {\"solves_per_sec\": %.2f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f},\n"
        "     \"serial\": {\"solves_per_sec\": %.2f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f}}%s\n",
        r.load, r.ok() ? "true" : "false", r.speedup(),
        r.service.solvesPerSec, r.service.p50Ms, r.service.p99Ms,
        r.serial.solvesPerSec, r.serial.p50Ms, r.serial.p99Ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return 0;
}
