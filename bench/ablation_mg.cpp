// Multigrid design ablations (the §2.2 multilevel requirement, quantified):
//   * rediscretized vs Galerkin coarse operators,
//   * V- vs W-cycles,
//   * Jacobi vs hybrid Gauss-Seidel smoothing,
// measured as cycles-to-tolerance and wall time on the paper's operator.
#include <cstdio>

#include "comm/comm.hpp"
#include "hymg/hymg.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

namespace {

struct Variant {
  const char* label;
  hymg::Options options;
};

}  // namespace

int main() {
  const int gridN = 127;
  const int ranks = 4;
  const double rtol = 1e-8;

  hymg::Options base;
  Variant variants[] = {
      {"V, redisc, hybrid-GS", base},
      {"V, redisc, Jacobi", base},
      {"V, Galerkin, hybrid-GS", base},
      {"W, redisc, hybrid-GS", base},
      {"V(1,1), redisc, hybrid-GS", base},
  };
  variants[1].options.smoother = hymg::Smoother::kJacobi;
  variants[2].options.coarseOperator = hymg::CoarseOperator::kGalerkin;
  variants[3].options.gamma = 2;
  variants[4].options.preSmooth = 1;
  variants[4].options.postSmooth = 1;

  std::printf("# HyMG ablation on -lap(u) + 3 u_x, grid %dx%d, %d ranks, "
              "rtol %.0e\n",
              gridN, gridN, ranks, rtol);
  std::printf("%-28s %8s %10s %12s %8s\n", "variant", "cycles", "build(s)",
              "solve(s)", "levels");

  for (const Variant& v : variants) {
    lisi::comm::World::run(ranks, [&](lisi::comm::Comm& comm) {
      lisi::WallTimer buildTimer;
      hymg::Solver mg(comm, gridN, hymg::convectionDiffusionStencil(3.0, 0.0),
                      v.options);
      const double buildSec = buildTimer.seconds();
      std::vector<double> b(static_cast<std::size_t>(mg.fineLocalRows()), 1.0);
      std::vector<double> x(b.size(), 0.0);
      lisi::WallTimer solveTimer;
      const hymg::SolveInfo info = mg.solve(std::span<const double>(b),
                                            std::span<double>(x), rtol, 200);
      const double solveSec = solveTimer.seconds();
      if (comm.rank() == 0) {
        if (info.converged) {
          std::printf("%-28s %8d %10.4f %12.4f %8d\n", v.label, info.cycles,
                      buildSec, solveSec, mg.numLevels());
        } else {
          std::printf("%-28s DID NOT CONVERGE (rel %.2e)\n", v.label,
                      info.relResidual);
        }
        std::fflush(stdout);
      }
    });
  }
  return 0;
}
