// Componentization-overhead ablation (the §8 overhead experiment, extended
// to every wrapped backend): each backend solves the same pre-assembled
// system twice per cell —
//   * CCA:    through the lisi.* component's SparseSolver port,
//   * NonCCA: through the package's native API,
// and the delta is the price of the component layer (argument marshalling,
// format adaptation, parameter parsing, virtual dispatch).
//
// The grid is 63x63 (2^6 - 1, so the multigrid backend can coarsen) and the
// cells run at 1 and 4 ranks.  Results go to stdout and BENCH_overhead.json;
// when the build has LISI_OBS=ON the run also writes the merged span/counter
// report (BENCH_overhead_obs.json) and a Chrome trace
// (BENCH_overhead_trace.json) so the overhead can be attributed phase by
// phase — see docs/OBSERVABILITY.md.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"

namespace {

using bench::LocalSystem;
using bench::SolveSample;

struct BackendCase {
  const char* backend;    ///< short tag used in rows and ccaSolve
  const char* component;  ///< LISI component class
  SolveSample (*direct)(const lisi::comm::Comm&, const LocalSystem&);
};

struct Row {
  std::string backend;
  int procs = 0;
  double ccaSec = 0.0;
  double nativeSec = 0.0;
  int ccaIters = 0;
  int nativeIters = 0;
  bool ok = false;
};

}  // namespace

int main() {
  const int gridN = 63;  // 2^6 - 1: valid for every backend including hymg
  const int reps = bench::repetitions();
  const BackendCase cases[] = {
      {"pksp", lisi::kPkspComponentClass, &bench::directPksp},
      {"aztec", lisi::kAztecComponentClass, &bench::directAztec},
      {"slu", lisi::kSluComponentClass, &bench::directSlu},
      {"hymg", lisi::kHymgComponentClass, &bench::directHymg},
  };

  lisi::registerSolverComponents();
  std::printf("# Overhead ablation: CCA vs native per backend, grid %dx%d, "
              "%d runs per cell (mean)\n",
              gridN, gridN, reps);
  std::printf("%-8s %6s %12s %12s %12s %10s %8s\n", "backend", "procs",
              "CCA(s)", "native(s)", "delta(s)", "delta(%)", "iters");

  std::vector<Row> rows;
  for (const BackendCase& bc : cases) {
    for (const int procs : {1, 4}) {
      auto [ccaStats, ccaLast] = bench::repeatOnRanks(
          procs, reps, [&](lisi::comm::Comm& comm) {
            const LocalSystem ls = bench::assembleFor(comm, gridN);
            cca::Framework fw;
            fw.instantiate("solver", bc.component);
            auto port = fw.getProvidesPortAs<lisi::SparseSolver>(
                "solver", lisi::kSparseSolverPortName);
            return bench::ccaSolve(comm, *port, ls, bc.backend);
          });
      auto [nativeStats, nativeLast] = bench::repeatOnRanks(
          procs, reps, [&](lisi::comm::Comm& comm) {
            const LocalSystem ls = bench::assembleFor(comm, gridN);
            return bc.direct(comm, ls);
          });
      Row row;
      row.backend = bc.backend;
      row.procs = procs;
      row.ccaSec = ccaStats.mean();
      row.nativeSec = nativeStats.mean();
      row.ccaIters = ccaLast.iterations;
      row.nativeIters = nativeLast.iterations;
      row.ok = ccaLast.ok && nativeLast.ok;
      rows.push_back(row);
      if (row.ok) {
        const double delta = row.ccaSec - row.nativeSec;
        std::printf("%-8s %6d %12.4f %12.4f %12.4f %10.2f %8d\n",
                    row.backend.c_str(), procs, row.ccaSec, row.nativeSec,
                    delta,
                    row.nativeSec > 0 ? 100.0 * delta / row.nativeSec : 0.0,
                    row.ccaIters);
      } else {
        std::printf("%-8s %6d  SOLVE FAILED (cca ok=%d native ok=%d)\n",
                    row.backend.c_str(), procs, ccaLast.ok, nativeLast.ok);
      }
      std::fflush(stdout);
    }
  }

  std::FILE* f = std::fopen("BENCH_overhead.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_overhead.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_overhead\",\n");
  std::fprintf(f, "  \"grid_n\": %d,\n  \"rtol\": %g,\n  \"reps\": %d,\n",
               gridN, bench::kTol, reps);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double delta = r.ccaSec - r.nativeSec;
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"procs\": %d, \"cca_s\": %.6f, "
        "\"native_s\": %.6f, \"delta_s\": %.6f, \"delta_pct\": %.3f, "
        "\"cca_iters\": %d, \"native_iters\": %d, \"ok\": %s}%s\n",
        r.backend.c_str(), r.procs, r.ccaSec, r.nativeSec, delta,
        r.nativeSec > 0 ? 100.0 * delta / r.nativeSec : 0.0, r.ccaIters,
        r.nativeIters, r.ok ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_overhead.json\n");

  if (lisi::obs::enabled()) {
    const std::string report = lisi::obs::toJson(lisi::obs::collect());
    if (std::FILE* obsF = std::fopen("BENCH_overhead_obs.json", "w")) {
      std::fputs(report.c_str(), obsF);
      std::fclose(obsF);
      std::printf("# wrote BENCH_overhead_obs.json (LISI_OBS span/counter "
                  "report)\n");
    }
    if (lisi::obs::writeChromeTrace("BENCH_overhead_trace.json")) {
      std::printf("# wrote BENCH_overhead_trace.json (load in "
                  "chrome://tracing or ui.perfetto.dev)\n");
    }
  }

  bool anyFailed = false;
  for (const Row& r : rows) anyFailed = anyFailed || !r.ok;
  return anyFailed ? 1 : 0;
}
