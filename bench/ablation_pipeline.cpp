// Pipeline ablation: classic vs pipelined (communication-hiding) Krylov
// iteration time at p = 1..8 rank-threads.
//
// Classic CG spends two reduction rounds per iteration (<p,Ap>, then the
// fused <z,z>/<r,z> pair); pipelined CG folds everything into ONE 3-lane
// split-phase reduction that is begun before — and completed after — the
// preconditioner + SpMV applications of the same iteration.  BiCGStab goes
// from four reduction rounds to two.  On latency-dominated configurations
// the reduction count per iteration is what the solve time tracks, so the
// per-iteration time ratio is the quantity reported.
//
// Protocol: both variants run back to back inside the SAME world instance
// (per-rep interleaving, order alternated every rep) so host-speed drift
// cannot masquerade as a pipeline effect.  Matrix scatter and setup are
// outside the timed region.  Results go to stdout and BENCH_pipeline.json.
//
// CG runs on the SPD 5-point Laplacian (the paper PDE's -3 u_x term makes
// it nonsymmetric, which CG does not admit); BiCGStab runs on the paper's
// convection-diffusion operator itself.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"

namespace {

using lisi::comm::Comm;
using lisi::comm::World;
using lisi::sparse::CsrMatrix;
using lisi::sparse::DistCsrMatrix;

constexpr double kRtol = 1e-8;
constexpr int kMaxIts = 10000;

struct Timed {
  double seconds = 0.0;
  int iterations = 0;
  bool ok = false;
};

Timed solveOnce(const Comm& comm, const DistCsrMatrix& a,
                std::span<const double> b, pksp::PkspType type,
                pksp::PkspPipelineMode mode) {
  using namespace pksp;
  Timed t;
  std::vector<double> x(static_cast<std::size_t>(a.localRows()), 0.0);
  lisi::WallTimer timer;
  KSP ksp = nullptr;
  KSPCreate(comm, &ksp);
  KSPSetOperator(ksp, &a);
  KSPSetType(ksp, type);
  KSPSetPCType(ksp, PKSP_PC_JACOBI);
  KSPSetTolerances(ksp, kRtol, 1e-50, kMaxIts);
  KSPSetPipeline(ksp, mode);
  const int rc = KSPSolve(ksp, b, std::span<double>(x));
  KSPGetIterationNumber(ksp, &t.iterations);
  KSPDestroy(&ksp);
  t.seconds = timer.seconds();
  t.ok = (rc == PKSP_SUCCESS);
  return t;
}

struct Row {
  std::string method;
  int procs = 0;
  double classicSec = 0.0;   // mean solve seconds over reps
  double pipedSec = 0.0;
  int classicIters = 0;
  int pipedIters = 0;
  bool ok = true;
};

Row runCase(const char* method, pksp::PkspType type, const CsrMatrix& global,
            const std::vector<double>& b, int procs, int reps) {
  Row row;
  row.method = method;
  row.procs = procs;
  lisi::RunStats classicStats;
  lisi::RunStats pipedStats;
  for (int rep = 0; rep < reps; ++rep) {
    World::run(procs, [&](Comm& comm) {
      const DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(comm, global);
      const std::size_t n = static_cast<std::size_t>(a.localRows());
      const std::size_t start = static_cast<std::size_t>(a.startRow());
      const std::span<const double> bLocal(b.data() + start, n);
      // Alternate the order every rep so warmup / host-speed drift hits
      // both variants equally.
      Timed first, second;
      if (rep % 2 == 0) {
        first = solveOnce(comm, a, bLocal, type, pksp::PKSP_PIPELINE_OFF);
        second = solveOnce(comm, a, bLocal, type, pksp::PKSP_PIPELINE_ON);
      } else {
        second = solveOnce(comm, a, bLocal, type, pksp::PKSP_PIPELINE_ON);
        first = solveOnce(comm, a, bLocal, type, pksp::PKSP_PIPELINE_OFF);
      }
      if (comm.rank() == 0) {
        classicStats.add(first.seconds);
        pipedStats.add(second.seconds);
        row.classicIters = first.iterations;
        row.pipedIters = second.iterations;
        row.ok = row.ok && first.ok && second.ok;
      }
    });
  }
  row.classicSec = classicStats.mean();
  row.pipedSec = pipedStats.mean();
  return row;
}

double perItUs(double sec, int iters) {
  return iters > 0 ? 1e6 * sec / iters : 0.0;
}

}  // namespace

int main() {
  // 4096 unknowns: small enough per rank that the per-iteration reduction
  // rounds (thread wakeups under MiniMPI) dominate over AXPY/SpMV work —
  // the latency-bound regime the pipelined loops target.
  const int gridN = 64;
  const int reps = bench::repetitions();

  // SPD system for CG.
  const CsrMatrix spd = lisi::sparse::laplacian2d(gridN, gridN);
  std::vector<double> bSpd(static_cast<std::size_t>(spd.rows), 0.0);
  {
    const std::vector<double> ones(bSpd.size(), 1.0);
    lisi::sparse::spmv(spd, std::span<const double>(ones),
                       std::span<double>(bSpd));
  }
  // The paper's nonsymmetric operator for BiCGStab.
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = gridN;
  const auto paper = lisi::mesh::assembleGlobal(spec);

  std::printf("# Pipeline ablation: classic vs pipelined Krylov loops, "
              "grid %dx%d, rtol %g, %d runs per point (mean)\n",
              gridN, gridN, kRtol, reps);
  std::printf("%-9s %6s %12s %12s %8s %8s %12s %12s %8s\n", "method", "procs",
              "classic(s)", "piped(s)", "cl.its", "pi.its", "cl.us/it",
              "pi.us/it", "ratio");

  std::vector<Row> rows;
  for (int procs = 1; procs <= 8; ++procs) {
    rows.push_back(runCase("cg", pksp::PKSP_CG, spd, bSpd, procs, reps));
    rows.push_back(runCase("bicgstab", pksp::PKSP_BICGSTAB, paper.localA,
                           paper.localB, procs, reps));
  }

  for (const Row& r : rows) {
    const double clUs = perItUs(r.classicSec, r.classicIters);
    const double piUs = perItUs(r.pipedSec, r.pipedIters);
    std::printf("%-9s %6d %12.4f %12.4f %8d %8d %12.2f %12.2f %8.3f%s\n",
                r.method.c_str(), r.procs, r.classicSec, r.pipedSec,
                r.classicIters, r.pipedIters, clUs, piUs,
                clUs > 0 ? piUs / clUs : 0.0, r.ok ? "" : "  SOLVE FAILED");
  }
  std::printf("# shape check: piped us/it <= classic us/it once reductions "
              "dominate (p >= 4); iteration counts match within 1.\n");

  std::FILE* f = std::fopen("BENCH_pipeline.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_pipeline.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_pipeline\",\n");
  std::fprintf(f, "  \"grid_n\": %d,\n  \"rtol\": %g,\n  \"reps\": %d,\n",
               gridN, kRtol, reps);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"procs\": %d, \"classic_s\": %.6f, "
        "\"pipelined_s\": %.6f, \"classic_iters\": %d, \"pipelined_iters\": "
        "%d, \"classic_us_per_it\": %.3f, \"pipelined_us_per_it\": %.3f, "
        "\"ok\": %s}%s\n",
        r.method.c_str(), r.procs, r.classicSec, r.pipedSec, r.classicIters,
        r.pipedIters, perItUs(r.classicSec, r.classicIters),
        perItUs(r.pipedSec, r.pipedIters), r.ok ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_pipeline.json\n");
  return 0;
}
