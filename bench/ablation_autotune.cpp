// Autotune ablation: tuned (LISI_TUNE=auto, the shipped policy) vs default
// (LISI_TUNE=off) solve time across a matrix zoo, at 1 and 4 ranks.
//
// Protocol per (matrix, procs, arm): one untimed warmup solve — for the
// tuned arm this is where the one-off probe runs and the decision enters
// the fingerprint cache; entries under the kAuto size gate stay on the
// default config by design — then repeated solves of the SAME operator
// (kSameOperator replays), timed as one region.  Replay must be free: the
// probe-measurement counter is sampled around the timed region and any
// nonzero delta fails the run loudly.  Arms alternate order every rep so
// warmup and host-speed drift hit both equally.
//
// The solver is PKSP CG + Jacobi (every zoo entry is SPD), whose iteration
// cost is SpMV-dominated — the quantity the kernel/schedule decision can
// actually move.  Results go to stdout and BENCH_autotune.json.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sparse/generate.hpp"
#include "sparse/matrix_market.hpp"
#include "support/rng.hpp"
#include "tune/tune.hpp"

#ifndef LISI_BENCH_DATA_DIR
#define LISI_BENCH_DATA_DIR "tests/data"
#endif

namespace {

using lisi::comm::Comm;
using lisi::comm::World;
using lisi::sparse::CsrMatrix;

/// Timed replay solves per region: more for small matrices so the region
/// stays measurable (a 64-row-per-rank solve takes well under a
/// millisecond; 3 of them would drown in scheduler noise).
int timedSolves(long long nnz) {
  const long long n = 2'000'000 / (nnz > 0 ? nnz : 1);
  return static_cast<int>(n < 3 ? 3 : (n > 40 ? 40 : n));
}

struct ZooEntry {
  std::string name;
  std::string cls;  ///< matrix class for the per-class geomean
  CsrMatrix a;
};

std::vector<ZooEntry> buildZoo() {
  std::vector<ZooEntry> zoo;
  zoo.push_back({"lap5_160", "stencil5", lisi::sparse::laplacian2d(160, 160)});
  zoo.push_back({"lap9_140", "stencil9", lisi::sparse::laplacian2d9(140, 140)});
  lisi::Rng prng(2026);
  zoo.push_back({"perm9_120", "permuted_fem",
                 lisi::sparse::permuteSymmetric(
                     lisi::sparse::laplacian2d9(120, 120), prng)});
  zoo.push_back(
      {"block4_64", "block_fem", lisi::sparse::blockLaplacian2d(64, 64, 4)});
  zoo.push_back({"perm9pt16_mtx", "mtx_import",
                 lisi::sparse::readMatrixMarket(std::string(LISI_BENCH_DATA_DIR) +
                                                "/perm9pt16.mtx")});
  return zoo;
}

/// Rows [start, start+m) of `global` as a local CSR block, global columns.
CsrMatrix rowSlice(const CsrMatrix& global, int start, int m) {
  CsrMatrix a;
  a.rows = m;
  a.cols = global.cols;
  a.rowPtr.assign(static_cast<std::size_t>(m) + 1, 0);
  for (int i = 0; i < m; ++i) {
    const int b = global.rowPtr[static_cast<std::size_t>(start + i)];
    const int e = global.rowPtr[static_cast<std::size_t>(start + i) + 1];
    a.rowPtr[static_cast<std::size_t>(i) + 1] =
        a.rowPtr[static_cast<std::size_t>(i)] + (e - b);
    for (int k = b; k < e; ++k) {
      a.colIdx.push_back(global.colIdx[static_cast<std::size_t>(k)]);
      a.values.push_back(global.values[static_cast<std::size_t>(k)]);
    }
  }
  return a;
}

void myShare(int n, int rank, int size, int& start, int& m) {
  const int base = n / size;
  const int rem = n % size;
  start = rank * base + (rank < rem ? rank : rem);
  m = base + (rank < rem ? 1 : 0);
}

struct ArmResult {
  double seconds = 0.0;  ///< timed region (kTimedSolves solves), rank 0
  bool ok = true;
  bool replayFree = true;  ///< zero probe measurements in the timed region
};

/// One arm: fresh component, feed the operator once, warm solve, then the
/// timed replay solves.
ArmResult runArm(const Comm& c, const CsrMatrix& global, bool tuned) {
  lisi::registerSolverComponents();
  cca::Framework fw;
  const long h = lisi::comm::registerHandle(c);
  ArmResult res;
  int start = 0, m = 0;
  myShare(global.rows, c.rank(), c.size(), start, m);
  const CsrMatrix a = rowSlice(global, start, m);

  static int counter = 0;
  const std::string name = "at" + std::to_string(counter++);
  fw.instantiate(name, lisi::kPkspComponentClass);
  auto s = fw.getProvidesPortAs<lisi::SparseSolver>(
      name, lisi::kSparseSolverPortName);
  int rc = s->initialize(h);
  if (rc == 0) rc = s->setStartRow(start);
  if (rc == 0) rc = s->setLocalRows(m);
  if (rc == 0) rc = s->setGlobalCols(global.cols);
  if (rc == 0) rc = s->set("solver", "cg");
  if (rc == 0) rc = s->set("preconditioner", "jacobi");
  if (rc == 0) rc = s->setDouble("tol", bench::kTol);
  if (rc == 0) rc = s->setInt("maxits", bench::kMaxIts);
  if (rc == 0) rc = s->set("tune", tuned ? "auto" : "off");
  if (rc == 0) {
    rc = s->setupMatrix(
        lisi::RArray<const double>(a.values.data(), a.nnz()),
        lisi::RArray<const int>(a.rowPtr.data(), m + 1),
        lisi::RArray<const int>(a.colIdx.data(), a.nnz()),
        lisi::SparseStruct::kCsr, m + 1, a.nnz());
  }
  const std::vector<double> b(static_cast<std::size_t>(m), 1.0);
  if (rc == 0) {
    rc = s->setupRHS(lisi::RArray<const double>(b.data(), m), m, 1);
  }
  std::vector<double> x(static_cast<std::size_t>(m), 0.0);
  std::vector<double> st(lisi::kStatusLength, 0.0);
  const auto solveOnce = [&] {
    return s->solve(lisi::RArray<double>(x.data(), m),
                    lisi::RArray<double>(st.data(), lisi::kStatusLength), m,
                    lisi::kStatusLength);
  };
  // Warmup: the tuned arm probes and caches here, outside the timed region.
  if (rc == 0) rc = solveOnce();

  c.barrier();
  const long long probes0 = lisi::tune::stats().probeMeasurements;
  c.barrier();
  const int nSolves = timedSolves(global.nnz());
  lisi::WallTimer timer;
  for (int rep = 0; rep < nSolves && rc == 0; ++rep) rc = solveOnce();
  c.barrier();
  res.seconds = timer.seconds();
  const long long probes1 = lisi::tune::stats().probeMeasurements;
  c.barrier();
  res.replayFree = probes1 == probes0;
  res.ok = rc == 0 && st[lisi::kStatusConverged] == 1.0;
  lisi::comm::releaseHandle(h);
  return res;
}

struct Row {
  std::string name;
  std::string cls;
  int procs = 0;
  long long nnz = 0;
  double defaultSec = 0.0;
  double tunedSec = 0.0;
  bool ok = true;
  bool replayFree = true;
  [[nodiscard]] double speedup() const {
    return tunedSec > 0 ? defaultSec / tunedSec : 0.0;
  }
};

Row runCase(const ZooEntry& z, int procs, int reps) {
  Row row;
  row.name = z.name;
  row.cls = z.cls;
  row.procs = procs;
  row.nnz = z.a.nnz();
  lisi::RunStats defStats, tunedStats;
  for (int rep = 0; rep < reps; ++rep) {
    World::run(procs, [&](Comm& c) {
      ArmResult def, tun;
      if (rep % 2 == 0) {
        def = runArm(c, z.a, /*tuned=*/false);
        tun = runArm(c, z.a, /*tuned=*/true);
      } else {
        tun = runArm(c, z.a, /*tuned=*/true);
        def = runArm(c, z.a, /*tuned=*/false);
      }
      if (c.rank() == 0) {
        defStats.add(def.seconds);
        tunedStats.add(tun.seconds);
        row.ok = row.ok && def.ok && tun.ok;
        row.replayFree = row.replayFree && tun.replayFree;
      }
    });
  }
  // Best-of-reps: both arms run identical work per region, so the minimum
  // is the least-scheduler-noise estimate on an oversubscribed host (same
  // discipline as the tuner's own probes).
  row.defaultSec = defStats.min();
  row.tunedSec = tunedStats.min();
  return row;
}

}  // namespace

int main() {
  const int reps = bench::repetitions();
  const std::vector<ZooEntry> zoo = buildZoo();
  std::printf(
      "# Autotune ablation: tuned (LISI_TUNE=auto) vs default solve time,\n"
      "# PKSP CG+Jacobi, 3-40 replay solves per timed region (more for\n"
      "# small matrices), best of %d reps.  Probes run in an untimed\n"
      "# warmup solve; a probe inside the timed region marks the row\n"
      "# PROBED-IN-TIMED-REGION and fails the run.  Entries under the\n"
      "# kAuto size gate (%lld nnz) keep the default config by design.\n",
      reps, lisi::tune::kAutoMinGlobalNnz);
  std::printf("%-14s %-12s %6s %9s %12s %12s %9s\n", "matrix", "class",
              "procs", "nnz", "default(s)", "tuned(s)", "speedup");

  std::vector<Row> rows;
  for (const ZooEntry& z : zoo) {
    for (const int procs : {1, 4}) {
      rows.push_back(runCase(z, procs, reps));
    }
  }

  bool allOk = true;
  for (const Row& r : rows) {
    allOk = allOk && r.ok && r.replayFree;
    std::printf("%-14s %-12s %6d %9lld %12.6f %12.6f %8.3fx%s%s\n",
                r.name.c_str(), r.cls.c_str(), r.procs, r.nnz, r.defaultSec,
                r.tunedSec, r.speedup(), r.ok ? "" : "  SOLVE FAILED",
                r.replayFree ? "" : "  PROBED-IN-TIMED-REGION");
  }

  // Per-class geomean at p=4 — the headline number: the tuned decision must
  // buy a real speedup on at least one class and cost (almost) nothing on
  // the rest.
  std::printf("# geomean tuned speedup by class at procs=4:\n");
  for (const ZooEntry& z : zoo) {
    double logSum = 0.0;
    int n = 0;
    for (const Row& r : rows) {
      if (r.cls == z.cls && r.procs == 4 && r.speedup() > 0) {
        logSum += std::log(r.speedup());
        ++n;
      }
    }
    if (n > 0) {
      std::printf("#   %-12s %.3fx\n", z.cls.c_str(),
                  std::exp(logSum / n));
    }
  }

  std::FILE* f = std::fopen("BENCH_autotune.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_autotune.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_autotune\",\n");
  std::fprintf(f, "  \"rtol\": %g,\n  \"reps\": %d,\n", bench::kTol, reps);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"matrix\": \"%s\", \"class\": \"%s\", \"procs\": %d, "
        "\"nnz\": %lld, \"timed_solves\": %d, \"default_s\": %.6f, "
        "\"tuned_s\": %.6f, \"speedup\": %.3f, \"replay_free\": %s, "
        "\"ok\": %s}%s\n",
        r.name.c_str(), r.cls.c_str(), r.procs, r.nnz, timedSolves(r.nnz),
        r.defaultSec, r.tunedSec, r.speedup(),
        r.replayFree ? "true" : "false", r.ok ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_autotune.json\n");
  return allOk ? 0 : 1;
}
