// Mixed-precision ablation: precision=mixed (float32 error-correction side
// under float64 outer iteration) vs precision=double (the historical
// all-float64 path) time-to-rtol across backends, at 1 and 4 ranks.
//
// Protocol per (entry, procs, arm): one untimed warmup solve — the
// preconditioner factors / MG hierarchy mirrors build there, outside the
// timed region, identically for both arms — then repeated FULL solves of
// the same system from a zero guess (each one is a complete time-to-rtol
// run; kSameOperator keeps the preconditioner), timed as one region.  Arms
// alternate order every rep so warmup and host-speed drift hit both
// equally.  The lisi::prec byte counters are sampled around the timed
// region: the mixed arm must move fewer value bytes (float32 halves the
// error-correction side's traffic), and both arms must converge — mixed is
// a speed path, never an accuracy downgrade.
//
// The entries are sized ABOVE per-core cache so the halved value bandwidth
// is visible: float32 only pays when the working set streams.  Results go
// to stdout and BENCH_precision.json.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sparse/ops.hpp"

namespace {

using lisi::comm::Comm;
using lisi::comm::World;

struct Entry {
  std::string name;
  std::string cls;       ///< component class
  std::string solver;    ///< pksp only
  std::string pc;        ///< pksp only
  int gridN = 0;         ///< paper PDE grid (hymg: must be 2^k - 1)
  std::string smoother;  ///< hymg only ("" = component default)
  /// Full solves per timed region: each is a complete Krylov/MG run, sized
  /// per entry so every timed region lasts seconds — a sub-second region
  /// drowns in scheduler noise on an oversubscribed host.
  int timedSolves = 3;
};

std::vector<Entry> buildZoo() {
  return {
      // GMRES(30)+ILU(0): the float32 path is the ILU triangular sweeps.
      {"pksp_ilu_240", lisi::kPkspComponentClass, "gmres", "ilu", 240, ""},
      // GMRES(30)+SOR: the float32 path is the SOR sweeps.  (GMRES, not
      // BiCGStab: BiCGStab's short recurrences amplify preconditioner
      // perturbation into extra iterations; GMRES keeps the count stable.)
      {"pksp_sor_200", lisi::kPkspComponentClass, "gmres", "sor", 200, ""},
      // HyMG: the whole cycle (smoothers, transfers, coarse LU) runs
      // float32 inside the float64 defect-correction loop.  gs exercises
      // the sequential hybrid-GS sweeps; jacobi the vectorizable path.
      {"hymg_gs_511", lisi::kHymgComponentClass, "", "", 511, "gs", 12},
      {"hymg_jac_511", lisi::kHymgComponentClass, "", "", 511, "jacobi", 12},
  };
}

struct ArmResult {
  double seconds = 0.0;  ///< timed region (kTimedSolves solves), rank 0
  int iterations = 0;
  double relResidual = 0.0;
  long long bytesLow = 0;
  long long bytesHigh = 0;
  bool ok = true;
};

/// One arm: fresh component, feed the operator, warm solve, then the timed
/// full solves from a zero guess.
ArmResult runArm(const Comm& c, const Entry& e, bool mixed) {
  lisi::registerSolverComponents();
  cca::Framework fw;
  const long h = lisi::comm::registerHandle(c);
  ArmResult res;
  const bench::LocalSystem ls = bench::assembleFor(c, e.gridN);
  const auto& sys = ls.sys;
  const int m = sys.localA.rows;

  static int counter = 0;
  const std::string name = "prec" + std::to_string(counter++);
  fw.instantiate(name, e.cls);
  auto s = fw.getProvidesPortAs<lisi::SparseSolver>(
      name, lisi::kSparseSolverPortName);
  int rc = s->initialize(h);
  if (rc == 0) rc = s->setStartRow(sys.startRow);
  if (rc == 0) rc = s->setLocalRows(m);
  if (rc == 0) rc = s->setGlobalCols(sys.globalN);
  if (rc == 0) rc = s->set("tune", "off");  // isolate the precision effect
  if (rc == 0) rc = s->set("precision", mixed ? "mixed" : "double");
  if (e.cls == std::string(lisi::kHymgComponentClass)) {
    if (rc == 0) rc = s->setInt("mg_grid_n", e.gridN);
    if (rc == 0) rc = s->setDouble("mg_bx", 3.0);
    if (rc == 0) rc = s->setDouble("tol", bench::kTol);
    if (rc == 0) rc = s->setInt("maxits", 200);
    if (rc == 0 && !e.smoother.empty()) rc = s->set("mg_smoother", e.smoother);
  } else {
    if (rc == 0) rc = s->set("solver", e.solver);
    if (rc == 0) rc = s->set("preconditioner", e.pc);
    if (rc == 0) rc = s->setDouble("tol", bench::kTol);
    if (rc == 0) rc = s->setInt("maxits", bench::kMaxIts);
    if (rc == 0) rc = s->setInt("restart", bench::kRestart);
  }
  if (rc == 0) {
    rc = s->setupMatrix(
        lisi::RArray<const double>(sys.localA.values.data(), sys.localA.nnz()),
        lisi::RArray<const int>(sys.localA.rowPtr.data(), m + 1),
        lisi::RArray<const int>(sys.localA.colIdx.data(), sys.localA.nnz()),
        lisi::SparseStruct::kCsr, m + 1, sys.localA.nnz());
  }
  if (rc == 0) {
    rc = s->setupRHS(lisi::RArray<const double>(sys.localB.data(), m), m, 1);
  }
  std::vector<double> x(static_cast<std::size_t>(m), 0.0);
  std::vector<double> st(lisi::kStatusLength, 0.0);
  const auto solveOnce = [&] {
    std::fill(x.begin(), x.end(), 0.0);  // every solve is a full run
    return s->solve(lisi::RArray<double>(x.data(), m),
                    lisi::RArray<double>(st.data(), lisi::kStatusLength), m,
                    lisi::kStatusLength);
  };
  // Warmup: preconditioner factors / float32 mirrors build here.
  if (rc == 0) rc = solveOnce();

  c.barrier();
  const lisi::prec::Stats bytes0 = lisi::prec::stats();
  c.barrier();
  lisi::WallTimer timer;
  for (int rep = 0; rep < e.timedSolves && rc == 0; ++rep) rc = solveOnce();
  c.barrier();
  res.seconds = timer.seconds();
  const lisi::prec::Stats bytes1 = lisi::prec::stats();
  c.barrier();
  res.bytesLow = bytes1.bytesLow - bytes0.bytesLow;
  res.bytesHigh = bytes1.bytesHigh - bytes0.bytesHigh;
  res.iterations = static_cast<int>(st[lisi::kStatusIterations]);
  const double bnorm =
      lisi::sparse::distNorm2(c, std::span<const double>(sys.localB));
  res.relResidual = st[lisi::kStatusResidualNorm] / bnorm;
  res.ok = rc == 0 && st[lisi::kStatusConverged] == 1.0;
  lisi::comm::releaseHandle(h);
  return res;
}

struct Row {
  std::string name;
  int procs = 0;
  long long nnz = 0;
  int timedSolves = 0;
  double doubleSec = 0.0;
  double mixedSec = 0.0;
  int doubleIters = 0;
  int mixedIters = 0;
  double doubleRel = 0.0;
  double mixedRel = 0.0;
  long long mixedBytesLow = 0;
  long long mixedBytesHigh = 0;
  long long doubleBytesHigh = 0;
  bool ok = true;
  [[nodiscard]] double speedup() const {
    return mixedSec > 0 ? doubleSec / mixedSec : 0.0;
  }
  /// Total value bytes, mixed over double: < 1 means the float32 side
  /// measurably cut the traffic.
  [[nodiscard]] double bytesRatio() const {
    return doubleBytesHigh > 0 ? static_cast<double>(mixedBytesLow +
                                                     mixedBytesHigh) /
                                     static_cast<double>(doubleBytesHigh)
                               : 0.0;
  }
};

Row runCase(const Entry& e, int procs, int reps) {
  Row row;
  row.name = e.name;
  row.procs = procs;
  row.timedSolves = e.timedSolves;
  lisi::RunStats dblStats, mixStats;
  for (int rep = 0; rep < reps; ++rep) {
    World::run(procs, [&](Comm& c) {
      ArmResult dbl, mix;
      if (rep % 2 == 0) {
        dbl = runArm(c, e, /*mixed=*/false);
        mix = runArm(c, e, /*mixed=*/true);
      } else {
        mix = runArm(c, e, /*mixed=*/true);
        dbl = runArm(c, e, /*mixed=*/false);
      }
      if (c.rank() == 0) {
        dblStats.add(dbl.seconds);
        mixStats.add(mix.seconds);
        row.doubleIters = dbl.iterations;
        row.mixedIters = mix.iterations;
        row.doubleRel = dbl.relResidual;
        row.mixedRel = mix.relResidual;
        row.mixedBytesLow = mix.bytesLow;
        row.mixedBytesHigh = mix.bytesHigh;
        row.doubleBytesHigh = dbl.bytesHigh;
        row.ok = row.ok && dbl.ok && mix.ok;
      }
    });
    if (row.nnz == 0) {
      // nnz of the global operator, once (gridN^2 interior 5-point rows).
      const long long n = e.gridN;
      row.nnz = 5 * n * n - 4 * n;
    }
  }
  // Best-of-reps: both arms run identical work per region, so the minimum
  // is the least-scheduler-noise estimate on an oversubscribed host.
  row.doubleSec = dblStats.min();
  row.mixedSec = mixStats.min();
  return row;
}

}  // namespace

int main() {
  const int reps = bench::repetitions();
  const std::vector<Entry> zoo = buildZoo();
  std::printf(
      "# Mixed-precision ablation: precision=mixed vs precision=double\n"
      "# time-to-rtol (full solves per timed region sized per entry, best\n"
      "# of %d reps, rtol %g).  bytes = value bytes moved in the timed\n"
      "# region (process-wide, all ranks); ratio = mixed / double total.\n",
      reps, bench::kTol);
  std::printf("%-14s %6s %9s %11s %11s %8s %6s %6s %7s\n", "entry", "procs",
              "nnz", "double(s)", "mixed(s)", "speedup", "itsD", "itsM",
              "bytes");

  std::vector<Row> rows;
  for (const Entry& e : zoo) {
    for (const int procs : {1, 4}) {
      rows.push_back(runCase(e, procs, reps));
    }
  }

  bool allOk = true;
  for (const Row& r : rows) {
    allOk = allOk && r.ok;
    std::printf("%-14s %6d %9lld %11.6f %11.6f %7.3fx %6d %6d %6.3fx%s\n",
                r.name.c_str(), r.procs, r.nnz, r.doubleSec, r.mixedSec,
                r.speedup(), r.doubleIters, r.mixedIters, r.bytesRatio(),
                r.ok ? "" : "  SOLVE FAILED");
  }

  std::FILE* f = std::fopen("BENCH_precision.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_precision.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_precision\",\n");
  std::fprintf(f, "  \"rtol\": %g,\n  \"reps\": %d,\n", bench::kTol, reps);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"entry\": \"%s\", \"procs\": %d, \"nnz\": %lld, "
        "\"timed_solves\": %d, "
        "\"double_s\": %.6f, \"mixed_s\": %.6f, \"speedup\": %.3f, "
        "\"double_iters\": %d, \"mixed_iters\": %d, "
        "\"double_rel_residual\": %.3e, \"mixed_rel_residual\": %.3e, "
        "\"mixed_bytes_low\": %lld, \"mixed_bytes_high\": %lld, "
        "\"double_bytes_high\": %lld, \"bytes_ratio\": %.3f, "
        "\"ok\": %s}%s\n",
        r.name.c_str(), r.procs, r.nnz, r.timedSolves, r.doubleSec, r.mixedSec,
        r.speedup(),
        r.doubleIters, r.mixedIters, r.doubleRel, r.mixedRel, r.mixedBytesLow,
        r.mixedBytesHigh, r.doubleBytesHigh, r.bytesRatio(),
        r.ok ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_precision.json\n");
  return allOk ? 0 : 1;
}
