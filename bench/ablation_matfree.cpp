// Ablation for §5.5: the cost of the matrix-free callback path.
//
// A matrix-free solve routes every operator application through the
// application's MatrixFree port (virtual dispatch + argument wrapping)
// instead of the solver's own assembled SpMV.  This bench measures the
// per-application overhead and a whole-solve comparison.
#include <benchmark/benchmark.h>

#include "comm/comm.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/pde5pt.hpp"
#include "pksp/pksp.hpp"
#include "sparse/dist_csr.hpp"

namespace {

/// Application-side operator implementation used by the callback path.
class BenchMatrixFree final : public lisi::MatrixFree {
 public:
  explicit BenchMatrixFree(const lisi::sparse::DistCsrMatrix* a) : a_(a) {}
  int matMult(lisi::OperatorId id, lisi::RArray<const double> x,
              lisi::RArray<double> y, int length) override {
    if (id != lisi::OperatorId::kMatrix) return 1;
    a_->spmv(std::span<const double>(x.data(), static_cast<std::size_t>(length)),
             std::span<double>(y.data(), static_cast<std::size_t>(length)));
    return 0;
  }

 private:
  const lisi::sparse::DistCsrMatrix* a_;
};

void BM_SpmvAssembled(benchmark::State& state) {
  lisi::comm::World::run(1, [&](lisi::comm::Comm& comm) {
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = static_cast<int>(state.range(0));
    const auto sys = lisi::mesh::assembleGlobal(spec);
    const lisi::sparse::DistCsrMatrix a(comm, sys.globalN, sys.globalN, 0,
                                        sys.localA);
    std::vector<double> x(static_cast<std::size_t>(sys.globalN), 1.0);
    std::vector<double> y(x.size());
    for (auto _ : state) {
      a.spmv(std::span<const double>(x), std::span<double>(y));
      benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * sys.localA.nnz());
  });
}
BENCHMARK(BM_SpmvAssembled)->Arg(100)->Arg(200);

void BM_SpmvThroughMatrixFreePort(benchmark::State& state) {
  lisi::comm::World::run(1, [&](lisi::comm::Comm& comm) {
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = static_cast<int>(state.range(0));
    const auto sys = lisi::mesh::assembleGlobal(spec);
    const lisi::sparse::DistCsrMatrix a(comm, sys.globalN, sys.globalN, 0,
                                        sys.localA);
    BenchMatrixFree mf(&a);
    lisi::MatrixFree* port = &mf;  // virtual dispatch, as the solver sees it
    std::vector<double> x(static_cast<std::size_t>(sys.globalN), 1.0);
    std::vector<double> y(x.size());
    const int n = sys.globalN;
    for (auto _ : state) {
      port->matMult(lisi::OperatorId::kMatrix,
                    lisi::RArray<const double>(x.data(), n),
                    lisi::RArray<double>(y.data(), n), n);
      benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * sys.localA.nnz());
  });
}
BENCHMARK(BM_SpmvThroughMatrixFreePort)->Arg(100)->Arg(200);

void BM_SolveAssembled(benchmark::State& state) {
  lisi::comm::World::run(1, [&](lisi::comm::Comm& comm) {
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = static_cast<int>(state.range(0));
    const auto sys = lisi::mesh::assembleGlobal(spec);
    const lisi::sparse::DistCsrMatrix a(comm, sys.globalN, sys.globalN, 0,
                                        sys.localA);
    for (auto _ : state) {
      pksp::KSP ksp = nullptr;
      pksp::KSPCreate(comm, &ksp);
      pksp::KSPSetOperator(ksp, &a);
      pksp::KSPSetTolerances(ksp, 1e-6, -1, 10000);
      std::vector<double> x(static_cast<std::size_t>(sys.globalN));
      pksp::KSPSolve(ksp, std::span<const double>(sys.localB),
                     std::span<double>(x));
      pksp::KSPDestroy(&ksp);
      benchmark::DoNotOptimize(x.data());
    }
  });
}
BENCHMARK(BM_SolveAssembled)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_SolveMatrixFree(benchmark::State& state) {
  lisi::comm::World::run(1, [&](lisi::comm::Comm& comm) {
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = static_cast<int>(state.range(0));
    const auto sys = lisi::mesh::assembleGlobal(spec);
    const lisi::sparse::DistCsrMatrix a(comm, sys.globalN, sys.globalN, 0,
                                        sys.localA);
    BenchMatrixFree mf(&a);
    auto shell = [](void* ctx, const double* x, double* y, int n) {
      static_cast<BenchMatrixFree*>(ctx)->matMult(
          lisi::OperatorId::kMatrix, lisi::RArray<const double>(x, n),
          lisi::RArray<double>(y, n), n);
    };
    for (auto _ : state) {
      pksp::KSP ksp = nullptr;
      pksp::KSPCreate(comm, &ksp);
      pksp::KSPSetOperatorShell(ksp, shell, &mf, sys.globalN);
      pksp::KSPSetTolerances(ksp, 1e-6, -1, 10000);
      std::vector<double> x(static_cast<std::size_t>(sys.globalN));
      pksp::KSPSolve(ksp, std::span<const double>(sys.localB),
                     std::span<double>(x));
      pksp::KSPDestroy(&ksp);
      benchmark::DoNotOptimize(x.data());
    }
  });
}
BENCHMARK(BM_SolveMatrixFree)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
