// Collective-latency ablation: bcast / allreduce / allgatherv / barrier
// cost as the rank count grows from 1 to 8, for both schedule families.
//
// Args are {p, schedule} with schedule 1 = tree (binomial trees, recursive
// doubling, dissemination, ring — logarithmic critical path) and
// 2 = star (root funnels everything — fewest scheduler handoffs).  On a
// host with a core per rank the tree family's latency grows like log p
// while the star family's grows like p; on an oversubscribed host the
// rank-threads serialize and the ordering flips, which is exactly why the
// library resolves kAuto by core count.  Thread spawn/join cost is
// excluded by manual timing: each benchmark iteration launches one world,
// warms the schedule up, then times a fixed batch of operations between
// barriers on rank 0.
#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "support/timer.hpp"

namespace {

using lisi::comm::CollectiveSchedule;
using lisi::comm::Comm;
using lisi::comm::ReduceOp;
using lisi::comm::World;

constexpr int kPayloadDoubles = 256;  ///< 2 KiB: latency-dominated
constexpr int kWarmupOps = 16;
constexpr int kOpsPerIteration = 256;

/// Run `op` kOpsPerIteration times on `p` ranks under the benchmark's
/// pinned schedule family and return rank 0's wall-clock for the timed
/// batch.
template <class Op>
double timedWorld(const benchmark::State& state, Op&& op) {
  const int p = static_cast<int>(state.range(0));
  lisi::comm::setCollectiveSchedule(
      static_cast<CollectiveSchedule>(state.range(1)));
  double elapsed = 0.0;
  World::run(p, [&](Comm& comm) {
    for (int i = 0; i < kWarmupOps; ++i) op(comm);
    comm.barrier();
    const lisi::WallTimer timer;
    for (int i = 0; i < kOpsPerIteration; ++i) op(comm);
    comm.barrier();
    if (comm.rank() == 0) elapsed = timer.seconds();
  });
  lisi::comm::setCollectiveSchedule(CollectiveSchedule::kAuto);
  return elapsed;
}

/// ranks 1..8 x {tree, star}.
void scheduleGrid(benchmark::internal::Benchmark* b) {
  b->ArgNames({"p", "sched"});
  for (const auto sched : {CollectiveSchedule::kTree, CollectiveSchedule::kStar}) {
    for (int p = 1; p <= 8; ++p) b->Args({p, static_cast<long>(sched)});
  }
}

void BM_Bcast(benchmark::State& state) {
  for (auto _ : state) {
    state.SetIterationTime(timedWorld(state, [](const Comm& comm) {
      std::vector<double> buf(kPayloadDoubles,
                              comm.rank() == 0 ? 1.0 : 0.0);
      comm.bcast(std::span<double>(buf), 0);
      benchmark::DoNotOptimize(buf.data());
    }));
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIteration);
}
BENCHMARK(BM_Bcast)->Apply(scheduleGrid)->UseManualTime();

void BM_Allreduce(benchmark::State& state) {
  for (auto _ : state) {
    state.SetIterationTime(timedWorld(state, [](const Comm& comm) {
      std::vector<double> in(kPayloadDoubles, 1.0 + comm.rank());
      std::vector<double> out(kPayloadDoubles);
      comm.allreduce(std::span<const double>(in), std::span<double>(out),
                     ReduceOp::kSum);
      benchmark::DoNotOptimize(out.data());
    }));
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIteration);
}
BENCHMARK(BM_Allreduce)->Apply(scheduleGrid)->UseManualTime();

void BM_Allgatherv(benchmark::State& state) {
  for (auto _ : state) {
    state.SetIterationTime(timedWorld(state, [](const Comm& comm) {
      // Uneven contributions exercise the counts exchange as well.
      std::vector<double> mine(
          static_cast<std::size_t>(16 + 8 * comm.rank()), 1.0);
      const std::vector<double> all =
          comm.allgatherv(std::span<const double>(mine), nullptr);
      benchmark::DoNotOptimize(all.data());
    }));
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIteration);
}
BENCHMARK(BM_Allgatherv)->Apply(scheduleGrid)->UseManualTime();

void BM_Barrier(benchmark::State& state) {
  for (auto _ : state) {
    state.SetIterationTime(
        timedWorld(state, [](const Comm& comm) { comm.barrier(); }));
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIteration);
}
BENCHMARK(BM_Barrier)->Apply(scheduleGrid)->UseManualTime();

}  // namespace

BENCHMARK_MAIN();
