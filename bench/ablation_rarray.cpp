// Ablation for §6.2 (r-array vs normal SIDL array).
//
// The paper argues r-arrays win because they avoid boxing: no malloc/copy
// on the way in, direct traditional indexing on the way out.  This bench
// measures both argument-passing styles at the sizes the paper's problems
// produce (12k .. 800k nonzeros).
#include <benchmark/benchmark.h>

#include <numeric>

#include "lisi/rarray.hpp"
#include "support/rng.hpp"

namespace {

std::vector<double> makeValues(int n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  lisi::Rng rng(42);
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

/// Passing a vector as an r-array: wrap (no copy) and traverse.
void BM_RArrayPassAndSum(benchmark::State& state) {
  const auto values = makeValues(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    lisi::RArray<const double> arr(values);
    double sum = 0.0;
    for (int i = 0; i < arr.length(); ++i) sum += arr[i];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RArrayPassAndSum)->Arg(12300)->Arg(49600)->Arg(199200)->Arg(798400);

/// Passing the same data as a boxed SIDL array: copy on construction plus
/// descriptor-checked access.
void BM_SidlArrayPassAndSum(benchmark::State& state) {
  const auto values = makeValues(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    lisi::SidlArray<double> arr(values.data(),
                                static_cast<int>(values.size()));
    double sum = 0.0;
    for (int i = 0; i < arr.length(); ++i) sum += arr.get(i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SidlArrayPassAndSum)
    ->Arg(12300)
    ->Arg(49600)
    ->Arg(199200)
    ->Arg(798400);

/// Construction cost only (what every interface crossing pays).
void BM_RArrayConstruct(benchmark::State& state) {
  const auto values = makeValues(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    lisi::RArray<const double> arr(values);
    benchmark::DoNotOptimize(arr.data());
  }
}
BENCHMARK(BM_RArrayConstruct)->Arg(199200)->Arg(798400);

void BM_SidlArrayConstruct(benchmark::State& state) {
  const auto values = makeValues(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    lisi::SidlArray<double> arr(values.data(),
                                static_cast<int>(values.size()));
    benchmark::DoNotOptimize(arr.data());
  }
}
BENCHMARK(BM_SidlArrayConstruct)->Arg(199200)->Arg(798400);

}  // namespace

BENCHMARK_MAIN();
