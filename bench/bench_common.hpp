// Shared machinery for the paper-reproduction benchmarks (Figure 5,
// Table 1, Figure 4).
//
// Two measurement paths, exactly as in §8 of the paper:
//   * CCA:    the system is handed to a LISI solver *component* through the
//             SparseSolver port (argument marshalling, format adaptation,
//             generic parameter parsing, virtual dispatch — everything the
//             componentization adds).
//   * NonCCA: the same underlying package is called natively.
// Both paths run on identical pre-assembled local systems; mesh generation
// and framework wiring are excluded from the timed region, the full
// setup-matrix + setup-rhs + solve sequence is included.
//
// Each experiment repeats `reps` times (paper: ten runs, mean reported).
// Override with the LISI_BENCH_REPS environment variable for quick runs.
#pragma once

#include <cstdlib>
#include <string>

#include "aztec/aztecoo.hpp"
#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "hymg/hymg.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/pde5pt.hpp"
#include "pksp/pksp.hpp"
#include "slu/slu.hpp"
#include "sparse/convert.hpp"
#include "sparse/dist_csr.hpp"
#include "support/prec.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

namespace bench {

inline int repetitions(int fallback = 10) {
  if (const char* env = std::getenv("LISI_BENCH_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Outcome of one timed solve.  The bytes fields are deltas of the
/// process-wide lisi::prec counters over the timed region: MiniMPI ranks
/// are threads of one process, so they aggregate value traffic across all
/// ranks of the world (the right denominator for a bytes-moved ratio —
/// both arms of an ablation run the same world size).
struct SolveSample {
  double seconds = 0.0;  ///< timed region on rank 0
  int iterations = 0;
  double residualNorm = 0.0;
  bool ok = false;
  long long bytesLow = 0;   ///< float32 value bytes moved in the region
  long long bytesHigh = 0;  ///< float64 value bytes moved in the region
};

/// Capture a lisi::prec byte-counter delta around a timed region.
class PrecBytesProbe {
 public:
  PrecBytesProbe() : start_(lisi::prec::stats()) {}
  void finish(SolveSample& sample) const {
    const lisi::prec::Stats now = lisi::prec::stats();
    sample.bytesLow = now.bytesLow - start_.bytesLow;
    sample.bytesHigh = now.bytesHigh - start_.bytesHigh;
  }

 private:
  lisi::prec::Stats start_;
};

/// Iterative-solver configuration shared by the experiments: GMRES(30) with
/// a block-Jacobi ILU(0) preconditioner, rtol 1e-6 — the classic default
/// configuration of the packages the paper wrapped.
inline constexpr double kTol = 1e-6;
inline constexpr int kMaxIts = 10000;
inline constexpr int kRestart = 30;

/// View of a pre-assembled local system (so assembly is outside timing).
struct LocalSystem {
  lisi::mesh::Pde5ptLocalSystem sys;
};

inline LocalSystem assembleFor(const lisi::comm::Comm& comm, int gridN) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = gridN;
  return {lisi::mesh::assembleLocal(spec, comm.rank(), comm.size())};
}

/// CCA path: full LISI call sequence against an already-instantiated solver
/// component.  `solver` is the provides port of a lisi.* component.
inline SolveSample ccaSolve(const lisi::comm::Comm& comm,
                            lisi::SparseSolver& solver,
                            const LocalSystem& ls,
                            const std::string& backend) {
  const auto& sys = ls.sys;
  const int m = sys.localA.rows;
  SolveSample sample;
  const PrecBytesProbe bytes;
  lisi::WallTimer timer;

  const long handle = lisi::comm::registerHandle(comm);
  int rc = solver.initialize(handle);
  if (rc == 0) rc = solver.setStartRow(sys.startRow);
  if (rc == 0) rc = solver.setLocalRows(m);
  if (rc == 0) rc = solver.setLocalNNZ(sys.localA.nnz());
  if (rc == 0) rc = solver.setGlobalCols(sys.globalN);
  if (backend == "slu") {
    if (rc == 0) rc = solver.set("ordering", "rcm");
  } else if (backend == "hymg") {
    int n = 1;
    while ((n + 1) * (n + 1) <= sys.globalN) ++n;
    if (rc == 0) rc = solver.setInt("mg_grid_n", n);
    if (rc == 0) rc = solver.setDouble("mg_bx", 3.0);
    if (rc == 0) rc = solver.setDouble("tol", kTol);
    if (rc == 0) rc = solver.setInt("maxits", 200);
  } else {
    if (rc == 0) rc = solver.set("solver", "gmres");
    if (rc == 0) rc = solver.set("preconditioner", "ilu");
    if (rc == 0) rc = solver.setDouble("tol", kTol);
    if (rc == 0) rc = solver.setInt("maxits", kMaxIts);
    if (rc == 0) rc = solver.setInt("restart", kRestart);
  }
  if (rc == 0) {
    rc = solver.setupMatrix(
        lisi::RArray<const double>(sys.localA.values.data(), sys.localA.nnz()),
        lisi::RArray<const int>(sys.localA.rowPtr.data(), m + 1),
        lisi::RArray<const int>(sys.localA.colIdx.data(), sys.localA.nnz()),
        lisi::SparseStruct::kCsr, m + 1, sys.localA.nnz());
  }
  if (rc == 0) {
    rc = solver.setupRHS(lisi::RArray<const double>(sys.localB.data(), m), m,
                         1);
  }
  std::vector<double> x(static_cast<std::size_t>(m), 0.0);
  std::vector<double> status(lisi::kStatusLength, 0.0);
  if (rc == 0) {
    rc = solver.solve(lisi::RArray<double>(x.data(), m),
                      lisi::RArray<double>(status.data(), lisi::kStatusLength),
                      m, lisi::kStatusLength);
  }
  lisi::comm::releaseHandle(handle);

  sample.seconds = timer.seconds();
  bytes.finish(sample);
  sample.ok = (rc == 0);
  sample.iterations = static_cast<int>(status[lisi::kStatusIterations]);
  sample.residualNorm = status[lisi::kStatusResidualNorm];
  return sample;
}

/// NonCCA baseline: PKSP called natively.
inline SolveSample directPksp(const lisi::comm::Comm& comm,
                              const LocalSystem& ls) {
  const auto& sys = ls.sys;
  const int m = sys.localA.rows;
  SolveSample sample;
  lisi::WallTimer timer;

  lisi::sparse::DistCsrMatrix a(comm, sys.globalN, sys.globalN, sys.startRow,
                                sys.localA);
  pksp::KSP ksp = nullptr;
  pksp::KSPCreate(comm, &ksp);
  pksp::KSPSetOperator(ksp, &a);
  pksp::KSPSetType(ksp, pksp::PKSP_GMRES);
  pksp::KSPSetPCType(ksp, pksp::PKSP_PC_ILU0);
  pksp::KSPSetTolerances(ksp, kTol, 1e-50, kMaxIts);
  pksp::KSPSetRestart(ksp, kRestart);
  std::vector<double> x(static_cast<std::size_t>(m), 0.0);
  const int rc = pksp::KSPSolve(
      ksp, std::span<const double>(sys.localB), std::span<double>(x));
  pksp::KSPGetIterationNumber(ksp, &sample.iterations);
  pksp::KSPGetResidualNorm(ksp, &sample.residualNorm);
  pksp::KSPDestroy(&ksp);

  sample.seconds = timer.seconds();
  sample.ok = (rc == pksp::PKSP_SUCCESS);
  return sample;
}

/// NonCCA baseline: Aztec called natively.
inline SolveSample directAztec(const lisi::comm::Comm& comm,
                               const LocalSystem& ls) {
  const auto& sys = ls.sys;
  const int m = sys.localA.rows;
  SolveSample sample;
  lisi::WallTimer timer;

  aztec::Map map(sys.globalN, m, comm);
  aztec::CrsMatrix a(map, sys.localA);
  aztec::Vector x(map);
  const aztec::Vector b(map, sys.localB);
  aztec::AztecOO solver(a, x, b);
  solver.setOption(aztec::AZ_solver, aztec::AZ_gmres)
      .setOption(aztec::AZ_precond, aztec::AZ_dom_decomp)
      .setOption(aztec::AZ_kspace, kRestart);
  const int rc = solver.iterate(kMaxIts, kTol);
  sample.iterations = solver.numIters();
  sample.residualNorm = solver.trueResidual();

  sample.seconds = timer.seconds();
  sample.ok = (rc == 0);
  return sample;
}

/// NonCCA baseline: SLU called natively (gather/solve/scatter, the same
/// topology the component uses).
inline SolveSample directSlu(const lisi::comm::Comm& comm,
                             const LocalSystem& ls) {
  const auto& sys = ls.sys;
  SolveSample sample;
  lisi::WallTimer timer;

  lisi::sparse::DistCsrMatrix a(comm, sys.globalN, sys.globalN, sys.startRow,
                                sys.localA);
  const lisi::sparse::CsrMatrix global = a.gatherToRoot(0);
  const std::vector<double> bGlobal = a.gatherVectorToRoot(
      std::span<const double>(sys.localB), 0);
  std::vector<double> xGlobal;
  bool ok = true;
  if (comm.rank() == 0) {
    xGlobal.resize(bGlobal.size());
    try {
      slu::solve(lisi::sparse::csrToCsc(global),
                 std::span<const double>(bGlobal), std::span<double>(xGlobal));
    } catch (const lisi::Error&) {
      ok = false;
    }
  }
  ok = comm.bcastValue(ok ? 1 : 0, 0) != 0;
  const std::vector<double> xLocal = a.scatterVectorFromRoot(
      comm.rank() == 0 ? std::span<const double>(xGlobal)
                       : std::span<const double>(),
      0);
  std::vector<double> r(xLocal.size());
  a.spmv(std::span<const double>(xLocal), std::span<double>(r));
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = sys.localB[i] - r[i];
  sample.residualNorm = lisi::sparse::distNorm2(comm, r);
  sample.iterations = 0;

  sample.seconds = timer.seconds();
  sample.ok = ok;
  return sample;
}

/// NonCCA baseline: HyMG called natively on the same operator the hymg
/// component rediscretizes (-lap(u) + 3 u_x on the (gridN)x(gridN) interior
/// grid; gridN must be 2^k - 1 so the hierarchy coarsens).  Only usable from
/// binaries that link lisi_hymg.
inline SolveSample directHymg(const lisi::comm::Comm& comm,
                              const LocalSystem& ls) {
  const auto& sys = ls.sys;
  SolveSample sample;
  lisi::WallTimer timer;

  int n = 1;
  while ((n + 1) * (n + 1) <= sys.globalN) ++n;
  const hymg::Solver mg(comm, n, hymg::convectionDiffusionStencil(3.0, 0.0),
                        hymg::Options{});
  if (mg.fineLocalRows() != sys.localA.rows) {
    sample.ok = false;  // partition mismatch: not the same local system
    return sample;
  }
  std::vector<double> x(static_cast<std::size_t>(sys.localA.rows), 0.0);
  const hymg::SolveInfo info = mg.solve(std::span<const double>(sys.localB),
                                        std::span<double>(x), kTol, 200);
  sample.iterations = info.cycles;
  std::vector<double> r(x.size());
  mg.fineMatrix().spmv(std::span<const double>(x), std::span<double>(r));
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = sys.localB[i] - r[i];
  sample.residualNorm = lisi::sparse::distNorm2(comm, r);

  sample.seconds = timer.seconds();
  sample.ok = info.converged;
  return sample;
}

/// Run `fn` (a per-rank callable returning SolveSample) `reps` times on
/// `ranks` rank-threads; returns rank 0's per-rep seconds plus the last
/// sample for metadata.
template <class Fn>
std::pair<lisi::RunStats, SolveSample> repeatOnRanks(int ranks, int reps,
                                                     Fn&& fn) {
  lisi::RunStats stats;
  SolveSample last;
  for (int rep = 0; rep < reps; ++rep) {
    lisi::comm::World::run(ranks, [&](lisi::comm::Comm& comm) {
      const SolveSample s = fn(comm);
      if (comm.rank() == 0) {
        stats.add(s.seconds);
        last = s;
      }
    });
  }
  return {std::move(stats), last};
}

}  // namespace bench
