// Table 1 reproduction: the PETSc-style solver component on 8 processors
// over growing problem sizes.
//
// Paper values (2007 cluster):
//   nnz     CCA(s)  NonCCA(s)  Overhead(s)/(%)  Iters
//   12300   0.086   0.070      0.016/18.61      36
//   49600   0.189   0.144      0.045/23.73      67
//   199200  0.475   0.428      0.047/9.86       108
//   448800  1.283   1.265      0.018/1.36       165
//   798400  2.585   2.562      0.023/0.90       221
//
// Expected shape on this host: absolute overhead roughly constant in
// problem size (the number of interface crossings is fixed), overhead
// percentage decreasing as the problem grows, iteration counts growing
// with the grid.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  const int procs = 8;
  const int reps = bench::repetitions();
  const int grids[] = {50, 100, 200, 300, 400};

  lisi::registerSolverComponents();
  std::printf("# Table 1: PETSc-style component with/without LISI, %d procs, "
              "%d runs per point (mean)\n",
              procs, reps);
  std::printf("%10s %10s %10s %18s %8s\n", "nnz", "CCA(s)", "NonCCA(s)",
              "Overhead(s)/(%)", "Iters");

  for (const int gridN : grids) {
    auto [ccaStats, ccaLast] = bench::repeatOnRanks(
        procs, reps, [&](lisi::comm::Comm& comm) {
          const bench::LocalSystem ls = bench::assembleFor(comm, gridN);
          cca::Framework fw;
          fw.instantiate("solver", lisi::kPkspComponentClass);
          auto port = fw.getProvidesPortAs<lisi::SparseSolver>(
              "solver", lisi::kSparseSolverPortName);
          return bench::ccaSolve(comm, *port, ls, "pksp");
        });
    auto [directStats, directLast] = bench::repeatOnRanks(
        procs, reps, [&](lisi::comm::Comm& comm) {
          const bench::LocalSystem ls = bench::assembleFor(comm, gridN);
          return bench::directPksp(comm, ls);
        });
    if (!ccaLast.ok || !directLast.ok) {
      std::printf("%10lld  SOLVE FAILED\n", lisi::mesh::pde5ptNnz(gridN));
      continue;
    }
    const double ccaMean = ccaStats.mean();
    const double directMean = directStats.mean();
    const double overhead = ccaMean - directMean;
    std::printf("%10lld %10.4f %10.4f %12.4f/%5.2f %8d\n",
                lisi::mesh::pde5ptNnz(gridN), ccaMean, directMean, overhead,
                100.0 * overhead / directMean, ccaLast.iterations);
    std::fflush(stdout);
  }
  std::printf("# shape check: overhead column ~constant, %% falls with size, "
              "iterations grow with the grid.\n");
  return 0;
}
