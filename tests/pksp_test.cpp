// PKSP package tests: API contract (handles, error codes, call order),
// convergence of every method/preconditioner combination, parallel/serial
// agreement, matrix-free shell operators, and options-string parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>

#include "comm/comm.hpp"
#include "mesh/pde5pt.hpp"
#include "pksp/pksp.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"

namespace pksp {
namespace {

using lisi::Rng;
using lisi::comm::Comm;
using lisi::comm::World;
using lisi::sparse::CsrMatrix;
using lisi::sparse::DistCsrMatrix;

/// Run a serial (1-rank) solve of `global` with the given config; returns
/// the relative true-residual and solution.
struct SerialResult {
  double relResidual;
  int iterations;
  PkspConvergedReason reason;
  std::vector<double> x;
};

SerialResult solveSerial(const CsrMatrix& global, const std::vector<double>& b,
                         PkspType type, PkspPcType pc, double rtol = 1e-10,
                         int maxits = 2000) {
  SerialResult result{};
  World::run(1, [&](Comm& c) {
    DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(c, global);
    KSP ksp = nullptr;
    ASSERT_EQ(KSPCreate(c, &ksp), PKSP_SUCCESS);
    ASSERT_EQ(KSPSetOperator(ksp, &a), PKSP_SUCCESS);
    ASSERT_EQ(KSPSetType(ksp, type), PKSP_SUCCESS);
    ASSERT_EQ(KSPSetPCType(ksp, pc), PKSP_SUCCESS);
    ASSERT_EQ(KSPSetTolerances(ksp, rtol, 1e-14, maxits), PKSP_SUCCESS);
    std::vector<double> x(b.size());
    (void)KSPSolve(ksp, std::span<const double>(b), std::span<double>(x));
    double rnorm = 0;
    KSPGetResidualNorm(ksp, &rnorm);
    KSPGetIterationNumber(ksp, &result.iterations);
    KSPGetConvergedReason(ksp, &result.reason);
    result.relResidual =
        rnorm / lisi::sparse::norm2(std::span<const double>(b));
    result.x = x;
    KSPDestroy(&ksp);
    EXPECT_EQ(ksp, nullptr);
  });
  return result;
}

TEST(PkspApi, NullHandleRejected) {
  EXPECT_EQ(KSPSetType(nullptr, PKSP_CG), PKSP_ERR_ARG);
  EXPECT_EQ(KSPSetPCType(nullptr, PKSP_PC_NONE), PKSP_ERR_ARG);
  EXPECT_EQ(KSPSetTolerances(nullptr, 1e-6, 1e-12, 10), PKSP_ERR_ARG);
  int it = 0;
  EXPECT_EQ(KSPGetIterationNumber(nullptr, &it), PKSP_ERR_ARG);
}

TEST(PkspApi, SolveBeforeOperatorIsOrderError) {
  World::run(1, [](Comm& c) {
    KSP ksp = nullptr;
    ASSERT_EQ(KSPCreate(c, &ksp), PKSP_SUCCESS);
    std::vector<double> b(4, 1.0), x(4);
    EXPECT_EQ(KSPSolve(ksp, std::span<const double>(b), std::span<double>(x)),
              PKSP_ERR_ORDER);
    KSPDestroy(&ksp);
  });
}

TEST(PkspApi, SizeMismatchRejected) {
  World::run(1, [](Comm& c) {
    const CsrMatrix g = lisi::sparse::laplacian1d(6);
    DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(c, g);
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    KSPSetOperator(ksp, &a);
    std::vector<double> b(5, 1.0), x(6);
    EXPECT_EQ(KSPSolve(ksp, std::span<const double>(b), std::span<double>(x)),
              PKSP_ERR_ARG);
    KSPDestroy(&ksp);
  });
}

TEST(PkspApi, RectangularOperatorRejected) {
  World::run(1, [](Comm& c) {
    Rng rng(1);
    const CsrMatrix g = lisi::sparse::randomCsr(4, 6, 2, rng);
    CsrMatrix local = g;
    DistCsrMatrix a(c, 4, 6, 0, local);
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    EXPECT_EQ(KSPSetOperator(ksp, &a), PKSP_ERR_ARG);
    KSPDestroy(&ksp);
  });
}

TEST(PkspApi, DestroyNullsAndToleratesNull) {
  KSP ksp = nullptr;
  EXPECT_EQ(KSPDestroy(&ksp), PKSP_SUCCESS);
  EXPECT_EQ(KSPDestroy(nullptr), PKSP_ERR_ARG);
}

TEST(PkspApi, InvalidSettingsRejected) {
  World::run(1, [](Comm& c) {
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    EXPECT_EQ(KSPSetRestart(ksp, 0), PKSP_ERR_ARG);
    EXPECT_EQ(KSPSetSorOptions(ksp, 2.5, 1), PKSP_ERR_ARG);
    EXPECT_EQ(KSPSetSorOptions(ksp, 1.0, 0), PKSP_ERR_ARG);
    KSPDestroy(&ksp);
  });
}

TEST(PkspOptions, StringParsingConfigures) {
  World::run(1, [](Comm& c) {
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    EXPECT_EQ(KSPSetFromString(ksp,
                               "-ksp_type bicgstab -pc_type jacobi "
                               "-ksp_rtol 1e-9 -ksp_max_it 123"),
              PKSP_SUCCESS);
    std::string desc;
    KSPGetDescription(ksp, &desc);
    EXPECT_NE(desc.find("bicgstab"), std::string::npos);
    EXPECT_NE(desc.find("jacobi"), std::string::npos);
    EXPECT_NE(desc.find("1e-09"), std::string::npos);
    EXPECT_NE(desc.find("123"), std::string::npos);
    KSPDestroy(&ksp);
  });
}

TEST(PkspOptions, UnknownKeyReported) {
  World::run(1, [](Comm& c) {
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    EXPECT_EQ(KSPSetFromString(ksp, "-ksp_bogus_flag on"),
              PKSP_ERR_UNSUPPORTED);
    EXPECT_EQ(KSPSetFromString(ksp, "-ksp_rtol notanumber"), PKSP_ERR_ARG);
    KSPDestroy(&ksp);
  });
}

// ---- convergence matrix: method x preconditioner ----------------------

struct Combo {
  PkspType type;
  PkspPcType pc;
};

class PkspConvergence : public ::testing::TestWithParam<Combo> {};

TEST_P(PkspConvergence, SpdSystemSolves) {
  const Combo combo = GetParam();
  const CsrMatrix g = lisi::sparse::laplacian2d(12, 12);
  std::vector<double> xTrue(static_cast<std::size_t>(g.rows));
  Rng rng(42);
  for (auto& v : xTrue) v = rng.uniform(-1, 1);
  std::vector<double> b(xTrue.size());
  lisi::sparse::spmv(g, std::span<const double>(xTrue), std::span<double>(b));
  const auto res = solveSerial(g, b, combo.type, combo.pc, 1e-10, 5000);
  EXPECT_GT(res.reason, 0) << "reason=" << res.reason;
  EXPECT_LT(res.relResidual, 1e-8);
  // Solution itself must be accurate (Laplacian is well conditioned here).
  for (std::size_t i = 0; i < xTrue.size(); ++i) {
    EXPECT_NEAR(res.x[i], xTrue[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndPcs, PkspConvergence,
    ::testing::Values(Combo{PKSP_CG, PKSP_PC_NONE},
                      Combo{PKSP_CG, PKSP_PC_JACOBI},
                      Combo{PKSP_CG, PKSP_PC_ILU0},
                      Combo{PKSP_GMRES, PKSP_PC_NONE},
                      Combo{PKSP_GMRES, PKSP_PC_JACOBI},
                      Combo{PKSP_GMRES, PKSP_PC_SOR},
                      Combo{PKSP_GMRES, PKSP_PC_ILU0},
                      Combo{PKSP_GMRES, PKSP_PC_BJACOBI},
                      Combo{PKSP_BICGSTAB, PKSP_PC_NONE},
                      Combo{PKSP_BICGSTAB, PKSP_PC_JACOBI},
                      Combo{PKSP_BICGSTAB, PKSP_PC_ILU0},
                      Combo{PKSP_RICHARDSON, PKSP_PC_ILU0},
                      Combo{PKSP_RICHARDSON, PKSP_PC_SOR}));

TEST(PkspNonsymmetric, GmresSolvesConvectionDiffusion) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 16;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  const auto res =
      solveSerial(sys.localA, sys.localB, PKSP_GMRES, PKSP_PC_ILU0, 1e-10);
  EXPECT_GT(res.reason, 0);
  EXPECT_LT(res.relResidual, 1e-8);
}

TEST(PkspNonsymmetric, BicgstabSolvesConvectionDiffusion) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 16;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  const auto res =
      solveSerial(sys.localA, sys.localB, PKSP_BICGSTAB, PKSP_PC_ILU0, 1e-10);
  EXPECT_GT(res.reason, 0);
  EXPECT_LT(res.relResidual, 1e-8);
}

TEST(PkspDiagnostics, MaxItsReportedAsDivergence) {
  const CsrMatrix g = lisi::sparse::laplacian2d(20, 20);
  std::vector<double> b(static_cast<std::size_t>(g.rows), 1.0);
  const auto res = solveSerial(g, b, PKSP_CG, PKSP_PC_NONE, 1e-14, 3);
  EXPECT_EQ(res.reason, PKSP_DIVERGED_ITS);
  EXPECT_EQ(res.iterations, 3);
}

TEST(PkspDiagnostics, ZeroRhsConvergesImmediately) {
  const CsrMatrix g = lisi::sparse::laplacian1d(30);
  std::vector<double> b(30, 0.0);
  const auto res = solveSerial(g, b, PKSP_GMRES, PKSP_PC_NONE);
  EXPECT_GT(res.reason, 0);
  EXPECT_EQ(res.iterations, 0);
  for (double v : res.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(PkspDiagnostics, InitialGuessNonzeroIsUsed) {
  World::run(1, [](Comm& c) {
    const CsrMatrix g = lisi::sparse::laplacian1d(40);
    DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(c, g);
    std::vector<double> xTrue(40, 1.0);
    std::vector<double> b(40);
    lisi::sparse::spmv(g, std::span<const double>(xTrue), std::span<double>(b));
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    KSPSetOperator(ksp, &a);
    KSPSetType(ksp, PKSP_CG);
    KSPSetInitialGuessNonzero(ksp, true);
    // Exact solution as initial guess: must converge in zero iterations.
    std::vector<double> x = xTrue;
    EXPECT_EQ(KSPSolve(ksp, std::span<const double>(b), std::span<double>(x)),
              PKSP_SUCCESS);
    int its = -1;
    KSPGetIterationNumber(ksp, &its);
    EXPECT_EQ(its, 0);
    KSPDestroy(&ksp);
  });
}

TEST(PkspPc, ShellOperatorWithMatrixPcUnsupported) {
  World::run(1, [](Comm& c) {
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    auto matvec = [](void*, const double* x, double* y, int n) {
      for (int i = 0; i < n; ++i) y[i] = 2.0 * x[i];
    };
    KSPSetOperatorShell(ksp, matvec, nullptr, 8);
    KSPSetPCType(ksp, PKSP_PC_ILU0);
    std::vector<double> b(8, 2.0), x(8);
    EXPECT_EQ(KSPSolve(ksp, std::span<const double>(b), std::span<double>(x)),
              PKSP_ERR_UNSUPPORTED);
    KSPDestroy(&ksp);
  });
}

TEST(PkspShell, MatrixFreeDiagonalSolve) {
  World::run(1, [](Comm& c) {
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    auto matvec = [](void*, const double* x, double* y, int n) {
      for (int i = 0; i < n; ++i) y[i] = (4.0 + i % 3) * x[i];
    };
    KSPSetOperatorShell(ksp, matvec, nullptr, 10);
    KSPSetType(ksp, PKSP_CG);
    std::vector<double> b(10, 1.0), x(10);
    EXPECT_EQ(KSPSolve(ksp, std::span<const double>(b), std::span<double>(x)),
              PKSP_SUCCESS);
    for (int i = 0; i < 10; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)], 1.0 / (4.0 + i % 3), 1e-8);
    }
    KSPDestroy(&ksp);
  });
}

TEST(PkspShell, MatrixFreeMatchesAssembledOperator) {
  // Shell wrapping a DistCsrMatrix must reproduce the assembled solve.
  for (int p : {1, 2, 4}) {
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = 10;
    const auto serial = lisi::mesh::assembleGlobal(spec);
    const auto ref = solveSerial(serial.localA, serial.localB, PKSP_GMRES,
                                 PKSP_PC_NONE, 1e-10);
    ASSERT_GT(ref.reason, 0);
    World::run(p, [&](Comm& c) {
      const auto local = lisi::mesh::assembleLocal(spec, c.rank(), c.size());
      DistCsrMatrix a(c, local.globalN, local.globalN, local.startRow,
                      local.localA);
      auto matvec = [](void* ctx, const double* x, double* y, int n) {
        const auto* mat = static_cast<const DistCsrMatrix*>(ctx);
        mat->spmv(std::span<const double>(x, static_cast<std::size_t>(n)),
                  std::span<double>(y, static_cast<std::size_t>(n)));
      };
      KSP ksp = nullptr;
      KSPCreate(c, &ksp);
      KSPSetOperatorShell(ksp, matvec, &a, a.localRows());
      KSPSetType(ksp, PKSP_GMRES);
      KSPSetTolerances(ksp, 1e-10, 1e-14, 2000);
      std::vector<double> x(static_cast<std::size_t>(a.localRows()));
      std::span<const double> bLoc(local.localB);
      EXPECT_EQ(KSPSolve(ksp, bLoc, std::span<double>(x)), PKSP_SUCCESS);
      for (int i = 0; i < a.localRows(); ++i) {
        EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                    ref.x[static_cast<std::size_t>(a.startRow() + i)], 1e-6);
      }
      KSPDestroy(&ksp);
    });
  }
}

class PkspParallel : public ::testing::TestWithParam<int> {};

TEST_P(PkspParallel, ParallelSolutionMatchesSerial) {
  const int p = GetParam();
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 14;
  const auto serial = lisi::mesh::assembleGlobal(spec);
  const auto ref = solveSerial(serial.localA, serial.localB, PKSP_BICGSTAB,
                               PKSP_PC_JACOBI, 1e-12);
  ASSERT_GT(ref.reason, 0);

  World::run(p, [&](Comm& c) {
    const auto local = lisi::mesh::assembleLocal(spec, c.rank(), c.size());
    DistCsrMatrix a(c, local.globalN, local.globalN, local.startRow,
                    local.localA);
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    KSPSetOperator(ksp, &a);
    KSPSetType(ksp, PKSP_BICGSTAB);
    KSPSetPCType(ksp, PKSP_PC_JACOBI);
    KSPSetTolerances(ksp, 1e-12, 1e-14, 5000);
    std::vector<double> x(static_cast<std::size_t>(a.localRows()));
    EXPECT_EQ(KSPSolve(ksp, std::span<const double>(local.localB),
                       std::span<double>(x)),
              PKSP_SUCCESS);
    for (int i = 0; i < a.localRows(); ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                  ref.x[static_cast<std::size_t>(a.startRow() + i)], 1e-6);
    }
    KSPDestroy(&ksp);
  });
}

TEST_P(PkspParallel, IluBlockJacobiConvergesInParallel) {
  const int p = GetParam();
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 14;
  World::run(p, [&](Comm& c) {
    const auto local = lisi::mesh::assembleLocal(spec, c.rank(), c.size());
    DistCsrMatrix a(c, local.globalN, local.globalN, local.startRow,
                    local.localA);
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    KSPSetOperator(ksp, &a);
    KSPSetType(ksp, PKSP_GMRES);
    KSPSetPCType(ksp, PKSP_PC_ILU0);
    KSPSetTolerances(ksp, 1e-10, 1e-14, 2000);
    std::vector<double> x(static_cast<std::size_t>(a.localRows()));
    EXPECT_EQ(KSPSolve(ksp, std::span<const double>(local.localB),
                       std::span<double>(x)),
              PKSP_SUCCESS);
    double rnorm = 0;
    KSPGetResidualNorm(ksp, &rnorm);
    const double bnorm =
        lisi::sparse::distNorm2(c, std::span<const double>(local.localB));
    EXPECT_LT(rnorm / bnorm, 1e-8);
    KSPDestroy(&ksp);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, PkspParallel, ::testing::Values(1, 2, 3, 4, 8));

// ---- pipelined (communication-hiding) Krylov variants ------------------

/// Solve a globally replicated system on `p` ranks with the given
/// method/pipeline mode; gathers the full solution for comparison.
struct PipelineRun {
  std::vector<double> x;          // full solution (assembled from all ranks)
  std::vector<int> historyLen;    // per-rank residual-history length
  std::vector<PkspConvergedReason> reason;
};

PipelineRun solveDist(const CsrMatrix& global, const std::vector<double>& b,
                      int p, PkspType type, PkspPipelineMode mode,
                      PkspPcType pc, double rtol) {
  PipelineRun run;
  run.x.assign(static_cast<std::size_t>(global.rows), 0.0);
  run.historyLen.assign(static_cast<std::size_t>(p), 0);
  run.reason.assign(static_cast<std::size_t>(p), PKSP_ITERATING);
  std::mutex mu;
  World::run(p, [&](Comm& c) {
    DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(c, global);
    const std::size_t n = static_cast<std::size_t>(a.localRows());
    const std::size_t start = static_cast<std::size_t>(a.startRow());
    std::vector<double> bLocal(b.begin() + static_cast<std::ptrdiff_t>(start),
                               b.begin() +
                                   static_cast<std::ptrdiff_t>(start + n));
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    KSPSetOperator(ksp, &a);
    KSPSetType(ksp, type);
    KSPSetPCType(ksp, pc);
    KSPSetTolerances(ksp, rtol, 1e-14, 5000);
    ASSERT_EQ(KSPSetPipeline(ksp, mode), PKSP_SUCCESS);
    std::vector<double> x(n);
    EXPECT_EQ(KSPSolve(ksp, std::span<const double>(bLocal),
                       std::span<double>(x)),
              PKSP_SUCCESS);
    const double* hist = nullptr;
    int histLen = 0;
    KSPGetResidualHistory(ksp, &hist, &histLen);
    PkspConvergedReason reason = PKSP_ITERATING;
    KSPGetConvergedReason(ksp, &reason);
    {
      std::lock_guard<std::mutex> lock(mu);
      for (std::size_t i = 0; i < n; ++i) run.x[start + i] = x[i];
      run.historyLen[static_cast<std::size_t>(c.rank())] = histLen;
      run.reason[static_cast<std::size_t>(c.rank())] = reason;
    }
    KSPDestroy(&ksp);
  });
  return run;
}

/// SPD 5-point Poisson system for the CG tests (the paper PDE's -3 u_x
/// convection term makes it nonsymmetric, so CG does not apply there).
CsrMatrix spdSystem(std::vector<double>& b) {
  const CsrMatrix g = lisi::sparse::laplacian2d(14, 14);
  std::vector<double> xTrue(static_cast<std::size_t>(g.rows));
  Rng rng(1234);
  for (auto& v : xTrue) v = rng.uniform(-1, 1);
  b.assign(xTrue.size(), 0.0);
  lisi::sparse::spmv(g, std::span<const double>(xTrue), std::span<double>(b));
  return g;
}

/// Nonsymmetric convection-diffusion system (the paper's PDE) for BiCGStab.
CsrMatrix paperSystem(std::vector<double>& b) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 14;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  b = sys.localB;
  return sys.localA;
}

class PkspPipelined : public ::testing::TestWithParam<int> {};

TEST_P(PkspPipelined, CgMatchesClassicIterate) {
  const int p = GetParam();
  std::vector<double> b;
  const CsrMatrix g = spdSystem(b);
  const auto classic =
      solveDist(g, b, p, PKSP_CG, PKSP_PIPELINE_OFF, PKSP_PC_JACOBI, 1e-12);
  const auto piped =
      solveDist(g, b, p, PKSP_CG, PKSP_PIPELINE_ON, PKSP_PC_JACOBI, 1e-12);
  for (int r = 0; r < p; ++r) {
    EXPECT_GT(classic.reason[static_cast<std::size_t>(r)], 0);
    EXPECT_GT(piped.reason[static_cast<std::size_t>(r)], 0);
    // Same convergence-history length up to one iteration of slack (the
    // pipelined monitor evaluates the norm one fused reduction earlier).
    EXPECT_NEAR(classic.historyLen[static_cast<std::size_t>(r)],
                piped.historyLen[static_cast<std::size_t>(r)], 1);
  }
  ASSERT_EQ(classic.x.size(), piped.x.size());
  for (std::size_t i = 0; i < classic.x.size(); ++i) {
    EXPECT_NEAR(classic.x[i], piped.x[i], 1e-10) << "entry " << i;
  }
}

TEST_P(PkspPipelined, BicgstabMatchesClassicIterate) {
  const int p = GetParam();
  std::vector<double> b;
  const CsrMatrix g = paperSystem(b);
  const auto classic = solveDist(g, b, p, PKSP_BICGSTAB, PKSP_PIPELINE_OFF,
                                 PKSP_PC_JACOBI, 1e-12);
  const auto piped = solveDist(g, b, p, PKSP_BICGSTAB, PKSP_PIPELINE_ON,
                               PKSP_PC_JACOBI, 1e-12);
  for (int r = 0; r < p; ++r) {
    EXPECT_GT(classic.reason[static_cast<std::size_t>(r)], 0);
    EXPECT_GT(piped.reason[static_cast<std::size_t>(r)], 0);
  }
  ASSERT_EQ(classic.x.size(), piped.x.size());
  for (std::size_t i = 0; i < classic.x.size(); ++i) {
    EXPECT_NEAR(classic.x[i], piped.x[i], 1e-10) << "entry " << i;
  }
}

TEST_P(PkspPipelined, AutoModeConvergesWithIlu) {
  const int p = GetParam();
  std::vector<double> b;
  const CsrMatrix g = spdSystem(b);
  const auto piped =
      solveDist(g, b, p, PKSP_CG, PKSP_PIPELINE_AUTO, PKSP_PC_ILU0, 1e-10);
  for (int r = 0; r < p; ++r) {
    EXPECT_GT(piped.reason[static_cast<std::size_t>(r)], 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, PkspPipelined, ::testing::Values(1, 3, 4, 8));

TEST(PkspPipeline, OptionsStringSelectsMode) {
  World::run(1, [](Comm& c) {
    KSP ksp = nullptr;
    ASSERT_EQ(KSPCreate(c, &ksp), PKSP_SUCCESS);
    EXPECT_EQ(KSPSetFromString(ksp, "-ksp_type cg -ksp_pipeline auto"),
              PKSP_SUCCESS);
    std::string desc;
    KSPGetDescription(ksp, &desc);
    EXPECT_NE(desc.find("pipelined:auto"), std::string::npos) << desc;
    EXPECT_EQ(KSPSetFromString(ksp, "-ksp_pipeline on"), PKSP_SUCCESS);
    KSPGetDescription(ksp, &desc);
    EXPECT_NE(desc.find("[pipelined]"), std::string::npos) << desc;
    EXPECT_EQ(KSPSetFromString(ksp, "-ksp_pipeline off"), PKSP_SUCCESS);
    KSPGetDescription(ksp, &desc);
    EXPECT_EQ(desc.find("pipelined"), std::string::npos) << desc;
    EXPECT_EQ(KSPSetFromString(ksp, "-ksp_pipeline sideways"), PKSP_ERR_ARG);
    KSPDestroy(&ksp);
  });
}

TEST(PkspPipeline, DescriptionOmitsMarkerForGmres) {
  World::run(1, [](Comm& c) {
    KSP ksp = nullptr;
    ASSERT_EQ(KSPCreate(c, &ksp), PKSP_SUCCESS);
    KSPSetType(ksp, PKSP_GMRES);
    KSPSetPipeline(ksp, PKSP_PIPELINE_ON);
    std::string desc;
    KSPGetDescription(ksp, &desc);
    EXPECT_EQ(desc.find("pipelined"), std::string::npos) << desc;
    KSPDestroy(&ksp);
  });
}

TEST(PkspReuse, MultipleSolvesReuseFactorization) {
  // Use case (c) of §5.2: same A, several right-hand sides.
  World::run(2, [](Comm& c) {
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = 10;
    const auto local = lisi::mesh::assembleLocal(spec, c.rank(), c.size());
    DistCsrMatrix a(c, local.globalN, local.globalN, local.startRow,
                    local.localA);
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    KSPSetOperator(ksp, &a);
    KSPSetType(ksp, PKSP_GMRES);
    KSPSetPCType(ksp, PKSP_PC_ILU0);
    KSPSetTolerances(ksp, 1e-10, 1e-14, 1000);
    for (int rhs = 0; rhs < 3; ++rhs) {
      std::vector<double> b(local.localB);
      for (auto& v : b) v *= (rhs + 1);
      std::vector<double> x(b.size());
      EXPECT_EQ(KSPSolve(ksp, std::span<const double>(b), std::span<double>(x)),
                PKSP_SUCCESS);
      double rnorm = 0;
      KSPGetResidualNorm(ksp, &rnorm);
      const double bnorm = lisi::sparse::distNorm2(c, std::span<const double>(b));
      EXPECT_LT(rnorm / bnorm, 1e-8) << "rhs " << rhs;
    }
    KSPDestroy(&ksp);
  });
}

TEST(PkspMonitor, CallbackSeesMonotoneCgResiduals) {
  World::run(1, [](Comm& c) {
    const CsrMatrix g = lisi::sparse::laplacian2d(10, 10);
    DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(c, g);
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    KSPSetOperator(ksp, &a);
    KSPSetType(ksp, PKSP_CG);
    KSPSetTolerances(ksp, 1e-10, 1e-14, 1000);
    std::vector<double> seen;
    auto monitor = [](void* ctx, int it, double rnorm) {
      auto* v = static_cast<std::vector<double>*>(ctx);
      EXPECT_EQ(static_cast<int>(v->size()), it);
      v->push_back(rnorm);
    };
    KSPSetMonitor(ksp, monitor, &seen);
    std::vector<double> b(static_cast<std::size_t>(g.rows), 1.0), x(b.size());
    ASSERT_EQ(KSPSolve(ksp, std::span<const double>(b), std::span<double>(x)),
              PKSP_SUCCESS);
    int its = 0;
    KSPGetIterationNumber(ksp, &its);
    ASSERT_EQ(static_cast<int>(seen.size()), its + 1);  // includes iter 0
    EXPECT_LT(seen.back(), 1e-10 * seen.front() + 1e-14);
    KSPDestroy(&ksp);
  });
}

TEST(PkspMonitor, HistoryRecordedWithoutExplicitMonitor) {
  World::run(2, [](Comm& c) {
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = 8;
    const auto local = lisi::mesh::assembleLocal(spec, c.rank(), c.size());
    DistCsrMatrix a(c, local.globalN, local.globalN, local.startRow,
                    local.localA);
    KSP ksp = nullptr;
    KSPCreate(c, &ksp);
    KSPSetOperator(ksp, &a);
    KSPSetType(ksp, PKSP_GMRES);
    KSPSetTolerances(ksp, 1e-8, 1e-14, 1000);
    std::vector<double> x(static_cast<std::size_t>(a.localRows()));
    ASSERT_EQ(KSPSolve(ksp, std::span<const double>(local.localB),
                       std::span<double>(x)),
              PKSP_SUCCESS);
    const double* history = nullptr;
    int count = 0;
    ASSERT_EQ(KSPGetResidualHistory(ksp, &history, &count), PKSP_SUCCESS);
    int its = 0;
    KSPGetIterationNumber(ksp, &its);
    ASSERT_EQ(count, its + 1);
    // GMRES's tracked residual is non-increasing.
    for (int i = 1; i < count; ++i) {
      EXPECT_LE(history[i], history[i - 1] * (1.0 + 1e-12));
    }
    // History resets on the next solve.
    ASSERT_EQ(KSPSolve(ksp, std::span<const double>(local.localB),
                       std::span<double>(x)),
              PKSP_SUCCESS);
    int count2 = 0;
    KSPGetResidualHistory(ksp, &history, &count2);
    EXPECT_EQ(count2, count);
    KSPDestroy(&ksp);
  });
}

TEST(PkspGmres, RestartAffectsButStillConverges) {
  const CsrMatrix g = lisi::sparse::laplacian2d(15, 15);
  std::vector<double> b(static_cast<std::size_t>(g.rows), 1.0);
  World::run(1, [&](Comm& c) {
    DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(c, g);
    for (int restart : {5, 20, 100}) {
      KSP ksp = nullptr;
      KSPCreate(c, &ksp);
      KSPSetOperator(ksp, &a);
      KSPSetType(ksp, PKSP_GMRES);
      KSPSetRestart(ksp, restart);
      KSPSetTolerances(ksp, 1e-10, 1e-14, 5000);
      std::vector<double> x(b.size());
      EXPECT_EQ(KSPSolve(ksp, std::span<const double>(b), std::span<double>(x)),
                PKSP_SUCCESS)
          << "restart " << restart;
      double rnorm = 0;
      KSPGetResidualNorm(ksp, &rnorm);
      EXPECT_LT(rnorm, 1e-7);
      KSPDestroy(&ksp);
    }
  });
}

// The CG kernel fuses <z,z> and <r,z> into one two-element allreduce.  The
// allreduce schedule is elementwise, so the fused lanes must be bitwise
// identical to separate dots: iterates, iteration count, and solution may
// not change at any rank count.  This reference runs the identical
// recurrence with the *unfused* collectives.
TEST(PkspCg, FusedDotMatchesUnfusedReferenceBitwise) {
  const int n = 64;
  const CsrMatrix g = lisi::sparse::laplacian1d(n);
  std::vector<double> bGlobal(static_cast<std::size_t>(n));
  Rng rng(42);
  for (auto& v : bGlobal) v = rng.uniform(-1, 1);
  const double rtol = 1e-10;
  const double atol = 1e-14;
  const int maxits = 2000;

  for (const int p : {1, 2, 3, 4}) {
    World::run(p, [&](Comm& c) {
      DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(c, g);
      const int s = a.startRow();
      const auto m = static_cast<std::size_t>(a.localRows());
      const std::vector<double> b(bGlobal.begin() + s,
                                  bGlobal.begin() + s + a.localRows());

      // Unfused reference CG (no preconditioner: z == r).
      std::vector<double> xRef(m, 0.0), r(b), z(b), pd(m), ap(m);
      const double z0 = lisi::sparse::distNorm2(c, std::span<const double>(z));
      const double target = rtol * z0;
      std::copy(z.begin(), z.end(), pd.begin());
      double rz = lisi::sparse::distDot(c, std::span<const double>(r),
                                        std::span<const double>(z));
      int itRef = 0;
      for (int it = 1; it <= maxits; ++it) {
        a.spmv(std::span<const double>(pd), std::span<double>(ap));
        const double pap = lisi::sparse::distDot(
            c, std::span<const double>(pd), std::span<const double>(ap));
        const double alpha = rz / pap;
        for (std::size_t i = 0; i < m; ++i) {
          xRef[i] += alpha * pd[i];
          r[i] -= alpha * ap[i];
        }
        std::copy(r.begin(), r.end(), z.begin());
        const double znorm =
            lisi::sparse::distNorm2(c, std::span<const double>(z));
        itRef = it;
        if (znorm <= atol || znorm <= target) break;
        const double rzNew = lisi::sparse::distDot(
            c, std::span<const double>(r), std::span<const double>(z));
        const double beta = rzNew / rz;
        rz = rzNew;
        for (std::size_t i = 0; i < m; ++i) pd[i] = z[i] + beta * pd[i];
      }

      // Production path (fused dots).
      KSP ksp = nullptr;
      ASSERT_EQ(KSPCreate(c, &ksp), PKSP_SUCCESS);
      ASSERT_EQ(KSPSetOperator(ksp, &a), PKSP_SUCCESS);
      ASSERT_EQ(KSPSetType(ksp, PKSP_CG), PKSP_SUCCESS);
      ASSERT_EQ(KSPSetPCType(ksp, PKSP_PC_NONE), PKSP_SUCCESS);
      ASSERT_EQ(KSPSetTolerances(ksp, rtol, atol, maxits), PKSP_SUCCESS);
      std::vector<double> x(m, 0.0);
      EXPECT_EQ(KSPSolve(ksp, std::span<const double>(b), std::span<double>(x)),
                PKSP_SUCCESS);
      int its = 0;
      KSPGetIterationNumber(ksp, &its);
      KSPDestroy(&ksp);

      EXPECT_EQ(its, itRef) << "p=" << p;
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_EQ(x[i], xRef[i]) << "p=" << p << " entry " << s + i;
      }
    });
  }
}

// ---- blocked multi-RHS: per-lane bitwise identity ---------------------

/// Solve nRhs systems twice — once lane-by-lane through KSPSolve, once
/// through the blocked KSPSolveMulti — and require bitwise-equal lanes.
/// The blocked kernels share only communication (one block matvec per
/// iteration, fused dot batches), never values, so each lane must
/// reproduce its standalone solve exactly.
void checkBlockedMatchesSequential(PkspType type, PkspPcType pc, int ranks) {
  const CsrMatrix g = lisi::sparse::laplacian2d(10, 10);
  const int n = g.rows;
  const int nRhs = 3;
  std::vector<double> bGlobal(static_cast<std::size_t>(n * nRhs));
  Rng rng(7);
  for (auto& v : bGlobal) v = rng.uniform(-1, 1);

  World::run(ranks, [&](Comm& c) {
    DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(c, g);
    const int s = a.startRow();
    const auto m = static_cast<std::size_t>(a.localRows());
    std::vector<double> b(m * nRhs);
    for (int k = 0; k < nRhs; ++k) {
      std::copy(bGlobal.begin() + k * n + s, bGlobal.begin() + k * n + s +
                                                 a.localRows(),
                b.begin() + static_cast<std::ptrdiff_t>(k * m));
    }

    auto makeKsp = [&](KSP* ksp) {
      ASSERT_EQ(KSPCreate(c, ksp), PKSP_SUCCESS);
      ASSERT_EQ(KSPSetOperator(*ksp, &a), PKSP_SUCCESS);
      ASSERT_EQ(KSPSetType(*ksp, type), PKSP_SUCCESS);
      ASSERT_EQ(KSPSetPCType(*ksp, pc), PKSP_SUCCESS);
      ASSERT_EQ(KSPSetTolerances(*ksp, 1e-10, 1e-14, 500), PKSP_SUCCESS);
    };

    // Sequential reference: one standalone KSPSolve per lane.
    std::vector<double> xSeq(m * nRhs, 0.0);
    std::vector<int> itsSeq(nRhs, 0);
    for (int k = 0; k < nRhs; ++k) {
      KSP ksp = nullptr;
      makeKsp(&ksp);
      std::span<double> lane(xSeq.data() + static_cast<std::size_t>(k) * m, m);
      std::span<const double> rhs(b.data() + static_cast<std::size_t>(k) * m,
                                  m);
      ASSERT_EQ(KSPSolve(ksp, rhs, lane), PKSP_SUCCESS);
      KSPGetIterationNumber(ksp, &itsSeq[static_cast<std::size_t>(k)]);
      KSPDestroy(&ksp);
    }

    // Blocked path.
    std::vector<double> xBlk(m * nRhs, 0.0);
    KSP ksp = nullptr;
    makeKsp(&ksp);
    ASSERT_EQ(KSPSolveMulti(ksp, std::span<const double>(b),
                            std::span<double>(xBlk), nRhs),
              PKSP_SUCCESS);
    int itsBlk = 0;
    KSPGetIterationNumber(ksp, &itsBlk);
    KSPDestroy(&ksp);

    EXPECT_EQ(itsBlk, *std::max_element(itsSeq.begin(), itsSeq.end()));
    for (std::size_t i = 0; i < xBlk.size(); ++i) {
      ASSERT_EQ(xBlk[i], xSeq[i])
          << "ranks=" << ranks << " entry " << i << " (lane " << i / m << ")";
    }
  });
}

TEST(PkspMulti, BlockedCgMatchesSequentialBitwise) {
  for (const int p : {1, 2, 3}) {
    checkBlockedMatchesSequential(PKSP_CG, PKSP_PC_JACOBI, p);
  }
}

TEST(PkspMulti, BlockedGmresMatchesSequentialBitwise) {
  for (const int p : {1, 2, 3}) {
    checkBlockedMatchesSequential(PKSP_GMRES, PKSP_PC_ILU0, p);
  }
}

TEST(PkspMulti, FallbackForUnsupportedTypeStillSolves) {
  // BiCGSTAB has no blocked kernel: KSPSolveMulti must quietly run the
  // per-lane fallback and still report success.
  const CsrMatrix g = lisi::sparse::laplacian2d(8, 8);
  const int nRhs = 2;
  World::run(2, [&](Comm& c) {
    DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(c, g);
    const auto m = static_cast<std::size_t>(a.localRows());
    std::vector<double> b(m * nRhs, 1.0), x(m * nRhs, 0.0);
    KSP ksp = nullptr;
    ASSERT_EQ(KSPCreate(c, &ksp), PKSP_SUCCESS);
    ASSERT_EQ(KSPSetOperator(ksp, &a), PKSP_SUCCESS);
    ASSERT_EQ(KSPSetType(ksp, PKSP_BICGSTAB), PKSP_SUCCESS);
    ASSERT_EQ(KSPSetTolerances(ksp, 1e-10, 1e-14, 500), PKSP_SUCCESS);
    EXPECT_EQ(KSPSolveMulti(ksp, std::span<const double>(b),
                            std::span<double>(x), nRhs),
              PKSP_SUCCESS);
    PkspConvergedReason reason;
    KSPGetConvergedReason(ksp, &reason);
    EXPECT_GT(reason, 0);
    KSPDestroy(&ksp);
  });
}

}  // namespace
}  // namespace pksp
