/* Seeded abi-boundary violations: a header under an abi/ directory that
 * leaks C++ across the plain-C plugin boundary.  Line numbers are pinned
 * by tests/lint_test.cpp.
 */
#pragma once

namespace bad_abi {

template <
typename T>
struct Holder {
  T value;
};

class Port {
 public:
  virtual void solve() = 0;
};

inline unsigned long long makeId() {
  std::size_t n = 0;
  if (n == 0) throw 1;
  return n;
}

}  /* end of the seeded C++ header */
