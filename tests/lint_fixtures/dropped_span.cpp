// Seeded violation: dropped-span at line 7 (unbound temporary).
// Not compiled; scanned by tests/lint_test through the lisi_lint binary.

void fixtureDroppedSpan() {
  obs::Span span("fixture.good");  // bound to a local: fine
  doWork();
  obs::Span("fixture.dropped");  // temporary dies immediately: finding here
  doMoreWork();
}
