// Seeded violation: hot-alloc at line 10 (push_back in a marked region).
// Not compiled; scanned by tests/lint_test through the lisi_lint binary.

void fixtureHotAlloc(std::vector<double>& buf) {
  buf.reserve(128);  // outside the region: fine
  // lisi-lint: zero-alloc-begin(fixture hot loop)
  double acc = 0.0;
  for (int i = 0; i < 128; ++i) {
    acc += static_cast<double>(i);
    buf.push_back(acc);  // heap traffic in a zero-alloc region: finding here
  }
  // lisi-lint: zero-alloc-end
  (void)acc;
}
