// Seeded violation: env-knob-doc at line 8 (undocumented knob).
// Not compiled; scanned by tests/lint_test through the lisi_lint binary,
// with --root pointing at this directory: its README.md documents
// LISI_FIXTURE_DOCUMENTED and deliberately omits the other knob.

void fixtureEnvKnob() {
  const char* good = std::getenv("LISI_FIXTURE_DOCUMENTED");  // in README
  const char* bad = std::getenv("LISI_FIXTURE_UNDOCUMENTED");  // finding here
  (void)good;
  (void)bad;
}
