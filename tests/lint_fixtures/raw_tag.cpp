// Seeded violation: raw-tag at line 8 (the literal 42).
// Not compiled; scanned by tests/lint_test through the lisi_lint binary.

void fixtureRawTag(const Comm& comm) {
  constexpr int kGoodTag = tags::kMatrixScatter;
  int payload = 7;
  comm.sendValue(payload, 0, kGoodTag);  // named constant: fine
  comm.sendValue(payload, 0, 42);        // raw literal: finding here
}
