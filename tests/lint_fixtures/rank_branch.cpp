// Seeded violation: rank-branch at line 9 (barrier under rank()==0).
// Not compiled; scanned by tests/lint_test through the lisi_lint binary.

void fixtureRankBranch(const Comm& comm) {
  comm.barrier();  // unconditional: fine
  int x = 1;
  if (comm.rank() == 0) {
    x = 2;
    comm.barrier();  // rank-dependent collective: finding here
  }
  (void)x;
}
