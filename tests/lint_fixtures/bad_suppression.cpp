// Seeded violations: bad-suppression at lines 9, 11, and 13 (reasonless
// allow, unknown rule id, unknown directive).  Each rejected suppression
// leaves its raw-tag finding live (lines 10, 12, 14) — an invalid allow
// must never silently suppress.
// Not compiled; scanned by tests/lint_test through the lisi_lint binary.

void fixtureBadSuppression(const Comm& comm) {
  int v = 1;
  // lisi-lint: allow(raw-tag)
  comm.sendValue(v, 0, 99);
  // lisi-lint: allow(no-such-rule) reason text
  comm.sendValue(v, 0, 99);
  // lisi-lint: frobnicate(everything)
  comm.sendValue(v, 0, 99);
}
