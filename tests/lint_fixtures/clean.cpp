// Clean fixture: exercises every rule's *correct* form plus one properly
// reasoned suppression; lisi_lint must report zero findings here.
// Not compiled; scanned by tests/lint_test through the lisi_lint binary.

void fixtureClean(const Comm& comm, std::vector<double>& buf) {
  constexpr int kTag = tags::kHaloPlan;  // named registry constant
  int v = 3;
  comm.sendValue(v, 1, kTag);
  obs::Span span("fixture.clean");  // bound span
  comm.barrier();                   // collective outside any rank branch
  if (comm.rank() == 0) {
    v = 4;  // rank branch without collectives: fine
  }
  // A suppression done right: known rule, non-empty reason.
  // lisi-lint: allow(raw-tag) fixture demonstrating a well-formed suppression
  comm.sendValue(v, 1, 17);
  buf.reserve(64);  // alloc outside any zero-alloc region
  const char* knob = std::getenv("LISI_FIXTURE_DOCUMENTED");  // documented
  (void)knob;
}
