// CCA framework tests: class registry, instantiation, provides/uses wiring,
// type checking, late binding (dynamic switching), and teardown.
#include <gtest/gtest.h>

#include "cca/cca.hpp"

namespace cca {
namespace {

/// A toy port interface.
class GreeterPort : public Port {
 public:
  virtual std::string greet() = 0;
};

/// Two interchangeable providers of the same port type.
class EnglishGreeter final : public Component {
 public:
  class Impl final : public GreeterPort {
   public:
    std::string greet() override { return "hello"; }
  };
  void setServices(Services& s) override {
    s.addProvidesPort(std::make_shared<Impl>(), "greet", "test.Greeter");
  }
};

class FrenchGreeter final : public Component {
 public:
  class Impl final : public GreeterPort {
   public:
    std::string greet() override { return "bonjour"; }
  };
  void setServices(Services& s) override {
    s.addProvidesPort(std::make_shared<Impl>(), "greet", "test.Greeter");
  }
};

/// A consumer with a uses port (resolves it late, per call).
class Caller final : public Component {
 public:
  void setServices(Services& s) override {
    services_ = &s;
    s.registerUsesPort("greeter", "test.Greeter");
  }
  std::string callGreeter() {
    return services_->getPortAs<GreeterPort>("greeter")->greet();
  }

 private:
  Services* services_ = nullptr;
};

/// A component providing a *different* port type (for mismatch tests).
class NumberPort : public Port {
 public:
  virtual int number() = 0;
};

class NumberProvider final : public Component {
 public:
  class Impl final : public NumberPort {
   public:
    int number() override { return 42; }
  };
  void setServices(Services& s) override {
    s.addProvidesPort(std::make_shared<Impl>(), "num", "test.Number");
  }
};

struct RegisterClasses {
  RegisterClasses() {
    Framework::registerClass("test.EnglishGreeter",
                             [] { return std::make_shared<EnglishGreeter>(); });
    Framework::registerClass("test.FrenchGreeter",
                             [] { return std::make_shared<FrenchGreeter>(); });
    Framework::registerClass("test.Caller",
                             [] { return std::make_shared<Caller>(); });
    Framework::registerClass("test.NumberProvider",
                             [] { return std::make_shared<NumberProvider>(); });
  }
};
const RegisterClasses registerClasses;

TEST(CcaRegistry, ClassesVisible) {
  EXPECT_TRUE(Framework::isClassRegistered("test.EnglishGreeter"));
  EXPECT_FALSE(Framework::isClassRegistered("test.DoesNotExist"));
  const auto names = Framework::registeredClasses();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.Caller"), names.end());
}

TEST(CcaLifecycle, InstantiateAndDestroy) {
  Framework fw;
  fw.instantiate("g", "test.EnglishGreeter");
  EXPECT_EQ(fw.instances(), std::vector<std::string>{"g"});
  fw.destroy("g");
  EXPECT_TRUE(fw.instances().empty());
}

TEST(CcaLifecycle, DuplicateInstanceRejected) {
  Framework fw;
  fw.instantiate("g", "test.EnglishGreeter");
  EXPECT_THROW(fw.instantiate("g", "test.FrenchGreeter"), lisi::Error);
}

TEST(CcaLifecycle, UnknownClassRejected) {
  Framework fw;
  EXPECT_THROW(fw.instantiate("x", "test.NoSuchClass"), lisi::Error);
}

TEST(CcaWiring, ConnectAndCall) {
  Framework fw;
  fw.instantiate("caller", "test.Caller");
  fw.instantiate("greeter", "test.EnglishGreeter");
  fw.connect("caller", "greeter", "greeter", "greet");
  auto port = fw.getProvidesPortAs<GreeterPort>("greeter", "greet");
  EXPECT_EQ(port->greet(), "hello");
  const auto conns = fw.connections();
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0], "caller.greeter -> greeter.greet");
}

TEST(CcaWiring, UsesPortUnconnectedThrows) {
  Framework fw;
  fw.instantiate("caller", "test.Caller");
  EXPECT_FALSE(fw.servicesOf("caller").isConnected("greeter"));
  EXPECT_THROW((void)fw.servicesOf("caller").getPort("greeter"), lisi::Error);
}

TEST(CcaWiring, TypeMismatchRejected) {
  Framework fw;
  fw.instantiate("caller", "test.Caller");
  fw.instantiate("num", "test.NumberProvider");
  EXPECT_THROW(fw.connect("caller", "greeter", "num", "num"), lisi::Error);
}

TEST(CcaWiring, MissingPortsRejected) {
  Framework fw;
  fw.instantiate("caller", "test.Caller");
  fw.instantiate("greeter", "test.EnglishGreeter");
  EXPECT_THROW(fw.connect("caller", "nope", "greeter", "greet"), lisi::Error);
  EXPECT_THROW(fw.connect("caller", "greeter", "greeter", "nope"), lisi::Error);
  EXPECT_THROW(fw.connect("ghost", "greeter", "greeter", "greet"), lisi::Error);
}

TEST(CcaWiring, DoubleConnectRejected) {
  Framework fw;
  fw.instantiate("caller", "test.Caller");
  fw.instantiate("g1", "test.EnglishGreeter");
  fw.instantiate("g2", "test.FrenchGreeter");
  fw.connect("caller", "greeter", "g1", "greet");
  EXPECT_THROW(fw.connect("caller", "greeter", "g2", "greet"), lisi::Error);
}

TEST(CcaDynamicSwitch, ReconnectSwitchesImplementation) {
  // The paper's headline capability: same driver, swapped solver component.
  Framework fw;
  fw.instantiate("caller", "test.Caller");
  fw.instantiate("english", "test.EnglishGreeter");
  fw.instantiate("french", "test.FrenchGreeter");

  // Drive through the uses port resolved late each call.
  fw.connect("caller", "greeter", "english", "greet");
  const Services& s = fw.servicesOf("caller");
  EXPECT_EQ(s.getPortAs<GreeterPort>("greeter")->greet(), "hello");

  fw.disconnect("caller", "greeter");
  fw.connect("caller", "greeter", "french", "greet");
  EXPECT_EQ(s.getPortAs<GreeterPort>("greeter")->greet(), "bonjour");
}

TEST(CcaDynamicSwitch, DisconnectIsIdempotentOnConnections) {
  Framework fw;
  fw.instantiate("caller", "test.Caller");
  fw.instantiate("g", "test.EnglishGreeter");
  fw.connect("caller", "greeter", "g", "greet");
  fw.disconnect("caller", "greeter");
  EXPECT_TRUE(fw.connections().empty());
  fw.disconnect("caller", "greeter");  // no-op
  EXPECT_TRUE(fw.connections().empty());
}

TEST(CcaTeardown, DestroyProviderDisconnectsUsers) {
  Framework fw;
  fw.instantiate("caller", "test.Caller");
  fw.instantiate("g", "test.EnglishGreeter");
  fw.connect("caller", "greeter", "g", "greet");
  fw.destroy("g");
  EXPECT_TRUE(fw.connections().empty());
  EXPECT_FALSE(fw.servicesOf("caller").isConnected("greeter"));
}

TEST(CcaIntrospection, PortListings) {
  Framework fw;
  fw.instantiate("caller", "test.Caller");
  fw.instantiate("g", "test.EnglishGreeter");
  const auto used = fw.servicesOf("caller").usedPorts();
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(used[0].name, "greeter");
  EXPECT_EQ(used[0].type, "test.Greeter");
  const auto prov = fw.servicesOf("g").providedPorts();
  ASSERT_EQ(prov.size(), 1u);
  EXPECT_EQ(prov[0].name, "greet");
}

TEST(CcaIntrospection, WrongCppTypeCaught) {
  Framework fw;
  fw.instantiate("g", "test.EnglishGreeter");
  EXPECT_THROW((void)fw.getProvidesPortAs<NumberPort>("g", "greet"),
               lisi::Error);
}

}  // namespace
}  // namespace cca
