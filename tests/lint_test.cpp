// Tests for the lisi_lint static-analysis pass itself (satellite of the
// compile-time verification PR).  Each file in tests/lint_fixtures/ seeds
// exactly the violations its header comment documents; this test runs the
// real lisi_lint binary over the fixture directory and asserts every rule
// fires at its expected file:line — and nowhere else.
//
// The binary path and fixture directory are injected at configure time via
// LISI_LINT_BIN / LISI_LINT_FIXTURES compile definitions, so the test is
// build-tree-relocatable and exercises the exact artifact verify.sh ships.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct RunResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr merged
};

RunResult runLint(const std::string& args) {
  const std::string cmd =
      std::string(LISI_LINT_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), got);
  }
  const int status = ::pclose(pipe);
  // popen runs through the shell; WEXITSTATUS recovers the tool's exit code.
  r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

// Findings print as `<path>:<line>: [<rule-id>] <message>`.  Reduce each to
// the (basename, line, rule) triple the fixtures pin down.
struct Triple {
  std::string file;
  int line;
  std::string rule;
  bool operator<(const Triple& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

std::set<Triple> parseFindings(const std::string& output) {
  std::set<Triple> out;
  std::istringstream in(output);
  std::string lineText;
  while (std::getline(in, lineText)) {
    const std::size_t lb = lineText.find(": [");
    if (lb == std::string::npos) continue;
    const std::size_t rb = lineText.find(']', lb);
    if (rb == std::string::npos) continue;
    const std::string rule = lineText.substr(lb + 3, rb - lb - 3);
    // Walk back over `<path>:<line>`: the path may itself contain ':' only
    // on exotic filesystems, so split at the last ':' before ": [".
    const std::string loc = lineText.substr(0, lb);
    const std::size_t colon = loc.rfind(':');
    if (colon == std::string::npos) continue;
    int line = 0;
    try {
      line = std::stoi(loc.substr(colon + 1));
    } catch (...) {
      continue;
    }
    std::string path = loc.substr(0, colon);
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos) path = path.substr(slash + 1);
    out.insert({path, line, rule});
  }
  return out;
}

std::string fixtureArgs() {
  // --root points at the fixture directory so env-knob-doc checks the
  // fixture README.md, not the repo one.
  return std::string("--root ") + LISI_LINT_FIXTURES + " " +
         LISI_LINT_FIXTURES;
}

TEST(LintTest, EveryRuleFiresExactlyWhereSeeded) {
  const RunResult r = runLint(fixtureArgs());
  EXPECT_EQ(r.exitCode, 1) << r.output;

  const std::set<Triple> got = parseFindings(r.output);
  const std::set<Triple> want = {
      {"raw_tag.cpp", 8, "raw-tag"},
      {"rank_branch.cpp", 9, "rank-branch"},
      {"dropped_span.cpp", 7, "dropped-span"},
      {"hot_alloc.cpp", 10, "hot-alloc"},
      {"env_knob.cpp", 8, "env-knob-doc"},
      // Malformed directives are findings themselves...
      {"bad_suppression.cpp", 9, "bad-suppression"},
      {"bad_suppression.cpp", 11, "bad-suppression"},
      {"bad_suppression.cpp", 13, "bad-suppression"},
      // ...and never suppress the underlying finding.
      {"bad_suppression.cpp", 10, "raw-tag"},
      {"bad_suppression.cpp", 12, "raw-tag"},
      {"bad_suppression.cpp", 14, "raw-tag"},
      // abi/bad_abi.h leaks C++ into the C plugin surface.
      {"bad_abi.h", 7, "abi-boundary"},
      {"bad_abi.h", 9, "abi-boundary"},
      {"bad_abi.h", 10, "abi-boundary"},
      {"bad_abi.h", 15, "abi-boundary"},
      {"bad_abi.h", 17, "abi-boundary"},
      {"bad_abi.h", 21, "abi-boundary"},
      {"bad_abi.h", 22, "abi-boundary"},
  };
  for (const Triple& t : want) {
    EXPECT_TRUE(got.count(t)) << t.file << ":" << t.line << " [" << t.rule
                              << "] expected but not reported\n"
                              << r.output;
  }
  for (const Triple& t : got) {
    EXPECT_TRUE(want.count(t)) << t.file << ":" << t.line << " [" << t.rule
                               << "] reported but not seeded\n"
                               << r.output;
  }
}

TEST(LintTest, CleanFixtureProducesNoFindings) {
  const RunResult r = runLint(
      std::string("--root ") + LISI_LINT_FIXTURES + " " + LISI_LINT_FIXTURES +
      "/clean.cpp");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_TRUE(parseFindings(r.output).empty()) << r.output;
}

TEST(LintTest, RuleFilterRestrictsFindings) {
  const RunResult r = runLint("--rules dropped-span " + fixtureArgs());
  EXPECT_EQ(r.exitCode, 1) << r.output;
  const std::set<Triple> got = parseFindings(r.output);
  ASSERT_EQ(got.size(), 1u) << r.output;
  EXPECT_EQ(got.begin()->rule, "dropped-span");
  EXPECT_EQ(got.begin()->file, "dropped_span.cpp");
  EXPECT_EQ(got.begin()->line, 7);
}

TEST(LintTest, ListRulesCoversTheWholeCatalog) {
  const RunResult r = runLint("--list-rules");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  for (const char* id : {"raw-tag", "rank-branch", "dropped-span", "hot-alloc",
                         "env-knob-doc", "abi-boundary", "bad-suppression"}) {
    EXPECT_NE(r.output.find(id), std::string::npos)
        << "rule '" << id << "' missing from --list-rules\n"
        << r.output;
  }
}

TEST(LintTest, UnknownRuleFilterIsAUsageError) {
  const RunResult r = runLint("--rules no-such-rule " + fixtureArgs());
  EXPECT_EQ(r.exitCode, 2) << r.output;
}

TEST(LintTest, SummaryLineReportsFileAndFindingCounts) {
  const RunResult r = runLint(fixtureArgs());
  EXPECT_NE(r.output.find("lisi_lint: "), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("finding(s)"), std::string::npos) << r.output;
}

}  // namespace
