// SLU direct-solver tests: exactness on small systems, residuals on large
// ones, orderings, pivoting (including matrices that *require* row
// pivoting), factor reuse across right-hand sides, singular detection,
// and fill statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/pde5pt.hpp"
#include "slu/slu.hpp"
#include "sparse/convert.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"

namespace slu {
namespace {

using lisi::Rng;
using lisi::sparse::CscMatrix;
using lisi::sparse::CsrMatrix;
using lisi::sparse::csrToCsc;

double solveRelResidual(const CsrMatrix& a, const Options& opts,
                        std::vector<double>* xOut = nullptr,
                        Stats* statsOut = nullptr) {
  Rng rng(1234);
  std::vector<double> xTrue(static_cast<std::size_t>(a.rows));
  for (auto& v : xTrue) v = rng.uniform(-1, 1);
  std::vector<double> b(xTrue.size());
  lisi::sparse::spmv(a, std::span<const double>(xTrue), std::span<double>(b));
  std::vector<double> x(xTrue.size());
  solve(csrToCsc(a), std::span<const double>(b), std::span<double>(x), opts,
        statsOut);
  if (xOut) *xOut = x;
  const double rn = lisi::sparse::residualNorm(a, std::span<const double>(x),
                                               std::span<const double>(b));
  return rn / lisi::sparse::norm2(std::span<const double>(b));
}

TEST(SluBasic, Solves2x2Exactly) {
  // [2 1; 1 3] x = [5; 10]  ->  x = [1; 3]
  CsrMatrix a;
  a.rows = 2;
  a.cols = 2;
  a.rowPtr = {0, 2, 4};
  a.colIdx = {0, 1, 0, 1};
  a.values = {2, 1, 1, 3};
  std::vector<double> b{5, 10};
  std::vector<double> x(2);
  solve(csrToCsc(a), std::span<const double>(b), std::span<double>(x));
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(SluBasic, IdentityIsTrivial) {
  CsrMatrix a;
  a.rows = 5;
  a.cols = 5;
  a.rowPtr = {0, 1, 2, 3, 4, 5};
  a.colIdx = {0, 1, 2, 3, 4};
  a.values = {1, 1, 1, 1, 1};
  std::vector<double> b{1, 2, 3, 4, 5};
  std::vector<double> x(5);
  Stats st;
  solve(csrToCsc(a), std::span<const double>(b), std::span<double>(x), {}, &st);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
  EXPECT_EQ(st.nnzL, 5);
  EXPECT_EQ(st.nnzU, 5);
}

TEST(SluPivoting, ZeroDiagonalNeedsRowPivot) {
  // [0 1; 1 0] is perfectly conditioned but has a zero diagonal: without
  // partial pivoting the factorization would fail.
  CsrMatrix a;
  a.rows = 2;
  a.cols = 2;
  a.rowPtr = {0, 1, 2};
  a.colIdx = {1, 0};
  a.values = {1.0, 1.0};
  std::vector<double> b{3.0, 7.0};
  std::vector<double> x(2);
  Stats st;
  Options opts;
  opts.ordering = Ordering::kNatural;
  solve(csrToCsc(a), std::span<const double>(b), std::span<double>(x), opts, &st);
  EXPECT_NEAR(x[0], 7.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
  EXPECT_GT(st.offDiagonalPivots, 0);
}

TEST(SluPivoting, ThresholdZeroKeepsDiagonal) {
  // With diagPivotThresh = 0 the diagonal is always used when nonzero:
  // diagonally dominant systems factor without row swaps.
  Rng rng(5);
  const CsrMatrix a = lisi::sparse::randomDiagDominant(50, 4, 1.0, rng);
  Options opts;
  opts.diagPivotThresh = 0.0;
  Stats st;
  EXPECT_LT(solveRelResidual(a, opts, nullptr, &st), 1e-12);
  EXPECT_EQ(st.offDiagonalPivots, 0);
}

class SluOrderingP : public ::testing::TestWithParam<Ordering> {};

TEST_P(SluOrderingP, SolvesPdeSystemAccurately) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 14;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  Options opts;
  opts.ordering = GetParam();
  EXPECT_LT(solveRelResidual(sys.localA, opts), 1e-11);
}

TEST_P(SluOrderingP, SolvesRandomUnsymmetric) {
  Rng rng(6);
  const CsrMatrix a = lisi::sparse::randomDiagDominant(80, 6, 0.5, rng);
  Options opts;
  opts.ordering = GetParam();
  EXPECT_LT(solveRelResidual(a, opts), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, SluOrderingP,
                         ::testing::Values(Ordering::kNatural, Ordering::kRcm,
                                           Ordering::kMinDeg));

TEST(SluOrderings, PermutationsAreValid) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 8;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  const CscMatrix a = csrToCsc(sys.localA);
  for (Ordering o : {Ordering::kNatural, Ordering::kRcm, Ordering::kMinDeg}) {
    const auto q = computeOrdering(a, o);
    ASSERT_EQ(q.size(), static_cast<std::size_t>(a.cols));
    std::vector<char> seen(q.size(), 0);
    for (int v : q) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, a.cols);
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)]) << "duplicate in perm";
      seen[static_cast<std::size_t>(v)] = 1;
    }
  }
}

TEST(SluOrderings, RcmReducesFillOnPde) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 20;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  Options natural;
  natural.ordering = Ordering::kNatural;
  Options rcm;
  rcm.ordering = Ordering::kRcm;
  Stats stNat, stRcm;
  EXPECT_LT(solveRelResidual(sys.localA, natural, nullptr, &stNat), 1e-10);
  EXPECT_LT(solveRelResidual(sys.localA, rcm, nullptr, &stRcm), 1e-10);
  // The 5-point natural ordering is already banded (bandwidth N); RCM must
  // stay in the same ballpark, not explode the fill.
  EXPECT_LT(stRcm.nnzL + stRcm.nnzU, 2 * (stNat.nnzL + stNat.nnzU));
  EXPECT_GT(stRcm.fillRatio, 1.0);
}

TEST(SluReuse, FactorOnceSolveMany) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 10;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  const auto fact = Factorization::factorize(csrToCsc(sys.localA));
  Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<double> xTrue(static_cast<std::size_t>(sys.globalN));
    for (auto& v : xTrue) v = rng.uniform(-1, 1);
    std::vector<double> b(xTrue.size());
    lisi::sparse::spmv(sys.localA, std::span<const double>(xTrue),
                       std::span<double>(b));
    std::vector<double> x(b.size());
    fact.solve(std::span<const double>(b), std::span<double>(x));
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(x[i], xTrue[i], 1e-9);
    }
  }
}

TEST(SluReuse, SolveManyMatchesRepeatedSolve) {
  Rng rng(8);
  const CsrMatrix a = lisi::sparse::randomDiagDominant(30, 4, 1.0, rng);
  const auto fact = Factorization::factorize(csrToCsc(a));
  const int nrhs = 3;
  std::vector<double> b(static_cast<std::size_t>(30 * nrhs));
  for (auto& v : b) v = rng.uniform(-1, 1);
  std::vector<double> xMany(b.size());
  fact.solveMany(std::span<const double>(b), std::span<double>(xMany), nrhs);
  for (int k = 0; k < nrhs; ++k) {
    std::vector<double> x1(30);
    fact.solve(std::span<const double>(b).subspan(static_cast<std::size_t>(30 * k), 30),
               std::span<double>(x1));
    for (int i = 0; i < 30; ++i) {
      EXPECT_DOUBLE_EQ(x1[static_cast<std::size_t>(i)],
                       xMany[static_cast<std::size_t>(30 * k + i)]);
    }
  }
}

TEST(SluErrors, SingularMatrixDetected) {
  // Second column is exactly zero.
  CsrMatrix a;
  a.rows = 3;
  a.cols = 3;
  a.rowPtr = {0, 2, 3, 5};
  a.colIdx = {0, 2, 0, 0, 2};
  a.values = {1, 2, 3, 4, 5};
  EXPECT_THROW((void)Factorization::factorize(csrToCsc(a)), lisi::Error);
}

TEST(SluErrors, RankDeficientDetected) {
  // Rows 0 and 2 are identical; they remain identical through every column
  // elimination step, so the final pivot candidate is exactly zero.  (A
  // generic rank deficiency only yields a ~1e-16 pivot and, like SuperLU
  // without condition estimation, the factorization would "succeed".)
  CsrMatrix a;
  a.rows = 3;
  a.cols = 3;
  a.rowPtr = {0, 3, 6, 9};
  a.colIdx = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  a.values = {1, 2, 3, 4, 5, 6, 1, 2, 3};
  EXPECT_THROW((void)Factorization::factorize(csrToCsc(a)), lisi::Error);
}

TEST(SluErrors, RectangularRejected) {
  Rng rng(9);
  const CsrMatrix a = lisi::sparse::randomCsr(4, 5, 2, rng);
  CscMatrix csc = csrToCsc(a);
  EXPECT_THROW((void)Factorization::factorize(csc), lisi::Error);
}

TEST(SluErrors, SolveSizeMismatch) {
  const auto fact =
      Factorization::factorize(csrToCsc(lisi::sparse::laplacian1d(6)));
  std::vector<double> b(5), x(6);
  EXPECT_THROW(fact.solve(std::span<const double>(b), std::span<double>(x)),
               lisi::Error);
}

TEST(SluEquilibrate, HandlesBadlyScaledRows) {
  // Rows scaled by 1e12 vs 1e-12: equilibration keeps the solve accurate.
  Rng rng(10);
  CsrMatrix a = lisi::sparse::randomDiagDominant(40, 4, 1.0, rng);
  for (int i = 0; i < a.rows; ++i) {
    const double s = (i % 2 == 0) ? 1e12 : 1e-12;
    for (int k = a.rowPtr[static_cast<std::size_t>(i)];
         k < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      a.values[static_cast<std::size_t>(k)] *= s;
    }
  }
  std::vector<double> xTrue(40);
  for (auto& v : xTrue) v = rng.uniform(-1, 1);
  std::vector<double> b(40);
  lisi::sparse::spmv(a, std::span<const double>(xTrue), std::span<double>(b));
  Options opts;
  opts.equilibrate = true;
  std::vector<double> x(40);
  solve(csrToCsc(a), std::span<const double>(b), std::span<double>(x), opts);
  for (int i = 0; i < 40; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], xTrue[static_cast<std::size_t>(i)],
                1e-6);
  }
}

TEST(SluLarge, Pde200x200ClassSystemSolves) {
  // A mid-size PDE system (the paper's smallest benchmark grid is 50x50;
  // use 50 here to keep the unit suite fast).
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 50;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  Stats st;
  EXPECT_LT(solveRelResidual(sys.localA, {}, nullptr, &st), 1e-10);
  EXPECT_EQ(st.nnzA, lisi::mesh::pde5ptNnz(50));
  EXPECT_GT(st.fillRatio, 1.0);  // direct solves fill in
}

TEST(SluStats, PivotGrowthModestWithPartialPivoting) {
  // Partial pivoting keeps |L| <= 1, so growth on a well-behaved matrix
  // stays small; the identity has growth exactly 1.
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 12;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  Stats st;
  EXPECT_LT(solveRelResidual(sys.localA, {}, nullptr, &st), 1e-10);
  EXPECT_GE(st.pivotGrowth, 1.0 - 1e-12);
  EXPECT_LT(st.pivotGrowth, 100.0);
}

TEST(SluTranspose, SolveTransposeMatchesTransposedMatrix) {
  Rng rng(21);
  const CsrMatrix a = lisi::sparse::randomDiagDominant(35, 4, 1.0, rng);
  const auto fact = Factorization::factorize(csrToCsc(a));
  std::vector<double> xTrue(35);
  for (auto& v : xTrue) v = rng.uniform(-1, 1);
  // b = A' * xTrue; then solveTranspose must recover xTrue.
  std::vector<double> b(35);
  lisi::sparse::spmvTranspose(a, std::span<const double>(xTrue),
                              std::span<double>(b));
  std::vector<double> x(35);
  fact.solveTranspose(std::span<const double>(b), std::span<double>(x));
  for (int i = 0; i < 35; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                xTrue[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(SluTranspose, WorksWithPivotingAndOrdering) {
  // A matrix that needs row pivoting, non-natural ordering, equilibration:
  // the transpose solve must invert every transformation correctly.
  Rng rng(22);
  CsrMatrix a = lisi::sparse::randomDiagDominant(30, 4, 1.0, rng);
  // Break the diagonal dominance of a few rows to force pivoting.
  for (int i = 0; i < 5; ++i) {
    for (int k = a.rowPtr[static_cast<std::size_t>(i * 6)];
         k < a.rowPtr[static_cast<std::size_t>(i * 6) + 1]; ++k) {
      if (a.colIdx[static_cast<std::size_t>(k)] == i * 6) {
        a.values[static_cast<std::size_t>(k)] *= 1e-6;
      }
    }
  }
  Options opts;
  opts.ordering = Ordering::kRcm;
  opts.equilibrate = true;
  const auto fact = Factorization::factorize(csrToCsc(a), opts);
  std::vector<double> xTrue(30);
  for (auto& v : xTrue) v = rng.uniform(-1, 1);
  std::vector<double> b(30);
  lisi::sparse::spmvTranspose(a, std::span<const double>(xTrue),
                              std::span<double>(b));
  std::vector<double> x(30);
  fact.solveTranspose(std::span<const double>(b), std::span<double>(x));
  for (int i = 0; i < 30; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                xTrue[static_cast<std::size_t>(i)], 1e-6);
  }
}

TEST(SluRefinement, ImprovesIllConditionedSolve) {
  // Badly row-scaled system *without* equilibration: plain solve loses
  // digits; refinement recovers them.
  Rng rng(23);
  CsrMatrix a = lisi::sparse::randomDiagDominant(50, 4, 1.0, rng);
  for (int i = 0; i < a.rows; ++i) {
    const double s = std::pow(10.0, (i % 13) - 6);
    for (int k = a.rowPtr[static_cast<std::size_t>(i)];
         k < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      a.values[static_cast<std::size_t>(k)] *= s;
    }
  }
  std::vector<double> xTrue(50);
  for (auto& v : xTrue) v = rng.uniform(-1, 1);
  std::vector<double> b(50);
  lisi::sparse::spmv(a, std::span<const double>(xTrue), std::span<double>(b));
  const lisi::sparse::CscMatrix csc = csrToCsc(a);
  const auto fact = Factorization::factorize(csc);
  std::vector<double> x(50);
  const int steps = fact.solveRefined(csc, std::span<const double>(b),
                                      std::span<double>(x), 5);
  EXPECT_GE(steps, 0);
  const double rel =
      lisi::sparse::residualNorm(a, std::span<const double>(x),
                                 std::span<const double>(b)) /
      lisi::sparse::norm2(std::span<const double>(b));
  EXPECT_LT(rel, 1e-13);
}

TEST(SluRefinement, ZeroRhsTakesNoSteps) {
  const lisi::sparse::CscMatrix a = csrToCsc(lisi::sparse::laplacian1d(10));
  const auto fact = Factorization::factorize(a);
  std::vector<double> b(10, 0.0), x(10, 7.0);
  EXPECT_EQ(fact.solveRefined(a, std::span<const double>(b),
                              std::span<double>(x)),
            0);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SluStats, ExactSolveOfTriangularHasNoFill) {
  // Lower bidiagonal matrix: L = A, U = diag -> no fill at natural order.
  const int n = 20;
  CsrMatrix a;
  a.rows = n;
  a.cols = n;
  a.rowPtr.resize(static_cast<std::size_t>(n) + 1);
  a.rowPtr[0] = 0;
  for (int i = 0; i < n; ++i) {
    if (i > 0) {
      a.colIdx.push_back(i - 1);
      a.values.push_back(-1.0);
    }
    a.colIdx.push_back(i);
    a.values.push_back(2.0);
    a.rowPtr[static_cast<std::size_t>(i) + 1] = static_cast<int>(a.values.size());
  }
  Options opts;
  opts.ordering = Ordering::kNatural;
  opts.diagPivotThresh = 0.0;  // keep diagonal pivots
  Stats st;
  EXPECT_LT(solveRelResidual(a, opts, nullptr, &st), 1e-12);
  EXPECT_EQ(st.nnzL + st.nnzU - n, st.nnzA);  // zero fill
}

}  // namespace
}  // namespace slu
