// LISI integration tests: the SparseSolver port contract exercised against
// all four backend components through the CCA framework.  This is the
// paper's thesis as a test: the same driver code, parameterized only by a
// component class name, must solve the same system through every backend.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/pde_driver.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/convert.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/ops.hpp"

namespace lisi {
namespace {

using comm::Comm;
using comm::World;

struct Backend {
  const char* className;
  std::map<std::string, std::string> params;  // backend-appropriate config
  bool matrixFreeCapable;
};

/// Backend configs for a gridN x gridN paper-PDE solve.
Backend pkspBackend() {
  return {kPkspComponentClass,
          {{"solver", "gmres"}, {"preconditioner", "ilu"}, {"tol", "1e-10"},
           {"maxits", "5000"}},
          true};
}
Backend aztecBackend() {
  return {kAztecComponentClass,
          {{"solver", "gmres"}, {"preconditioner", "ilu"}, {"tol", "1e-10"},
           {"maxits", "5000"}},
          true};
}
Backend sluBackend() {
  return {kSluComponentClass, {{"ordering", "rcm"}}, false};
}
Backend hymgBackend(int gridN) {
  return {kHymgComponentClass,
          {{"mg_grid_n", std::to_string(gridN)}, {"mg_bx", "3"},
           {"tol", "1e-10"}, {"maxits", "100"}},
          false};
}

/// Instantiate driver+solver, wire them, run one PDE experiment.
PdeDriverResult runViaCca(const Comm& comm, const Backend& backend,
                          PdeDriverConfig config) {
  registerSolverComponents();
  registerDriverComponent();
  cca::Framework fw;
  fw.instantiate("driver", kDriverComponentClass);
  fw.instantiate("solver", backend.className);
  fw.connect("driver", kSparseSolverPortName, "solver", kSparseSolverPortName);
  fw.connect("solver", kMatrixFreePortName, "driver", kMatrixFreePortName);
  for (const auto& [k, v] : backend.params) config.solverParams[k] = v;
  auto go = fw.getProvidesPortAs<GoPort>("driver", kGoPortName);
  return go->go(comm, config);
}

// ---- the same driver solves through every backend ----------------------

class LisiAllBackends
    : public ::testing::TestWithParam<std::tuple<int, int>> {};
// param: (backendIndex, ranks)

Backend makeBackend(int index, int gridN) {
  switch (index) {
    case 0: return pkspBackend();
    case 1: return aztecBackend();
    case 2: return sluBackend();
    default: return hymgBackend(gridN);
  }
}

const char* backendLabel(int index) {
  switch (index) {
    case 0: return "pksp";
    case 1: return "aztec";
    case 2: return "slu";
    default: return "hymg";
  }
}

TEST_P(LisiAllBackends, SolvesPaperPdeThroughPort) {
  const auto [backendIndex, ranks] = GetParam();
  const int gridN = 15;  // odd so hymg can coarsen
  // Serial reference by direct dense-ish comparison: use residual check plus
  // cross-backend agreement below; here assert residual smallness.
  World::run(ranks, [&](Comm& c) {
    PdeDriverConfig config;
    config.gridN = gridN;
    const PdeDriverResult res =
        runViaCca(c, makeBackend(backendIndex, gridN), config);
    ASSERT_TRUE(res.solved) << backendLabel(backendIndex)
                            << " rc=" << res.returnCode;
    // Relative residual against the RHS norm.
    mesh::Pde5ptSpec spec;
    spec.gridN = gridN;
    const auto sys = mesh::assembleLocal(spec, c.rank(), c.size());
    const double bnorm =
        sparse::distNorm2(c, std::span<const double>(sys.localB));
    EXPECT_LT(res.residualNorm / bnorm, 1e-8)
        << backendLabel(backendIndex) << " on " << ranks << " ranks";
    EXPECT_GE(res.solveSeconds, 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(
    BackendsByRanks, LisiAllBackends,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(backendLabel(std::get<0>(info.param))) + "_ranks" +
             std::to_string(std::get<1>(info.param));
    });

// The paper's zero-app-change claim applied to pipelining: the same driver
// code picks up communication-hiding Krylov loops purely through a solver
// parameter ("pksp_pipeline"), with no change to how it calls the port.
TEST(LisiPkspPipeline, ParameterEnablesPipelinedSolve) {
  const int gridN = 15;
  for (const char* mode : {"on", "auto"}) {
    World::run(4, [&](Comm& c) {
      PdeDriverConfig config;
      config.gridN = gridN;
      Backend backend = pkspBackend();
      backend.params["solver"] = "bicgstab";
      backend.params["preconditioner"] = "jacobi";
      backend.params["pksp_pipeline"] = mode;
      const PdeDriverResult res = runViaCca(c, backend, config);
      ASSERT_TRUE(res.solved) << "pksp_pipeline=" << mode;
      mesh::Pde5ptSpec spec;
      spec.gridN = gridN;
      const auto sys = mesh::assembleLocal(spec, c.rank(), c.size());
      const double bnorm =
          sparse::distNorm2(c, std::span<const double>(sys.localB));
      EXPECT_LT(res.residualNorm / bnorm, 1e-8) << "pksp_pipeline=" << mode;
    });
  }
}

TEST(LisiPkspPipeline, BadPipelineValueRejected) {
  World::run(1, [](Comm& c) {
    PdeDriverConfig config;
    config.gridN = 9;
    Backend backend = pkspBackend();
    backend.params["pksp_pipeline"] = "sideways";
    const PdeDriverResult res = runViaCca(c, backend, config);
    EXPECT_FALSE(res.solved);
  });
}

TEST(LisiCrossBackend, AllBackendsAgreeOnTheSolution) {
  const int gridN = 15;
  std::vector<std::vector<double>> solutions;
  for (int backend = 0; backend < 4; ++backend) {
    World::run(2, [&](Comm& c) {
      PdeDriverConfig config;
      config.gridN = gridN;
      const PdeDriverResult res =
          runViaCca(c, makeBackend(backend, gridN), config);
      ASSERT_TRUE(res.solved);
      const auto full = c.gatherv(
          std::span<const double>(res.localSolution), 0);
      if (c.rank() == 0) solutions.push_back(full);
    });
  }
  ASSERT_EQ(solutions.size(), 4u);
  for (std::size_t b = 1; b < 4; ++b) {
    ASSERT_EQ(solutions[b].size(), solutions[0].size());
    for (std::size_t i = 0; i < solutions[0].size(); ++i) {
      EXPECT_NEAR(solutions[b][i], solutions[0][i], 1e-6)
          << "backend " << backendLabel(static_cast<int>(b)) << " entry " << i;
    }
  }
}

TEST(LisiDynamicSwitch, ReconnectSwapsSolverAtRuntime) {
  // Figure 4: one driver instance, three solver components, links swapped
  // dynamically — no change to the driver.
  World::run(2, [](Comm& c) {
    registerSolverComponents();
    registerDriverComponent();
    cca::Framework fw;
    fw.instantiate("driver", kDriverComponentClass);
    fw.instantiate("petsc-ish", kPkspComponentClass);
    fw.instantiate("trilinos-ish", kAztecComponentClass);
    fw.instantiate("superlu-ish", kSluComponentClass);
    auto go = fw.getProvidesPortAs<GoPort>("driver", kGoPortName);

    std::vector<double> first;
    for (const char* solver : {"petsc-ish", "trilinos-ish", "superlu-ish"}) {
      fw.connect("driver", kSparseSolverPortName, solver,
                 kSparseSolverPortName);
      PdeDriverConfig config;
      config.gridN = 12;
      config.solverParams = {{"solver", "gmres"}, {"preconditioner", "ilu"},
                             {"tol", "1e-10"}, {"maxits", "5000"}};
      const PdeDriverResult res = go->go(c, config);
      ASSERT_TRUE(res.solved) << solver;
      if (first.empty()) {
        first = res.localSolution;
      } else {
        for (std::size_t i = 0; i < first.size(); ++i) {
          EXPECT_NEAR(res.localSolution[i], first[i], 1e-6) << solver;
        }
      }
      fw.disconnect("driver", kSparseSolverPortName);
    }
  });
}

TEST(LisiMatrixFree, PkspAndAztecSolveWithoutAssembledMatrix) {
  World::run(2, [](Comm& c) {
    for (int backend : {0, 1}) {
      PdeDriverConfig config;
      config.gridN = 12;
      config.matrixFree = true;
      Backend be = makeBackend(backend, config.gridN);
      be.params["preconditioner"] = "none";  // matrix-free: no assembled PC
      be.params["maxits"] = "20000";
      const PdeDriverResult res = runViaCca(c, be, config);
      ASSERT_TRUE(res.solved) << backendLabel(backend);
    }
  });
}

TEST(LisiMatrixFree, SluReportsUnsupported) {
  World::run(1, [](Comm& c) {
    PdeDriverConfig config;
    config.gridN = 8;
    config.matrixFree = true;
    const PdeDriverResult res = runViaCca(c, sluBackend(), config);
    EXPECT_FALSE(res.solved);
    EXPECT_EQ(res.returnCode, static_cast<int>(ErrorCode::kUnsupported));
  });
}

TEST(LisiMultiRhs, SolvesSeveralRightHandSides) {
  // §5.2 use case (c): same A, several RHS in one setupRHS/solve pair.
  World::run(2, [](Comm& c) {
    PdeDriverConfig config;
    config.gridN = 10;
    config.nRhs = 3;
    const PdeDriverResult res = runViaCca(c, sluBackend(), config);
    ASSERT_TRUE(res.solved);
    // All three RHS were identical, so all three solutions must coincide.
    const int m = static_cast<int>(res.localSolution.size()) / 3;
    for (int k = 1; k < 3; ++k) {
      for (int i = 0; i < m; ++i) {
        EXPECT_DOUBLE_EQ(res.localSolution[static_cast<std::size_t>(k * m + i)],
                         res.localSolution[static_cast<std::size_t>(i)]);
      }
    }
  });
}

// ---- port-contract details against one backend (pksp) ------------------

std::shared_ptr<SparseSolver> freshSolver(cca::Framework& fw,
                                          const char* cls = kPkspComponentClass) {
  registerSolverComponents();
  static int counter = 0;
  const std::string name = "s" + std::to_string(counter++);
  fw.instantiate(name, cls);
  return fw.getProvidesPortAs<SparseSolver>(name, kSparseSolverPortName);
}

TEST(LisiContract, CallOrderEnforced) {
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    auto s = freshSolver(fw);
    double v[1] = {1.0};
    int idx[1] = {0};
    // setupMatrix before initialize: bad state.
    EXPECT_EQ(s->setupMatrix(RArray<const double>(v, 1),
                             RArray<const int>(idx, 1),
                             RArray<const int>(idx, 1), 1),
              static_cast<int>(ErrorCode::kBadState));
    const long h = comm::registerHandle(c);
    EXPECT_EQ(s->initialize(h), 0);
    // setupMatrix before the distribution is declared: still bad state.
    EXPECT_EQ(s->setupMatrix(RArray<const double>(v, 1),
                             RArray<const int>(idx, 1),
                             RArray<const int>(idx, 1), 1),
              static_cast<int>(ErrorCode::kBadState));
    comm::releaseHandle(h);
  });
}

TEST(LisiContract, BadHandleRejected) {
  World::run(1, [](Comm&) {
    cca::Framework fw;
    auto s = freshSolver(fw);
    EXPECT_EQ(s->initialize(999999L),
              static_cast<int>(ErrorCode::kInvalidArgument));
  });
}

TEST(LisiContract, DistributionSettersValidate) {
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    auto s = freshSolver(fw);
    const long h = comm::registerHandle(c);
    s->initialize(h);
    EXPECT_EQ(s->setStartRow(-1), static_cast<int>(ErrorCode::kInvalidArgument));
    EXPECT_EQ(s->setLocalRows(-2), static_cast<int>(ErrorCode::kInvalidArgument));
    EXPECT_EQ(s->setBlockSize(0), static_cast<int>(ErrorCode::kInvalidArgument));
    EXPECT_EQ(s->setStartRow(0), 0);
    EXPECT_EQ(s->setLocalRows(4), 0);
    EXPECT_EQ(s->setLocalNNZ(4), 0);
    EXPECT_EQ(s->setGlobalCols(4), 0);
    // nnz contradicting setLocalNNZ is rejected.
    double v[2] = {1.0, 2.0};
    int r[2] = {0, 1};
    int cidx[2] = {0, 1};
    EXPECT_EQ(s->setupMatrix(RArray<const double>(v, 2),
                             RArray<const int>(r, 2),
                             RArray<const int>(cidx, 2), 2),
              static_cast<int>(ErrorCode::kInvalidArgument));
    comm::releaseHandle(h);
  });
}

TEST(LisiContract, UnknownParamReported) {
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    auto s = freshSolver(fw);
    const long h = comm::registerHandle(c);
    s->initialize(h);
    EXPECT_EQ(s->set("definitely_not_a_key", "x"),
              static_cast<int>(ErrorCode::kUnsupported));
    EXPECT_EQ(s->set("tol", "1e-9"), 0);
    EXPECT_EQ(s->setInt("maxits", 50), 0);
    EXPECT_EQ(s->setBool("use_initial_guess", true), 0);
    EXPECT_EQ(s->setDouble("atol", 1e-30), 0);
    comm::releaseHandle(h);
  });
}

TEST(LisiContract, GetAllReflectsSettings) {
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    auto s = freshSolver(fw);
    const long h = comm::registerHandle(c);
    s->initialize(h);
    s->set("solver", "bicgstab");
    s->setDouble("tol", 1e-7);
    const std::string all = s->get_all();
    EXPECT_NE(all.find("backend=pksp"), std::string::npos);
    EXPECT_NE(all.find("solver=bicgstab"), std::string::npos);
    EXPECT_NE(all.find("tol=1e-07"), std::string::npos);
    comm::releaseHandle(h);
  });
}

/// Drive one tiny diagonal system through a solver port using the given
/// setup callable; checks x == b / 2.
template <class SetupFn>
void solveTinyDiagonal(Comm& c, SetupFn&& setup) {
  cca::Framework fw;
  registerSolverComponents();
  fw.instantiate("s", kPkspComponentClass);
  auto s = fw.getProvidesPortAs<SparseSolver>("s", kSparseSolverPortName);
  const long h = comm::registerHandle(c);
  ASSERT_EQ(s->initialize(h), 0);
  ASSERT_EQ(s->setStartRow(0), 0);
  ASSERT_EQ(s->setLocalRows(4), 0);
  ASSERT_EQ(s->setGlobalCols(4), 0);
  ASSERT_EQ(s->set("solver", "cg"), 0);
  ASSERT_EQ(s->setDouble("tol", 1e-12), 0);
  setup(*s);
  double b[4] = {2, 4, 6, 8};
  ASSERT_EQ(s->setupRHS(RArray<const double>(b, 4), 4, 1), 0);
  double x[4] = {0, 0, 0, 0};
  double st[kStatusLength] = {};
  ASSERT_EQ(s->solve(RArray<double>(x, 4), RArray<double>(st, kStatusLength),
                     4, kStatusLength),
            0);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x[i], b[i] / 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(st[kStatusConverged], 1.0);
  comm::releaseHandle(h);
}

TEST(LisiFormats, FewArgsCooInput) {
  World::run(1, [](Comm& c) {
    solveTinyDiagonal(c, [](SparseSolver& s) {
      const double v[4] = {2, 2, 2, 2};
      const int rows[4] = {0, 1, 2, 3};
      const int cols[4] = {0, 1, 2, 3};
      ASSERT_EQ(s.setupMatrix(RArray<const double>(v, 4),
                              RArray<const int>(rows, 4),
                              RArray<const int>(cols, 4), 4),
                0);
    });
  });
}

TEST(LisiFormats, CsrInput) {
  World::run(1, [](Comm& c) {
    solveTinyDiagonal(c, [](SparseSolver& s) {
      const double v[4] = {2, 2, 2, 2};
      const int ptr[5] = {0, 1, 2, 3, 4};
      const int cols[4] = {0, 1, 2, 3};
      ASSERT_EQ(s.setupMatrix(RArray<const double>(v, 4),
                              RArray<const int>(ptr, 5),
                              RArray<const int>(cols, 4), SparseStruct::kCsr,
                              5, 4),
                0);
    });
  });
}

TEST(LisiFormats, CsrWithFortranOffset) {
  World::run(1, [](Comm& c) {
    solveTinyDiagonal(c, [](SparseSolver& s) {
      // 1-based CSR, as a Fortran application would pass it.
      const double v[4] = {2, 2, 2, 2};
      const int ptr[5] = {1, 2, 3, 4, 5};
      const int cols[4] = {1, 2, 3, 4};
      ASSERT_EQ(s.setupMatrix(RArray<const double>(v, 4),
                              RArray<const int>(ptr, 5),
                              RArray<const int>(cols, 4), SparseStruct::kCsr,
                              5, 4, /*offset=*/1),
                0);
    });
  });
}

TEST(LisiFormats, FemDuplicatesAssemble) {
  World::run(1, [](Comm& c) {
    solveTinyDiagonal(c, [](SparseSolver& s) {
      // Each diagonal entry contributed as two halves (FEM assembly).
      const double v[8] = {1, 1, 1, 1, 1, 1, 1, 1};
      const int rows[8] = {0, 0, 1, 1, 2, 2, 3, 3};
      const int cols[8] = {0, 0, 1, 1, 2, 2, 3, 3};
      ASSERT_EQ(s.setupMatrix(RArray<const double>(v, 8),
                              RArray<const int>(rows, 8),
                              RArray<const int>(cols, 8), SparseStruct::kFem,
                              8, 8),
                0);
    });
  });
}

TEST(LisiFormats, MsrInput) {
  World::run(1, [](Comm& c) {
    solveTinyDiagonal(c, [](SparseSolver& s) {
      // MSR: diag {2,2,2,2}, no off-diagonals.  values = diag + pad.
      const double v[5] = {2, 2, 2, 2, 0};
      const int bindx[5] = {5, 5, 5, 5, 5};
      ASSERT_EQ(s.setupMatrix(RArray<const double>(v, 5),
                              RArray<const int>(bindx, 5),
                              RArray<const int>(nullptr, 0),
                              SparseStruct::kMsr, 5, 5),
                0);
    });
  });
}

TEST(LisiFormats, VbrInput) {
  World::run(1, [](Comm& c) {
    solveTinyDiagonal(c, [](SparseSolver& s) {
      // 2x2 blocks, block-diagonal: two dense 2x2 blocks = diag(2,2,2,2).
      ASSERT_EQ(s.setBlockSize(2), 0);
      const double v[8] = {2, 0, 0, 2, 2, 0, 0, 2};  // column-major blocks
      const int bpntr[3] = {0, 1, 2};
      const int bindx[2] = {0, 1};
      ASSERT_EQ(s.setupMatrix(RArray<const double>(v, 8),
                              RArray<const int>(bpntr, 3),
                              RArray<const int>(bindx, 2), SparseStruct::kVbr,
                              3, 8),
                0);
    });
  });
}

TEST(LisiFormats, AllFormatsGiveTheSameAnswerOnPde) {
  // Property: the adapted matrix is identical no matter which format the
  // application chose — same solver, same solution.
  World::run(2, [](Comm& c) {
    registerSolverComponents();
    mesh::Pde5ptSpec spec;
    spec.gridN = 10;
    const auto sys = mesh::assembleLocal(spec, c.rank(), c.size());
    const int m = sys.localA.rows;
    const auto coo = sparse::csrToCoo(sys.localA);

    auto solveWith = [&](auto setupFn) {
      cca::Framework fw;
      fw.instantiate("s", kPkspComponentClass);
      auto s = fw.getProvidesPortAs<SparseSolver>("s", kSparseSolverPortName);
      const long h = comm::registerHandle(c);
      EXPECT_EQ(s->initialize(h), 0);
      EXPECT_EQ(s->setStartRow(sys.startRow), 0);
      EXPECT_EQ(s->setLocalRows(m), 0);
      EXPECT_EQ(s->setGlobalCols(sys.globalN), 0);
      EXPECT_EQ(s->set("solver", "bicgstab"), 0);
      EXPECT_EQ(s->set("preconditioner", "jacobi"), 0);
      EXPECT_EQ(s->setDouble("tol", 1e-12), 0);
      EXPECT_EQ(s->setInt("maxits", 10000), 0);
      setupFn(*s);
      EXPECT_EQ(s->setupRHS(RArray<const double>(sys.localB.data(), m), m, 1),
                0);
      std::vector<double> x(static_cast<std::size_t>(m));
      std::vector<double> st(kStatusLength);
      EXPECT_EQ(s->solve(RArray<double>(x.data(), m),
                         RArray<double>(st.data(), kStatusLength), m,
                         kStatusLength),
                0);
      comm::releaseHandle(h);
      return x;
    };

    const auto viaCsr = solveWith([&](SparseSolver& s) {
      EXPECT_EQ(
          s.setupMatrix(
              RArray<const double>(sys.localA.values.data(), sys.localA.nnz()),
              RArray<const int>(sys.localA.rowPtr.data(), m + 1),
              RArray<const int>(sys.localA.colIdx.data(), sys.localA.nnz()),
              SparseStruct::kCsr, m + 1, sys.localA.nnz()),
          0);
    });
    const auto viaCoo = solveWith([&](SparseSolver& s) {
      // Global row indices for COO input.
      std::vector<int> grow(coo.rowIdx.size());
      for (std::size_t k = 0; k < grow.size(); ++k) {
        grow[k] = coo.rowIdx[k] + sys.startRow;
      }
      EXPECT_EQ(s.setupMatrix(
                    RArray<const double>(coo.values.data(), coo.nnz()),
                    RArray<const int>(grow.data(), coo.nnz()),
                    RArray<const int>(coo.colIdx.data(), coo.nnz()), coo.nnz()),
                0);
    });
    for (std::size_t i = 0; i < viaCsr.size(); ++i) {
      EXPECT_NEAR(viaCsr[i], viaCoo[i], 1e-9);
    }
  });
}

TEST(LisiStatus, TruncatedStatusArrayHonored) {
  World::run(1, [](Comm& c) {
    solveTinyDiagonal(c, [](SparseSolver& s) {
      const double v[4] = {2, 2, 2, 2};
      const int rows[4] = {0, 1, 2, 3};
      const int cols[4] = {0, 1, 2, 3};
      ASSERT_EQ(s.setupMatrix(RArray<const double>(v, 4),
                              RArray<const int>(rows, 4),
                              RArray<const int>(cols, 4), 4),
                0);
    });
    // Now a separate solve asking for only 2 status entries.
    cca::Framework fw;
    fw.instantiate("s", kPkspComponentClass);
    auto s = fw.getProvidesPortAs<SparseSolver>("s", kSparseSolverPortName);
    const long h = comm::registerHandle(c);
    s->initialize(h);
    s->setStartRow(0);
    s->setLocalRows(2);
    s->setGlobalCols(2);
    const double v[2] = {3, 3};
    const int idx[2] = {0, 1};
    s->setupMatrix(RArray<const double>(v, 2), RArray<const int>(idx, 2),
                   RArray<const int>(idx, 2), 2);
    const double b[2] = {3, 6};
    s->setupRHS(RArray<const double>(b, 2), 2, 1);
    double x[2] = {};
    double st[2] = {-1, -1};
    EXPECT_EQ(s->solve(RArray<double>(x, 2), RArray<double>(st, 2), 2, 2), 0);
    EXPECT_GE(st[0], 0.0);  // iterations filled
    EXPECT_GE(st[1], 0.0);  // residual filled
    comm::releaseHandle(h);
  });
}

TEST(LisiReuse, ChangedMatrixSamePatternResolves) {
  // §5.2 use case (d): new values, same pattern; with and without
  // preconditioner reuse the solve must succeed.
  World::run(2, [](Comm& c) {
    registerSolverComponents();
    cca::Framework fw;
    fw.instantiate("s", kPkspComponentClass);
    auto s = fw.getProvidesPortAs<SparseSolver>("s", kSparseSolverPortName);
    const long h = comm::registerHandle(c);
    mesh::Pde5ptSpec spec;
    spec.gridN = 10;
    auto sys = mesh::assembleLocal(spec, c.rank(), c.size());
    const int m = sys.localA.rows;
    ASSERT_EQ(s->initialize(h), 0);
    s->setStartRow(sys.startRow);
    s->setLocalRows(m);
    s->setGlobalCols(sys.globalN);
    s->set("solver", "gmres");
    s->set("preconditioner", "ilu");
    s->setDouble("tol", 1e-10);
    s->setBool("reuse_preconditioner", true);
    for (int round = 0; round < 3; ++round) {
      // Scale the operator a little each round (same sparsity pattern).
      sparse::CsrMatrix a = sys.localA;
      for (auto& val : a.values) val *= (1.0 + 0.05 * round);
      ASSERT_EQ(s->setupMatrix(
                    RArray<const double>(a.values.data(), a.nnz()),
                    RArray<const int>(a.rowPtr.data(), m + 1),
                    RArray<const int>(a.colIdx.data(), a.nnz()),
                    SparseStruct::kCsr, m + 1, a.nnz()),
                0);
      ASSERT_EQ(s->setupRHS(RArray<const double>(sys.localB.data(), m), m, 1),
                0);
      std::vector<double> x(static_cast<std::size_t>(m));
      std::vector<double> st(kStatusLength);
      EXPECT_EQ(s->solve(RArray<double>(x.data(), m),
                         RArray<double>(st.data(), kStatusLength), m,
                         kStatusLength),
                0)
          << "round " << round;
    }
    comm::releaseHandle(h);
  });
}

}  // namespace
}  // namespace lisi
