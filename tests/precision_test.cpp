// Mixed-precision tests (the "precision" parameter / LISI_PRECISION knob):
//
//   * precision=mixed must converge to the SAME tolerance as float64 on
//     every backend, at 1 and 4 ranks — float32 is a speed path for the
//     error-correction side (preconditioner applies, MG cycles, LU
//     factors), never an accuracy downgrade, because every outer
//     iteration, residual, and convergence decision stays float64
//     (iterative refinement / defect correction).
//   * precision=double must be BITWISE identical to the pre-knob path
//     (the parameter unset): the knob is opt-in and the default solves
//     nothing differently.
//   * The lisi::prec counters must prove the float32 kernels actually ran
//     (bytesLow, lowApplies, refineSweeps) — a silent fallback to float64
//     would pass any accuracy assertion.
//
// Counter multiplicity: prec::Stats counters are process-wide (MiniMPI
// ranks are threads of one process), so per-rank events bump them by p per
// world; samples are taken inside barrier sandwiches, tune-test style.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/ops.hpp"
#include "support/prec.hpp"

namespace lisi {
namespace {

using comm::Comm;
using comm::World;

constexpr const char* kBackendClasses[] = {
    kPkspComponentClass, kAztecComponentClass, kSluComponentClass,
    kHymgComponentClass};
constexpr const char* kBackendNames[] = {"pksp", "aztec", "slu", "hymg"};

/// Backends with a float32 speed path; aztec accepts the knob but runs
/// float64 throughout (the LISI contract: a backend without the path must
/// still take the parameter).
bool hasLowPath(int backendIdx) { return backendIdx != 1; }

/// Apply backend-appropriate parameters for the paper PDE at gridN.
void configure(SparseSolver& s, const std::string& cls, int gridN) {
  if (cls == kHymgComponentClass) {
    ASSERT_EQ(s.setInt("mg_grid_n", gridN), 0);
    ASSERT_EQ(s.setDouble("mg_bx", 3.0), 0);
    ASSERT_EQ(s.setDouble("tol", 1e-10), 0);
    ASSERT_EQ(s.setInt("maxits", 200), 0);
  } else if (cls == kSluComponentClass) {
    ASSERT_EQ(s.set("ordering", "rcm"), 0);
  } else {
    ASSERT_EQ(s.set("solver", "gmres"), 0);
    ASSERT_EQ(s.set("preconditioner", "ilu"), 0);
    ASSERT_EQ(s.setDouble("tol", 1e-10), 0);
    ASSERT_EQ(s.setInt("maxits", 10000), 0);
  }
}

/// Wire a fresh component of `cls` over this rank's share of the paper PDE,
/// optionally setting the "precision" parameter, then solve.  Returns the
/// local solution; asserts convergence to the backend tolerance.
std::vector<double> solvePde(const Comm& c, const std::string& cls, int gridN,
                             const std::string& precision) {
  registerSolverComponents();
  mesh::Pde5ptSpec spec;
  spec.gridN = gridN;
  const auto sys = mesh::assembleLocal(spec, c.rank(), c.size());
  const int m = sys.localA.rows;

  cca::Framework fw;
  static int counter = 0;
  const std::string name = "prec" + std::to_string(counter++);
  fw.instantiate(name, cls);
  auto s = fw.getProvidesPortAs<SparseSolver>(name, kSparseSolverPortName);
  const long h = comm::registerHandle(c);
  EXPECT_EQ(s->initialize(h), 0);
  EXPECT_EQ(s->setStartRow(sys.startRow), 0);
  EXPECT_EQ(s->setLocalRows(m), 0);
  EXPECT_EQ(s->setGlobalCols(sys.globalN), 0);
  configure(*s, cls, gridN);
  if (!precision.empty()) {
    EXPECT_EQ(s->set("precision", precision), 0);
  }
  EXPECT_EQ(s->setupMatrix(
                RArray<const double>(sys.localA.values.data(), sys.localA.nnz()),
                RArray<const int>(sys.localA.rowPtr.data(), m + 1),
                RArray<const int>(sys.localA.colIdx.data(), sys.localA.nnz()),
                SparseStruct::kCsr, m + 1, sys.localA.nnz()),
            0);
  EXPECT_EQ(s->setupRHS(RArray<const double>(sys.localB.data(), m), m, 1), 0);
  std::vector<double> x(static_cast<std::size_t>(m), 0.0);
  std::vector<double> st(kStatusLength, 0.0);
  EXPECT_EQ(s->solve(RArray<double>(x.data(), m),
                     RArray<double>(st.data(), kStatusLength), m,
                     kStatusLength),
            0);
  EXPECT_DOUBLE_EQ(st[kStatusConverged], 1.0) << cls << " " << precision;
  // Same accuracy bar for every precision mode: the true relative residual.
  const double bnorm = sparse::distNorm2(c, std::span<const double>(sys.localB));
  EXPECT_LT(st[kStatusResidualNorm] / bnorm, 1e-8) << cls << " " << precision;
  comm::releaseHandle(h);
  return x;
}

/// Clears LISI_PRECISION for the test body and restores it on exit:
/// "parameter unset" must mean the pre-knob default even when the verify
/// flow runs this whole binary with the knob forced (LISI_PRECISION=mixed).
class ScopedClearPrecisionEnv {
 public:
  ScopedClearPrecisionEnv() {
    const char* prev = std::getenv("LISI_PRECISION");
    had_ = prev != nullptr;
    if (had_) prev_ = prev;
    unsetenv("LISI_PRECISION");
  }
  ~ScopedClearPrecisionEnv() {
    if (had_) setenv("LISI_PRECISION", prev_.c_str(), 1);
  }
  ScopedClearPrecisionEnv(const ScopedClearPrecisionEnv&) = delete;
  ScopedClearPrecisionEnv& operator=(const ScopedClearPrecisionEnv&) = delete;

 private:
  bool had_ = false;
  std::string prev_;
};

/// prec::stats() inside a barrier sandwich (counters are process-wide).
prec::Stats sampleStats(const Comm& c) {
  c.barrier();
  const prec::Stats s = prec::stats();
  c.barrier();
  return s;
}

using BackendRanks = std::tuple<int, int>;  // backend index, world size

class PrecisionBackends : public ::testing::TestWithParam<BackendRanks> {};

TEST_P(PrecisionBackends, MixedConvergesToSameRtolAsDouble) {
  const auto [backendIdx, p] = GetParam();
  const std::string cls = kBackendClasses[backendIdx];
  const int gridN = 15;  // odd: hymg-compatible
  World::run(p, [&](Comm& c) {
    (void)solvePde(c, cls, gridN, "double");

    const prec::Stats s0 = sampleStats(c);
    (void)solvePde(c, cls, gridN, "mixed");
    const prec::Stats s1 = sampleStats(c);

    // The solve resolved to kMixed on every rank...
    EXPECT_EQ(s1.mixedSolves - s0.mixedSolves, p);
    if (hasLowPath(backendIdx)) {
      // ...and the float32 kernels actually ran: value bytes moved through
      // float32 storage, and at least one low-precision apply per rank.
      EXPECT_GT(s1.bytesLow - s0.bytesLow, 0) << cls;
      EXPECT_GT(s1.lowApplies - s0.lowApplies, 0) << cls;
    } else {
      // Aztec takes the knob but has no float32 path: all-float64 traffic.
      EXPECT_EQ(s1.bytesLow - s0.bytesLow, 0) << cls;
    }
    if (cls == kSluComponentClass) {
      // Direct solves under mixed wrap the float32 triangular solves in
      // float64 iterative refinement; the sweeps must be visible.
      EXPECT_GT(s1.refineSweeps - s0.refineSweeps, 0);
    }
  });
}

TEST_P(PrecisionBackends, DoubleIsBitwiseIdenticalToUnset) {
  // precision=double IS the pre-knob code path: identical solutions to the
  // last bit, not merely to a tolerance.  Indexed by rank: each rank-thread
  // writes only its own slot.
  const auto [backendIdx, p] = GetParam();
  const std::string cls = kBackendClasses[backendIdx];
  const int gridN = 15;
  const ScopedClearPrecisionEnv noEnv;
  std::vector<std::vector<double>> xUnset(static_cast<std::size_t>(p));
  World::run(p, [&](Comm& c) {
    xUnset[static_cast<std::size_t>(c.rank())] = solvePde(c, cls, gridN, "");
  });
  World::run(p, [&](Comm& c) {
    const std::vector<double> xDouble = solvePde(c, cls, gridN, "double");
    const std::vector<double>& mine =
        xUnset[static_cast<std::size_t>(c.rank())];
    ASSERT_EQ(xDouble.size(), mine.size());
    for (std::size_t i = 0; i < xDouble.size(); ++i) {
      EXPECT_EQ(xDouble[i], mine[i])
          << kBackendNames[backendIdx] << " rank " << c.rank() << " row " << i;
    }
  });
}

std::string backendRanksName(
    const ::testing::TestParamInfo<BackendRanks>& info) {
  return std::string(kBackendNames[std::get<0>(info.param)]) + "_ranks" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PrecisionBackends,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 4)),
                         backendRanksName);

// ---- the environment knob and the auto policy ----------------------------

TEST(PrecisionEnv, EnvKnobSelectsMixedAndParamOverrides) {
  // LISI_PRECISION=mixed spells precision=mixed without touching the
  // application ("change the numerics of a deployed binary from the
  // launch script"); an explicit parameter still wins.  The previous value
  // is restored afterwards — the verify flow runs this binary with
  // LISI_PRECISION forced and later tests must still see that setting.
  const int p = 2;
  const char* prevEnv = std::getenv("LISI_PRECISION");
  const std::string prev = prevEnv != nullptr ? prevEnv : "";
  ASSERT_EQ(setenv("LISI_PRECISION", "mixed", 1), 0);
  World::run(p, [&](Comm& c) {
    const prec::Stats s0 = sampleStats(c);
    (void)solvePde(c, kPkspComponentClass, 15, "");  // env decides: mixed
    const prec::Stats s1 = sampleStats(c);
    EXPECT_EQ(s1.mixedSolves - s0.mixedSolves, p);
    EXPECT_GT(s1.bytesLow - s0.bytesLow, 0);

    (void)solvePde(c, kPkspComponentClass, 15, "double");  // param wins
    const prec::Stats s2 = sampleStats(c);
    EXPECT_EQ(s2.mixedSolves - s1.mixedSolves, 0);
    EXPECT_EQ(s2.bytesLow - s1.bytesLow, 0);
  });
  if (prevEnv != nullptr) {
    ASSERT_EQ(setenv("LISI_PRECISION", prev.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("LISI_PRECISION"), 0);
  }
}

TEST(PrecisionAuto, AutoResolvesByOperatorSize) {
  // precision=auto goes mixed only above the global-nnz gate: the float32
  // mirrors and refinement overhead must have enough bandwidth savings to
  // pay for themselves.  gridN=15 (~1k nnz) stays double; gridN=90
  // (~40k nnz) crosses kAutoMinGlobalNnz and goes mixed.
  const int p = 2;
  World::run(p, [&](Comm& c) {
    const prec::Stats s0 = sampleStats(c);
    (void)solvePde(c, kPkspComponentClass, 15, "auto");
    const prec::Stats s1 = sampleStats(c);
    EXPECT_EQ(s1.mixedSolves - s0.mixedSolves, 0);
    EXPECT_EQ(s1.bytesLow - s0.bytesLow, 0);

    (void)solvePde(c, kPkspComponentClass, 90, "auto");
    const prec::Stats s2 = sampleStats(c);
    EXPECT_EQ(s2.mixedSolves - s1.mixedSolves, p);
    EXPECT_GT(s2.bytesLow - s1.bytesLow, 0);
  });
}

}  // namespace
}  // namespace lisi
