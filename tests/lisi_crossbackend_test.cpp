// Cross-backend LISI property sweeps: every backend must accept every
// input format, honor the generic parameter vocabulary it advertises, and
// report errors (not crash or mis-solve) for what it does not support.
#include <gtest/gtest.h>

#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/pde_driver.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/convert.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/ops.hpp"

namespace lisi {
namespace {

using comm::Comm;
using comm::World;

constexpr const char* kBackendClasses[] = {
    kPkspComponentClass, kAztecComponentClass, kSluComponentClass,
    kHymgComponentClass};

/// Apply backend-appropriate parameters for the paper PDE at gridN.
void configure(SparseSolver& s, const std::string& cls, int gridN) {
  if (cls == kHymgComponentClass) {
    ASSERT_EQ(s.setInt("mg_grid_n", gridN), 0);
    ASSERT_EQ(s.setDouble("mg_bx", 3.0), 0);
    ASSERT_EQ(s.setDouble("tol", 1e-10), 0);
    ASSERT_EQ(s.setInt("maxits", 200), 0);
  } else if (cls == kSluComponentClass) {
    ASSERT_EQ(s.set("ordering", "rcm"), 0);
  } else {
    ASSERT_EQ(s.set("solver", "gmres"), 0);
    ASSERT_EQ(s.set("preconditioner", "ilu"), 0);
    ASSERT_EQ(s.setDouble("tol", 1e-10), 0);
    ASSERT_EQ(s.setInt("maxits", 10000), 0);
  }
}

using BackendFormat = std::tuple<int, SparseStruct>;

class BackendFormatMatrix : public ::testing::TestWithParam<BackendFormat> {};

TEST_P(BackendFormatMatrix, EveryBackendAcceptsEveryFormat) {
  const auto [backendIdx, format] = GetParam();
  const std::string cls = kBackendClasses[backendIdx];
  const int gridN = 15;  // odd: hymg-compatible
  registerSolverComponents();

  World::run(2, [&](Comm& c) {
    mesh::Pde5ptSpec spec;
    spec.gridN = gridN;
    const auto sys = mesh::assembleLocal(spec, c.rank(), c.size());
    const int m = sys.localA.rows;

    cca::Framework fw;
    fw.instantiate("s", cls);
    auto s = fw.getProvidesPortAs<SparseSolver>("s", kSparseSolverPortName);
    const long h = comm::registerHandle(c);
    ASSERT_EQ(s->initialize(h), 0);
    ASSERT_EQ(s->setStartRow(sys.startRow), 0);
    ASSERT_EQ(s->setLocalRows(m), 0);
    ASSERT_EQ(s->setGlobalCols(sys.globalN), 0);
    configure(*s, cls, gridN);

    int rc = -1;
    switch (format) {
      case SparseStruct::kCsr:
        rc = s->setupMatrix(
            RArray<const double>(sys.localA.values.data(), sys.localA.nnz()),
            RArray<const int>(sys.localA.rowPtr.data(), m + 1),
            RArray<const int>(sys.localA.colIdx.data(), sys.localA.nnz()),
            SparseStruct::kCsr, m + 1, sys.localA.nnz());
        break;
      case SparseStruct::kCoo:
      case SparseStruct::kFem: {
        const auto coo = sparse::csrToCoo(sys.localA);
        std::vector<int> grow(coo.rowIdx.size());
        for (std::size_t k = 0; k < grow.size(); ++k) {
          grow[k] = coo.rowIdx[k] + sys.startRow;
        }
        rc = s->setupMatrix(
            RArray<const double>(coo.values.data(), coo.nnz()),
            RArray<const int>(grow.data(), coo.nnz()),
            RArray<const int>(coo.colIdx.data(), coo.nnz()), format,
            coo.nnz(), coo.nnz());
        break;
      }
      case SparseStruct::kMsr: {
        // Build a *local-block* MSR (diag implicit at startRow+i, so the
        // off-diagonal section must carry the global columns).
        sparse::CooMatrix offdiag;
        offdiag.rows = m;
        offdiag.cols = sys.globalN;
        std::vector<double> diag(static_cast<std::size_t>(m), 0.0);
        for (int i = 0; i < m; ++i) {
          for (int k = sys.localA.rowPtr[static_cast<std::size_t>(i)];
               k < sys.localA.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
            const int col = sys.localA.colIdx[static_cast<std::size_t>(k)];
            if (col == sys.startRow + i) {
              diag[static_cast<std::size_t>(i)] +=
                  sys.localA.values[static_cast<std::size_t>(k)];
            } else {
              offdiag.rowIdx.push_back(i);
              offdiag.colIdx.push_back(col);
              offdiag.values.push_back(
                  sys.localA.values[static_cast<std::size_t>(k)]);
            }
          }
        }
        const auto offCsr = sparse::cooToCsr(offdiag);
        std::vector<int> bindxPtr(static_cast<std::size_t>(m) + 1);
        std::vector<double> values(static_cast<std::size_t>(m) + 1, 0.0);
        for (int i = 0; i < m; ++i) values[static_cast<std::size_t>(i)] = diag[static_cast<std::size_t>(i)];
        values.insert(values.end(), offCsr.values.begin(), offCsr.values.end());
        for (int i = 0; i <= m; ++i) {
          bindxPtr[static_cast<std::size_t>(i)] =
              m + 1 + offCsr.rowPtr[static_cast<std::size_t>(i)];
        }
        rc = s->setupMatrix(
            RArray<const double>(values.data(), static_cast<int>(values.size())),
            RArray<const int>(bindxPtr.data(), m + 1),
            RArray<const int>(offCsr.colIdx.data(),
                              static_cast<int>(offCsr.colIdx.size())),
            SparseStruct::kMsr, m + 1, static_cast<int>(values.size()));
        break;
      }
      default:
        GTEST_SKIP();
    }
    ASSERT_EQ(rc, 0) << cls << " rejected " << sparse::sparseStructName(format);

    ASSERT_EQ(s->setupRHS(RArray<const double>(sys.localB.data(), m), m, 1), 0);
    std::vector<double> x(static_cast<std::size_t>(m), 0.0);
    std::vector<double> st(kStatusLength, 0.0);
    ASSERT_EQ(s->solve(RArray<double>(x.data(), m),
                       RArray<double>(st.data(), kStatusLength), m,
                       kStatusLength),
              0)
        << cls << " failed to solve from " << sparse::sparseStructName(format);
    const double bnorm = sparse::distNorm2(c, std::span<const double>(sys.localB));
    EXPECT_LT(st[kStatusResidualNorm] / bnorm, 1e-8);
    comm::releaseHandle(h);
  });
}

std::string backendFormatName(
    const ::testing::TestParamInfo<BackendFormat>& info) {
  static constexpr const char* kNames[] = {"pksp", "aztec", "slu", "hymg"};
  return std::string(kNames[std::get<0>(info.param)]) + "_" +
         lisi::sparse::sparseStructName(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAllFormats, BackendFormatMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(SparseStruct::kCsr,
                                         SparseStruct::kCoo,
                                         SparseStruct::kFem,
                                         SparseStruct::kMsr)),
    backendFormatName);

TEST(BackendParams, GetAllNamesEveryBackend) {
  registerSolverComponents();
  World::run(1, [](Comm&) {
    const char* expected[] = {"backend=pksp", "backend=aztec", "backend=slu",
                              "backend=hymg"};
    for (int i = 0; i < 4; ++i) {
      cca::Framework fw;
      fw.instantiate("s", kBackendClasses[i]);
      auto s = fw.getProvidesPortAs<SparseSolver>("s", kSparseSolverPortName);
      EXPECT_NE(s->get_all().find(expected[i]), std::string::npos);
    }
  });
}

TEST(BackendParams, BackendSpecificKeysScoped) {
  // Each backend accepts its own keys and rejects the others' exotic ones.
  registerSolverComponents();
  World::run(1, [](Comm&) {
    cca::Framework fw;
    fw.instantiate("pksp", kPkspComponentClass);
    fw.instantiate("slu", kSluComponentClass);
    fw.instantiate("hymg", kHymgComponentClass);
    auto pksp = fw.getProvidesPortAs<SparseSolver>("pksp", kSparseSolverPortName);
    auto slu = fw.getProvidesPortAs<SparseSolver>("slu", kSparseSolverPortName);
    auto hymg = fw.getProvidesPortAs<SparseSolver>("hymg", kSparseSolverPortName);
    EXPECT_EQ(pksp->set("restart", "50"), 0);
    EXPECT_EQ(pksp->set("ordering", "rcm"),
              static_cast<int>(ErrorCode::kUnsupported));
    EXPECT_EQ(slu->set("ordering", "mindeg"), 0);
    EXPECT_EQ(slu->set("restart", "50"),
              static_cast<int>(ErrorCode::kUnsupported));
    EXPECT_EQ(hymg->set("mg_gamma", "2"), 0);
    EXPECT_EQ(hymg->set("pivot_threshold", "0.5"),
              static_cast<int>(ErrorCode::kUnsupported));
    // The common vocabulary is accepted everywhere (§6.5).
    for (auto& s : {pksp, slu, hymg}) {
      EXPECT_EQ(s->set("tol", "1e-9"), 0);
      EXPECT_EQ(s->set("maxits", "100"), 0);
    }
  });
}

TEST(BackendErrors, HymgRejectsMismatchedOperator) {
  // Passing a matrix that is not the advertised PDE operator must fail
  // loudly (kInvalidArgument), not silently mis-solve.
  registerSolverComponents();
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    fw.instantiate("s", kHymgComponentClass);
    auto s = fw.getProvidesPortAs<SparseSolver>("s", kSparseSolverPortName);
    const long h = comm::registerHandle(c);
    const int gridN = 9;
    const int n = gridN * gridN;
    ASSERT_EQ(s->initialize(h), 0);
    s->setStartRow(0);
    s->setLocalRows(n);
    s->setGlobalCols(n);
    s->setInt("mg_grid_n", gridN);
    s->setDouble("mg_bx", 3.0);
    // Feed the *Laplacian* while declaring bx=3: mismatch.
    mesh::Pde5ptSpec spec;
    spec.gridN = gridN;
    auto sys = mesh::assembleGlobal(spec);
    for (auto& v : sys.localA.values) v *= 2.0;  // definitely not the stencil
    ASSERT_EQ(s->setupMatrix(
                  RArray<const double>(sys.localA.values.data(),
                                       sys.localA.nnz()),
                  RArray<const int>(sys.localA.rowPtr.data(), n + 1),
                  RArray<const int>(sys.localA.colIdx.data(), sys.localA.nnz()),
                  SparseStruct::kCsr, n + 1, sys.localA.nnz()),
              0);
    ASSERT_EQ(s->setupRHS(RArray<const double>(sys.localB.data(), n), n, 1), 0);
    std::vector<double> x(static_cast<std::size_t>(n));
    std::vector<double> st(kStatusLength);
    EXPECT_EQ(s->solve(RArray<double>(x.data(), n),
                       RArray<double>(st.data(), kStatusLength), n,
                       kStatusLength),
              static_cast<int>(ErrorCode::kInvalidArgument));
    comm::releaseHandle(h);
  });
}

TEST(DriverComponent, ReportsFailureWhenUnwired) {
  registerSolverComponents();
  registerDriverComponent();
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    fw.instantiate("driver", kDriverComponentClass);
    auto go = fw.getProvidesPortAs<GoPort>("driver", kGoPortName);
    PdeDriverConfig config;
    config.gridN = 5;
    // Solver uses-port not connected: the driver must throw through the
    // CCA error path, not crash.
    EXPECT_THROW((void)go->go(c, config), Error);
  });
}

TEST(DriverComponent, ConsecutiveRunsIndependent) {
  registerSolverComponents();
  registerDriverComponent();
  World::run(2, [](Comm& c) {
    cca::Framework fw;
    fw.instantiate("driver", kDriverComponentClass);
    fw.instantiate("solver", kSluComponentClass);
    fw.connect("driver", kSparseSolverPortName, "solver",
               kSparseSolverPortName);
    auto go = fw.getProvidesPortAs<GoPort>("driver", kGoPortName);
    PdeDriverConfig small;
    small.gridN = 8;
    PdeDriverConfig larger;
    larger.gridN = 12;
    const auto r1 = go->go(c, small);
    const auto r2 = go->go(c, larger);  // different size: no stale state
    const auto r3 = go->go(c, small);
    ASSERT_TRUE(r1.solved);
    ASSERT_TRUE(r2.solved);
    ASSERT_TRUE(r3.solved);
    ASSERT_EQ(r1.localSolution.size(), r3.localSolution.size());
    for (std::size_t i = 0; i < r1.localSolution.size(); ++i) {
      EXPECT_DOUBLE_EQ(r1.localSolution[i], r3.localSolution[i]);
    }
  });
}

}  // namespace
}  // namespace lisi
