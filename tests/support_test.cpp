// Unit tests for src/support: error handling, statistics, RNG, strings.
#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/timer.hpp"

namespace lisi {
namespace {

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    LISI_CHECK(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(Error, CheckMacroPassesSilently) {
  EXPECT_NO_THROW(LISI_CHECK(2 + 2 == 4, "arithmetic broke"));
}

TEST(Error, CodeNamesAreStable) {
  EXPECT_STREQ(errorCodeName(ErrorCode::kOk), "ok");
  EXPECT_STREQ(errorCodeName(ErrorCode::kNumericFailure), "numeric-failure");
  EXPECT_STREQ(errorCodeName(ErrorCode::kUnsupported), "unsupported");
}

TEST(Stats, MeanMinMaxMedian) {
  RunStats s;
  for (double v : {3.0, 1.0, 2.0, 5.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Stats, MedianEvenCount) {
  RunStats s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Stats, StddevMatchesHandComputation) {
  RunStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  // Known dataset: sample stddev = sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyThrows) {
  RunStats s;
  EXPECT_THROW((void)s.mean(), Error);
  EXPECT_THROW((void)s.min(), Error);
  EXPECT_THROW((void)s.median(), Error);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, IntInBoundsInclusive) {
  Rng rng(11);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.intIn(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    sawLo |= (v == 2);
    sawHi |= (v == 5);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Strings, TrimAndLower) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(toLower("GMRES"), "gmres");
}

TEST(Strings, ParseBool) {
  EXPECT_EQ(parseBool("true"), true);
  EXPECT_EQ(parseBool(" YES "), true);
  EXPECT_EQ(parseBool("0"), false);
  EXPECT_EQ(parseBool("off"), false);
  EXPECT_FALSE(parseBool("maybe").has_value());
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parseInt("123"), 123);
  EXPECT_EQ(parseInt(" -45 "), -45);
  EXPECT_FALSE(parseInt("12.5").has_value());
  EXPECT_FALSE(parseInt("12x").has_value());
  EXPECT_FALSE(parseInt("").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parseDouble("1e-8").value(), 1e-8);
  EXPECT_DOUBLE_EQ(parseDouble(" -2.5 ").value(), -2.5);
  EXPECT_FALSE(parseDouble("abc").has_value());
  EXPECT_FALSE(parseDouble("1.0junk").has_value());
}

TEST(Strings, Split) {
  const auto parts = split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(split("one", ',').size(), 1u);
  EXPECT_EQ(split("a,,b", ',')[1], "");
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  // Busy-wait a tiny amount; just assert monotonicity and nonnegativity.
  const double t0 = t.seconds();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double t1 = t.seconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GE(t1, t0);
  t.reset();
  EXPECT_LE(t.seconds(), t1 + 1.0);
}

TEST(Timer, ScopedTimerAccumulates) {
  double sink = 0.0;
  {
    ScopedTimer s(sink);
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x = x + 1.0;
  }
  EXPECT_GE(sink, 0.0);
  const double first = sink;
  {
    ScopedTimer s(sink);
  }
  EXPECT_GE(sink, first);
}

}  // namespace
}  // namespace lisi
