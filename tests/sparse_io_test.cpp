// MatrixMarket I/O tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "sparse/generate.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"

namespace lisi::sparse {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("lisi_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

TEST(MatrixMarket, StreamRoundTrip) {
  Rng rng(1);
  const CsrMatrix a = randomCsr(15, 11, 4, rng);
  std::stringstream ss;
  writeMatrixMarket(ss, a);
  const CsrMatrix back = readMatrixMarket(ss);
  EXPECT_EQ(back.rows, a.rows);
  EXPECT_EQ(back.cols, a.cols);
  EXPECT_LT(maxAbsDiff(a, back), 1e-15);
}

TEST(MatrixMarket, FileRoundTrip) {
  TempDir tmp;
  Rng rng(2);
  const CsrMatrix a = randomCsr(8, 8, 3, rng);
  writeMatrixMarket(tmp.path("a.mtx"), a);
  const CsrMatrix back = readMatrixMarket(tmp.path("a.mtx"));
  EXPECT_LT(maxAbsDiff(a, back), 1e-15);
}

TEST(MatrixMarket, SymmetricInputExpands) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
        "% lower triangle of [2 1; 1 3]\n"
        "2 2 3\n"
        "1 1 2.0\n"
        "2 1 1.0\n"
        "2 2 3.0\n";
  const CsrMatrix a = readMatrixMarket(ss);
  EXPECT_EQ(a.nnz(), 4);
  const auto dense = toDense(a);
  EXPECT_DOUBLE_EQ(dense[1], 1.0);
  EXPECT_DOUBLE_EQ(dense[2], 1.0);
}

TEST(MatrixMarket, RejectsPattern) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n";
  EXPECT_THROW((void)readMatrixMarket(ss), Error);
}

TEST(MatrixMarket, RejectsTruncated) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n";
  EXPECT_THROW((void)readMatrixMarket(ss), Error);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW((void)readMatrixMarket("/nonexistent/path/x.mtx"), Error);
}

TEST(MatrixMarket, VectorRoundTrip) {
  TempDir tmp;
  std::vector<double> v{1.0, -2.5, 3.75, 0.0};
  writeMatrixMarketVector(tmp.path("v.mtx"), std::span<const double>(v));
  const auto back = readMatrixMarketVector(tmp.path("v.mtx"));
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(back[i], v[i]);
}

TEST(MatrixMarket, PreservesFullPrecision) {
  std::stringstream ss;
  CsrMatrix a;
  a.rows = 1;
  a.cols = 1;
  a.rowPtr = {0, 1};
  a.colIdx = {0};
  a.values = {1.0 / 3.0};
  writeMatrixMarket(ss, a);
  const CsrMatrix back = readMatrixMarket(ss);
  EXPECT_DOUBLE_EQ(back.values[0], 1.0 / 3.0);  // bit-exact via %.17g
}

}  // namespace
}  // namespace lisi::sparse
