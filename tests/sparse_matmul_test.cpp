// SpGEMM tests: serial product against dense reference, distributed product
// against the serial one across rank counts and shapes, and the Galerkin
// triple product.
#include <gtest/gtest.h>

#include "comm/comm.hpp"
#include "sparse/convert.hpp"
#include "sparse/generate.hpp"
#include "sparse/matmul.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"

namespace lisi::sparse {
namespace {

using comm::Comm;
using comm::World;

/// Dense reference product.
std::vector<double> denseMul(const CsrMatrix& a, const CsrMatrix& b) {
  const auto da = toDense(a);
  const auto db = toDense(b);
  std::vector<double> dc(static_cast<std::size_t>(a.rows) *
                             static_cast<std::size_t>(b.cols),
                         0.0);
  for (int i = 0; i < a.rows; ++i) {
    for (int k = 0; k < a.cols; ++k) {
      const double av = da[static_cast<std::size_t>(i * a.cols + k)];
      if (av == 0.0) continue;
      for (int j = 0; j < b.cols; ++j) {
        dc[static_cast<std::size_t>(i * b.cols + j)] +=
            av * db[static_cast<std::size_t>(k * b.cols + j)];
      }
    }
  }
  return dc;
}

TEST(MatMul, SmallKnownProduct) {
  // [1 2; 0 3] * [4 0; 1 5] = [6 10; 3 15]
  CsrMatrix a;
  a.rows = 2; a.cols = 2;
  a.rowPtr = {0, 2, 3};
  a.colIdx = {0, 1, 1};
  a.values = {1, 2, 3};
  CsrMatrix b;
  b.rows = 2; b.cols = 2;
  b.rowPtr = {0, 1, 3};
  b.colIdx = {0, 0, 1};
  b.values = {4, 1, 5};
  const CsrMatrix c = matMul(a, b);
  const auto d = toDense(c);
  EXPECT_DOUBLE_EQ(d[0], 6);
  EXPECT_DOUBLE_EQ(d[1], 10);
  EXPECT_DOUBLE_EQ(d[2], 3);
  EXPECT_DOUBLE_EQ(d[3], 15);
}

TEST(MatMul, DimensionMismatchRejected) {
  Rng rng(1);
  const CsrMatrix a = randomCsr(3, 4, 2, rng);
  const CsrMatrix b = randomCsr(5, 3, 2, rng);
  EXPECT_THROW((void)matMul(a, b), Error);
}

TEST(MatMul, IdentityIsNeutral) {
  Rng rng(2);
  const CsrMatrix a = randomCsr(7, 7, 3, rng);
  CsrMatrix eye;
  eye.rows = 7; eye.cols = 7;
  eye.rowPtr = {0, 1, 2, 3, 4, 5, 6, 7};
  eye.colIdx = {0, 1, 2, 3, 4, 5, 6};
  eye.values.assign(7, 1.0);
  CsrMatrix canon = a;
  canon.canonicalize();
  EXPECT_LT(maxAbsDiff(matMul(a, eye), canon), 1e-14);
  EXPECT_LT(maxAbsDiff(matMul(eye, a), canon), 1e-14);
}

struct MulShape {
  int m, k, n, nnzPerRow;
  std::uint64_t seed;
};

class MatMulProperty : public ::testing::TestWithParam<MulShape> {};

TEST_P(MatMulProperty, MatchesDenseReference) {
  const MulShape s = GetParam();
  Rng rng(s.seed);
  const CsrMatrix a = randomCsr(s.m, s.k, s.nnzPerRow, rng);
  const CsrMatrix b = randomCsr(s.k, s.n, s.nnzPerRow, rng);
  const CsrMatrix c = matMul(a, b);
  const auto ref = denseMul(a, b);
  const auto got = toDense(c);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-12);
  }
  EXPECT_TRUE(c.isCanonical());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulProperty,
    ::testing::Values(MulShape{1, 1, 1, 1, 1}, MulShape{4, 6, 5, 2, 2},
                      MulShape{10, 10, 10, 3, 3}, MulShape{16, 8, 24, 4, 4},
                      MulShape{25, 25, 25, 1, 5}, MulShape{12, 20, 6, 5, 6}));

class DistMatMulP : public ::testing::TestWithParam<int> {};

TEST_P(DistMatMulP, SquareProductMatchesSerial) {
  const int p = GetParam();
  Rng rng(10);
  const CsrMatrix ga = randomCsr(41, 41, 4, rng);
  const CsrMatrix gb = randomCsr(41, 41, 4, rng);
  const CsrMatrix ref = matMul(ga, gb);
  World::run(p, [&](Comm& c) {
    DistCsrMatrix a = DistCsrMatrix::scatterFromRoot(c, ga);
    DistCsrMatrix b = DistCsrMatrix::scatterFromRoot(c, gb);
    const DistCsrMatrix prod = distMatMul(a, b);
    const CsrMatrix gathered = prod.gatherToRoot(0);
    if (c.rank() == 0) {
      EXPECT_LT(maxAbsDiff(gathered, ref), 1e-12);
    }
  });
}

TEST_P(DistMatMulP, RectangularProductMatchesSerial) {
  const int p = GetParam();
  Rng rng(11);
  // R (12x30) * A (30x30): the multigrid R*A shape.
  const CsrMatrix gr = randomCsr(12, 30, 3, rng);
  const CsrMatrix ga = randomCsr(30, 30, 4, rng);
  const CsrMatrix ref = matMul(gr, ga);
  World::run(p, [&](Comm& c) {
    const BlockRowPartition rPart(12, c.size());
    const BlockRowPartition aPart(30, c.size());
    auto slice = [&](const CsrMatrix& g, const BlockRowPartition& part) {
      const int s = part.startRow(c.rank());
      const int m = part.localRows(c.rank());
      CsrMatrix local;
      local.rows = m;
      local.cols = g.cols;
      local.rowPtr.assign(static_cast<std::size_t>(m) + 1, 0);
      for (int i = 0; i < m; ++i) {
        const int gb = g.rowPtr[static_cast<std::size_t>(s + i)];
        const int ge = g.rowPtr[static_cast<std::size_t>(s + i) + 1];
        local.colIdx.insert(local.colIdx.end(), g.colIdx.begin() + gb,
                            g.colIdx.begin() + ge);
        local.values.insert(local.values.end(), g.values.begin() + gb,
                            g.values.begin() + ge);
        local.rowPtr[static_cast<std::size_t>(i) + 1] =
            static_cast<int>(local.values.size());
      }
      return local;
    };
    DistCsrMatrix r(c, 12, 30, rPart.startRow(c.rank()), slice(gr, rPart),
                    aPart.boundaries());
    DistCsrMatrix a(c, 30, 30, aPart.startRow(c.rank()), slice(ga, aPart));
    const DistCsrMatrix prod = distMatMul(r, a);
    EXPECT_EQ(prod.globalRows(), 12);
    EXPECT_EQ(prod.globalCols(), 30);
    const CsrMatrix gathered = prod.gatherToRoot(0);
    if (c.rank() == 0) {
      EXPECT_LT(maxAbsDiff(gathered, ref), 1e-12);
    }
  });
}

TEST_P(DistMatMulP, GalerkinTripleProductMatchesSerial) {
  const int p = GetParam();
  Rng rng(12);
  const CsrMatrix gr = randomCsr(8, 20, 3, rng);
  const CsrMatrix ga = randomCsr(20, 20, 4, rng);
  const CsrMatrix gp = transpose(gr);  // P = R' (typical Galerkin pairing)
  const CsrMatrix ref = matMul(matMul(gr, ga), gp);
  World::run(p, [&](Comm& c) {
    const BlockRowPartition cPart(8, c.size());
    const BlockRowPartition fPart(20, c.size());
    auto slice = [&](const CsrMatrix& g, const BlockRowPartition& part) {
      const int s = part.startRow(c.rank());
      const int m = part.localRows(c.rank());
      CsrMatrix local;
      local.rows = m;
      local.cols = g.cols;
      local.rowPtr.assign(static_cast<std::size_t>(m) + 1, 0);
      for (int i = 0; i < m; ++i) {
        const int gb = g.rowPtr[static_cast<std::size_t>(s + i)];
        const int ge = g.rowPtr[static_cast<std::size_t>(s + i) + 1];
        local.colIdx.insert(local.colIdx.end(), g.colIdx.begin() + gb,
                            g.colIdx.begin() + ge);
        local.values.insert(local.values.end(), g.values.begin() + gb,
                            g.values.begin() + ge);
        local.rowPtr[static_cast<std::size_t>(i) + 1] =
            static_cast<int>(local.values.size());
      }
      return local;
    };
    DistCsrMatrix r(c, 8, 20, cPart.startRow(c.rank()), slice(gr, cPart),
                    fPart.boundaries());
    DistCsrMatrix a(c, 20, 20, fPart.startRow(c.rank()), slice(ga, fPart));
    DistCsrMatrix pm(c, 20, 8, fPart.startRow(c.rank()), slice(gp, fPart),
                     cPart.boundaries());
    const DistCsrMatrix coarse = galerkinProduct(r, a, pm);
    EXPECT_EQ(coarse.globalRows(), 8);
    EXPECT_EQ(coarse.globalCols(), 8);
    const CsrMatrix gathered = coarse.gatherToRoot(0);
    if (c.rank() == 0) {
      EXPECT_LT(maxAbsDiff(gathered, ref), 1e-12);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistMatMulP, ::testing::Values(1, 2, 3, 4, 8));

TEST(DistMatMul, MismatchedPartitionsRejected) {
  EXPECT_THROW(
      World::run(2,
                 [](Comm& c) {
                   Rng rng(13);
                   const CsrMatrix ga = randomCsr(10, 12, 2, rng);
                   const CsrMatrix gb = randomCsr(12, 10, 2, rng);
                   // a's colStarts defaults to empty (rectangular without
                   // colStarts): constructor requires them for spmv but the
                   // product requires matching partitions.
                   const BlockRowPartition aPart(10, c.size());
                   const BlockRowPartition bPart(12, c.size());
                   auto slice = [&](const CsrMatrix& g,
                                    const BlockRowPartition& part) {
                     const int s = part.startRow(c.rank());
                     const int m = part.localRows(c.rank());
                     CsrMatrix local;
                     local.rows = m;
                     local.cols = g.cols;
                     local.rowPtr.assign(static_cast<std::size_t>(m) + 1, 0);
                     for (int i = 0; i < m; ++i) {
                       const int gb2 = g.rowPtr[static_cast<std::size_t>(s + i)];
                       const int ge = g.rowPtr[static_cast<std::size_t>(s + i) + 1];
                       local.colIdx.insert(local.colIdx.end(),
                                           g.colIdx.begin() + gb2,
                                           g.colIdx.begin() + ge);
                       local.values.insert(local.values.end(),
                                           g.values.begin() + gb2,
                                           g.values.begin() + ge);
                       local.rowPtr[static_cast<std::size_t>(i) + 1] =
                           static_cast<int>(local.values.size());
                     }
                     return local;
                   };
                   // Deliberately wrong: a's column partition set to a's own
                   // row partition instead of b's.
                   DistCsrMatrix a(c, 10, 12, aPart.startRow(c.rank()),
                                   slice(ga, aPart), bPart.boundaries());
                   // b distributed by a *different* partition than a expects.
                   const BlockRowPartition bBad(12, 1);
                   (void)bBad;
                   DistCsrMatrix b(c, 12, 10, bPart.startRow(c.rank()),
                                   slice(gb, bPart), aPart.boundaries());
                   // a.colStarts == b.rowStarts here, so force the mismatch
                   // by multiplying b*a instead (10 vs 12 inner dim).
                   (void)distMatMul(b, b);
                 }),
      Error);
}

}  // namespace
}  // namespace lisi::sparse
