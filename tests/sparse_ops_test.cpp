// Tests for serial sparse kernels (spmv variants, transpose, norms).
#include <gtest/gtest.h>

#include <cmath>

#include "sparse/convert.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"

namespace lisi::sparse {
namespace {

TEST(Spmv, KnownSmallMatrix) {
  // A = [1 2; 3 4], x = [5, 6] -> y = [17, 39]
  CsrMatrix a;
  a.rows = 2;
  a.cols = 2;
  a.rowPtr = {0, 2, 4};
  a.colIdx = {0, 1, 0, 1};
  a.values = {1, 2, 3, 4};
  std::vector<double> x{5, 6};
  std::vector<double> y(2);
  spmv(a, std::span<const double>(x), std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Spmv, SizeMismatchThrows) {
  Rng rng(1);
  const CsrMatrix a = randomCsr(3, 4, 2, rng);
  std::vector<double> xBad(3), y(3), x(4), yBad(4);
  EXPECT_THROW(spmv(a, std::span<const double>(xBad), std::span<double>(y)),
               Error);
  EXPECT_THROW(spmv(a, std::span<const double>(x), std::span<double>(yBad)),
               Error);
}

TEST(SpmvTranspose, MatchesExplicitTranspose) {
  Rng rng(2);
  const CsrMatrix a = randomCsr(9, 6, 3, rng);
  std::vector<double> x(9);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y1(6), y2(6);
  spmvTranspose(a, std::span<const double>(x), std::span<double>(y1));
  spmv(transpose(a), std::span<const double>(x), std::span<double>(y2));
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(Transpose, Involution) {
  Rng rng(3);
  const CsrMatrix a = randomCsr(8, 5, 3, rng);
  EXPECT_DOUBLE_EQ(maxAbsDiff(a, transpose(transpose(a))), 0.0);
}

TEST(Diagonal, ExtractsAndDefaultsZero) {
  CsrMatrix a;
  a.rows = 3;
  a.cols = 3;
  a.rowPtr = {0, 1, 1, 2};
  a.colIdx = {0, 2};
  a.values = {7.0, 9.0};
  const auto d = diagonal(a);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 7.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 9.0);
}

TEST(Norms, KnownValues) {
  CsrMatrix a;
  a.rows = 2;
  a.cols = 2;
  a.rowPtr = {0, 2, 3};
  a.colIdx = {0, 1, 1};
  a.values = {3.0, -4.0, 12.0};
  EXPECT_DOUBLE_EQ(frobeniusNorm(a), 13.0);
  EXPECT_DOUBLE_EQ(infNorm(a), 12.0);
}

TEST(VectorOps, DotAxpyNorm) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(std::span<const double>(x), std::span<const double>(y)),
                   32.0);
  EXPECT_DOUBLE_EQ(norm2(std::span<const double>(x)), std::sqrt(14.0));
  axpy(2.0, std::span<const double>(x), std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
}

TEST(ResidualNorm, ZeroForExactSolution) {
  const CsrMatrix a = laplacian1d(50);
  std::vector<double> x(50, 0.0);
  std::vector<double> b(50, 0.0);
  EXPECT_DOUBLE_EQ(
      residualNorm(a, std::span<const double>(x), std::span<const double>(b)),
      0.0);
  // b = A * ones  ->  x = ones has zero residual.
  std::vector<double> ones(50, 1.0);
  spmv(a, std::span<const double>(ones), std::span<double>(b));
  EXPECT_NEAR(residualNorm(a, std::span<const double>(ones),
                           std::span<const double>(b)),
              0.0, 1e-14);
}

TEST(MaxAbsDiff, DetectsPatternDifferences) {
  CsrMatrix a;
  a.rows = 1;
  a.cols = 3;
  a.rowPtr = {0, 1};
  a.colIdx = {0};
  a.values = {2.0};
  CsrMatrix b;
  b.rows = 1;
  b.cols = 3;
  b.rowPtr = {0, 1};
  b.colIdx = {2};
  b.values = {5.0};
  EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 5.0);
}

TEST(Generators, Laplacian2dStructure) {
  const CsrMatrix a = laplacian2d(4, 3);
  EXPECT_EQ(a.rows, 12);
  EXPECT_EQ(a.cols, 12);
  const auto d = diagonal(a);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 4.0);
  // Symmetry: A == A'.
  EXPECT_DOUBLE_EQ(maxAbsDiff(a, transpose(a)), 0.0);
}

TEST(Generators, DiagDominantIsDominant) {
  Rng rng(4);
  const CsrMatrix a = randomDiagDominant(40, 5, 0.25, rng);
  for (int i = 0; i < a.rows; ++i) {
    double diag = 0.0;
    double off = 0.0;
    for (int k = a.rowPtr[static_cast<std::size_t>(i)];
         k < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.colIdx[static_cast<std::size_t>(k)] == i) {
        diag = a.values[static_cast<std::size_t>(k)];
      } else {
        off += std::abs(a.values[static_cast<std::size_t>(k)]);
      }
    }
    EXPECT_GE(diag, off + 0.25 - 1e-12) << "row " << i;
  }
}

TEST(Generators, SpdIsSymmetric) {
  Rng rng(5);
  const CsrMatrix a = randomSpd(30, 4, rng);
  EXPECT_LT(maxAbsDiff(a, transpose(a)), 1e-15);
  // Positive diagonal is necessary for SPD.
  for (double v : diagonal(a)) EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace lisi::sparse
