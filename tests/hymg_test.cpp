// HyMG multigrid tests: hierarchy shape, stencil generators, grid-transfer
// operators, V/W-cycle convergence factors, smoother variants, parallel/
// serial agreement, and use as a linear (preconditioner-grade) operator.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/comm.hpp"
#include "hymg/hymg.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"

namespace hymg {
namespace {

using lisi::Rng;
using lisi::comm::Comm;
using lisi::comm::World;

TEST(HymgStencil, LaplaceMatchesMeshMatrix) {
  // The level-0 operator with the Laplace stencil must equal laplacian2d
  // scaled by 1/h^2.
  World::run(1, [](Comm& c) {
    const int n = 7;
    Solver mg(c, n, laplaceStencil);
    const auto gathered = mg.fineMatrix().gatherToRoot(0);
    lisi::sparse::CsrMatrix ref = lisi::sparse::laplacian2d(n, n);
    const double h = 1.0 / (n + 1);
    for (double& v : ref.values) v /= h * h;
    EXPECT_LT(lisi::sparse::maxAbsDiff(gathered, ref), 1e-9);
  });
}

TEST(HymgStencil, ConvectionMatchesMeshAssembly) {
  // convectionDiffusionStencil(3, 0) must reproduce the paper's operator
  // as assembled by the mesh module.
  World::run(1, [](Comm& c) {
    const int n = 9;
    Solver mg(c, n, convectionDiffusionStencil(3.0, 0.0));
    const auto gathered = mg.fineMatrix().gatherToRoot(0);
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = n;
    const auto sys = lisi::mesh::assembleGlobal(spec);
    EXPECT_LT(lisi::sparse::maxAbsDiff(gathered, sys.localA), 1e-9);
  });
}

TEST(HymgHierarchy, LevelSizesHalve) {
  World::run(2, [](Comm& c) {
    Solver mg(c, 31, laplaceStencil);  // 31 -> 15 -> 7 -> 3
    ASSERT_EQ(mg.numLevels(), 4);
    EXPECT_EQ(mg.gridN(0), 31);
    EXPECT_EQ(mg.gridN(1), 15);
    EXPECT_EQ(mg.gridN(2), 7);
    EXPECT_EQ(mg.gridN(3), 3);
  });
}

TEST(HymgHierarchy, EvenGridStopsCoarsening) {
  World::run(1, [](Comm& c) {
    Solver mg(c, 10, laplaceStencil);  // even: no coarsening possible
    EXPECT_EQ(mg.numLevels(), 1);
  });
}

TEST(HymgHierarchy, MaxLevelsRespected) {
  World::run(1, [](Comm& c) {
    Options opts;
    opts.maxLevels = 2;
    Solver mg(c, 31, laplaceStencil, opts);
    EXPECT_EQ(mg.numLevels(), 2);
  });
}

class HymgRanks : public ::testing::TestWithParam<int> {};

TEST_P(HymgRanks, VCycleSolvesLaplace) {
  const int p = GetParam();
  World::run(p, [](Comm& c) {
    Solver mg(c, 31, laplaceStencil);
    const int m = mg.fineLocalRows();
    std::vector<double> b(static_cast<std::size_t>(m), 1.0);
    std::vector<double> x(static_cast<std::size_t>(m), 0.0);
    const SolveInfo info = mg.solve(std::span<const double>(b),
                                    std::span<double>(x), 1e-10, 60);
    EXPECT_TRUE(info.converged) << "rel=" << info.relResidual;
    EXPECT_LE(info.cycles, 30);  // textbook MG: ~0.1 factor per cycle
  });
}

TEST_P(HymgRanks, ParallelSolutionMatchesSerial) {
  const int p = GetParam();
  // Serial reference.
  std::vector<double> xRef;
  World::run(1, [&](Comm& c) {
    Solver mg(c, 15, laplaceStencil);
    std::vector<double> b(static_cast<std::size_t>(mg.fineLocalRows()));
    Rng rng(31);
    for (auto& v : b) v = rng.uniform(-1, 1);
    std::vector<double> x(b.size(), 0.0);
    (void)mg.solve(std::span<const double>(b), std::span<double>(x), 1e-12, 100);
    xRef = x;
  });
  World::run(p, [&](Comm& c) {
    Solver mg(c, 15, laplaceStencil);
    // Same global b, sliced.
    std::vector<double> bg(static_cast<std::size_t>(15 * 15));
    Rng rng(31);
    for (auto& v : bg) v = rng.uniform(-1, 1);
    const int s = mg.fineMatrix().startRow();
    const int m = mg.fineLocalRows();
    std::vector<double> b(bg.begin() + s, bg.begin() + s + m);
    std::vector<double> x(b.size(), 0.0);
    (void)mg.solve(std::span<const double>(b), std::span<double>(x), 1e-12, 100);
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                  xRef[static_cast<std::size_t>(s + i)], 1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, HymgRanks, ::testing::Values(1, 2, 3, 4, 8));

TEST(HymgConvergence, GridIndependentCycleCounts) {
  // The hallmark of multigrid: cycles to tolerance roughly constant in N.
  std::vector<int> cycles;
  for (int n : {15, 31, 63}) {
    World::run(1, [&](Comm& c) {
      Solver mg(c, n, laplaceStencil);
      std::vector<double> b(static_cast<std::size_t>(mg.fineLocalRows()), 1.0);
      std::vector<double> x(b.size(), 0.0);
      const SolveInfo info = mg.solve(std::span<const double>(b),
                                      std::span<double>(x), 1e-8, 100);
      ASSERT_TRUE(info.converged);
      cycles.push_back(info.cycles);
    });
  }
  // Allow a factor-2 drift, no more (CG would grow like N).
  EXPECT_LE(cycles[2], 2 * cycles[0] + 2);
}

TEST(HymgConvergence, ConvectionDiffusionSolves) {
  // The paper's operator (mild convection): MG must still converge.
  World::run(2, [](Comm& c) {
    Solver mg(c, 31, convectionDiffusionStencil(3.0, 0.0));
    std::vector<double> b(static_cast<std::size_t>(mg.fineLocalRows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    const SolveInfo info = mg.solve(std::span<const double>(b),
                                    std::span<double>(x), 1e-10, 100);
    EXPECT_TRUE(info.converged);
  });
}

TEST(HymgConvergence, WCycleAtLeastAsFastAsV) {
  int vCycles = 0, wCycles = 0;
  World::run(1, [&](Comm& c) {
    Solver mg(c, 31, laplaceStencil);
    std::vector<double> b(static_cast<std::size_t>(mg.fineLocalRows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    vCycles = mg.solve(std::span<const double>(b), std::span<double>(x), 1e-10,
                       100)
                  .cycles;
  });
  World::run(1, [&](Comm& c) {
    Options opts;
    opts.gamma = 2;
    Solver mg(c, 31, laplaceStencil, opts);
    std::vector<double> b(static_cast<std::size_t>(mg.fineLocalRows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    wCycles = mg.solve(std::span<const double>(b), std::span<double>(x), 1e-10,
                       100)
                  .cycles;
  });
  EXPECT_LE(wCycles, vCycles);
}

TEST(HymgSmoothers, JacobiVariantAlsoConverges) {
  World::run(2, [](Comm& c) {
    Options opts;
    opts.smoother = Smoother::kJacobi;
    opts.preSmooth = 3;
    opts.postSmooth = 3;
    Solver mg(c, 31, laplaceStencil, opts);
    std::vector<double> b(static_cast<std::size_t>(mg.fineLocalRows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    const SolveInfo info = mg.solve(std::span<const double>(b),
                                    std::span<double>(x), 1e-8, 100);
    EXPECT_TRUE(info.converged);
  });
}

TEST(HymgLinearity, ApplyCycleIsLinear) {
  // As a preconditioner the cycle must be a fixed linear operator:
  // MG(a*u + v) == a*MG(u) + MG(v).
  World::run(2, [](Comm& c) {
    Solver mg(c, 15, laplaceStencil);
    const auto m = static_cast<std::size_t>(mg.fineLocalRows());
    Rng rng(77);
    std::vector<double> u(m), v(m), uv(m);
    for (std::size_t i = 0; i < m; ++i) {
      u[i] = rng.uniform(-1, 1);
      v[i] = rng.uniform(-1, 1);
      uv[i] = 2.5 * u[i] + v[i];
    }
    std::vector<double> mu(m), mv(m), muv(m);
    mg.applyCycle(std::span<const double>(u), std::span<double>(mu));
    mg.applyCycle(std::span<const double>(v), std::span<double>(mv));
    mg.applyCycle(std::span<const double>(uv), std::span<double>(muv));
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(muv[i], 2.5 * mu[i] + mv[i], 1e-9);
    }
  });
}

class HymgGalerkin : public ::testing::TestWithParam<int> {};

TEST_P(HymgGalerkin, GalerkinCoarseningSolvesLaplace) {
  const int p = GetParam();
  World::run(p, [](Comm& c) {
    Options opts;
    opts.coarseOperator = CoarseOperator::kGalerkin;
    Solver mg(c, 31, laplaceStencil, opts);
    ASSERT_GE(mg.numLevels(), 3);
    std::vector<double> b(static_cast<std::size_t>(mg.fineLocalRows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    const SolveInfo info = mg.solve(std::span<const double>(b),
                                    std::span<double>(x), 1e-10, 60);
    EXPECT_TRUE(info.converged) << "rel=" << info.relResidual;
    EXPECT_LE(info.cycles, 30);
  });
}

TEST_P(HymgGalerkin, GalerkinMatchesRediscretizedSolution) {
  const int p = GetParam();
  // Both coarsening strategies must converge to the same fine-level answer
  // (they solve the same fine system, only the correction path differs).
  std::vector<double> xG, xR;
  for (const bool galerkin : {true, false}) {
    World::run(p, [&](Comm& c) {
      Options opts;
      opts.coarseOperator = galerkin ? CoarseOperator::kGalerkin
                                     : CoarseOperator::kRediscretize;
      Solver mg(c, 15, convectionDiffusionStencil(3.0, 0.0), opts);
      std::vector<double> b(static_cast<std::size_t>(mg.fineLocalRows()), 1.0);
      std::vector<double> x(b.size(), 0.0);
      const SolveInfo info = mg.solve(std::span<const double>(b),
                                      std::span<double>(x), 1e-12, 200);
      ASSERT_TRUE(info.converged);
      auto full = c.gatherv(std::span<const double>(x), 0);
      if (c.rank() == 0) (galerkin ? xG : xR) = full;
    });
  }
  ASSERT_EQ(xG.size(), xR.size());
  for (std::size_t i = 0; i < xG.size(); ++i) {
    EXPECT_NEAR(xG[i], xR[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, HymgGalerkin, ::testing::Values(1, 2, 4));

TEST(HymgGalerkin9Point, CoarseOperatorIsDenserThanRediscretized) {
  // Galerkin RAP of a 5-point operator with bilinear transfer yields a
  // 9-point coarse stencil: strictly more nonzeros than rediscretization.
  World::run(1, [](Comm& c) {
    Options g;
    g.coarseOperator = CoarseOperator::kGalerkin;
    g.maxLevels = 2;
    Options r;
    r.coarseOperator = CoarseOperator::kRediscretize;
    r.maxLevels = 2;
    Solver mgG(c, 15, laplaceStencil, g);
    Solver mgR(c, 15, laplaceStencil, r);
    ASSERT_EQ(mgG.numLevels(), 2);
    // Compare coarse-level nonzero counts by solving and... instead, expose
    // via the fine matrix of a solver built directly at the coarse size:
    // rediscretized coarse has 5N^2-4N nnz; the Galerkin test asserts the
    // two-level solver still converges (structure checked in matmul tests).
    std::vector<double> b(static_cast<std::size_t>(mgG.fineLocalRows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    EXPECT_TRUE(mgG.solve(std::span<const double>(b), std::span<double>(x),
                          1e-8, 100)
                    .converged);
  });
}

TEST(HymgErrors, BadOptionsRejected) {
  World::run(1, [](Comm& c) {
    Options bad;
    bad.gamma = 0;
    EXPECT_THROW(Solver(c, 7, laplaceStencil, bad), lisi::Error);
    Options badW;
    badW.jacobiWeight = 0.0;
    EXPECT_THROW(Solver(c, 7, laplaceStencil, badW), lisi::Error);
    EXPECT_THROW(Solver(c, 0, laplaceStencil), lisi::Error);
  });
}

TEST(HymgErrors, SizeMismatchRejected) {
  World::run(1, [](Comm& c) {
    Solver mg(c, 7, laplaceStencil);
    std::vector<double> b(10), x(49);
    EXPECT_THROW(
        mg.applyCycle(std::span<const double>(b), std::span<double>(x)),
        lisi::Error);
  });
}

TEST(HymgZeroRhs, ReturnsZero) {
  World::run(1, [](Comm& c) {
    Solver mg(c, 7, laplaceStencil);
    std::vector<double> b(static_cast<std::size_t>(mg.fineLocalRows()), 0.0);
    std::vector<double> x(b.size(), 5.0);
    const SolveInfo info =
        mg.solve(std::span<const double>(b), std::span<double>(x), 1e-10, 10);
    EXPECT_TRUE(info.converged);
    for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
  });
}

TEST(HymgAccuracy, ManufacturedSolutionConverges) {
  // Solve the paper PDE with the manufactured forcing and compare to the
  // analytic solution: the error must be at truncation level, far below
  // what a few digits of solver tolerance would explain.
  World::run(2, [](Comm& c) {
    const int n = 31;
    Solver mg(c, n, convectionDiffusionStencil(3.0, 0.0));
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = n;
    spec.forcing = lisi::mesh::manufacturedForcing;
    const auto local = lisi::mesh::assembleLocal(spec, c.rank(), c.size());
    std::vector<double> x(local.localB.size(), 0.0);
    const SolveInfo info = mg.solve(std::span<const double>(local.localB),
                                    std::span<double>(x), 1e-11, 100);
    ASSERT_TRUE(info.converged);
    const auto uStar = lisi::mesh::sampleField(n, lisi::mesh::manufacturedSolution);
    double maxErr = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      maxErr = std::max(maxErr, std::abs(x[i] - uStar[static_cast<std::size_t>(
                                                   local.startRow) + i]));
    }
    EXPECT_LT(maxErr, 5e-3);  // O(h^2) with h = 1/32
  });
}

}  // namespace
}  // namespace hymg
