// Plugin-boundary tests: registry diagnostics for broken shared objects
// (wrong ABI version, declined negotiation, missing entry point, absent
// file), error-code propagation from a failing plugin without aborting the
// World, hot replacement through re-registration, LISI_PLUGIN_PATH
// discovery, service-layer reachability, and the headline property — the
// refsolver plugin's CG+Jacobi solve is BITWISE identical to the built-in
// pksp solve at p=1 and p=4, because every distributed operation flows
// back through the host callbacks onto the host's deterministic kernels.
//
// Fixture/refsolver paths arrive as compile definitions from
// tests/CMakeLists.txt (LISI_PLUGIN_REFSOLVER and friends).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "plugin/plugin.hpp"
#include "service/service.hpp"
#include "sparse/formats.hpp"
#include "sparse/generate.hpp"
#include "support/rng.hpp"

namespace lisi::plugin {
namespace {

using comm::Comm;
using comm::World;
using sparse::CsrMatrix;

// ---- registry diagnostics ---------------------------------------------

TEST(PluginRegistry, WrongAbiVersionIsRejected) {
  const LoadReport report =
      PluginRegistry::instance().loadFile(LISI_PLUGIN_BADVERSION);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("abi_version"), std::string::npos)
      << report.error;
  EXPECT_FALSE(cca::Framework::isClassRegistered("plugin.badversion"));
}

TEST(PluginRegistry, DeclinedVersionIsReported) {
  const LoadReport report =
      PluginRegistry::instance().loadFile(LISI_PLUGIN_DECLINED);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("declined"), std::string::npos) << report.error;
}

TEST(PluginRegistry, MissingQuerySymbolIsDiagnosed) {
  const LoadReport report =
      PluginRegistry::instance().loadFile(LISI_PLUGIN_NOSYM);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("lisi_plugin_query"), std::string::npos)
      << report.error;
}

TEST(PluginRegistry, NonexistentFileIsDiagnosed) {
  const LoadReport report = PluginRegistry::instance().loadFile(
      "/nonexistent/path/libnothing.so");
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("dlopen failed"), std::string::npos)
      << report.error;
}

TEST(PluginRegistry, HotReplaceSwapsFactory) {
  const LoadReport first =
      PluginRegistry::instance().loadFile(LISI_PLUGIN_REFSOLVER);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.className, "plugin.refsolver");
  ASSERT_TRUE(cca::Framework::isClassRegistered("plugin.refsolver"));
  // Loading the same solver name again REPLACES the factory (Figure 4's
  // runtime swap); the report says so and the class stays instantiable.
  const LoadReport second =
      PluginRegistry::instance().loadFile(LISI_PLUGIN_REFSOLVER);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.replaced);
  EXPECT_TRUE(cca::Framework::isClassRegistered("plugin.refsolver"));
  const auto classes = PluginRegistry::instance().loadedClasses();
  EXPECT_EQ(std::count(classes.begin(), classes.end(),
                       std::string("plugin.refsolver")),
            1);
}

TEST(PluginRegistry, LoadFromEnvScansDirectory) {
  const std::string dir =
      std::filesystem::path(LISI_PLUGIN_REFSOLVER).parent_path().string();
  ::setenv("LISI_PLUGIN_PATH", dir.c_str(), 1);
  const auto reports = PluginRegistry::instance().loadFromEnv();
  ::unsetenv("LISI_PLUGIN_PATH");
  ASSERT_FALSE(reports.empty());
  bool sawRefsolver = false;
  for (const auto& r : reports) {
    if (r.ok && r.className == "plugin.refsolver") sawRefsolver = true;
  }
  EXPECT_TRUE(sawRefsolver);
  EXPECT_TRUE(cca::Framework::isClassRegistered("plugin.refsolver"));
}

TEST(PluginRegistry, UnsetEnvLoadsNothing) {
  ::unsetenv("LISI_PLUGIN_PATH");
  EXPECT_TRUE(PluginRegistry::instance().loadFromEnv().empty());
}

// ---- solving through a plugin component -------------------------------

/// Slice the block rows [start, start+m) out of a global CSR; column
/// indices stay global, which is exactly the setupMatrix contract.
CsrMatrix sliceRows(const CsrMatrix& g, int start, int m) {
  CsrMatrix local;
  local.rows = m;
  local.cols = g.cols;
  local.rowPtr.resize(static_cast<std::size_t>(m) + 1, 0);
  const int base = g.rowPtr[static_cast<std::size_t>(start)];
  for (int i = 0; i <= m; ++i) {
    local.rowPtr[static_cast<std::size_t>(i)] =
        g.rowPtr[static_cast<std::size_t>(start + i)] - base;
  }
  const auto first = static_cast<std::size_t>(base);
  const auto last = static_cast<std::size_t>(
      g.rowPtr[static_cast<std::size_t>(start + m)]);
  local.colIdx.assign(g.colIdx.begin() + static_cast<std::ptrdiff_t>(first),
                      g.colIdx.begin() + static_cast<std::ptrdiff_t>(last));
  local.values.assign(g.values.begin() + static_cast<std::ptrdiff_t>(first),
                      g.values.begin() + static_cast<std::ptrdiff_t>(last));
  return local;
}

struct RankSolve {
  std::vector<double> x;
  std::vector<double> status;
  int rc = -1;
};

/// Configure one component of class `cls` and solve the sliced system.
/// Explicit tune/precision parameters pin the comparison against the
/// LISI_TUNE / LISI_PRECISION environment sweeps verify.sh runs.
RankSolve solveWith(cca::Framework& fw, const std::string& name,
                    const std::string& cls, Comm& c, const CsrMatrix& g,
                    const std::vector<double>& bGlobal, int start, int m) {
  RankSolve out;
  fw.instantiate(name, cls);
  auto s = fw.getProvidesPortAs<SparseSolver>(name, kSparseSolverPortName);
  const long h = comm::registerHandle(c);
  EXPECT_EQ(s->initialize(h), 0);
  EXPECT_EQ(s->setStartRow(start), 0);
  EXPECT_EQ(s->setLocalRows(m), 0);
  EXPECT_EQ(s->setGlobalCols(g.cols), 0);
  EXPECT_EQ(s->set("solver", "cg"), 0);
  EXPECT_EQ(s->set("preconditioner", "jacobi"), 0);
  EXPECT_EQ(s->set("tol", "1e-10"), 0);
  EXPECT_EQ(s->set("maxits", "5000"), 0);
  EXPECT_EQ(s->set("tune", "off"), 0);
  EXPECT_EQ(s->set("precision", "double"), 0);
  const CsrMatrix local = sliceRows(g, start, m);
  EXPECT_EQ(s->setupMatrix(
                RArray<const double>(local.values.data(), local.nnz()),
                RArray<const int>(local.rowPtr.data(), m + 1),
                RArray<const int>(local.colIdx.data(), local.nnz()),
                SparseStruct::kCsr, m + 1, local.nnz()),
            0);
  EXPECT_EQ(s->setupRHS(RArray<const double>(bGlobal.data() + start, m), m, 1),
            0);
  out.x.assign(static_cast<std::size_t>(m), 0.0);
  out.status.assign(kStatusLength, 0.0);
  out.rc = s->solve(RArray<double>(out.x.data(), m),
                    RArray<double>(out.status.data(), kStatusLength), m,
                    kStatusLength);
  comm::releaseHandle(h);
  return out;
}

/// Even row partition: base rows per rank, remainder to the first ranks.
void partition(int n, int rank, int size, int& start, int& m) {
  const int base = n / size;
  const int rem = n % size;
  m = base + (rank < rem ? 1 : 0);
  start = rank * base + std::min(rank, rem);
}

TEST(PluginSolve, BitwiseMatchesBuiltinCgAcrossRanks) {
  ASSERT_TRUE(
      PluginRegistry::instance().loadFile(LISI_PLUGIN_REFSOLVER).ok);
  registerSolverComponents();
  const CsrMatrix g = sparse::laplacian2d(12, 12);
  std::vector<double> b(static_cast<std::size_t>(g.rows));
  Rng rng(99);
  for (auto& v : b) v = rng.uniform(-1, 1);

  for (const int p : {1, 4}) {
    World::run(p, [&](Comm& c) {
      int start = 0;
      int m = 0;
      partition(g.rows, c.rank(), c.size(), start, m);
      cca::Framework fw;
      const RankSolve builtin =
          solveWith(fw, "builtin", kPkspComponentClass, c, g, b, start, m);
      const RankSolve plugin =
          solveWith(fw, "plugin", "plugin.refsolver", c, g, b, start, m);
      ASSERT_EQ(builtin.rc, 0);
      ASSERT_EQ(plugin.rc, 0);
      EXPECT_EQ(builtin.status[kStatusConverged], 1.0);
      EXPECT_EQ(plugin.status[kStatusConverged], 1.0);
      // Identical recurrences on identical deterministic kernels: the
      // iterates may not differ in a single bit at any rank count.
      EXPECT_EQ(builtin.status[kStatusIterations],
                plugin.status[kStatusIterations])
          << "p=" << p;
      for (int i = 0; i < m; ++i) {
        EXPECT_EQ(builtin.x[static_cast<std::size_t>(i)],
                  plugin.x[static_cast<std::size_t>(i)])
            << "p=" << p << " row " << start + i;
      }
    });
  }
}

TEST(PluginSolve, OperatorReuseAcrossSolvesStaysCorrect) {
  // Second solve with kSameOperator must reuse the plugin's kept operator
  // (no re-push) and still produce the right answer.
  ASSERT_TRUE(
      PluginRegistry::instance().loadFile(LISI_PLUGIN_REFSOLVER).ok);
  const CsrMatrix g = sparse::laplacian2d(8, 8);
  World::run(2, [&](Comm& c) {
    int start = 0;
    int m = 0;
    partition(g.rows, c.rank(), c.size(), start, m);
    std::vector<double> b1(static_cast<std::size_t>(g.rows), 1.0);
    std::vector<double> b2(static_cast<std::size_t>(g.rows), -2.5);
    cca::Framework fw;
    const RankSolve first =
        solveWith(fw, "s", "plugin.refsolver", c, g, b1, start, m);
    ASSERT_EQ(first.rc, 0);
    // Re-solve on the SAME port with a new RHS (solveWith instantiates a
    // fresh component; here we drive the reuse path by hand).
    auto s = fw.getProvidesPortAs<SparseSolver>("s", kSparseSolverPortName);
    EXPECT_EQ(s->setupRHS(RArray<const double>(b2.data() + start, m), m, 1),
              0);
    std::vector<double> x(static_cast<std::size_t>(m), 0.0);
    std::vector<double> st(kStatusLength, 0.0);
    ASSERT_EQ(s->solve(RArray<double>(x.data(), m),
                       RArray<double>(st.data(), kStatusLength), m,
                       kStatusLength),
              0);
    EXPECT_EQ(st[kStatusConverged], 1.0);
    // b2 = -2.5 * b1, and the solve is linear with a deterministic
    // iteration: x2 == -2.5 * x1 bitwise is NOT guaranteed, but the
    // solution must satisfy the scaled system to tolerance.
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                  -2.5 * first.x[static_cast<std::size_t>(i)], 1e-6);
    }
  });
}

TEST(PluginSolve, FailingSolveSurfacesWithoutAbort) {
  ASSERT_TRUE(PluginRegistry::instance().loadFile(LISI_PLUGIN_FAILING).ok);
  World::run(1, [](Comm& c) {
    const CsrMatrix g = sparse::laplacian1d(10);
    std::vector<double> b(10, 1.0);
    cca::Framework fw;
    const RankSolve r =
        solveWith(fw, "f", "plugin.failing", c, g, b, 0, g.rows);
    // LISI_ABI_ERR_NUMERIC maps onto the numeric-failure status contract:
    // solve() reports the error code, the status array says !converged,
    // and the World keeps running (this lambda returning IS the test).
    EXPECT_EQ(r.rc, static_cast<int>(ErrorCode::kNumericFailure));
    EXPECT_EQ(r.status[kStatusConverged], 0.0);
  });
}

TEST(PluginSolve, BadOptionValueAbortsSolve) {
  // "solver=gmres" is a KEY refsolver knows with a VALUE it cannot honor:
  // LISI_ABI_ERR_ARG, which must abort the solve (unlike unknown keys,
  // which are skipped).
  ASSERT_TRUE(
      PluginRegistry::instance().loadFile(LISI_PLUGIN_REFSOLVER).ok);
  World::run(1, [](Comm& c) {
    const CsrMatrix g = sparse::laplacian1d(6);
    cca::Framework fw;
    fw.instantiate("s", "plugin.refsolver");
    auto s = fw.getProvidesPortAs<SparseSolver>("s", kSparseSolverPortName);
    const long h = comm::registerHandle(c);
    ASSERT_EQ(s->initialize(h), 0);
    ASSERT_EQ(s->setStartRow(0), 0);
    ASSERT_EQ(s->setLocalRows(g.rows), 0);
    ASSERT_EQ(s->setGlobalCols(g.cols), 0);
    ASSERT_EQ(s->set("solver", "gmres"), 0);  // accepted here, judged later
    ASSERT_EQ(s->setupMatrix(
                  RArray<const double>(g.values.data(), g.nnz()),
                  RArray<const int>(g.rowPtr.data(), g.rows + 1),
                  RArray<const int>(g.colIdx.data(), g.nnz()),
                  SparseStruct::kCsr, g.rows + 1, g.nnz()),
              0);
    std::vector<double> b(static_cast<std::size_t>(g.rows), 1.0);
    ASSERT_EQ(s->setupRHS(RArray<const double>(b.data(), g.rows), g.rows, 1),
              0);
    std::vector<double> x(static_cast<std::size_t>(g.rows), 0.0);
    std::vector<double> st(kStatusLength, 0.0);
    EXPECT_EQ(s->solve(RArray<double>(x.data(), g.rows),
                       RArray<double>(st.data(), kStatusLength), g.rows,
                       kStatusLength),
              static_cast<int>(ErrorCode::kInvalidArgument));
    comm::releaseHandle(h);
  });
}

// ---- service-layer reachability ---------------------------------------

TEST(PluginService, SessionBackendReachesPlugin) {
  ASSERT_TRUE(
      PluginRegistry::instance().loadFile(LISI_PLUGIN_REFSOLVER).ok);
  auto a = std::make_shared<sparse::CsrMatrix>(sparse::laplacian2d(10, 10));
  service::SolveRequest req;
  req.matrix = a;
  req.rhs.assign(static_cast<std::size_t>(a->rows), 1.0);
  req.backend = "plugin.refsolver";
  req.operatorId = 1;
  req.stringParams = {{"solver", "cg"}, {"preconditioner", "jacobi"}};
  req.doubleParams = {{"tol", 1e-10}};

  service::ServiceConfig cfg;
  cfg.sessions = 1;
  cfg.ranksPerSession = 2;
  service::SolverService svc(cfg);
  auto future = svc.submit(std::move(req));
  ASSERT_TRUE(future.has_value());
  svc.start();
  const service::SolveResult res = future->get();
  svc.stop();
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.converged);

  // An unregistered plugin class is still an unknown backend.
  service::SolveRequest bogus;
  bogus.matrix = a;
  bogus.rhs.assign(static_cast<std::size_t>(a->rows), 1.0);
  bogus.backend = "plugin.nosuchsolver";
  service::SolverService svc2(cfg);
  auto f2 = svc2.submit(std::move(bogus));
  ASSERT_TRUE(f2.has_value());
  svc2.start();
  const service::SolveResult r2 = f2->get();
  svc2.stop();
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("unknown backend"), std::string::npos) << r2.error;
}

}  // namespace
}  // namespace lisi::plugin
