// Tests for the r-array / SIDL-array argument types (§6.2 design decision).
#include <gtest/gtest.h>

#include "lisi/rarray.hpp"

namespace lisi {
namespace {

TEST(RArray, WrapsWithoutCopying) {
  std::vector<double> v{1.0, 2.0, 3.0};
  RArray<double> a(v);
  EXPECT_EQ(a.data(), v.data());  // zero-copy: same storage
  EXPECT_EQ(a.length(), 3);
  a[1] = 20.0;  // inout semantics reach the original
  EXPECT_DOUBLE_EQ(v[1], 20.0);
}

TEST(RArray, ConstElementForInMode) {
  const std::vector<int> v{4, 5};
  RArray<const int> a(v);
  EXPECT_EQ(a.length(), 2);
  EXPECT_EQ(a[0], 4);
}

TEST(RArray, EmptyIsAllowed) {
  RArray<double> a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.length(), 0);
  RArray<double> b(nullptr, 0);
  EXPECT_TRUE(b.empty());
}

TEST(RArray, NullWithLengthRejected) {
  EXPECT_THROW((RArray<double>(nullptr, 3)), Error);
  double x = 0;
  EXPECT_THROW((RArray<double>(&x, -1)), Error);
}

TEST(RArray, RangeForIteration) {
  std::vector<int> v{1, 2, 3};
  RArray<int> a(v);
  int sum = 0;
  for (int x : a) sum += x;
  EXPECT_EQ(sum, 6);
}

TEST(SidlArray, CopiesOnConstruction) {
  std::vector<double> v{1.0, 2.0};
  SidlArray<double> a(v.data(), 2);
  v[0] = 99.0;  // the boxed copy must be unaffected
  EXPECT_DOUBLE_EQ(a.get(0), 1.0);
}

TEST(SidlArray, LowerBoundDescriptor) {
  const int data[3] = {7, 8, 9};
  SidlArray<int> a(data, 3, 1);  // Fortran-style 1-based
  EXPECT_EQ(a.lower(), 1);
  EXPECT_EQ(a.upper(), 3);
  EXPECT_EQ(a.get(1), 7);
  EXPECT_EQ(a.get(3), 9);
  EXPECT_THROW((void)a.get(0), Error);
  EXPECT_THROW((void)a.get(4), Error);
}

TEST(SidlArray, SetRespectsBounds) {
  SidlArray<double> a(nullptr, 0);
  EXPECT_THROW(a.set(0, 1.0), Error);
  const double d[2] = {1, 2};
  SidlArray<double> b(d, 2);
  b.set(1, 5.0);
  EXPECT_DOUBLE_EQ(b.get(1), 5.0);
}

}  // namespace
}  // namespace lisi
