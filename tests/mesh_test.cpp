// Mesh generator tests: stencil correctness, nnz counts matching the
// paper's table, parallel/serial assembly agreement, manufactured-solution
// consistency, and the per-rank mesh file round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "mesh/mesh_io.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/ops.hpp"

namespace lisi::mesh {
namespace {

TEST(Pde5pt, NnzFormulaMatchesPaperTable) {
  // Table 1 of the paper: grids 50..400 give these nnz counts.
  EXPECT_EQ(pde5ptNnz(50), 12300);
  EXPECT_EQ(pde5ptNnz(100), 49600);
  EXPECT_EQ(pde5ptNnz(200), 199200);
  EXPECT_EQ(pde5ptNnz(300), 448800);
  EXPECT_EQ(pde5ptNnz(400), 798400);
}

TEST(Pde5pt, AssembledNnzMatchesFormula) {
  for (int n : {1, 2, 3, 10, 25}) {
    Pde5ptSpec spec;
    spec.gridN = n;
    const auto sys = assembleGlobal(spec);
    EXPECT_EQ(sys.localA.nnz(), pde5ptNnz(n)) << "grid " << n;
    EXPECT_EQ(sys.localA.rows, n * n);
  }
}

TEST(Pde5pt, StencilCoefficients) {
  // Interior row of a 3x3 grid: h = 1/4.
  Pde5ptSpec spec;
  spec.gridN = 3;
  const auto sys = assembleGlobal(spec);
  const double h = 0.25;
  const double invH2 = 16.0;
  const int center = 4;  // middle of the 3x3 grid
  const auto dense = sparse::toDense(sys.localA);
  auto at = [&](int r, int c) { return dense[static_cast<std::size_t>(r * 9 + c)]; };
  EXPECT_NEAR(at(center, center), 4.0 * invH2, 1e-12);
  EXPECT_NEAR(at(center, center - 1), -(invH2 + 1.5 / h), 1e-12);  // west
  EXPECT_NEAR(at(center, center + 1), -(invH2 - 1.5 / h), 1e-12);  // east
  EXPECT_NEAR(at(center, center - 3), -invH2, 1e-12);              // south
  EXPECT_NEAR(at(center, center + 3), -invH2, 1e-12);              // north
}

TEST(Pde5pt, RowSumsVanishInInterior) {
  // A = -L of a convection-diffusion operator: interior row sums are zero
  // (constant functions are in the kernel of the continuous operator).
  Pde5ptSpec spec;
  spec.gridN = 5;
  const auto sys = assembleGlobal(spec);
  const int center = 2 * 5 + 2;
  double sum = 0.0;
  for (int k = sys.localA.rowPtr[static_cast<std::size_t>(center)];
       k < sys.localA.rowPtr[static_cast<std::size_t>(center) + 1]; ++k) {
    sum += sys.localA.values[static_cast<std::size_t>(k)];
  }
  EXPECT_NEAR(sum, 0.0, 1e-10);
}

TEST(Pde5pt, ParallelAssemblyTilesSerial) {
  Pde5ptSpec spec;
  spec.gridN = 7;
  const auto serial = assembleGlobal(spec);
  for (int p : {1, 2, 3, 4, 8}) {
    int rowsSeen = 0;
    for (int r = 0; r < p; ++r) {
      const auto local = assembleLocal(spec, r, p);
      EXPECT_EQ(local.startRow, rowsSeen);
      for (int i = 0; i < local.localA.rows; ++i) {
        const int g = local.startRow + i;
        // Row i of the local block equals row g of the serial matrix.
        const int lb = local.localA.rowPtr[static_cast<std::size_t>(i)];
        const int le = local.localA.rowPtr[static_cast<std::size_t>(i) + 1];
        const int gb = serial.localA.rowPtr[static_cast<std::size_t>(g)];
        const int ge = serial.localA.rowPtr[static_cast<std::size_t>(g) + 1];
        ASSERT_EQ(le - lb, ge - gb);
        for (int k = 0; k < le - lb; ++k) {
          EXPECT_EQ(local.localA.colIdx[static_cast<std::size_t>(lb + k)],
                    serial.localA.colIdx[static_cast<std::size_t>(gb + k)]);
          EXPECT_DOUBLE_EQ(local.localA.values[static_cast<std::size_t>(lb + k)],
                           serial.localA.values[static_cast<std::size_t>(gb + k)]);
        }
        EXPECT_DOUBLE_EQ(local.localB[static_cast<std::size_t>(i)],
                         serial.localB[static_cast<std::size_t>(g)]);
      }
      rowsSeen += local.localA.rows;
    }
    EXPECT_EQ(rowsSeen, serial.globalN);
  }
}

TEST(Pde5pt, ManufacturedSolutionResidualIsTruncationOrder) {
  // For u* = sin(pi x) sin(pi y), the discrete residual A u* - b must shrink
  // like O(h^2) * ||A||-ish scale; we check it halves by ~4x per refinement.
  double prev = -1.0;
  for (int n : {8, 16, 32}) {
    Pde5ptSpec spec;
    spec.gridN = n;
    spec.forcing = manufacturedForcing;
    spec.boundary = zeroBoundary;  // u* vanishes on the boundary
    const auto sys = assembleGlobal(spec);
    const auto uStar = sampleField(n, manufacturedSolution);
    std::vector<double> r(static_cast<std::size_t>(sys.globalN));
    sparse::spmv(sys.localA, std::span<const double>(uStar),
                 std::span<double>(r));
    double maxErr = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      maxErr = std::max(maxErr, std::abs(r[i] - sys.localB[i]));
    }
    if (prev > 0) {
      EXPECT_LT(maxErr, prev * 0.5) << "no O(h^2)-ish decay at n=" << n;
    }
    prev = maxErr;
  }
}

TEST(Pde5pt, BoundaryLiftEntersRhs) {
  // With u = 1 on the boundary and f = 0, b must be nonzero only on
  // boundary-adjacent rows, and x = ones solves the system exactly.
  Pde5ptSpec spec;
  spec.gridN = 6;
  spec.forcing = [](double, double) { return 0.0; };
  spec.boundary = [](double, double) { return 1.0; };
  const auto sys = assembleGlobal(spec);
  std::vector<double> ones(static_cast<std::size_t>(sys.globalN), 1.0);
  EXPECT_NEAR(sparse::residualNorm(sys.localA, std::span<const double>(ones),
                                   std::span<const double>(sys.localB)),
              0.0, 1e-9);
}

TEST(Pde5pt, PaperForcingFormula) {
  const double x = 0.3;
  EXPECT_DOUBLE_EQ(paperForcing(x, 0.9),
                   (2.0 - 6.0 * x - x * x) * std::sin(x));
}

TEST(MeshIo, LocalSystemRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lisi_mesh_io_test").string();
  Pde5ptSpec spec;
  spec.gridN = 9;
  for (int r = 0; r < 3; ++r) {
    const auto sys = assembleLocal(spec, r, 3);
    writeLocalSystem(dir, r, sys);
    const auto back = readLocalSystem(dir, r);
    EXPECT_EQ(back.globalN, sys.globalN);
    EXPECT_EQ(back.startRow, sys.startRow);
    EXPECT_LT(sparse::maxAbsDiff(back.localA, sys.localA), 1e-15);
    ASSERT_EQ(back.localB.size(), sys.localB.size());
    for (std::size_t i = 0; i < sys.localB.size(); ++i) {
      EXPECT_DOUBLE_EQ(back.localB[i], sys.localB[i]);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(MeshIo, MissingFileThrows) {
  EXPECT_THROW((void)readLocalSystem("/nonexistent_dir_xyz", 0), Error);
}

}  // namespace
}  // namespace lisi::mesh
