// Conversion tests: every format must round-trip through CSR exactly.
// Property sweeps (TEST_P) run over randomized matrices of several shapes,
// since format-conversion bugs hide in edge rows (empty, full, duplicate).
#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"

namespace lisi::sparse {
namespace {

TEST(CooToCsr, SumsDuplicates) {
  CooMatrix coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.rowIdx = {0, 0, 1, 0};
  coo.colIdx = {1, 1, 0, 1};
  coo.values = {1.0, 2.0, 5.0, 4.0};
  const CsrMatrix csr = cooToCsr(coo);
  EXPECT_EQ(csr.nnz(), 2);
  const auto dense = toDense(csr);
  EXPECT_DOUBLE_EQ(dense[1], 7.0);   // (0,1) = 1+2+4
  EXPECT_DOUBLE_EQ(dense[2], 5.0);   // (1,0)
}

TEST(CooToCsr, EmptyMatrix) {
  CooMatrix coo;
  coo.rows = 3;
  coo.cols = 4;
  const CsrMatrix csr = cooToCsr(coo);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_NO_THROW(csr.check());
}

TEST(CsrCooRoundTrip, PreservesEntries) {
  Rng rng(1);
  const CsrMatrix a = randomCsr(13, 9, 4, rng);
  const CsrMatrix back = cooToCsr(csrToCoo(a));
  EXPECT_DOUBLE_EQ(maxAbsDiff(a, back), 0.0);
}

TEST(CsrCscRoundTrip, PreservesEntries) {
  Rng rng(2);
  const CsrMatrix a = randomCsr(11, 17, 3, rng);
  const CsrMatrix back = cscToCsr(csrToCsc(a));
  EXPECT_DOUBLE_EQ(maxAbsDiff(a, back), 0.0);
}

TEST(CsrCsc, TransposeRelationship) {
  Rng rng(3);
  const CsrMatrix a = randomCsr(6, 8, 3, rng);
  const CscMatrix csc = csrToCsc(a);
  // CSC arrays of A are exactly the CSR arrays of A'.
  const CsrMatrix at = transpose(a);
  EXPECT_EQ(csc.colPtr, at.rowPtr);
  EXPECT_EQ(csc.rowIdx, at.colIdx);
  for (std::size_t k = 0; k < csc.values.size(); ++k) {
    EXPECT_DOUBLE_EQ(csc.values[k], at.values[k]);
  }
}

TEST(CsrMsrRoundTrip, SquareWithFullDiagonal) {
  Rng rng(4);
  const CsrMatrix a = randomDiagDominant(20, 4, 0.5, rng);
  const MsrMatrix msr = csrToMsr(a);
  const CsrMatrix back = msrToCsr(msr);
  EXPECT_LT(maxAbsDiff(a, back), 1e-15);
}

TEST(CsrMsrRoundTrip, MissingDiagonalBecomesExplicitZero) {
  CsrMatrix a;
  a.rows = 2;
  a.cols = 2;
  a.rowPtr = {0, 1, 2};
  a.colIdx = {1, 0};
  a.values = {3.0, 4.0};  // zero diagonal, stored nowhere
  const MsrMatrix msr = csrToMsr(a);
  EXPECT_DOUBLE_EQ(msr.val[0], 0.0);
  EXPECT_DOUBLE_EQ(msr.val[1], 0.0);
  const CsrMatrix back = msrToCsr(msr);
  // Round trip inserts explicit zero diagonals; values must agree.
  EXPECT_LT(maxAbsDiff(a, dropZeros(back)), 1e-15);
}

TEST(CsrMsr, RejectsRectangular) {
  Rng rng(5);
  const CsrMatrix a = randomCsr(3, 4, 2, rng);
  EXPECT_THROW((void)csrToMsr(a), Error);
}

TEST(CsrVbrRoundTrip, UniformBlocks) {
  Rng rng(6);
  const CsrMatrix a = randomCsr(12, 12, 4, rng);
  for (int bs : {1, 2, 3, 5, 12, 20}) {
    const VbrMatrix vbr = csrToVbrUniform(a, bs);
    EXPECT_NO_THROW(vbr.check());
    const CsrMatrix back = dropZeros(vbrToCsr(vbr));
    EXPECT_LT(maxAbsDiff(dropZeros(a), back), 1e-15) << "block size " << bs;
  }
}

TEST(CsrVbrRoundTrip, IrregularPartitions) {
  Rng rng(7);
  const CsrMatrix a = randomCsr(10, 8, 3, rng);
  const std::vector<int> rowPart{0, 1, 4, 10};
  const std::vector<int> colPart{0, 5, 8};
  const VbrMatrix vbr = csrToVbr(a, rowPart, colPart);
  EXPECT_NO_THROW(vbr.check());
  EXPECT_LT(maxAbsDiff(dropZeros(a), dropZeros(vbrToCsr(vbr))), 1e-15);
}

TEST(Vbr, BadPartitionRejected) {
  Rng rng(8);
  const CsrMatrix a = randomCsr(4, 4, 2, rng);
  EXPECT_THROW((void)csrToVbr(a, {0, 3}, {0, 4}), Error);   // rows don't cover
  EXPECT_THROW((void)csrToVbr(a, {1, 4}, {0, 4}), Error);   // must start at 0
}

TEST(DropZeros, RemovesOnlyZeros) {
  CsrMatrix a;
  a.rows = 1;
  a.cols = 4;
  a.rowPtr = {0, 4};
  a.colIdx = {0, 1, 2, 3};
  a.values = {0.0, 1e-30, 0.0, 2.0};
  const CsrMatrix d = dropZeros(a);
  EXPECT_EQ(d.nnz(), 2);
  const CsrMatrix d2 = dropZeros(a, 1e-20);
  EXPECT_EQ(d2.nnz(), 1);
}

// Property sweep: spmv result is invariant under every format conversion.
struct ShapeParam {
  int rows;
  int cols;
  int nnzPerRow;
  std::uint64_t seed;
};

class ConversionProperty : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ConversionProperty, SpmvInvariantAcrossFormats) {
  const ShapeParam p = GetParam();
  Rng rng(p.seed);
  const CsrMatrix a = randomCsr(p.rows, p.cols, p.nnzPerRow, rng);
  std::vector<double> x(static_cast<std::size_t>(p.cols));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> yRef(static_cast<std::size_t>(p.rows));
  spmv(a, std::span<const double>(x), std::span<double>(yRef));

  auto expectSame = [&](std::span<const double> y, const char* what) {
    for (std::size_t i = 0; i < yRef.size(); ++i) {
      EXPECT_NEAR(y[i], yRef[i], 1e-12 * (1.0 + std::abs(yRef[i]))) << what;
    }
  };

  std::vector<double> y(static_cast<std::size_t>(p.rows));
  spmv(csrToCoo(a), std::span<const double>(x), std::span<double>(y));
  expectSame(y, "COO");
  spmv(csrToCsc(a), std::span<const double>(x), std::span<double>(y));
  expectSame(y, "CSC");
  if (p.rows == p.cols) {
    spmv(csrToMsr(a), std::span<const double>(x), std::span<double>(y));
    expectSame(y, "MSR");
  }
  spmv(csrToVbrUniform(a, 3), std::span<const double>(x), std::span<double>(y));
  expectSame(y, "VBR");
}

TEST_P(ConversionProperty, RoundTripsExact) {
  const ShapeParam p = GetParam();
  Rng rng(p.seed + 1000);
  const CsrMatrix a = randomCsr(p.rows, p.cols, p.nnzPerRow, rng);
  EXPECT_DOUBLE_EQ(maxAbsDiff(a, cooToCsr(csrToCoo(a))), 0.0);
  EXPECT_DOUBLE_EQ(maxAbsDiff(a, cscToCsr(csrToCsc(a))), 0.0);
  EXPECT_LT(maxAbsDiff(dropZeros(a), dropZeros(vbrToCsr(csrToVbrUniform(a, 4)))),
            1e-15);
  if (p.rows == p.cols) {
    EXPECT_LT(maxAbsDiff(dropZeros(a), dropZeros(msrToCsr(csrToMsr(a)))), 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConversionProperty,
    ::testing::Values(ShapeParam{1, 1, 1, 11}, ShapeParam{5, 5, 2, 12},
                      ShapeParam{16, 16, 5, 13}, ShapeParam{33, 7, 3, 14},
                      ShapeParam{7, 33, 3, 15}, ShapeParam{64, 64, 8, 16},
                      ShapeParam{10, 10, 0, 17}, ShapeParam{100, 100, 6, 18}));

}  // namespace
}  // namespace lisi::sparse
