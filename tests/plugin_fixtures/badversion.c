/* Fixture plugin: answers the host's version query with a table whose
 * abi_version field contradicts the negotiated version.  The registry must
 * refuse the mismatched struct layout with a diagnostic, not crash into it.
 */
#include <stddef.h>

#include "lisi_abi.h"

static int32_t stub_create(const lisi_abi_host_v1* host, void** solver) {
  (void)host;
  (void)solver;
  return LISI_ABI_ERR_INTERNAL;
}
static int32_t stub_set_option(void* s, const char* k, const char* v) {
  (void)s;
  (void)k;
  (void)v;
  return LISI_ABI_ERR_INTERNAL;
}
static int32_t stub_set_operator(void* s, int32_t lr, int32_t gr, int32_t sr,
                                 const int32_t* rp, const int32_t* ci,
                                 const double* va) {
  (void)s;
  (void)lr;
  (void)gr;
  (void)sr;
  (void)rp;
  (void)ci;
  (void)va;
  return LISI_ABI_ERR_INTERNAL;
}
static int32_t stub_solve(void* s, const double* b, double* x, int32_t lr,
                          lisi_abi_solve_info_v1* info) {
  (void)s;
  (void)b;
  (void)x;
  (void)lr;
  (void)info;
  return LISI_ABI_ERR_INTERNAL;
}
static int32_t stub_get_info(void* s, const char* k, double* v) {
  (void)s;
  (void)k;
  (void)v;
  return LISI_ABI_ERR_INTERNAL;
}
static int32_t stub_destroy(void* s) {
  (void)s;
  return LISI_ABI_ERR_INTERNAL;
}

static const lisi_abi_v1 kLyingTable = {
    /* abi_version: NOT the version the query was answered for */
    0xbadu,
    "badversion",
    "0.0",
    stub_create,
    stub_set_option,
    stub_set_operator,
    stub_solve,
    stub_get_info,
    stub_destroy,
};

const lisi_abi_v1* lisi_plugin_query(uint32_t abi_version) {
  (void)abi_version; /* claims to support anything — the table disagrees */
  return &kLyingTable;
}
