/* Fixture plugin: negotiates cleanly, accepts options and the operator,
 * then fails every solve with LISI_ABI_ERR_NUMERIC.  The adapter must
 * surface the failure through the SparseSolver status contract (solve
 * returns kNumericFailure, converged=0) without aborting the World.
 */
#include <stddef.h>
#include <stdlib.h>
#include <string.h>

#include "lisi_abi.h"

static int32_t f_create(const lisi_abi_host_v1* host, void** solver) {
  (void)host;
  if (solver == NULL) return LISI_ABI_ERR_ARG;
  *solver = malloc(1); /* any non-NULL cookie */
  return *solver == NULL ? LISI_ABI_ERR_INTERNAL : LISI_ABI_OK;
}
static int32_t f_set_option(void* s, const char* k, const char* v) {
  (void)s;
  (void)v;
  return k == NULL ? LISI_ABI_ERR_ARG : LISI_ABI_ERR_UNSUPPORTED;
}
static int32_t f_set_operator(void* s, int32_t lr, int32_t gr, int32_t sr,
                              const int32_t* rp, const int32_t* ci,
                              const double* va) {
  (void)s;
  (void)lr;
  (void)gr;
  (void)sr;
  (void)rp;
  (void)ci;
  (void)va;
  return LISI_ABI_OK;
}
static int32_t f_solve(void* s, const double* b, double* x, int32_t lr,
                       lisi_abi_solve_info_v1* info) {
  (void)s;
  (void)b;
  (void)x;
  (void)lr;
  if (info != NULL) memset(info, 0, sizeof(*info));
  return LISI_ABI_ERR_NUMERIC; /* mid-solve failure, every time */
}
static int32_t f_get_info(void* s, const char* k, double* v) {
  (void)s;
  (void)k;
  (void)v;
  return LISI_ABI_ERR_UNSUPPORTED;
}
static int32_t f_destroy(void* s) {
  free(s);
  return LISI_ABI_OK;
}

static const lisi_abi_v1 kFailingTable = {
    LISI_ABI_VERSION,
    "failing",
    "1.0",
    f_create,
    f_set_option,
    f_set_operator,
    f_solve,
    f_get_info,
    f_destroy,
};

const lisi_abi_v1* lisi_plugin_query(uint32_t abi_version) {
  if (abi_version != LISI_ABI_VERSION) return NULL;
  return &kFailingTable;
}
