/* Fixture plugin: declines every ABI version the host offers (what a
 * plugin built against a future lisi_abi revision does when asked for v1).
 * The registry must report the refusal by name, not treat NULL as a table.
 */
#include <stddef.h>

#include "lisi_abi.h"

const lisi_abi_v1* lisi_plugin_query(uint32_t abi_version) {
  (void)abi_version;
  return NULL;
}
