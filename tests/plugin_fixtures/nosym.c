/* Fixture plugin: a perfectly loadable shared object that simply is not a
 * LISI plugin — it exports no lisi_plugin_query.  The registry must
 * diagnose the missing entry point by name.
 */
int this_is_not_a_lisi_plugin(void) { return 42; }
