// Distributed-matrix tests: the parallel spmv and gathers must agree with
// their serial counterparts for every rank count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "comm/comm.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"
#include "sparse/partition.hpp"
#include "support/rng.hpp"

// ---- global allocation counter ----------------------------------------
// Replaces the global allocation functions for this test binary so the
// zero-allocation contract of DistCsrMatrix::spmv can be asserted directly.
// Counting is off by default; tests toggle it around the measured region.
namespace {
std::atomic<bool> g_countAllocs{false};
std::atomic<std::size_t> g_allocCalls{0};
std::atomic<std::size_t> g_allocBytes{0};

void* countedAlloc(std::size_t n) {
  if (g_countAllocs.load(std::memory_order_relaxed)) {
    g_allocCalls.fetch_add(1, std::memory_order_relaxed);
    g_allocBytes.fetch_add(n, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (!p) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return countedAlloc(n); }
void* operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lisi::sparse {
namespace {

TEST(BlockRowPartition, EvenSplit) {
  const BlockRowPartition p(12, 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(p.localRows(r), 3);
    EXPECT_EQ(p.startRow(r), 3 * r);
  }
}

TEST(BlockRowPartition, RemainderGoesToLowRanks) {
  const BlockRowPartition p(10, 3);
  EXPECT_EQ(p.localRows(0), 4);
  EXPECT_EQ(p.localRows(1), 3);
  EXPECT_EQ(p.localRows(2), 3);
  EXPECT_EQ(p.startRow(0), 0);
  EXPECT_EQ(p.startRow(1), 4);
  EXPECT_EQ(p.startRow(2), 7);
}

TEST(BlockRowPartition, OwnerLookup) {
  const BlockRowPartition p(10, 3);
  EXPECT_EQ(p.ownerOf(0), 0);
  EXPECT_EQ(p.ownerOf(3), 0);
  EXPECT_EQ(p.ownerOf(4), 1);
  EXPECT_EQ(p.ownerOf(9), 2);
  EXPECT_THROW((void)p.ownerOf(10), Error);
}

TEST(BlockRowPartition, MoreRanksThanRows) {
  const BlockRowPartition p(2, 5);
  int total = 0;
  for (int r = 0; r < 5; ++r) total += p.localRows(r);
  EXPECT_EQ(total, 2);
  EXPECT_EQ(p.localRows(0), 1);
  EXPECT_EQ(p.localRows(1), 1);
  EXPECT_EQ(p.localRows(4), 0);
}

class DistP : public ::testing::TestWithParam<int> {};

TEST_P(DistP, SpmvMatchesSerialOnRandomMatrix) {
  const int p = GetParam();
  const int n = 83;
  Rng rngA(100);
  const CsrMatrix global = randomDiagDominant(n, 6, 1.0, rngA);
  std::vector<double> x(static_cast<std::size_t>(n));
  Rng rngX(200);
  for (auto& v : x) v = rngX.uniform(-1, 1);
  std::vector<double> yRef(static_cast<std::size_t>(n));
  spmv(global, std::span<const double>(x), std::span<double>(yRef));

  comm::World::run(p, [&](comm::Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
    EXPECT_EQ(dist.globalRows(), n);
    EXPECT_EQ(dist.globalNnz(), global.nnz());
    const int s = dist.startRow();
    const int m = dist.localRows();
    std::vector<double> xLoc(x.begin() + s, x.begin() + s + m);
    std::vector<double> yLoc(static_cast<std::size_t>(m));
    dist.spmv(std::span<const double>(xLoc), std::span<double>(yLoc));
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(yLoc[static_cast<std::size_t>(i)],
                  yRef[static_cast<std::size_t>(s + i)], 1e-12)
          << "rank " << c.rank() << " row " << s + i;
    }
  });
}

TEST_P(DistP, SpmvMatchesSerialOnPdeMatrix) {
  const int p = GetParam();
  mesh::Pde5ptSpec spec;
  spec.gridN = 12;
  const auto serial = mesh::assembleGlobal(spec);
  std::vector<double> x(static_cast<std::size_t>(serial.globalN));
  Rng rng(300);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> yRef(x.size());
  spmv(serial.localA, std::span<const double>(x), std::span<double>(yRef));

  comm::World::run(p, [&](comm::Comm& c) {
    const auto local = mesh::assembleLocal(spec, c.rank(), c.size());
    DistCsrMatrix dist(c, local.globalN, local.globalN, local.startRow,
                       local.localA);
    std::vector<double> xLoc(x.begin() + dist.startRow(),
                             x.begin() + dist.startRow() + dist.localRows());
    std::vector<double> yLoc(static_cast<std::size_t>(dist.localRows()));
    dist.spmv(std::span<const double>(xLoc), std::span<double>(yLoc));
    for (int i = 0; i < dist.localRows(); ++i) {
      EXPECT_NEAR(yLoc[static_cast<std::size_t>(i)],
                  yRef[static_cast<std::size_t>(dist.startRow() + i)], 1e-12);
    }
  });
}

TEST_P(DistP, GatherToRootReassemblesMatrix) {
  const int p = GetParam();
  Rng rng(400);
  const CsrMatrix global = randomCsr(37, 37, 5, rng);
  CsrMatrix canonical = global;
  canonical.canonicalize();
  comm::World::run(p, [&](comm::Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
    const CsrMatrix gathered = dist.gatherToRoot(0);
    if (c.rank() == 0) {
      EXPECT_DOUBLE_EQ(maxAbsDiff(canonical, gathered), 0.0);
    } else {
      EXPECT_EQ(gathered.rows, 0);
    }
  });
}

TEST_P(DistP, VectorGatherScatterRoundTrip) {
  const int p = GetParam();
  const int n = 29;
  std::vector<double> xGlobal(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xGlobal[static_cast<std::size_t>(i)] = i * 1.5;
  comm::World::run(p, [&](comm::Comm& c) {
    const CsrMatrix eye = laplacian1d(n);  // any square matrix fixes the layout
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, eye);
    const auto xLoc = dist.scatterVectorFromRoot(
        c.rank() == 0 ? std::span<const double>(xGlobal)
                      : std::span<const double>(),
        0);
    ASSERT_EQ(static_cast<int>(xLoc.size()), dist.localRows());
    for (int i = 0; i < dist.localRows(); ++i) {
      EXPECT_DOUBLE_EQ(xLoc[static_cast<std::size_t>(i)],
                       (dist.startRow() + i) * 1.5);
    }
    const auto back =
        dist.gatherVectorToRoot(std::span<const double>(xLoc), 0);
    if (c.rank() == 0) {
      ASSERT_EQ(back.size(), xGlobal.size());
      for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_DOUBLE_EQ(back[i], xGlobal[i]);
      }
    }
  });
}

TEST_P(DistP, LocalDiagonalMatchesGlobal) {
  const int p = GetParam();
  Rng rng(500);
  const CsrMatrix global = randomDiagDominant(41, 4, 0.5, rng);
  const auto dRef = diagonal(global);
  comm::World::run(p, [&](comm::Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
    const auto d = dist.localDiagonal();
    for (int i = 0; i < dist.localRows(); ++i) {
      EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i)],
                       dRef[static_cast<std::size_t>(dist.startRow() + i)]);
    }
  });
}

TEST_P(DistP, DistVectorReductionsMatchSerial) {
  const int p = GetParam();
  const int n = 57;
  std::vector<double> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  Rng rng(600);
  for (auto& v : x) v = rng.uniform(-2, 2);
  for (auto& v : y) v = rng.uniform(-2, 2);
  const double dotRef = dot(std::span<const double>(x), std::span<const double>(y));
  const double n2Ref = norm2(std::span<const double>(x));
  comm::World::run(p, [&](comm::Comm& c) {
    const BlockRowPartition part(n, p);
    const int s = part.startRow(c.rank());
    const int m = part.localRows(c.rank());
    std::span<const double> xLoc(x.data() + s, static_cast<std::size_t>(m));
    std::span<const double> yLoc(y.data() + s, static_cast<std::size_t>(m));
    EXPECT_NEAR(distDot(c, xLoc, yLoc), dotRef, 1e-12);
    EXPECT_NEAR(distNorm2(c, xLoc), n2Ref, 1e-12);
    double infRef = 0.0;
    for (double v : x) infRef = std::max(infRef, std::abs(v));
    EXPECT_DOUBLE_EQ(distNormInf(c, xLoc), infRef);
  });
}

TEST(Dist, RejectsInconsistentTiling) {
  EXPECT_THROW(
      comm::World::run(2,
                       [](comm::Comm& c) {
                         CsrMatrix local;
                         local.rows = 3;  // 3+3 != 5 => must throw
                         local.cols = 5;
                         local.rowPtr = {0, 0, 0, 0};
                         DistCsrMatrix bad(c, 5, 5, c.rank() == 0 ? 0 : 3,
                                           local);
                       }),
      Error);
}

TEST(Dist, GhostCountIsZeroForBlockDiagonal) {
  comm::World::run(2, [](comm::Comm& c) {
    // Each rank's rows touch only its own columns -> no halo traffic.
    const int nloc = 4;
    CsrMatrix local;
    local.rows = nloc;
    local.cols = 8;
    local.rowPtr.resize(nloc + 1);
    const int base = c.rank() * nloc;
    for (int i = 0; i < nloc; ++i) {
      local.rowPtr[static_cast<std::size_t>(i)] = i;
      local.colIdx.push_back(base + i);
      local.values.push_back(1.0);
    }
    local.rowPtr[nloc] = nloc;
    DistCsrMatrix dist(c, 8, 8, base, local);
    EXPECT_EQ(dist.numGhosts(), 0);
    std::vector<double> x(nloc, 2.0), y(nloc);
    dist.spmv(std::span<const double>(x), std::span<double>(y));
    for (double v : y) EXPECT_DOUBLE_EQ(v, 2.0);
  });
}

TEST_P(DistP, InteriorBoundarySplitCoversAllRows) {
  const int p = GetParam();
  mesh::Pde5ptSpec spec;
  spec.gridN = 10;
  comm::World::run(p, [&](comm::Comm& c) {
    const auto local = mesh::assembleLocal(spec, c.rank(), c.size());
    const DistCsrMatrix dist(c, local.globalN, local.globalN, local.startRow,
                             local.localA);
    EXPECT_EQ(dist.numInteriorRows() + dist.numBoundaryRows(),
              dist.localRows());
    // A row is boundary iff it touches a ghost column, so boundary rows and
    // ghosts appear together.
    EXPECT_EQ(dist.numBoundaryRows() > 0, dist.numGhosts() > 0);
    if (p == 1) {
      EXPECT_EQ(dist.numBoundaryRows(), 0);
    }
  });
}

TEST_P(DistP, RepeatedSpmvIsBitwiseDeterministic) {
  const int p = GetParam();
  const int n = 83;
  Rng rng(700);
  const CsrMatrix global = randomDiagDominant(n, 6, 1.0, rng);
  comm::World::run(p, [&](comm::Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
    const int m = dist.localRows();
    std::vector<double> x(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      x[static_cast<std::size_t>(i)] = 0.25 * (dist.startRow() + i) - 3.0;
    }
    std::vector<double> y0(static_cast<std::size_t>(m));
    dist.spmv(std::span<const double>(x), std::span<double>(y0));
    // Back-to-back rounds rotate through distinct reserved tags; the values
    // must nevertheless be bitwise identical every round.
    for (int round = 0; round < 5; ++round) {
      std::vector<double> y(static_cast<std::size_t>(m), -1.0);
      dist.spmv(std::span<const double>(x), std::span<double>(y));
      for (int i = 0; i < m; ++i) {
        EXPECT_EQ(y[static_cast<std::size_t>(i)],
                  y0[static_cast<std::size_t>(i)]);
      }
    }
  });
}

TEST(Dist, SpmvIsAllocationFreeSingleRank) {
  comm::World::run(1, [](comm::Comm& c) {
    const int n = 256;
    const CsrMatrix a = laplacian1d(n);
    const DistCsrMatrix dist(c, n, n, 0, a);
    std::vector<double> x(static_cast<std::size_t>(n), 1.0);
    std::vector<double> y(static_cast<std::size_t>(n));
    dist.spmv(std::span<const double>(x), std::span<double>(y));  // warm
    g_allocCalls.store(0);
    g_allocBytes.store(0);
    g_countAllocs.store(true);
    for (int it = 0; it < 32; ++it) {
      dist.spmv(std::span<const double>(x), std::span<double>(y));
    }
    g_countAllocs.store(false);
    EXPECT_EQ(g_allocCalls.load(), 0u);
    EXPECT_EQ(g_allocBytes.load(), 0u);
  });
}

TEST(Dist, SpmvAllocatesOnlyTransportEnvelopesMultiRank) {
  // With two ranks the 1-D Laplacian couples the blocks through a single
  // entry each way, so per-call message payloads are a few bytes while the
  // plan scratch (xExt, pack buffer) is ~n doubles.  If spmv re-allocated
  // its scratch per call, the counted bytes would be megabytes.
  const int n = 20000;
  const int reps = 16;
  const CsrMatrix global = laplacian1d(n);
  comm::World::run(2, [&](comm::Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
    const int m = dist.localRows();
    std::vector<double> x(static_cast<std::size_t>(m), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m));
    for (int it = 0; it < 4; ++it) {  // warm the transport
      dist.spmv(std::span<const double>(x), std::span<double>(y));
    }
    c.barrier();
    if (c.rank() == 0) {
      g_allocCalls.store(0);
      g_allocBytes.store(0);
      g_countAllocs.store(true);
    }
    c.barrier();
    for (int it = 0; it < reps; ++it) {
      dist.spmv(std::span<const double>(x), std::span<double>(y));
    }
    c.barrier();
    if (c.rank() == 0) {
      g_countAllocs.store(false);
      // Both ranks' transport traffic over all reps: far below one xExt.
      EXPECT_LT(g_allocBytes.load(), static_cast<std::size_t>(n));
    }
    c.barrier();
  });
}

TEST_P(DistP, SplitPhaseDotsBitwiseMatchBlocking) {
  const int p = GetParam();
  const int n = 63;
  std::vector<double> x(static_cast<std::size_t>(n)),
      y(static_cast<std::size_t>(n)), z(static_cast<std::size_t>(n));
  Rng rng(601);
  for (auto& v : x) v = rng.uniform(-2, 2);
  for (auto& v : y) v = rng.uniform(-2, 2);
  for (auto& v : z) v = rng.uniform(-2, 2);
  comm::World::run(p, [&](comm::Comm& c) {
    const BlockRowPartition part(n, p);
    const int s = part.startRow(c.rank());
    const int m = part.localRows(c.rank());
    std::span<const double> xL(x.data() + s, static_cast<std::size_t>(m));
    std::span<const double> yL(y.data() + s, static_cast<std::size_t>(m));
    std::span<const double> zL(z.data() + s, static_cast<std::size_t>(m));
    // Single lane: identical bits to the blocking distDot.
    const double blockingDot = distDot(c, xL, yL);
    PendingDots p1 = distDotBegin(c, xL, yL);
    EXPECT_EQ(distDotEnd(p1), blockingDot);
    // Fused two-lane: identical bits to the blocking distDot2.
    const std::array<double, 2> blocking2 = distDot2(c, xL, yL, yL, zL);
    PendingDots p2 = distDot2Begin(c, xL, yL, yL, zL);
    const std::array<double, 2> split2 = distDot2End(p2);
    EXPECT_EQ(split2[0], blocking2[0]);
    EXPECT_EQ(split2[1], blocking2[1]);
    // General batch (three lanes, as pipelined CG uses).
    const std::array<DotArgs, 3> lanes{DotArgs{xL, xL}, DotArgs{xL, zL},
                                       DotArgs{yL, zL}};
    PendingDots p3 = distDotsBegin(c, std::span<const DotArgs>(lanes));
    while (!p3.test()) {
    }
    const auto r3 = distDotsEnd(p3);
    ASSERT_EQ(r3.size(), 3u);
    EXPECT_EQ(r3[0], distDot(c, xL, xL));
    EXPECT_EQ(r3[1], distDot(c, xL, zL));
    EXPECT_EQ(r3[2], distDot(c, yL, zL));
  });
}

TEST_P(DistP, SplitPhaseDotOverlapsSpmv) {
  // The intended hot-path usage: begin a dot, run an spmv (whose halo
  // exchange shares the wires), then collect — results must be unaffected.
  const int p = GetParam();
  const int n = 48;
  Rng rngA(603);
  const CsrMatrix a = randomDiagDominant(n, 6, 1.0, rngA);
  std::vector<double> x(static_cast<std::size_t>(n));
  Rng rng(602);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> yRef(static_cast<std::size_t>(n));
  spmv(a, std::span<const double>(x), std::span<double>(yRef));
  comm::World::run(p, [&](comm::Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, a);
    const BlockRowPartition part(n, p);
    const int s = part.startRow(c.rank());
    const int m = part.localRows(c.rank());
    std::span<const double> xL(x.data() + s, static_cast<std::size_t>(m));
    const double dotRef = distDot(c, xL, xL);
    PendingDots pend = distDotBegin(c, xL, xL);
    std::vector<double> yL(static_cast<std::size_t>(m));
    dist.spmv(xL, std::span<double>(yL));
    (void)pend.test();
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(yL[static_cast<std::size_t>(i)],
                  yRef[static_cast<std::size_t>(s + i)], 1e-10);
    }
    EXPECT_EQ(distDotEnd(pend), dotRef);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistP,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

}  // namespace
}  // namespace lisi::sparse
