// Distributed-matrix tests: the parallel spmv and gathers must agree with
// their serial counterparts for every rank count.
#include <gtest/gtest.h>

#include "comm/comm.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"
#include "sparse/partition.hpp"
#include "support/rng.hpp"

namespace lisi::sparse {
namespace {

TEST(BlockRowPartition, EvenSplit) {
  const BlockRowPartition p(12, 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(p.localRows(r), 3);
    EXPECT_EQ(p.startRow(r), 3 * r);
  }
}

TEST(BlockRowPartition, RemainderGoesToLowRanks) {
  const BlockRowPartition p(10, 3);
  EXPECT_EQ(p.localRows(0), 4);
  EXPECT_EQ(p.localRows(1), 3);
  EXPECT_EQ(p.localRows(2), 3);
  EXPECT_EQ(p.startRow(0), 0);
  EXPECT_EQ(p.startRow(1), 4);
  EXPECT_EQ(p.startRow(2), 7);
}

TEST(BlockRowPartition, OwnerLookup) {
  const BlockRowPartition p(10, 3);
  EXPECT_EQ(p.ownerOf(0), 0);
  EXPECT_EQ(p.ownerOf(3), 0);
  EXPECT_EQ(p.ownerOf(4), 1);
  EXPECT_EQ(p.ownerOf(9), 2);
  EXPECT_THROW((void)p.ownerOf(10), Error);
}

TEST(BlockRowPartition, MoreRanksThanRows) {
  const BlockRowPartition p(2, 5);
  int total = 0;
  for (int r = 0; r < 5; ++r) total += p.localRows(r);
  EXPECT_EQ(total, 2);
  EXPECT_EQ(p.localRows(0), 1);
  EXPECT_EQ(p.localRows(1), 1);
  EXPECT_EQ(p.localRows(4), 0);
}

class DistP : public ::testing::TestWithParam<int> {};

TEST_P(DistP, SpmvMatchesSerialOnRandomMatrix) {
  const int p = GetParam();
  const int n = 83;
  Rng rngA(100);
  const CsrMatrix global = randomDiagDominant(n, 6, 1.0, rngA);
  std::vector<double> x(static_cast<std::size_t>(n));
  Rng rngX(200);
  for (auto& v : x) v = rngX.uniform(-1, 1);
  std::vector<double> yRef(static_cast<std::size_t>(n));
  spmv(global, std::span<const double>(x), std::span<double>(yRef));

  comm::World::run(p, [&](comm::Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
    EXPECT_EQ(dist.globalRows(), n);
    EXPECT_EQ(dist.globalNnz(), global.nnz());
    const int s = dist.startRow();
    const int m = dist.localRows();
    std::vector<double> xLoc(x.begin() + s, x.begin() + s + m);
    std::vector<double> yLoc(static_cast<std::size_t>(m));
    dist.spmv(std::span<const double>(xLoc), std::span<double>(yLoc));
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(yLoc[static_cast<std::size_t>(i)],
                  yRef[static_cast<std::size_t>(s + i)], 1e-12)
          << "rank " << c.rank() << " row " << s + i;
    }
  });
}

TEST_P(DistP, SpmvMatchesSerialOnPdeMatrix) {
  const int p = GetParam();
  mesh::Pde5ptSpec spec;
  spec.gridN = 12;
  const auto serial = mesh::assembleGlobal(spec);
  std::vector<double> x(static_cast<std::size_t>(serial.globalN));
  Rng rng(300);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> yRef(x.size());
  spmv(serial.localA, std::span<const double>(x), std::span<double>(yRef));

  comm::World::run(p, [&](comm::Comm& c) {
    const auto local = mesh::assembleLocal(spec, c.rank(), c.size());
    DistCsrMatrix dist(c, local.globalN, local.globalN, local.startRow,
                       local.localA);
    std::vector<double> xLoc(x.begin() + dist.startRow(),
                             x.begin() + dist.startRow() + dist.localRows());
    std::vector<double> yLoc(static_cast<std::size_t>(dist.localRows()));
    dist.spmv(std::span<const double>(xLoc), std::span<double>(yLoc));
    for (int i = 0; i < dist.localRows(); ++i) {
      EXPECT_NEAR(yLoc[static_cast<std::size_t>(i)],
                  yRef[static_cast<std::size_t>(dist.startRow() + i)], 1e-12);
    }
  });
}

TEST_P(DistP, GatherToRootReassemblesMatrix) {
  const int p = GetParam();
  Rng rng(400);
  const CsrMatrix global = randomCsr(37, 37, 5, rng);
  CsrMatrix canonical = global;
  canonical.canonicalize();
  comm::World::run(p, [&](comm::Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
    const CsrMatrix gathered = dist.gatherToRoot(0);
    if (c.rank() == 0) {
      EXPECT_DOUBLE_EQ(maxAbsDiff(canonical, gathered), 0.0);
    } else {
      EXPECT_EQ(gathered.rows, 0);
    }
  });
}

TEST_P(DistP, VectorGatherScatterRoundTrip) {
  const int p = GetParam();
  const int n = 29;
  std::vector<double> xGlobal(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xGlobal[static_cast<std::size_t>(i)] = i * 1.5;
  comm::World::run(p, [&](comm::Comm& c) {
    const CsrMatrix eye = laplacian1d(n);  // any square matrix fixes the layout
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, eye);
    const auto xLoc = dist.scatterVectorFromRoot(
        c.rank() == 0 ? std::span<const double>(xGlobal)
                      : std::span<const double>(),
        0);
    ASSERT_EQ(static_cast<int>(xLoc.size()), dist.localRows());
    for (int i = 0; i < dist.localRows(); ++i) {
      EXPECT_DOUBLE_EQ(xLoc[static_cast<std::size_t>(i)],
                       (dist.startRow() + i) * 1.5);
    }
    const auto back =
        dist.gatherVectorToRoot(std::span<const double>(xLoc), 0);
    if (c.rank() == 0) {
      ASSERT_EQ(back.size(), xGlobal.size());
      for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_DOUBLE_EQ(back[i], xGlobal[i]);
      }
    }
  });
}

TEST_P(DistP, LocalDiagonalMatchesGlobal) {
  const int p = GetParam();
  Rng rng(500);
  const CsrMatrix global = randomDiagDominant(41, 4, 0.5, rng);
  const auto dRef = diagonal(global);
  comm::World::run(p, [&](comm::Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
    const auto d = dist.localDiagonal();
    for (int i = 0; i < dist.localRows(); ++i) {
      EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i)],
                       dRef[static_cast<std::size_t>(dist.startRow() + i)]);
    }
  });
}

TEST_P(DistP, DistVectorReductionsMatchSerial) {
  const int p = GetParam();
  const int n = 57;
  std::vector<double> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  Rng rng(600);
  for (auto& v : x) v = rng.uniform(-2, 2);
  for (auto& v : y) v = rng.uniform(-2, 2);
  const double dotRef = dot(std::span<const double>(x), std::span<const double>(y));
  const double n2Ref = norm2(std::span<const double>(x));
  comm::World::run(p, [&](comm::Comm& c) {
    const BlockRowPartition part(n, p);
    const int s = part.startRow(c.rank());
    const int m = part.localRows(c.rank());
    std::span<const double> xLoc(x.data() + s, static_cast<std::size_t>(m));
    std::span<const double> yLoc(y.data() + s, static_cast<std::size_t>(m));
    EXPECT_NEAR(distDot(c, xLoc, yLoc), dotRef, 1e-12);
    EXPECT_NEAR(distNorm2(c, xLoc), n2Ref, 1e-12);
    double infRef = 0.0;
    for (double v : x) infRef = std::max(infRef, std::abs(v));
    EXPECT_DOUBLE_EQ(distNormInf(c, xLoc), infRef);
  });
}

TEST(Dist, RejectsInconsistentTiling) {
  EXPECT_THROW(
      comm::World::run(2,
                       [](comm::Comm& c) {
                         CsrMatrix local;
                         local.rows = 3;  // 3+3 != 5 => must throw
                         local.cols = 5;
                         local.rowPtr = {0, 0, 0, 0};
                         DistCsrMatrix bad(c, 5, 5, c.rank() == 0 ? 0 : 3,
                                           local);
                       }),
      Error);
}

TEST(Dist, GhostCountIsZeroForBlockDiagonal) {
  comm::World::run(2, [](comm::Comm& c) {
    // Each rank's rows touch only its own columns -> no halo traffic.
    const int nloc = 4;
    CsrMatrix local;
    local.rows = nloc;
    local.cols = 8;
    local.rowPtr.resize(nloc + 1);
    const int base = c.rank() * nloc;
    for (int i = 0; i < nloc; ++i) {
      local.rowPtr[static_cast<std::size_t>(i)] = i;
      local.colIdx.push_back(base + i);
      local.values.push_back(1.0);
    }
    local.rowPtr[nloc] = nloc;
    DistCsrMatrix dist(c, 8, 8, base, local);
    EXPECT_EQ(dist.numGhosts(), 0);
    std::vector<double> x(nloc, 2.0), y(nloc);
    dist.spmv(std::span<const double>(x), std::span<double>(y));
    for (double v : y) EXPECT_DOUBLE_EQ(v, 2.0);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistP, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace lisi::sparse
