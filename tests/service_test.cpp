// Tests for the session-scoped solver service: admission control,
// same-operator batching into blocked multi-RHS solves, cross-backend
// session pools, per-session observability attribution, and a concurrent
// stress shape meant to run under TSan (scripts/verify.sh service stage).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "service/service.hpp"
#include "sparse/generate.hpp"

namespace lisi::service {
namespace {

/// Shared global operator for requests: an SPD 2-D Laplacian (CG-friendly;
/// every session rank re-slices its own block rows).
struct Problem {
  std::shared_ptr<sparse::CsrMatrix> a;
  std::vector<double> b;
  int n = 0;
};

Problem makeProblem(int gridN) {
  Problem p;
  p.a = std::make_shared<sparse::CsrMatrix>(
      sparse::laplacian2d(gridN, gridN));
  p.n = p.a->rows;
  p.b.resize(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i) {
    p.b[static_cast<std::size_t>(i)] = 1.0 + 0.25 * (i % 5);
  }
  return p;
}

/// Max-norm of A x - b, computed serially against the global operator.
double residualInf(const sparse::CsrMatrix& a, const std::vector<double>& x,
                   const std::vector<double>& b) {
  double worst = 0.0;
  for (int i = 0; i < a.rows; ++i) {
    double yi = 0.0;
    for (int j = a.rowPtr[static_cast<std::size_t>(i)];
         j < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++j) {
      yi += a.values[static_cast<std::size_t>(j)] *
            x[static_cast<std::size_t>(a.colIdx[static_cast<std::size_t>(j)])];
    }
    worst = std::max(worst, std::abs(yi - b[static_cast<std::size_t>(i)]));
  }
  return worst;
}

SolveRequest cgRequest(const Problem& p, std::uint64_t operatorId) {
  SolveRequest req;
  req.matrix = p.a;
  req.rhs = p.b;
  req.backend = "pksp";
  req.operatorId = operatorId;
  req.stringParams = {{"solver", "cg"}, {"preconditioner", "jacobi"}};
  req.doubleParams = {{"tol", 1e-10}};
  return req;
}

TEST(ServiceConfig, EnvOverridesWithFallback) {
  ::setenv("LISI_SERVICE_SESSIONS", "3", 1);
  ::setenv("LISI_SERVICE_RANKS", "4", 1);
  ::setenv("LISI_SERVICE_QUEUE_DEPTH", "7", 1);
  ::setenv("LISI_SERVICE_BATCH_WINDOW", "not-a-number", 1);
  const ServiceConfig cfg = configFromEnv();
  EXPECT_EQ(cfg.sessions, 3);
  EXPECT_EQ(cfg.ranksPerSession, 4);
  EXPECT_EQ(cfg.queueDepth, 7);
  EXPECT_EQ(cfg.batchWindow, ServiceConfig{}.batchWindow);  // bad -> default
  ::unsetenv("LISI_SERVICE_SESSIONS");
  ::unsetenv("LISI_SERVICE_RANKS");
  ::unsetenv("LISI_SERVICE_QUEUE_DEPTH");
  ::unsetenv("LISI_SERVICE_BATCH_WINDOW");
  const ServiceConfig defaults = configFromEnv();
  EXPECT_EQ(defaults.sessions, ServiceConfig{}.sessions);
  EXPECT_EQ(defaults.ranksPerSession, ServiceConfig{}.ranksPerSession);
}

TEST(Service, ServesOneRequest) {
  const Problem p = makeProblem(12);
  ServiceConfig cfg;
  cfg.sessions = 1;
  cfg.ranksPerSession = 2;
  SolverService svc(cfg);
  auto future = svc.submit(cgRequest(p, 1));
  ASSERT_TRUE(future.has_value());
  svc.start();
  SolveResult res = future->get();
  svc.stop();
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.session, 0);
  ASSERT_EQ(res.x.size(), static_cast<std::size_t>(p.n));
  EXPECT_LT(residualInf(*p.a, res.x, p.b), 1e-6);
  EXPECT_EQ(svc.accepted(), 1);
  EXPECT_EQ(svc.rejected(), 0);
}

TEST(Service, BatchesSameOperatorRequests) {
  const Problem p = makeProblem(10);
  ServiceConfig cfg;
  cfg.sessions = 1;
  cfg.ranksPerSession = 2;
  cfg.batchWindow = 4;
  SolverService svc(cfg);
  // Queue four batchable requests (same operator/backend/params, distinct
  // right-hand sides) BEFORE starting: the session leader must fuse all
  // four into one blocked multi-RHS solve.
  std::vector<std::future<SolveResult>> futures;
  for (int k = 0; k < 4; ++k) {
    SolveRequest req = cgRequest(p, 7);
    for (double& v : req.rhs) v *= static_cast<double>(k + 1);
    auto f = svc.submit(std::move(req));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  svc.start();
  for (int k = 0; k < 4; ++k) {
    SolveResult res = futures[static_cast<std::size_t>(k)].get();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.batchLanes, 4);
    // Each lane got ITS solution, not a neighbor's: check against the
    // scaled right-hand side it submitted.
    std::vector<double> b = p.b;
    for (double& v : b) v *= static_cast<double>(k + 1);
    EXPECT_LT(residualInf(*p.a, res.x, b), 1e-5);
  }
  svc.stop();
  EXPECT_EQ(svc.batchesServed(), 1);
}

TEST(Service, AdmissionControlRejectsWhenFull) {
  const Problem p = makeProblem(8);
  ServiceConfig cfg;
  cfg.sessions = 1;
  cfg.ranksPerSession = 2;
  cfg.queueDepth = 2;
  SolverService svc(cfg);  // never started: the queue cannot drain
  auto f1 = svc.submit(cgRequest(p, 1));
  auto f2 = svc.submit(cgRequest(p, 2));
  auto f3 = svc.submit(cgRequest(p, 3));
  EXPECT_TRUE(f1.has_value());
  EXPECT_TRUE(f2.has_value());
  EXPECT_FALSE(f3.has_value());  // rejected, not blocked
  EXPECT_EQ(svc.rejected(), 1);
  EXPECT_EQ(svc.queuedRequests(), 2u);
  svc.stop();  // pool never ran: queued requests resolve with an error
  SolveResult r1 = f1->get();
  EXPECT_FALSE(r1.ok);
  EXPECT_FALSE(r1.error.empty());
  // After stop, submissions are rejected outright.
  EXPECT_FALSE(svc.submit(cgRequest(p, 4)).has_value());
}

TEST(Service, MalformedRequestsResolveWithDiagnostics) {
  const Problem p = makeProblem(8);
  SolverService svc;
  SolveRequest noMatrix;
  auto f1 = svc.submit(std::move(noMatrix));
  ASSERT_TRUE(f1.has_value());
  EXPECT_FALSE(f1->get().ok);

  SolveRequest badRhs = cgRequest(p, 1);
  badRhs.rhs.pop_back();
  auto f2 = svc.submit(std::move(badRhs));
  ASSERT_TRUE(f2.has_value());
  EXPECT_NE(f2->get().error.find("rhs length"), std::string::npos);

  SolveRequest badBackend = cgRequest(p, 1);
  badBackend.backend = "petsc";
  auto f3 = svc.submit(std::move(badBackend));
  ASSERT_TRUE(f3.has_value());
  EXPECT_NE(f3->get().error.find("unknown backend"), std::string::npos);
  svc.stop();
}

TEST(Service, CrossBackendSessionsShareOneWorld) {
  const Problem p = makeProblem(12);
  ServiceConfig cfg;
  cfg.sessions = 2;
  cfg.ranksPerSession = 2;  // 4 ranks total
  cfg.queueDepth = 32;
  SolverService svc(cfg);
  svc.start();
  std::vector<std::future<SolveResult>> futures;
  for (int k = 0; k < 4; ++k) {
    // Alternate backends; different operator ids keep them unbatchable, so
    // the two sessions pick up work independently.
    SolveRequest req;
    req.matrix = p.a;
    req.rhs = p.b;
    req.operatorId = static_cast<std::uint64_t>(k);
    if (k % 2 == 0) {
      req.backend = "pksp";
      req.stringParams = {{"solver", "gmres"}, {"preconditioner", "ilu"}};
      req.doubleParams = {{"tol", 1e-10}};
    } else {
      req.backend = "aztec";
      req.stringParams = {{"solver", "gmres"}, {"preconditioner", "ilu"}};
      req.doubleParams = {{"tol", 1e-10}};
    }
    auto f = svc.submit(std::move(req));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  for (auto& f : futures) {
    SolveResult res = f.get();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_GE(res.session, 0);
    EXPECT_LT(res.session, 2);
    EXPECT_LT(residualInf(*p.a, res.x, p.b), 1e-5);
  }
  svc.stop();
  EXPECT_EQ(svc.accepted(), 4);
}

TEST(Service, PerSessionObsAttribution) {
  if (!obs::enabled()) {
    GTEST_SKIP() << "built without LISI_OBS=ON";
  }
  obs::reset();
  const Problem p = makeProblem(10);
  ServiceConfig cfg;
  cfg.sessions = 2;
  cfg.ranksPerSession = 2;
  cfg.queueDepth = 32;
  SolverService svc(cfg);
  // Two unbatchable requests per session's worth of load, queued up front
  // so both sessions have work waiting the moment they come up.
  std::vector<std::future<SolveResult>> futures;
  for (int k = 0; k < 4; ++k) {
    auto f = svc.submit(cgRequest(p, static_cast<std::uint64_t>(k)));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  svc.start();
  std::set<int> served;
  for (auto& f : futures) {
    const SolveResult res = f.get();
    ASSERT_TRUE(res.ok) << res.error;
    served.insert(res.session);
  }
  svc.stop();

  const obs::Report report = obs::collect();
  // Every service batch span carries a session label, and the labeled
  // sessions must be exactly the ones the results say did the serving
  // (which sessions grab which request is a scheduling race; the
  // attribution of whoever served is not).
  std::set<int> sessions;
  std::uint64_t serviceSpans = 0;
  for (const auto& s : report.sessionSpans) {
    if (s.name == "service.batch") {
      sessions.insert(s.session);
      serviceSpans += s.count;
    }
  }
  // Every session rank records the batch span: 4 batches x 2 ranks.
  EXPECT_EQ(serviceSpans, 8u);
  EXPECT_EQ(sessions, served);
  long long lanes = 0;
  for (const auto& c : report.sessionCounters) {
    if (c.name == "service.lanes") lanes += c.total;
  }
  EXPECT_EQ(lanes, 4);
}

TEST(Service, ConcurrentSubmittersStress) {
  // TSan target: two client threads hammer a two-session pool while it is
  // serving; exercises the queue, the slot handoff, the shared tune cache,
  // and the process-global schedule fallback concurrently.
  const Problem p = makeProblem(8);
  ServiceConfig cfg;
  cfg.sessions = 2;
  cfg.ranksPerSession = 2;
  cfg.queueDepth = 8;  // small on purpose: the reject path must be hit-safe
  cfg.batchWindow = 3;
  SolverService svc(cfg);
  svc.start();
  std::atomic<int> solved{0};
  std::atomic<int> rejectedLocal{0};
  auto client = [&](int seed) {
    for (int k = 0; k < 12; ++k) {
      SolveRequest req = cgRequest(p, static_cast<std::uint64_t>(k % 3));
      for (double& v : req.rhs) v *= 1.0 + 0.1 * static_cast<double>(seed);
      auto f = svc.submit(std::move(req));
      if (!f.has_value()) {
        rejectedLocal.fetch_add(1);
        continue;
      }
      const SolveResult res = f->get();
      ASSERT_TRUE(res.ok) << res.error;
      solved.fetch_add(1);
    }
  };
  std::thread t1(client, 1);
  std::thread t2(client, 2);
  t1.join();
  t2.join();
  svc.stop();
  EXPECT_EQ(solved.load() + rejectedLocal.load(), 24);
  EXPECT_EQ(svc.accepted(), solved.load());
  EXPECT_EQ(svc.rejected(), rejectedLocal.load());
  EXPECT_GT(solved.load(), 0);
}

}  // namespace
}  // namespace lisi::service
