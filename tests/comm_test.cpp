// Tests for the MiniMPI substrate: point-to-point semantics, collectives,
// sub-communicators, failure propagation, and the long-handle registry.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <numeric>

#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"

namespace lisi::comm {
namespace {

TEST(World, SingleRankRuns) {
  int observedSize = 0;
  World::run(1, [&](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    observedSize = c.size();
  });
  EXPECT_EQ(observedSize, 1);
}

TEST(World, RanksAreDistinct) {
  std::atomic<int> mask{0};
  World::run(4, [&](Comm& c) { mask.fetch_or(1 << c.rank()); });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(World, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      World::run(3,
                 [](Comm& c) {
                   if (c.rank() == 1) throw Error("rank 1 failed");
                   // Other ranks block; the abort must wake them.
                   (void)c.recvBytes(kAnySource, 5);
                 }),
      Error);
}

TEST(World, OriginalExceptionPreferredOverAbortEchoes) {
  try {
    World::run(4, [](Comm& c) {
      if (c.rank() == 2) throw Error("genuine failure on rank 2");
      c.barrier();  // never completes
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("genuine failure on rank 2"),
              std::string::npos);
  }
}

TEST(PointToPoint, SendRecvRoundTrip) {
  World::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> data{1.5, -2.5, 3.25};
      c.send(std::span<const double>(data), 1, 7);
    } else {
      std::vector<double> got(3);
      Status st;
      c.recv(std::span<double>(got), 0, 7, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 3 * sizeof(double));
      EXPECT_DOUBLE_EQ(got[0], 1.5);
      EXPECT_DOUBLE_EQ(got[2], 3.25);
    }
  });
}

TEST(PointToPoint, FifoOrderPerPair) {
  World::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) c.sendValue(i, 1, 3);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(c.recvValue<int>(0, 3), i);
    }
  });
}

TEST(PointToPoint, TagSelectivity) {
  World::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(111, 1, 1);
      c.sendValue(222, 1, 2);
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      EXPECT_EQ(c.recvValue<int>(0, 2), 222);
      EXPECT_EQ(c.recvValue<int>(0, 1), 111);
    }
  });
}

TEST(PointToPoint, AnySourceAndAnyTag) {
  World::run(3, [](Comm& c) {
    if (c.rank() != 0) {
      c.sendValue(c.rank() * 10, 0, c.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        Status st;
        sum += c.recvValue<int>(kAnySource, kAnyTag, &st);
        EXPECT_EQ(st.tag, st.source);  // we tagged with the sender rank
      }
      EXPECT_EQ(sum, 30);
    }
  });
}

TEST(PointToPoint, ZeroLengthMessage) {
  World::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.sendBytes(nullptr, 0, 1, 9);
    } else {
      Status st;
      auto bytes = c.recvBytes(0, 9, &st);
      EXPECT_TRUE(bytes.empty());
      EXPECT_EQ(st.bytes, 0u);
    }
  });
}

TEST(PointToPoint, RecvVectorUnknownSize) {
  World::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> data(17);
      std::iota(data.begin(), data.end(), 0);
      c.send(std::span<const int>(data), 1, 4);
    } else {
      auto got = c.recvVector<int>(0, 4);
      ASSERT_EQ(got.size(), 17u);
      EXPECT_EQ(got[16], 16);
    }
  });
}

TEST(PointToPoint, SizeMismatchThrows) {
  EXPECT_THROW(World::run(2,
                          [](Comm& c) {
                            if (c.rank() == 0) {
                              c.sendValue(1.0, 1, 2);
                            } else {
                              std::vector<double> buf(5);
                              c.recv(std::span<double>(buf), 0, 2);
                            }
                          }),
               Error);
}

TEST(PointToPoint, SelfSendWorks) {
  World::run(1, [](Comm& c) {
    c.sendValue(42, 0, 0);
    EXPECT_EQ(c.recvValue<int>(0, 0), 42);
  });
}

class CollectiveP : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveP, Barrier) {
  const int p = GetParam();
  std::atomic<int> entered{0};
  World::run(p, [&](Comm& c) {
    entered.fetch_add(1);
    c.barrier();
    // After the barrier every rank must have entered.
    EXPECT_EQ(entered.load(), p);
    c.barrier();
  });
}

TEST_P(CollectiveP, BcastFromEveryRoot) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data(4, c.rank() == root ? root + 100 : -1);
      c.bcast(std::span<int>(data), root);
      for (int v : data) EXPECT_EQ(v, root + 100);
    }
  });
}

TEST_P(CollectiveP, AllreduceSumMatchesFormula) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    const double mine = c.rank() + 1.0;
    const double sum = c.allreduceValue(mine, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, p * (p + 1) / 2.0);
    EXPECT_DOUBLE_EQ(c.allreduceValue(mine, ReduceOp::kMax), p);
    EXPECT_DOUBLE_EQ(c.allreduceValue(mine, ReduceOp::kMin), 1.0);
  });
}

TEST_P(CollectiveP, ReduceVectorOnRoot) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    std::vector<long long> in{c.rank(), 2LL * c.rank()};
    std::vector<long long> out(2, -1);
    c.reduce(std::span<const long long>(in), std::span<long long>(out),
             ReduceOp::kSum, 0);
    if (c.rank() == 0) {
      const long long s = 1LL * p * (p - 1) / 2;
      EXPECT_EQ(out[0], s);
      EXPECT_EQ(out[1], 2 * s);
    }
  });
}

TEST_P(CollectiveP, GathervConcatenatesByRank) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    // Rank r contributes r+1 copies of the value r.
    std::vector<int> mine(static_cast<std::size_t>(c.rank()) + 1, c.rank());
    std::vector<int> counts;
    auto all = c.gatherv(std::span<const int>(mine), 0, &counts);
    if (c.rank() == 0) {
      ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
      std::size_t pos = 0;
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(counts[static_cast<std::size_t>(r)], r + 1);
        for (int k = 0; k <= r; ++k) EXPECT_EQ(all[pos++], r);
      }
      EXPECT_EQ(pos, all.size());
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveP, AllgathervGivesEveryoneEverything) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    const int mine = 7 * c.rank();
    auto all = c.allgatherv(std::span<const int>(&mine, 1), nullptr);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], 7 * r);
  });
}

TEST_P(CollectiveP, ScattervDistributesChunks) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    std::vector<double> all;
    std::vector<int> counts(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      counts[static_cast<std::size_t>(r)] = r + 1;
      for (int k = 0; k <= r; ++k) all.push_back(r + 0.5);
    }
    auto mine = c.scatterv(
        std::span<const double>(c.rank() == 0 ? all : std::vector<double>{}),
        std::span<const int>(counts), 0);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(c.rank()) + 1);
    for (double v : mine) EXPECT_DOUBLE_EQ(v, c.rank() + 0.5);
  });
}

TEST_P(CollectiveP, GatherScatterFixedSizeRoundTrip) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    for (int root = 0; root < p; ++root) {
      // gather: rank r contributes {r, r+0.5}.
      const std::vector<double> mine{1.0 * c.rank(), c.rank() + 0.5};
      std::vector<double> all(c.rank() == root ? 2 * static_cast<std::size_t>(p)
                                               : 0);
      c.gather(std::span<const double>(mine), std::span<double>(all), root);
      if (c.rank() == root) {
        for (int r = 0; r < p; ++r) {
          EXPECT_DOUBLE_EQ(all[2 * static_cast<std::size_t>(r)], r);
          EXPECT_DOUBLE_EQ(all[2 * static_cast<std::size_t>(r) + 1], r + 0.5);
        }
      }
      // scatter the gathered data straight back.
      std::vector<double> back(2, -1.0);
      c.scatter(std::span<const double>(all), std::span<double>(back), root);
      EXPECT_DOUBLE_EQ(back[0], c.rank());
      EXPECT_DOUBLE_EQ(back[1], c.rank() + 0.5);
    }
  });
}

TEST_P(CollectiveP, EmptySpansAreLegal) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    std::vector<double> nothing;
    c.bcast(std::span<double>(nothing), 0);
    c.reduce(std::span<const double>(nothing), std::span<double>(nothing),
             ReduceOp::kSum, 0);
    c.allreduce(std::span<const double>(nothing), std::span<double>(nothing),
                ReduceOp::kSum);
    c.gather(std::span<const double>(nothing), std::span<double>(nothing), 0);
    c.scatter(std::span<const double>(nothing), std::span<double>(nothing), 0);
    std::vector<int> counts;
    const auto all = c.allgatherv(std::span<const double>(nothing), &counts);
    EXPECT_TRUE(all.empty());
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
    for (int n : counts) EXPECT_EQ(n, 0);
    // A rank count-sized sanity op afterwards proves nothing deadlocked.
    EXPECT_EQ(c.allreduceValue(1, ReduceOp::kSum), p);
  });
}

TEST_P(CollectiveP, AllgathervWithSomeEmptyContributions) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    // Even ranks contribute nothing; odd ranks contribute rank copies.
    std::vector<int> mine;
    if (c.rank() % 2 == 1) {
      mine.assign(static_cast<std::size_t>(c.rank()), c.rank());
    }
    std::vector<int> counts;
    const auto all = c.allgatherv(std::span<const int>(mine), &counts);
    std::size_t pos = 0;
    for (int r = 0; r < p; ++r) {
      const int expected = r % 2 == 1 ? r : 0;
      EXPECT_EQ(counts[static_cast<std::size_t>(r)], expected);
      for (int k = 0; k < expected; ++k) EXPECT_EQ(all[pos++], r);
    }
    EXPECT_EQ(pos, all.size());
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveP,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Collectives, ReserveCollectiveTagsAgreeAcrossRanks) {
  World::run(4, [](Comm& c) {
    const std::vector<int> tags = c.reserveCollectiveTags(8);
    ASSERT_EQ(tags.size(), 8u);
    for (int t : tags) EXPECT_GT(t, kMaxUserTag);
    // Every rank must hold the same block: compare against rank 0's copy.
    std::vector<int> ref = tags;
    c.bcast(std::span<int>(ref), 0);
    EXPECT_EQ(ref, tags);
    // Reserved tags work for point-to-point traffic.
    if (c.rank() == 0) {
      c.sendValue(41, 1, tags[3]);
    } else if (c.rank() == 1) {
      EXPECT_EQ(c.recvValue<int>(0, tags[3]), 41);
    }
    c.barrier();
  });
}

/// RAII pin of the collective schedule family; restores kAuto on exit.
class ScheduleGuard {
 public:
  explicit ScheduleGuard(CollectiveSchedule s) { setCollectiveSchedule(s); }
  ~ScheduleGuard() { setCollectiveSchedule(CollectiveSchedule::kAuto); }
};

class ScheduleP : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleP, BothFamiliesRunEveryCollective) {
  const int p = GetParam();
  for (const CollectiveSchedule sched :
       {CollectiveSchedule::kTree, CollectiveSchedule::kStar}) {
    ScheduleGuard guard(sched);
    World::run(p, [&](Comm& c) {
      EXPECT_EQ(c.bcastValue(c.rank() == p - 1 ? 2.5 : 0.0, p - 1), 2.5);
      const int root = p / 2;
      const long mine = c.rank() + 1;
      std::vector<long> out(1, 0);
      c.reduce(std::span<const long>(&mine, 1), std::span<long>(out),
               ReduceOp::kSum, root);
      if (c.rank() == root) {
        EXPECT_EQ(out[0], static_cast<long>(p) * (p + 1) / 2);
      }
      EXPECT_EQ(c.allreduceValue(c.rank() + 1, ReduceOp::kSum),
                p * (p + 1) / 2);
      EXPECT_EQ(c.allreduceValue(c.rank(), ReduceOp::kMax), p - 1);
      std::vector<int> chunk(static_cast<std::size_t>(c.rank() + 1),
                             c.rank());
      std::vector<int> counts;
      const auto all = c.allgatherv(std::span<const int>(chunk), &counts);
      std::size_t pos = 0;
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(counts[static_cast<std::size_t>(r)], r + 1);
        for (int k = 0; k <= r; ++k) EXPECT_EQ(all[pos++], r);
      }
      EXPECT_EQ(pos, all.size());
      c.barrier();
    });
  }
}

TEST_P(ScheduleP, FamiliesAgreeOnIntegerReductions) {
  // Integer sums are exact regardless of association order, so the two
  // families must produce identical results.
  const int p = GetParam();
  long tree = 0;
  long star = 0;
  {
    ScheduleGuard guard(CollectiveSchedule::kTree);
    World::run(p, [&](Comm& c) {
      const long v = c.allreduceValue(static_cast<long>(c.rank()) * c.rank(),
                                      ReduceOp::kSum);
      if (c.rank() == 0) tree = v;
    });
  }
  {
    ScheduleGuard guard(CollectiveSchedule::kStar);
    World::run(p, [&](Comm& c) {
      const long v = c.allreduceValue(static_cast<long>(c.rank()) * c.rank(),
                                      ReduceOp::kSum);
      if (c.rank() == 0) star = v;
    });
  }
  EXPECT_EQ(tree, star);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScheduleP, ::testing::Values(1, 2, 3, 5, 8));

class NonblockingP : public ::testing::TestWithParam<int> {};

TEST_P(NonblockingP, IallreduceMatchesBlockingBitwise) {
  const int p = GetParam();
  for (const CollectiveSchedule sched :
       {CollectiveSchedule::kTree, CollectiveSchedule::kStar}) {
    ScheduleGuard guard(sched);
    World::run(p, [&](Comm& c) {
      // Irrational-ish per-rank values so association order shows up in the
      // last bits; the nonblocking schedule must replay the blocking one
      // exactly.
      std::vector<double> in(5);
      for (std::size_t i = 0; i < in.size(); ++i) {
        in[i] = std::sqrt(2.0 + c.rank()) / (1.0 + static_cast<double>(i));
      }
      std::vector<double> blocking(in.size());
      c.allreduce(std::span<const double>(in), std::span<double>(blocking),
                  ReduceOp::kSum);
      std::vector<double> nonblocking(in.size());
      CollHandle h = c.iallreduce(std::span<const double>(in),
                                  std::span<double>(nonblocking),
                                  ReduceOp::kSum);
      h.wait();
      for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(blocking[i], nonblocking[i]);  // bitwise, not almost-equal
      }
    });
  }
}

TEST_P(NonblockingP, IbarrierReleasesEveryRank) {
  const int p = GetParam();
  for (const CollectiveSchedule sched :
       {CollectiveSchedule::kTree, CollectiveSchedule::kStar}) {
    ScheduleGuard guard(sched);
    std::atomic<int> entered{0};
    World::run(p, [&](Comm& c) {
      entered.fetch_add(1);
      CollHandle h = c.ibarrier();
      h.wait();
      EXPECT_EQ(entered.load(), p);
      c.barrier();
      entered.store(0);
      c.barrier();
    });
  }
}

TEST_P(NonblockingP, OutOfOrderWaitManyOutstanding) {
  // Start a pile of iallreduces, then wait on them in reverse order. Any
  // wait() must drive progress of every outstanding handle of the rank, or
  // rank A (waiting on the last handle) deadlocks against rank B (waiting
  // on the first).
  const int p = GetParam();
  constexpr int kHandles = 24;
  for (const CollectiveSchedule sched :
       {CollectiveSchedule::kTree, CollectiveSchedule::kStar}) {
    ScheduleGuard guard(sched);
    World::run(p, [&](Comm& c) {
      std::vector<long> in(kHandles);
      std::vector<long> out(kHandles, -1);
      std::vector<CollHandle> handles;
      handles.reserve(kHandles);
      for (int k = 0; k < kHandles; ++k) {
        in[static_cast<std::size_t>(k)] = static_cast<long>(c.rank()) + k;
        handles.push_back(c.iallreduce(
            std::span<const long>(&in[static_cast<std::size_t>(k)], 1),
            std::span<long>(&out[static_cast<std::size_t>(k)], 1),
            ReduceOp::kSum));
      }
      for (int k = kHandles - 1; k >= 0; --k) {
        handles[static_cast<std::size_t>(k)].wait();
        const long expect =
            static_cast<long>(p) * (p - 1) / 2 + static_cast<long>(p) * k;
        EXPECT_EQ(out[static_cast<std::size_t>(k)], expect);
      }
    });
  }
}

TEST_P(NonblockingP, TestOnlyPollingCompletes) {
  // Sends are buffered, so spinning on test() alone must drive a collective
  // to completion without anyone ever blocking in wait().
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    double out = 0.0;
    const double mine = c.rank() + 1.0;
    CollHandle h = c.iallreduce(std::span<const double>(&mine, 1),
                                std::span<double>(&out, 1), ReduceOp::kSum);
    while (!h.test()) {
    }
    EXPECT_DOUBLE_EQ(out, p * (p + 1) / 2.0);
  });
}

TEST_P(NonblockingP, OverlapsWithPointToPointTraffic) {
  // A collective in flight must not capture or corrupt unrelated tagged
  // halo-style messages exchanged while it progresses.
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    int sum = -1;
    const int mine = c.rank();
    CollHandle h = c.iallreduce(std::span<const int>(&mine, 1),
                                std::span<int>(&sum, 1), ReduceOp::kSum);
    const int right = (c.rank() + 1) % p;
    const int left = (c.rank() + p - 1) % p;
    c.sendValue(100 + c.rank(), right, 42);
    (void)h.test();
    EXPECT_EQ(c.recvValue<int>(left, 42), 100 + left);
    h.wait();
    EXPECT_EQ(sum, p * (p - 1) / 2);
  });
}

TEST_P(NonblockingP, AbandonedHandleDoesNotPoisonLaterCollectives) {
  // Dropping a handle before completion leaves its messages queued under a
  // tag nobody will match again; later collectives draw fresh tags and must
  // be unaffected.  Every rank abandons symmetrically.
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    {
      double out = 0.0;
      const double mine = 1.0;
      CollHandle h = c.iallreduce(std::span<const double>(&mine, 1),
                                  std::span<double>(&out, 1), ReduceOp::kSum);
      // h destroyed here, possibly incomplete.
    }
    EXPECT_EQ(c.allreduceValue(1, ReduceOp::kSum), p);
    c.barrier();
  });
}

TEST_P(NonblockingP, BlockingCollectiveWhileHandleOutstanding) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    long out = 0;
    const long mine = 10 * c.rank();
    CollHandle h = c.iallreduce(std::span<const long>(&mine, 1),
                                std::span<long>(&out, 1), ReduceOp::kSum);
    EXPECT_EQ(c.allreduceValue(1, ReduceOp::kSum), p);
    c.barrier();
    h.wait();
    EXPECT_EQ(out, 10L * p * (p - 1) / 2);
  });
}

TEST_P(NonblockingP, EmptyIallreduceCompletesImmediately) {
  const int p = GetParam();
  World::run(p, [&](Comm& c) {
    std::vector<double> nothing;
    CollHandle h = c.iallreduce(std::span<const double>(nothing),
                                std::span<double>(nothing), ReduceOp::kSum);
    EXPECT_TRUE(h.test());
    h.wait();
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, NonblockingP,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Split, EvenOddGroups) {
  World::run(4, [](Comm& c) {
    Comm sub = c.split(c.rank() % 2, c.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 2);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // Communication inside the sub-communicator is isolated.
    const int sum = sub.allreduceValue(c.rank(), ReduceOp::kSum);
    EXPECT_EQ(sum, c.rank() % 2 == 0 ? 0 + 2 : 1 + 3);
  });
}

TEST(Split, KeyControlsOrdering) {
  World::run(3, [](Comm& c) {
    // Reverse the ranks via the key.
    Comm sub = c.split(0, -c.rank());
    EXPECT_EQ(sub.rank(), c.size() - 1 - c.rank());
  });
}

TEST(Split, NegativeColorOptsOut) {
  World::run(3, [](Comm& c) {
    Comm sub = c.split(c.rank() == 0 ? -1 : 5, c.rank());
    if (c.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 2);
    }
  });
}

TEST(Split, DupIsolatesTraffic) {
  World::run(2, [](Comm& c) {
    Comm d = c.dup();
    if (c.rank() == 0) {
      c.sendValue(1, 1, 5);
      d.sendValue(2, 1, 5);
    } else {
      // Same tag, same peer — the dup'd context must keep them apart.
      EXPECT_EQ(d.recvValue<int>(0, 5), 2);
      EXPECT_EQ(c.recvValue<int>(0, 5), 1);
    }
  });
}

TEST(Split, NestedSplitOfSplit) {
  World::run(8, [](Comm& c) {
    Comm half = c.split(c.rank() / 4, c.rank());  // two groups of 4
    ASSERT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() / 2, half.rank());  // groups of 2
    ASSERT_EQ(quarter.size(), 2);
    const int sum = quarter.allreduceValue(1, ReduceOp::kSum);
    EXPECT_EQ(sum, 2);
  });
}

TEST(Split, TagWindowsAndPinsArePerSession) {
  World::run(4, [](Comm& c) {
    const int session = c.rank() / 2;
    Comm sub = c.split(session, c.rank() % 2);
    sub.setLabel("session" + std::to_string(session));
    // Children inherit the parent window at creation...
    const int parentWindow = c.collectiveTagWindow();
    EXPECT_EQ(sub.collectiveTagWindow(), parentWindow);
    // ...then tune independently: each session picks its own window and
    // schedule pin; the parent and the sibling session stay untouched.
    sub.setCollectiveTagWindow(session == 0 ? 64 : 128);
    sub.pinCollectiveSchedule(session == 0 ? CollectiveSchedule::kTree
                                           : CollectiveSchedule::kStar);
    EXPECT_EQ(sub.collectiveTagWindow(), session == 0 ? 64 : 128);
    EXPECT_EQ(c.collectiveTagWindow(), parentWindow);
    EXPECT_EQ(sub.label(), "session" + std::to_string(session));
    EXPECT_EQ(sub.pinnedCollectiveSchedule(),
              session == 0 ? CollectiveSchedule::kTree
                           : CollectiveSchedule::kStar);
    // Both sessions run collectives concurrently, wrapping the smaller
    // window several times — isolation means no cross-session tag clash.
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(sub.allreduceValue(1, ReduceOp::kSum), 2);
    }
    // The parent still works afterwards under its own window.
    EXPECT_EQ(c.allreduceValue(1, ReduceOp::kSum), 4);
  });
}

TEST(Split, UnevenGroupsRunFullCollectives) {
  World::run(7, [](Comm& c) {
    // Groups of 3 and 4 — both non-power-of-two relative to the parent.
    const int color = c.rank() < 3 ? 0 : 1;
    Comm sub = c.split(color, c.rank());
    ASSERT_TRUE(sub.valid());
    const int q = sub.size();
    ASSERT_EQ(q, color == 0 ? 3 : 4);
    // Logarithmic schedules must work on the sub-communicator.
    const int sum = sub.allreduceValue(sub.rank() + 1, ReduceOp::kSum);
    EXPECT_EQ(sum, q * (q + 1) / 2);
    const int fromLast = sub.bcastValue(sub.rank() * 11, q - 1);
    EXPECT_EQ(fromLast, (q - 1) * 11);
    const auto all =
        sub.allgatherv(std::span<const int>(&sum, 1), nullptr);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(q));
    for (int v : all) EXPECT_EQ(v, sum);
    sub.barrier();
  });
}

TEST(Handles, RegistryRoundTrip) {
  World::run(2, [](Comm& c) {
    const long h = registerHandle(c);
    Comm back = commFromHandle(h);
    EXPECT_EQ(back.rank(), c.rank());
    EXPECT_EQ(back.size(), 2);
    // The returned handle still names the same communicator: message test.
    if (c.rank() == 0) {
      back.sendValue(99, 1, 8);
    } else {
      EXPECT_EQ(c.recvValue<int>(0, 8), 99);
    }
    releaseHandle(h);
  });
}

TEST(Handles, UnknownHandleThrows) {
  EXPECT_THROW((void)commFromHandle(987654321L), Error);
}

TEST(Handles, ReleaseRemoves) {
  World::run(1, [](Comm& c) {
    const std::size_t before = liveHandleCount();
    const long h = registerHandle(c);
    EXPECT_EQ(liveHandleCount(), before + 1);
    releaseHandle(h);
    EXPECT_EQ(liveHandleCount(), before);
    EXPECT_THROW((void)commFromHandle(h), Error);
  });
}

TEST(Stress, ManyConcurrentPairsExchange) {
  World::run(8, [](Comm& c) {
    // Every rank sends to every other rank and receives from everyone.
    for (int dst = 0; dst < c.size(); ++dst) {
      if (dst == c.rank()) continue;
      c.sendValue(c.rank() * 100 + dst, dst, 12);
    }
    int total = 0;
    for (int src = 0; src < c.size(); ++src) {
      if (src == c.rank()) continue;
      const int v = c.recvValue<int>(src, 12);
      EXPECT_EQ(v, src * 100 + c.rank());
      ++total;
    }
    EXPECT_EQ(total, c.size() - 1);
  });
}

}  // namespace
}  // namespace lisi::comm
