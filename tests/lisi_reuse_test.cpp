// Operator-change contract tests: a same-pattern setupMatrix must flow as a
// value-only update through every layer — no halo-plan rebuild in the
// distributed matrix, no symbolic refactorization in the direct solver, a
// preconditioner refresh (not rebuild) in the Krylov packages — while the
// computed solutions stay identical to a from-scratch rebuild.
//
// The reuse observability counters (sparse::haloPlanBuilds,
// slu::symbolicFactorizations, ...) are process-wide, and MiniMPI ranks are
// threads, so every sample is taken inside a barrier sandwich: between two
// barriers the only activity on any rank is reading the counter.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/pde_driver.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/pde5pt.hpp"
#include "pksp/pksp.hpp"
#include "slu/slu.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/ops.hpp"

namespace lisi {
namespace {

using comm::Comm;
using comm::World;

const char* backendClass(int index) {
  switch (index) {
    case 0: return kPkspComponentClass;
    case 1: return kAztecComponentClass;
    case 2: return kSluComponentClass;
    default: return kHymgComponentClass;
  }
}

const char* backendLabel(int index) {
  switch (index) {
    case 0: return "pksp";
    case 1: return "aztec";
    case 2: return "slu";
    default: return "hymg";
  }
}

std::map<std::string, std::string> backendParams(int index, int gridN) {
  switch (index) {
    case 0:
      return {{"solver", "gmres"}, {"preconditioner", "ilu"}, {"tol", "1e-10"},
              {"maxits", "5000"}};
    case 1:
      return {{"solver", "gmres"}, {"preconditioner", "ilu"}, {"tol", "1e-10"},
              {"maxits", "5000"}};
    case 2:
      return {{"ordering", "rcm"}};
    default:
      return {{"mg_grid_n", std::to_string(gridN)}, {"mg_bx", "3"},
              {"tol", "1e-10"}, {"maxits", "100"}};
  }
}

/// Wire a fresh solver port and declare the block-row distribution of `sys`.
std::shared_ptr<SparseSolver> wireSolver(
    cca::Framework& fw, long handle, int backendIndex,
    const mesh::Pde5ptLocalSystem& sys, int gridN) {
  registerSolverComponents();
  static int counter = 0;
  const std::string name = "reuse" + std::to_string(counter++);
  fw.instantiate(name, backendClass(backendIndex));
  auto s = fw.getProvidesPortAs<SparseSolver>(name, kSparseSolverPortName);
  EXPECT_EQ(s->initialize(handle), 0);
  EXPECT_EQ(s->setStartRow(sys.startRow), 0);
  EXPECT_EQ(s->setLocalRows(sys.localA.rows), 0);
  EXPECT_EQ(s->setGlobalCols(sys.globalN), 0);
  for (const auto& [k, v] : backendParams(backendIndex, gridN)) {
    EXPECT_EQ(s->set(k, v), 0) << k;
  }
  return s;
}

/// setupMatrix(scale * A) + setupRHS + solve; returns the local solution.
std::vector<double> feedAndSolve(SparseSolver& s,
                                 const mesh::Pde5ptLocalSystem& sys,
                                 double scale) {
  sparse::CsrMatrix a = sys.localA;
  for (double& v : a.values) v *= scale;
  const int m = a.rows;
  EXPECT_EQ(s.setupMatrix(RArray<const double>(a.values.data(), a.nnz()),
                          RArray<const int>(a.rowPtr.data(), m + 1),
                          RArray<const int>(a.colIdx.data(), a.nnz()),
                          SparseStruct::kCsr, m + 1, a.nnz()),
            0);
  EXPECT_EQ(s.setupRHS(RArray<const double>(sys.localB.data(), m), m, 1), 0);
  std::vector<double> x(static_cast<std::size_t>(m));
  std::vector<double> st(kStatusLength);
  EXPECT_EQ(s.solve(RArray<double>(x.data(), m),
                    RArray<double>(st.data(), kStatusLength), m,
                    kStatusLength),
            0);
  EXPECT_DOUBLE_EQ(st[kStatusConverged], 1.0);
  return x;
}

// ---- no plan rebuild, no symbolic refactorization on same pattern --------

class LisiReuseCounters
    : public ::testing::TestWithParam<std::tuple<int, int>> {};
// param: (backendIndex, ranks)

TEST_P(LisiReuseCounters, SamePatternResetupIsValueOnly) {
  const auto [backendIndex, ranks] = GetParam();
  const int gridN = 15;  // odd so hymg can coarsen
  // HyMG validates the supplied matrix against its rediscretized fine level,
  // so its "new values" are the same values; the other backends get a
  // genuinely scaled operator.
  const double rescale = backendIndex == 3 ? 1.0 : 1.25;
  World::run(ranks, [&, backendIndex](Comm& c) {
    mesh::Pde5ptSpec spec;
    spec.gridN = gridN;
    const auto sys = mesh::assembleLocal(spec, c.rank(), c.size());
    cca::Framework fw;
    const long h = comm::registerHandle(c);
    auto s = wireSolver(fw, h, backendIndex, sys, gridN);
    const std::vector<double> x0 = feedAndSolve(*s, sys, 1.0);

    c.barrier();
    const long long plans0 = sparse::haloPlanBuilds();
    const long long updates0 = sparse::valueUpdates();
    const long long sym0 = slu::symbolicFactorizations();
    const long long refac0 = slu::numericRefactorizations();
    c.barrier();

    const std::vector<double> x1 = feedAndSolve(*s, sys, rescale);

    c.barrier();
    const long long planDelta = sparse::haloPlanBuilds() - plans0;
    const long long updateDelta = sparse::valueUpdates() - updates0;
    const long long symDelta = slu::symbolicFactorizations() - sym0;
    const long long refacDelta = slu::numericRefactorizations() - refac0;
    c.barrier();

    EXPECT_EQ(planDelta, 0) << backendLabel(backendIndex)
                            << ": same-pattern re-setup rebuilt a halo plan";
    EXPECT_GE(updateDelta, 1) << backendLabel(backendIndex);
    if (backendIndex == 2) {
      EXPECT_EQ(symDelta, 0) << "slu re-ran the symbolic analysis";
      EXPECT_GE(refacDelta, 1) << "slu did not take the refactorize path";
    }

    // The reused solve must match a from-scratch rebuild on the same data.
    auto fresh = wireSolver(fw, h, backendIndex, sys, gridN);
    const std::vector<double> xf = feedAndSolve(*fresh, sys, rescale);
    ASSERT_EQ(x1.size(), xf.size());
    for (std::size_t i = 0; i < xf.size(); ++i) {
      EXPECT_NEAR(x1[i], xf[i], 1e-12)
          << backendLabel(backendIndex) << " entry " << i;
    }
    comm::releaseHandle(h);
  });
}

INSTANTIATE_TEST_SUITE_P(
    BackendsByRanks, LisiReuseCounters,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(backendLabel(std::get<0>(info.param))) + "_ranks" +
             std::to_string(std::get<1>(info.param));
    });

// ---- FEM duplicate triplets: assembly order must not change the pattern --

TEST(LisiReusePattern, PermutedFemDuplicatesKeepTheFingerprint) {
  // The same operator contributed as FEM duplicates in two different triplet
  // orders must canonicalize to the same structure, so the second setupMatrix
  // is a value-only update (no halo-plan rebuild) and the solutions are
  // bit-identical.  Values are halves so duplicate summation is exact.
  World::run(1, [](Comm& c) {
    registerSolverComponents();
    cca::Framework fw;
    fw.instantiate("fem", kPkspComponentClass);
    auto s = fw.getProvidesPortAs<SparseSolver>("fem", kSparseSolverPortName);
    const long h = comm::registerHandle(c);
    ASSERT_EQ(s->initialize(h), 0);
    ASSERT_EQ(s->setStartRow(0), 0);
    ASSERT_EQ(s->setLocalRows(3), 0);
    ASSERT_EQ(s->setGlobalCols(3), 0);
    ASSERT_EQ(s->set("solver", "gmres"), 0);
    ASSERT_EQ(s->setDouble("tol", 1e-12), 0);

    // Tridiagonal 3x3: diag 4 (as 2+2), off-diagonals -1 (as -0.5-0.5).
    struct Trip { int r, cIdx; double v; };
    const std::vector<Trip> base = {
        {0, 0, 2.0}, {0, 0, 2.0}, {0, 1, -0.5}, {0, 1, -0.5},
        {1, 0, -0.5}, {1, 0, -0.5}, {1, 1, 2.0}, {1, 1, 2.0},
        {1, 2, -0.5}, {1, 2, -0.5}, {2, 1, -0.5}, {2, 1, -0.5},
        {2, 2, 2.0}, {2, 2, 2.0}};
    // Second feed: same triplets, duplicates interleaved differently.
    const std::vector<std::size_t> perm = {13, 2, 7, 0, 10, 5, 12, 4,
                                           9, 1, 6, 11, 3, 8};

    auto solveWith = [&](const std::vector<Trip>& t) {
      std::vector<double> v;
      std::vector<int> rows, cols;
      for (const Trip& e : t) {
        v.push_back(e.v);
        rows.push_back(e.r);
        cols.push_back(e.cIdx);
      }
      const int nnz = static_cast<int>(t.size());
      EXPECT_EQ(s->setupMatrix(RArray<const double>(v.data(), nnz),
                               RArray<const int>(rows.data(), nnz),
                               RArray<const int>(cols.data(), nnz),
                               SparseStruct::kFem, nnz, nnz),
                0);
      const double b[3] = {1, 2, 3};
      EXPECT_EQ(s->setupRHS(RArray<const double>(b, 3), 3, 1), 0);
      std::vector<double> x(3);
      std::vector<double> st(kStatusLength);
      EXPECT_EQ(s->solve(RArray<double>(x.data(), 3),
                         RArray<double>(st.data(), kStatusLength), 3,
                         kStatusLength),
                0);
      return x;
    };

    const std::vector<double> x0 = solveWith(base);
    const long long plans0 = sparse::haloPlanBuilds();
    std::vector<Trip> shuffled;
    for (const std::size_t i : perm) shuffled.push_back(base[i]);
    const std::vector<double> x1 = solveWith(shuffled);
    EXPECT_EQ(sparse::haloPlanBuilds() - plans0, 0)
        << "permuted duplicate order changed the structural fingerprint";
    for (int i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(x1[static_cast<std::size_t>(i)],
                       x0[static_cast<std::size_t>(i)]);
    }
    comm::releaseHandle(h);
  });
}

// ---- status contract: exactly min(statusLength, kStatusLength) entries ---

TEST(LisiStatusFill, ExactlyMinStatusLengthEntriesWritten) {
  const double kSentinel = -7.25;
  for (int backendIndex = 0; backendIndex < 4; ++backendIndex) {
    World::run(1, [&, backendIndex](Comm& c) {
      const int gridN = 7;  // odd so hymg can coarsen
      mesh::Pde5ptSpec spec;
      spec.gridN = gridN;
      const auto sys = mesh::assembleLocal(spec, c.rank(), c.size());
      const int m = sys.localA.rows;
      cca::Framework fw;
      const long h = comm::registerHandle(c);
      auto s = wireSolver(fw, h, backendIndex, sys, gridN);
      ASSERT_EQ(
          s->setupMatrix(
              RArray<const double>(sys.localA.values.data(), sys.localA.nnz()),
              RArray<const int>(sys.localA.rowPtr.data(), m + 1),
              RArray<const int>(sys.localA.colIdx.data(), sys.localA.nnz()),
              SparseStruct::kCsr, m + 1, sys.localA.nnz()),
          0);
      ASSERT_EQ(s->setupRHS(RArray<const double>(sys.localB.data(), m), m, 1),
                0);
      for (const int len : {0, 3, 8}) {
        double st[8];
        for (double& e : st) e = kSentinel;
        std::vector<double> x(static_cast<std::size_t>(m));
        ASSERT_EQ(s->solve(RArray<double>(x.data(), m), RArray<double>(st, len),
                           m, len),
                  0)
            << backendLabel(backendIndex) << " statusLength=" << len;
        const int filled = len < kStatusLength ? len : kStatusLength;
        for (int i = 0; i < filled; ++i) {
          EXPECT_NE(st[i], kSentinel)
              << backendLabel(backendIndex) << " statusLength=" << len
              << " entry " << i << " left unwritten";
        }
        for (int i = filled; i < 8; ++i) {
          EXPECT_EQ(st[i], kSentinel)
              << backendLabel(backendIndex) << " statusLength=" << len
              << " entry " << i << " overwritten";
        }
      }
      comm::releaseHandle(h);
    });
  }
}

// ---- matrix-free <-> assembled switching is a structural change ----------

TEST(LisiKindSwitch, AssembledMatrixFreeAssembledRoundTrip) {
  // Flipping the operator kind must report kNewStructure even though the
  // assembled fingerprint still matches: the backend has to rebuild its
  // wrapped operator, not value-update a stale one.
  for (const char* cls : {kPkspComponentClass, kAztecComponentClass}) {
    World::run(2, [&](Comm& c) {
      registerSolverComponents();
      registerDriverComponent();
      cca::Framework fw;
      fw.instantiate("driver", kDriverComponentClass);
      fw.instantiate("solver", cls);
      fw.connect("driver", kSparseSolverPortName, "solver",
                 kSparseSolverPortName);
      fw.connect("solver", kMatrixFreePortName, "driver", kMatrixFreePortName);
      auto go = fw.getProvidesPortAs<GoPort>("driver", kGoPortName);
      PdeDriverConfig config;
      config.gridN = 12;
      config.solverParams = {{"solver", "gmres"}, {"preconditioner", "none"},
                             {"tol", "1e-10"}, {"maxits", "20000"}};
      std::vector<double> first;
      int round = 0;
      for (const bool mf : {false, true, false}) {
        config.matrixFree = mf;
        const PdeDriverResult res = go->go(c, config);
        ASSERT_TRUE(res.solved)
            << cls << " round " << round << " matrixFree=" << mf;
        if (first.empty()) {
          first = res.localSolution;
        } else {
          for (std::size_t i = 0; i < first.size(); ++i) {
            EXPECT_NEAR(res.localSolution[i], first[i], 1e-6)
                << cls << " round " << round << " (iterations="
                << res.iterations << ", residualNorm=" << res.residualNorm
                << ")";
          }
        }
        ++round;
      }
    });
  }
}

// ---- PKSP structure flags drive the PC state machine ---------------------

TEST(PkspPcReuse, SameNonzeroPatternRefreshesInsteadOfRebuilding) {
  World::run(2, [](Comm& c) {
    mesh::Pde5ptSpec spec;
    spec.gridN = 12;
    const auto sys = mesh::assembleLocal(spec, c.rank(), c.size());
    const sparse::DistCsrMatrix a(c, sys.globalN, sys.globalN, sys.startRow,
                                  sys.localA);
    sparse::CsrMatrix scaledLocal = sys.localA;
    for (double& v : scaledLocal.values) v *= 2.0;
    const sparse::DistCsrMatrix a2(c, sys.globalN, sys.globalN, sys.startRow,
                                   scaledLocal);

    pksp::KSP ksp = nullptr;
    ASSERT_EQ(pksp::KSPCreate(c, &ksp), pksp::PKSP_SUCCESS);
    pksp::KSPSetType(ksp, pksp::PKSP_GMRES);
    pksp::KSPSetPCType(ksp, pksp::PKSP_PC_ILU0);
    pksp::KSPSetTolerances(ksp, 1e-10, 1e-50, 5000);
    std::vector<double> x(sys.localB.size(), 0.0);

    ASSERT_EQ(pksp::KSPSetOperator(ksp, &a, pksp::PKSP_DIFFERENT_NONZERO_PATTERN),
              pksp::PKSP_SUCCESS);
    ASSERT_EQ(pksp::KSPSolve(ksp, sys.localB, x), pksp::PKSP_SUCCESS);
    int builds = 0, refreshes = 0;
    ASSERT_EQ(pksp::KSPGetPCSetupCounts(ksp, &builds, &refreshes),
              pksp::PKSP_SUCCESS);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(refreshes, 0);

    // Same pattern, new values: the ILU(0) storage is refreshed in place.
    std::fill(x.begin(), x.end(), 0.0);
    ASSERT_EQ(pksp::KSPSetOperator(ksp, &a2, pksp::PKSP_SAME_NONZERO_PATTERN),
              pksp::PKSP_SUCCESS);
    ASSERT_EQ(pksp::KSPSolve(ksp, sys.localB, x), pksp::PKSP_SUCCESS);
    ASSERT_EQ(pksp::KSPGetPCSetupCounts(ksp, &builds, &refreshes),
              pksp::PKSP_SUCCESS);
    EXPECT_EQ(builds, 1) << "same-pattern update rebuilt the preconditioner";
    EXPECT_EQ(refreshes, 1);

    // Same preconditioner: the solve reuses the PC untouched.
    std::fill(x.begin(), x.end(), 0.0);
    ASSERT_EQ(pksp::KSPSetOperator(ksp, &a2, pksp::PKSP_SAME_PRECONDITIONER),
              pksp::PKSP_SUCCESS);
    ASSERT_EQ(pksp::KSPSolve(ksp, sys.localB, x), pksp::PKSP_SUCCESS);
    ASSERT_EQ(pksp::KSPGetPCSetupCounts(ksp, &builds, &refreshes),
              pksp::PKSP_SUCCESS);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(refreshes, 1);
    pksp::KSPDestroy(&ksp);
  });
}

}  // namespace
}  // namespace lisi
