// Seeded-violation tests for the LISI_COMM_CHECK verifier: each test commits
// one deliberate crime against the MiniMPI contract and asserts that the
// checker aborts the world with a diagnostic naming the offense.  On a build
// configured without -DLISI_COMM_CHECK=ON every test skips (the hooks do not
// exist, and several of the seeded programs would otherwise only die by recv
// timeout).
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "support/error.hpp"

namespace lisi {
namespace {

using comm::CollHandle;
using comm::Comm;
using comm::World;

// Every seeded program here is expected to die by checker diagnosis, not by
// waiting out the recv timeout — shrink it so a missed detection fails the
// test in seconds.  Set before main() so the first World::run already sees it.
const bool kShortTimeout = [] {
  setenv("LISI_COMM_TIMEOUT_SEC", "5", 1);
  return true;
}();

#define SKIP_IF_UNCHECKED()                                           \
  if (!comm::check::enabled()) {                                      \
    GTEST_SKIP() << "lisi_comm built without LISI_COMM_CHECK";        \
  }                                                                   \
  static_assert(true, "")

/// Run `body` on `nranks` ranks and return the diagnostic of the Error that
/// World::run surfaces.  Fails the test if the world finishes cleanly.
std::string runExpectViolation(int nranks,
                               const std::function<void(Comm&)>& body) {
  try {
    World::run(nranks, body);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a checker violation at " << nranks
                << " ranks, but World::run returned cleanly";
  return {};
}

void expectContains(const std::string& msg, const std::string& needle) {
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "diagnostic missing \"" << needle << "\": " << msg;
}

// ---- 1. lockstep collective verification -------------------------------

TEST(CommCheck, LockstepMismatchDiagnosed) {
  SKIP_IF_UNCHECKED();
  for (const int nranks : {2, 4}) {
    const std::string msg = runExpectViolation(nranks, [](Comm& c) {
      if (c.rank() == 0) {
        // lisi-lint: allow(rank-branch) seeded violation: this test exists to provoke the runtime lockstep diagnostic
        (void)c.bcastValue(1, 0);  // everyone else reduces: divergent stream
      } else {
        // lisi-lint: allow(rank-branch) seeded violation (divergent arm of the same seeded mismatch)
        (void)c.allreduceValue(1.0, comm::ReduceOp::kSum);
      }
    });
    expectContains(msg, "lockstep collective mismatch");
    expectContains(msg, "history");  // both call sites' recent streams shown
  }
}

TEST(CommCheck, LockstepPayloadSizeMismatchDiagnosed) {
  SKIP_IF_UNCHECKED();
  for (const int nranks : {2, 4}) {
    const std::string msg = runExpectViolation(nranks, [](Comm& c) {
      // Same collective, same op — but rank 0 contributes a different
      // payload size, which would cross-match buffers mid-schedule.
      std::vector<double> in(c.rank() == 0 ? 3 : 2, 1.0);
      std::vector<double> out(in.size());
      c.allreduce(std::span<const double>(in), std::span<double>(out),
                  comm::ReduceOp::kSum);
    });
    expectContains(msg, "lockstep collective mismatch");
  }
}

// ---- 2. wait-for-graph deadlock detection -------------------------------

TEST(CommCheck, RecvRecvCycleDiagnosed) {
  SKIP_IF_UNCHECKED();
  for (const int nranks : {2, 4}) {
    const std::string msg = runExpectViolation(nranks, [](Comm& c) {
      // Partner pairs (0<->1, 2<->3) each recv from the other first: the
      // smallest closed wait set, diagnosed at the second rank's beginWait
      // instead of hanging until the recv timeout.
      (void)c.recvBytes(c.rank() ^ 1, 5);
    });
    expectContains(msg, "deadlock detected");
    expectContains(msg, "blocked in recv");
  }
}

// ---- 3. tag-space and handle lint ---------------------------------------

TEST(CommCheck, TagBeyondTagSpaceDiagnosed) {
  SKIP_IF_UNCHECKED();
  // Beyond even the collective tag window: not a tag any schedule can issue.
  const int wildTag = comm::kMaxUserTag + (1 << 20) + 1;
  for (const int nranks : {2, 4}) {
    const std::string msg = runExpectViolation(nranks, [&](Comm& c) {
      if (c.rank() == 0) {
        c.sendValue(1, 1, wildTag);
      } else {
        (void)c.recvBytes(0, 7);  // woken by the abort
      }
    });
    expectContains(msg, "outside the tag space");
  }
}

TEST(CommCheck, SendIntoCollectiveTagSpaceDiagnosed) {
  SKIP_IF_UNCHECKED();
  // Inside the collective window but never issued to a schedule and never
  // reserved: a stray send that could corrupt a collective in flight.
  const int strayTag = comm::kMaxUserTag + 10;
  for (const int nranks : {2, 4}) {
    const std::string msg = runExpectViolation(nranks, [&](Comm& c) {
      if (c.rank() == 0) {
        c.sendValue(1, 1, strayTag);
      } else {
        (void)c.recvBytes(0, 7);  // woken by the abort
      }
    });
    expectContains(msg, "reserved collective tag space");
    expectContains(msg, "reserveCollectiveTags()");
  }
}

TEST(CommCheck, ReservedBlockSendIsLegal) {
  SKIP_IF_UNCHECKED();
  // Control for the stray-send lint: the identical send is legal once the
  // tag comes from a reserveCollectiveTags() block.
  for (const int nranks : {2, 4}) {
    World::run(nranks, [](Comm& c) {
      const std::vector<int> block = c.reserveCollectiveTags(4);
      if (c.rank() == 0) {
        c.sendValue(42, 1, block[2]);
      } else if (c.rank() == 1) {
        EXPECT_EQ(c.recvValue<int>(0, block[2]), 42);
      }
      c.barrier();
    });
  }
}

/// RAII guard: shrink the collective tag window for the enclosed worlds so
/// the seq->tag wrap happens after a handful of collectives instead of 2^20.
/// The window is read per WorldContext construction, so setting the env var
/// here affects exactly the worlds started inside the test body.
class TagWindowGuard {
 public:
  explicit TagWindowGuard(int window) {
    setenv("LISI_COMM_TAG_WINDOW", std::to_string(window).c_str(), 1);
  }
  ~TagWindowGuard() { unsetenv("LISI_COMM_TAG_WINDOW"); }
  TagWindowGuard(const TagWindowGuard&) = delete;
  TagWindowGuard& operator=(const TagWindowGuard&) = delete;
};

TEST(CommCheck, WrapIntoReservedBlockDiagnosed) {
  SKIP_IF_UNCHECKED();
  // Reserve a block right at the start of the window, then run enough
  // collectives that the rotating sequence wraps around and would hand a
  // schedule a tag inside the still-reserved block.
  const TagWindowGuard guard(64);
  for (const int nranks : {2, 4}) {
    const std::string msg = runExpectViolation(nranks, [](Comm& c) {
      (void)c.reserveCollectiveTags(8);  // seq 0..7: block at window start
      for (int i = 8; i < 64; ++i) c.barrier();  // seq 8..63
      c.barrier();  // seq 64 wraps to the reserved first slot
    });
    expectContains(msg, "wrapped into a reserved block");
    expectContains(msg, "reserveCollectiveTags");
  }
}

TEST(CommCheck, ReservationWrapOverlapDiagnosed) {
  SKIP_IF_UNCHECKED();
  // Two reservations whose tag ranges collide after the window wraps: the
  // second starts at a different first tag but covers part of the first
  // block, which the checker must reject (an identical re-reservation of
  // the same block is the one legal case, so the blocks are offset here).
  const TagWindowGuard guard(64);
  for (const int nranks : {2, 4}) {
    const std::string msg = runExpectViolation(nranks, [](Comm& c) {
      for (int i = 0; i < 4; ++i) c.barrier();  // seq 0..3
      (void)c.reserveCollectiveTags(8);         // seq 4..11: block [W+4, W+12)
      for (int i = 12; i < 64; ++i) c.barrier();  // seq 12..63
      // seq 64..71 wraps to [W+0, W+8): overlaps the live block above.
      (void)c.reserveCollectiveTags(8);
    });
    expectContains(msg, "reserveCollectiveTags overlap");
  }
}

TEST(CommCheck, CollHandleLeakDiagnosed) {
  SKIP_IF_UNCHECKED();
  for (const int nranks : {2, 4}) {
    // Parked outside the world so the handles are still live (started,
    // never completed, never destroyed) when each rank's body returns.
    std::vector<CollHandle> parked(static_cast<std::size_t>(nranks));
    const std::string msg = runExpectViolation(nranks, [&](Comm& c) {
      parked[static_cast<std::size_t>(c.rank())] = c.ibarrier();
    });
    expectContains(msg, "CollHandle leak at world teardown");
  }
}

TEST(CommCheck, InFlightBufferAliasingDiagnosed) {
  SKIP_IF_UNCHECKED();
  for (const int nranks : {2, 4}) {
    const std::string msg = runExpectViolation(nranks, [](Comm& c) {
      const double in1 = 1.0;
      const double in2 = 2.0;
      std::array<double, 2> out{};
      // Rank 0 hands both operations the same output word; the others keep
      // the streams lockstep with disjoint buffers and wait out the abort.
      const std::size_t second = c.rank() == 0 ? 0 : 1;
      CollHandle h1 = c.iallreduce(std::span<const double>(&in1, 1),
                                   std::span<double>(&out[0], 1),
                                   comm::ReduceOp::kSum);
      CollHandle h2 = c.iallreduce(std::span<const double>(&in2, 1),
                                   std::span<double>(&out[second], 1),
                                   comm::ReduceOp::kSum);
      h1.wait();
      h2.wait();
    });
    expectContains(msg, "in-flight buffer aliasing");
  }
}

// ---- enabled() reporting -------------------------------------------------

TEST(CommCheck, CheckedBuildReportsEnabled) {
  // Not skipped: on either configuration this documents which library the
  // test binary linked, and the seeded tests above key off the same value.
  EXPECT_EQ(comm::check::enabled(), comm::check::enabled());
}

}  // namespace
}  // namespace lisi
