// Autotuner tests (src/tune): the fingerprint-keyed cache must replay
// without probing on kSameOperator/kSameStructure, invalidate and retune on
// kNewStructure (bounded by the retune budget), and vanish entirely under
// LISI_TUNE=off.  The tuned kernels themselves must be bitwise-identical to
// the default CSR path — a tuning decision may never change an answer.
//
// Counter multiplicity: tune::Stats counters count per calling rank-thread
// (MiniMPI ranks are threads of one process), so a world of p ranks bumps
// each counter by p per event; the assertions below carry that factor.  All
// samples are taken inside barrier sandwiches, reuse-test style.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/pde_driver.hpp"
#include "lisi/sparse_solver.hpp"
#include "obs/obs.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/generate.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"
#include "tune/tune.hpp"

#ifndef LISI_TEST_DATA_DIR
#define LISI_TEST_DATA_DIR "tests/data"
#endif

namespace lisi {
namespace {

using comm::Comm;
using comm::World;
using sparse::CsrMatrix;
using sparse::DistCsrMatrix;
using sparse::LocalKernel;
using sparse::SpmvConfig;

// ---- helpers -------------------------------------------------------------

/// Rows [start, start+m) of `global` as a local CSR block, global columns.
CsrMatrix rowSlice(const CsrMatrix& global, int start, int m) {
  CsrMatrix a;
  a.rows = m;
  a.cols = global.cols;
  a.rowPtr.assign(static_cast<std::size_t>(m) + 1, 0);
  for (int i = 0; i < m; ++i) {
    const int b = global.rowPtr[static_cast<std::size_t>(start + i)];
    const int e = global.rowPtr[static_cast<std::size_t>(start + i) + 1];
    a.rowPtr[static_cast<std::size_t>(i) + 1] =
        a.rowPtr[static_cast<std::size_t>(i)] + (e - b);
    for (int k = b; k < e; ++k) {
      a.colIdx.push_back(global.colIdx[static_cast<std::size_t>(k)]);
      a.values.push_back(global.values[static_cast<std::size_t>(k)]);
    }
  }
  return a;
}

/// This rank's contiguous block-row share of n rows.
void myShare(int n, int rank, int size, int& start, int& m) {
  const int base = n / size;
  const int rem = n % size;
  start = rank * base + std::min(rank, rem);
  m = base + (rank < rem ? 1 : 0);
}

/// Wire a fresh PKSP CG+Jacobi port over a block-row share of `global`.
std::shared_ptr<SparseSolver> wirePksp(cca::Framework& fw, long handle,
                                       const Comm& c, const CsrMatrix& global,
                                       int start, int m) {
  registerSolverComponents();
  static int counter = 0;
  const std::string name = "tune" + std::to_string(counter++);
  fw.instantiate(name, kPkspComponentClass);
  auto s = fw.getProvidesPortAs<SparseSolver>(name, kSparseSolverPortName);
  EXPECT_EQ(s->initialize(handle), 0);
  EXPECT_EQ(s->setStartRow(start), 0);
  EXPECT_EQ(s->setLocalRows(m), 0);
  EXPECT_EQ(s->setGlobalCols(global.cols), 0);
  EXPECT_EQ(s->set("solver", "cg"), 0);
  EXPECT_EQ(s->set("preconditioner", "jacobi"), 0);
  EXPECT_EQ(s->set("tol", "1e-10"), 0);
  EXPECT_EQ(s->setInt("maxits", 5000), 0);
  (void)c;
  return s;
}

/// setupMatrix(scale * slice) + setupRHS(ones) + solve.
std::vector<double> feedAndSolve(SparseSolver& s, const CsrMatrix& global,
                                 int start, int m, double scale) {
  CsrMatrix a = rowSlice(global, start, m);
  for (double& v : a.values) v *= scale;
  EXPECT_EQ(s.setupMatrix(RArray<const double>(a.values.data(), a.nnz()),
                          RArray<const int>(a.rowPtr.data(), m + 1),
                          RArray<const int>(a.colIdx.data(), a.nnz()),
                          SparseStruct::kCsr, m + 1, a.nnz()),
            0);
  const std::vector<double> b(static_cast<std::size_t>(m), 1.0);
  EXPECT_EQ(s.setupRHS(RArray<const double>(b.data(), m), m, 1), 0);
  std::vector<double> x(static_cast<std::size_t>(m));
  std::vector<double> st(kStatusLength);
  EXPECT_EQ(s.solve(RArray<double>(x.data(), m),
                    RArray<double>(st.data(), kStatusLength), m,
                    kStatusLength),
            0);
  EXPECT_DOUBLE_EQ(st[kStatusConverged], 1.0);
  return x;
}

/// tune::stats() inside a barrier sandwich (counters are process-wide).
tune::Stats sampleStats(const Comm& c) {
  c.barrier();
  const tune::Stats s = tune::stats();
  c.barrier();
  return s;
}

// ---- tuned kernels are bitwise-identical to CSR --------------------------

class TuneKernels : public ::testing::TestWithParam<int> {};  // ranks

TEST_P(TuneKernels, SellSpmvBitwiseMatchesCsr) {
  const int p = GetParam();
  std::vector<CsrMatrix> zoo;
  Rng rng(42);
  zoo.push_back(sparse::randomDiagDominant(97, 7, 1.0, rng));
  zoo.push_back(sparse::laplacian2d(24, 24));
  Rng prng(7);
  zoo.push_back(sparse::permuteSymmetric(sparse::laplacian2d9(20, 20), prng));
  zoo.push_back(
      sparse::readMatrixMarket(std::string(LISI_TEST_DATA_DIR) +
                               "/perm9pt16.mtx"));
  for (std::size_t mi = 0; mi < zoo.size(); ++mi) {
    const CsrMatrix& global = zoo[mi];
    std::vector<double> x(static_cast<std::size_t>(global.cols));
    Rng xr(1000 + static_cast<std::uint64_t>(mi));
    for (auto& v : x) v = xr.uniform(-1, 1);
    World::run(p, [&](Comm& c) {
      DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
      const int s = dist.startRow();
      const int m = dist.localRows();
      const std::vector<double> xLoc(x.begin() + s, x.begin() + s + m);
      std::vector<double> yRef(static_cast<std::size_t>(m));
      dist.spmv(std::span<const double>(xLoc), std::span<double>(yRef));

      const SpmvConfig variants[] = {
          {LocalKernel::kSellC, /*overlapHalo=*/true, 0},
          {LocalKernel::kSellC, /*overlapHalo=*/false, 0},
          {LocalKernel::kCsrPrefetch, /*overlapHalo=*/true, 0},
          {LocalKernel::kCsrPrefetch, /*overlapHalo=*/false, 0},
          {LocalKernel::kCsr, /*overlapHalo=*/false, 0},
      };
      for (const SpmvConfig& cfg : variants) {
        const SpmvConfig applied = dist.setSpmvConfig(cfg);
        ASSERT_TRUE(applied == cfg) << sparse::localKernelName(cfg.kernel);
        std::vector<double> y(static_cast<std::size_t>(m));
        dist.spmv(std::span<const double>(xLoc), std::span<double>(y));
        for (int i = 0; i < m; ++i) {
          EXPECT_EQ(y[static_cast<std::size_t>(i)],
                    yRef[static_cast<std::size_t>(i)])
              << "matrix " << mi << " kernel "
              << sparse::localKernelName(cfg.kernel) << " overlap "
              << cfg.overlapHalo << " row " << s + i;
        }
      }
    });
  }
}

TEST_P(TuneKernels, SellAuxSurvivesValueRefresh) {
  // updateValues must replay new values into the SELL aux storage through
  // the src maps, keeping bitwise CSR agreement after a same-pattern
  // refresh.
  const int p = GetParam();
  const CsrMatrix global = sparse::laplacian2d9(18, 18);
  CsrMatrix scaled = global;
  for (double& v : scaled.values) v *= 1.75;
  std::vector<double> x(static_cast<std::size_t>(global.cols));
  Rng xr(5);
  for (auto& v : x) v = xr.uniform(-1, 1);
  World::run(p, [&](Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
    const int s = dist.startRow();
    const int m = dist.localRows();
    const std::vector<double> xLoc(x.begin() + s, x.begin() + s + m);
    (void)dist.setSpmvConfig({LocalKernel::kSellC, true, 0});
    dist.updateValues(rowSlice(scaled, s, m));
    std::vector<double> y(static_cast<std::size_t>(m));
    dist.spmv(std::span<const double>(xLoc), std::span<double>(y));

    DistCsrMatrix ref = DistCsrMatrix::scatterFromRoot(c, scaled);
    std::vector<double> yRef(static_cast<std::size_t>(m));
    ref.spmv(std::span<const double>(xLoc), std::span<double>(yRef));
    for (int i = 0; i < m; ++i) {
      EXPECT_EQ(y[static_cast<std::size_t>(i)],
                yRef[static_cast<std::size_t>(i)]);
    }
  });
}

TEST_P(TuneKernels, BlockSpmvMatchesCsrOnBlockMatrix) {
  // blockLaplacian2d has fully dense 4x4 blocks, so the VBR path adds no
  // fill terms.  At p=1 the traversal order matches CSR exactly (bitwise
  // equal); at p>1 boundary rows are summed in mapped-column order (ghosts
  // after owned columns) instead of global-column order, so only the SELL
  // kernel keeps the bitwise guarantee — the block kernel is compared to
  // the usual 1e-12 distributed-spmv tolerance.
  const int p = GetParam();
  const CsrMatrix global = sparse::blockLaplacian2d(12, 12, 4);
  std::vector<double> x(static_cast<std::size_t>(global.cols));
  Rng xr(9);
  for (auto& v : x) v = xr.uniform(-1, 1);
  World::run(p, [&](Comm& c) {
    DistCsrMatrix dist = DistCsrMatrix::scatterFromRoot(c, global);
    const int s = dist.startRow();
    const int m = dist.localRows();
    const std::vector<double> xLoc(x.begin() + s, x.begin() + s + m);
    std::vector<double> yRef(static_cast<std::size_t>(m));
    dist.spmv(std::span<const double>(xLoc), std::span<double>(yRef));

    ASSERT_TRUE(dist.blockKernelEligible(4));
    const SpmvConfig cfg{LocalKernel::kBlock, false, 4};
    ASSERT_TRUE(dist.setSpmvConfig(cfg) == cfg);
    std::vector<double> y(static_cast<std::size_t>(m));
    dist.spmv(std::span<const double>(xLoc), std::span<double>(y));
    for (int i = 0; i < m; ++i) {
      if (p == 1) {
        EXPECT_EQ(y[static_cast<std::size_t>(i)],
                  yRef[static_cast<std::size_t>(i)]);
      } else {
        EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                    yRef[static_cast<std::size_t>(i)], 1e-12);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, TuneKernels, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "ranks" + std::to_string(info.param);
                         });

// ---- cache behavior through the solver stack -----------------------------

class TuneCache : public ::testing::TestWithParam<int> {};  // ranks

TEST_P(TuneCache, ReplayOnSameOperatorAndStructureRetuneOnNew) {
  const int p = GetParam();
  tune::clearCacheForTest();
  tune::resetStatsForTest();
  const CsrMatrix a5 = sparse::laplacian2d(16, 16);   // pattern A
  const CsrMatrix a9 = sparse::laplacian2d9(16, 16);  // pattern B, same size
  World::run(p, [&](Comm& c) {
    int start = 0, m = 0;
    myShare(a5.rows, c.rank(), c.size(), start, m);
    cca::Framework fw;
    const long h = comm::registerHandle(c);
    auto s = wirePksp(fw, h, c, a5, start, m);
    ASSERT_EQ(s->set("tune", "on"), 0);

    // First solve: miss + probe.
    const tune::Stats s0 = sampleStats(c);
    (void)feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s1 = sampleStats(c);
    EXPECT_EQ(s1.cacheMisses - s0.cacheMisses, p);
    EXPECT_EQ(s1.cacheHits - s0.cacheHits, 0);
    EXPECT_EQ(s1.retunes - s0.retunes, 0);
    EXPECT_GT(s1.probeMeasurements - s0.probeMeasurements, 0);

    // kSameOperator replay: hit, zero probe measurements.
    (void)feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s2 = sampleStats(c);
    EXPECT_EQ(s2.cacheHits - s1.cacheHits, p);
    EXPECT_EQ(s2.cacheMisses - s1.cacheMisses, 0);
    EXPECT_EQ(s2.probeMeasurements - s1.probeMeasurements, 0);

    // kSameStructure replay (new values, same pattern): still free.
    (void)feedAndSolve(*s, a5, start, m, 2.5);
    const tune::Stats s3 = sampleStats(c);
    EXPECT_EQ(s3.cacheHits - s2.cacheHits, p);
    EXPECT_EQ(s3.cacheMisses - s2.cacheMisses, 0);
    EXPECT_EQ(s3.probeMeasurements - s2.probeMeasurements, 0);

    // kNewStructure: invalidates, retunes (counted), probes again.
    (void)feedAndSolve(*s, a9, start, m, 1.0);
    const tune::Stats s4 = sampleStats(c);
    EXPECT_EQ(s4.cacheMisses - s3.cacheMisses, p);
    EXPECT_EQ(s4.retunes - s3.retunes, p);
    EXPECT_GT(s4.probeMeasurements - s3.probeMeasurements, 0);

    // Back to pattern A: new structure for the component, but the decision
    // is already cached — hit, no probing, no retune charge.
    (void)feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s5 = sampleStats(c);
    EXPECT_EQ(s5.cacheHits - s4.cacheHits, p);
    EXPECT_EQ(s5.cacheMisses - s4.cacheMisses, 0);
    EXPECT_EQ(s5.retunes - s4.retunes, 0);
    EXPECT_EQ(s5.probeMeasurements - s4.probeMeasurements, 0);
    comm::releaseHandle(h);
  });
}

TEST_P(TuneCache, RetuneBudgetSuppressesProbing) {
  const int p = GetParam();
  tune::clearCacheForTest();
  tune::resetStatsForTest();
  const CsrMatrix a5 = sparse::laplacian2d(16, 16);
  const CsrMatrix a9 = sparse::laplacian2d9(16, 16);
  World::run(p, [&](Comm& c) {
    int start = 0, m = 0;
    myShare(a5.rows, c.rank(), c.size(), start, m);
    cca::Framework fw;
    const long h = comm::registerHandle(c);
    auto s = wirePksp(fw, h, c, a5, start, m);
    ASSERT_EQ(s->set("tune", "on"), 0);
    ASSERT_EQ(s->setInt("tune_retune_budget", 0), 0);

    // First structure is not charged against the budget (nothing to
    // invalidate yet).
    const tune::Stats s0 = sampleStats(c);
    (void)feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s1 = sampleStats(c);
    EXPECT_EQ(s1.cacheMisses - s0.cacheMisses, p);
    EXPECT_EQ(s1.budgetSkips - s0.budgetSkips, 0);
    EXPECT_GT(s1.probeMeasurements - s0.probeMeasurements, 0);

    // New structure with budget 0: default config, no probe, not cached.
    (void)feedAndSolve(*s, a9, start, m, 1.0);
    const tune::Stats s2 = sampleStats(c);
    EXPECT_EQ(s2.budgetSkips - s1.budgetSkips, p);
    EXPECT_EQ(s2.retunes - s1.retunes, 0);
    EXPECT_EQ(s2.probeMeasurements - s1.probeMeasurements, 0);
    comm::releaseHandle(h);
  });
}

TEST_P(TuneCache, OffBypassLeavesEverythingUntouched) {
  const int p = GetParam();
  tune::clearCacheForTest();
  tune::resetStatsForTest();
  const CsrMatrix a5 = sparse::laplacian2d(16, 16);
  // Indexed by rank: each rank-thread writes only its own slot.
  std::vector<std::vector<double>> xOff(static_cast<std::size_t>(p));
  World::run(p, [&](Comm& c) {
    int start = 0, m = 0;
    myShare(a5.rows, c.rank(), c.size(), start, m);
    cca::Framework fw;
    const long h = comm::registerHandle(c);
    auto s = wirePksp(fw, h, c, a5, start, m);
    ASSERT_EQ(s->set("tune", "off"), 0);
    const tune::Stats s0 = sampleStats(c);
    xOff[static_cast<std::size_t>(c.rank())] =
        feedAndSolve(*s, a5, start, m, 1.0);
    (void)feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s1 = sampleStats(c);
    EXPECT_EQ(s1.cacheHits - s0.cacheHits, 0);
    EXPECT_EQ(s1.cacheMisses - s0.cacheMisses, 0);
    EXPECT_EQ(s1.retunes - s0.retunes, 0);
    EXPECT_EQ(s1.probeMeasurements - s0.probeMeasurements, 0);
    EXPECT_EQ(s1.budgetSkips - s0.budgetSkips, 0);
    EXPECT_EQ(s1.autoSkips - s0.autoSkips, 0);
    comm::releaseHandle(h);
  });

  // The env knob spells the same bypass without any param: LISI_TUNE=off
  // must leave the counters untouched and produce the identical solution
  // (tuning off IS the pre-tuner code path).  The previous value is
  // restored afterwards — the verify flow runs this binary with LISI_TUNE
  // forced and later tests must still see that setting.
  const char* prevEnv = std::getenv("LISI_TUNE");
  const std::string prev = prevEnv != nullptr ? prevEnv : "";
  ASSERT_EQ(setenv("LISI_TUNE", "off", 1), 0);
  World::run(p, [&](Comm& c) {
    int start = 0, m = 0;
    myShare(a5.rows, c.rank(), c.size(), start, m);
    cca::Framework fw;
    const long h = comm::registerHandle(c);
    auto s = wirePksp(fw, h, c, a5, start, m);
    const tune::Stats s0 = sampleStats(c);
    const std::vector<double> xEnv = feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s1 = sampleStats(c);
    EXPECT_EQ(s1.cacheMisses - s0.cacheMisses, 0);
    EXPECT_EQ(s1.probeMeasurements - s0.probeMeasurements, 0);
    const std::vector<double>& mine = xOff[static_cast<std::size_t>(c.rank())];
    ASSERT_EQ(xEnv.size(), mine.size());
    for (std::size_t i = 0; i < xEnv.size(); ++i) {
      EXPECT_EQ(xEnv[i], mine[i]);
    }
    comm::releaseHandle(h);
  });
  if (prevEnv != nullptr) {
    ASSERT_EQ(setenv("LISI_TUNE", prev.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("LISI_TUNE"), 0);
  }
}

TEST_P(TuneCache, AutoSkipsSmallOperators) {
  // kAuto leaves operators under the nnz gate untuned: no probes, no cache
  // traffic beyond the skip counter, default config everywhere.  This is
  // what every small tier-1 test matrix sees when LISI_TUNE is unset.
  const int p = GetParam();
  tune::clearCacheForTest();
  tune::resetStatsForTest();
  const CsrMatrix a5 = sparse::laplacian2d(16, 16);  // ~1.2k nnz << gate
  World::run(p, [&](Comm& c) {
    int start = 0, m = 0;
    myShare(a5.rows, c.rank(), c.size(), start, m);
    cca::Framework fw;
    const long h = comm::registerHandle(c);
    auto s = wirePksp(fw, h, c, a5, start, m);
    ASSERT_EQ(s->set("tune", "auto"), 0);
    const tune::Stats s0 = sampleStats(c);
    (void)feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s1 = sampleStats(c);
    EXPECT_EQ(s1.autoSkips - s0.autoSkips, p);
    EXPECT_EQ(s1.cacheMisses - s0.cacheMisses, 0);
    EXPECT_EQ(s1.probeMeasurements - s0.probeMeasurements, 0);
    comm::releaseHandle(h);
  });
}

TEST_P(TuneCache, PrecisionModeIsPartOfTheKey) {
  // A decision probed under float64 kernels must not be replayed for a
  // mixed-precision solve (and vice versa): the same operator structure
  // under a different precision mode is a distinct OperatorKey, so the
  // first mixed solve misses and probes, while flipping back to double
  // replays the decision already cached under the double key.
  const int p = GetParam();
  tune::clearCacheForTest();
  tune::resetStatsForTest();
  const CsrMatrix a5 = sparse::laplacian2d(16, 16);
  World::run(p, [&](Comm& c) {
    int start = 0, m = 0;
    myShare(a5.rows, c.rank(), c.size(), start, m);
    cca::Framework fw;
    const long h = comm::registerHandle(c);
    auto s = wirePksp(fw, h, c, a5, start, m);
    ASSERT_EQ(s->set("tune", "on"), 0);
    // SOR has a float32 path (Jacobi intentionally does not); plain SOR is
    // nonsymmetric, so pair it with GMRES instead of wirePksp's CG.
    ASSERT_EQ(s->set("solver", "gmres"), 0);
    ASSERT_EQ(s->set("preconditioner", "sor"), 0);
    // Pin the starting mode explicitly: an ambient LISI_PRECISION (the
    // verify flow forces it) must not collapse the two keys into one.
    ASSERT_EQ(s->set("precision", "double"), 0);

    // Double: miss + probe, caches {fingerprint, p, kDouble}.
    const tune::Stats s0 = sampleStats(c);
    (void)feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s1 = sampleStats(c);
    EXPECT_EQ(s1.cacheMisses - s0.cacheMisses, p);
    EXPECT_GT(s1.probeMeasurements - s0.probeMeasurements, 0);

    // Same operator under mixed: new key -> miss + probe, not a replay.
    ASSERT_EQ(s->set("precision", "mixed"), 0);
    (void)feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s2 = sampleStats(c);
    EXPECT_EQ(s2.cacheMisses - s1.cacheMisses, p);
    EXPECT_EQ(s2.cacheHits - s1.cacheHits, 0);
    EXPECT_GT(s2.probeMeasurements - s1.probeMeasurements, 0);

    // Still mixed: replay of the mixed-key decision, zero probes.
    (void)feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s3 = sampleStats(c);
    EXPECT_EQ(s3.cacheHits - s2.cacheHits, p);
    EXPECT_EQ(s3.cacheMisses - s2.cacheMisses, 0);
    EXPECT_EQ(s3.probeMeasurements - s2.probeMeasurements, 0);

    // Back to double: the double-key decision is still cached -> hit.
    ASSERT_EQ(s->set("precision", "double"), 0);
    (void)feedAndSolve(*s, a5, start, m, 1.0);
    const tune::Stats s4 = sampleStats(c);
    EXPECT_EQ(s4.cacheHits - s3.cacheHits, p);
    EXPECT_EQ(s4.cacheMisses - s3.cacheMisses, 0);
    EXPECT_EQ(s4.probeMeasurements - s3.probeMeasurements, 0);
    comm::releaseHandle(h);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, TuneCache, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "ranks" + std::to_string(info.param);
                         });

// ---- obs counter mirror --------------------------------------------------

TEST(TuneObs, CountersMirrorIntoObsWhenEnabled) {
  if (!obs::enabled()) {
    GTEST_SKIP() << "LISI_OBS=OFF build: tune keeps only its own counters";
  }
  tune::clearCacheForTest();
  tune::resetStatsForTest();
  obs::reset();
  const int p = 2;
  const CsrMatrix a5 = sparse::laplacian2d(16, 16);
  World::run(p, [&](Comm& c) {
    int start = 0, m = 0;
    myShare(a5.rows, c.rank(), c.size(), start, m);
    cca::Framework fw;
    const long h = comm::registerHandle(c);
    auto s = wirePksp(fw, h, c, a5, start, m);
    ASSERT_EQ(s->set("tune", "on"), 0);
    (void)feedAndSolve(*s, a5, start, m, 1.0);  // miss + probe
    (void)feedAndSolve(*s, a5, start, m, 1.0);  // replay hit
    comm::releaseHandle(h);
  });
  const obs::Report r = obs::collect();
  long long hits = -1, misses = -1, probes = -1;
  for (const obs::CounterStat& cs : r.counters) {
    if (cs.name == "tune.cache_hit") hits = cs.total;
    if (cs.name == "tune.cache_miss") misses = cs.total;
    if (cs.name == "tune.probe_measurements") probes = cs.total;
  }
  const tune::Stats t = tune::stats();
  EXPECT_EQ(hits, t.cacheHits);
  EXPECT_EQ(misses, t.cacheMisses);
  EXPECT_EQ(probes, t.probeMeasurements);
  EXPECT_EQ(misses, p);
  EXPECT_EQ(hits, p);
}

}  // namespace
}  // namespace lisi
