// Failure-injection tests: every layer must fail loudly and consistently
// across ranks — no hangs, no silent wrong answers, no rank divergence.
#include <gtest/gtest.h>

#include <atomic>

#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/pde5pt.hpp"
#include "pksp/pksp.hpp"
#include "sparse/convert.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/generate.hpp"

namespace lisi {
namespace {

using comm::Comm;
using comm::World;

// ---- comm layer --------------------------------------------------------

TEST(FailureComm, AbortWakesRanksBlockedInRecv) {
  std::atomic<int> woken{0};
  EXPECT_THROW(
      World::run(4,
                 [&](Comm& c) {
                   if (c.rank() == 0) {
                     throw Error("injected failure on rank 0");
                   }
                   try {
                     (void)c.recvBytes(0, 99);  // never satisfied
                   } catch (const Error&) {
                     woken.fetch_add(1);
                     throw;
                   }
                 }),
      Error);
  EXPECT_EQ(woken.load(), 3);  // every blocked rank must have been released
}

TEST(FailureComm, AbortWakesRanksBlockedInCollective) {
  EXPECT_THROW(World::run(3,
                          [](Comm& c) {
                            if (c.rank() == 2) throw Error("rank 2 dies");
                            (void)c.allreduceValue(1.0, comm::ReduceOp::kSum);
                          }),
               Error);
}

TEST(FailureComm, ExplicitAbortPropagates) {
  try {
    World::run(2, [](Comm& c) {
      if (c.rank() == 1) {
        c.abort("operator requested shutdown");
      }
      c.barrier();
    });
    // Rank 0 throws "aborted"; rank 1 may finish cleanly.  Either a throw
    // or a clean return of World::run counts as handled, but if rank 0's
    // exception surfaces it must carry the reason.
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("operator requested shutdown"),
              std::string::npos);
  }
}

TEST(FailureComm, BadRankArgumentsThrowLocally) {
  World::run(2, [](Comm& c) {
    EXPECT_THROW(c.sendValue(1, 5, 0), Error);   // dest out of range
    EXPECT_THROW(c.sendValue(1, -1, 0), Error);  // negative dest
    EXPECT_THROW(c.sendValue(1, 0, -3), Error);  // negative tag
    EXPECT_THROW((void)c.recvBytes(7, 0), Error);  // src out of range
    // Keep the ranks synchronized so no one exits while the other throws.
    c.barrier();
  });
}

// ---- solver packages ----------------------------------------------------

TEST(FailurePksp, JacobiOnZeroDiagonalReportsNumeric) {
  World::run(1, [](Comm& c) {
    // [0 1; 1 0]: perfectly solvable, but Jacobi cannot be built.
    sparse::CsrMatrix g;
    g.rows = 2;
    g.cols = 2;
    g.rowPtr = {0, 1, 2};
    g.colIdx = {1, 0};
    g.values = {1.0, 1.0};
    sparse::DistCsrMatrix a = sparse::DistCsrMatrix::scatterFromRoot(c, g);
    pksp::KSP ksp = nullptr;
    pksp::KSPCreate(c, &ksp);
    pksp::KSPSetOperator(ksp, &a);
    pksp::KSPSetPCType(ksp, pksp::PKSP_PC_JACOBI);
    std::vector<double> b{1.0, 2.0}, x(2);
    EXPECT_EQ(pksp::KSPSolve(ksp, std::span<const double>(b),
                             std::span<double>(x)),
              pksp::PKSP_ERR_NUMERIC);
    pksp::KSPDestroy(&ksp);
  });
}

TEST(FailurePksp, CgOnIndefiniteSystemDoesNotHang) {
  World::run(1, [](Comm& c) {
    // CG requires SPD; on an indefinite matrix it must terminate with a
    // breakdown/divergence code within maxits, never loop forever.
    sparse::CsrMatrix g;
    g.rows = 2;
    g.cols = 2;
    g.rowPtr = {0, 1, 2};
    g.colIdx = {0, 1};
    g.values = {1.0, -1.0};  // diag(1, -1): indefinite
    sparse::DistCsrMatrix a = sparse::DistCsrMatrix::scatterFromRoot(c, g);
    pksp::KSP ksp = nullptr;
    pksp::KSPCreate(c, &ksp);
    pksp::KSPSetOperator(ksp, &a);
    pksp::KSPSetType(ksp, pksp::PKSP_CG);
    pksp::KSPSetTolerances(ksp, 1e-20, 1e-30, 50);
    std::vector<double> b{1.0, 1.0}, x(2);
    (void)pksp::KSPSolve(ksp, std::span<const double>(b),
                         std::span<double>(x));
    pksp::PkspConvergedReason reason = pksp::PKSP_ITERATING;
    pksp::KSPGetConvergedReason(ksp, &reason);
    // diag(1,-1) with b=(1,1) actually converges in 2 CG steps; the point
    // is termination with a definite reason, one way or the other.
    EXPECT_NE(reason, pksp::PKSP_ITERATING);
    pksp::KSPDestroy(&ksp);
  });
}

TEST(FailurePksp, MaxItsConsistentAcrossRanks) {
  // All ranks must agree on the (non-)convergence outcome.
  World::run(4, [](Comm& c) {
    mesh::Pde5ptSpec spec;
    spec.gridN = 16;
    const auto local = mesh::assembleLocal(spec, c.rank(), c.size());
    sparse::DistCsrMatrix a(c, local.globalN, local.globalN, local.startRow,
                            local.localA);
    pksp::KSP ksp = nullptr;
    pksp::KSPCreate(c, &ksp);
    pksp::KSPSetOperator(ksp, &a);
    pksp::KSPSetTolerances(ksp, 1e-14, 1e-30, 2);
    std::vector<double> x(static_cast<std::size_t>(a.localRows()));
    const int rc = pksp::KSPSolve(ksp, std::span<const double>(local.localB),
                                  std::span<double>(x));
    const int minRc = c.allreduceValue(rc, comm::ReduceOp::kMin);
    const int maxRc = c.allreduceValue(rc, comm::ReduceOp::kMax);
    EXPECT_EQ(minRc, maxRc);  // identical verdict everywhere
    EXPECT_EQ(rc, pksp::PKSP_ERR_NUMERIC);
    pksp::KSPDestroy(&ksp);
  });
}

// ---- LISI port ----------------------------------------------------------

std::shared_ptr<SparseSolver> makePort(cca::Framework& fw) {
  registerSolverComponents();
  fw.instantiate("s", kSluComponentClass);
  return fw.getProvidesPortAs<SparseSolver>("s", kSparseSolverPortName);
}

TEST(FailureLisi, SingularSystemReportedOnEveryRank) {
  World::run(2, [](Comm& c) {
    cca::Framework fw;
    auto s = makePort(fw);
    const long h = comm::registerHandle(c);
    // Global 4x4 with an exactly zero column => singular.
    const int n = 4;
    const int m = 2;
    const int start = 2 * c.rank();
    ASSERT_EQ(s->initialize(h), 0);
    s->setStartRow(start);
    s->setLocalRows(m);
    s->setGlobalCols(n);
    // Row i: 1 at (i, 0) and (i, i) except column 3 never appears.
    std::vector<double> vals;
    std::vector<int> rows, cols;
    for (int i = start; i < start + m; ++i) {
      rows.push_back(i); cols.push_back(0); vals.push_back(1.0);
      if (i != 0 && i != 3) {
        rows.push_back(i); cols.push_back(i); vals.push_back(2.0);
      }
    }
    ASSERT_EQ(s->setupMatrix(
                  RArray<const double>(vals.data(), static_cast<int>(vals.size())),
                  RArray<const int>(rows.data(), static_cast<int>(rows.size())),
                  RArray<const int>(cols.data(), static_cast<int>(cols.size())),
                  static_cast<int>(vals.size())),
              0);
    std::vector<double> b(static_cast<std::size_t>(m), 1.0);
    ASSERT_EQ(s->setupRHS(RArray<const double>(b.data(), m), m, 1), 0);
    std::vector<double> x(static_cast<std::size_t>(m));
    std::vector<double> st(kStatusLength);
    const int rc = s->solve(RArray<double>(x.data(), m),
                            RArray<double>(st.data(), kStatusLength), m,
                            kStatusLength);
    EXPECT_EQ(rc, static_cast<int>(ErrorCode::kNumericFailure));
    // Every rank sees the same verdict (the factorization failure on rank 0
    // is broadcast, not silently localized).
    const int maxRc = c.allreduceValue(rc, comm::ReduceOp::kMax);
    const int minRc = c.allreduceValue(rc, comm::ReduceOp::kMin);
    EXPECT_EQ(maxRc, minRc);
    comm::releaseHandle(h);
  });
}

TEST(FailureLisi, SolveWithoutRhsIsBadState) {
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    auto s = makePort(fw);
    const long h = comm::registerHandle(c);
    s->initialize(h);
    s->setStartRow(0);
    s->setLocalRows(2);
    s->setGlobalCols(2);
    const double v[2] = {1, 1};
    const int idx[2] = {0, 1};
    s->setupMatrix(RArray<const double>(v, 2), RArray<const int>(idx, 2),
                   RArray<const int>(idx, 2), 2);
    double x[2], st[kStatusLength];
    EXPECT_EQ(s->solve(RArray<double>(x, 2),
                       RArray<double>(st, kStatusLength), 2, kStatusLength),
              static_cast<int>(ErrorCode::kBadState));
    comm::releaseHandle(h);
  });
}

TEST(FailureLisi, OutOfRangeRowRejected) {
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    auto s = makePort(fw);
    const long h = comm::registerHandle(c);
    s->initialize(h);
    s->setStartRow(0);
    s->setLocalRows(2);
    s->setGlobalCols(4);
    // Row index 3 does not belong to this rank (owns rows 0..1).
    const double v[1] = {1.0};
    const int row[1] = {3};
    const int col[1] = {0};
    EXPECT_EQ(s->setupMatrix(RArray<const double>(v, 1),
                             RArray<const int>(row, 1),
                             RArray<const int>(col, 1), 1),
              static_cast<int>(ErrorCode::kInvalidArgument));
    comm::releaseHandle(h);
  });
}

TEST(FailureLisi, RhsSizeMismatchRejected) {
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    auto s = makePort(fw);
    const long h = comm::registerHandle(c);
    s->initialize(h);
    s->setStartRow(0);
    s->setLocalRows(3);
    s->setGlobalCols(3);
    double b[2] = {1, 2};
    EXPECT_EQ(s->setupRHS(RArray<const double>(b, 2), 2, 1),
              static_cast<int>(ErrorCode::kInvalidArgument));  // 2 != 3
    EXPECT_EQ(s->setupRHS(RArray<const double>(b, 2), 3, 1),
              static_cast<int>(ErrorCode::kInvalidArgument));  // array short
    EXPECT_EQ(s->setupRHS(RArray<const double>(b, 2), 3, 0),
              static_cast<int>(ErrorCode::kInvalidArgument));  // nRhs < 1
    comm::releaseHandle(h);
  });
}

TEST(FailureLisi, CsrPointerInconsistencyRejected) {
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    auto s = makePort(fw);
    const long h = comm::registerHandle(c);
    s->initialize(h);
    s->setStartRow(0);
    s->setLocalRows(2);
    s->setGlobalCols(2);
    const double v[2] = {1, 1};
    const int badPtr[3] = {0, 1, 5};  // rowPtr end != nnz
    const int cols[2] = {0, 1};
    EXPECT_EQ(s->setupMatrix(RArray<const double>(v, 2),
                             RArray<const int>(badPtr, 3),
                             RArray<const int>(cols, 2),
                             SparseStruct::kCsr, 3, 2),
              static_cast<int>(ErrorCode::kInvalidArgument));
    comm::releaseHandle(h);
  });
}

TEST(FailureLisi, ColumnOutOfRangeRejected) {
  World::run(1, [](Comm& c) {
    cca::Framework fw;
    auto s = makePort(fw);
    const long h = comm::registerHandle(c);
    s->initialize(h);
    s->setStartRow(0);
    s->setLocalRows(2);
    s->setGlobalCols(2);
    const double v[2] = {1, 1};
    const int rows[2] = {0, 1};
    const int cols[2] = {0, 9};  // column 9 of a 2-column system
    EXPECT_EQ(s->setupMatrix(RArray<const double>(v, 2),
                             RArray<const int>(rows, 2),
                             RArray<const int>(cols, 2), 2),
              static_cast<int>(ErrorCode::kInvalidArgument));
    comm::releaseHandle(h);
  });
}

}  // namespace
}  // namespace lisi
