// Unit tests for sparse storage formats: validation, canonicalization, and
// the SparseStruct enum helpers.
#include <gtest/gtest.h>

#include "sparse/formats.hpp"

namespace lisi::sparse {
namespace {

CsrMatrix tinyCsr() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  CsrMatrix a;
  a.rows = 2;
  a.cols = 3;
  a.rowPtr = {0, 2, 3};
  a.colIdx = {0, 2, 1};
  a.values = {1.0, 2.0, 3.0};
  return a;
}

TEST(SparseStructEnum, NamesRoundTrip) {
  for (SparseStruct s :
       {SparseStruct::kCsr, SparseStruct::kCoo, SparseStruct::kMsr,
        SparseStruct::kVbr, SparseStruct::kFem, SparseStruct::kCsc}) {
    EXPECT_EQ(sparseStructFromName(sparseStructName(s)), s);
  }
}

TEST(SparseStructEnum, ParseIsCaseInsensitive) {
  EXPECT_EQ(sparseStructFromName(" csr "), SparseStruct::kCsr);
  EXPECT_EQ(sparseStructFromName("Coo"), SparseStruct::kCoo);
  EXPECT_THROW(sparseStructFromName("bogus"), Error);
}

TEST(Coo, CheckAcceptsValid) {
  CooMatrix c;
  c.rows = 2;
  c.cols = 2;
  c.rowIdx = {0, 1, 0};
  c.colIdx = {0, 1, 1};
  c.values = {1, 2, 3};
  EXPECT_NO_THROW(c.check());
  EXPECT_EQ(c.nnz(), 3);
}

TEST(Coo, CheckRejectsOutOfRange) {
  CooMatrix c;
  c.rows = 2;
  c.cols = 2;
  c.rowIdx = {0, 2};
  c.colIdx = {0, 1};
  c.values = {1, 2};
  EXPECT_THROW(c.check(), Error);
}

TEST(Coo, CheckRejectsLengthMismatch) {
  CooMatrix c;
  c.rows = 1;
  c.cols = 1;
  c.rowIdx = {0};
  c.colIdx = {0, 0};
  c.values = {1.0};
  EXPECT_THROW(c.check(), Error);
}

TEST(Csr, CheckAcceptsValid) {
  EXPECT_NO_THROW(tinyCsr().check());
}

TEST(Csr, CheckRejectsBadRowPtr) {
  CsrMatrix a = tinyCsr();
  a.rowPtr = {0, 5, 3};  // non-monotone / wrong end
  EXPECT_THROW(a.check(), Error);
}

TEST(Csr, CheckRejectsColOutOfRange) {
  CsrMatrix a = tinyCsr();
  a.colIdx[0] = 99;
  EXPECT_THROW(a.check(), Error);
}

TEST(Csr, CanonicalizeSortsAndMerges) {
  CsrMatrix a;
  a.rows = 1;
  a.cols = 4;
  a.rowPtr = {0, 4};
  a.colIdx = {3, 1, 3, 0};
  a.values = {1.0, 2.0, 10.0, 4.0};
  EXPECT_FALSE(a.isCanonical());
  a.canonicalize();
  EXPECT_TRUE(a.isCanonical());
  ASSERT_EQ(a.nnz(), 3);
  EXPECT_EQ(a.colIdx, (std::vector<int>{0, 1, 3}));
  EXPECT_DOUBLE_EQ(a.values[2], 11.0);  // duplicates summed
}

TEST(Csr, CanonicalOnEmptyRows) {
  CsrMatrix a;
  a.rows = 3;
  a.cols = 3;
  a.rowPtr = {0, 0, 1, 1};
  a.colIdx = {2};
  a.values = {5.0};
  a.canonicalize();
  EXPECT_NO_THROW(a.check());
  EXPECT_EQ(a.nnz(), 1);
}

TEST(Csc, CheckValidAndInvalid) {
  CscMatrix c;
  c.rows = 3;
  c.cols = 2;
  c.colPtr = {0, 1, 3};
  c.rowIdx = {2, 0, 1};
  c.values = {1, 2, 3};
  EXPECT_NO_THROW(c.check());
  c.rowIdx[0] = 3;
  EXPECT_THROW(c.check(), Error);
}

TEST(Msr, CheckValid) {
  // 2x2 matrix [4 1; 0 5] in MSR.
  MsrMatrix m;
  m.n = 2;
  m.bindx = {3, 4, 4, 1};  // bindx[0]=n+1=3, row0 has one offdiag (col 1)
  m.val = {4.0, 5.0, 0.0, 1.0};
  EXPECT_NO_THROW(m.check());
  EXPECT_EQ(m.nnz(), 3);
}

TEST(Msr, CheckRejectsBadHeader) {
  MsrMatrix m;
  m.n = 2;
  m.bindx = {2, 4, 4, 1};  // bindx[0] must be n+1
  m.val = {4.0, 5.0, 0.0, 1.0};
  EXPECT_THROW(m.check(), Error);
}

TEST(Vbr, CheckValidSingleBlock) {
  // One 2x2 dense block.
  VbrMatrix v;
  v.rpntr = {0, 2};
  v.cpntr = {0, 2};
  v.bpntr = {0, 1};
  v.bindx = {0};
  v.indx = {0, 4};
  v.val = {1, 2, 3, 4};
  EXPECT_NO_THROW(v.check());
  EXPECT_EQ(v.rows(), 2);
  EXPECT_EQ(v.cols(), 2);
}

TEST(Vbr, CheckRejectsExtentMismatch) {
  VbrMatrix v;
  v.rpntr = {0, 2};
  v.cpntr = {0, 2};
  v.bpntr = {0, 1};
  v.bindx = {0};
  v.indx = {0, 3};  // 2x2 block needs 4 values
  v.val = {1, 2, 3};
  EXPECT_THROW(v.check(), Error);
}

}  // namespace
}  // namespace lisi::sparse
