// Tests for the lisi::obs observability layer.
//
// The suite is built in both configurations:
//   - LISI_OBS=ON:  spans/counters record, collect() aggregates across the
//     rank threads of a World::run, JSON/trace exports carry the data.
//   - LISI_OBS=OFF: the hot-path API compiles to no-ops; the reporting API
//     still links and runs but reports an empty, disabled registry.
// Tests that assert on recorded data skip themselves when obs::enabled()
// is false; the compile-out test asserts the opposite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/comm.hpp"
#include "obs/obs.hpp"

namespace lisi {
namespace {

using comm::Comm;
using comm::World;

#define SKIP_IF_DISABLED()                                        \
  if (!obs::enabled()) {                                          \
    GTEST_SKIP() << "built without LISI_OBS=ON";                  \
  }                                                               \
  static_assert(true, "")

const obs::SpanStat* findSpan(const obs::Report& r, const std::string& name) {
  for (const obs::SpanStat& s : r.spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const obs::CounterStat* findCounter(const obs::Report& r,
                                    const std::string& name) {
  for (const obs::CounterStat& c : r.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(Obs, SpanNestingRecordsBothLevels) {
  SKIP_IF_DISABLED();
  obs::reset();
  World::run(1, [](Comm&) {
    for (int i = 0; i < 3; ++i) {
      obs::Span outer("obs_test.outer");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      {
        obs::Span inner("obs_test.inner");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  const obs::Report r = obs::collect();
  EXPECT_TRUE(r.enabled);
  const obs::SpanStat* outer = findSpan(r, "obs_test.outer");
  const obs::SpanStat* inner = findSpan(r, "obs_test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3);
  EXPECT_EQ(inner->count, 3);
  // The outer span contains the inner one, so its total must dominate.
  EXPECT_GE(outer->totalSeconds, inner->totalSeconds);
  EXPECT_GE(outer->minSeconds, 0.0);
  EXPECT_GE(outer->maxSeconds, outer->minSeconds);

  // The raw timeline keeps the nesting depth for the trace export.
  const std::vector<obs::TraceEvent> events = obs::traceEvents();
  bool sawOuterAtDepth0 = false;
  bool sawInnerAtDepth1 = false;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "obs_test.outer" && e.depth == 0) sawOuterAtDepth0 = true;
    if (e.name == "obs_test.inner" && e.depth == 1) sawInnerAtDepth1 = true;
  }
  EXPECT_TRUE(sawOuterAtDepth0);
  EXPECT_TRUE(sawInnerAtDepth1);
}

TEST(Obs, CountersAggregateAcrossRanks) {
  SKIP_IF_DISABLED();
  obs::reset();
  World::run(4, [](Comm& c) {
    // Rank r contributes r+1, so the cross-rank totals are exact and
    // asymmetric: total 10, min 1, max 4, mean 2.5.
    obs::count("obs_test.per_rank", c.rank() + 1);
    c.barrier();
  });
  const obs::Report r = obs::collect();
  const obs::CounterStat* c = findCounter(r, "obs_test.per_rank");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->total, 10);
  EXPECT_EQ(c->ranks, 4);
  EXPECT_EQ(c->rankMin, 1);
  EXPECT_EQ(c->rankMax, 4);
  EXPECT_DOUBLE_EQ(c->rankMean, 2.5);

  // The instrumented barrier shows up too, attributed to all four ranks.
  const obs::SpanStat* barrier = findSpan(r, "coll.barrier.star");
  if (barrier == nullptr) barrier = findSpan(r, "coll.barrier.tree");
  ASSERT_NE(barrier, nullptr);
  EXPECT_EQ(barrier->ranks, 4);
  EXPECT_GE(barrier->imbalance, 1.0);
}

TEST(Obs, CompileOutBuildReportsDisabledAndEmpty) {
  if (obs::enabled()) {
    GTEST_SKIP() << "built with LISI_OBS=ON; compile-out path not active";
  }
  obs::reset();
  World::run(2, [](Comm& c) {
    // Exercise the instrumented paths and the public no-op API: none of
    // this may record anything in an OFF build.
    obs::Span span("obs_test.should_not_exist");
    obs::count("obs_test.should_not_exist");
    (void)c.allreduceValue(1.0, comm::ReduceOp::kSum);
    c.barrier();
  });
  const obs::Report r = obs::collect();
  EXPECT_FALSE(r.enabled);
  EXPECT_TRUE(r.spans.empty());
  EXPECT_TRUE(r.counters.empty());
  EXPECT_EQ(r.droppedEvents, 0u);
  EXPECT_TRUE(obs::traceEvents().empty());
  // The JSON export still works so OFF-build tooling degrades gracefully.
  const std::string json = obs::toJson(r);
  EXPECT_NE(json.find("\"lisi-obs-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"enabled\": false"), std::string::npos);
}

TEST(Obs, JsonSchemaIsStable) {
  SKIP_IF_DISABLED();
  obs::reset();
  World::run(2, [](Comm& c) {
    obs::Span span("obs_test.schema", 128);
    obs::count("obs_test.schema_counter", 2);
    c.barrier();
  });
  const std::string json = obs::toJson(obs::collect());
  // Top-level schema: versioned, with the four fixed keys in order.
  const std::vector<std::string> keysInOrder = {
      "\"schema\": \"lisi-obs-v2\"", "\"enabled\": true",
      "\"dropped_events\":",         "\"spans\":",
      "\"counters\":",               "\"session_spans\":",
      "\"session_counters\":",
  };
  std::size_t pos = 0;
  for (const std::string& key : keysInOrder) {
    const std::size_t at = json.find(key, pos);
    ASSERT_NE(at, std::string::npos) << "missing or out of order: " << key
                                     << "\n" << json;
    pos = at;
  }
  // Per-span and per-counter rows carry the documented fields.
  for (const char* field :
       {"\"count\":", "\"total_s\":", "\"min_s\":", "\"max_s\":",
        "\"mean_s\":", "\"detail_total\":", "\"ranks\":",
        "\"rank_total_min_s\":", "\"rank_total_max_s\":",
        "\"rank_total_mean_s\":", "\"imbalance\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << "missing " << field;
  }
  for (const char* field :
       {"\"total\":", "\"rank_min\":", "\"rank_max\":", "\"rank_mean\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << "missing " << field;
  }
  // Two ranks each opened the span with detail=128, so the merged sum is 256.
  EXPECT_NE(json.find("\"detail_total\": 256"), std::string::npos);
}

TEST(Obs, ChromeTraceExportContainsRankEvents) {
  SKIP_IF_DISABLED();
  obs::reset();
  World::run(2, [](Comm& c) {
    obs::Span span("obs_test.trace_me");
    c.barrier();
  });
  const std::string path = ::testing::TempDir() + "lisi_obs_trace.json";
  ASSERT_TRUE(obs::writeChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string trace = buf.str();
  std::remove(path.c_str());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("obs_test.trace_me"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  // Events carry the rank as tid so the viewer shows one row per rank.
  EXPECT_NE(trace.find("\"tid\": 0"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\": 1"), std::string::npos);
}

TEST(Obs, ResetClearsEverything) {
  SKIP_IF_DISABLED();
  obs::reset();
  World::run(1, [](Comm&) { obs::count("obs_test.reset_me"); });
  ASSERT_NE(findCounter(obs::collect(), "obs_test.reset_me"), nullptr);
  obs::reset();
  const obs::Report r = obs::collect();
  EXPECT_EQ(findCounter(r, "obs_test.reset_me"), nullptr);
  EXPECT_TRUE(obs::traceEvents().empty());
}

}  // namespace
}  // namespace lisi
