// Aztec package tests: Map/Vector semantics, CrsMatrix, matrix-free
// RowMatrix subclasses, the AztecOO driver across solver/preconditioner
// combinations, and parallel/serial agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "aztec/aztecoo.hpp"
#include "comm/comm.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"
#include "support/rng.hpp"

namespace aztec {
namespace {

using lisi::Rng;
using lisi::comm::Comm;
using lisi::comm::World;
using lisi::sparse::CsrMatrix;

/// Local slice of a replicated global vector under `map`.
std::vector<double> sliceFor(const Map& map, const std::vector<double>& g) {
  const int s = map.minMyGlobalIndex();
  const int m = map.numMyElements();
  return {g.begin() + s, g.begin() + s + m};
}

/// Build a CrsMatrix for this rank from a replicated global CSR.
CrsMatrix makeCrs(const Map& map, const CsrMatrix& global) {
  const int s = map.minMyGlobalIndex();
  const int m = map.numMyElements();
  CsrMatrix local;
  local.rows = m;
  local.cols = global.cols;
  local.rowPtr.assign(static_cast<std::size_t>(m) + 1, 0);
  for (int i = 0; i < m; ++i) {
    const int gb = global.rowPtr[static_cast<std::size_t>(s + i)];
    const int ge = global.rowPtr[static_cast<std::size_t>(s + i) + 1];
    local.colIdx.insert(local.colIdx.end(), global.colIdx.begin() + gb,
                        global.colIdx.begin() + ge);
    local.values.insert(local.values.end(), global.values.begin() + gb,
                        global.values.begin() + ge);
    local.rowPtr[static_cast<std::size_t>(i) + 1] =
        static_cast<int>(local.values.size());
  }
  return CrsMatrix(map, std::move(local));
}

TEST(AztecMap, EvenDistribution) {
  World::run(4, [](Comm& c) {
    const Map map(12, c);
    EXPECT_EQ(map.numGlobalElements(), 12);
    EXPECT_EQ(map.numMyElements(), 3);
    EXPECT_EQ(map.minMyGlobalIndex(), 3 * c.rank());
    EXPECT_TRUE(map.sameAs(Map(12, c)));
    EXPECT_FALSE(map.sameAs(Map(13, c)));
  });
}

TEST(AztecMap, ExplicitLocalCounts) {
  World::run(3, [](Comm& c) {
    const int mine = c.rank() + 1;  // 1+2+3 = 6
    const Map map(6, mine, c);
    EXPECT_EQ(map.numMyElements(), mine);
    const std::vector<int> expect{0, 1, 3, 6};
    EXPECT_EQ(map.offsets(), expect);
  });
}

TEST(AztecMap, InconsistentCountsRejected) {
  EXPECT_THROW(World::run(2,
                          [](Comm& c) {
                            const Map bad(10, 4, c);  // 4+4 != 10
                          }),
               lisi::Error);
}

TEST(AztecVector, UpdateAndReductions) {
  World::run(2, [](Comm& c) {
    const Map map(8, c);
    Vector x(map), y(map);
    x.putScalar(2.0);
    y.putScalar(3.0);
    EXPECT_DOUBLE_EQ(x.dot(y), 8 * 6.0);
    EXPECT_DOUBLE_EQ(x.norm2(), std::sqrt(8 * 4.0));
    y.update(2.0, x, -1.0);  // y = 2x - y = 1
    EXPECT_DOUBLE_EQ(y.normInf(), 1.0);
    Vector z(map);
    z.update(1.0, x, 1.0, y, 0.0);  // z = x + y = 3
    EXPECT_DOUBLE_EQ(z.norm2(), std::sqrt(8 * 9.0));
  });
}

TEST(AztecVector, MultiplyReciprocal) {
  World::run(1, [](Comm& c) {
    const Map map(4, c);
    Vector a(map), b(map), r(map);
    for (int i = 0; i < 4; ++i) {
      a[i] = i + 1.0;
      b[i] = 2.0;
    }
    r.multiply(a, b);
    EXPECT_DOUBLE_EQ(r[3], 8.0);
    Vector inv(map);
    inv.reciprocal(a);
    EXPECT_DOUBLE_EQ(inv[1], 0.5);
    Vector zero(map);
    EXPECT_THROW(inv.reciprocal(zero), lisi::Error);
  });
}

TEST(AztecVector, MapMismatchRejected) {
  World::run(1, [](Comm& c) {
    const Map m1(4, c), m2(5, c);
    Vector a(m1), b(m2);
    EXPECT_THROW(a.update(1.0, b, 0.0), lisi::Error);
    EXPECT_THROW((void)a.dot(b), lisi::Error);
  });
}

TEST(AztecCrs, ApplyMatchesSerialSpmv) {
  const CsrMatrix g = lisi::sparse::laplacian2d(6, 5);
  std::vector<double> xg(static_cast<std::size_t>(g.rows));
  Rng rng(9);
  for (auto& v : xg) v = rng.uniform(-1, 1);
  std::vector<double> yRef(xg.size());
  lisi::sparse::spmv(g, std::span<const double>(xg), std::span<double>(yRef));
  for (int p : {1, 2, 3}) {
    World::run(p, [&](Comm& c) {
      const Map map(g.rows, c);
      const CrsMatrix a = makeCrs(map, g);
      Vector x(map, sliceFor(map, xg));
      Vector y(map);
      a.apply(x, y);
      for (int i = 0; i < map.numMyElements(); ++i) {
        EXPECT_NEAR(y[i], yRef[static_cast<std::size_t>(map.minMyGlobalIndex() + i)],
                    1e-13);
      }
    });
  }
}

TEST(AztecCrs, ExtractDiagonal) {
  const CsrMatrix g = lisi::sparse::laplacian2d(4, 4);
  World::run(2, [&](Comm& c) {
    const Map map(g.rows, c);
    const CrsMatrix a = makeCrs(map, g);
    Vector d(map);
    a.extractDiagonal(d);
    for (int i = 0; i < map.numMyElements(); ++i) EXPECT_DOUBLE_EQ(d[i], 4.0);
  });
}

/// Matrix-free operator implementing the 1-D Laplacian via neighbor
/// exchange — the §5.5 pattern: application code subclasses RowMatrix.
class MatrixFreeLaplacian1d final : public RowMatrix {
 public:
  explicit MatrixFreeLaplacian1d(const Map& map) : map_(&map) {}
  [[nodiscard]] const Map& rowMap() const override { return *map_; }

  void apply(const Vector& x, Vector& y) const override {
    const auto& comm = map_->comm();
    const int rank = comm.rank();
    const int p = comm.size();
    const int m = map_->numMyElements();
    // Exchange boundary values with neighbors.
    double left = 0.0, right = 0.0;
    if (rank > 0) comm.sendValue(x[0], rank - 1, 42);
    if (rank + 1 < p) comm.sendValue(x[m - 1], rank + 1, 42);
    if (rank + 1 < p) right = comm.recvValue<double>(rank + 1, 42);
    if (rank > 0) left = comm.recvValue<double>(rank - 1, 42);
    for (int i = 0; i < m; ++i) {
      const double xm = i > 0 ? x[i - 1] : left;
      const double xp = i + 1 < m ? x[i + 1] : right;
      y[i] = 2.0 * x[i] - xm - xp;
    }
  }

  void extractDiagonal(Vector& d) const override { d.putScalar(2.0); }

 private:
  const Map* map_;
};

TEST(AztecMatrixFree, OperatorMatchesAssembled) {
  const int n = 24;
  const CsrMatrix g = lisi::sparse::laplacian1d(n);
  std::vector<double> xg(static_cast<std::size_t>(n));
  Rng rng(10);
  for (auto& v : xg) v = rng.uniform(-1, 1);
  std::vector<double> yRef(xg.size());
  lisi::sparse::spmv(g, std::span<const double>(xg), std::span<double>(yRef));
  for (int p : {1, 2, 4}) {
    World::run(p, [&](Comm& c) {
      const Map map(n, c);
      const MatrixFreeLaplacian1d a(map);
      Vector x(map, sliceFor(map, xg));
      Vector y(map);
      a.apply(x, y);
      for (int i = 0; i < map.numMyElements(); ++i) {
        EXPECT_NEAR(y[i], yRef[static_cast<std::size_t>(map.minMyGlobalIndex() + i)],
                    1e-13);
      }
    });
  }
}

TEST(AztecMatrixFree, SolveWithoutAssembledMatrix) {
  // CG + Jacobi on the matrix-free Laplacian: §5.5 end to end.
  const int n = 32;
  World::run(2, [&](Comm& c) {
    const Map map(n, c);
    const MatrixFreeLaplacian1d a(map);
    Vector x(map), b(map);
    b.putScalar(1.0);
    AztecOO solver(a, x, b);
    solver.setOption(AZ_solver, AZ_cg).setOption(AZ_precond, AZ_Jacobi);
    EXPECT_EQ(solver.iterate(500, 1e-10), 0);
    // Verify against the assembled solve residual.
    Vector r(map);
    a.apply(x, r);
    r.update(1.0, b, -1.0);
    EXPECT_LT(r.norm2(), 1e-8 * b.norm2() + 1e-9);
  });
}

TEST(AztecMatrixFree, DomDecompRequiresAssembled) {
  World::run(1, [](Comm& c) {
    const Map map(8, c);
    const MatrixFreeLaplacian1d a(map);
    Vector x(map), b(map);
    b.putScalar(1.0);
    AztecOO solver(a, x, b);
    solver.setOption(AZ_precond, AZ_dom_decomp);
    EXPECT_THROW((void)solver.iterate(10, 1e-8), lisi::Error);
  });
}

TEST(AztecOptions, DefaultsAndBounds) {
  World::run(1, [](Comm& c) {
    const Map map(4, c);
    const CrsMatrix a = makeCrs(map, lisi::sparse::laplacian1d(4));
    Vector x(map), b(map);
    AztecOO solver(a, x, b);
    EXPECT_EQ(solver.option(AZ_solver), AZ_gmres);
    EXPECT_EQ(solver.option(AZ_kspace), 30);
    EXPECT_DOUBLE_EQ(solver.param(AZ_tol), 1e-6);
    EXPECT_THROW(solver.setOption(99, 1), lisi::Error);
    EXPECT_THROW(solver.setParam(-1, 0.0), lisi::Error);
  });
}

struct AzCombo {
  int solver;
  int precond;
};

class AztecConvergence : public ::testing::TestWithParam<AzCombo> {};

TEST_P(AztecConvergence, SpdSystemSolves) {
  const AzCombo combo = GetParam();
  const CsrMatrix g = lisi::sparse::laplacian2d(11, 11);
  std::vector<double> xTrue(static_cast<std::size_t>(g.rows));
  Rng rng(77);
  for (auto& v : xTrue) v = rng.uniform(-1, 1);
  std::vector<double> bg(xTrue.size());
  lisi::sparse::spmv(g, std::span<const double>(xTrue), std::span<double>(bg));

  World::run(2, [&](Comm& c) {
    const Map map(g.rows, c);
    const CrsMatrix a = makeCrs(map, g);
    Vector x(map);
    const Vector b(map, sliceFor(map, bg));
    AztecOO solver(a, x, b);
    solver.setOption(AZ_solver, combo.solver)
        .setOption(AZ_precond, combo.precond);
    EXPECT_EQ(solver.iterate(3000, 1e-10), 0)
        << "why=" << solver.terminationReason();
    EXPECT_LT(solver.scaledResidual(), 1e-9);
    for (int i = 0; i < map.numMyElements(); ++i) {
      EXPECT_NEAR(x[i], xTrue[static_cast<std::size_t>(map.minMyGlobalIndex() + i)],
                  1e-5);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Combos, AztecConvergence,
    ::testing::Values(AzCombo{AZ_cg, AZ_none}, AzCombo{AZ_cg, AZ_Jacobi},
                      AzCombo{AZ_cg, AZ_dom_decomp},
                      AzCombo{AZ_cg, AZ_sym_GS},
                      AzCombo{AZ_gmres, AZ_none}, AzCombo{AZ_gmres, AZ_Jacobi},
                      AzCombo{AZ_gmres, AZ_Neumann},
                      AzCombo{AZ_gmres, AZ_dom_decomp},
                      AzCombo{AZ_gmres, AZ_sym_GS},
                      AzCombo{AZ_bicgstab, AZ_none},
                      AzCombo{AZ_bicgstab, AZ_Jacobi},
                      AzCombo{AZ_bicgstab, AZ_dom_decomp}));

TEST(AztecSymGs, RequiresAssembledMatrix) {
  World::run(1, [](Comm& c) {
    const Map map(8, c);
    const MatrixFreeLaplacian1d a(map);
    Vector x(map), b(map);
    b.putScalar(1.0);
    AztecOO solver(a, x, b);
    solver.setOption(AZ_precond, AZ_sym_GS);
    EXPECT_THROW((void)solver.iterate(10, 1e-8), lisi::Error);
  });
}

TEST(AztecSymGs, PreservesCgOnSpdProblem) {
  // SGS is a symmetric preconditioner: CG must converge cleanly (a
  // one-sided GS would break CG's assumptions).
  const CsrMatrix g = lisi::sparse::laplacian2d(14, 14);
  World::run(1, [&](Comm& c) {
    const Map map(g.rows, c);
    const CrsMatrix a = makeCrs(map, g);
    Vector x(map), b(map);
    b.putScalar(1.0);
    AztecOO solver(a, x, b);
    solver.setOption(AZ_solver, AZ_cg).setOption(AZ_precond, AZ_sym_GS);
    EXPECT_EQ(solver.iterate(1000, 1e-10), 0);
    // On one rank SGS is exact symmetric Gauss-Seidel and must beat
    // unpreconditioned CG.  (Across ranks it degrades to block-local SGS
    // and only convergence is guaranteed — covered by the Combos sweep.)
    Vector x2(map);
    AztecOO plain(a, x2, b);
    plain.setOption(AZ_solver, AZ_cg).setOption(AZ_precond, AZ_none);
    EXPECT_EQ(plain.iterate(1000, 1e-10), 0);
    EXPECT_LT(solver.numIters(), plain.numIters());
  });
}

TEST(AztecNonsymmetric, GmresIluOnConvectionDiffusion) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 15;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  for (int p : {1, 3}) {
    World::run(p, [&](Comm& c) {
      const Map map(sys.globalN, c);
      const CrsMatrix a = makeCrs(map, sys.localA);
      Vector x(map);
      const Vector b(map, sliceFor(map, sys.localB));
      AztecOO solver(a, x, b);
      solver.setOption(AZ_solver, AZ_gmres)
          .setOption(AZ_precond, AZ_dom_decomp)
          .setOption(AZ_kspace, 40);
      EXPECT_EQ(solver.iterate(2000, 1e-10), 0);
      EXPECT_LT(solver.scaledResidual(), 1e-9);
    });
  }
}

TEST(AztecStatus, MaxItersReported) {
  const CsrMatrix g = lisi::sparse::laplacian2d(16, 16);
  World::run(1, [&](Comm& c) {
    const Map map(g.rows, c);
    const CrsMatrix a = makeCrs(map, g);
    Vector x(map), b(map);
    b.putScalar(1.0);
    AztecOO solver(a, x, b);
    solver.setOption(AZ_solver, AZ_cg);
    EXPECT_EQ(solver.iterate(4, 1e-14), 1);
    EXPECT_EQ(solver.terminationReason(), AZ_maxits);
    EXPECT_EQ(solver.numIters(), 4);
  });
}

TEST(AztecStatus, R0ConvergenceMode) {
  const CsrMatrix g = lisi::sparse::laplacian2d(8, 8);
  World::run(1, [&](Comm& c) {
    const Map map(g.rows, c);
    const CrsMatrix a = makeCrs(map, g);
    Vector x(map), b(map);
    b.putScalar(1.0);
    AztecOO solver(a, x, b);
    solver.setOption(AZ_solver, AZ_cg).setOption(AZ_conv, AZ_r0);
    EXPECT_EQ(solver.iterate(500, 1e-11), 0);
    EXPECT_LT(solver.scaledResidual(), 1e-10);
  });
}

TEST(AztecStatus, StoredOptionsIterateOverload) {
  const CsrMatrix g = lisi::sparse::laplacian1d(20);
  World::run(1, [&](Comm& c) {
    const Map map(g.rows, c);
    const CrsMatrix a = makeCrs(map, g);
    Vector x(map), b(map);
    b.putScalar(1.0);
    AztecOO solver(a, x, b);
    solver.setOption(AZ_solver, AZ_cg)
        .setOption(AZ_max_iter, 300)
        .setParam(AZ_tol, 1e-9);
    EXPECT_EQ(solver.iterate(), 0);
    EXPECT_LT(solver.scaledResidual(), 1e-8);
  });
}

TEST(AztecParallel, MatchesSerialSolution) {
  lisi::mesh::Pde5ptSpec spec;
  spec.gridN = 12;
  const auto sys = lisi::mesh::assembleGlobal(spec);
  // Serial reference.
  std::vector<double> xRef;
  World::run(1, [&](Comm& c) {
    const Map map(sys.globalN, c);
    const CrsMatrix a = makeCrs(map, sys.localA);
    Vector x(map);
    const Vector b(map, sys.localB);
    AztecOO solver(a, x, b);
    solver.setOption(AZ_solver, AZ_bicgstab).setOption(AZ_precond, AZ_Jacobi);
    ASSERT_EQ(solver.iterate(5000, 1e-12), 0);
    xRef.assign(x.localView().begin(), x.localView().end());
  });
  for (int p : {2, 4, 8}) {
    World::run(p, [&](Comm& c) {
      const Map map(sys.globalN, c);
      const CrsMatrix a = makeCrs(map, sys.localA);
      Vector x(map);
      const Vector b(map, sliceFor(map, sys.localB));
      AztecOO solver(a, x, b);
      solver.setOption(AZ_solver, AZ_bicgstab).setOption(AZ_precond, AZ_Jacobi);
      ASSERT_EQ(solver.iterate(5000, 1e-12), 0);
      for (int i = 0; i < map.numMyElements(); ++i) {
        EXPECT_NEAR(x[i], xRef[static_cast<std::size_t>(map.minMyGlobalIndex() + i)],
                    1e-6);
      }
    });
  }
}

// ---- MultiVector / iterateMulti ---------------------------------------

TEST(AztecMultiVector, FusedDotsMatchPerLaneBitwise) {
  World::run(3, [](Comm& c) {
    const Map map(17, c);
    const int m = map.numMyElements();
    const int nv = 4;
    std::vector<double> vals(static_cast<std::size_t>(m * nv));
    Rng rng(11 + c.rank());
    for (auto& v : vals) v = rng.uniform(-1, 1);
    const MultiVector mv(map, vals, nv);
    std::vector<double> fused(nv, 0.0);
    mv.norms2(std::span<double>(fused));
    for (int k = 0; k < nv; ++k) {
      // Lane access must see the same data, and the fused reduction must
      // be bitwise identical to the standalone per-lane norm.
      EXPECT_EQ(fused[static_cast<std::size_t>(k)], mv(k).norm2());
    }
  });
}

TEST(AztecMulti, IterateMultiMatchesPerLaneBitwise) {
  const CsrMatrix g = lisi::sparse::laplacian2d(9, 9);
  const int n = g.rows;
  const int nv = 3;
  std::vector<double> bGlobal(static_cast<std::size_t>(n * nv));
  Rng rng(5);
  for (auto& v : bGlobal) v = rng.uniform(-1, 1);

  for (const int p : {1, 2, 4}) {
    World::run(p, [&](Comm& c) {
      const Map map(n, c);
      const CrsMatrix a = makeCrs(map, g);
      const int s = map.minMyGlobalIndex();
      const int m = map.numMyElements();
      std::vector<double> bLocal(static_cast<std::size_t>(m * nv));
      for (int k = 0; k < nv; ++k) {
        std::copy(bGlobal.begin() + k * n + s, bGlobal.begin() + k * n + s + m,
                  bLocal.begin() + static_cast<std::ptrdiff_t>(k * m));
      }

      // Per-lane reference: one standalone solver per right-hand side.
      std::vector<double> xRef(static_cast<std::size_t>(m * nv));
      for (int k = 0; k < nv; ++k) {
        Vector x(map);
        const Vector b(map,
                       std::span<const double>(
                           bLocal.data() + static_cast<std::size_t>(k) *
                                               static_cast<std::size_t>(m),
                           static_cast<std::size_t>(m)));
        AztecOO solver(a, x, b);
        solver.setOption(AZ_solver, AZ_gmres)
            .setOption(AZ_precond, AZ_dom_decomp);
        ASSERT_EQ(solver.iterate(500, 1e-10), 0);
        std::copy(x.localView().begin(), x.localView().end(),
                  xRef.begin() + static_cast<std::ptrdiff_t>(k * m));
      }

      // Blocked path: one solver, preconditioner built once, fused scales.
      MultiVector x(map, nv);
      const MultiVector b(map, bLocal, nv);
      AztecOO solver(a, x, b);
      solver.setOption(AZ_solver, AZ_gmres)
          .setOption(AZ_precond, AZ_dom_decomp);
      ASSERT_EQ(solver.iterateMulti(500, 1e-10), 0);
      EXPECT_EQ(solver.terminationReason(), AZ_normal);
      std::vector<double> xBlk(static_cast<std::size_t>(m * nv));
      x.extract(std::span<double>(xBlk));
      for (std::size_t i = 0; i < xBlk.size(); ++i) {
        ASSERT_EQ(xBlk[i], xRef[i]) << "p=" << p << " entry " << i;
      }
    });
  }
}

TEST(AztecMulti, SingleVectorIterateRejectedOnBlockProblem) {
  World::run(2, [](Comm& c) {
    const CsrMatrix g = lisi::sparse::laplacian1d(8);
    const Map map(8, c);
    const CrsMatrix a = makeCrs(map, g);
    MultiVector x(map, 2);
    const MultiVector b(map, 2);
    AztecOO solver(a, x, b);
    EXPECT_THROW((void)solver.iterate(10, 1e-6), lisi::Error);
  });
}

}  // namespace
}  // namespace aztec
