// lisi_lint: the project-specific static-analysis pass.
//
// A token-level C++ scanner (no libclang — the tool must build anywhere the
// tree builds) enforcing the repo invariants that generic tools cannot see:
//
//   raw-tag        point-to-point tag arguments must be named constants from
//                  the src/comm/tags.hpp registry, not integer literals;
//   rank-branch    collective calls lexically inside a rank()-dependent
//                  branch — the lockstep-divergence bug class the runtime
//                  checker (LISI_COMM_CHECK) only catches when it executes;
//   dropped-span   obs::Span constructed as a temporary: it closes at the
//                  end of the full expression and times nothing;
//   hot-alloc      heap-allocation keywords inside a region declared
//                  allocation-free by `// lisi-lint: zero-alloc-begin` /
//                  `zero-alloc-end` markers;
//   env-knob-doc   a LISI_* env knob read via getenv()/envInt() that the
//                  README never documents;
//   abi-boundary   C++ constructs (std::, templates, exceptions, namespaces)
//                  in headers under an abi/ directory — the plugin boundary
//                  (src/abi/lisi_abi.h) must stay consumable by a plain C
//                  compiler;
//   bad-suppression a malformed or unknown `// lisi-lint:` directive.
//
// Findings print as `file:line: [rule-id] message` plus a one-line fix
// hint; the only suppression mechanism is an inline
// `// lisi-lint: allow(<rule-id>) <reason>` on the offending line or the
// line above it.  Exit status: 0 clean, 1 findings, 2 usage/tool error.
//
// The scanner is deliberately lexical.  It cannot chase a tag through a
// variable, see through `const int r = rank()`, or prove two branch arms
// issue matching collectives — those limits are documented per rule in
// docs/STATIC_ANALYSIS.md, and the runtime checker remains the semantic
// backstop.  What the lexical pass buys is coverage: it runs on every file
// of src/ tests/ bench/ examples/ in every verify, with zero build-time
// dependencies.

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---- rule registry --------------------------------------------------------

enum class Rule {
#define LISI_LINT_RULE(enumName, id, hint) enumName,
#include "rules.def"
#undef LISI_LINT_RULE
};

struct RuleInfo {
  Rule rule;
  const char* id;
  const char* hint;
};

const RuleInfo kRules[] = {
#define LISI_LINT_RULE(enumName, id, hint) {Rule::enumName, id, hint},
#include "rules.def"
#undef LISI_LINT_RULE
};

const RuleInfo& info(Rule r) {
  for (const RuleInfo& ri : kRules) {
    if (ri.rule == r) return ri;
  }
  std::abort();  // unreachable: every Rule value has a kRules row
}

bool knownRuleId(const std::string& id) {
  return std::any_of(std::begin(kRules), std::end(kRules),
                     [&](const RuleInfo& ri) { return id == ri.id; });
}

// ---- tokenizer ------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Comment {
  std::string text;
  int line;
};

/// Lex `src` into tokens; comments are collected separately (directives and
/// markers live there).  String/char literals become single kString tokens
/// carrying their inner text, so rules can read getenv("...") arguments
/// without ever matching rule keywords inside literals.
void lex(const std::string& src, std::vector<Token>& tokens,
         std::vector<Comment>& comments) {
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  auto peek = [&](std::size_t k) { return i + k < n ? src[i + k] : '\0'; };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      const std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      comments.push_back({src.substr(start, i - start), line});
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int startLine = line;
      const std::size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      comments.push_back({src.substr(start, i - start), startLine});
      i = std::min(n, i + 2);
      continue;
    }
    if (c == '"' || c == '\'') {
      // Raw strings: R"delim( ... )delim" — find the matching closer.
      if (c == '"' && i > 0 && src[i - 1] == 'R') {
        const std::size_t open = src.find('(', i);
        if (open != std::string::npos) {
          const std::string delim = src.substr(i + 1, open - i - 1);
          const std::string closer = ")" + delim + "\"";
          const std::size_t end = src.find(closer, open + 1);
          const std::size_t stop = end == std::string::npos ? n : end;
          std::string body = src.substr(open + 1, stop - open - 1);
          tokens.push_back({Token::Kind::kString, body, line});
          line += static_cast<int>(
              std::count(src.begin() + static_cast<std::ptrdiff_t>(i),
                         src.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(n, stop + closer.size())),
                         '\n'));
          i = std::min(n, stop + closer.size());
          continue;
        }
      }
      const char quote = c;
      const int startLine = line;
      std::string body;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          body += src[i];
          body += src[i + 1];
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated; tolerate
        body += src[i];
        ++i;
      }
      ++i;  // closing quote
      tokens.push_back({Token::Kind::kString, body, startLine});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '.' || src[j] == '\'')) {
        ++j;
      }
      tokens.push_back({Token::Kind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_')) {
        ++j;
      }
      tokens.push_back({Token::Kind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Multi-char punctuation the rules care about: '::' and '->'.
    if (c == ':' && peek(1) == ':') {
      tokens.push_back({Token::Kind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      tokens.push_back({Token::Kind::kPunct, "->", line});
      i += 2;
      continue;
    }
    tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
}

// ---- findings and suppression ---------------------------------------------

struct Finding {
  std::string file;
  int line;
  Rule rule;
  std::string message;
};

struct FileContext {
  std::string path;            // as reported
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  /// line -> rule ids allowed on that line and the next.
  std::map<int, std::set<std::string>> allows;
  /// [begin, end] line ranges declared allocation-free.
  std::vector<std::pair<int, int>> zeroAllocRanges;
  bool inTestsDir = false;
  bool inFixtures = false;  // lint_fixtures opt back in to every rule
  bool isTagRegistry = false;
  bool inAbiDir = false;  // any path component named "abi" (the C surface)
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parse `// lisi-lint: ...` directives out of the comments: allow()
/// suppressions, zero-alloc markers, and (as findings) anything malformed.
void parseDirectives(FileContext& fc, std::vector<Finding>& findings) {
  std::vector<std::pair<int, bool>> markers;  // line, isBegin
  for (const Comment& c : fc.comments) {
    const std::size_t at = c.text.find("lisi-lint:");
    if (at == std::string::npos) continue;
    const std::string directive = trim(c.text.substr(at + 10));
    if (directive.rfind("allow(", 0) == 0) {
      const std::size_t close = directive.find(')');
      if (close == std::string::npos) {
        findings.push_back({fc.path, c.line, Rule::kBadSuppression,
                            "unclosed allow( in lisi-lint directive"});
        continue;
      }
      const std::string id = trim(directive.substr(6, close - 6));
      const std::string reason = trim(directive.substr(close + 1));
      if (!knownRuleId(id)) {
        findings.push_back({fc.path, c.line, Rule::kBadSuppression,
                            "allow() names unknown rule '" + id + "'"});
        continue;
      }
      if (reason.empty()) {
        findings.push_back({fc.path, c.line, Rule::kBadSuppression,
                            "allow(" + id +
                                ") carries no reason; blanket suppressions "
                                "are rejected"});
        continue;
      }
      fc.allows[c.line].insert(id);
    } else if (directive.rfind("zero-alloc-begin", 0) == 0) {
      markers.emplace_back(c.line, true);
    } else if (directive.rfind("zero-alloc-end", 0) == 0) {
      markers.emplace_back(c.line, false);
    } else {
      findings.push_back({fc.path, c.line, Rule::kBadSuppression,
                          "unknown lisi-lint directive '" + directive + "'"});
    }
  }
  int open = -1;
  for (const auto& [line, isBegin] : markers) {
    if (isBegin) {
      if (open >= 0) {
        findings.push_back({fc.path, line, Rule::kBadSuppression,
                            "zero-alloc-begin inside an open zero-alloc "
                            "region (missing zero-alloc-end)"});
      }
      open = line;
    } else {
      if (open < 0) {
        findings.push_back({fc.path, line, Rule::kBadSuppression,
                            "zero-alloc-end without a matching begin"});
        continue;
      }
      fc.zeroAllocRanges.emplace_back(open, line);
      open = -1;
    }
  }
  if (open >= 0) {
    findings.push_back({fc.path, open, Rule::kBadSuppression,
                        "zero-alloc-begin never closed in this file"});
  }
}

bool suppressed(const FileContext& fc, int line, Rule rule) {
  const std::string id = info(rule).id;
  for (const int l : {line, line - 1}) {
    const auto it = fc.allows.find(l);
    if (it != fc.allows.end() && it->second.count(id) != 0) return true;
  }
  return false;
}

// ---- token helpers --------------------------------------------------------

bool isIdent(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
bool isPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

/// Index just past a template-argument list starting at `i` (if tokens[i] is
/// '<'), balancing nested <>; bails conservatively at ';' or '{'.
std::size_t skipTemplateArgs(const std::vector<Token>& toks, std::size_t i) {
  if (i >= toks.size() || !isPunct(toks[i], "<")) return i;
  int depth = 0;
  std::size_t j = i;
  while (j < toks.size()) {
    if (isPunct(toks[j], "<")) ++depth;
    if (isPunct(toks[j], ">")) {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (isPunct(toks[j], ";") || isPunct(toks[j], "{")) return i;  // not args
    ++j;
  }
  return i;
}

/// With tokens[open] == '(', return the index of the matching ')' (or
/// toks.size()) and the comma-split argument ranges at depth 1.
std::size_t splitArgs(const std::vector<Token>& toks, std::size_t open,
                      std::vector<std::pair<std::size_t, std::size_t>>& args) {
  int depth = 0;
  std::size_t argBegin = open + 1;
  for (std::size_t j = open; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (isPunct(t, "(") || isPunct(t, "[") || isPunct(t, "{")) ++depth;
    if (isPunct(t, ")") || isPunct(t, "]") || isPunct(t, "}")) {
      --depth;
      if (depth == 0) {
        if (j > argBegin) args.emplace_back(argBegin, j);
        return j;
      }
    }
    if (depth == 1 && isPunct(t, ",")) {
      args.emplace_back(argBegin, j);
      argBegin = j + 1;
    }
  }
  return toks.size();
}

// ---- rule: raw-tag --------------------------------------------------------

struct TaggedCall {
  const char* name;
  std::size_t tagArg;  // 1-based position of the tag parameter
};

const TaggedCall kTaggedCalls[] = {
    {"send", 3},      {"sendValue", 3}, {"sendBytes", 4},
    {"recv", 3},      {"recvValue", 2}, {"recvVector", 2},
    {"recvBytes", 2}, {"recvBytesInto", 4},
};

void checkRawTag(const FileContext& fc, std::vector<Finding>& findings) {
  // Tests exercise arbitrary user tags on purpose, and the registry itself
  // defines the constants; both are out of scope by design.  The seeded
  // fixtures opt back in (they live under tests/ but exist to be scanned).
  if ((fc.inTestsDir && !fc.inFixtures) || fc.isTagRegistry) return;
  const auto& toks = fc.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const TaggedCall* call = nullptr;
    for (const TaggedCall& tc : kTaggedCalls) {
      if (toks[i].text == tc.name) {
        call = &tc;
        break;
      }
    }
    if (call == nullptr) continue;
    std::size_t j = skipTemplateArgs(toks, i + 1);
    if (j >= toks.size() || !isPunct(toks[j], "(")) continue;
    std::vector<std::pair<std::size_t, std::size_t>> args;
    splitArgs(toks, j, args);
    if (args.size() < call->tagArg) continue;  // declaration or other overload
    const auto [b, e] = args[call->tagArg - 1];
    if (e - b == 1 && toks[b].kind == Token::Kind::kNumber &&
        toks[b].text.find('.') == std::string::npos) {
      findings.push_back(
          {fc.path, toks[b].line, Rule::kRawTag,
           "raw tag literal " + toks[b].text + " in " + call->name +
               "(); tags outside tests must come from the src/comm/tags.hpp "
               "registry"});
    }
  }
}

// ---- rule: rank-branch ----------------------------------------------------

const char* const kCollectives[] = {
    "barrier",    "bcast",      "bcastValue", "reduce",     "reduceValue",
    "allreduce",  "allreduceValue",           "iallreduce", "ibarrier",
    "gather",     "gatherv",    "allgather",  "allgatherv", "scatter",
    "scatterv",   "split",      "dup",        "reserveCollectiveTags",
    "pinCollectiveSchedule",    "setCollectiveTagWindow",
};

bool isCollectiveName(const std::string& s) {
  return std::any_of(std::begin(kCollectives), std::end(kCollectives),
                     [&](const char* c) { return s == c; });
}

/// Does the token range [b, e) contain a rank() call (any receiver)?
bool mentionsRankCall(const std::vector<Token>& toks, std::size_t b,
                      std::size_t e) {
  for (std::size_t i = b; i + 1 < e; ++i) {
    if (toks[i].kind == Token::Kind::kIdent &&
        (toks[i].text == "rank" || toks[i].text == "worldRank" ||
         toks[i].text == "myLocalRank") &&
        isPunct(toks[i + 1], "(")) {
      return true;
    }
  }
  return false;
}

/// End index (exclusive) of the statement or block starting at `i`:
/// a `{...}` block to its matching brace, else a single statement to ';'.
std::size_t statementEnd(const std::vector<Token>& toks, std::size_t i) {
  if (i >= toks.size()) return i;
  if (isPunct(toks[i], "{")) {
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
      if (isPunct(toks[j], "{")) ++depth;
      if (isPunct(toks[j], "}")) {
        --depth;
        if (depth == 0) return j + 1;
      }
    }
    return toks.size();
  }
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (isPunct(toks[j], ";")) return j + 1;
  }
  return toks.size();
}

void checkRankBranch(const FileContext& fc, std::vector<Finding>& findings) {
  const auto& toks = fc.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const bool isIf = toks[i].text == "if";
    const bool isLoop = toks[i].text == "while" || toks[i].text == "for" ||
                        toks[i].text == "switch";
    if (!isIf && !isLoop) continue;
    if (!isPunct(toks[i + 1], "(")) continue;
    std::vector<std::pair<std::size_t, std::size_t>> condArgs;
    const std::size_t close = splitArgs(toks, i + 1, condArgs);
    if (close >= toks.size()) continue;
    if (!mentionsRankCall(toks, i + 1, close)) continue;
    // The whole if/else chain is rank-dependent once the condition is.
    std::size_t bodyBegin = close + 1;
    std::size_t bodyEnd = statementEnd(toks, bodyBegin);
    while (isIf && bodyEnd < toks.size() && isIdent(toks[bodyEnd], "else")) {
      bodyEnd = statementEnd(toks, bodyEnd + 1);
    }
    for (std::size_t j = bodyBegin; j + 1 < bodyEnd; ++j) {
      const bool viaMember =
          j > 0 && (isPunct(toks[j - 1], ".") || isPunct(toks[j - 1], "->"));
      if (!viaMember) continue;
      if (toks[j].kind != Token::Kind::kIdent ||
          !isCollectiveName(toks[j].text)) {
        continue;
      }
      const std::size_t call = skipTemplateArgs(toks, j + 1);
      if (call >= toks.size() || !isPunct(toks[call], "(")) continue;
      findings.push_back(
          {fc.path, toks[j].line, Rule::kRankBranch,
           "collective '" + toks[j].text +
               "' inside a rank()-dependent branch: if any rank skips or "
               "reorders it, the lockstep tag stream desynchronizes"});
    }
  }
}

// ---- rule: dropped-span ---------------------------------------------------

void checkDroppedSpan(const FileContext& fc, std::vector<Finding>& findings) {
  const auto& toks = fc.tokens;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (isIdent(toks[i], "obs") && isPunct(toks[i + 1], "::") &&
        isIdent(toks[i + 2], "Span") && isPunct(toks[i + 3], "(")) {
      findings.push_back(
          {fc.path, toks[i].line, Rule::kDroppedSpan,
           "obs::Span constructed as a temporary: it is destroyed at the "
           "end of this expression and the span measures (almost) nothing"});
    }
  }
}

// ---- rule: hot-alloc ------------------------------------------------------

const char* const kAllocMembers[] = {
    "push_back", "emplace_back", "resize",  "reserve", "assign",
    "insert",    "emplace",      "append",  "clear",
};
const char* const kAllocFree[] = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
    "make_unique", "make_shared", "to_string",
};

bool inZeroAllocRange(const FileContext& fc, int line) {
  return std::any_of(fc.zeroAllocRanges.begin(), fc.zeroAllocRanges.end(),
                     [&](const std::pair<int, int>& r) {
                       return line > r.first && line < r.second;
                     });
}

void checkHotAlloc(const FileContext& fc, std::vector<Finding>& findings) {
  if (fc.zeroAllocRanges.empty()) return;
  const auto& toks = fc.tokens;
  auto report = [&](const Token& t, const std::string& what) {
    findings.push_back({fc.path, t.line, Rule::kHotAlloc,
                        what + " inside a zero-alloc region"});
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || !inZeroAllocRange(fc, t.line)) {
      continue;
    }
    if (t.text == "new" && !(i > 0 && isPunct(toks[i - 1], "::"))) {
      report(t, "operator new");
      continue;
    }
    const bool called =
        i + 1 < toks.size() &&
        isPunct(toks[skipTemplateArgs(toks, i + 1)], "(");
    if (!called) continue;
    const bool viaMember =
        i > 0 && (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->"));
    if (viaMember && std::any_of(std::begin(kAllocMembers),
                                 std::end(kAllocMembers),
                                 [&](const char* m) { return t.text == m; })) {
      report(t, "container ." + t.text + "()");
      continue;
    }
    if (!viaMember && std::any_of(std::begin(kAllocFree), std::end(kAllocFree),
                                  [&](const char* m) { return t.text == m; })) {
      report(t, t.text + "()");
    }
  }
}

// ---- rule: env-knob-doc ---------------------------------------------------

void checkEnvKnobDoc(const FileContext& fc, const std::string& readme,
                     bool haveReadme, std::vector<Finding>& findings) {
  const auto& toks = fc.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        (toks[i].text != "getenv" && toks[i].text != "envInt")) {
      continue;
    }
    if (!isPunct(toks[i + 1], "(") ||
        toks[i + 2].kind != Token::Kind::kString) {
      continue;
    }
    const std::string& knob = toks[i + 2].text;
    if (knob.rfind("LISI_", 0) != 0) continue;
    if (!haveReadme) {
      findings.push_back({fc.path, toks[i].line, Rule::kEnvKnobDoc,
                          "cannot verify knob " + knob +
                              ": no README.md under --root"});
      continue;
    }
    if (readme.find(knob) == std::string::npos) {
      findings.push_back({fc.path, toks[i].line, Rule::kEnvKnobDoc,
                          "env knob " + knob +
                              " is read here but never documented in "
                              "README.md"});
    }
  }
}

// ---- rule: abi-boundary ---------------------------------------------------

// Keywords that cannot appear in a translation unit a C compiler accepts.
// `extern "C"` guards are fine (extern is shared); so is everything from
// <stdint.h>.  The rule is lexical on purpose: the ABI header has no
// business being subtle enough to fool it.
const char* const kCxxOnlyKeywords[] = {
    "template", "typename", "namespace", "class",     "throw",
    "try",      "catch",    "virtual",   "constexpr",
};

void checkAbiBoundary(const FileContext& fc, std::vector<Finding>& findings) {
  if (!fc.inAbiDir) return;
  const auto& toks = fc.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (t.text == "std" && i + 1 < toks.size() && isPunct(toks[i + 1], "::")) {
      findings.push_back(
          {fc.path, t.line, Rule::kAbiBoundary,
           "std:: qualifier in an ABI header; only <stdint.h> types may "
           "cross the C plugin boundary"});
      continue;
    }
    for (const char* kw : kCxxOnlyKeywords) {
      if (t.text == kw) {
        findings.push_back(
            {fc.path, t.line, Rule::kAbiBoundary,
             "C++ keyword '" + t.text +
                 "' in an ABI header; plugins compile this with a plain C "
                 "compiler"});
        break;
      }
    }
  }
}

// ---- driver ---------------------------------------------------------------

bool hasComponent(const fs::path& p, const std::string& name) {
  return std::any_of(p.begin(), p.end(),
                     [&](const fs::path& c) { return c == name; });
}

bool lintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

struct Options {
  std::set<std::string> enabledRules;  // empty = all
  std::string root = ".";
  std::vector<std::string> paths;
  bool listRules = false;
};

bool ruleEnabled(const Options& opt, Rule r) {
  return opt.enabledRules.empty() || opt.enabledRules.count(info(r).id) != 0;
}

void lintFile(const Options& opt, const fs::path& path,
              const std::string& readme, bool haveReadme,
              std::vector<Finding>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "lisi_lint: cannot read " << path.string() << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  FileContext fc;
  fc.path = path.generic_string();
  fc.inTestsDir = hasComponent(path, "tests");
  fc.inFixtures = hasComponent(path, "lint_fixtures");
  fc.isTagRegistry = path.filename() == "tags.hpp";
  fc.inAbiDir = hasComponent(path, "abi");
  lex(buf.str(), fc.tokens, fc.comments);

  std::vector<Finding> raw;
  parseDirectives(fc, raw);  // bad-suppression findings
  if (ruleEnabled(opt, Rule::kRawTag)) checkRawTag(fc, raw);
  if (ruleEnabled(opt, Rule::kRankBranch)) checkRankBranch(fc, raw);
  if (ruleEnabled(opt, Rule::kDroppedSpan)) checkDroppedSpan(fc, raw);
  if (ruleEnabled(opt, Rule::kHotAlloc)) checkHotAlloc(fc, raw);
  if (ruleEnabled(opt, Rule::kEnvKnobDoc)) {
    checkEnvKnobDoc(fc, readme, haveReadme, raw);
  }
  if (ruleEnabled(opt, Rule::kAbiBoundary)) checkAbiBoundary(fc, raw);
  for (Finding& f : raw) {
    if (f.rule == Rule::kBadSuppression && !ruleEnabled(opt, f.rule)) continue;
    if (!suppressed(fc, f.line, f.rule)) out.push_back(std::move(f));
  }
}

void collect(const fs::path& p, bool explicitArg, std::vector<fs::path>& out) {
  if (fs::is_directory(p)) {
    // Seeded-violation fixtures are skipped during recursion so the
    // verify-wide sweep stays clean; passing the directory explicitly (as
    // tests/lint_test does) still scans it.
    if (!explicitArg && p.filename() == "lint_fixtures") return;
    std::vector<fs::path> entries;
    for (const auto& e : fs::directory_iterator(p)) entries.push_back(e.path());
    std::sort(entries.begin(), entries.end());
    for (const auto& e : entries) collect(e, false, out);
    return;
  }
  if (fs::is_regular_file(p) && (explicitArg || lintableExtension(p))) {
    out.push_back(p);
  }
}

int usage() {
  std::cerr
      << "usage: lisi_lint [--root DIR] [--rules id,id,...] [--list-rules] "
         "PATH...\n"
         "  Scans C++ sources (recursing into directories) for violations\n"
         "  of the repo-specific rules; see docs/STATIC_ANALYSIS.md.\n"
         "  --root DIR     repo root for README.md lookup (default: .)\n"
         "  --rules a,b    run only these rule ids (default: all; the\n"
         "                 LISI_LINT_RULES env knob sets the same filter)\n"
         "  --list-rules   print `id<TAB>hint` per rule and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const char* env = std::getenv("LISI_LINT_RULES")) {
    std::stringstream ss(env);
    std::string id;
    while (std::getline(ss, id, ',')) {
      if (!trim(id).empty()) opt.enabledRules.insert(trim(id));
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      opt.listRules = true;
    } else if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      opt.enabledRules.clear();
      std::stringstream ss(argv[++i]);
      std::string id;
      while (std::getline(ss, id, ',')) {
        if (!trim(id).empty()) opt.enabledRules.insert(trim(id));
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.listRules) {
    for (const RuleInfo& ri : kRules) {
      std::cout << ri.id << "\t" << ri.hint << "\n";
    }
    return 0;
  }
  if (opt.paths.empty()) return usage();
  for (const std::string& id : opt.enabledRules) {
    if (!knownRuleId(id)) {
      std::cerr << "lisi_lint: unknown rule id '" << id << "'\n";
      return 2;
    }
  }

  std::string readme;
  bool haveReadme = false;
  {
    std::ifstream in(fs::path(opt.root) / "README.md", std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      readme = buf.str();
      haveReadme = true;
    }
  }

  std::vector<fs::path> files;
  for (const std::string& p : opt.paths) {
    if (!fs::exists(p)) {
      std::cerr << "lisi_lint: no such path: " << p << "\n";
      return 2;
    }
    collect(p, true, files);
  }

  std::vector<Finding> findings;
  for (const fs::path& f : files) {
    lintFile(opt, f, readme, haveReadme, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  for (const Finding& f : findings) {
    const RuleInfo& ri = info(f.rule);
    std::cout << f.file << ":" << f.line << ": [" << ri.id << "] " << f.message
              << "\n  hint: " << ri.hint << "\n";
  }
  std::cout << "lisi_lint: " << files.size() << " file(s), "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
