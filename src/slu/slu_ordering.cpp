// Fill-reducing orderings for SLU: reverse Cuthill-McKee and a greedy
// minimum-degree, both on the symmetrized pattern of A.
#include <algorithm>
#include <numeric>
#include <queue>

#include "slu/slu.hpp"

namespace slu {
namespace {

using lisi::sparse::CscMatrix;

/// Symmetrized adjacency (pattern of A + A', no self loops), CSR-like.
struct Adjacency {
  std::vector<int> ptr;
  std::vector<int> idx;
  [[nodiscard]] int degree(int v) const {
    return ptr[static_cast<std::size_t>(v) + 1] - ptr[static_cast<std::size_t>(v)];
  }
};

Adjacency buildAdjacency(const CscMatrix& a) {
  const int n = a.cols;
  std::vector<std::vector<int>> nbr(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    for (int k = a.colPtr[static_cast<std::size_t>(j)];
         k < a.colPtr[static_cast<std::size_t>(j) + 1]; ++k) {
      const int i = a.rowIdx[static_cast<std::size_t>(k)];
      if (i == j) continue;
      nbr[static_cast<std::size_t>(i)].push_back(j);
      nbr[static_cast<std::size_t>(j)].push_back(i);
    }
  }
  Adjacency adj;
  adj.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    auto& list = nbr[static_cast<std::size_t>(v)];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    adj.ptr[static_cast<std::size_t>(v) + 1] =
        adj.ptr[static_cast<std::size_t>(v)] + static_cast<int>(list.size());
  }
  adj.idx.reserve(static_cast<std::size_t>(adj.ptr.back()));
  for (const auto& list : nbr) {
    adj.idx.insert(adj.idx.end(), list.begin(), list.end());
  }
  return adj;
}

std::vector<int> rcm(const CscMatrix& a) {
  const int n = a.cols;
  const Adjacency adj = buildAdjacency(a);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> seen(static_cast<std::size_t>(n), 0);

  // Visit every connected component, starting each BFS from a minimum-degree
  // vertex (a cheap pseudo-peripheral heuristic).
  std::vector<int> byDegree(static_cast<std::size_t>(n));
  std::iota(byDegree.begin(), byDegree.end(), 0);
  std::sort(byDegree.begin(), byDegree.end(), [&adj](int u, int v) {
    return adj.degree(u) < adj.degree(v);
  });
  std::vector<int> frontier;
  for (int start : byDegree) {
    if (seen[static_cast<std::size_t>(start)]) continue;
    std::queue<int> bfs;
    bfs.push(start);
    seen[static_cast<std::size_t>(start)] = 1;
    while (!bfs.empty()) {
      const int v = bfs.front();
      bfs.pop();
      order.push_back(v);
      frontier.clear();
      for (int k = adj.ptr[static_cast<std::size_t>(v)];
           k < adj.ptr[static_cast<std::size_t>(v) + 1]; ++k) {
        const int w = adj.idx[static_cast<std::size_t>(k)];
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = 1;
          frontier.push_back(w);
        }
      }
      std::sort(frontier.begin(), frontier.end(), [&adj](int u, int w) {
        return adj.degree(u) < adj.degree(w);
      });
      for (int w : frontier) bfs.push(w);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

/// Greedy minimum degree on an explicit quotient-free adjacency: when a
/// vertex is eliminated its neighbors become a clique.  Exact but O(n*d^2);
/// intended for moderate problem sizes (the LISI default is RCM).
std::vector<int> minDegree(const CscMatrix& a) {
  const int n = a.cols;
  const Adjacency adj = buildAdjacency(a);
  std::vector<std::vector<int>> nbr(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    nbr[static_cast<std::size_t>(v)].assign(
        adj.idx.begin() + adj.ptr[static_cast<std::size_t>(v)],
        adj.idx.begin() + adj.ptr[static_cast<std::size_t>(v) + 1]);
  }
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int step = 0; step < n; ++step) {
    int best = -1;
    std::size_t bestDeg = 0;
    for (int v = 0; v < n; ++v) {
      if (eliminated[static_cast<std::size_t>(v)]) continue;
      const std::size_t d = nbr[static_cast<std::size_t>(v)].size();
      if (best < 0 || d < bestDeg) {
        best = v;
        bestDeg = d;
      }
    }
    order.push_back(best);
    eliminated[static_cast<std::size_t>(best)] = 1;
    // Form the clique among best's remaining neighbors.
    auto& bn = nbr[static_cast<std::size_t>(best)];
    bn.erase(std::remove_if(bn.begin(), bn.end(),
                            [&](int w) {
                              return eliminated[static_cast<std::size_t>(w)] != 0;
                            }),
             bn.end());
    for (int u : bn) {
      auto& un = nbr[static_cast<std::size_t>(u)];
      un.erase(std::remove_if(un.begin(), un.end(),
                              [&](int w) {
                                return w == best ||
                                       eliminated[static_cast<std::size_t>(w)] != 0;
                              }),
               un.end());
      for (int w : bn) {
        if (w != u && std::find(un.begin(), un.end(), w) == un.end()) {
          un.push_back(w);
        }
      }
    }
  }
  return order;
}

}  // namespace

std::vector<int> computeOrdering(const CscMatrix& a, Ordering ordering) {
  a.check();
  LISI_CHECK(a.rows == a.cols, "computeOrdering: matrix must be square");
  switch (ordering) {
    case Ordering::kNatural: {
      std::vector<int> q(static_cast<std::size_t>(a.cols));
      std::iota(q.begin(), q.end(), 0);
      return q;
    }
    case Ordering::kRcm:
      return rcm(a);
    case Ordering::kMinDeg:
      return minDegree(a);
  }
  throw lisi::Error("computeOrdering: unknown ordering");
}

}  // namespace slu
