// SLU factorization core: Gilbert-Peierls left-looking sparse LU with
// threshold partial pivoting (the algorithm at the heart of SuperLU,
// without supernodes) and the column-oriented triangular solves.
#include "slu/slu.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "sparse/ops.hpp"
#include "support/prec.hpp"

namespace slu {

using lisi::sparse::CscMatrix;

namespace {
// Reuse observability: full (symbolic + numeric) factorizations vs
// numeric-only same-pattern refactorizations.  Process-wide atomics because
// MiniMPI ranks are threads.  Memory order (audited): relaxed everywhere —
// monotonic counters carrying no publication duty; test readers run after
// the writer ranks joined.
std::atomic<long long> gSymbolicFactorizations{0};
std::atomic<long long> gNumericRefactorizations{0};
}  // namespace

long long symbolicFactorizations() {
  return gSymbolicFactorizations.load(std::memory_order_relaxed);
}

long long numericRefactorizations() {
  return gNumericRefactorizations.load(std::memory_order_relaxed);
}

/// Flattened column-compressed triangular factors in pivot coordinates.
struct Factorization::Impl {
  int n = 0;
  Options options;
  Stats stats;
  std::vector<int> q;        ///< column permutation (position -> original col)
  std::vector<int> pinv;     ///< original row -> pivot position
  std::vector<double> rowScale;  ///< row equilibration factors (or empty)

  // The factorized matrix's sparsity pattern, kept so refactorize() can
  // verify its SamePattern precondition instead of silently producing a
  // wrong factorization.
  std::vector<int> aColPtr, aRowIdx;

  // L: unit lower triangular, off-diagonal entries only, by column.
  std::vector<int> lPtr, lRow;
  std::vector<double> lVal;
  // U: strictly upper entries by column plus the diagonal.  Each column's
  // entries are sorted by row, which doubles as the topological order the
  // numeric-only refactorization replays the left-looking updates in.
  std::vector<int> uPtr, uRow;
  std::vector<double> uVal;
  std::vector<double> uDiag;

  // Options::lowPrecision float32 mirrors of the factor values.  The double
  // arrays above are retained (refactorize() replays its left-looking
  // updates through them), but the triangular solves read only these, so
  // each solve moves half the factor-value bytes.  Empty in double mode.
  std::vector<float> lValF, uValF, uDiagF;

  void mirrorFactorsToFloat() {
    lValF.assign(lVal.begin(), lVal.end());
    uValF.assign(uVal.begin(), uVal.end());
    uDiagF.assign(uDiag.begin(), uDiag.end());
  }

  /// Factor-value bytes one triangular-solve pass reads (L + U + diagonal).
  [[nodiscard]] long long factorValueCount() const {
    return static_cast<long long>(lVal.size()) +
           static_cast<long long>(uVal.size()) +
           static_cast<long long>(uDiag.size());
  }
};

Factorization::Factorization() : impl_(new Impl) {}
Factorization::~Factorization() = default;
Factorization::Factorization(Factorization&&) noexcept = default;
Factorization& Factorization::operator=(Factorization&&) noexcept = default;

const Stats& Factorization::stats() const { return impl_->stats; }
int Factorization::order() const { return impl_->n; }

namespace {

/// Depth-first reach computation for one column (Gilbert-Peierls).
/// Nodes are original row indices; a node with pinv[r] >= 0 has children:
/// the row patterns of L column pinv[r].  Emits reached nodes in reverse
/// topological order into `topo` (so numeric updates can run front-to-back
/// after a reverse).
class Reach {
 public:
  explicit Reach(int n)
      : visited_(static_cast<std::size_t>(n), 0), stamp_(0) {}

  void begin() {
    ++stamp_;
    topo_.clear();
  }

  void dfs(int root, const std::vector<int>& pinv,
           const std::vector<std::vector<std::pair<int, double>>>& lCols) {
    if (visited_[static_cast<std::size_t>(root)] == stamp_) return;
    stack_.clear();
    stack_.push_back({root, 0});
    visited_[static_cast<std::size_t>(root)] = stamp_;
    while (!stack_.empty()) {
      auto& top = stack_.back();
      const int r = top.node;
      const int k = pinv[static_cast<std::size_t>(r)];
      bool descended = false;
      if (k >= 0) {
        const auto& col = lCols[static_cast<std::size_t>(k)];
        while (top.child < static_cast<int>(col.size())) {
          const int next = col[static_cast<std::size_t>(top.child)].first;
          ++top.child;
          if (visited_[static_cast<std::size_t>(next)] != stamp_) {
            visited_[static_cast<std::size_t>(next)] = stamp_;
            stack_.push_back({next, 0});
            descended = true;
            break;
          }
        }
      }
      if (!descended && (k < 0 || top.child >= static_cast<int>(
                                      lCols[static_cast<std::size_t>(k)].size()))) {
        topo_.push_back(r);
        stack_.pop_back();
      }
    }
  }

  /// Reached nodes, children-before-parents; reverse for update order.
  [[nodiscard]] std::vector<int>& topo() { return topo_; }
  [[nodiscard]] bool wasReached(int r) const {
    return visited_[static_cast<std::size_t>(r)] == stamp_;
  }

 private:
  struct Frame {
    int node;
    int child;
  };
  std::vector<int> visited_;
  int stamp_;
  std::vector<Frame> stack_;
  std::vector<int> topo_;
};

}  // namespace

Factorization Factorization::factorize(const CscMatrix& a,
                                       const Options& options) {
  a.check();
  LISI_CHECK(a.rows == a.cols, "SLU: matrix must be square");
  const int n = a.cols;

  gSymbolicFactorizations.fetch_add(1, std::memory_order_relaxed);
  lisi::obs::count("slu.factor.symbolic");
  lisi::obs::Span span("slu.factor.symbolic");
  Factorization fact;
  Impl& f = *fact.impl_;
  f.n = n;
  f.options = options;
  f.stats.n = n;
  f.stats.nnzA = a.nnz();
  f.aColPtr = a.colPtr;
  f.aRowIdx = a.rowIdx;
  f.q = computeOrdering(a, options.ordering);
  f.pinv.assign(static_cast<std::size_t>(n), -1);

  if (options.equilibrate) {
    f.rowScale.assign(static_cast<std::size_t>(n), 0.0);
    for (std::size_t k = 0; k < a.values.size(); ++k) {
      auto& s = f.rowScale[static_cast<std::size_t>(a.rowIdx[k])];
      s = std::max(s, std::abs(a.values[k]));
    }
    for (double& s : f.rowScale) {
      LISI_CHECK(s != 0.0, "SLU: structurally zero row");
      s = 1.0 / s;
    }
  }

  // Working factors as per-column (row, value) lists; rows are ORIGINAL row
  // indices during factorization and are renumbered to pivot positions at
  // the end.
  std::vector<std::vector<std::pair<int, double>>> lCols(
      static_cast<std::size_t>(n));
  std::vector<std::vector<std::pair<int, double>>> uCols(
      static_cast<std::size_t>(n));
  f.uDiag.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  Reach reach(n);

  for (int j = 0; j < n; ++j) {
    const int col = f.q[static_cast<std::size_t>(j)];
    // Symbolic step: reach of the column's pattern through finished L cols.
    reach.begin();
    for (int k = a.colPtr[static_cast<std::size_t>(col)];
         k < a.colPtr[static_cast<std::size_t>(col) + 1]; ++k) {
      reach.dfs(a.rowIdx[static_cast<std::size_t>(k)], f.pinv, lCols);
    }
    auto& topo = reach.topo();
    // Scatter the column of A (after symbolic, so fill positions stay 0).
    for (int k = a.colPtr[static_cast<std::size_t>(col)];
         k < a.colPtr[static_cast<std::size_t>(col) + 1]; ++k) {
      const int r = a.rowIdx[static_cast<std::size_t>(k)];
      const double scale =
          f.rowScale.empty() ? 1.0 : f.rowScale[static_cast<std::size_t>(r)];
      x[static_cast<std::size_t>(r)] += a.values[static_cast<std::size_t>(k)] * scale;
    }
    // Numeric updates in topological order (parents after children in topo_,
    // so walk it back to front).
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const int r = *it;
      const int k = f.pinv[static_cast<std::size_t>(r)];
      if (k < 0) continue;
      const double xr = x[static_cast<std::size_t>(r)];
      if (xr == 0.0) continue;
      for (const auto& [rr, lv] : lCols[static_cast<std::size_t>(k)]) {
        x[static_cast<std::size_t>(rr)] -= xr * lv;
      }
    }
    // Pivot among unpivoted reached rows.
    double maxAbs = 0.0;
    int pivotRow = -1;
    for (int r : topo) {
      if (f.pinv[static_cast<std::size_t>(r)] >= 0) continue;
      const double mag = std::abs(x[static_cast<std::size_t>(r)]);
      if (mag > maxAbs) {
        maxAbs = mag;
        pivotRow = r;
      }
    }
    LISI_CHECK(pivotRow >= 0 && maxAbs > 0.0,
               "SLU: matrix is singular (zero pivot column " +
                   std::to_string(col) + ")");
    // Threshold pivoting: prefer the diagonal when it is large enough.
    if (col != pivotRow && f.pinv[static_cast<std::size_t>(col)] < 0 &&
        reach.wasReached(col) &&
        std::abs(x[static_cast<std::size_t>(col)]) >=
            options.diagPivotThresh * maxAbs &&
        x[static_cast<std::size_t>(col)] != 0.0) {
      pivotRow = col;
    }
    if (pivotRow != col) ++f.stats.offDiagonalPivots;
    const double pivot = x[static_cast<std::size_t>(pivotRow)];
    f.uDiag[static_cast<std::size_t>(j)] = pivot;

    // Split reached rows into U (already pivoted) and L (below the pivot).
    for (int r : topo) {
      const double v = x[static_cast<std::size_t>(r)];
      const int k = f.pinv[static_cast<std::size_t>(r)];
      if (k >= 0) {
        if (v != 0.0) uCols[static_cast<std::size_t>(j)].emplace_back(k, v);
      } else if (r != pivotRow) {
        if (v != 0.0) {
          lCols[static_cast<std::size_t>(j)].emplace_back(r, v / pivot);
        }
      }
      x[static_cast<std::size_t>(r)] = 0.0;  // reset the work array
    }
    f.pinv[static_cast<std::size_t>(pivotRow)] = j;
  }

  // Renumber L's rows from original indices to pivot positions and flatten.
  f.lPtr.assign(static_cast<std::size_t>(n) + 1, 0);
  f.uPtr.assign(static_cast<std::size_t>(n) + 1, 0);
  long long nnzL = n;  // unit diagonal
  long long nnzU = n;  // diagonal
  for (int j = 0; j < n; ++j) {
    nnzL += static_cast<long long>(lCols[static_cast<std::size_t>(j)].size());
    nnzU += static_cast<long long>(uCols[static_cast<std::size_t>(j)].size());
  }
  f.lRow.reserve(static_cast<std::size_t>(nnzL - n));
  f.lVal.reserve(static_cast<std::size_t>(nnzL - n));
  f.uRow.reserve(static_cast<std::size_t>(nnzU - n));
  f.uVal.reserve(static_cast<std::size_t>(nnzU - n));
  for (int j = 0; j < n; ++j) {
    for (const auto& [r, v] : lCols[static_cast<std::size_t>(j)]) {
      f.lRow.push_back(f.pinv[static_cast<std::size_t>(r)]);
      f.lVal.push_back(v);
    }
    f.lPtr[static_cast<std::size_t>(j) + 1] = static_cast<int>(f.lRow.size());
    // Sort each U column by pivot row: the solves are order-independent,
    // and refactorize() needs increasing row order (a topological order of
    // the triangular dependencies) to replay the updates.
    auto& uc = uCols[static_cast<std::size_t>(j)];
    std::sort(uc.begin(), uc.end());
    for (const auto& [k, v] : uc) {
      f.uRow.push_back(k);
      f.uVal.push_back(v);
    }
    f.uPtr[static_cast<std::size_t>(j) + 1] = static_cast<int>(f.uRow.size());
  }
  // Pivot growth: max|U| over max|A| (with row scaling applied).
  double maxA = 0.0;
  for (std::size_t k = 0; k < a.values.size(); ++k) {
    const double scale =
        f.rowScale.empty() ? 1.0
                           : f.rowScale[static_cast<std::size_t>(a.rowIdx[k])];
    maxA = std::max(maxA, std::abs(a.values[k] * scale));
  }
  double maxU = 0.0;
  for (double v : f.uDiag) maxU = std::max(maxU, std::abs(v));
  for (double v : f.uVal) maxU = std::max(maxU, std::abs(v));
  f.stats.pivotGrowth = maxA > 0.0 ? maxU / maxA : 0.0;

  f.stats.nnzL = nnzL;
  f.stats.nnzU = nnzU;
  f.stats.fillRatio =
      f.stats.nnzA > 0
          ? static_cast<double>(nnzL + nnzU - n) / static_cast<double>(f.stats.nnzA)
          : 0.0;
  if (options.lowPrecision) f.mirrorFactorsToFloat();
  return fact;
}

void Factorization::refactorize(const CscMatrix& a) {
  lisi::obs::Span span("slu.factor.numeric_refresh");
  Impl& f = *impl_;
  a.check();
  LISI_CHECK(a.rows == f.n && a.cols == f.n,
             "SLU refactorize: matrix order mismatch");
  LISI_CHECK(a.colPtr == f.aColPtr && a.rowIdx == f.aRowIdx,
             "SLU refactorize: sparsity pattern differs from the factorized "
             "matrix (SamePattern contract)");
  const auto n = static_cast<std::size_t>(f.n);

  // Row equilibration factors depend on values; recompute over the fixed
  // pattern.
  if (f.options.equilibrate) {
    std::fill(f.rowScale.begin(), f.rowScale.end(), 0.0);
    for (std::size_t k = 0; k < a.values.size(); ++k) {
      auto& s = f.rowScale[static_cast<std::size_t>(a.rowIdx[k])];
      s = std::max(s, std::abs(a.values[k]));
    }
    for (double& s : f.rowScale) {
      LISI_CHECK(s != 0.0, "SLU refactorize: structurally zero row");
      s = 1.0 / s;
    }
  }

  // Left-looking numeric replay in pivot coordinates: the row permutation
  // (pinv), column ordering (q), and the L/U patterns are frozen, so each
  // column is one sparse triangular solve against the already-refreshed
  // earlier columns.  U entries are sorted by row (see factorize), which is
  // a valid topological order for the updates.
  std::vector<double> x(n, 0.0);
  for (int j = 0; j < f.n; ++j) {
    const int col = f.q[static_cast<std::size_t>(j)];
    for (int t = a.colPtr[static_cast<std::size_t>(col)];
         t < a.colPtr[static_cast<std::size_t>(col) + 1]; ++t) {
      const int r = a.rowIdx[static_cast<std::size_t>(t)];
      const double scale =
          f.rowScale.empty() ? 1.0 : f.rowScale[static_cast<std::size_t>(r)];
      x[static_cast<std::size_t>(f.pinv[static_cast<std::size_t>(r)])] +=
          a.values[static_cast<std::size_t>(t)] * scale;
    }
    for (int t = f.uPtr[static_cast<std::size_t>(j)];
         t < f.uPtr[static_cast<std::size_t>(j) + 1]; ++t) {
      const int i = f.uRow[static_cast<std::size_t>(t)];
      const double uij = x[static_cast<std::size_t>(i)];
      f.uVal[static_cast<std::size_t>(t)] = uij;
      if (uij == 0.0) continue;
      for (int s = f.lPtr[static_cast<std::size_t>(i)];
           s < f.lPtr[static_cast<std::size_t>(i) + 1]; ++s) {
        x[static_cast<std::size_t>(f.lRow[static_cast<std::size_t>(s)])] -=
            uij * f.lVal[static_cast<std::size_t>(s)];
      }
    }
    const double pivot = x[static_cast<std::size_t>(j)];
    LISI_CHECK(pivot != 0.0,
               "SLU refactorize: zero pivot at position " + std::to_string(j) +
                   " under the frozen pivot sequence; a full factorize() is "
                   "required");
    f.uDiag[static_cast<std::size_t>(j)] = pivot;
    for (int t = f.lPtr[static_cast<std::size_t>(j)];
         t < f.lPtr[static_cast<std::size_t>(j) + 1]; ++t) {
      f.lVal[static_cast<std::size_t>(t)] =
          x[static_cast<std::size_t>(f.lRow[static_cast<std::size_t>(t)])] /
          pivot;
    }
    // Clear the whole work column: update writes may touch positions the
    // (numerically pruned) stored pattern misses, and stale values must not
    // leak into later columns.
    std::fill(x.begin(), x.end(), 0.0);
  }

  // Refresh the value-dependent diagnostics; the symbolic stats (fill,
  // permutation quality) are unchanged by construction.
  double maxA = 0.0;
  for (std::size_t k = 0; k < a.values.size(); ++k) {
    const double scale =
        f.rowScale.empty() ? 1.0
                           : f.rowScale[static_cast<std::size_t>(a.rowIdx[k])];
    maxA = std::max(maxA, std::abs(a.values[k] * scale));
  }
  double maxU = 0.0;
  for (double v : f.uDiag) maxU = std::max(maxU, std::abs(v));
  for (double v : f.uVal) maxU = std::max(maxU, std::abs(v));
  f.stats.pivotGrowth = maxA > 0.0 ? maxU / maxA : 0.0;
  if (f.options.lowPrecision) f.mirrorFactorsToFloat();
  gNumericRefactorizations.fetch_add(1, std::memory_order_relaxed);
  lisi::obs::count("slu.factor.numeric_refresh");
}

void Factorization::solve(std::span<const double> b,
                          std::span<double> x) const {
  solveMany(b, x, 1);
}

void Factorization::solveTranspose(std::span<const double> b,
                                   std::span<double> x) const {
  // A = D^{-1} P' L U Q', so A' = Q U' L' P D^{-1}:
  //   c = Q' b  ->  solve U' y = c  ->  solve L' z = y  ->  x = D P' z.
  const Impl& f = *impl_;
  const auto n = static_cast<std::size_t>(f.n);
  LISI_CHECK(b.size() == n && x.size() == n,
             "SLU solveTranspose: size mismatch");
  std::vector<double> c(n);
  // c = Q' b: c[k] = b[q[k]].
  for (std::size_t k = 0; k < n; ++k) {
    c[k] = b[static_cast<std::size_t>(f.q[k])];
  }
  // Forward solve U' y = c (U is upper triangular by column => U' is lower
  // triangular by row; column-of-U = row-of-U').
  for (std::size_t k = 0; k < n; ++k) {
    double acc = c[k];
    for (int t = f.uPtr[k]; t < f.uPtr[k + 1]; ++t) {
      acc -= f.uVal[static_cast<std::size_t>(t)] *
             c[static_cast<std::size_t>(f.uRow[static_cast<std::size_t>(t)])];
    }
    c[k] = acc / f.uDiag[k];
  }
  // Backward solve L' z = y (unit diagonal).
  for (int k = static_cast<int>(n) - 1; k >= 0; --k) {
    double acc = c[static_cast<std::size_t>(k)];
    for (int t = f.lPtr[static_cast<std::size_t>(k)];
         t < f.lPtr[static_cast<std::size_t>(k) + 1]; ++t) {
      acc -= f.lVal[static_cast<std::size_t>(t)] *
             c[static_cast<std::size_t>(f.lRow[static_cast<std::size_t>(t)])];
    }
    c[static_cast<std::size_t>(k)] = acc;
  }
  // x = D P' z: x[r] = scale[r] * z[pinv[r]].
  for (std::size_t r = 0; r < n; ++r) {
    const double scale = f.rowScale.empty() ? 1.0 : f.rowScale[r];
    x[r] = scale * c[static_cast<std::size_t>(f.pinv[r])];
  }
}

void Factorization::solveMany(std::span<const double> b, std::span<double> x,
                              int numRhs) const {
  const Impl& f = *impl_;
  const auto n = static_cast<std::size_t>(f.n);
  LISI_CHECK(numRhs >= 1, "SLU solve: numRhs must be >= 1");
  LISI_CHECK(b.size() == n * static_cast<std::size_t>(numRhs),
             "SLU solve: b size mismatch");
  LISI_CHECK(x.size() == b.size(), "SLU solve: x size mismatch");

  if (!f.uDiagF.empty()) {
    // Low-precision path: identical solve structure, but factor values and
    // the work vector are float32 (the float32 rounding of the solution is
    // what iterative refinement corrects).  The right-hand side is cast on
    // entry and the solution on exit.
    std::vector<float> c(n);
    for (int rhs = 0; rhs < numRhs; ++rhs) {
      std::span<const double> bk =
          b.subspan(n * static_cast<std::size_t>(rhs), n);
      std::span<double> xk = x.subspan(n * static_cast<std::size_t>(rhs), n);
      for (std::size_t r = 0; r < n; ++r) {
        const double scale = f.rowScale.empty() ? 1.0 : f.rowScale[r];
        c[static_cast<std::size_t>(f.pinv[r])] =
            static_cast<float>(bk[r] * scale);
      }
      for (std::size_t k = 0; k < n; ++k) {
        const float yk = c[k];
        if (yk == 0.0f) continue;
        for (int t = f.lPtr[k]; t < f.lPtr[k + 1]; ++t) {
          c[static_cast<std::size_t>(f.lRow[static_cast<std::size_t>(t)])] -=
              yk * f.lValF[static_cast<std::size_t>(t)];
        }
      }
      for (int k = static_cast<int>(n) - 1; k >= 0; --k) {
        const float zk = c[static_cast<std::size_t>(k)] /
                         f.uDiagF[static_cast<std::size_t>(k)];
        c[static_cast<std::size_t>(k)] = zk;
        if (zk == 0.0f) continue;
        for (int t = f.uPtr[static_cast<std::size_t>(k)];
             t < f.uPtr[static_cast<std::size_t>(k) + 1]; ++t) {
          c[static_cast<std::size_t>(f.uRow[static_cast<std::size_t>(t)])] -=
              zk * f.uValF[static_cast<std::size_t>(t)];
        }
      }
      for (std::size_t k = 0; k < n; ++k) {
        xk[static_cast<std::size_t>(f.q[k])] =
            static_cast<double>(c[k]);
      }
      lisi::prec::noteLowApply();
    }
    lisi::prec::noteBytesLow(4LL * f.factorValueCount() * numRhs);
    return;
  }

  std::vector<double> c(n);
  for (int rhs = 0; rhs < numRhs; ++rhs) {
    std::span<const double> bk = b.subspan(n * static_cast<std::size_t>(rhs), n);
    std::span<double> xk = x.subspan(n * static_cast<std::size_t>(rhs), n);
    // c = P D b  (apply row scaling, then the row permutation).
    for (std::size_t r = 0; r < n; ++r) {
      const double scale = f.rowScale.empty() ? 1.0 : f.rowScale[r];
      c[static_cast<std::size_t>(f.pinv[r])] = bk[r] * scale;
    }
    // Forward solve L y = c (unit diagonal, column-oriented).
    for (std::size_t k = 0; k < n; ++k) {
      const double yk = c[k];
      if (yk == 0.0) continue;
      for (int t = f.lPtr[k]; t < f.lPtr[k + 1]; ++t) {
        c[static_cast<std::size_t>(f.lRow[static_cast<std::size_t>(t)])] -=
            yk * f.lVal[static_cast<std::size_t>(t)];
      }
    }
    // Backward solve U z = y (column-oriented).
    for (int k = static_cast<int>(n) - 1; k >= 0; --k) {
      const double zk = c[static_cast<std::size_t>(k)] /
                        f.uDiag[static_cast<std::size_t>(k)];
      c[static_cast<std::size_t>(k)] = zk;
      if (zk == 0.0) continue;
      for (int t = f.uPtr[static_cast<std::size_t>(k)];
           t < f.uPtr[static_cast<std::size_t>(k) + 1]; ++t) {
        c[static_cast<std::size_t>(f.uRow[static_cast<std::size_t>(t)])] -=
            zk * f.uVal[static_cast<std::size_t>(t)];
      }
    }
    // Undo the column permutation: x[q[k]] = z[k].
    for (std::size_t k = 0; k < n; ++k) {
      xk[static_cast<std::size_t>(f.q[k])] = c[k];
    }
  }
  lisi::prec::noteBytesHigh(8LL * f.factorValueCount() * numRhs);
}

int Factorization::solveRefined(const CscMatrix& a, std::span<const double> b,
                                std::span<double> x, int maxSteps) const {
  const auto n = static_cast<std::size_t>(impl_->n);
  LISI_CHECK(a.rows == impl_->n && a.cols == impl_->n,
             "solveRefined: matrix order mismatch");
  LISI_CHECK(b.size() == n && x.size() == n, "solveRefined: size mismatch");
  solve(b, x);
  const double bnorm = lisi::sparse::norm2(b);
  if (bnorm == 0.0) return 0;
  std::vector<double> r(n), d(n);
  int steps = 0;
  double prev = std::numeric_limits<double>::infinity();
  for (; steps < maxSteps; ++steps) {
    lisi::sparse::spmv(a, std::span<const double>(x), std::span<double>(r));
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    const double rnorm = lisi::sparse::norm2(std::span<const double>(r));
    // Stop at machine-precision-level residuals or stagnation.
    if (rnorm <= 1e-16 * bnorm || rnorm >= 0.5 * prev) break;
    prev = rnorm;
    solve(std::span<const double>(r), std::span<double>(d));
    for (std::size_t i = 0; i < n; ++i) x[i] += d[i];
  }
  lisi::prec::noteRefineSweeps(steps);
  return steps;
}

void solve(const CscMatrix& a, std::span<const double> b, std::span<double> x,
           const Options& options, Stats* statsOut) {
  const Factorization fact = Factorization::factorize(a, options);
  fact.solve(b, x);
  if (statsOut) *statsOut = fact.stats();
}

}  // namespace slu
