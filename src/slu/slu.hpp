// SLU — a sequential sparse direct LU solver in the style of SuperLU.
//
// API style follows SuperLU's phase separation: an options struct, a
// factorize step (the dgstrf analogue, here Gilbert-Peierls left-looking LU
// with threshold partial pivoting and an optional fill-reducing column
// ordering), a triangular solve step (dgstrs), and a simple driver (dgssv).
// The factor object is reusable across right-hand sides — §5.2 use case (b)
// of the paper: "Precompute reused objects such as LU factorization...".
//
// Native input format is CSC (column-compressed), as in SuperLU; LISI's
// SluSolverComponent converts whatever the application supplies.
//
// Parallel use: the package itself is sequential (like sequential SuperLU).
// The LISI adapter gathers the distributed system to rank 0, factors and
// solves there, and scatters the solution — a documented simplification of
// SuperLU_DIST that preserves the interface contract (block rows in, block
// rows out).
#pragma once

#include <memory>
#include <span>

#include "sparse/formats.hpp"

namespace slu {

/// Fill-reducing column orderings (SuperLU's permc_spec analogue).
enum class Ordering {
  kNatural,  ///< no reordering
  kRcm,      ///< reverse Cuthill-McKee on the symmetrized pattern
  kMinDeg,   ///< greedy minimum-degree on the symmetrized pattern
};

/// Factorization options (superlu_options_t analogue).
struct Options {
  Ordering ordering = Ordering::kRcm;
  /// Threshold partial pivoting: the diagonal candidate is kept when
  /// |a_diag| >= diagPivotThresh * max|column|.  1.0 = classic partial
  /// pivoting, 0.0 = always prefer the diagonal (no pivoting).
  double diagPivotThresh = 1.0;
  /// Scale rows to unit infinity norm before factoring.
  bool equilibrate = false;
  /// Mixed-precision factors: the numeric factorization still pivots and
  /// eliminates in float64 (pivot choices must not depend on the storage
  /// precision), but the triangular factors are mirrored into float32 and
  /// every solve applies them from the float storage — half the value
  /// bandwidth per triangular solve.  The resulting solutions carry
  /// float32-level error; wrap them in solveRefined (float64 residuals
  /// against the original matrix) to recover float64 accuracy.
  bool lowPrecision = false;
};

/// Factorization statistics (SuperLUStat_t analogue).
struct Stats {
  int n = 0;
  long long nnzA = 0;
  long long nnzL = 0;  ///< including unit diagonal
  long long nnzU = 0;  ///< including diagonal
  double fillRatio = 0.0;
  int offDiagonalPivots = 0;  ///< rows where pivoting left the diagonal
  /// Pivot growth max|U| / max|A| (after any equilibration); values far
  /// above 1 signal an unstable factorization (SuperLU reports the same
  /// diagnostic from dgssvx).
  double pivotGrowth = 0.0;
};

/// An LU factorization P * D * A * Q = L * U (D = optional row scaling).
/// Create with factorize(); solve() may be called any number of times.
class Factorization {
 public:
  ~Factorization();
  Factorization(Factorization&&) noexcept;
  Factorization& operator=(Factorization&&) noexcept;
  Factorization(const Factorization&) = delete;
  Factorization& operator=(const Factorization&) = delete;

  /// Factor a square CSC matrix.  Throws lisi::Error on structural or
  /// numerical singularity.  This is the full path: symbolic analysis
  /// (ordering + elimination structure) fused with the numeric
  /// factorization.
  static Factorization factorize(const lisi::sparse::CscMatrix& a,
                                 const Options& options = {});

  /// Numeric-only refactorization over the SAME sparsity pattern —
  /// SuperLU's SamePattern_SameRowPerm: the column ordering, the row
  /// permutation, and the elimination structure of the existing factors are
  /// all reused, and only the numeric left-looking updates are replayed
  /// (values overwritten in place, no symbolic work, no allocation beyond
  /// the dense work column).  `a` must carry exactly the pattern this
  /// object was factorized from; a mismatch throws.  Because the pivot
  /// sequence is frozen, a pivot that becomes exactly zero throws
  /// lisi::Error — callers fall back to a full factorize().  Positions that
  /// were exactly zero in the originally factorized matrix are treated as
  /// structurally absent (the stored-factor-pattern contract, as in
  /// SuperLU).
  void refactorize(const lisi::sparse::CscMatrix& a);

  /// Solve A x = b for one right-hand side.
  void solve(std::span<const double> b, std::span<double> x) const;

  /// Solve A' x = b (transpose solve, SuperLU's TRANS option).
  void solveTranspose(std::span<const double> b, std::span<double> x) const;

  /// Solve for several right-hand sides stored contiguously
  /// (column-major: rhs k occupies [k*n, (k+1)*n)).
  void solveMany(std::span<const double> b, std::span<double> x,
                 int numRhs) const;

  /// Solve with iterative refinement (SuperLU's dgssvx refinement): up to
  /// `maxSteps` refinement sweeps using the original matrix `a`; returns
  /// the number of steps taken.  Improves accuracy on ill-conditioned
  /// systems at the cost of one SpMV + one triangular solve per step.
  int solveRefined(const lisi::sparse::CscMatrix& a, std::span<const double> b,
                   std::span<double> x, int maxSteps = 3) const;

  [[nodiscard]] const Stats& stats() const;
  [[nodiscard]] int order() const;

 private:
  Factorization();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot driver (dgssv analogue): factor + solve.
void solve(const lisi::sparse::CscMatrix& a, std::span<const double> b,
           std::span<double> x, const Options& options = {},
           Stats* statsOut = nullptr);

/// Compute a fill-reducing permutation of the columns of `a` (exposed for
/// tests and for reuse across same-pattern factorizations).
std::vector<int> computeOrdering(const lisi::sparse::CscMatrix& a,
                                 Ordering ordering);

// ---- Reuse observability (process-wide, across MiniMPI rank-threads) ----

/// Number of full factorizations (symbolic analysis + numerics) since
/// process start.  Tests assert a zero delta across a same-pattern re-setup
/// to prove the symbolic object was reused.
[[nodiscard]] long long symbolicFactorizations();

/// Number of numeric-only refactorize() calls since process start.
[[nodiscard]] long long numericRefactorizations();

}  // namespace slu
