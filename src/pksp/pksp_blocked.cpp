// Blocked (multi-RHS) Krylov kernels: CG and GMRES(m) over a block of
// right-hand sides advanced in lockstep.
//
// Why a dedicated path: solving k systems with the same operator one after
// another pays k halo exchanges per "iteration column" and k latency-bound
// allreduces per reduction point.  Advancing all k lanes together turns
// that into ONE DistCsrMatrix::spmvMulti exchange (k values per ghost
// index, same message count as a single spmv) and ONE fused allreduce per
// reduction point (k lanes in a single distDotsBegin batch).  On small
// systems, where the per-solve cost is dominated by synchronization, this
// is where the service layer's batching win comes from.
//
// Numerics: every lane runs its own textbook recurrence on its own data —
// lanes share only the *timing* of communication, never values.  Each
// spmvMulti lane and each fused-dot lane is bitwise identical to its
// single-vector counterpart, so a lane's iterates are bitwise identical to
// the same solve run alone through runCg/runGmres (tests assert this).
// Lanes finish independently (converge, break down, hit maxits): a
// finished lane freezes — it drops out of the dot batches and contributes
// zero columns to the block matvec — while the survivors continue.  All
// freeze decisions derive from globally reduced values, so every rank
// freezes the same lanes at the same step and the collective sequence
// stays consistent without padding.
#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "pksp/pksp_internal.hpp"
#include "sparse/dist_csr.hpp"

namespace pksp::detail {
namespace {

using lisi::comm::Comm;
using lisi::sparse::DistCsrMatrix;
using lisi::sparse::DotArgs;
using lisi::sparse::distDotsBegin;
using lisi::sparse::distDotsEnd;
using lisi::sparse::PendingDots;

using Vec = std::vector<double>;

bool isBad(double v) { return std::isnan(v) || std::isinf(v); }

/// Convergence bookkeeping per lane (same criterion as pksp_krylov.cpp).
struct Monitor {
  double target = 0.0;
  double atol = 0.0;
  void start(double z0, const Tolerances& tol) {
    target = tol.rtol * z0;
    atol = tol.atol;
  }
  [[nodiscard]] PkspConvergedReason test(double znorm) const {
    if (isBad(znorm)) return PKSP_DIVERGED_NAN;
    if (znorm <= atol) return PKSP_CONVERGED_ATOL;
    if (znorm <= target) return PKSP_CONVERGED_RTOL;
    return PKSP_ITERATING;
  }
};

/// Lane `v` of a vector-major block over `n` local rows.
std::span<double> lane(Vec& a, std::size_t v, std::size_t n) {
  return std::span<double>(a).subspan(v * n, n);
}
std::span<double> lane(std::span<double> a, std::size_t v, std::size_t n) {
  return a.subspan(v * n, n);
}

}  // namespace

std::vector<SolveReport> runBlockedCg(const Comm& comm, const DistCsrMatrix& a,
                                      const Preconditioner& m,
                                      std::span<const double> b,
                                      std::span<double> x, int nRhs,
                                      const Tolerances& tol) {
  const auto n = static_cast<std::size_t>(a.localRows());
  const auto nv = static_cast<std::size_t>(nRhs);
  Vec r(n * nv), z(n * nv), p(n * nv, 0.0), ap(n * nv);
  std::vector<SolveReport> reps(nv);
  std::vector<Monitor> mons(nv);
  std::vector<double> rz(nv, 0.0);
  std::vector<char> active(nv, 0);

  // R = B - A X: one halo exchange seeds every lane's residual.
  a.spmvMulti(x, std::span<double>(r), nRhs);
  for (std::size_t i = 0; i < n * nv; ++i) r[i] = b[i] - r[i];
  for (std::size_t v = 0; v < nv; ++v) {
    m.apply(lane(r, v, n), lane(z, v, n));
  }
  // <z,z> and <r,z> for every lane share one fused allreduce.
  std::vector<DotArgs> dots;
  dots.reserve(2 * nv);
  for (std::size_t v = 0; v < nv; ++v) {
    dots.push_back({lane(z, v, n), lane(z, v, n)});
    dots.push_back({lane(r, v, n), lane(z, v, n)});
  }
  PendingDots pending = distDotsBegin(comm, dots);
  const std::span<const double> init = distDotsEnd(pending);
  double maxZ = 0.0;
  for (std::size_t v = 0; v < nv; ++v) {
    const double znorm = std::sqrt(init[2 * v]);
    rz[v] = init[2 * v + 1];
    mons[v].start(znorm, tol);
    maxZ = std::max(maxZ, znorm);
    reps[v].residualNorm = znorm;
    reps[v].reason = mons[v].test(znorm);
    if (reps[v].reason != PKSP_ITERATING) {
      if (reps[v].reason != PKSP_DIVERGED_NAN && znorm == 0.0) {
        reps[v].reason = PKSP_CONVERGED_ATOL;
      }
      continue;  // lane done before iterating; its p lane stays zero
    }
    active[v] = 1;
    std::copy(lane(z, v, n).begin(), lane(z, v, n).end(),
              lane(p, v, n).begin());
  }
  if (tol.monitor) tol.monitor(0, maxZ);

  const auto freeze = [&](std::size_t v) {
    active[v] = 0;
    std::fill(lane(p, v, n).begin(), lane(p, v, n).end(), 0.0);
  };

  for (int it = 1; it <= tol.maxits; ++it) {
    std::vector<std::size_t> lanes;
    for (std::size_t v = 0; v < nv; ++v) {
      if (active[v]) lanes.push_back(v);
    }
    if (lanes.empty()) return reps;

    // Frozen lanes hold zero search directions, so the full-block matvec
    // stays one exchange without perturbing anyone.
    a.spmvMulti(std::span<const double>(p), std::span<double>(ap), nRhs);
    dots.clear();
    for (const std::size_t v : lanes) {
      dots.push_back({lane(p, v, n), lane(ap, v, n)});
    }
    pending = distDotsBegin(comm, dots);
    const std::span<const double> paps = distDotsEnd(pending);
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      const std::size_t v = lanes[k];
      const double pap = paps[k];
      if (pap == 0.0 || isBad(pap)) {
        reps[v].reason = PKSP_DIVERGED_BREAKDOWN;
        reps[v].iterations = it - 1;
        freeze(v);
        continue;
      }
      const double alpha = rz[v] / pap;
      std::span<double> xv = lane(x, v, n);
      std::span<double> rv = lane(r, v, n);
      const std::span<const double> pv = lane(p, v, n);
      const std::span<const double> apv = lane(ap, v, n);
      for (std::size_t i = 0; i < n; ++i) {
        xv[i] += alpha * pv[i];
        rv[i] -= alpha * apv[i];
      }
    }
    lanes.erase(std::remove_if(lanes.begin(), lanes.end(),
                               [&](std::size_t v) { return !active[v]; }),
                lanes.end());
    if (lanes.empty()) return reps;

    for (const std::size_t v : lanes) {
      m.apply(lane(r, v, n), lane(z, v, n));
    }
    dots.clear();
    for (const std::size_t v : lanes) {
      dots.push_back({lane(z, v, n), lane(z, v, n)});
      dots.push_back({lane(r, v, n), lane(z, v, n)});
    }
    pending = distDotsBegin(comm, dots);
    const std::span<const double> zzrz = distDotsEnd(pending);
    maxZ = 0.0;
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      const std::size_t v = lanes[k];
      const double znorm = std::sqrt(zzrz[2 * k]);
      maxZ = std::max(maxZ, znorm);
      reps[v].iterations = it;
      reps[v].residualNorm = znorm;
      reps[v].reason = mons[v].test(znorm);
      if (reps[v].reason != PKSP_ITERATING) {
        freeze(v);
        continue;
      }
      const double rzNew = zzrz[2 * k + 1];
      if (rz[v] == 0.0) {
        reps[v].reason = PKSP_DIVERGED_BREAKDOWN;
        freeze(v);
        continue;
      }
      const double beta = rzNew / rz[v];
      rz[v] = rzNew;
      std::span<double> pv = lane(p, v, n);
      const std::span<const double> zv = lane(z, v, n);
      for (std::size_t i = 0; i < n; ++i) pv[i] = zv[i] + beta * pv[i];
    }
    if (tol.monitor) tol.monitor(it, maxZ);
  }
  for (std::size_t v = 0; v < nv; ++v) {
    if (active[v]) reps[v].reason = PKSP_DIVERGED_ITS;
  }
  return reps;
}

std::vector<SolveReport> runBlockedGmres(const Comm& comm,
                                         const DistCsrMatrix& aMat,
                                         const Preconditioner& m,
                                         std::span<const double> b,
                                         std::span<double> x, int nRhs,
                                         const Tolerances& tol, int restart) {
  const auto n = static_cast<std::size_t>(aMat.localRows());
  const auto nv = static_cast<std::size_t>(nRhs);
  const int mr = std::max(1, restart);
  const auto mru = static_cast<std::size_t>(mr);

  std::vector<SolveReport> reps(nv);
  std::vector<Monitor> mons(nv);
  std::vector<int> its(nv, 0);         // per-lane iteration count (maxits cap)
  std::vector<char> done(nv, 0);       // lane fully finished (any reason)

  Vec r(n * nv), blockIn(n * nv), w(n * nv), wz(n * nv);
  // Per-lane Krylov basis and Hessenberg factors (identical shapes to the
  // single-RHS runGmres so the per-lane arithmetic matches it exactly).
  std::vector<std::vector<Vec>> basis(
      nv, std::vector<Vec>(mru + 1, Vec(n)));
  std::vector<std::vector<Vec>> h(
      nv, std::vector<Vec>(mru + 1, Vec(mru, 0.0)));
  std::vector<Vec> cs(nv, Vec(mru, 0.0));
  std::vector<Vec> sn(nv, Vec(mru, 0.0));
  std::vector<Vec> g(nv, Vec(mru + 1, 0.0));

  std::vector<DotArgs> dots;
  bool first = true;

  while (true) {
    std::vector<std::size_t> running;
    for (std::size_t v = 0; v < nv; ++v) {
      if (!done[v]) running.push_back(v);
    }
    if (running.empty()) return reps;

    // ---- cycle start: preconditioned residual of every running lane ----
    aMat.spmvMulti(std::span<const double>(x), std::span<double>(r), nRhs);
    for (std::size_t i = 0; i < n * nv; ++i) r[i] = b[i] - r[i];
    for (const std::size_t v : running) {
      m.apply(lane(r, v, n), lane(wz, v, n));
    }
    dots.clear();
    for (const std::size_t v : running) {
      dots.push_back({lane(wz, v, n), lane(wz, v, n)});
    }
    PendingDots pending = distDotsBegin(comm, dots);
    const std::span<const double> zz = distDotsEnd(pending);
    std::vector<double> beta(nv, 0.0);
    double maxBeta = 0.0;
    for (std::size_t k = 0; k < running.size(); ++k) {
      const std::size_t v = running[k];
      beta[v] = std::sqrt(zz[k]);
      maxBeta = std::max(maxBeta, beta[v]);
      if (first) {
        mons[v].start(beta[v], tol);
        reps[v].residualNorm = beta[v];
        const PkspConvergedReason early = mons[v].test(beta[v]);
        if (early != PKSP_ITERATING) {
          reps[v].reason = early;
          done[v] = 1;
          continue;
        }
      }
      if (isBad(beta[v])) {
        reps[v].reason = PKSP_DIVERGED_NAN;
        done[v] = 1;
      } else if (beta[v] == 0.0) {
        reps[v].reason = PKSP_CONVERGED_ATOL;
        done[v] = 1;
      }
    }
    if (first && tol.monitor) tol.monitor(0, maxBeta);
    first = false;
    running.erase(std::remove_if(running.begin(), running.end(),
                                 [&](std::size_t v) { return done[v] != 0; }),
                  running.end());
    if (running.empty()) return reps;

    // Seed each running lane's cycle; lanes freeze out of the cycle as they
    // converge, hit a lucky breakdown, or exhaust their iteration budget.
    std::vector<char> inCycle(nv, 0);
    std::vector<int> jTaken(nv, 0);
    std::vector<PkspConvergedReason> cycleReason(nv, PKSP_ITERATING);
    std::vector<char> noUpdate(nv, 0);
    for (const std::size_t v : running) {
      inCycle[v] = 1;
      const std::span<const double> zv = lane(wz, v, n);
      for (std::size_t i = 0; i < n; ++i) basis[v][0][i] = zv[i] / beta[v];
      std::fill(g[v].begin(), g[v].end(), 0.0);
      g[v][0] = beta[v];
    }

    for (int j = 0; j < mr; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      std::vector<std::size_t> stepLanes;
      for (const std::size_t v : running) {
        if (inCycle[v] && its[v] < tol.maxits) stepLanes.push_back(v);
      }
      if (stepLanes.empty()) break;

      // Block matvec over the j-th basis vectors; lanes not stepping
      // contribute zero columns so the exchange count stays one.
      std::fill(blockIn.begin(), blockIn.end(), 0.0);
      for (const std::size_t v : stepLanes) {
        ++its[v];
        ++jTaken[v];
        std::copy(basis[v][ju].begin(), basis[v][ju].end(),
                  lane(blockIn, v, n).begin());
      }
      aMat.spmvMulti(std::span<const double>(blockIn), std::span<double>(w),
                     nRhs);
      for (const std::size_t v : stepLanes) {
        m.apply(lane(w, v, n), lane(wz, v, n));
      }
      // Modified Gram-Schmidt: the per-column dot fuses across lanes (the
      // i-recurrence itself stays sequential, exactly as single-RHS MGS).
      for (int i = 0; i <= j; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        dots.clear();
        for (const std::size_t v : stepLanes) {
          dots.push_back({lane(wz, v, n), std::span<const double>(basis[v][iu])});
        }
        pending = distDotsBegin(comm, dots);
        const std::span<const double> hs = distDotsEnd(pending);
        for (std::size_t k = 0; k < stepLanes.size(); ++k) {
          const std::size_t v = stepLanes[k];
          const double hij = hs[k];
          h[v][iu][ju] = hij;
          std::span<double> wzv = lane(wz, v, n);
          for (std::size_t t = 0; t < n; ++t) wzv[t] -= hij * basis[v][iu][t];
        }
      }
      dots.clear();
      for (const std::size_t v : stepLanes) {
        dots.push_back({lane(wz, v, n), lane(wz, v, n)});
      }
      pending = distDotsBegin(comm, dots);
      const std::span<const double> hn = distDotsEnd(pending);

      int maxIts = 0;
      double maxResid = 0.0;
      for (std::size_t k = 0; k < stepLanes.size(); ++k) {
        const std::size_t v = stepLanes[k];
        const double hnext = std::sqrt(hn[k]);
        h[v][ju + 1][ju] = hnext;
        if (isBad(hnext)) {
          reps[v].reason = PKSP_DIVERGED_NAN;
          reps[v].iterations = its[v];
          done[v] = 1;
          inCycle[v] = 0;
          noUpdate[v] = 1;
          continue;
        }
        const bool luckyBreakdown = hnext <= 1e-300;
        if (!luckyBreakdown) {
          const std::span<const double> wzv = lane(wz, v, n);
          for (std::size_t t = 0; t < n; ++t) {
            basis[v][ju + 1][t] = wzv[t] / hnext;
          }
        }
        for (int i = 0; i < j; ++i) {
          const auto iu = static_cast<std::size_t>(i);
          const double t =
              cs[v][iu] * h[v][iu][ju] + sn[v][iu] * h[v][iu + 1][ju];
          h[v][iu + 1][ju] =
              -sn[v][iu] * h[v][iu][ju] + cs[v][iu] * h[v][iu + 1][ju];
          h[v][iu][ju] = t;
        }
        const double hjj = h[v][ju][ju];
        const double denom = std::sqrt(hjj * hjj + hnext * hnext);
        if (denom == 0.0) {
          reps[v].reason = PKSP_DIVERGED_BREAKDOWN;
          reps[v].iterations = its[v];
          done[v] = 1;
          inCycle[v] = 0;
          noUpdate[v] = 1;
          continue;
        }
        cs[v][ju] = hjj / denom;
        sn[v][ju] = hnext / denom;
        h[v][ju][ju] = denom;
        h[v][ju + 1][ju] = 0.0;
        g[v][ju + 1] = -sn[v][ju] * g[v][ju];
        g[v][ju] = cs[v][ju] * g[v][ju];

        const double resid = std::abs(g[v][ju + 1]);
        reps[v].residualNorm = resid;
        maxResid = std::max(maxResid, resid);
        maxIts = std::max(maxIts, its[v]);
        cycleReason[v] = mons[v].test(resid);
        if (cycleReason[v] != PKSP_ITERATING || luckyBreakdown) {
          inCycle[v] = 0;  // lane's cycle ends; x update happens below
        }
      }
      if (tol.monitor && maxIts > 0) tol.monitor(maxIts, maxResid);
    }

    // ---- per-lane triangular solve + solution update -------------------
    for (const std::size_t v : running) {
      if (done[v] || noUpdate[v] || jTaken[v] == 0) continue;
      const int jv = jTaken[v];
      Vec y(static_cast<std::size_t>(jv), 0.0);
      bool broke = false;
      for (int i = jv - 1; i >= 0; --i) {
        const auto iu = static_cast<std::size_t>(i);
        double acc = g[v][iu];
        for (int k = i + 1; k < jv; ++k) {
          acc -= h[v][iu][static_cast<std::size_t>(k)] *
                 y[static_cast<std::size_t>(k)];
        }
        const double hii = h[v][iu][iu];
        if (hii == 0.0) {
          reps[v].reason = PKSP_DIVERGED_BREAKDOWN;
          reps[v].iterations = its[v];
          done[v] = 1;
          broke = true;
          break;
        }
        y[iu] = acc / hii;
      }
      if (broke) continue;
      std::span<double> xv = lane(x, v, n);
      for (int i = 0; i < jv; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        for (std::size_t t = 0; t < n; ++t) xv[t] += y[iu] * basis[v][iu][t];
      }
      reps[v].iterations = its[v];
      if (cycleReason[v] != PKSP_ITERATING) {
        reps[v].reason = cycleReason[v];
        done[v] = 1;
      } else if (its[v] >= tol.maxits) {
        reps[v].reason = PKSP_DIVERGED_ITS;
        done[v] = 1;
      }
      // else: lane restarts next cycle (including lucky breakdowns, whose
      // recomputed residual then converges through the ATOL test).
    }
  }
}

}  // namespace pksp::detail
