// Communication-hiding (pipelined) Krylov kernels for PKSP.
//
// Both loops restructure the iteration so every global reduction is a
// split-phase distDotsBegin/End whose wait is overlapped with the SpMV and
// preconditioner applications of the same iteration — on the wire while the
// FLOPs run, instead of serializing after them.  MiniMPI has no progress
// thread, so the overlap region pokes PendingDots::test() between work
// items to drive the middle schedule rounds.
//
// Pipelined CG follows Ghysels & Vanroose (single fused three-lane
// reduction per iteration); pipelined BiCGStab is a two-phase
// reformulation in the style of Cools & Vanroose where each of the two
// reductions hides behind one of the iteration's two operator
// applications.  Iterates match the classic loops in exact arithmetic but
// are produced by different recurrences, so finite-precision results agree
// to rounding, not bitwise.  Convergence criterion and monitor cadence are
// identical to the classic loops: iteration k reports the preconditioned
// residual norm of iterate x_k.
#include <array>
#include <cmath>

#include "pksp/pksp_internal.hpp"
#include "sparse/dist_csr.hpp"

namespace pksp::detail {
namespace {

using lisi::comm::Comm;
using lisi::sparse::distDotsBegin;
using lisi::sparse::distDotsEnd;
using lisi::sparse::DotArgs;
using lisi::sparse::PendingDots;

using Vec = std::vector<double>;

bool isBad(double v) { return std::isnan(v) || std::isinf(v); }

/// Same convergence bookkeeping as the classic kernels (pksp_krylov.cpp).
struct Monitor {
  double target = 0.0;
  double atol = 0.0;

  void start(double z0, const Tolerances& tol) {
    target = tol.rtol * z0;
    atol = tol.atol;
  }
  [[nodiscard]] PkspConvergedReason test(double znorm) const {
    if (isBad(znorm)) return PKSP_DIVERGED_NAN;
    if (znorm <= atol) return PKSP_CONVERGED_ATOL;
    if (znorm <= target) return PKSP_CONVERGED_RTOL;
    return PKSP_ITERATING;
  }
};

void applyResidual(const LinearOperator& a, std::span<const double> b,
                   std::span<const double> x, Vec& r) {
  a.apply(x, std::span<double>(r));
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
}

std::span<const double> cspan(const Vec& v) {
  return std::span<const double>(v);
}

}  // namespace

SolveReport runPipelinedCg(const Comm& comm, const LinearOperator& a,
                           const Preconditioner& m, std::span<const double> b,
                           std::span<double> x, const Tolerances& tol) {
  // Ghysels–Vanroose pipelined preconditioned CG.  Invariants entering the
  // reduction of iteration k (all for the current iterate x_k):
  //   r = b - A x,   u = M^{-1} r,   w = A u
  // One fused reduction delivers { <u,u>, <r,u>, <w,u> } and overlaps with
  //   mm = M^{-1} w,  nn = A mm,
  // after which the recurrences
  //   z <- nn + beta z   (= A M^{-1} A p direction chain)
  //   q <- mm + beta q   (= M^{-1} A p)
  //   s <- w  + beta s   (= A p)
  //   p <- u  + beta p
  // advance x, r, u, w without any further communication.  <u,u> rides
  // along so the monitored norm is available from the same reduction.
  const std::size_t n = x.size();
  Vec r(n), u(n), w(n), mm(n), nn(n), z(n), q(n), s(n), p(n);
  applyResidual(a, b, x, r);
  m.apply(cspan(r), std::span<double>(u));
  a.apply(cspan(u), std::span<double>(w));

  Monitor mon;
  SolveReport rep;
  double gammaOld = 0.0;  // <r,u> of the previous iteration
  double alphaOld = 0.0;

  for (int it = 0; it <= tol.maxits; ++it) {
    const std::array<DotArgs, 3> lanes{DotArgs{cspan(u), cspan(u)},
                                       DotArgs{cspan(r), cspan(u)},
                                       DotArgs{cspan(w), cspan(u)}};
    PendingDots pending = distDotsBegin(comm, std::span<const DotArgs>(lanes));
    // Overlap region: the preconditioner and SpMV of this iteration.
    m.apply(cspan(w), std::span<double>(mm));
    (void)pending.test();  // drive middle reduction rounds
    a.apply(cspan(mm), std::span<double>(nn));
    const std::span<const double> dots = distDotsEnd(pending);
    const double uu = dots[0];
    const double gamma = dots[1];
    const double delta = dots[2];

    const double znorm = std::sqrt(uu);
    if (it == 0) {
      mon.start(znorm, tol);
      if (tol.monitor) tol.monitor(0, znorm);
      rep.residualNorm = znorm;
      rep.reason = mon.test(znorm);
      if (rep.reason != PKSP_ITERATING) {
        if (rep.reason == PKSP_DIVERGED_NAN) return rep;
        rep.reason = znorm == 0.0 ? PKSP_CONVERGED_ATOL : rep.reason;
        return rep;
      }
    } else {
      // znorm is ||M^{-1}(b - A x_it)|| for the x already written back, so
      // the check point matches classic CG's (same history length).
      if (tol.monitor) tol.monitor(it, znorm);
      rep.iterations = it;
      rep.residualNorm = znorm;
      rep.reason = mon.test(znorm);
      if (rep.reason != PKSP_ITERATING) return rep;
      if (it == tol.maxits) break;
    }

    double beta;
    double alpha;
    if (it == 0) {
      beta = 0.0;
      if (delta == 0.0 || isBad(delta)) {
        rep.reason = PKSP_DIVERGED_BREAKDOWN;
        return rep;
      }
      alpha = gamma / delta;
    } else {
      if (gammaOld == 0.0 || alphaOld == 0.0) {
        rep.reason = PKSP_DIVERGED_BREAKDOWN;
        return rep;
      }
      beta = gamma / gammaOld;
      const double denom = delta - beta * gamma / alphaOld;
      if (denom == 0.0 || isBad(denom)) {
        rep.reason = PKSP_DIVERGED_BREAKDOWN;
        return rep;
      }
      alpha = gamma / denom;
    }
    if (isBad(alpha)) {
      rep.reason = PKSP_DIVERGED_BREAKDOWN;
      return rep;
    }
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = nn[i] + beta * z[i];
      q[i] = mm[i] + beta * q[i];
      s[i] = w[i] + beta * s[i];
      p[i] = u[i] + beta * p[i];
      x[i] += alpha * p[i];
      r[i] -= alpha * s[i];
      u[i] -= alpha * q[i];
      w[i] -= alpha * z[i];
    }
    gammaOld = gamma;
    alphaOld = alpha;
  }
  rep.iterations = tol.maxits;
  rep.reason = PKSP_DIVERGED_ITS;
  return rep;
}

SolveReport runPipelinedBiCgStab(const Comm& comm, const LinearOperator& a,
                                 const Preconditioner& m,
                                 std::span<const double> b,
                                 std::span<double> x, const Tolerances& tol) {
  // Two-phase pipelined BiCGStab on the left-preconditioned system
  // Ahat = M^{-1} A (so every tracked quantity is preconditioned and the
  // monitored norm matches classic BiCGStab's ||M^{-1}(b - A x)||).
  // State entering an iteration:
  //   r (preconditioned residual), w = Ahat r, p, v = Ahat p, q = Ahat v,
  //   rho = <rhat, r>, tau = <rhat, v>, alpha = rho / tau.
  // Phase 1: s = r - alpha v, t = w - alpha q (= Ahat s); the fused
  // reduction { <t,s>, <t,t>, <rhat,s>, <rhat,t>, <rhat,q> } overlaps with
  // z = Ahat t.  Phase 2: after the omega/beta vector updates, the
  // reduction { <rhat,z>, <r,r> } overlaps with q = Ahat v for the next
  // iteration; tau then follows from scalar recurrences alone.
  const std::size_t n = x.size();
  Vec r(n), rhat(n), w(n), p(n), v(n), q(n), s(n), t(n), z(n), tmp(n);

  const auto applyAhat = [&](const Vec& in, Vec& out) {
    a.apply(cspan(in), std::span<double>(tmp));
    m.apply(cspan(tmp), std::span<double>(out));
  };

  applyResidual(a, b, x, r);
  m.apply(cspan(r), std::span<double>(tmp));
  std::copy(tmp.begin(), tmp.end(), r.begin());
  std::copy(r.begin(), r.end(), rhat.begin());
  applyAhat(r, w);
  // Initial scalars: rho0 = <r,r> (= <rhat,r>), tau0 = <rhat,w>; the
  // reduction overlaps with q0 = Ahat v0 (v0 = w0, p0 = r0).
  std::copy(r.begin(), r.end(), p.begin());
  std::copy(w.begin(), w.end(), v.begin());
  double rhoCur;
  double tau;
  {
    const std::array<DotArgs, 2> lanes{DotArgs{cspan(r), cspan(r)},
                                       DotArgs{cspan(rhat), cspan(w)}};
    PendingDots pending = distDotsBegin(comm, std::span<const DotArgs>(lanes));
    applyAhat(v, q);
    const std::span<const double> dots = distDotsEnd(pending);
    rhoCur = dots[0];
    tau = dots[1];
  }

  const double znorm = std::sqrt(rhoCur);
  Monitor mon;
  mon.start(znorm, tol);
  if (tol.monitor) tol.monitor(0, znorm);
  SolveReport rep;
  rep.residualNorm = znorm;
  rep.reason = mon.test(znorm);
  if (rep.reason != PKSP_ITERATING) return rep;

  if (tau == 0.0 || isBad(tau)) {
    rep.reason = PKSP_DIVERGED_BREAKDOWN;
    return rep;
  }
  double alpha = rhoCur / tau;

  for (int it = 1; it <= tol.maxits; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = r[i] - alpha * v[i];
      t[i] = w[i] - alpha * q[i];
    }
    const std::array<DotArgs, 5> ph1{
        DotArgs{cspan(t), cspan(s)}, DotArgs{cspan(t), cspan(t)},
        DotArgs{cspan(rhat), cspan(s)}, DotArgs{cspan(rhat), cspan(t)},
        DotArgs{cspan(rhat), cspan(q)}};
    PendingDots pend1 = distDotsBegin(comm, std::span<const DotArgs>(ph1));
    a.apply(cspan(t), std::span<double>(tmp));
    (void)pend1.test();
    m.apply(cspan(tmp), std::span<double>(z));
    const std::span<const double> d1 = distDotsEnd(pend1);
    const double thetaTs = d1[0];
    const double thetaTt = d1[1];
    const double phiS = d1[2];
    const double phiT = d1[3];
    const double phiQ = d1[4];

    if (thetaTt == 0.0 || isBad(thetaTt)) {
      rep.reason = PKSP_DIVERGED_BREAKDOWN;
      rep.iterations = it - 1;
      return rep;
    }
    const double omega = thetaTs / thetaTt;
    if (omega == 0.0 || isBad(omega) || rhoCur == 0.0) {
      rep.reason = PKSP_DIVERGED_BREAKDOWN;
      rep.iterations = it - 1;
      return rep;
    }
    const double rhoNew = phiS - omega * phiT;
    const double beta = (rhoNew / rhoCur) * (alpha / omega);
    if (isBad(beta)) {
      rep.reason = PKSP_DIVERGED_BREAKDOWN;
      rep.iterations = it - 1;
      return rep;
    }
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i] + omega * s[i];
      r[i] = s[i] - omega * t[i];
      w[i] = t[i] - omega * z[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
      v[i] = w[i] + beta * (v[i] - omega * q[i]);
    }
    const std::array<DotArgs, 2> ph2{DotArgs{cspan(rhat), cspan(z)},
                                     DotArgs{cspan(r), cspan(r)}};
    PendingDots pend2 = distDotsBegin(comm, std::span<const DotArgs>(ph2));
    a.apply(cspan(v), std::span<double>(tmp));
    (void)pend2.test();
    m.apply(cspan(tmp), std::span<double>(q));
    const std::span<const double> d2 = distDotsEnd(pend2);
    const double psiZ = d2[0];
    const double rr = d2[1];

    const double znormIt = std::sqrt(rr);
    if (tol.monitor) tol.monitor(it, znormIt);
    rep.iterations = it;
    rep.residualNorm = znormIt;
    rep.reason = mon.test(znormIt);
    if (rep.reason != PKSP_ITERATING) return rep;

    // tau_new = <rhat, v_new> = sigma + beta (tau_old - omega <rhat, q_old>)
    // with sigma = <rhat, w_new> = phiT - omega psiZ; q_old's dot (phiQ)
    // came from phase 1, so no extra reduction is needed.
    const double sigma = phiT - omega * psiZ;
    const double tauNew = sigma + beta * (tau - omega * phiQ);
    if (tauNew == 0.0 || isBad(tauNew)) {
      rep.reason = PKSP_DIVERGED_BREAKDOWN;
      return rep;
    }
    alpha = rhoNew / tauNew;
    rhoCur = rhoNew;
    tau = tauNew;
  }
  rep.reason = PKSP_DIVERGED_ITS;
  return rep;
}

}  // namespace pksp::detail
