// Distributed Krylov kernels for PKSP.  All methods use left
// preconditioning and track the preconditioned residual norm; convergence
// is declared when  ||z_k|| <= max(rtol * ||z_0||, atol)  where
// z_k = M^{-1}(b - A x_k).
#include <array>
#include <cmath>
#include <limits>

#include "pksp/pksp_internal.hpp"
#include "sparse/dist_csr.hpp"

namespace pksp::detail {
namespace {

using lisi::comm::Comm;
using lisi::sparse::distDot;
using lisi::sparse::distDot2;
using lisi::sparse::distNorm2;

using Vec = std::vector<double>;

bool isBad(double v) { return std::isnan(v) || std::isinf(v); }

/// Shared convergence bookkeeping.
struct Monitor {
  double target = 0.0;
  double atol = 0.0;

  /// Initialize from the initial preconditioned residual norm.
  void start(double z0, const Tolerances& tol) {
    target = tol.rtol * z0;
    atol = tol.atol;
  }
  [[nodiscard]] PkspConvergedReason test(double znorm) const {
    if (isBad(znorm)) return PKSP_DIVERGED_NAN;
    if (znorm <= atol) return PKSP_CONVERGED_ATOL;
    if (znorm <= target) return PKSP_CONVERGED_RTOL;
    return PKSP_ITERATING;
  }
};

void applyResidual(const LinearOperator& a, std::span<const double> b,
                   std::span<const double> x, Vec& r) {
  a.apply(x, std::span<double>(r));
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
}

}  // namespace

SolveReport runCg(const Comm& comm, const LinearOperator& a,
                  const Preconditioner& m, std::span<const double> b,
                  std::span<double> x, const Tolerances& tol) {
  const std::size_t n = x.size();
  Vec r(n), z(n), p(n), ap(n);
  applyResidual(a, b, x, r);
  m.apply(std::span<const double>(r), std::span<double>(z));
  // <z,z> and <r,z> share one two-element allreduce; each lane is bitwise
  // identical to the standalone dot, so the iterates are unchanged.
  std::array<double, 2> zzrz =
      distDot2(comm, std::span<const double>(z), std::span<const double>(z),
               std::span<const double>(r), std::span<const double>(z));
  double znorm = std::sqrt(zzrz[0]);
  Monitor mon;
  mon.start(znorm, tol);
  if (tol.monitor) tol.monitor(0, znorm);

  SolveReport rep;
  rep.residualNorm = znorm;
  rep.reason = mon.test(znorm);
  if (rep.reason != PKSP_ITERATING) {
    if (rep.reason == PKSP_DIVERGED_NAN) return rep;
    rep.reason = znorm == 0.0 ? PKSP_CONVERGED_ATOL : rep.reason;
    return rep;
  }

  std::copy(z.begin(), z.end(), p.begin());
  double rz = zzrz[1];
  for (int it = 1; it <= tol.maxits; ++it) {
    a.apply(std::span<const double>(p), std::span<double>(ap));
    const double pap =
        distDot(comm, std::span<const double>(p), std::span<const double>(ap));
    if (pap == 0.0 || isBad(pap)) {
      rep.reason = PKSP_DIVERGED_BREAKDOWN;
      rep.iterations = it - 1;
      return rep;
    }
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    m.apply(std::span<const double>(r), std::span<double>(z));
    zzrz = distDot2(comm, std::span<const double>(z),
                    std::span<const double>(z), std::span<const double>(r),
                    std::span<const double>(z));
    znorm = std::sqrt(zzrz[0]);
    if (tol.monitor) tol.monitor(it, znorm);
    rep.iterations = it;
    rep.residualNorm = znorm;
    rep.reason = mon.test(znorm);
    if (rep.reason != PKSP_ITERATING) return rep;
    const double rzNew = zzrz[1];
    if (rz == 0.0) {
      rep.reason = PKSP_DIVERGED_BREAKDOWN;
      return rep;
    }
    const double beta = rzNew / rz;
    rz = rzNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  rep.reason = PKSP_DIVERGED_ITS;
  return rep;
}

SolveReport runGmres(const Comm& comm, const LinearOperator& a,
                     const Preconditioner& m, std::span<const double> b,
                     std::span<double> x, const Tolerances& tol, int restart) {
  const std::size_t n = x.size();
  const int mr = std::max(1, restart);
  SolveReport rep;
  Vec r(n), z(n), w(n), wz(n);
  // Krylov basis (mr+1 local vectors) and Hessenberg factors.
  std::vector<Vec> v(static_cast<std::size_t>(mr) + 1, Vec(n));
  std::vector<Vec> h(static_cast<std::size_t>(mr) + 1,
                     Vec(static_cast<std::size_t>(mr), 0.0));
  Vec cs(static_cast<std::size_t>(mr), 0.0);
  Vec sn(static_cast<std::size_t>(mr), 0.0);
  Vec g(static_cast<std::size_t>(mr) + 1, 0.0);

  Monitor mon;
  bool first = true;
  int totalIts = 0;

  while (true) {
    applyResidual(a, b, x, r);
    m.apply(std::span<const double>(r), std::span<double>(z));
    double beta = distNorm2(comm, std::span<const double>(z));
    if (first) {
      mon.start(beta, tol);
      first = false;
      rep.residualNorm = beta;
      if (tol.monitor) tol.monitor(0, beta);
      const PkspConvergedReason early = mon.test(beta);
      if (early != PKSP_ITERATING) {
        rep.reason = early;
        return rep;
      }
    }
    if (isBad(beta)) {
      rep.reason = PKSP_DIVERGED_NAN;
      return rep;
    }
    if (beta == 0.0) {
      rep.reason = PKSP_CONVERGED_ATOL;
      return rep;
    }
    for (std::size_t i = 0; i < n; ++i) {
      v[0][i] = z[i] / beta;
    }
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    PkspConvergedReason innerReason = PKSP_ITERATING;
    for (; j < mr && totalIts < tol.maxits; ++j) {
      ++totalIts;
      a.apply(std::span<const double>(v[static_cast<std::size_t>(j)]),
              std::span<double>(w));
      m.apply(std::span<const double>(w), std::span<double>(wz));
      // Modified Gram-Schmidt.
      for (int i = 0; i <= j; ++i) {
        const double hij =
            distDot(comm, std::span<const double>(wz),
                    std::span<const double>(v[static_cast<std::size_t>(i)]));
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = hij;
        for (std::size_t k = 0; k < n; ++k) {
          wz[k] -= hij * v[static_cast<std::size_t>(i)][k];
        }
      }
      const double hnext = distNorm2(comm, std::span<const double>(wz));
      h[static_cast<std::size_t>(j) + 1][static_cast<std::size_t>(j)] = hnext;
      if (isBad(hnext)) {
        rep.reason = PKSP_DIVERGED_NAN;
        rep.iterations = totalIts;
        return rep;
      }
      const bool luckyBreakdown = hnext <= 1e-300;
      if (!luckyBreakdown) {
        for (std::size_t k = 0; k < n; ++k) {
          v[static_cast<std::size_t>(j) + 1][k] = wz[k] / hnext;
        }
      }
      // Apply existing Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const double t =
            cs[static_cast<std::size_t>(i)] *
                h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +
            sn[static_cast<std::size_t>(i)] *
                h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(j)];
        h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(j)] =
            -sn[static_cast<std::size_t>(i)] *
                h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +
            cs[static_cast<std::size_t>(i)] *
                h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(j)];
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = t;
      }
      // New rotation to annihilate h[j+1][j].
      const double hjj = h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)];
      const double denom = std::sqrt(hjj * hjj + hnext * hnext);
      if (denom == 0.0) {
        rep.reason = PKSP_DIVERGED_BREAKDOWN;
        rep.iterations = totalIts;
        return rep;
      }
      cs[static_cast<std::size_t>(j)] = hjj / denom;
      sn[static_cast<std::size_t>(j)] = hnext / denom;
      h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)] = denom;
      h[static_cast<std::size_t>(j) + 1][static_cast<std::size_t>(j)] = 0.0;
      g[static_cast<std::size_t>(j) + 1] =
          -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] =
          cs[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];

      const double resid = std::abs(g[static_cast<std::size_t>(j) + 1]);
      if (tol.monitor) tol.monitor(totalIts, resid);
      rep.residualNorm = resid;
      innerReason = mon.test(resid);
      if (innerReason != PKSP_ITERATING || luckyBreakdown) {
        ++j;  // include this column in the update
        break;
      }
    }

    // Solve the j-by-j triangular system and update x.
    Vec y(static_cast<std::size_t>(j), 0.0);
    for (int i = j - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k) {
        acc -= h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] *
               y[static_cast<std::size_t>(k)];
      }
      const double hii = h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
      if (hii == 0.0) {
        rep.reason = PKSP_DIVERGED_BREAKDOWN;
        rep.iterations = totalIts;
        return rep;
      }
      y[static_cast<std::size_t>(i)] = acc / hii;
    }
    for (int i = 0; i < j; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        x[k] += y[static_cast<std::size_t>(i)] *
                v[static_cast<std::size_t>(i)][k];
      }
    }
    rep.iterations = totalIts;
    if (innerReason != PKSP_ITERATING) {
      rep.reason = innerReason;
      return rep;
    }
    if (totalIts >= tol.maxits) {
      rep.reason = PKSP_DIVERGED_ITS;
      return rep;
    }
    // else: restart.
  }
}

SolveReport runBiCgStab(const Comm& comm, const LinearOperator& a,
                        const Preconditioner& m, std::span<const double> b,
                        std::span<double> x, const Tolerances& tol) {
  const std::size_t n = x.size();
  Vec r(n), rhat(n), p(n), ph(n), v(n), s(n), sh(n), t(n), z(n);
  applyResidual(a, b, x, r);
  m.apply(std::span<const double>(r), std::span<double>(z));
  double znorm = distNorm2(comm, std::span<const double>(z));
  Monitor mon;
  mon.start(znorm, tol);
  if (tol.monitor) tol.monitor(0, znorm);
  SolveReport rep;
  rep.residualNorm = znorm;
  rep.reason = mon.test(znorm);
  if (rep.reason != PKSP_ITERATING) return rep;

  std::copy(r.begin(), r.end(), rhat.begin());
  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;
  std::fill(p.begin(), p.end(), 0.0);
  std::fill(v.begin(), v.end(), 0.0);

  for (int it = 1; it <= tol.maxits; ++it) {
    const double rhoNew =
        distDot(comm, std::span<const double>(rhat), std::span<const double>(r));
    if (rhoNew == 0.0 || isBad(rhoNew) || omega == 0.0) {
      rep.reason = PKSP_DIVERGED_BREAKDOWN;
      rep.iterations = it - 1;
      return rep;
    }
    const double beta = (rhoNew / rho) * (alpha / omega);
    rho = rhoNew;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    m.apply(std::span<const double>(p), std::span<double>(ph));
    a.apply(std::span<const double>(ph), std::span<double>(v));
    const double rhatV =
        distDot(comm, std::span<const double>(rhat), std::span<const double>(v));
    if (rhatV == 0.0 || isBad(rhatV)) {
      rep.reason = PKSP_DIVERGED_BREAKDOWN;
      rep.iterations = it - 1;
      return rep;
    }
    alpha = rho / rhatV;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    // Early exit on half-step convergence.
    m.apply(std::span<const double>(s), std::span<double>(z));
    znorm = distNorm2(comm, std::span<const double>(z));
    if (mon.test(znorm) != PKSP_ITERATING) {
      for (std::size_t i = 0; i < n; ++i) x[i] += alpha * ph[i];
      if (tol.monitor) tol.monitor(it, znorm);
      rep.iterations = it;
      rep.residualNorm = znorm;
      rep.reason = mon.test(znorm);
      return rep;
    }
    m.apply(std::span<const double>(s), std::span<double>(sh));
    a.apply(std::span<const double>(sh), std::span<double>(t));
    const double tt =
        distDot(comm, std::span<const double>(t), std::span<const double>(t));
    if (tt == 0.0 || isBad(tt)) {
      rep.reason = PKSP_DIVERGED_BREAKDOWN;
      rep.iterations = it;
      return rep;
    }
    omega = distDot(comm, std::span<const double>(t),
                    std::span<const double>(s)) /
            tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * ph[i] + omega * sh[i];
      r[i] = s[i] - omega * t[i];
    }
    m.apply(std::span<const double>(r), std::span<double>(z));
    znorm = distNorm2(comm, std::span<const double>(z));
    if (tol.monitor) tol.monitor(it, znorm);
    rep.iterations = it;
    rep.residualNorm = znorm;
    rep.reason = mon.test(znorm);
    if (rep.reason != PKSP_ITERATING) return rep;
  }
  rep.reason = PKSP_DIVERGED_ITS;
  return rep;
}

SolveReport runRichardson(const Comm& comm, const LinearOperator& a,
                          const Preconditioner& m, std::span<const double> b,
                          std::span<double> x, const Tolerances& tol) {
  const std::size_t n = x.size();
  Vec r(n), z(n);
  applyResidual(a, b, x, r);
  m.apply(std::span<const double>(r), std::span<double>(z));
  double znorm = distNorm2(comm, std::span<const double>(z));
  Monitor mon;
  mon.start(znorm, tol);
  if (tol.monitor) tol.monitor(0, znorm);
  SolveReport rep;
  rep.residualNorm = znorm;
  rep.reason = mon.test(znorm);
  if (rep.reason != PKSP_ITERATING) return rep;

  for (int it = 1; it <= tol.maxits; ++it) {
    for (std::size_t i = 0; i < n; ++i) x[i] += z[i];
    applyResidual(a, b, x, r);
    m.apply(std::span<const double>(r), std::span<double>(z));
    znorm = distNorm2(comm, std::span<const double>(z));
    if (tol.monitor) tol.monitor(it, znorm);
    rep.iterations = it;
    rep.residualNorm = znorm;
    rep.reason = mon.test(znorm);
    if (rep.reason != PKSP_ITERATING) return rep;
  }
  rep.reason = PKSP_DIVERGED_ITS;
  return rep;
}

}  // namespace pksp::detail
