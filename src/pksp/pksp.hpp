// PKSP — "Portable Krylov Solver Package".
//
// A from-scratch stand-in for PETSc's KSP linear solver with the same *API
// style*: opaque handles, Create/Set.../Solve/Destroy call order, integer
// error codes, and an options-string parser (the analogue of PETSc's
// command-line options database).  LISI's PkspSolverComponent adapts this
// API, exactly as the paper's PETSc solver component adapts KSP.
//
// Numerically the package provides distributed-memory Krylov methods
// (CG, GMRES(m), BiCGSTAB, Richardson) with process-local preconditioners
// (Jacobi, local SOR, block-Jacobi ILU(0)) over block-row partitioned
// operators, plus a "shell" operator for matrix-free use (the analogue of
// PETSc's MatShell / MatShellSetOperation mentioned in §5.5 of the paper).
//
// Thread-safety: distinct KSP handles are independent; a single handle must
// not be used concurrently (matches PETSc).
#pragma once

#include <span>

#include "comm/comm.hpp"
#include "sparse/dist_csr.hpp"

namespace pksp {

/// Opaque solver handle (PETSc-style).
struct PkspSolver;
using KSP = PkspSolver*;

/// Error codes returned by every PKSP function (0 = success).
enum PkspErrorCode : int {
  PKSP_SUCCESS = 0,
  PKSP_ERR_ARG = 1,       ///< bad argument (null handle, size mismatch, ...)
  PKSP_ERR_ORDER = 2,     ///< functions called out of order
  PKSP_ERR_UNSUPPORTED = 3,
  PKSP_ERR_NUMERIC = 4,   ///< breakdown / singular preconditioner
};

/// Krylov method selection.
enum PkspType : int {
  PKSP_RICHARDSON = 0,
  PKSP_CG = 1,
  PKSP_GMRES = 2,
  PKSP_BICGSTAB = 3,
};

/// Communication-pipelining selection for the Krylov loops (CG, BiCGSTAB).
/// Pipelined variants (Ghysels–Vanroose style) restructure the iteration so
/// the global reduction overlaps the SpMV + preconditioner work instead of
/// serializing against it; iterates match the classic loops to rounding
/// (identical in exact arithmetic), not bitwise.  AUTO enables pipelining
/// whenever the communicator has more than one rank (single-rank reductions
/// have nothing to hide).  Methods without a pipelined variant (GMRES,
/// Richardson) ignore the setting.
enum PkspPipelineMode : int {
  PKSP_PIPELINE_OFF = 0,
  PKSP_PIPELINE_ON = 1,
  PKSP_PIPELINE_AUTO = 2,
};

/// Preconditioner application precision.  MIXED stores the preconditioner
/// operators (SOR block values, ILU(0) factors) in float32 and applies them
/// in float32 arithmetic, halving the value bytes each apply streams; the
/// Krylov iteration itself — SpMV, orthogonalization, reductions,
/// convergence tests — stays float64, so the preconditioner's rounding only
/// perturbs the (already approximate) M^{-1} and the methods converge to
/// the same tolerance.  Jacobi and identity are O(n) and stay float64.
enum PkspPrecision : int {
  PKSP_PRECISION_DOUBLE = 0,
  PKSP_PRECISION_MIXED = 1,
};

/// Preconditioner selection.
enum PkspPcType : int {
  PKSP_PC_NONE = 0,
  PKSP_PC_JACOBI = 1,
  PKSP_PC_SOR = 2,     ///< process-local SOR sweeps
  PKSP_PC_ILU0 = 3,    ///< ILU(0) of the local diagonal block
  PKSP_PC_BJACOBI = 4, ///< block Jacobi with ILU(0) on each block (alias
                       ///< of PKSP_PC_ILU0 at one block per process)
};

/// Convergence outcomes (positive = converged, negative = diverged),
/// mirroring PETSc's KSPConvergedReason style.
enum PkspConvergedReason : int {
  PKSP_CONVERGED_RTOL = 2,
  PKSP_CONVERGED_ATOL = 3,
  PKSP_CONVERGED_ITS = 4,       ///< Richardson hit maxits while converging
  PKSP_DIVERGED_ITS = -3,
  PKSP_DIVERGED_BREAKDOWN = -5,
  PKSP_DIVERGED_NAN = -9,
  PKSP_ITERATING = 0,
};

/// Matrix-free operator callback: y = A*x on this rank's block of rows.
/// `ctx` is the user context registered with KSPSetOperatorShell.
using PkspShellMatVec = void (*)(void* ctx, const double* x, double* y,
                                 int localRows);

// ---- lifecycle -------------------------------------------------------

/// Create a solver attached to `comm`.  Collective.
int KSPCreate(const lisi::comm::Comm& comm, KSP* outKsp);

/// Destroy the solver and null the handle.  Safe on already-null handles.
int KSPDestroy(KSP* ksp);

/// How a newly registered operator relates to the previous one — the
/// three-state reuse contract of classic PETSc's KSPSetOperators
/// (SAME_NONZERO_PATTERN / SAME_PRECONDITIONER / DIFFERENT_NONZERO_PATTERN).
enum PkspMatStructure : int {
  /// Operator object unchanged since the last registration: the built
  /// preconditioner stays valid and is kept untouched.
  PKSP_SAME_PRECONDITIONER = 0,
  /// Values changed over the identical sparsity pattern: the preconditioner
  /// storage (diagonals, SOR block, ILU(0) factors) is refreshed in place at
  /// the next solve instead of being rebuilt.
  PKSP_SAME_NONZERO_PATTERN = 1,
  /// Pattern changed: full preconditioner rebuild (the default contract of
  /// the two-argument KSPSetOperator).
  PKSP_DIFFERENT_NONZERO_PATTERN = 2,
};

// ---- operator registration -------------------------------------------

/// Use an assembled distributed matrix (not owned; must outlive solves).
int KSPSetOperator(KSP ksp, const lisi::sparse::DistCsrMatrix* a);

/// Like KSPSetOperator, with an explicit statement of how `a` relates to
/// the previously registered operator (see PkspMatStructure).  With
/// PKSP_SAME_NONZERO_PATTERN the preconditioner is value-refreshed over its
/// fixed storage layout; KSPSetReusePreconditioner(true) still wins and
/// freezes the preconditioner entirely.
int KSPSetOperator(KSP ksp, const lisi::sparse::DistCsrMatrix* a,
                   PkspMatStructure structure);

/// Use a matrix-free shell operator over `localRows` owned rows of a
/// square global operator.  Collective (validates the global tiling).
int KSPSetOperatorShell(KSP ksp, PkspShellMatVec matvec, void* ctx,
                        int localRows);

// ---- configuration ----------------------------------------------------

int KSPSetType(KSP ksp, PkspType type);
int KSPSetPCType(KSP ksp, PkspPcType type);

/// rtol: relative decrease of the preconditioned residual; atol: absolute
/// floor; maxits: iteration cap.  Negative values keep current settings.
int KSPSetTolerances(KSP ksp, double rtol, double atol, int maxits);

/// GMRES restart length (default 30).
int KSPSetRestart(KSP ksp, int restart);

/// SOR relaxation factor omega in (0, 2) (default 1.0) and sweep count.
int KSPSetSorOptions(KSP ksp, double omega, int sweeps);

/// Treat the incoming solution vector as the initial guess (default: zero).
int KSPSetInitialGuessNonzero(KSP ksp, bool flag);

/// Keep the current preconditioner when the operator changes (useful when a
/// new matrix shares the old one's sparsity pattern and is close in value —
/// §5.2 use case (d) of the LISI paper).  Default: rebuild on change.
int KSPSetReusePreconditioner(KSP ksp, bool flag);

/// Select pipelined (communication-hiding) Krylov loops for CG/BiCGSTAB
/// (default: off).  See PkspPipelineMode.
int KSPSetPipeline(KSP ksp, PkspPipelineMode mode);

/// Select the preconditioner application precision (default: double).
/// Marks the preconditioner stale: the next solve rebuilds it with the
/// requested storage.  See PkspPrecision.
int KSPSetPrecision(KSP ksp, PkspPrecision precision);

/// PETSc-options-style configuration string, e.g.
///   "-ksp_type gmres -pc_type ilu -ksp_rtol 1e-8 -ksp_max_it 500
///    -ksp_gmres_restart 40 -ksp_pipeline auto"
/// Unknown keys are reported with PKSP_ERR_UNSUPPORTED.
int KSPSetFromString(KSP ksp, const char* options);

// ---- solve and diagnostics --------------------------------------------

/// Solve A x = b on this rank's block (sizes = localRows).  Collective.
/// On entry x is the initial guess if KSPSetInitialGuessNonzero was set.
int KSPSolve(KSP ksp, std::span<const double> bLocal,
             std::span<double> xLocal);

/// Solve A X = B for `nRhs` right-hand sides sharing the registered
/// operator.  Collective; `nRhs` must agree on every rank.  bLocal/xLocal
/// are vector-major: RHS k occupies [k*localRows, (k+1)*localRows).
///
/// For CG and GMRES over an assembled operator in double precision the
/// lanes advance in lockstep through blocked kernels: one halo exchange
/// and one fused allreduce batch per reduction point serve all nRhs
/// systems, and each lane's iterates are bitwise identical to solving it
/// alone with KSPSolve.  Other configurations (BiCGSTAB, Richardson,
/// shell operators, mixed precision) fall back to an internal per-RHS
/// KSPSolve loop with identical results.
///
/// Diagnostics after the call aggregate over the block:
/// KSPGetIterationNumber reports the max lane iteration count,
/// KSPGetResidualNorm the max lane true residual, and
/// KSPGetConvergedReason the worst lane outcome (any divergence wins).
/// The residual history records the max tracked norm across active lanes
/// per lockstep iteration.  Returns PKSP_SUCCESS only if every lane
/// converged.
int KSPSolveMulti(KSP ksp, std::span<const double> bLocal,
                  std::span<double> xLocal, int nRhs);

int KSPGetIterationNumber(KSP ksp, int* iters);
int KSPGetResidualNorm(KSP ksp, double* norm);  ///< final (true) residual
int KSPGetConvergedReason(KSP ksp, PkspConvergedReason* reason);

/// Per-iteration monitor callback (PETSc's KSPMonitorSet analogue): invoked
/// with (ctx, iteration, tracked residual norm); iteration 0 carries the
/// initial residual.  Pass nullptr to remove.
using PkspMonitorFn = void (*)(void* ctx, int iteration, double rnorm);
int KSPSetMonitor(KSP ksp, PkspMonitorFn monitor, void* ctx);

/// Residual norms recorded during the last KSPSolve (entry i = the residual
/// reported at iteration i; always recorded, no opt-in needed).  The pointer
/// stays valid until the next solve or KSPDestroy.
int KSPGetResidualHistory(KSP ksp, const double** history, int* count);

/// Human-readable one-line solver description ("gmres(30)+ilu0 rtol=1e-6").
int KSPGetDescription(KSP ksp, std::string* description);

/// Preconditioner setup counters for this handle: `builds` = full
/// constructions, `refreshes` = in-place value refreshes taken on the
/// SAME_NONZERO_PATTERN path.  Either pointer may be null.
int KSPGetPCSetupCounts(KSP ksp, int* builds, int* refreshes);

}  // namespace pksp
