// Internal machinery of the PKSP package: the operator and preconditioner
// abstractions behind the opaque handle.  Not installed; include only from
// pksp sources and white-box tests.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pksp/pksp.hpp"

namespace pksp::detail {

/// Abstract distributed linear operator y = A*x over block-row pieces.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;
  [[nodiscard]] virtual int localRows() const = 0;
  /// Assembled matrix if the operator has one (preconditioners need it);
  /// nullptr for shell operators.
  [[nodiscard]] virtual const lisi::sparse::DistCsrMatrix* matrix() const {
    return nullptr;
  }
};

/// Operator backed by an assembled DistCsrMatrix.
class MatrixOperator final : public LinearOperator {
 public:
  explicit MatrixOperator(const lisi::sparse::DistCsrMatrix* a) : a_(a) {}
  void apply(std::span<const double> x, std::span<double> y) const override {
    a_->spmv(x, y);
  }
  [[nodiscard]] int localRows() const override { return a_->localRows(); }
  [[nodiscard]] const lisi::sparse::DistCsrMatrix* matrix() const override {
    return a_;
  }

 private:
  const lisi::sparse::DistCsrMatrix* a_;
};

/// Matrix-free operator calling back into user code.
class ShellOperator final : public LinearOperator {
 public:
  ShellOperator(PkspShellMatVec fn, void* ctx, int localRows)
      : fn_(fn), ctx_(ctx), localRows_(localRows) {}
  void apply(std::span<const double> x, std::span<double> y) const override {
    fn_(ctx_, x.data(), y.data(), localRows_);
  }
  [[nodiscard]] int localRows() const override { return localRows_; }

 private:
  PkspShellMatVec fn_;
  void* ctx_;
  int localRows_;
};

/// Abstract preconditioner: z = M^{-1} r, process-local application.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;

  /// Same-pattern value refresh: re-derive the numeric content from `a`
  /// over the existing storage layout (no structural rebuild).  Returns
  /// false when the refresh is unsupported or `a` no longer matches the
  /// stored pattern — the caller then falls back to a full rebuild.  Throws
  /// lisi::Error on numeric defects (zero diagonal/pivot), like the
  /// factories.
  [[nodiscard]] virtual bool refresh(const lisi::sparse::DistCsrMatrix& a) {
    (void)a;
    return false;
  }

  /// Switch the apply path to float32 storage/arithmetic (PKSP_PRECISION_
  /// MIXED).  Default: no-op — preconditioners without a float32 path
  /// (identity, Jacobi) simply keep applying in float64.
  virtual void setLowPrecision(bool enable) { (void)enable; }
};

/// Identity (PC_NONE).
class IdentityPc final : public Preconditioner {
 public:
  void apply(std::span<const double> r, std::span<double> z) const override {
    std::copy(r.begin(), r.end(), z.begin());
  }
  [[nodiscard]] bool refresh(const lisi::sparse::DistCsrMatrix&) override {
    return true;  // nothing value-dependent to refresh
  }
};

/// Factory for the matrix-based preconditioners; throws lisi::Error when a
/// zero pivot or similar defect makes the preconditioner unusable.
std::unique_ptr<Preconditioner> makeJacobi(
    const lisi::sparse::DistCsrMatrix& a);
std::unique_ptr<Preconditioner> makeLocalSor(
    const lisi::sparse::DistCsrMatrix& a, double omega, int sweeps);
std::unique_ptr<Preconditioner> makeLocalIlu0(
    const lisi::sparse::DistCsrMatrix& a);

/// Result of one Krylov run.
struct SolveReport {
  int iterations = 0;
  double residualNorm = 0.0;  ///< preconditioned norm tracked by the method
  PkspConvergedReason reason = PKSP_ITERATING;
};

/// Common tolerance bundle plus the optional per-iteration monitor
/// (invoked with (iteration, tracked residual norm); iteration 0 reports
/// the initial residual).
struct Tolerances {
  double rtol = 1e-6;
  double atol = 1e-50;
  int maxits = 10000;
  std::function<void(int, double)> monitor;
};

// Krylov kernels (x holds the initial guess on entry, solution on exit).
SolveReport runCg(const lisi::comm::Comm& comm, const LinearOperator& a,
                  const Preconditioner& m, std::span<const double> b,
                  std::span<double> x, const Tolerances& tol);
SolveReport runGmres(const lisi::comm::Comm& comm, const LinearOperator& a,
                     const Preconditioner& m, std::span<const double> b,
                     std::span<double> x, const Tolerances& tol, int restart);
SolveReport runBiCgStab(const lisi::comm::Comm& comm, const LinearOperator& a,
                        const Preconditioner& m, std::span<const double> b,
                        std::span<double> x, const Tolerances& tol);
SolveReport runRichardson(const lisi::comm::Comm& comm,
                          const LinearOperator& a, const Preconditioner& m,
                          std::span<const double> b, std::span<double> x,
                          const Tolerances& tol);

// Communication-hiding variants (pksp_pipelined.cpp): one (CG) or two
// (BiCGStab) fused split-phase reductions per iteration, each overlapped
// with the SpMV/preconditioner work of the same iteration.  Same
// convergence criterion and monitor cadence as the classic loops.
SolveReport runPipelinedCg(const lisi::comm::Comm& comm,
                           const LinearOperator& a, const Preconditioner& m,
                           std::span<const double> b, std::span<double> x,
                           const Tolerances& tol);
SolveReport runPipelinedBiCgStab(const lisi::comm::Comm& comm,
                                 const LinearOperator& a,
                                 const Preconditioner& m,
                                 std::span<const double> b,
                                 std::span<double> x, const Tolerances& tol);

// Blocked multi-RHS kernels (pksp_blocked.cpp): solve A X = B for nRhs
// right-hand sides in lockstep over an assembled operator.  b/x are
// vector-major (lane v occupies [v*n, (v+1)*n)).  One spmvMulti halo
// exchange per iteration feeds every lane and the per-lane dot products
// fuse into one allreduce batch per algorithmic reduction point, so the
// collective count per iteration is that of ONE solve, not nRhs.  Each
// lane's arithmetic is bitwise identical to the corresponding single-RHS
// runCg/runGmres solve; finished lanes freeze without disturbing the rest.
// tol.monitor is invoked with the max tracked norm across active lanes.
std::vector<SolveReport> runBlockedCg(const lisi::comm::Comm& comm,
                                      const lisi::sparse::DistCsrMatrix& a,
                                      const Preconditioner& m,
                                      std::span<const double> b,
                                      std::span<double> x, int nRhs,
                                      const Tolerances& tol);
std::vector<SolveReport> runBlockedGmres(const lisi::comm::Comm& comm,
                                         const lisi::sparse::DistCsrMatrix& a,
                                         const Preconditioner& m,
                                         std::span<const double> b,
                                         std::span<double> x, int nRhs,
                                         const Tolerances& tol, int restart);

}  // namespace pksp::detail
