// PKSP public API: handle lifecycle, configuration, options-string parsing,
// and the solve dispatcher.
#include "pksp/pksp.hpp"

#include <cmath>
#include <sstream>

#include "pksp/pksp_internal.hpp"
#include "support/prec.hpp"
#include "support/string_util.hpp"

namespace pksp {

using detail::LinearOperator;
using detail::Preconditioner;
using detail::SolveReport;
using detail::Tolerances;

/// The state behind a KSP handle.
struct PkspSolver {
  lisi::comm::Comm comm;

  std::unique_ptr<LinearOperator> op;
  PkspType type = PKSP_GMRES;
  PkspPcType pcType = PKSP_PC_NONE;
  Tolerances tol;
  int restart = 30;
  double sorOmega = 1.0;
  int sorSweeps = 1;
  bool nonzeroGuess = false;
  bool reusePc = false;
  PkspPipelineMode pipeline = PKSP_PIPELINE_OFF;
  PkspPrecision precision = PKSP_PRECISION_DOUBLE;

  // Built lazily at solve time (the operator may change between solves).
  std::unique_ptr<Preconditioner> pc;
  bool pcStale = true;
  /// Set by KSPSetOperator(..., PKSP_SAME_NONZERO_PATTERN): the next solve
  /// value-refreshes the built preconditioner instead of rebuilding it.
  bool pcRefreshPending = false;
  int pcBuilds = 0;     ///< full preconditioner constructions on this handle
  int pcRefreshes = 0;  ///< in-place same-pattern refreshes on this handle

  SolveReport lastReport;
  double lastTrueResidual = 0.0;

  PkspMonitorFn monitor = nullptr;
  void* monitorCtx = nullptr;
  std::vector<double> residualHistory;
};

namespace {

int guard(KSP ksp) { return ksp == nullptr ? PKSP_ERR_ARG : PKSP_SUCCESS; }

/// Build (or rebuild) the preconditioner for the current operator/config.
int buildPc(KSP ksp) {
  const lisi::sparse::DistCsrMatrix* a = ksp->op->matrix();
  try {
    switch (ksp->pcType) {
      case PKSP_PC_NONE:
        ksp->pc = std::make_unique<detail::IdentityPc>();
        break;
      case PKSP_PC_JACOBI:
        if (!a) return PKSP_ERR_UNSUPPORTED;  // shell operators: PC_NONE only
        ksp->pc = detail::makeJacobi(*a);
        break;
      case PKSP_PC_SOR:
        if (!a) return PKSP_ERR_UNSUPPORTED;
        ksp->pc = detail::makeLocalSor(*a, ksp->sorOmega, ksp->sorSweeps);
        break;
      case PKSP_PC_ILU0:
      case PKSP_PC_BJACOBI:
        if (!a) return PKSP_ERR_UNSUPPORTED;
        ksp->pc = detail::makeLocalIlu0(*a);
        break;
      default:
        return PKSP_ERR_ARG;
    }
  } catch (const lisi::Error&) {
    return PKSP_ERR_NUMERIC;
  }
  ksp->pc->setLowPrecision(ksp->precision == PKSP_PRECISION_MIXED);
  ksp->pcStale = false;
  ksp->pcRefreshPending = false;
  ++ksp->pcBuilds;
  lisi::obs::count("pksp.pc_builds");
  return PKSP_SUCCESS;
}

const char* typeName(PkspType t) {
  switch (t) {
    case PKSP_RICHARDSON: return "richardson";
    case PKSP_CG: return "cg";
    case PKSP_GMRES: return "gmres";
    case PKSP_BICGSTAB: return "bicgstab";
  }
  return "?";
}

/// Resolve the effective pipelining decision for this solve.  AUTO enables
/// the communication-hiding loops only when there is communication to hide.
bool usePipelined(const PkspSolver& ksp) {
  switch (ksp.pipeline) {
    case PKSP_PIPELINE_OFF: return false;
    case PKSP_PIPELINE_ON: return true;
    case PKSP_PIPELINE_AUTO: return ksp.comm.size() > 1;
  }
  return false;
}

/// Lazy preconditioner setup shared by KSPSolve and KSPSolveMulti: full
/// rebuild when stale, in-place value refresh on the SAME_NONZERO_PATTERN
/// path, falling back to a rebuild when the refresh is unsupported.
int setupPc(KSP ksp) {
  if (ksp->pcStale) return buildPc(ksp);
  if (ksp->pcRefreshPending) {
    ksp->pcRefreshPending = false;
    const lisi::sparse::DistCsrMatrix* a = ksp->op->matrix();
    bool refreshed = false;
    try {
      refreshed = (a != nullptr) && ksp->pc->refresh(*a);
    } catch (const lisi::Error&) {
      return PKSP_ERR_NUMERIC;
    }
    if (refreshed) {
      ++ksp->pcRefreshes;
      lisi::obs::count("pksp.pc_refreshes");
      return PKSP_SUCCESS;
    }
    return buildPc(ksp);
  }
  return PKSP_SUCCESS;
}

const char* pcName(PkspPcType t) {
  switch (t) {
    case PKSP_PC_NONE: return "none";
    case PKSP_PC_JACOBI: return "jacobi";
    case PKSP_PC_SOR: return "sor";
    case PKSP_PC_ILU0: return "ilu0";
    case PKSP_PC_BJACOBI: return "bjacobi";
  }
  return "?";
}

}  // namespace

int KSPCreate(const lisi::comm::Comm& comm, KSP* outKsp) {
  if (outKsp == nullptr || !comm.valid()) return PKSP_ERR_ARG;
  *outKsp = new PkspSolver{};
  (*outKsp)->comm = comm;
  return PKSP_SUCCESS;
}

int KSPDestroy(KSP* ksp) {
  if (ksp == nullptr) return PKSP_ERR_ARG;
  delete *ksp;
  *ksp = nullptr;
  return PKSP_SUCCESS;
}

int KSPSetOperator(KSP ksp, const lisi::sparse::DistCsrMatrix* a) {
  return KSPSetOperator(ksp, a, PKSP_DIFFERENT_NONZERO_PATTERN);
}

int KSPSetOperator(KSP ksp, const lisi::sparse::DistCsrMatrix* a,
                   PkspMatStructure structure) {
  if (guard(ksp) != PKSP_SUCCESS || a == nullptr) return PKSP_ERR_ARG;
  if (a->globalRows() != a->globalCols()) return PKSP_ERR_ARG;
  ksp->op = std::make_unique<detail::MatrixOperator>(a);
  switch (structure) {
    case PKSP_SAME_PRECONDITIONER:
      // Caller vouches the operator content is unchanged: keep the built
      // preconditioner exactly as it is (build lazily if none exists yet).
      if (!ksp->pc) ksp->pcStale = true;
      break;
    case PKSP_SAME_NONZERO_PATTERN:
      // reusePc still wins: a frozen preconditioner is not even refreshed.
      if (ksp->reusePc && ksp->pc) break;
      if (ksp->pc && !ksp->pcStale) {
        ksp->pcRefreshPending = true;
      } else {
        ksp->pcStale = true;
      }
      break;
    case PKSP_DIFFERENT_NONZERO_PATTERN:
      if (!(ksp->reusePc && ksp->pc)) ksp->pcStale = true;
      break;
    default:
      return PKSP_ERR_ARG;
  }
  return PKSP_SUCCESS;
}

int KSPSetOperatorShell(KSP ksp, PkspShellMatVec matvec, void* ctx,
                        int localRows) {
  if (guard(ksp) != PKSP_SUCCESS || matvec == nullptr || localRows < 0) {
    return PKSP_ERR_ARG;
  }
  ksp->op = std::make_unique<detail::ShellOperator>(matvec, ctx, localRows);
  ksp->pcStale = true;
  return PKSP_SUCCESS;
}

int KSPSetType(KSP ksp, PkspType type) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  switch (type) {
    case PKSP_RICHARDSON:
    case PKSP_CG:
    case PKSP_GMRES:
    case PKSP_BICGSTAB:
      ksp->type = type;
      return PKSP_SUCCESS;
  }
  return PKSP_ERR_ARG;
}

int KSPSetPCType(KSP ksp, PkspPcType type) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  switch (type) {
    case PKSP_PC_NONE:
    case PKSP_PC_JACOBI:
    case PKSP_PC_SOR:
    case PKSP_PC_ILU0:
    case PKSP_PC_BJACOBI:
      ksp->pcType = type;
      ksp->pcStale = true;
      return PKSP_SUCCESS;
  }
  return PKSP_ERR_ARG;
}

int KSPSetTolerances(KSP ksp, double rtol, double atol, int maxits) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  if (rtol >= 0) ksp->tol.rtol = rtol;
  if (atol >= 0) ksp->tol.atol = atol;
  if (maxits >= 0) ksp->tol.maxits = maxits;
  return PKSP_SUCCESS;
}

int KSPSetRestart(KSP ksp, int restart) {
  if (guard(ksp) != PKSP_SUCCESS || restart < 1) return PKSP_ERR_ARG;
  ksp->restart = restart;
  return PKSP_SUCCESS;
}

int KSPSetSorOptions(KSP ksp, double omega, int sweeps) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  if (omega <= 0.0 || omega >= 2.0 || sweeps < 1) return PKSP_ERR_ARG;
  ksp->sorOmega = omega;
  ksp->sorSweeps = sweeps;
  ksp->pcStale = true;
  return PKSP_SUCCESS;
}

int KSPSetInitialGuessNonzero(KSP ksp, bool flag) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  ksp->nonzeroGuess = flag;
  return PKSP_SUCCESS;
}

int KSPSetReusePreconditioner(KSP ksp, bool flag) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  ksp->reusePc = flag;
  return PKSP_SUCCESS;
}

int KSPSetPipeline(KSP ksp, PkspPipelineMode mode) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  switch (mode) {
    case PKSP_PIPELINE_OFF:
    case PKSP_PIPELINE_ON:
    case PKSP_PIPELINE_AUTO:
      ksp->pipeline = mode;
      return PKSP_SUCCESS;
  }
  return PKSP_ERR_ARG;
}

int KSPSetPrecision(KSP ksp, PkspPrecision precision) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  switch (precision) {
    case PKSP_PRECISION_DOUBLE:
    case PKSP_PRECISION_MIXED:
      if (ksp->precision != precision) {
        ksp->precision = precision;
        ksp->pcStale = true;
      }
      return PKSP_SUCCESS;
  }
  return PKSP_ERR_ARG;
}

int KSPSetFromString(KSP ksp, const char* options) {
  if (guard(ksp) != PKSP_SUCCESS || options == nullptr) return PKSP_ERR_ARG;
  std::istringstream tokens{std::string(options)};
  std::string key;
  while (tokens >> key) {
    auto value = [&tokens]() -> std::string {
      std::string v;
      tokens >> v;
      return v;
    };
    if (key == "-ksp_type") {
      const std::string v = lisi::toLower(value());
      if (v == "richardson") KSPSetType(ksp, PKSP_RICHARDSON);
      else if (v == "cg") KSPSetType(ksp, PKSP_CG);
      else if (v == "gmres") KSPSetType(ksp, PKSP_GMRES);
      else if (v == "bicgstab" || v == "bcgs") KSPSetType(ksp, PKSP_BICGSTAB);
      else return PKSP_ERR_UNSUPPORTED;
    } else if (key == "-pc_type") {
      const std::string v = lisi::toLower(value());
      if (v == "none") KSPSetPCType(ksp, PKSP_PC_NONE);
      else if (v == "jacobi") KSPSetPCType(ksp, PKSP_PC_JACOBI);
      else if (v == "sor") KSPSetPCType(ksp, PKSP_PC_SOR);
      else if (v == "ilu" || v == "ilu0") KSPSetPCType(ksp, PKSP_PC_ILU0);
      else if (v == "bjacobi") KSPSetPCType(ksp, PKSP_PC_BJACOBI);
      else return PKSP_ERR_UNSUPPORTED;
    } else if (key == "-ksp_rtol") {
      const auto v = lisi::parseDouble(value());
      if (!v) return PKSP_ERR_ARG;
      KSPSetTolerances(ksp, *v, -1, -1);
    } else if (key == "-ksp_atol") {
      const auto v = lisi::parseDouble(value());
      if (!v) return PKSP_ERR_ARG;
      KSPSetTolerances(ksp, -1, *v, -1);
    } else if (key == "-ksp_max_it") {
      const auto v = lisi::parseInt(value());
      if (!v) return PKSP_ERR_ARG;
      KSPSetTolerances(ksp, -1, -1, static_cast<int>(*v));
    } else if (key == "-ksp_gmres_restart") {
      const auto v = lisi::parseInt(value());
      if (!v || *v < 1) return PKSP_ERR_ARG;
      KSPSetRestart(ksp, static_cast<int>(*v));
    } else if (key == "-pc_sor_omega") {
      const auto v = lisi::parseDouble(value());
      if (!v) return PKSP_ERR_ARG;
      if (KSPSetSorOptions(ksp, *v, ksp->sorSweeps) != PKSP_SUCCESS) {
        return PKSP_ERR_ARG;
      }
    } else if (key == "-ksp_initial_guess_nonzero") {
      const auto v = lisi::parseBool(value());
      if (!v) return PKSP_ERR_ARG;
      KSPSetInitialGuessNonzero(ksp, *v);
    } else if (key == "-ksp_precision") {
      const std::string v = lisi::toLower(value());
      if (v == "double" || v == "fp64" || v == "float64") {
        KSPSetPrecision(ksp, PKSP_PRECISION_DOUBLE);
      } else if (v == "mixed" || v == "fp32" || v == "float32") {
        KSPSetPrecision(ksp, PKSP_PRECISION_MIXED);
      } else {
        return PKSP_ERR_UNSUPPORTED;
      }
    } else if (key == "-ksp_pipeline") {
      const std::string v = lisi::toLower(value());
      if (v == "auto") {
        KSPSetPipeline(ksp, PKSP_PIPELINE_AUTO);
      } else if (const auto flag = lisi::parseBool(v)) {
        KSPSetPipeline(ksp, *flag ? PKSP_PIPELINE_ON : PKSP_PIPELINE_OFF);
      } else {
        return PKSP_ERR_ARG;
      }
    } else {
      return PKSP_ERR_UNSUPPORTED;
    }
  }
  return PKSP_SUCCESS;
}

int KSPSolve(KSP ksp, std::span<const double> bLocal,
             std::span<double> xLocal) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  if (!ksp->op) return PKSP_ERR_ORDER;
  const auto n = static_cast<std::size_t>(ksp->op->localRows());
  if (bLocal.size() != n || xLocal.size() != n) return PKSP_ERR_ARG;

  {
    lisi::obs::Span pcSpan("pksp.pc_setup");
    const int rc = setupPc(ksp);
    if (rc != PKSP_SUCCESS) return rc;
  }
  if (!ksp->nonzeroGuess) {
    std::fill(xLocal.begin(), xLocal.end(), 0.0);
  }

  // Arm the per-iteration observer: records the residual history and relays
  // to the user monitor if one is set.
  ksp->residualHistory.clear();
  // Reset the report before running: if the method throws below, the caller
  // must see this solve as not-converged, not the previous solve's stats.
  ksp->lastReport = SolveReport{};
  ksp->lastTrueResidual = 0.0;
  Tolerances tol = ksp->tol;
  tol.monitor = [ksp](int iteration, double rnorm) {
    if (static_cast<std::size_t>(iteration) >= ksp->residualHistory.size()) {
      ksp->residualHistory.resize(static_cast<std::size_t>(iteration) + 1);
    }
    ksp->residualHistory[static_cast<std::size_t>(iteration)] = rnorm;
    if (ksp->monitor) ksp->monitor(ksp->monitorCtx, iteration, rnorm);
  };

  const bool pipelined = usePipelined(*ksp);
  try {
    lisi::obs::Span iterSpan("pksp.iterate");
    // Mixed precision: the float32 preconditioner apply is not exactly
    // linear (rounding), which perturbs the Krylov recurrences — the
    // method's tracked norm can declare convergence while the true residual
    // stalls near the float32 perturbation floor.  The float64 convergence
    // decision therefore lives HERE: compute the float64 target
    // max(rtol*||z_0||, atol) up front, and after the method reports
    // convergence verify the recomputed preconditioned residual against it,
    // re-entering the method with the current iterate as the guess (defect
    // correction — each round renormalizes, so the float32 floor is
    // relative to the shrinking defect) until the criterion truly holds.
    const bool mixedRefine = ksp->precision == PKSP_PRECISION_MIXED;
    constexpr int kMaxRefineRounds = 4;
    double target = 0.0;
    if (mixedRefine) {
      std::vector<double> r0(n);
      std::vector<double> z0(n);
      ksp->op->apply(xLocal, std::span<double>(r0));
      for (std::size_t i = 0; i < n; ++i) r0[i] = bLocal[i] - r0[i];
      ksp->pc->apply(std::span<const double>(r0), std::span<double>(z0));
      target = std::max(
          tol.rtol * lisi::sparse::distNorm2(ksp->comm,
                                             std::span<const double>(z0)),
          tol.atol);
    }
    Tolerances roundTol = tol;
    int totalIters = 0;
    for (int round = 0;; ++round) {
      switch (ksp->type) {
        case PKSP_CG:
          ksp->lastReport =
              pipelined ? detail::runPipelinedCg(ksp->comm, *ksp->op, *ksp->pc,
                                                 bLocal, xLocal, roundTol)
                        : detail::runCg(ksp->comm, *ksp->op, *ksp->pc, bLocal,
                                        xLocal, roundTol);
          break;
        case PKSP_GMRES:
          ksp->lastReport =
              detail::runGmres(ksp->comm, *ksp->op, *ksp->pc, bLocal, xLocal,
                               roundTol, ksp->restart);
          break;
        case PKSP_BICGSTAB:
          ksp->lastReport =
              pipelined ? detail::runPipelinedBiCgStab(ksp->comm, *ksp->op,
                                                       *ksp->pc, bLocal,
                                                       xLocal, roundTol)
                        : detail::runBiCgStab(ksp->comm, *ksp->op, *ksp->pc,
                                              bLocal, xLocal, roundTol);
          break;
        case PKSP_RICHARDSON:
          ksp->lastReport = detail::runRichardson(ksp->comm, *ksp->op,
                                                  *ksp->pc, bLocal, xLocal,
                                                  roundTol);
          break;
        default:
          return PKSP_ERR_ARG;
      }
      totalIters += ksp->lastReport.iterations;
      // Recompute both diagnostic residuals against the iterate actually
      // returned in x.  The norm tracked inside the Krylov loops is carried
      // by recurrences (and, in the pipelined variants, evaluated one
      // reduction early), so at convergence it can be slightly stale
      // relative to the final iterate; recomputing keeps KSPGetResidualNorm
      // and the recorded report consistent with x.  Both lanes share one
      // fused reduction, and the unpreconditioned lane is bitwise identical
      // to the distNorm2 it replaces (reductions are elementwise).
      std::vector<double> r(n);
      std::vector<double> z(n);
      ksp->op->apply(xLocal, std::span<double>(r));
      for (std::size_t i = 0; i < n; ++i) r[i] = bLocal[i] - r[i];
      ksp->pc->apply(std::span<const double>(r), std::span<double>(z));
      const auto [rr, zz] = lisi::sparse::distDot2(
          ksp->comm, std::span<const double>(r), std::span<const double>(r),
          std::span<const double>(z), std::span<const double>(z));
      ksp->lastTrueResidual = std::sqrt(rr);
      ksp->lastReport.residualNorm = std::sqrt(zz);
      if (!mixedRefine || ksp->lastReport.reason <= 0) break;
      const double znorm = std::sqrt(zz);
      if (znorm <= target || round >= kMaxRefineRounds ||
          totalIters >= tol.maxits) {
        break;
      }
      // Only the remaining reduction is asked of the next round (its own
      // relative criterion restarts at the current defect).
      roundTol.rtol = std::min(0.5, 0.5 * target / znorm);
      roundTol.maxits = tol.maxits - totalIters;
      lisi::prec::noteRefineSweeps(1);
      lisi::obs::count("prec.refine_sweeps");
    }
    ksp->lastReport.iterations = totalIters;
  } catch (const lisi::Error&) {
    return PKSP_ERR_NUMERIC;
  }
  return ksp->lastReport.reason > 0 ? PKSP_SUCCESS : PKSP_ERR_NUMERIC;
}

int KSPSolveMulti(KSP ksp, std::span<const double> bLocal,
                  std::span<double> xLocal, int nRhs) {
  if (guard(ksp) != PKSP_SUCCESS || nRhs < 1) return PKSP_ERR_ARG;
  if (!ksp->op) return PKSP_ERR_ORDER;
  const auto n = static_cast<std::size_t>(ksp->op->localRows());
  const auto nv = static_cast<std::size_t>(nRhs);
  if (bLocal.size() != n * nv || xLocal.size() != n * nv) return PKSP_ERR_ARG;
  if (nRhs == 1) return KSPSolve(ksp, bLocal, xLocal);

  const lisi::sparse::DistCsrMatrix* a = ksp->op->matrix();
  const bool blocked = a != nullptr &&
                       (ksp->type == PKSP_CG || ksp->type == PKSP_GMRES) &&
                       ksp->precision == PKSP_PRECISION_DOUBLE;
  if (!blocked) {
    // No blocked kernel for this configuration: per-RHS loop with the same
    // results a caller-side loop would produce, aggregated diagnostics.
    SolveReport agg;
    double trueRes = 0.0;
    int rc = PKSP_SUCCESS;
    for (std::size_t k = 0; k < nv; ++k) {
      const int rck =
          KSPSolve(ksp, bLocal.subspan(k * n, n), xLocal.subspan(k * n, n));
      if (rc == PKSP_SUCCESS && rck != PKSP_SUCCESS) rc = rck;
      agg.iterations = std::max(agg.iterations, ksp->lastReport.iterations);
      agg.residualNorm =
          std::max(agg.residualNorm, ksp->lastReport.residualNorm);
      agg.reason = k == 0 ? ksp->lastReport.reason
                          : std::min(agg.reason, ksp->lastReport.reason);
      trueRes = std::max(trueRes, ksp->lastTrueResidual);
    }
    ksp->lastReport = agg;
    ksp->lastTrueResidual = trueRes;
    return rc;
  }

  {
    lisi::obs::Span pcSpan("pksp.pc_setup");
    const int rc = setupPc(ksp);
    if (rc != PKSP_SUCCESS) return rc;
  }
  if (!ksp->nonzeroGuess) {
    std::fill(xLocal.begin(), xLocal.end(), 0.0);
  }
  ksp->residualHistory.clear();
  ksp->lastReport = SolveReport{};
  ksp->lastTrueResidual = 0.0;
  Tolerances tol = ksp->tol;
  tol.monitor = [ksp](int iteration, double rnorm) {
    if (static_cast<std::size_t>(iteration) >= ksp->residualHistory.size()) {
      ksp->residualHistory.resize(static_cast<std::size_t>(iteration) + 1);
    }
    ksp->residualHistory[static_cast<std::size_t>(iteration)] = rnorm;
    if (ksp->monitor) ksp->monitor(ksp->monitorCtx, iteration, rnorm);
  };

  try {
    lisi::obs::Span iterSpan("pksp.iterate_multi",
                             static_cast<std::uint64_t>(nRhs));
    lisi::obs::count("pksp.blocked_solves");
    std::vector<SolveReport> reps =
        ksp->type == PKSP_CG
            ? detail::runBlockedCg(ksp->comm, *a, *ksp->pc, bLocal, xLocal,
                                   nRhs, tol)
            : detail::runBlockedGmres(ksp->comm, *a, *ksp->pc, bLocal, xLocal,
                                      nRhs, tol, ksp->restart);
    // Recompute both diagnostic residuals of every lane against the
    // returned iterates (same policy as KSPSolve), with one block matvec
    // and one fused reduction for the whole batch.
    std::vector<double> r(n * nv);
    std::vector<double> z(n * nv);
    a->spmvMulti(xLocal, std::span<double>(r), nRhs);
    for (std::size_t i = 0; i < n * nv; ++i) r[i] = bLocal[i] - r[i];
    std::vector<lisi::sparse::DotArgs> dots;
    dots.reserve(2 * nv);
    for (std::size_t k = 0; k < nv; ++k) {
      const std::span<const double> rk =
          std::span<const double>(r).subspan(k * n, n);
      const std::span<double> zk = std::span<double>(z).subspan(k * n, n);
      ksp->pc->apply(rk, zk);
      dots.push_back({rk, rk});
      dots.push_back({zk, zk});
    }
    lisi::sparse::PendingDots pending =
        lisi::sparse::distDotsBegin(ksp->comm, dots);
    const std::span<const double> norms = lisi::sparse::distDotsEnd(pending);
    SolveReport agg;
    for (std::size_t k = 0; k < nv; ++k) {
      reps[k].residualNorm = std::sqrt(norms[2 * k + 1]);
      agg.iterations = std::max(agg.iterations, reps[k].iterations);
      agg.residualNorm = std::max(agg.residualNorm, reps[k].residualNorm);
      agg.reason =
          k == 0 ? reps[k].reason : std::min(agg.reason, reps[k].reason);
      ksp->lastTrueResidual =
          std::max(ksp->lastTrueResidual, std::sqrt(norms[2 * k]));
    }
    ksp->lastReport = agg;
  } catch (const lisi::Error&) {
    return PKSP_ERR_NUMERIC;
  }
  return ksp->lastReport.reason > 0 ? PKSP_SUCCESS : PKSP_ERR_NUMERIC;
}

int KSPGetIterationNumber(KSP ksp, int* iters) {
  if (guard(ksp) != PKSP_SUCCESS || iters == nullptr) return PKSP_ERR_ARG;
  *iters = ksp->lastReport.iterations;
  return PKSP_SUCCESS;
}

int KSPGetResidualNorm(KSP ksp, double* norm) {
  if (guard(ksp) != PKSP_SUCCESS || norm == nullptr) return PKSP_ERR_ARG;
  *norm = ksp->lastTrueResidual;
  return PKSP_SUCCESS;
}

int KSPGetConvergedReason(KSP ksp, PkspConvergedReason* reason) {
  if (guard(ksp) != PKSP_SUCCESS || reason == nullptr) return PKSP_ERR_ARG;
  *reason = ksp->lastReport.reason;
  return PKSP_SUCCESS;
}

int KSPSetMonitor(KSP ksp, PkspMonitorFn monitor, void* ctx) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  ksp->monitor = monitor;
  ksp->monitorCtx = ctx;
  return PKSP_SUCCESS;
}

int KSPGetResidualHistory(KSP ksp, const double** history, int* count) {
  if (guard(ksp) != PKSP_SUCCESS || history == nullptr || count == nullptr) {
    return PKSP_ERR_ARG;
  }
  *history = ksp->residualHistory.data();
  *count = static_cast<int>(ksp->residualHistory.size());
  return PKSP_SUCCESS;
}

int KSPGetPCSetupCounts(KSP ksp, int* builds, int* refreshes) {
  if (guard(ksp) != PKSP_SUCCESS) return PKSP_ERR_ARG;
  if (builds != nullptr) *builds = ksp->pcBuilds;
  if (refreshes != nullptr) *refreshes = ksp->pcRefreshes;
  return PKSP_SUCCESS;
}

int KSPGetDescription(KSP ksp, std::string* description) {
  if (guard(ksp) != PKSP_SUCCESS || description == nullptr) return PKSP_ERR_ARG;
  std::ostringstream os;
  os << typeName(ksp->type);
  if (ksp->type == PKSP_GMRES) os << '(' << ksp->restart << ')';
  if (ksp->pipeline != PKSP_PIPELINE_OFF &&
      (ksp->type == PKSP_CG || ksp->type == PKSP_BICGSTAB)) {
    os << "[pipelined" << (ksp->pipeline == PKSP_PIPELINE_AUTO ? ":auto" : "")
       << ']';
  }
  os << '+' << pcName(ksp->pcType);
  if (ksp->precision == PKSP_PRECISION_MIXED) os << "[fp32]";
  os << " rtol=" << ksp->tol.rtol
     << " atol=" << ksp->tol.atol << " maxits=" << ksp->tol.maxits;
  *description = os.str();
  return PKSP_SUCCESS;
}

}  // namespace pksp
