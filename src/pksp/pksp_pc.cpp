// Process-local preconditioners for PKSP: Jacobi, local SOR, and ILU(0) on
// the local diagonal block (one block per process, i.e. block Jacobi).
#include <algorithm>
#include <cmath>

#include "pksp/pksp_internal.hpp"
#include "support/prec.hpp"

namespace pksp::detail {
namespace {

using lisi::sparse::CsrMatrix;
using lisi::sparse::DistCsrMatrix;

/// Extract the process-local diagonal block (rows owned by this rank,
/// columns restricted to the owned range) with 0-based local indices.
CsrMatrix localDiagonalBlock(const DistCsrMatrix& a) {
  const CsrMatrix& loc = a.localBlock();
  const int start = a.startRow();
  const int end = start + a.localRows();
  CsrMatrix blk;
  blk.rows = a.localRows();
  blk.cols = a.localRows();
  blk.rowPtr.assign(static_cast<std::size_t>(blk.rows) + 1, 0);
  for (int i = 0; i < loc.rows; ++i) {
    for (int k = loc.rowPtr[static_cast<std::size_t>(i)];
         k < loc.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = loc.colIdx[static_cast<std::size_t>(k)];
      if (c >= start && c < end) {
        blk.colIdx.push_back(c - start);
        blk.values.push_back(loc.values[static_cast<std::size_t>(k)]);
      }
    }
    blk.rowPtr[static_cast<std::size_t>(i) + 1] =
        static_cast<int>(blk.values.size());
  }
  return blk;
}

class JacobiPc final : public Preconditioner {
 public:
  explicit JacobiPc(const DistCsrMatrix& a) : invDiag_(a.localDiagonal()) {
    invert();
  }
  void apply(std::span<const double> r, std::span<double> z) const override {
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = invDiag_[i] * r[i];
  }
  [[nodiscard]] bool refresh(const DistCsrMatrix& a) override {
    std::vector<double> d = a.localDiagonal();
    if (d.size() != invDiag_.size()) return false;
    invDiag_ = std::move(d);
    invert();
    return true;
  }

 private:
  void invert() {
    for (double& d : invDiag_) {
      LISI_CHECK(d != 0.0, "Jacobi preconditioner: zero diagonal entry");
      d = 1.0 / d;
    }
  }
  std::vector<double> invDiag_;
};

/// Local SOR: `sweeps` forward Gauss-Seidel-with-relaxation passes on the
/// local diagonal block, starting from z = 0 (standard SOR preconditioning).
class LocalSorPc final : public Preconditioner {
 public:
  LocalSorPc(const DistCsrMatrix& a, double omega, int sweeps)
      : blk_(localDiagonalBlock(a)), omega_(omega), sweeps_(sweeps) {
    LISI_CHECK(omega > 0.0 && omega < 2.0,
               "SOR preconditioner: omega must be in (0, 2)");
    LISI_CHECK(sweeps >= 1, "SOR preconditioner: need at least one sweep");
    diag_.resize(static_cast<std::size_t>(blk_.rows));
    for (int i = 0; i < blk_.rows; ++i) {
      double d = 0.0;
      for (int k = blk_.rowPtr[static_cast<std::size_t>(i)];
           k < blk_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        if (blk_.colIdx[static_cast<std::size_t>(k)] == i) {
          d += blk_.values[static_cast<std::size_t>(k)];
        }
      }
      LISI_CHECK(d != 0.0, "SOR preconditioner: zero diagonal entry");
      diag_[static_cast<std::size_t>(i)] = d;
    }
  }

  [[nodiscard]] bool refresh(const DistCsrMatrix& a) override {
    // Same-pattern contract: the extracted diagonal block keeps its layout,
    // so only the values (and the cached row diagonals) need rewriting.
    CsrMatrix blk = localDiagonalBlock(a);
    if (blk.rowPtr != blk_.rowPtr || blk.colIdx != blk_.colIdx) return false;
    blk_.values = std::move(blk.values);
    for (int i = 0; i < blk_.rows; ++i) {
      double d = 0.0;
      for (int k = blk_.rowPtr[static_cast<std::size_t>(i)];
           k < blk_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        if (blk_.colIdx[static_cast<std::size_t>(k)] == i) {
          d += blk_.values[static_cast<std::size_t>(k)];
        }
      }
      LISI_CHECK(d != 0.0, "SOR preconditioner: zero diagonal entry");
      diag_[static_cast<std::size_t>(i)] = d;
    }
    if (low_) mirrorToFloat();
    return true;
  }

  void setLowPrecision(bool enable) override {
    low_ = enable;
    if (enable) {
      mirrorToFloat();
    } else {
      valsF_.clear();
      diagF_.clear();
      zF_.clear();
    }
  }

  void apply(std::span<const double> r, std::span<double> z) const override {
    if (low_) {
      applyLow(r, z);
      return;
    }
    std::fill(z.begin(), z.end(), 0.0);
    for (int sweep = 0; sweep < sweeps_; ++sweep) {
      for (int i = 0; i < blk_.rows; ++i) {
        double sigma = 0.0;
        for (int k = blk_.rowPtr[static_cast<std::size_t>(i)];
             k < blk_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
          const int j = blk_.colIdx[static_cast<std::size_t>(k)];
          if (j != i) {
            sigma += blk_.values[static_cast<std::size_t>(k)] *
                     z[static_cast<std::size_t>(j)];
          }
        }
        const double gs =
            (r[static_cast<std::size_t>(i)] - sigma) /
            diag_[static_cast<std::size_t>(i)];
        z[static_cast<std::size_t>(i)] =
            (1.0 - omega_) * z[static_cast<std::size_t>(i)] + omega_ * gs;
      }
    }
    lisi::prec::noteBytesHigh(8LL * static_cast<long long>(blk_.values.size()) *
                              sweeps_);
  }

 private:
  void mirrorToFloat() {
    valsF_.assign(blk_.values.begin(), blk_.values.end());
    diagF_.assign(diag_.begin(), diag_.end());
    zF_.resize(static_cast<std::size_t>(blk_.rows));
  }

  /// Float32 sweeps over the float32 block mirror.  The residual is cast on
  /// read and the result on write; z is only an M^{-1} direction, so its
  /// float32 rounding perturbs the preconditioner, not the Krylov recurrence.
  void applyLow(std::span<const double> r, std::span<double> z) const {
    std::fill(zF_.begin(), zF_.end(), 0.0f);
    const float omega = static_cast<float>(omega_);
    for (int sweep = 0; sweep < sweeps_; ++sweep) {
      for (int i = 0; i < blk_.rows; ++i) {
        float sigma = 0.0f;
        for (int k = blk_.rowPtr[static_cast<std::size_t>(i)];
             k < blk_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
          const int j = blk_.colIdx[static_cast<std::size_t>(k)];
          if (j != i) {
            sigma += valsF_[static_cast<std::size_t>(k)] *
                     zF_[static_cast<std::size_t>(j)];
          }
        }
        const float gs =
            (static_cast<float>(r[static_cast<std::size_t>(i)]) - sigma) /
            diagF_[static_cast<std::size_t>(i)];
        zF_[static_cast<std::size_t>(i)] =
            (1.0f - omega) * zF_[static_cast<std::size_t>(i)] + omega * gs;
      }
    }
    for (std::size_t i = 0; i < z.size(); ++i) {
      z[i] = static_cast<double>(zF_[i]);
    }
    lisi::prec::noteLowApply();
    lisi::prec::noteBytesLow(4LL * static_cast<long long>(valsF_.size()) *
                             sweeps_);
  }

  CsrMatrix blk_;
  std::vector<double> diag_;
  double omega_;
  int sweeps_;
  bool low_ = false;
  std::vector<float> valsF_, diagF_;
  mutable std::vector<float> zF_;
};

/// ILU(0) of the local diagonal block: incomplete LU with zero fill,
/// i.e. L and U inherit exactly the sparsity of the block.  apply() performs
/// the two triangular solves.  One block per process = block-Jacobi ILU(0),
/// PETSc's default parallel preconditioner configuration.
class LocalIlu0Pc final : public Preconditioner {
 public:
  explicit LocalIlu0Pc(const DistCsrMatrix& a) : lu_(localDiagonalBlock(a)) {
    lu_.canonicalize();
    const int n = lu_.rows;
    diagPos_.assign(static_cast<std::size_t>(n), -1);
    for (int i = 0; i < n; ++i) {
      for (int k = lu_.rowPtr[static_cast<std::size_t>(i)];
           k < lu_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        if (lu_.colIdx[static_cast<std::size_t>(k)] == i) {
          diagPos_[static_cast<std::size_t>(i)] = k;
        }
      }
      LISI_CHECK(diagPos_[static_cast<std::size_t>(i)] >= 0,
                 "ILU(0): structurally zero diagonal");
    }
    factor();
  }

  [[nodiscard]] bool refresh(const DistCsrMatrix& a) override {
    // Rewrite the factor storage with the fresh values over the fixed
    // ILU(0) pattern (zero fill: the factors live exactly on the block's
    // sparsity) and redo the numeric elimination.  diagPos_ stays valid.
    CsrMatrix blk = localDiagonalBlock(a);
    blk.canonicalize();
    if (blk.rowPtr != lu_.rowPtr || blk.colIdx != lu_.colIdx) return false;
    lu_.values = std::move(blk.values);
    factor();
    return true;
  }

  void setLowPrecision(bool enable) override {
    low_ = enable;
    if (enable) {
      mirrorToFloat();
    } else {
      luValsF_.clear();
      zF_.clear();
    }
  }

  void apply(std::span<const double> r, std::span<double> z) const override {
    if (low_) {
      applyLow(r, z);
      return;
    }
    const int n = lu_.rows;
    // Forward solve L y = r (unit lower triangular).
    for (int i = 0; i < n; ++i) {
      double acc = r[static_cast<std::size_t>(i)];
      for (int k = lu_.rowPtr[static_cast<std::size_t>(i)];
           k < diagPos_[static_cast<std::size_t>(i)]; ++k) {
        acc -= lu_.values[static_cast<std::size_t>(k)] *
               z[static_cast<std::size_t>(lu_.colIdx[static_cast<std::size_t>(k)])];
      }
      z[static_cast<std::size_t>(i)] = acc;
    }
    // Backward solve U z = y.
    for (int i = n - 1; i >= 0; --i) {
      double acc = z[static_cast<std::size_t>(i)];
      for (int k = diagPos_[static_cast<std::size_t>(i)] + 1;
           k < lu_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        acc -= lu_.values[static_cast<std::size_t>(k)] *
               z[static_cast<std::size_t>(lu_.colIdx[static_cast<std::size_t>(k)])];
      }
      z[static_cast<std::size_t>(i)] =
          acc / lu_.values[static_cast<std::size_t>(
                    diagPos_[static_cast<std::size_t>(i)])];
    }
    lisi::prec::noteBytesHigh(8LL * static_cast<long long>(lu_.values.size()));
  }

 private:
  void factor() {
    // IKJ-variant ILU(0) (Saad, Alg. 10.4) restricted to existing pattern.
    const int n = lu_.rows;
    std::vector<int> posInRow(static_cast<std::size_t>(n), -1);
    for (int i = 0; i < n; ++i) {
      const int rb = lu_.rowPtr[static_cast<std::size_t>(i)];
      const int re = lu_.rowPtr[static_cast<std::size_t>(i) + 1];
      for (int k = rb; k < re; ++k) {
        posInRow[static_cast<std::size_t>(
            lu_.colIdx[static_cast<std::size_t>(k)])] = k;
      }
      for (int k = rb; k < re; ++k) {
        const int j = lu_.colIdx[static_cast<std::size_t>(k)];
        if (j >= i) break;  // only strictly-lower entries eliminate
        const double pivot =
            lu_.values[static_cast<std::size_t>(
                diagPos_[static_cast<std::size_t>(j)])];
        LISI_CHECK(pivot != 0.0, "ILU(0): zero pivot during factorization");
        const double lij = lu_.values[static_cast<std::size_t>(k)] / pivot;
        lu_.values[static_cast<std::size_t>(k)] = lij;
        for (int kk = diagPos_[static_cast<std::size_t>(j)] + 1;
             kk < lu_.rowPtr[static_cast<std::size_t>(j) + 1]; ++kk) {
          const int col = lu_.colIdx[static_cast<std::size_t>(kk)];
          const int pos = posInRow[static_cast<std::size_t>(col)];
          if (pos >= 0) {
            lu_.values[static_cast<std::size_t>(pos)] -=
                lij * lu_.values[static_cast<std::size_t>(kk)];
          }
        }
      }
      for (int k = rb; k < re; ++k) {
        posInRow[static_cast<std::size_t>(
            lu_.colIdx[static_cast<std::size_t>(k)])] = -1;
      }
      LISI_CHECK(
          lu_.values[static_cast<std::size_t>(
              diagPos_[static_cast<std::size_t>(i)])] != 0.0,
          "ILU(0): zero pivot");
    }
    if (low_) mirrorToFloat();
  }

  void mirrorToFloat() {
    luValsF_.assign(lu_.values.begin(), lu_.values.end());
    zF_.resize(static_cast<std::size_t>(lu_.rows));
  }

  /// Float32 triangular solves over the float32 factor mirror; see
  /// LocalSorPc::applyLow for the precision rationale.
  void applyLow(std::span<const double> r, std::span<double> z) const {
    const int n = lu_.rows;
    for (int i = 0; i < n; ++i) {
      float acc = static_cast<float>(r[static_cast<std::size_t>(i)]);
      for (int k = lu_.rowPtr[static_cast<std::size_t>(i)];
           k < diagPos_[static_cast<std::size_t>(i)]; ++k) {
        acc -= luValsF_[static_cast<std::size_t>(k)] *
               zF_[static_cast<std::size_t>(
                   lu_.colIdx[static_cast<std::size_t>(k)])];
      }
      zF_[static_cast<std::size_t>(i)] = acc;
    }
    for (int i = n - 1; i >= 0; --i) {
      float acc = zF_[static_cast<std::size_t>(i)];
      for (int k = diagPos_[static_cast<std::size_t>(i)] + 1;
           k < lu_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        acc -= luValsF_[static_cast<std::size_t>(k)] *
               zF_[static_cast<std::size_t>(
                   lu_.colIdx[static_cast<std::size_t>(k)])];
      }
      zF_[static_cast<std::size_t>(i)] =
          acc / luValsF_[static_cast<std::size_t>(
                    diagPos_[static_cast<std::size_t>(i)])];
    }
    for (std::size_t i = 0; i < z.size(); ++i) {
      z[i] = static_cast<double>(zF_[i]);
    }
    lisi::prec::noteLowApply();
    lisi::prec::noteBytesLow(4LL * static_cast<long long>(luValsF_.size()));
  }

  CsrMatrix lu_;
  std::vector<int> diagPos_;
  bool low_ = false;
  std::vector<float> luValsF_;
  mutable std::vector<float> zF_;
};

}  // namespace

std::unique_ptr<Preconditioner> makeJacobi(const DistCsrMatrix& a) {
  return std::make_unique<JacobiPc>(a);
}

std::unique_ptr<Preconditioner> makeLocalSor(const DistCsrMatrix& a,
                                             double omega, int sweeps) {
  return std::make_unique<LocalSorPc>(a, omega, sweeps);
}

std::unique_ptr<Preconditioner> makeLocalIlu0(const DistCsrMatrix& a) {
  return std::make_unique<LocalIlu0Pc>(a);
}

}  // namespace pksp::detail
