// Wall-clock timing utilities used by the benchmark harnesses (§8 of the
// paper times complete component solves, ten runs each, reporting the mean).
#pragma once

#include <chrono>

namespace lisi {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double on destruction; used to attribute
/// time to phases (setup / solve) inside adapter components.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink) : sink_(sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace lisi
