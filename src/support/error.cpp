#include "support/error.hpp"

#include <sstream>

namespace lisi {

const char* errorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kBadState: return "bad-state";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kNumericFailure: return "numeric-failure";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

namespace detail {

void failCheck(const char* expr, const char* file, int line,
               const std::string& msg) {
  std::ostringstream os;
  os << msg << " [check `" << expr << "` failed at " << file << ':' << line
     << ']';
  throw Error(os.str());
}

}  // namespace detail
}  // namespace lisi
