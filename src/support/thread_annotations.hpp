#pragma once
// Clang Thread Safety Analysis surface for the whole tree.
//
// Every mutex-guarded invariant in the repo is written down twice: once in
// prose (DESIGN.md §"Static and dynamic checking") and once here, in
// machine-checked form.  Under Clang with -DLISI_LINT=ON the build runs with
// -Wthread-safety -Werror=thread-safety, so a lock taken in the wrong order,
// a guarded member touched without its mutex, or a REQUIRES contract broken
// by a new call site fails the *compile*, not a TSan run three stages later.
// Under GCC (and any compiler without the attributes) every macro expands to
// nothing and the wrappers degrade to plain std::mutex / std::lock_guard
// behaviour — zero cost, zero semantic change.
//
// Conventions (see docs/STATIC_ANALYSIS.md for the full catalog):
//   * Shared state is declared with LISI_GUARDED_BY(itsMutex).
//   * Private helpers that assume the lock are annotated LISI_REQUIRES(m)
//     and named *Locked by existing repo convention.
//   * Cross-class lock order (checker mutex before any mailbox mutex) is
//     expressed with LISI_ACQUIRED_BEFORE / LISI_ACQUIRED_AFTER through a
//     phantom anchor capability, since the two classes cannot name each
//     other's members.
//   * LISI_NO_THREAD_SAFETY_ANALYSIS is the only escape hatch and every use
//     carries an inline reason; blanket suppressions are rejected in review
//     and by the acceptance bar of the lint PR that introduced this file.

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LISI_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LISI_THREAD_ANNOTATION
#define LISI_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define LISI_CAPABILITY(x) LISI_THREAD_ANNOTATION(capability(x))
#define LISI_SCOPED_CAPABILITY LISI_THREAD_ANNOTATION(scoped_lockable)
#define LISI_GUARDED_BY(x) LISI_THREAD_ANNOTATION(guarded_by(x))
#define LISI_PT_GUARDED_BY(x) LISI_THREAD_ANNOTATION(pt_guarded_by(x))
#define LISI_ACQUIRED_BEFORE(...) \
  LISI_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LISI_ACQUIRED_AFTER(...) \
  LISI_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define LISI_REQUIRES(...) \
  LISI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LISI_REQUIRES_SHARED(...) \
  LISI_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define LISI_ACQUIRE(...) \
  LISI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LISI_RELEASE(...) \
  LISI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LISI_TRY_ACQUIRE(...) \
  LISI_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define LISI_EXCLUDES(...) LISI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define LISI_RETURN_CAPABILITY(x) LISI_THREAD_ANNOTATION(lock_returned(x))
#define LISI_NO_THREAD_SAFETY_ANALYSIS \
  LISI_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace lisi::support {

// std::mutex with the capability attribute, so members can be GUARDED_BY it
// and functions can REQUIRES it.  native() exposes the underlying mutex for
// std::condition_variable, which only accepts std::unique_lock<std::mutex>.
class LISI_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() LISI_ACQUIRE() { m_.lock(); }
  void unlock() LISI_RELEASE() { m_.unlock(); }
  bool try_lock() LISI_TRY_ACQUIRE(true) { return m_.try_lock(); }
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

// Scoped lock-holder (std::lock_guard shape) over an AnnotatedMutex.
class LISI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex& m) LISI_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() LISI_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  AnnotatedMutex& m_;
};

// Scoped lock-holder built on std::unique_lock so it can sit under a
// std::condition_variable wait: cv.wait(lock.native()).  The analysis treats
// the capability as held across the wait — the classic annotated-condvar
// pattern — which matches how every wait loop in the repo re-checks its
// guarded predicate after waking.
class LISI_SCOPED_CAPABILITY CondLock {
 public:
  // The underlying std::unique_lock is not annotation-aware, so the body is
  // opted out of analysis; callers still see (and are checked against) the
  // ACQUIRE/RELEASE contract on the declarations.
  explicit CondLock(AnnotatedMutex& m)
      LISI_ACQUIRE(m) LISI_NO_THREAD_SAFETY_ANALYSIS : lock_(m.native()) {}
  ~CondLock() LISI_RELEASE() = default;
  CondLock(const CondLock&) = delete;
  CondLock& operator=(const CondLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace lisi::support
