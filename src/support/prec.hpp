// lisi::prec — the mixed-precision policy knob and its accounting.
//
// The LISI parameter "precision" (and the LISI_PRECISION environment knob)
// selects what the *backends* run internally; the interface contract is
// unchanged — float64 in, float64 out, converged to the same tolerance:
//   double : every kernel runs in float64 (the historical path, and the
//            default — bitwise identical to the pre-knob code).
//   mixed  : the error-correction side runs in float32 — hymg's cycle
//            (smoothers, transfers, coarse LU), pksp's SOR/ILU(0)
//            preconditioner applications, slu's LU factors — while every
//            outer iteration, residual, and convergence decision stays
//            float64 (iterative refinement / defect correction).
//   auto   : mixed for operators large enough that the halved value
//            bandwidth pays for the refinement overhead, double otherwise.
//
// Stats are process-wide atomics like the tune/halo counters: MiniMPI ranks
// are threads of one process, and tests assert deltas with rank
// multiplicity.  Always maintained; mirrored into obs as prec.* counters at
// the instrumented call sites (this support-layer module cannot link obs).
#pragma once

#include <string>

namespace lisi::prec {

enum class Mode { kDouble, kMixed, kAuto };

/// Parse "double"/"mixed"/"auto" (case-insensitive); anything else ->
/// fallback.
[[nodiscard]] Mode modeFromString(const std::string& s, Mode fallback);

/// Policy from the LISI_PRECISION environment variable (default kDouble —
/// the knob is opt-in; unset must stay bitwise the historical path).  Read
/// fresh each call: the verify suite flips LISI_PRECISION between
/// in-process worlds.
[[nodiscard]] Mode modeFromEnv();

[[nodiscard]] const char* modeName(Mode m);

/// kAuto picks mixed only for operators with at least this many global
/// nonzeros: below it the float32 mirrors and extra refinement sweeps cost
/// more than the halved value traffic saves.
inline constexpr long long kAutoMinGlobalNnz = 1 << 15;

/// Resolve kAuto against the operator size; kDouble/kMixed pass through.
/// Never returns kAuto.
[[nodiscard]] Mode resolveAuto(Mode m, long long globalNnz);

/// Process-wide mixed-precision counters.
struct Stats {
  long long bytesLow = 0;      ///< value bytes moved by float32 kernels
  long long bytesHigh = 0;     ///< value bytes moved by float64 kernels
  long long refineSweeps = 0;  ///< outer refinement / defect-correction sweeps
  long long lowApplies = 0;    ///< float32 operator/preconditioner applies
  long long mixedSolves = 0;   ///< solves that resolved to kMixed
};
[[nodiscard]] Stats stats();

/// Test hook: zero the counters.
void resetStatsForTest();

// Accounting hooks (relaxed atomics; cheap enough for per-apply use).
void noteBytesLow(long long bytes);
void noteBytesHigh(long long bytes);
void noteRefineSweeps(long long n);
void noteLowApply();
void noteMixedSolve();

}  // namespace lisi::prec
