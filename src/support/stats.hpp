// Small-sample run statistics.  The paper's experiments (§8) repeat every
// timing ten times and report the mean; RunStats supports that protocol and
// adds the usual dispersion measures for EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <vector>

namespace lisi {

/// Collects scalar samples (typically per-run wall-clock seconds).
class RunStats {
 public:
  void add(double sample);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double median() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace lisi
