// String helpers used by the generic parameter-setting machinery
// (LISI §6.5: `set(key, value)` string pairs must be parsed by adapters).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lisi {

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string trim(std::string_view s);

/// ASCII lower-casing (parameter keys are case-insensitive in LISI).
[[nodiscard]] std::string toLower(std::string_view s);

/// Parse "true"/"false"/"1"/"0"/"yes"/"no" (case-insensitive).
[[nodiscard]] std::optional<bool> parseBool(std::string_view s);

/// Parse a base-10 integer; rejects trailing garbage.
[[nodiscard]] std::optional<long long> parseInt(std::string_view s);

/// Parse a floating-point value; rejects trailing garbage.
[[nodiscard]] std::optional<double> parseDouble(std::string_view s);

/// Split on a delimiter, trimming each piece; empty pieces preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

}  // namespace lisi
