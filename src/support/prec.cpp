#include "support/prec.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>

namespace lisi::prec {

namespace {

struct AtomicStats {
  std::atomic<long long> bytesLow{0};
  std::atomic<long long> bytesHigh{0};
  std::atomic<long long> refineSweeps{0};
  std::atomic<long long> lowApplies{0};
  std::atomic<long long> mixedSolves{0};
};
AtomicStats g_stats;

}  // namespace

Mode modeFromString(const std::string& s, Mode fallback) {
  std::string t;
  for (const char c : s) {
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (t == "double" || t == "fp64" || t == "float64") return Mode::kDouble;
  if (t == "mixed" || t == "fp32" || t == "float32") return Mode::kMixed;
  if (t == "auto") return Mode::kAuto;
  return fallback;
}

Mode modeFromEnv() {
  if (const char* env = std::getenv("LISI_PRECISION")) {
    return modeFromString(env, Mode::kDouble);
  }
  return Mode::kDouble;
}

const char* modeName(Mode m) {
  switch (m) {
    case Mode::kDouble: return "double";
    case Mode::kMixed: return "mixed";
    case Mode::kAuto: return "auto";
  }
  return "?";
}

Mode resolveAuto(Mode m, long long globalNnz) {
  if (m != Mode::kAuto) return m;
  return globalNnz >= kAutoMinGlobalNnz ? Mode::kMixed : Mode::kDouble;
}

Stats stats() {
  Stats s;
  s.bytesLow = g_stats.bytesLow.load(std::memory_order_relaxed);
  s.bytesHigh = g_stats.bytesHigh.load(std::memory_order_relaxed);
  s.refineSweeps = g_stats.refineSweeps.load(std::memory_order_relaxed);
  s.lowApplies = g_stats.lowApplies.load(std::memory_order_relaxed);
  s.mixedSolves = g_stats.mixedSolves.load(std::memory_order_relaxed);
  return s;
}

void resetStatsForTest() {
  g_stats.bytesLow.store(0);
  g_stats.bytesHigh.store(0);
  g_stats.refineSweeps.store(0);
  g_stats.lowApplies.store(0);
  g_stats.mixedSolves.store(0);
}

void noteBytesLow(long long bytes) {
  g_stats.bytesLow.fetch_add(bytes, std::memory_order_relaxed);
}

void noteBytesHigh(long long bytes) {
  g_stats.bytesHigh.fetch_add(bytes, std::memory_order_relaxed);
}

void noteRefineSweeps(long long n) {
  g_stats.refineSweeps.fetch_add(n, std::memory_order_relaxed);
}

void noteLowApply() {
  g_stats.lowApplies.fetch_add(1, std::memory_order_relaxed);
}

void noteMixedSolve() {
  g_stats.mixedSolves.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace lisi::prec
