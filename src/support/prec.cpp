#include "support/prec.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>

namespace lisi::prec {

namespace {

/// Memory order (audited): every access is relaxed — these are pure
/// monotonic counters, no reader infers the state of other memory from
/// them, and the test that wants exact totals (precision_test) reads them
/// only after World::run joined every writer thread, which supplies the
/// happens-before edge on its own.
struct AtomicStats {
  std::atomic<long long> bytesLow{0};
  std::atomic<long long> bytesHigh{0};
  std::atomic<long long> refineSweeps{0};
  std::atomic<long long> lowApplies{0};
  std::atomic<long long> mixedSolves{0};
};
AtomicStats g_stats;

}  // namespace

Mode modeFromString(const std::string& s, Mode fallback) {
  std::string t;
  for (const char c : s) {
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (t == "double" || t == "fp64" || t == "float64") return Mode::kDouble;
  if (t == "mixed" || t == "fp32" || t == "float32") return Mode::kMixed;
  if (t == "auto") return Mode::kAuto;
  return fallback;
}

Mode modeFromEnv() {
  if (const char* env = std::getenv("LISI_PRECISION")) {
    return modeFromString(env, Mode::kDouble);
  }
  return Mode::kDouble;
}

const char* modeName(Mode m) {
  switch (m) {
    case Mode::kDouble: return "double";
    case Mode::kMixed: return "mixed";
    case Mode::kAuto: return "auto";
  }
  return "?";
}

Mode resolveAuto(Mode m, long long globalNnz) {
  if (m != Mode::kAuto) return m;
  return globalNnz >= kAutoMinGlobalNnz ? Mode::kMixed : Mode::kDouble;
}

Stats stats() {
  Stats s;
  s.bytesLow = g_stats.bytesLow.load(std::memory_order_relaxed);
  s.bytesHigh = g_stats.bytesHigh.load(std::memory_order_relaxed);
  s.refineSweeps = g_stats.refineSweeps.load(std::memory_order_relaxed);
  s.lowApplies = g_stats.lowApplies.load(std::memory_order_relaxed);
  s.mixedSolves = g_stats.mixedSolves.load(std::memory_order_relaxed);
  return s;
}

void resetStatsForTest() {
  // Relaxed like every other access (see AtomicStats): tests call this
  // between worlds, with no concurrent writers to order against.
  g_stats.bytesLow.store(0, std::memory_order_relaxed);
  g_stats.bytesHigh.store(0, std::memory_order_relaxed);
  g_stats.refineSweeps.store(0, std::memory_order_relaxed);
  g_stats.lowApplies.store(0, std::memory_order_relaxed);
  g_stats.mixedSolves.store(0, std::memory_order_relaxed);
}

void noteBytesLow(long long bytes) {
  g_stats.bytesLow.fetch_add(bytes, std::memory_order_relaxed);
}

void noteBytesHigh(long long bytes) {
  g_stats.bytesHigh.fetch_add(bytes, std::memory_order_relaxed);
}

void noteRefineSweeps(long long n) {
  g_stats.refineSweeps.fetch_add(n, std::memory_order_relaxed);
}

void noteLowApply() {
  g_stats.lowApplies.fetch_add(1, std::memory_order_relaxed);
}

void noteMixedSolve() {
  g_stats.mixedSolves.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace lisi::prec
