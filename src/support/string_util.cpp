#include "support/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace lisi {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<bool> parseBool(std::string_view s) {
  const std::string t = toLower(trim(s));
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  return std::nullopt;
}

std::optional<long long> parseInt(std::string_view s) {
  const std::string t = trim(s);
  long long value = 0;
  const char* first = t.data();
  const char* last = t.data() + t.size();
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc{} || ptr != last || t.empty()) return std::nullopt;
  return value;
}

std::optional<double> parseDouble(std::string_view s) {
  const std::string t = trim(s);
  if (t.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+; use strtod for
  // maximal portability with an explicit end-pointer check.
  char* end = nullptr;
  const double value = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return std::nullopt;
  return value;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(trim(s.substr(start)));
      break;
    }
    out.push_back(trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

}  // namespace lisi
