// Deterministic pseudo-random number generation for tests and workload
// generators.  SplitMix64 is tiny, fast, and reproducible across platforms,
// which matters for property tests that must fail deterministically.
#pragma once

#include <cstdint>

namespace lisi {

/// SplitMix64 generator (public-domain algorithm by Sebastiano Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) for bound > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform int in [lo, hi] inclusive.
  int intIn(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace lisi
