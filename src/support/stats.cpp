#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace lisi {

void RunStats::add(double sample) { samples_.push_back(sample); }

double RunStats::mean() const {
  LISI_CHECK(!samples_.empty(), "mean() of empty RunStats");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double RunStats::min() const {
  LISI_CHECK(!samples_.empty(), "min() of empty RunStats");
  return *std::min_element(samples_.begin(), samples_.end());
}

double RunStats::max() const {
  LISI_CHECK(!samples_.empty(), "max() of empty RunStats");
  return *std::max_element(samples_.begin(), samples_.end());
}

double RunStats::median() const {
  LISI_CHECK(!samples_.empty(), "median() of empty RunStats");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return (n % 2 == 1) ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double RunStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

}  // namespace lisi
