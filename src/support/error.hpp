// Error handling primitives shared by every CCA-LISI module.
//
// Inside a package (pksp, aztec, slu, hymg, sparse, ...) failures throw
// lisi::Error.  The LISI port boundary itself never lets exceptions escape:
// adapter components translate Error into the SIDL-style nonzero int return
// codes mandated by the interface (see src/lisi/sparse_solver.hpp).
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

namespace lisi {

/// Exception type used throughout the CCA-LISI libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// SIDL-style status codes returned across the LISI port boundary.
/// 0 means success, everything else is a failure category.
enum class ErrorCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kBadState = 2,          // e.g. solve() before setupMatrix()
  kUnsupported = 3,       // format/feature a backend cannot handle
  kNumericFailure = 4,    // divergence, singular pivot, breakdown
  kInternal = 5,
};

/// Human-readable name for a status code (used in examples and logs).
const char* errorCodeName(ErrorCode code);

namespace detail {
[[noreturn]] void failCheck(const char* expr, const char* file, int line,
                            const std::string& msg);
}  // namespace detail

}  // namespace lisi

/// Precondition / invariant check that throws lisi::Error on failure.
/// Active in all build types: these guard user-facing API contracts.
#define LISI_CHECK(expr, msg)                                       \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::lisi::detail::failCheck(#expr, __FILE__, __LINE__, (msg));  \
    }                                                               \
  } while (false)

/// Internal consistency check; identical behaviour, distinct intent.
#define LISI_ASSERT(expr) LISI_CHECK(expr, "internal invariant violated")
