// LISI — the LInear Solver Interface (the paper's contribution, §7).
//
// This header is the C++ rendering of the paper's SIDL specification
// (package lisi, version 0.1), method for method:
//
//   enum SparseStruct { CSR, COO, MSR, VBR, FEM }
//   enum ID { MATRIX, PRECONDITIONER }
//   interface MatrixFree extends gov.cca.Port {
//     int matMult(in ID id, in rarray<double,1> x(length),
//                 inout rarray<double,1> y(length), in int length);
//   }
//   interface SparseSolver extends gov.cca.Port {
//     int initialize(in long comm);
//     int setBlockSize(in int bs);
//     int setStartRow(in int startrow);          // block row partitioning
//     int setLocalRows(in int rows);
//     int setLocalNNZ(in int nnz);
//     int setGlobalCols(in int cols);
//     int setupMatrix[few_args|media_args|large_args](...);
//     int setupRHS(...);
//     int solve(inout Solution, inout Status, in NumLocalRow, in StatusLength);
//     int set/setInt/setBool/setDouble(key, value);
//     string get_all();
//   }
//
// Every method returns an int status code (0 = success; see lisi::ErrorCode)
// and never throws across the port boundary.  A solver component implements
// SparseSolver as a CCA *provides* port; the application holds the *uses*
// port (§6.4).  Matrix-free operation reverses the roles for one port only:
// the application provides MatrixFree and the solver uses it (§5.6 choice c).
#pragma once

#include <string>

#include "cca/cca.hpp"
#include "lisi/rarray.hpp"
#include "sparse/formats.hpp"

namespace lisi {

/// Input storage formats for setupMatrix (the SIDL enum SparseStruct).
/// kFem means unassembled triplets that may repeat (assembled by summation);
/// numerically COO with duplicates behaves identically.
using sparse::SparseStruct;

/// Distinguishes which operator a MatrixFree callback applies (SIDL enum ID).
enum class OperatorId : int {
  kMatrix = 0,
  kPreconditioner = 1,
};

/// Layout of the Status array filled by SparseSolver::solve.  The paper
/// leaves the post-solve statistics order as an open design point (§5.1);
/// this is LISI-CPP's documented answer.  solve() fills
/// min(StatusLength, kStatusLength) entries.
enum StatusIndex : int {
  kStatusIterations = 0,    ///< iterations (0 for direct solvers)
  kStatusResidualNorm = 1,  ///< final true residual 2-norm
  kStatusConverged = 2,     ///< 1.0 converged / 0.0 not
  kStatusSetupSeconds = 3,  ///< operator+preconditioner setup time
  kStatusSolveSeconds = 4,  ///< iteration/factor-solve time
};
inline constexpr int kStatusLength = 5;

/// Application-side matrix-free port (SIDL interface lisi.MatrixFree).
class MatrixFree : public cca::Port {
 public:
  /// y = Op*x over this rank's block of rows; `id` selects the operator.
  /// Returns 0 on success.
  virtual int matMult(OperatorId id, RArray<const double> x, RArray<double> y,
                      int length) = 0;
};

/// The solver port (SIDL interface lisi.SparseSolver).
class SparseSolver : public cca::Port {
 public:
  // ---- lifecycle ------------------------------------------------------

  /// Attach the communicator (a handle from lisi::comm::registerHandle,
  /// exactly as Fortran codes pass integer MPI communicators).  Must be the
  /// first call.  Collective.
  virtual int initialize(long comm) = 0;

  // ---- data distribution (block row partitioning, §5.4) ----------------

  /// Block size hint for VBR-style inputs (1 = scalar rows).
  virtual int setBlockSize(int bs) = 0;
  /// First global row owned by this rank.
  virtual int setStartRow(int startRow) = 0;
  /// Number of rows owned by this rank.
  virtual int setLocalRows(int rows) = 0;
  /// Number of local nonzeros the next setupMatrix will pass.
  virtual int setLocalNNZ(int nnz) = 0;
  /// Global number of columns (== global rows for solvable systems).
  virtual int setGlobalCols(int cols) = 0;

  // ---- linear system setup ---------------------------------------------

  /// setupMatrix[few_args]: COO triplets with this rank's global row
  /// indices; the canonical minimal entry point.
  virtual int setupMatrix(RArray<const double> values, RArray<const int> rows,
                          RArray<const int> columns, int nnz) = 0;

  /// setupMatrix[media_args]: `dataStruct` selects the layout.  For CSR/MSR
  /// `rows` is the row-pointer array of length rowsLength; for COO/FEM it is
  /// the row-index array (rowsLength == nnz); for VBR it is the block row
  /// pointer (with block size from setBlockSize).
  virtual int setupMatrix(RArray<const double> values, RArray<const int> rows,
                          RArray<const int> columns, SparseStruct dataStruct,
                          int rowsLength, int nnz) = 0;

  /// setupMatrix[large_args]: media_args plus an index `offset` (1 for
  /// Fortran-style 1-based arrays; indices are shifted down by offset).
  virtual int setupMatrix(RArray<const double> values, RArray<const int> rows,
                          RArray<const int> columns, SparseStruct dataStruct,
                          int rowsLength, int nnz, int offset) = 0;

  /// Right-hand side(s): nRhs systems, stored contiguously one after the
  /// other (numLocalRow entries each).
  virtual int setupRHS(RArray<const double> rightHandSide, int numLocalRow,
                       int nRhs) = 0;

  // ---- solve -----------------------------------------------------------

  /// Solve A x = b for every stored right-hand side.  `solution` must hold
  /// numLocalRow * nRhs entries (it also carries the initial guess when the
  /// "use_initial_guess" key is set).  Fills `status` per StatusIndex.
  /// Collective.
  virtual int solve(RArray<double> solution, RArray<double> status,
                    int numLocalRow, int statusLength) = 0;

  // ---- generic parameter setting (§6.5) ---------------------------------

  /// Generic string parameter ("solver", "preconditioner", "ordering", ...).
  virtual int set(const std::string& key, const std::string& value) = 0;
  virtual int setInt(const std::string& key, int value) = 0;
  virtual int setBool(const std::string& key, bool value) = 0;
  virtual int setDouble(const std::string& key, double value) = 0;

  /// All current parameter settings as "key=value;" pairs (one line).
  virtual std::string get_all() = 0;
};

/// Port-type strings used for CCA wiring.
inline constexpr const char* kSparseSolverPortType = "lisi.SparseSolver";
inline constexpr const char* kMatrixFreePortType = "lisi.MatrixFree";
/// Conventional port names.
inline constexpr const char* kSparseSolverPortName = "SparseSolver";
inline constexpr const char* kMatrixFreePortName = "MatrixFree";

/// Component class names registered by this library (one per backend).
inline constexpr const char* kPkspComponentClass = "lisi.PkspSolver";
inline constexpr const char* kAztecComponentClass = "lisi.AztecSolver";
inline constexpr const char* kSluComponentClass = "lisi.SluSolver";
inline constexpr const char* kHymgComponentClass = "lisi.HymgSolver";

/// Force-link helper: ensures the solver components' static registrars run
/// even when the lisi library is linked from an archive.  Call once before
/// Framework::instantiate of lisi.* classes.
void registerSolverComponents();

}  // namespace lisi
