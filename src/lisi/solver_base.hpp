// Shared scaffolding for LISI solver components.
//
// Every backend adapter (PKSP, Aztec, SLU, HyMG) faces the same four jobs:
//   1. bookkeeping for the block-row distribution parameters (§6.3:
//      separate setStartRow/setLocalRows/setLocalNNZ/setGlobalCols methods
//      so setupMatrix/setupRHS/solve need not repeat them),
//   2. adapting the input format (CSR/COO/MSR/VBR/FEM, any index offset) to
//      a local CSR block — "the implementation works as an adapter to
//      convert the input data format to the libraries' internal data
//      structure" (§7.2),
//   3. a generic parameter table behind set/setInt/setBool/setDouble (§6.5),
//   4. status reporting and error-code translation (no exceptions cross the
//      port).
//
// SolverComponentBase implements all of that once; backends override the
// backendSolve/backendName hooks and read their parameters from the table.
#pragma once

#include <map>
#include <optional>

#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "sparse/dist_csr.hpp"
#include "support/prec.hpp"
#include "tune/tune.hpp"

namespace lisi::detail {

/// How the operator handed to this backendSolve relates to the one handed
/// to the previous backendSolve on the same component.  The three-state
/// contract every mature library ships (PETSc SAME_NONZERO_PATTERN, SuperLU
/// SamePattern); solver_base detects the state automatically by
/// fingerprinting the adapted local CSR structure, so applications just
/// call setupMatrix again (DESIGN.md "Operator change contract").
enum class OperatorChange {
  /// Identical operator object, untouched since the last backendSolve:
  /// factorizations, hierarchies, and preconditioners stay valid as-is.
  kSameOperator,
  /// Values changed on the identical sparsity pattern: symbolic objects
  /// (halo plan, elimination structure, grid hierarchy, PC storage layout)
  /// survive; only numeric content needs a refresh.
  kSameStructure,
  /// Pattern changed, first solve, or the operator kind flipped between
  /// assembled and matrix-free: full rebuild.
  kNewStructure,
};

/// Everything a backend needs for one solve call.
struct SolveContext {
  const comm::Comm* comm = nullptr;
  /// Assembled operator; null in matrix-free mode.
  const sparse::DistCsrMatrix* matrix = nullptr;
  /// Application-provided operator; null unless matrix-free mode is on.
  MatrixFree* matrixFree = nullptr;
  int localRows = 0;
  int globalRows = 0;
  int startRow = 0;
  /// Operator relation to the previous backendSolve; identical on every
  /// rank (the structural fingerprint is agreed by allreduce).
  OperatorChange change = OperatorChange::kNewStructure;
  /// Tuned local-kernel configuration (default when tuning is off).
  /// ctx.matrix already carries it; backends that build their OWN
  /// DistCsrMatrix from the local block (Aztec's CrsMatrix, HyMG's fine
  /// level) forward it there so every spmv in the solve runs tuned.
  sparse::SpmvConfig spmvConfig;
  /// Resolved precision mode for this solve (never kAuto: solver_base
  /// resolves "auto" against the global nnz before calling the backend).
  /// kMixed asks the backend to run its preconditioner/factor speed path in
  /// float32 under the float64 outer iteration; backends without a float32
  /// path (Aztec) accept the request and stay float64.  Identical on every
  /// rank: the mode comes from the parameter table / environment, which the
  /// LISI contract requires to agree across ranks, and the auto threshold
  /// is evaluated against the same allreduced nnz everywhere.
  prec::Mode precision = prec::Mode::kDouble;
};

/// Per-solve results a backend reports back.
struct BackendStats {
  int iterations = 0;
  double residualNorm = 0.0;
  bool converged = false;
};

/// Base class implementing the full SparseSolver contract.
class SolverComponentBase : public SparseSolver {
 public:
  // ---- SparseSolver ----------------------------------------------------
  int initialize(long comm) final;
  int setBlockSize(int bs) final;
  int setStartRow(int startRow) final;
  int setLocalRows(int rows) final;
  int setLocalNNZ(int nnz) final;
  int setGlobalCols(int cols) final;
  int setupMatrix(RArray<const double> values, RArray<const int> rows,
                  RArray<const int> columns, int nnz) final;
  int setupMatrix(RArray<const double> values, RArray<const int> rows,
                  RArray<const int> columns, SparseStruct dataStruct,
                  int rowsLength, int nnz) final;
  int setupMatrix(RArray<const double> values, RArray<const int> rows,
                  RArray<const int> columns, SparseStruct dataStruct,
                  int rowsLength, int nnz, int offset) final;
  int setupRHS(RArray<const double> rightHandSide, int numLocalRow,
               int nRhs) final;
  int solve(RArray<double> solution, RArray<double> status, int numLocalRow,
            int statusLength) final;
  int set(const std::string& key, const std::string& value) final;
  int setInt(const std::string& key, int value) final;
  int setBool(const std::string& key, bool value) final;
  int setDouble(const std::string& key, double value) final;
  std::string get_all() final;

  /// Wire the owning component's Services in (for the MatrixFree uses port).
  void attachServices(cca::Services* services) { services_ = services; }

 protected:
  SolverComponentBase();

  // ---- backend hooks ----------------------------------------------------

  /// Solve A x = b for one right-hand side.  `x` carries the initial guess
  /// in (zero unless "use_initial_guess") and the solution out.  Throw
  /// lisi::Error for numerical failures; return one of ErrorCode otherwise.
  virtual int backendSolve(const SolveContext& ctx,
                           std::span<const double> b, std::span<double> x,
                           BackendStats& stats) = 0;

  /// Solve A X = B for `nRhs` right-hand sides sharing the operator.
  /// b/x are vector-major (RHS k occupies [k*localRows, (k+1)*localRows));
  /// x carries the initial guesses in and the solutions out.  The default
  /// implementation runs the single-RHS backendSolve hook once per lane —
  /// bitwise identical to the caller looping over setupRHS/solve pairs.
  /// Backends with a batched path (PKSP's blocked Krylov kernels, Aztec's
  /// MultiVector) override this and consult the "multi_rhs" parameter
  /// ("sequential" | "blocked", default sequential) to decide whether the
  /// lanes advance in lockstep through one fused communication schedule.
  virtual int backendSolveMulti(const SolveContext& ctx,
                                std::span<const double> b,
                                std::span<double> x, int nRhs,
                                BackendStats& stats);

  /// Short name used in get_all() and error messages ("pksp", "slu", ...).
  [[nodiscard]] virtual const char* backendName() const = 0;

  /// Whether this backend can run without an assembled matrix.
  [[nodiscard]] virtual bool supportsMatrixFree() const { return false; }

  /// Reject unsupported parameter keys/values.  Called by the set methods
  /// after canonicalization; default accepts the common key set.
  [[nodiscard]] virtual bool acceptsParam(const std::string& key) const;

  // ---- parameter helpers for backends -----------------------------------

  [[nodiscard]] std::string paramString(const std::string& key,
                                        const std::string& fallback) const;
  [[nodiscard]] double paramDouble(const std::string& key,
                                   double fallback) const;
  [[nodiscard]] int paramInt(const std::string& key, int fallback) const;
  [[nodiscard]] bool paramBool(const std::string& key, bool fallback) const;

  [[nodiscard]] const comm::Comm& comm() const { return comm_; }

  /// The full parameter table (canonical lower-case keys).  For adapters
  /// that forward every option verbatim across a string-keyed boundary
  /// (src/plugin) instead of reading a fixed key set.
  [[nodiscard]] const std::map<std::string, std::string>& paramTable() const {
    return params_;
  }

 private:
  int setupMatrixImpl(RArray<const double> values, RArray<const int> rows,
                      RArray<const int> columns, SparseStruct dataStruct,
                      int rowsLength, int nnz, int offset);
  int storeParam(const std::string& key, const std::string& value);
  /// Common keys every backend understands.
  [[nodiscard]] static bool isCommonParam(const std::string& key);

  cca::Services* services_ = nullptr;
  comm::Comm comm_;
  bool initialized_ = false;

  int blockSize_ = 1;
  int startRow_ = -1;
  int localRows_ = -1;
  int localNnz_ = -1;
  int globalCols_ = -1;

  sparse::CsrMatrix localA_;  ///< adapted local rows, global columns (canonical)
  bool haveMatrix_ = false;
  bool matrixDirty_ = false;  ///< local block changed since distA_ was built
  std::optional<sparse::DistCsrMatrix> distA_;
  /// Structural epoch: bumped when the sparsity pattern changes (fingerprint
  /// mismatch) and distA_ is rebuilt from scratch.
  std::uint64_t structEpoch_ = 0;
  /// Value epoch: bumped on every operator content change (rebuild or
  /// in-place refresh).  Distinct from structEpoch_ so a same-pattern
  /// setupMatrix reports kSameStructure, not kNewStructure.
  std::uint64_t valueEpoch_ = 0;
  std::uint64_t lastSolvedStructEpoch_ = 0;
  std::uint64_t lastSolvedValueEpoch_ = 0;
  /// FNV-1a hash of the canonical local structure (rows, cols, startRow,
  /// rowPtr, colIdx) distA_ was last built from.
  std::uint64_t structFingerprint_ = 0;
  /// Which operator kind the last successful solve used; switching between
  /// assembled and matrix-free always reports kNewStructure.
  enum class OperatorKind { kNone, kAssembled, kMatrixFree };
  OperatorKind lastSolvedKind_ = OperatorKind::kNone;

  /// Autotuner bookkeeping (src/tune): which structure epoch was last tuned
  /// under which mode — when both are current the solve replays the tuned
  /// configuration with zero communication — and how many kNewStructure
  /// retunes this component has spent against its budget.
  std::uint64_t tunedStructEpoch_ = 0;  ///< 0: never tuned
  tune::Mode tunedMode_ = tune::Mode::kOff;
  prec::Mode tunedPrec_ = prec::Mode::kDouble;
  int tuneRetunes_ = 0;

  std::vector<double> rhs_;
  int nRhs_ = 0;

  std::map<std::string, std::string> params_;
};

}  // namespace lisi::detail
