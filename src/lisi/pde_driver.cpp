#include "lisi/pde_driver.hpp"

#include "comm/comm_handle.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/dist_csr.hpp"
#include "support/timer.hpp"

namespace lisi {
namespace {

/// MatrixFree provides-port backed by the driver's own assembled operator
/// (stands in for an application that computes A*x from its physics).
class DriverMatrixFree final : public MatrixFree {
 public:
  void bind(const sparse::DistCsrMatrix* a) { a_ = a; }

  int matMult(OperatorId id, RArray<const double> x, RArray<double> y,
              int length) override {
    if (a_ == nullptr || id != OperatorId::kMatrix) return 1;
    if (length != a_->localRows() || x.length() != length ||
        y.length() != length) {
      return 1;
    }
    a_->spmv(std::span<const double>(x.data(), static_cast<std::size_t>(length)),
             std::span<double>(y.data(), static_cast<std::size_t>(length)));
    return 0;
  }

 private:
  const sparse::DistCsrMatrix* a_ = nullptr;
};

class DriverGoPort final : public GoPort {
 public:
  DriverGoPort(cca::Services* services, std::shared_ptr<DriverMatrixFree> mf)
      : services_(services), matrixFree_(std::move(mf)) {}

  PdeDriverResult go(const comm::Comm& comm,
                     const PdeDriverConfig& config) override {
    PdeDriverResult result;
    WallTimer wall;

    // [a] Parallel mesh data generation (each rank assembles its rows).
    mesh::Pde5ptSpec spec;
    spec.gridN = config.gridN;
    const mesh::Pde5ptLocalSystem sys =
        mesh::assembleLocal(spec, comm.rank(), comm.size());
    const int m = sys.localA.rows;

    // Keep a distributed copy for verification and the MatrixFree port.
    const sparse::DistCsrMatrix dist(comm, sys.globalN, sys.globalN,
                                     sys.startRow, sys.localA);
    matrixFree_->bind(&dist);

    // [b] Drive the connected solver through the LISI uses port.
    auto solver =
        services_->getPortAs<SparseSolver>(kSparseSolverPortName);
    const long handle = comm::registerHandle(comm);
    int rc = solver->initialize(handle);
    if (rc == 0) rc = solver->setStartRow(sys.startRow);
    if (rc == 0) rc = solver->setLocalRows(m);
    if (rc == 0) rc = solver->setLocalNNZ(sys.localA.nnz());
    if (rc == 0) rc = solver->setGlobalCols(sys.globalN);
    for (const auto& [key, value] : config.solverParams) {
      if (rc == 0) rc = solver->set(key, value);
    }
    if (rc == 0) rc = solver->setBool("matrix_free", config.matrixFree);
    if (rc == 0 && !config.matrixFree) {
      // CSR rows with global column indices (the natural assembled form).
      rc = solver->setupMatrix(
          RArray<const double>(sys.localA.values.data(), sys.localA.nnz()),
          RArray<const int>(sys.localA.rowPtr.data(), m + 1),
          RArray<const int>(sys.localA.colIdx.data(), sys.localA.nnz()),
          SparseStruct::kCsr, m + 1, sys.localA.nnz());
    }
    std::vector<double> rhs;
    rhs.reserve(static_cast<std::size_t>(m) * static_cast<std::size_t>(config.nRhs));
    for (int k = 0; k < config.nRhs; ++k) {
      rhs.insert(rhs.end(), sys.localB.begin(), sys.localB.end());
    }
    if (rc == 0) {
      rc = solver->setupRHS(RArray<const double>(rhs.data(),
                                                 static_cast<int>(rhs.size())),
                            m, config.nRhs);
    }
    result.localSolution.assign(rhs.size(), 0.0);
    std::vector<double> status(kStatusLength, 0.0);
    if (rc == 0) {
      rc = solver->solve(
          RArray<double>(result.localSolution.data(),
                         static_cast<int>(result.localSolution.size())),
          RArray<double>(status.data(), kStatusLength), m, kStatusLength);
    }
    comm::releaseHandle(handle);
    matrixFree_->bind(nullptr);

    result.returnCode = rc;
    result.solved = (rc == 0);
    result.iterations = static_cast<int>(status[kStatusIterations]);
    result.residualNorm = status[kStatusResidualNorm];
    result.setupSeconds = status[kStatusSetupSeconds];
    result.solveSeconds = status[kStatusSolveSeconds];
    result.wallSeconds = wall.seconds();
    return result;
  }

 private:
  cca::Services* services_;
  std::shared_ptr<DriverMatrixFree> matrixFree_;
};

class PdeDriverComponent final : public cca::Component {
 public:
  void setServices(cca::Services& services) override {
    auto mf = std::make_shared<DriverMatrixFree>();
    services.addProvidesPort(mf, kMatrixFreePortName, kMatrixFreePortType);
    services.addProvidesPort(std::make_shared<DriverGoPort>(&services, mf),
                             kGoPortName, kGoPortType);
    services.registerUsesPort(kSparseSolverPortName, kSparseSolverPortType);
  }
};

}  // namespace

void registerDriverComponent() {
  cca::Framework::registerClass(kDriverComponentClass, [] {
    return std::make_shared<PdeDriverComponent>();
  });
}

}  // namespace lisi
