// r-array and SIDL-array argument types for the LISI port.
//
// §6.2 of the paper chooses Babel *r-arrays* ("raw arrays") over normal
// SIDL arrays for the interface parameters: r-arrays are restricted to
// `in`/`inout` modes, 0-based contiguous data, and primitive element types,
// but in exchange map directly onto legacy library signatures and avoid
// malloc/free traffic.  RArray<T> reproduces those semantics in C++: a
// non-owning contiguous view whose construction never copies.
//
// SidlArray<T> models the alternative the paper rejected — a boxed,
// descriptor-carrying array that owns a copy of its data — so the §6.2
// design decision can be measured (bench/ablation_rarray).
#pragma once

#include <cstring>
#include <vector>

#include "support/error.hpp"

namespace lisi {

/// Non-owning contiguous 1-D view with r-array semantics (0-based, in/inout
/// only, no NULL unless empty).  T may be const-qualified for `in` mode.
template <class T>
class RArray {
 public:
  RArray() = default;
  RArray(T* data, int length) : data_(data), length_(length) {
    LISI_CHECK(length >= 0, "RArray: negative length");
    LISI_CHECK(length == 0 || data != nullptr, "RArray: null data");
  }
  /// View over a vector (non-const overload resolves for inout mode).
  explicit RArray(std::vector<std::remove_const_t<T>>& v)
      : RArray(v.data(), static_cast<int>(v.size())) {}
  explicit RArray(const std::vector<std::remove_const_t<T>>& v)
      : RArray(v.data(), static_cast<int>(v.size())) {}

  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] bool empty() const { return length_ == 0; }
  [[nodiscard]] T& operator[](int i) const { return data_[i]; }
  [[nodiscard]] T* begin() const { return data_; }
  [[nodiscard]] T* end() const { return data_ + length_; }

 private:
  T* data_ = nullptr;
  int length_ = 0;
};

/// Boxed SIDL-style array: owns a copy, carries a descriptor with a lower
/// bound and stride (always materialized contiguously here).  Construction
/// from raw memory copies — that copy is exactly the overhead the paper's
/// r-array decision avoids.
template <class T>
class SidlArray {
 public:
  SidlArray() = default;
  SidlArray(const T* data, int length, int lowerBound = 0)
      : values_(static_cast<std::size_t>(length)), lower_(lowerBound) {
    LISI_CHECK(length >= 0, "SidlArray: negative length");
    if (length > 0) {
      std::memcpy(values_.data(), data, sizeof(T) * static_cast<std::size_t>(length));
    }
  }

  [[nodiscard]] int length() const { return static_cast<int>(values_.size()); }
  [[nodiscard]] int lower() const { return lower_; }
  [[nodiscard]] int upper() const { return lower_ + length() - 1; }
  /// Indexed with descriptor-aware bounds checking (the boxed-access cost).
  [[nodiscard]] T get(int index) const {
    LISI_CHECK(index >= lower_ && index < lower_ + length(),
               "SidlArray: index out of bounds");
    return values_[static_cast<std::size_t>(index - lower_)];
  }
  void set(int index, T value) {
    LISI_CHECK(index >= lower_ && index < lower_ + length(),
               "SidlArray: index out of bounds");
    values_[static_cast<std::size_t>(index - lower_)] = value;
  }
  [[nodiscard]] const T* data() const { return values_.data(); }
  [[nodiscard]] T* data() { return values_.data(); }

 private:
  std::vector<T> values_;
  int lower_ = 0;
};

}  // namespace lisi
