// LISI solver component backed by PKSP (the PETSc-KSP-analogue package).
// This is the adapter the paper's "TOPS/PETSc solver component" corresponds
// to: it translates the generic LISI parameter keys into PKSP's C API calls
// and supports the matrix-free path through PKSP's shell operator.
#include "lisi/solver_base.hpp"
#include "pksp/pksp.hpp"
#include "support/string_util.hpp"

namespace lisi {
namespace {

class PkspSolverPort final : public detail::SolverComponentBase {
 public:
  ~PkspSolverPort() override { pksp::KSPDestroy(&ksp_); }

 protected:
  const char* backendName() const override { return "pksp"; }
  bool supportsMatrixFree() const override { return true; }

  bool acceptsParam(const std::string& key) const override {
    return SolverComponentBase::acceptsParam(key) || key == "restart" ||
           key == "sor_omega" || key == "sor_sweeps" ||
           key == "pksp_pipeline";
  }

  int backendSolve(const detail::SolveContext& ctx, std::span<const double> b,
                   std::span<double> x, detail::BackendStats& stats) override {
    const int rc = configure(ctx);
    if (rc != static_cast<int>(ErrorCode::kOk)) return rc;
    return finish(pksp::KSPSolve(ksp_, b, x), stats);
  }

  int backendSolveMulti(const detail::SolveContext& ctx,
                        std::span<const double> b, std::span<double> x,
                        int nRhs, detail::BackendStats& stats) override {
    // "multi_rhs=blocked" routes the whole batch through KSPSolveMulti's
    // lockstep kernels (one halo exchange + fused reductions per iteration
    // across all lanes); the default stays the sequential per-RHS loop,
    // which is bitwise identical to pre-multi-RHS behavior.
    if (toLower(paramString("multi_rhs", "sequential")) != "blocked") {
      return SolverComponentBase::backendSolveMulti(ctx, b, x, nRhs, stats);
    }
    const int rc = configure(ctx);
    if (rc != static_cast<int>(ErrorCode::kOk)) return rc;
    return finish(pksp::KSPSolveMulti(ksp_, b, x, nRhs), stats);
  }

 private:
  /// Push the parameter table and operator into the PKSP handle.
  int configure(const detail::SolveContext& ctx) {
    using namespace pksp;
    if (ksp_ == nullptr) {
      if (KSPCreate(*ctx.comm, &ksp_) != PKSP_SUCCESS) {
        return static_cast<int>(ErrorCode::kInternal);
      }
    }
    // Method / preconditioner selection from the generic parameter table.
    const std::string method = paramString("solver", "gmres");
    PkspType type = PKSP_GMRES;
    if (method == "cg") type = PKSP_CG;
    else if (method == "gmres") type = PKSP_GMRES;
    else if (method == "bicgstab") type = PKSP_BICGSTAB;
    else if (method == "richardson") type = PKSP_RICHARDSON;
    else return static_cast<int>(ErrorCode::kInvalidArgument);

    const std::string pc = paramString("preconditioner", "none");
    PkspPcType pcType = PKSP_PC_NONE;
    if (pc == "none") pcType = PKSP_PC_NONE;
    else if (pc == "jacobi") pcType = PKSP_PC_JACOBI;
    else if (pc == "sor") pcType = PKSP_PC_SOR;
    else if (pc == "ilu" || pc == "ilu0") pcType = PKSP_PC_ILU0;
    else if (pc == "bjacobi") pcType = PKSP_PC_BJACOBI;
    else return static_cast<int>(ErrorCode::kInvalidArgument);

    KSPSetType(ksp_, type);
    KSPSetPCType(ksp_, pcType);
    KSPSetTolerances(ksp_, paramDouble("tol", 1e-6), paramDouble("atol", 1e-50),
                     paramInt("maxits", 10000));
    KSPSetRestart(ksp_, paramInt("restart", 30));
    if (KSPSetSorOptions(ksp_, paramDouble("sor_omega", 1.0),
                         paramInt("sor_sweeps", 1)) != PKSP_SUCCESS) {
      return static_cast<int>(ErrorCode::kInvalidArgument);
    }
    KSPSetInitialGuessNonzero(ksp_, paramBool("use_initial_guess", false));
    KSPSetReusePreconditioner(ksp_, paramBool("reuse_preconditioner", false));

    // Communication-hiding Krylov loops (pksp-specific extension; the LISI
    // application code is unchanged — it only flips this parameter).
    const std::string pipe = toLower(paramString("pksp_pipeline", "off"));
    PkspPipelineMode pipeMode = PKSP_PIPELINE_OFF;
    if (pipe == "auto") pipeMode = PKSP_PIPELINE_AUTO;
    else if (pipe == "on" || pipe == "true" || pipe == "1" || pipe == "yes")
      pipeMode = PKSP_PIPELINE_ON;
    else if (pipe == "off" || pipe == "false" || pipe == "0" || pipe == "no")
      pipeMode = PKSP_PIPELINE_OFF;
    else return static_cast<int>(ErrorCode::kInvalidArgument);
    KSPSetPipeline(ksp_, pipeMode);

    // Mixed precision (solver_base resolved the "precision" parameter /
    // LISI_PRECISION): float32 SOR/ILU(0) preconditioner application under
    // the float64 Krylov iteration.
    KSPSetPrecision(ksp_, ctx.precision == prec::Mode::kMixed
                              ? PKSP_PRECISION_MIXED
                              : PKSP_PRECISION_DOUBLE);

    if (ctx.matrixFree != nullptr) {
      KSPSetOperatorShell(ksp_, &shellApply, ctx.matrixFree, ctx.localRows);
    } else {
      // Map the framework's operator-change contract onto PKSP's
      // KSPSetOperators-style structure flag so the preconditioner is
      // kept (same operator), value-refreshed (same pattern), or rebuilt.
      PkspMatStructure ms = PKSP_DIFFERENT_NONZERO_PATTERN;
      if (ctx.change == detail::OperatorChange::kSameOperator) {
        ms = PKSP_SAME_PRECONDITIONER;
      } else if (ctx.change == detail::OperatorChange::kSameStructure) {
        ms = PKSP_SAME_NONZERO_PATTERN;
      }
      // ctx.matrix is solver_base's distA_, which already carries the tuned
      // kernel configuration (ctx.spmvConfig) — no forwarding needed here.
      KSPSetOperator(ksp_, ctx.matrix, ms);
    }
    return static_cast<int>(ErrorCode::kOk);
  }

  /// Translate a KSPSolve/KSPSolveMulti return code and fill the stats.
  int finish(int rc, detail::BackendStats& stats) {
    using namespace pksp;
    PkspConvergedReason reason = PKSP_ITERATING;
    KSPGetConvergedReason(ksp_, &reason);
    KSPGetIterationNumber(ksp_, &stats.iterations);
    KSPGetResidualNorm(ksp_, &stats.residualNorm);
    stats.converged = reason > 0;
    if (rc == PKSP_ERR_UNSUPPORTED) {
      return static_cast<int>(ErrorCode::kUnsupported);
    }
    if (rc == PKSP_ERR_ARG || rc == PKSP_ERR_ORDER) {
      return static_cast<int>(ErrorCode::kInvalidArgument);
    }
    // Numeric failures are reported through stats.converged so the base can
    // still fill the status array.
    return static_cast<int>(ErrorCode::kOk);
  }

  static void shellApply(void* userCtx, const double* x, double* y, int n) {
    auto* mf = static_cast<MatrixFree*>(userCtx);
    const int rc =
        mf->matMult(OperatorId::kMatrix, RArray<const double>(x, n),
                    RArray<double>(y, n), n);
    LISI_CHECK(rc == 0, "MatrixFree::matMult failed");
  }

  pksp::KSP ksp_ = nullptr;
};

class PkspSolverComponent final : public cca::Component {
 public:
  void setServices(cca::Services& services) override {
    auto port = std::make_shared<PkspSolverPort>();
    port->attachServices(&services);
    services.addProvidesPort(port, kSparseSolverPortName,
                             kSparseSolverPortType);
    services.registerUsesPort(kMatrixFreePortName, kMatrixFreePortType);
  }
};

}  // namespace

namespace detail_registration {
void registerPksp() {
  cca::Framework::registerClass(kPkspComponentClass, [] {
    return std::make_shared<PkspSolverComponent>();
  });
}
}  // namespace detail_registration

}  // namespace lisi
