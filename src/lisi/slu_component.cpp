// LISI solver component backed by SLU (the SuperLU-analogue direct solver).
//
// SLU is sequential, so the adapter gathers the block-row distributed
// system onto rank 0, factors and solves there, and scatters the solution
// back — the interface contract (block rows in, block rows out) is
// identical to the iterative components', which is exactly the paper's
// point: the application cannot tell a direct component from an iterative
// one.  The factorization is cached and reused while the operator is
// unchanged (§5.2 use case b); a same-pattern value update reuses the
// symbolic analysis and replays only the numeric factorization.
#include "lisi/solver_base.hpp"
#include "obs/obs.hpp"
#include "slu/slu.hpp"
#include "sparse/convert.hpp"

namespace lisi {
namespace {

class SluSolverPort final : public detail::SolverComponentBase {
 protected:
  const char* backendName() const override { return "slu"; }

  bool acceptsParam(const std::string& key) const override {
    return SolverComponentBase::acceptsParam(key) || key == "ordering" ||
           key == "pivot_threshold" || key == "equilibrate";
  }

  int backendSolve(const detail::SolveContext& ctx, std::span<const double> b,
                   std::span<double> x, detail::BackendStats& stats) override {
    // ctx.matrix already carries the tuned kernel configuration; the direct
    // solve only reads the local block, so nothing to forward.
    const sparse::DistCsrMatrix& a = *ctx.matrix;
    const bool isRoot = ctx.comm->rank() == 0;

    // Mixed precision: factor into float32 storage and wrap the float32
    // triangular solves in float64 iterative refinement against the kept
    // CSC operator.  A precision flip invalidates the cached factorization
    // (its storage precision no longer matches the request).
    const bool mixed = ctx.precision == prec::Mode::kMixed;

    if (ctx.change != detail::OperatorChange::kSameOperator || !haveFactor_ ||
        factorLow_ != mixed) {
      const sparse::CsrMatrix global = a.gatherToRoot(0);
      int failed = 0;
      if (isRoot) {
        slu::Options opts;
        const std::string ord = paramString("ordering", "rcm");
        if (ord == "natural") opts.ordering = slu::Ordering::kNatural;
        else if (ord == "rcm") opts.ordering = slu::Ordering::kRcm;
        else if (ord == "mindeg") opts.ordering = slu::Ordering::kMinDeg;
        else failed = static_cast<int>(ErrorCode::kInvalidArgument);
        opts.diagPivotThresh = paramDouble("pivot_threshold", 1.0);
        opts.equilibrate = paramBool("equilibrate", false);
        opts.lowPrecision = mixed;
        if (failed == 0) {
          try {
            sparse::CscMatrix csc = sparse::csrToCsc(global);
            // Same nonzero pattern: skip the symbolic phase and replay the
            // numeric factorization in the frozen ordering
            // (SamePattern_SameRowPerm).  Any defect — pattern drift, a
            // pivot that became zero — falls back to a full factorize.
            // A precision flip also forces the full path: the stored
            // factorization's options no longer match the request.
            bool refactored = false;
            if (haveFactor_ && factorLow_ == mixed &&
                ctx.change == detail::OperatorChange::kSameStructure) {
              try {
                factor_->refactorize(csc);
                refactored = true;
              } catch (const Error&) {
                refactored = false;
              }
            }
            if (!refactored) {
              factor_ = slu::Factorization::factorize(csc, opts);
            }
            // Iterative refinement needs the operator at every solve.
            if (mixed) {
              csc_ = std::move(csc);
            } else {
              csc_ = sparse::CscMatrix{};
            }
          } catch (const Error&) {
            failed = static_cast<int>(ErrorCode::kNumericFailure);
          }
        }
      }
      failed = ctx.comm->bcastValue(failed, 0);
      if (failed != 0) return failed;
      haveFactor_ = true;
      factorLow_ = mixed;
    }

    // Gather b, solve on root, scatter x.
    const std::vector<double> bGlobal = a.gatherVectorToRoot(b, 0);
    std::vector<double> xGlobal;
    if (isRoot) {
      xGlobal.resize(bGlobal.size());
      if (mixed) {
        // Float32 triangular solves corrected by float64 refinement sweeps
        // (each sweep: one SpMV residual + one low-precision solve).
        const int sweeps = factor_->solveRefined(csc_, bGlobal, xGlobal, 10);
        obs::count("prec.refine_sweeps", sweeps);
      } else {
        factor_->solve(bGlobal, xGlobal);
      }
    }
    const std::vector<double> xLocal = a.scatterVectorFromRoot(
        isRoot ? std::span<const double>(xGlobal) : std::span<const double>(),
        0);
    std::copy(xLocal.begin(), xLocal.end(), x.begin());

    // True residual through the distributed operator.
    std::vector<double> r(b.size());
    a.spmv(x, std::span<double>(r));
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
    stats.iterations = 0;  // direct solve
    stats.residualNorm = sparse::distNorm2(*ctx.comm, r);
    stats.converged = true;
    return static_cast<int>(ErrorCode::kOk);
  }

 private:
  std::optional<slu::Factorization> factor_;  ///< rank 0 only
  sparse::CscMatrix csc_;  ///< rank 0, mixed mode only (refinement operator)
  bool haveFactor_ = false;
  bool factorLow_ = false;  ///< precision the cached factorization holds
};

class SluSolverComponent final : public cca::Component {
 public:
  void setServices(cca::Services& services) override {
    auto port = std::make_shared<SluSolverPort>();
    port->attachServices(&services);
    services.addProvidesPort(port, kSparseSolverPortName,
                             kSparseSolverPortType);
    // SLU cannot run matrix-free, but the uses port is still declared so
    // frameworks can wire applications uniformly; solve() reports
    // kUnsupported if matrix_free is set.
    services.registerUsesPort(kMatrixFreePortName, kMatrixFreePortType);
  }
};

}  // namespace

namespace detail_registration {
void registerSlu() {
  cca::Framework::registerClass(kSluComponentClass, [] {
    return std::make_shared<SluSolverComponent>();
  });
}
}  // namespace detail_registration

}  // namespace lisi
