// The application side of the paper's experiment (Figure 3): a parallel
// mesh data generator plus a driver that pushes the assembled system
// through a connected SparseSolver uses-port and collects timings.
//
// Wiring (per rank, SPMD):
//   driver (lisi.PdeDriver)
//     uses  "SparseSolver"  -> provided by any lisi.*Solver component
//     provides "MatrixFree" -> connected back to the solver for §5.5 runs
//     provides "Go"         -> invoked by the framework driver code
//
// The driver is also the component whose solver link is re-wired in the
// Figure 4 demo: the same instance solves through PETSc-, Trilinos- and
// SuperLU-style components with zero application-code changes.
#pragma once

#include <map>

#include "comm/comm.hpp"
#include "lisi/sparse_solver.hpp"

namespace lisi {

/// One experiment's configuration.
struct PdeDriverConfig {
  int gridN = 100;                 ///< interior points per side
  int nRhs = 1;                    ///< number of right-hand sides
  bool matrixFree = false;         ///< use the MatrixFree port (§5.5)
  /// Generic parameters forwarded via SparseSolver::set.
  std::map<std::string, std::string> solverParams;
};

/// One experiment's outcome.
struct PdeDriverResult {
  bool solved = false;             ///< solve() returned 0
  int returnCode = 0;              ///< raw LISI status code
  int iterations = 0;
  double residualNorm = 0.0;
  double setupSeconds = 0.0;       ///< solver-side operator setup
  double solveSeconds = 0.0;       ///< solver-side iteration time
  double wallSeconds = 0.0;        ///< driver-observed end-to-end time
  std::vector<double> localSolution;
};

/// The driver's entry port (the Ccaffeine "go" button).
class GoPort : public cca::Port {
 public:
  /// Run one experiment on `comm`.  Collective.
  virtual PdeDriverResult go(const comm::Comm& comm,
                             const PdeDriverConfig& config) = 0;
};

inline constexpr const char* kGoPortName = "Go";
inline constexpr const char* kGoPortType = "lisi.Go";
inline constexpr const char* kDriverComponentClass = "lisi.PdeDriver";

/// Register lisi.PdeDriver with the CCA class registry.
void registerDriverComponent();

}  // namespace lisi
