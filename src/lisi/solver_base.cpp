#include "lisi/solver_base.hpp"

#include <charconv>
#include <sstream>

#include "obs/obs.hpp"
#include "sparse/convert.hpp"
#include "support/string_util.hpp"
#include "support/timer.hpp"

namespace lisi::detail {

namespace {

int code(ErrorCode c) { return static_cast<int>(c); }

/// FNV-1a over the canonical local structure plus the block's start row.
/// Canonicalization first makes the fingerprint insensitive to input entry
/// order and duplicate-triplet order (FEM assembly), so re-feeding the same
/// pattern can never be defeated by ordering.
std::uint64_t structureHash(const sparse::CsrMatrix& a, int startRow) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int s = 0; s < 64; s += 8) {
      h ^= (v >> s) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(a.rows));
  mix(static_cast<std::uint64_t>(a.cols));
  mix(static_cast<std::uint64_t>(startRow));
  for (const int p : a.rowPtr) mix(static_cast<std::uint64_t>(p));
  for (const int c : a.colIdx) mix(static_cast<std::uint64_t>(c));
  return h;
}

}  // namespace

SolverComponentBase::SolverComponentBase() = default;

int SolverComponentBase::initialize(long comm) {
  try {
    comm_ = comm::commFromHandle(comm);
  } catch (const Error&) {
    return code(ErrorCode::kInvalidArgument);
  }
  initialized_ = true;
  return code(ErrorCode::kOk);
}

int SolverComponentBase::setBlockSize(int bs) {
  if (bs < 1) return code(ErrorCode::kInvalidArgument);
  blockSize_ = bs;
  return code(ErrorCode::kOk);
}

int SolverComponentBase::setStartRow(int startRow) {
  if (startRow < 0) return code(ErrorCode::kInvalidArgument);
  startRow_ = startRow;
  return code(ErrorCode::kOk);
}

int SolverComponentBase::setLocalRows(int rows) {
  if (rows < 0) return code(ErrorCode::kInvalidArgument);
  localRows_ = rows;
  return code(ErrorCode::kOk);
}

int SolverComponentBase::setLocalNNZ(int nnz) {
  if (nnz < 0) return code(ErrorCode::kInvalidArgument);
  localNnz_ = nnz;
  return code(ErrorCode::kOk);
}

int SolverComponentBase::setGlobalCols(int cols) {
  if (cols < 0) return code(ErrorCode::kInvalidArgument);
  globalCols_ = cols;
  return code(ErrorCode::kOk);
}

int SolverComponentBase::setupMatrix(RArray<const double> values,
                                     RArray<const int> rows,
                                     RArray<const int> columns, int nnz) {
  // few_args: COO triplets with 0-based global indices.
  return setupMatrixImpl(values, rows, columns, SparseStruct::kCoo, nnz, nnz,
                         0);
}

int SolverComponentBase::setupMatrix(RArray<const double> values,
                                     RArray<const int> rows,
                                     RArray<const int> columns,
                                     SparseStruct dataStruct, int rowsLength,
                                     int nnz) {
  return setupMatrixImpl(values, rows, columns, dataStruct, rowsLength, nnz,
                         0);
}

int SolverComponentBase::setupMatrix(RArray<const double> values,
                                     RArray<const int> rows,
                                     RArray<const int> columns,
                                     SparseStruct dataStruct, int rowsLength,
                                     int nnz, int offset) {
  return setupMatrixImpl(values, rows, columns, dataStruct, rowsLength, nnz,
                         offset);
}

int SolverComponentBase::setupMatrixImpl(RArray<const double> values,
                                         RArray<const int> rows,
                                         RArray<const int> columns,
                                         SparseStruct dataStruct,
                                         int rowsLength, int nnz, int offset) {
  if (!initialized_) return code(ErrorCode::kBadState);
  if (startRow_ < 0 || localRows_ < 0 || globalCols_ < 0) {
    return code(ErrorCode::kBadState);  // distribution not declared (§6.3)
  }
  if (nnz < 0 || rowsLength < 0 || offset < 0) {
    return code(ErrorCode::kInvalidArgument);
  }
  if (localNnz_ >= 0 && nnz != localNnz_) {
    return code(ErrorCode::kInvalidArgument);  // contradicts setLocalNNZ
  }
  if (values.length() < nnz) return code(ErrorCode::kInvalidArgument);

  try {
    sparse::CsrMatrix local;
    local.rows = localRows_;
    local.cols = globalCols_;
    switch (dataStruct) {
      case SparseStruct::kCoo:
      case SparseStruct::kFem: {
        // rows/columns: nnz global indices; duplicates sum (FEM assembly).
        if (rows.length() < nnz || columns.length() < nnz) {
          return code(ErrorCode::kInvalidArgument);
        }
        sparse::CooMatrix coo;
        coo.rows = localRows_;
        coo.cols = globalCols_;
        coo.rowIdx.reserve(static_cast<std::size_t>(nnz));
        coo.colIdx.reserve(static_cast<std::size_t>(nnz));
        coo.values.assign(values.begin(), values.begin() + nnz);
        for (int k = 0; k < nnz; ++k) {
          const int g = rows[k] - offset;
          if (g < startRow_ || g >= startRow_ + localRows_) {
            return code(ErrorCode::kInvalidArgument);  // not my row
          }
          coo.rowIdx.push_back(g - startRow_);
          coo.colIdx.push_back(columns[k] - offset);
        }
        local = sparse::cooToCsr(coo);
        break;
      }
      case SparseStruct::kCsr: {
        // rows: row-pointer array of length localRows+1 (values offset too,
        // Fortran style); columns: nnz global column indices.
        if (rowsLength != localRows_ + 1 || rows.length() < rowsLength ||
            columns.length() < nnz) {
          return code(ErrorCode::kInvalidArgument);
        }
        local.rowPtr.resize(static_cast<std::size_t>(rowsLength));
        for (int i = 0; i < rowsLength; ++i) {
          local.rowPtr[static_cast<std::size_t>(i)] = rows[i] - offset;
        }
        if (local.rowPtr.front() != 0 || local.rowPtr.back() != nnz) {
          return code(ErrorCode::kInvalidArgument);
        }
        local.colIdx.resize(static_cast<std::size_t>(nnz));
        for (int k = 0; k < nnz; ++k) {
          local.colIdx[static_cast<std::size_t>(k)] = columns[k] - offset;
        }
        local.values.assign(values.begin(), values.begin() + nnz);
        break;
      }
      case SparseStruct::kMsr: {
        // MSR per §5.3: values = [diag(localRows), pad, offdiag...];
        // rows = bindx pointer section (localRows+1 entries, MSR convention
        // bindx[0] = localRows+1, relative to the packed array); columns =
        // the offdiag global column indices (nnz - localRows - 1 entries).
        const int m = localRows_;
        if (rowsLength != m + 1 || rows.length() < rowsLength ||
            nnz < m + 1 || columns.length() < nnz - m - 1) {
          return code(ErrorCode::kInvalidArgument);
        }
        sparse::CooMatrix coo;
        coo.rows = m;
        coo.cols = globalCols_;
        for (int i = 0; i < m; ++i) {
          // Diagonal entry (implicit global column startRow + i).
          coo.rowIdx.push_back(i);
          coo.colIdx.push_back(startRow_ + i);
          coo.values.push_back(values[i]);
          const int b = rows[i] - offset;
          const int e = rows[i + 1] - offset;
          if (b < m + 1 || e < b || e > nnz) {
            return code(ErrorCode::kInvalidArgument);
          }
          for (int k = b; k < e; ++k) {
            coo.rowIdx.push_back(i);
            coo.colIdx.push_back(columns[k - m - 1] - offset);
            coo.values.push_back(values[k]);
          }
        }
        local = sparse::cooToCsr(coo);
        break;
      }
      case SparseStruct::kVbr: {
        // Uniform blocks of setBlockSize: rows = block-row pointer
        // (numBlockRows+1), columns = global block column indices, values =
        // column-major dense blocks in block order.
        const int bs = blockSize_;
        if (bs < 1 || localRows_ % bs != 0 || globalCols_ % bs != 0) {
          return code(ErrorCode::kUnsupported);
        }
        const int nbr = localRows_ / bs;
        if (rowsLength != nbr + 1 || rows.length() < rowsLength) {
          return code(ErrorCode::kInvalidArgument);
        }
        const int nblocks = rows[nbr] - offset;
        if (nblocks < 0 || columns.length() < nblocks ||
            nblocks * bs * bs != nnz) {
          return code(ErrorCode::kInvalidArgument);
        }
        sparse::CooMatrix coo;
        coo.rows = localRows_;
        coo.cols = globalCols_;
        for (int br = 0; br < nbr; ++br) {
          const int bBegin = rows[br] - offset;
          const int bEnd = rows[br + 1] - offset;
          if (bBegin < 0 || bEnd < bBegin || bEnd > nblocks) {
            return code(ErrorCode::kInvalidArgument);
          }
          for (int b = bBegin; b < bEnd; ++b) {
            const int bc = columns[b] - offset;
            const int base = b * bs * bs;
            for (int lj = 0; lj < bs; ++lj) {
              for (int li = 0; li < bs; ++li) {
                coo.rowIdx.push_back(br * bs + li);
                coo.colIdx.push_back(bc * bs + lj);
                coo.values.push_back(values[base + lj * bs + li]);
              }
            }
          }
        }
        local = sparse::cooToCsr(coo);
        break;
      }
      default:
        return code(ErrorCode::kUnsupported);
    }
    local.check();
    // Canonical form (sorted columns, merged duplicates) is what every
    // consumer wants anyway (DistCsrMatrix canonicalizes on construction),
    // and it is what makes the structural fingerprint and the value-only
    // update path independent of input entry order.
    local.canonicalize();
    localA_ = std::move(local);
    haveMatrix_ = true;
    matrixDirty_ = true;
  } catch (const Error&) {
    return code(ErrorCode::kInvalidArgument);
  }
  return code(ErrorCode::kOk);
}

int SolverComponentBase::setupRHS(RArray<const double> rightHandSide,
                                  int numLocalRow, int nRhs) {
  if (!initialized_) return code(ErrorCode::kBadState);
  if (numLocalRow != localRows_ || nRhs < 1 ||
      rightHandSide.length() < numLocalRow * nRhs) {
    return code(ErrorCode::kInvalidArgument);
  }
  rhs_.assign(rightHandSide.begin(),
              rightHandSide.begin() + numLocalRow * nRhs);
  nRhs_ = nRhs;
  return code(ErrorCode::kOk);
}

int SolverComponentBase::solve(RArray<double> solution, RArray<double> status,
                               int numLocalRow, int statusLength) {
  if (!initialized_) return code(ErrorCode::kBadState);
  if (numLocalRow != localRows_ || nRhs_ < 1) {
    return code(ErrorCode::kBadState);
  }
  if (solution.length() < numLocalRow * nRhs_ ||
      status.length() < statusLength || statusLength < 0) {
    return code(ErrorCode::kInvalidArgument);
  }
  const bool matrixFree = paramBool("matrix_free", false);
  if (matrixFree && !supportsMatrixFree()) {
    return code(ErrorCode::kUnsupported);
  }
  if (!matrixFree && !haveMatrix_) return code(ErrorCode::kBadState);

  WallTimer total;
  double setupSeconds = 0.0;
  SolveContext ctx;
  ctx.comm = &comm_;
  ctx.localRows = localRows_;
  ctx.startRow = startRow_;

  std::shared_ptr<MatrixFree> mfPort;  // keep alive through the solve
  try {
    if (matrixFree) {
      LISI_CHECK(services_ != nullptr,
                 "matrix-free mode requires CCA services (MatrixFree port)");
      mfPort = std::dynamic_pointer_cast<MatrixFree>(
          services_->getPort(kMatrixFreePortName));
      LISI_CHECK(mfPort != nullptr,
                 "connected MatrixFree port has the wrong type");
      ctx.matrixFree = mfPort.get();
      const int globalRows =
          comm_.allreduceValue(localRows_, comm::ReduceOp::kSum);
      ctx.globalRows = globalRows;
      // The application operator is opaque — it may change arbitrarily
      // between calls — so matrix-free solves always report kNewStructure.
      ctx.change = OperatorChange::kNewStructure;
      // No assembled operator means no nnz to weigh "auto" against, so it
      // resolves to the safe default (double).
      ctx.precision = prec::resolveAuto(
          prec::modeFromString(paramString("precision", ""),
                               prec::modeFromEnv()),
          0);
    } else {
      WallTimer setup;
      if (matrixDirty_ || !distA_) {
        obs::Span span("lisi.setup");
        // Structural fingerprint of the freshly adapted canonical block.
        // One min-allreduce makes the decision collective: the pattern is
        // "same" only if EVERY rank kept its local pattern, so all ranks
        // take the same branch below.
        const std::uint64_t fp = structureHash(localA_, startRow_);
        const int sameLocal = (distA_ && fp == structFingerprint_) ? 1 : 0;
        const bool samePattern =
            comm_.allreduceValue(sameLocal, comm::ReduceOp::kMin) == 1;
        if (samePattern) {
          // Value-only refresh: halo plan, ghost column map, and scratch
          // all survive; no communication, no allocation.
          distA_->updateValues(localA_);
        } else {
          // Collective: every rank rebuilds the distributed operator
          // together.
          distA_.emplace(comm_, comm_.allreduceValue(localRows_,
                                                     comm::ReduceOp::kSum),
                         globalCols_, startRow_, localA_);
          structFingerprint_ = fp;
          ++structEpoch_;
        }
        ++valueEpoch_;
        matrixDirty_ = false;
      }
      setupSeconds += setup.seconds();
      ctx.matrix = &*distA_;
      ctx.globalRows = distA_->globalRows();
      if (structEpoch_ != lastSolvedStructEpoch_ ||
          lastSolvedKind_ != OperatorKind::kAssembled) {
        ctx.change = OperatorChange::kNewStructure;
      } else if (valueEpoch_ != lastSolvedValueEpoch_) {
        ctx.change = OperatorChange::kSameStructure;
      } else {
        ctx.change = OperatorChange::kSameOperator;
      }

      // Mixed-precision mode: parameter beats environment (LISI_PRECISION),
      // default double.  "auto" weighs the global operator size against the
      // bandwidth-win threshold with one allreduce — collective, so every
      // rank resolves the same mode.
      {
        prec::Mode pm = prec::modeFromString(paramString("precision", ""),
                                             prec::modeFromEnv());
        if (pm == prec::Mode::kAuto) {
          const long long globalNnz = comm_.allreduceValue(
              static_cast<long long>(localA_.nnz()), comm::ReduceOp::kSum);
          pm = prec::resolveAuto(pm, globalNnz);
        }
        ctx.precision = pm;
      }

      // Structure-fingerprint-keyed autotuning (DESIGN.md).  Replay is
      // free: once this structure epoch has been tuned under the current
      // mode, later solves skip even the cache lookup — no communication,
      // no locks, just the already-applied configuration.
      const tune::Mode tuneMode =
          tune::modeFromString(paramString("tune", ""), tune::modeFromEnv());
      if (tuneMode != tune::Mode::kOff) {
        if (tunedStructEpoch_ == structEpoch_ && tunedMode_ == tuneMode &&
            tunedPrec_ == ctx.precision) {
          tune::noteReplayHit();
        } else {
          tune::TuneInput in;
          in.comm = comm_;
          in.matrix = &*distA_;
          in.mode = tuneMode;
          // One fused two-lane allreduce agrees on the operator key and on
          // its global weight (the kAuto size gate).
          const std::uint64_t lanes[2] = {
              structFingerprint_, static_cast<std::uint64_t>(localA_.nnz())};
          std::uint64_t sums[2] = {0, 0};
          comm_.allreduce(std::span<const std::uint64_t>(lanes),
                          std::span<std::uint64_t>(sums),
                          comm::ReduceOp::kSum);
          in.key = {sums[0], comm_.size(), static_cast<int>(ctx.precision)};
          in.globalNnz = static_cast<long long>(sums[1]);
          in.structureChanged = tunedStructEpoch_ != 0;
          in.retunesSoFar = tuneRetunes_;
          in.retuneBudget = paramInt("tune_retune_budget", 4);
          const tune::Decision d = tune::tuneOperator(in);
          if (d.probed && in.structureChanged) ++tuneRetunes_;
          tunedStructEpoch_ = structEpoch_;
          tunedMode_ = tuneMode;
          tunedPrec_ = ctx.precision;
        }
        ctx.spmvConfig = distA_->spmvConfig();
      }
    }
  } catch (const Error&) {
    return code(ErrorCode::kInternal);
  }

  obs::count("lisi.solve.calls");
  if (ctx.precision == prec::Mode::kMixed) {
    prec::noteMixedSolve();
    obs::count("prec.mixed_solves");
  }
  switch (ctx.change) {
    case OperatorChange::kSameOperator:
      obs::count("lisi.change.same_operator");
      break;
    case OperatorChange::kSameStructure:
      obs::count("lisi.change.same_structure");
      break;
    case OperatorChange::kNewStructure:
      obs::count("lisi.change.new_structure");
      break;
  }
  BackendStats last{};
  WallTimer solveTimer;
  obs::Span solveSpan("lisi.backend_solve");
  const auto m = static_cast<std::size_t>(numLocalRow);
  const auto nv = static_cast<std::size_t>(nRhs_);
  std::span<double> xAll(solution.data(), m * nv);
  if (!paramBool("use_initial_guess", false)) {
    std::fill(xAll.begin(), xAll.end(), 0.0);
  }
  {
    int rc = code(ErrorCode::kOk);
    try {
      rc = backendSolveMulti(ctx, std::span<const double>(rhs_.data(), m * nv),
                             xAll, nRhs_, last);
    } catch (const Error&) {
      rc = code(ErrorCode::kNumericFailure);
    }
    if (rc != code(ErrorCode::kOk)) return rc;
  }
  lastSolvedStructEpoch_ = structEpoch_;
  lastSolvedValueEpoch_ = valueEpoch_;
  lastSolvedKind_ =
      matrixFree ? OperatorKind::kMatrixFree : OperatorKind::kAssembled;

  const double solveSeconds = solveTimer.seconds();
  (void)total;
  const double entries[kStatusLength] = {
      static_cast<double>(last.iterations), last.residualNorm,
      last.converged ? 1.0 : 0.0, setupSeconds, solveSeconds};
  for (int i = 0; i < statusLength && i < kStatusLength; ++i) {
    status[i] = entries[i];
  }
  return last.converged ? code(ErrorCode::kOk)
                        : code(ErrorCode::kNumericFailure);
}

int SolverComponentBase::backendSolveMulti(const SolveContext& ctx,
                                           std::span<const double> b,
                                           std::span<double> x, int nRhs,
                                           BackendStats& stats) {
  const auto m = static_cast<std::size_t>(ctx.localRows);
  for (int k = 0; k < nRhs; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    const int rc =
        backendSolve(ctx, b.subspan(ku * m, m), x.subspan(ku * m, m), stats);
    if (rc != code(ErrorCode::kOk)) return rc;
  }
  return code(ErrorCode::kOk);
}

bool SolverComponentBase::isCommonParam(const std::string& key) {
  return key == "solver" || key == "preconditioner" || key == "tol" ||
         key == "atol" || key == "maxits" || key == "matrix_free" ||
         key == "use_initial_guess" || key == "reuse_preconditioner" ||
         key == "tune" || key == "tune_retune_budget" || key == "precision" ||
         key == "multi_rhs";
}

bool SolverComponentBase::acceptsParam(const std::string& key) const {
  return isCommonParam(key);
}

int SolverComponentBase::storeParam(const std::string& key,
                                    const std::string& value) {
  const std::string k = toLower(trim(key));
  if (k.empty()) return code(ErrorCode::kInvalidArgument);
  if (!acceptsParam(k)) return code(ErrorCode::kUnsupported);
  params_[k] = trim(value);
  return code(ErrorCode::kOk);
}

int SolverComponentBase::set(const std::string& key,
                             const std::string& value) {
  return storeParam(key, value);
}

int SolverComponentBase::setInt(const std::string& key, int value) {
  return storeParam(key, std::to_string(value));
}

int SolverComponentBase::setBool(const std::string& key, bool value) {
  return storeParam(key, value ? "true" : "false");
}

int SolverComponentBase::setDouble(const std::string& key, double value) {
  // Shortest round-trip representation ("1e-07", not a 17-digit expansion).
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  LISI_ASSERT(ec == std::errc{});
  return storeParam(key, std::string(buf, end));
}

std::string SolverComponentBase::get_all() {
  std::ostringstream os;
  os << "backend=" << backendName() << ';';
  for (const auto& [k, v] : params_) os << k << '=' << v << ';';
  return os.str();
}

std::string SolverComponentBase::paramString(const std::string& key,
                                             const std::string& fallback) const {
  auto it = params_.find(key);
  return it == params_.end() ? fallback : it->second;
}

double SolverComponentBase::paramDouble(const std::string& key,
                                        double fallback) const {
  auto it = params_.find(key);
  if (it == params_.end()) return fallback;
  return parseDouble(it->second).value_or(fallback);
}

int SolverComponentBase::paramInt(const std::string& key, int fallback) const {
  auto it = params_.find(key);
  if (it == params_.end()) return fallback;
  const auto v = parseInt(it->second);
  return v ? static_cast<int>(*v) : fallback;
}

bool SolverComponentBase::paramBool(const std::string& key,
                                    bool fallback) const {
  auto it = params_.find(key);
  if (it == params_.end()) return fallback;
  return parseBool(it->second).value_or(fallback);
}

}  // namespace lisi::detail
