// Registration of the LISI solver components with the CCA class registry.
// Explicit (rather than static-initializer magic) so static-archive linking
// cannot silently drop the registrars.
#include "lisi/sparse_solver.hpp"

namespace lisi {

namespace detail_registration {
void registerPksp();
void registerAztec();
void registerSlu();
void registerHymg();
}  // namespace detail_registration

void registerSolverComponents() {
  detail_registration::registerPksp();
  detail_registration::registerAztec();
  detail_registration::registerSlu();
  detail_registration::registerHymg();
}

}  // namespace lisi
