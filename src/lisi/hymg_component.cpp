// LISI solver component backed by HyMG (the hypre-analogue structured
// multigrid package).
//
// Like hypre's structured-grid solvers, HyMG needs the grid description,
// which cannot be recovered from an assembled matrix alone.  The adapter
// therefore requires the generic parameters
//   mg_grid_n  (int, interior points per side; mg_grid_n^2 == global rows)
//   mg_bx, mg_by (doubles, convection coefficients of -lap(u)+bx*u_x+by*u_y;
//                 default 0: pure Laplacian)
// and checks that the supplied matrix matches the rediscretized fine-level
// operator (so a mismatched matrix is an error, not silent wrong answers).
#include <limits>

#include "hymg/hymg.hpp"
#include "lisi/solver_base.hpp"
#include "sparse/ops.hpp"

namespace lisi {
namespace {

class HymgSolverPort final : public detail::SolverComponentBase {
 protected:
  const char* backendName() const override { return "hymg"; }

  bool acceptsParam(const std::string& key) const override {
    return SolverComponentBase::acceptsParam(key) || key == "mg_grid_n" ||
           key == "mg_bx" || key == "mg_by" || key == "mg_pre_smooth" ||
           key == "mg_post_smooth" || key == "mg_gamma" ||
           key == "mg_smoother" || key == "mg_jacobi_weight" ||
           key == "mg_coarse_op";
  }

  int backendSolve(const detail::SolveContext& ctx, std::span<const double> b,
                   std::span<double> x, detail::BackendStats& stats) override {
    const int gridN = paramInt("mg_grid_n", -1);
    if (gridN < 1 || gridN * gridN != ctx.globalRows) {
      return static_cast<int>(ErrorCode::kInvalidArgument);
    }
    if (ctx.change == detail::OperatorChange::kSameStructure && mg_) {
      // Same sparsity, possibly new coefficients (e.g. time-dependent
      // convection): keep the grid hierarchy and transfer operators and
      // refresh only operator values, smoother data, and the coarse factor.
      mg_->refreshOperator(hymg::convectionDiffusionStencil(
          paramDouble("mg_bx", 0.0), paramDouble("mg_by", 0.0)));
      const int rc = validateFineLevel(ctx);
      if (rc != 0) return rc;
    } else if (ctx.change != detail::OperatorChange::kSameOperator || !mg_) {
      hymg::Options opts;
      opts.preSmooth = paramInt("mg_pre_smooth", 2);
      opts.postSmooth = paramInt("mg_post_smooth", 2);
      opts.gamma = paramInt("mg_gamma", 1);
      opts.jacobiWeight = paramDouble("mg_jacobi_weight", 0.8);
      const std::string smoother = paramString("mg_smoother", "gs");
      if (smoother == "jacobi") opts.smoother = hymg::Smoother::kJacobi;
      else if (smoother == "gs") opts.smoother = hymg::Smoother::kHybridGs;
      else return static_cast<int>(ErrorCode::kInvalidArgument);
      const std::string coarseOp = paramString("mg_coarse_op", "rediscretize");
      if (coarseOp == "galerkin") {
        opts.coarseOperator = hymg::CoarseOperator::kGalerkin;
      } else if (coarseOp != "rediscretize") {
        return static_cast<int>(ErrorCode::kInvalidArgument);
      }
      mg_.emplace(*ctx.comm, gridN,
                  hymg::convectionDiffusionStencil(paramDouble("mg_bx", 0.0),
                                                   paramDouble("mg_by", 0.0)),
                  opts);
      const int rc = validateFineLevel(ctx);
      if (rc != 0) return rc;
    }
    // HyMG rediscretizes its own fine-level DistCsrMatrix, so the tuned
    // kernel configuration on ctx.matrix does not carry over — forward it
    // to the finest level (cheap no-op when unchanged).
    (void)mg_->setFineSpmvConfig(ctx.spmvConfig);
    // Mixed precision: float32 hierarchy/smoother/coarse-LU cycle inside a
    // float64 defect-correction outer loop (cheap no-op when unchanged;
    // collective agreement guaranteed by ctx.precision).
    mg_->setLowPrecision(ctx.precision == prec::Mode::kMixed);
    const hymg::SolveInfo info =
        mg_->solve(b, x, paramDouble("tol", 1e-6), paramInt("maxits", 100));
    stats.iterations = info.cycles;
    stats.converged = info.converged;
    // True residual against the application's matrix.
    std::vector<double> r(b.size());
    ctx.matrix->spmv(x, std::span<double>(r));
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
    stats.residualNorm = sparse::distNorm2(*ctx.comm, r);
    return static_cast<int>(ErrorCode::kOk);
  }

 private:
  /// Guard against a mismatched operator: the rediscretized fine level must
  /// agree with the matrix the application supplied.  Collective.
  int validateFineLevel(const detail::SolveContext& ctx) {
    const double diff = localBlockMaxDiff(*ctx.matrix, mg_->fineMatrix());
    const double maxDiff = ctx.comm->allreduceValue(diff, comm::ReduceOp::kMax);
    const double scale = sparse::infNorm(ctx.matrix->localBlock()) + 1.0;
    if (maxDiff > 1e-8 * scale) {
      mg_.reset();
      return static_cast<int>(ErrorCode::kInvalidArgument);
    }
    return 0;
  }

  static double localBlockMaxDiff(const sparse::DistCsrMatrix& a,
                                  const sparse::DistCsrMatrix& b) {
    if (a.localRows() != b.localRows()) {
      return std::numeric_limits<double>::infinity();
    }
    return sparse::maxAbsDiff(a.localBlock(), b.localBlock());
  }

  std::optional<hymg::Solver> mg_;
};

class HymgSolverComponent final : public cca::Component {
 public:
  void setServices(cca::Services& services) override {
    auto port = std::make_shared<HymgSolverPort>();
    port->attachServices(&services);
    services.addProvidesPort(port, kSparseSolverPortName,
                             kSparseSolverPortType);
    services.registerUsesPort(kMatrixFreePortName, kMatrixFreePortType);
  }
};

}  // namespace

namespace detail_registration {
void registerHymg() {
  cca::Framework::registerClass(kHymgComponentClass, [] {
    return std::make_shared<HymgSolverComponent>();
  });
}
}  // namespace detail_registration

}  // namespace lisi
