// LISI solver component backed by Aztec (the Trilinos/AztecOO analogue):
// the generic parameter keys are translated into AZ_* option/parameter
// array entries; matrix-free mode wraps the application's MatrixFree port
// in a RowMatrix subclass, the §5.5 Epetra_RowMatrix pattern.
#include "aztec/aztecoo.hpp"
#include "lisi/solver_base.hpp"
#include "support/string_util.hpp"

namespace lisi {
namespace {

/// RowMatrix over the application's MatrixFree port.
class MatrixFreeRowMatrix final : public aztec::RowMatrix {
 public:
  MatrixFreeRowMatrix(const aztec::Map& map, MatrixFree* mf)
      : map_(&map), mf_(mf) {}
  [[nodiscard]] const aztec::Map& rowMap() const override { return *map_; }
  void apply(const aztec::Vector& x, aztec::Vector& y) const override {
    const int n = x.myLength();
    const int rc = mf_->matMult(
        OperatorId::kMatrix, RArray<const double>(x.localView().data(), n),
        RArray<double>(y.localView().data(), n), n);
    LISI_CHECK(rc == 0, "MatrixFree::matMult failed");
  }

 private:
  const aztec::Map* map_;
  MatrixFree* mf_;
};

class AztecSolverPort final : public detail::SolverComponentBase {
 protected:
  const char* backendName() const override { return "aztec"; }
  bool supportsMatrixFree() const override { return true; }

  bool acceptsParam(const std::string& key) const override {
    return SolverComponentBase::acceptsParam(key) || key == "restart" ||
           key == "poly_ord";
  }

  int backendSolve(const detail::SolveContext& ctx, std::span<const double> b,
                   std::span<double> x, detail::BackendStats& stats) override {
    using namespace aztec;
    const int prep = prepare(ctx);
    if (prep != static_cast<int>(ErrorCode::kOk)) return prep;

    Vector xv(*map_, x);
    const Vector bv(*map_, b);
    AztecOO solver(*rowMatrix_, xv, bv);
    const int opts = applyOptions(ctx, solver);
    if (opts != static_cast<int>(ErrorCode::kOk)) return opts;
    (void)solver.iterate(paramInt("maxits", 10000), paramDouble("tol", 1e-6));
    std::copy(xv.localView().begin(), xv.localView().end(), x.begin());
    stats.iterations = solver.numIters();
    stats.residualNorm = solver.trueResidual();
    stats.converged = solver.terminationReason() == AZ_normal;
    return static_cast<int>(ErrorCode::kOk);
  }

  int backendSolveMulti(const detail::SolveContext& ctx,
                        std::span<const double> b, std::span<double> x,
                        int nRhs, detail::BackendStats& stats) override {
    using namespace aztec;
    // "multi_rhs=blocked" routes the batch through one MultiVector-bound
    // AztecOO: the preconditioner builds once for all lanes and the
    // convergence scales fuse into a single allreduce.  The default stays
    // the per-RHS loop, bitwise identical to pre-multi-RHS behavior.
    if (lisi::toLower(paramString("multi_rhs", "sequential")) != "blocked") {
      return SolverComponentBase::backendSolveMulti(ctx, b, x, nRhs, stats);
    }
    const int prep = prepare(ctx);
    if (prep != static_cast<int>(ErrorCode::kOk)) return prep;

    MultiVector xv(*map_, x, nRhs);
    const MultiVector bv(*map_, b, nRhs);
    AztecOO solver(*rowMatrix_, xv, bv);
    const int opts = applyOptions(ctx, solver);
    if (opts != static_cast<int>(ErrorCode::kOk)) return opts;
    (void)solver.iterateMulti(paramInt("maxits", 10000),
                              paramDouble("tol", 1e-6));
    xv.extract(x);
    stats.iterations = solver.numIters();
    stats.residualNorm = solver.trueResidual();
    stats.converged = solver.terminationReason() == AZ_normal;
    return static_cast<int>(ErrorCode::kOk);
  }

 private:
  /// Build or refresh the Map/RowMatrix pair for this solve.
  int prepare(const detail::SolveContext& ctx) {
    using namespace aztec;
    // Aztec accepts the common "precision" parameter (LISI contract: a
    // backend without a low-precision path must still take the knob) but
    // runs entirely in float64 — ctx.precision is intentionally unused.
    // Operator change contract: kSameOperator keeps everything;
    // kSameStructure keeps the Map and the CrsMatrix (importer/halo state)
    // and rewrites only the wrapped values; kNewStructure rebuilds.
    auto* crs = dynamic_cast<CrsMatrix*>(rowMatrix_.get());
    if (ctx.change == detail::OperatorChange::kSameStructure &&
        ctx.matrixFree == nullptr && map_ && crs != nullptr) {
      crs->replaceValues(ctx.matrix->localBlock());
    } else if (ctx.change != detail::OperatorChange::kSameOperator || !map_) {
      map_ = std::make_unique<Map>(ctx.globalRows, ctx.localRows, *ctx.comm);
      if (ctx.matrixFree != nullptr) {
        rowMatrix_ =
            std::make_unique<MatrixFreeRowMatrix>(*map_, ctx.matrixFree);
      } else {
        rowMatrix_ =
            std::make_unique<CrsMatrix>(*map_, ctx.matrix->localBlock());
      }
    } else if (ctx.matrixFree != nullptr) {
      // The port pointer may change between solves even if "unchanged".
      rowMatrix_ = std::make_unique<MatrixFreeRowMatrix>(*map_, ctx.matrixFree);
    }
    // CrsMatrix wraps its OWN DistCsrMatrix built from the local block, so
    // the tuned kernel configuration on ctx.matrix does not carry over —
    // forward it explicitly (cheap no-op when unchanged).
    if (auto* tuned = dynamic_cast<CrsMatrix*>(rowMatrix_.get())) {
      (void)tuned->setSpmvConfig(ctx.spmvConfig);
    }
    return static_cast<int>(ErrorCode::kOk);
  }

  /// Translate the generic parameter table into AZ_* options.
  int applyOptions(const detail::SolveContext& ctx, aztec::AztecOO& solver) {
    using namespace aztec;
    const std::string method = paramString("solver", "gmres");
    int azSolver = AZ_gmres;
    if (method == "cg") azSolver = AZ_cg;
    else if (method == "gmres") azSolver = AZ_gmres;
    else if (method == "bicgstab") azSolver = AZ_bicgstab;
    else return static_cast<int>(ErrorCode::kInvalidArgument);

    const std::string pc = paramString("preconditioner", "none");
    int azPrecond = AZ_none;
    if (pc == "none") azPrecond = AZ_none;
    else if (pc == "jacobi") azPrecond = AZ_Jacobi;
    else if (pc == "neumann") azPrecond = AZ_Neumann;
    else if (pc == "symgs" || pc == "sgs") azPrecond = AZ_sym_GS;
    else if (pc == "ilu" || pc == "ilu0" || pc == "bjacobi") {
      azPrecond = AZ_dom_decomp;
    } else {
      return static_cast<int>(ErrorCode::kInvalidArgument);
    }
    if (ctx.matrixFree != nullptr &&
        (azPrecond == AZ_dom_decomp || azPrecond == AZ_sym_GS)) {
      return static_cast<int>(ErrorCode::kUnsupported);
    }

    solver.setOption(AZ_solver, azSolver)
        .setOption(AZ_precond, azPrecond)
        .setOption(AZ_kspace, paramInt("restart", 30))
        .setOption(AZ_poly_ord, paramInt("poly_ord", 3))
        .setOption(AZ_conv, AZ_rhs);
    return static_cast<int>(ErrorCode::kOk);
  }

  std::unique_ptr<aztec::Map> map_;
  std::unique_ptr<aztec::RowMatrix> rowMatrix_;
};

class AztecSolverComponent final : public cca::Component {
 public:
  void setServices(cca::Services& services) override {
    auto port = std::make_shared<AztecSolverPort>();
    port->attachServices(&services);
    services.addProvidesPort(port, kSparseSolverPortName,
                             kSparseSolverPortType);
    services.registerUsesPort(kMatrixFreePortName, kMatrixFreePortType);
  }
};

}  // namespace

namespace detail_registration {
void registerAztec() {
  cca::Framework::registerClass(kAztecComponentClass, [] {
    return std::make_shared<AztecSolverComponent>();
  });
}
}  // namespace detail_registration

}  // namespace lisi
