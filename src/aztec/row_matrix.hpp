// RowMatrix: Aztec's abstract operator interface (Epetra_RowMatrix
// analogue).  §5.5 of the paper: "Trilinos's Epetra_RowMatrix virtual class
// allows the application developer to implement and create their own matrix
// data type with a matrix vector product method.  The newly created matrix
// object can then be passed to AztecOO solver" — this is exactly that hook.
//
// A matrix-free application implements apply() (and optionally
// extractDiagonal() to unlock diagonal-based preconditioners); assembled
// matrices use CrsMatrix below.
#pragma once

#include <memory>

#include "aztec/vector.hpp"
#include "sparse/dist_csr.hpp"

namespace aztec {

/// Abstract distributed operator y = A*x on conformal Map layouts.
class RowMatrix {
 public:
  virtual ~RowMatrix() = default;

  /// Row layout (x and y layouts coincide: square operators only).
  [[nodiscard]] virtual const Map& rowMap() const = 0;

  /// y = A * x.  Collective over rowMap().comm().
  virtual void apply(const Vector& x, Vector& y) const = 0;

  /// Fill `d` with the matrix diagonal.  Default: unsupported (matrix-free
  /// operators may override to unlock Jacobi/Neumann preconditioning).
  virtual void extractDiagonal(Vector& d) const;

  /// Assembled local rows with *local* column remapping, if available.
  /// Preconditioners that factor the local block (AZ_dom_decomp) require
  /// this; pure matrix-free operators return nullptr.
  [[nodiscard]] virtual const lisi::sparse::DistCsrMatrix* assembled() const {
    return nullptr;
  }
};

/// Assembled sparse matrix over a Map (Epetra_CrsMatrix analogue).
class CrsMatrix final : public RowMatrix {
 public:
  /// Wrap this rank's rows (global column indices) on layout `map`.
  /// Collective.
  CrsMatrix(const Map& map, lisi::sparse::CsrMatrix localRows);

  [[nodiscard]] const Map& rowMap() const override { return *map_; }
  void apply(const Vector& x, Vector& y) const override;
  void extractDiagonal(Vector& d) const override;
  [[nodiscard]] const lisi::sparse::DistCsrMatrix* assembled() const override {
    return &dist_;
  }

  [[nodiscard]] long long numGlobalNonzeros() const { return dist_.globalNnz(); }

  /// Same-pattern value refresh (Epetra's ReplaceMyValues-style workflow):
  /// `localRows` must be canonical and carry exactly the sparsity of the
  /// wrapped rows; the distributed operator's halo plan and importer state
  /// are reused untouched.  Purely local.
  void replaceValues(const lisi::sparse::CsrMatrix& localRows);

  /// Forward a tuned local-kernel configuration (src/tune) to the wrapped
  /// distributed operator so every apply() in the solve runs tuned.  Returns
  /// the configuration actually applied (ineligible requests fall back).
  lisi::sparse::SpmvConfig setSpmvConfig(const lisi::sparse::SpmvConfig& cfg) {
    return dist_.setSpmvConfig(cfg);
  }

 private:
  const Map* map_;
  lisi::sparse::DistCsrMatrix dist_;
};

}  // namespace aztec
