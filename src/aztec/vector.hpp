// Aztec Vector: a distributed vector living on a Map (Epetra_Vector
// analogue).  Owns its local values; global reductions go through the
// Map's communicator.
#pragma once

#include <span>
#include <vector>

#include "aztec/map.hpp"

namespace aztec {

/// Distributed vector over a Map's layout.
class Vector {
 public:
  /// Zero-initialized vector on `map` (the map must outlive the vector).
  explicit Vector(const Map& map);

  /// Copy local values in (size must equal map.numMyElements()).
  Vector(const Map& map, std::span<const double> localValues);

  [[nodiscard]] const Map& map() const { return *map_; }
  [[nodiscard]] int myLength() const { return static_cast<int>(values_.size()); }
  [[nodiscard]] int globalLength() const { return map_->numGlobalElements(); }

  [[nodiscard]] double& operator[](int i) { return values_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] double operator[](int i) const {
    return values_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::span<double> localView() { return values_; }
  [[nodiscard]] std::span<const double> localView() const { return values_; }

  /// Set every local entry to `value`.
  void putScalar(double value);

  /// this = alpha*a + beta*this  (Epetra-style update).
  void update(double alpha, const Vector& a, double beta);

  /// this = alpha*a + beta*b + gamma*this.
  void update(double alpha, const Vector& a, double beta, const Vector& b,
              double gamma);

  /// Global dot product (collective).
  [[nodiscard]] double dot(const Vector& other) const;

  /// Global 2-norm (collective).
  [[nodiscard]] double norm2() const;

  /// Global infinity norm (collective).
  [[nodiscard]] double normInf() const;

  /// Elementwise multiply: this = a .* b.
  void multiply(const Vector& a, const Vector& b);

  /// Elementwise reciprocal of `a` into this; throws on zero entries.
  void reciprocal(const Vector& a);

 private:
  const Map* map_;
  std::vector<double> values_;
};

}  // namespace aztec
