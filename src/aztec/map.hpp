// Aztec — an object-oriented parallel iterative solver package in the
// style of Trilinos (Epetra + AztecOO).  Where PKSP mimics PETSc's C
// handles, Aztec mimics Trilinos's object composition: a Map describes the
// parallel layout, Vectors live on a Map, RowMatrix is an abstract operator
// (the matrix-free hook the paper's §5.5 describes for
// Epetra_RowMatrix/AztecOO), and the AztecOO class drives the iteration
// configured through integer option and double parameter arrays.
//
// Map: block-row distribution of global indices over the ranks of a
// communicator (the Epetra_Map analogue; only contiguous linear maps are
// supported, matching LISI's §5.4 block-row assumption).
#pragma once

#include "comm/comm.hpp"
#include "sparse/partition.hpp"

namespace aztec {

/// Contiguous block-row layout of `numGlobalElements` indices.
class Map {
 public:
  /// Near-even distribution (remainder to low ranks).  Collective.
  Map(int numGlobalElements, const lisi::comm::Comm& comm);

  /// Explicit local count (must tile the global range in rank order).
  /// Collective: validates consistency across ranks.
  Map(int numGlobalElements, int numMyElements, const lisi::comm::Comm& comm);

  [[nodiscard]] int numGlobalElements() const { return numGlobal_; }
  [[nodiscard]] int numMyElements() const {
    return starts_[static_cast<std::size_t>(comm_.rank()) + 1] -
           starts_[static_cast<std::size_t>(comm_.rank())];
  }
  /// First global index owned by this rank.
  [[nodiscard]] int minMyGlobalIndex() const {
    return starts_[static_cast<std::size_t>(comm_.rank())];
  }
  /// Ownership boundaries for all ranks (size comm().size()+1).
  [[nodiscard]] const std::vector<int>& offsets() const { return starts_; }
  [[nodiscard]] const lisi::comm::Comm& comm() const { return comm_; }

  /// Two maps are compatible when they describe the same distribution.
  [[nodiscard]] bool sameAs(const Map& other) const {
    return numGlobal_ == other.numGlobal_ && starts_ == other.starts_;
  }

 private:
  lisi::comm::Comm comm_;
  int numGlobal_ = 0;
  std::vector<int> starts_;
};

}  // namespace aztec
