// AztecOO iteration kernels and preconditioners.
#include "aztec/aztecoo.hpp"

#include "obs/obs.hpp"

#include <cmath>
#include <functional>

namespace aztec {
namespace {

using lisi::sparse::CsrMatrix;

bool isBad(double v) { return std::isnan(v) || std::isinf(v); }

/// Preconditioner application z = M^{-1} r as a callable.
using PcApply = std::function<void(const Vector& r, Vector& z)>;

/// k-step Jacobi: z_0 = D^{-1} r;  z_{j+1} = z_j + D^{-1}(r - A z_j).
PcApply makeKStepJacobi(const RowMatrix& a, int steps) {
  auto invDiag = std::make_shared<Vector>(a.rowMap());
  Vector d(a.rowMap());
  a.extractDiagonal(d);
  invDiag->reciprocal(d);
  return [&a, invDiag, steps](const Vector& r, Vector& z) {
    z.multiply(*invDiag, r);
    if (steps <= 1) return;
    Vector t(a.rowMap());
    Vector corr(a.rowMap());
    for (int s = 1; s < steps; ++s) {
      a.apply(z, t);                 // t = A z
      t.update(1.0, r, -1.0);        // t = r - A z
      corr.multiply(*invDiag, t);    // corr = D^{-1} (r - A z)
      z.update(1.0, corr, 1.0);      // z += corr
    }
  };
}

/// Neumann-series polynomial: with N = I - D^{-1}A,
///   M^{-1} = (I + N + N^2 + ... + N^p) D^{-1}.
PcApply makeNeumann(const RowMatrix& a, int order) {
  auto invDiag = std::make_shared<Vector>(a.rowMap());
  Vector d(a.rowMap());
  a.extractDiagonal(d);
  invDiag->reciprocal(d);
  return [&a, invDiag, order](const Vector& r, Vector& z) {
    // Horner form: z = D^{-1} r; repeat: z = D^{-1} r + N z.
    Vector dr(a.rowMap());
    dr.multiply(*invDiag, r);
    z = dr;
    Vector az(a.rowMap());
    Vector daz(a.rowMap());
    for (int k = 0; k < order; ++k) {
      a.apply(z, az);
      daz.multiply(*invDiag, az);
      // z = dr + z - daz
      z.update(1.0, dr, -1.0, daz, 1.0);
    }
  };
}

/// Local-block ILU(0) (domain decomposition with one subdomain per rank).
/// Implemented independently of PKSP's ILU: packages are self-contained.
class LocalIlu {
 public:
  explicit LocalIlu(const lisi::sparse::DistCsrMatrix& a) {
    // Extract the local diagonal block with local indices.
    const CsrMatrix& loc = a.localBlock();
    const int start = a.startRow();
    const int end = start + a.localRows();
    lu_.rows = a.localRows();
    lu_.cols = a.localRows();
    lu_.rowPtr.assign(static_cast<std::size_t>(lu_.rows) + 1, 0);
    for (int i = 0; i < loc.rows; ++i) {
      for (int k = loc.rowPtr[static_cast<std::size_t>(i)];
           k < loc.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        const int c = loc.colIdx[static_cast<std::size_t>(k)];
        if (c >= start && c < end) {
          lu_.colIdx.push_back(c - start);
          lu_.values.push_back(loc.values[static_cast<std::size_t>(k)]);
        }
      }
      lu_.rowPtr[static_cast<std::size_t>(i) + 1] =
          static_cast<int>(lu_.values.size());
    }
    lu_.canonicalize();
    diagPos_.assign(static_cast<std::size_t>(lu_.rows), -1);
    for (int i = 0; i < lu_.rows; ++i) {
      for (int k = lu_.rowPtr[static_cast<std::size_t>(i)];
           k < lu_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        if (lu_.colIdx[static_cast<std::size_t>(k)] == i) {
          diagPos_[static_cast<std::size_t>(i)] = k;
        }
      }
      LISI_CHECK(diagPos_[static_cast<std::size_t>(i)] >= 0,
                 "AZ_dom_decomp ILU: structurally zero diagonal");
    }
    factor();
  }

  void solve(std::span<const double> r, std::span<double> z) const {
    const int n = lu_.rows;
    for (int i = 0; i < n; ++i) {
      double acc = r[static_cast<std::size_t>(i)];
      for (int k = lu_.rowPtr[static_cast<std::size_t>(i)];
           k < diagPos_[static_cast<std::size_t>(i)]; ++k) {
        acc -= lu_.values[static_cast<std::size_t>(k)] *
               z[static_cast<std::size_t>(lu_.colIdx[static_cast<std::size_t>(k)])];
      }
      z[static_cast<std::size_t>(i)] = acc;
    }
    for (int i = n - 1; i >= 0; --i) {
      double acc = z[static_cast<std::size_t>(i)];
      for (int k = diagPos_[static_cast<std::size_t>(i)] + 1;
           k < lu_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        acc -= lu_.values[static_cast<std::size_t>(k)] *
               z[static_cast<std::size_t>(lu_.colIdx[static_cast<std::size_t>(k)])];
      }
      z[static_cast<std::size_t>(i)] =
          acc / lu_.values[static_cast<std::size_t>(
                    diagPos_[static_cast<std::size_t>(i)])];
    }
  }

 private:
  void factor() {
    const int n = lu_.rows;
    std::vector<int> pos(static_cast<std::size_t>(n), -1);
    for (int i = 0; i < n; ++i) {
      const int rb = lu_.rowPtr[static_cast<std::size_t>(i)];
      const int re = lu_.rowPtr[static_cast<std::size_t>(i) + 1];
      for (int k = rb; k < re; ++k) {
        pos[static_cast<std::size_t>(lu_.colIdx[static_cast<std::size_t>(k)])] = k;
      }
      for (int k = rb; k < re; ++k) {
        const int j = lu_.colIdx[static_cast<std::size_t>(k)];
        if (j >= i) break;
        const double piv = lu_.values[static_cast<std::size_t>(
            diagPos_[static_cast<std::size_t>(j)])];
        LISI_CHECK(piv != 0.0, "AZ_dom_decomp ILU: zero pivot");
        const double lij = lu_.values[static_cast<std::size_t>(k)] / piv;
        lu_.values[static_cast<std::size_t>(k)] = lij;
        for (int kk = diagPos_[static_cast<std::size_t>(j)] + 1;
             kk < lu_.rowPtr[static_cast<std::size_t>(j) + 1]; ++kk) {
          const int p = pos[static_cast<std::size_t>(
              lu_.colIdx[static_cast<std::size_t>(kk)])];
          if (p >= 0) {
            lu_.values[static_cast<std::size_t>(p)] -=
                lij * lu_.values[static_cast<std::size_t>(kk)];
          }
        }
      }
      for (int k = rb; k < re; ++k) {
        pos[static_cast<std::size_t>(lu_.colIdx[static_cast<std::size_t>(k)])] = -1;
      }
      LISI_CHECK(lu_.values[static_cast<std::size_t>(
                     diagPos_[static_cast<std::size_t>(i)])] != 0.0,
                 "AZ_dom_decomp ILU: zero pivot");
    }
  }

  CsrMatrix lu_;
  std::vector<int> diagPos_;
};

/// Symmetric Gauss-Seidel on the local diagonal block:
///   M = (D + L) D^{-1} (D + U)   (exact for the local block, Jacobi-like
///   across rank boundaries).  Preserves symmetry for SPD matrices, so it
///   is safe under CG — unlike plain (one-sided) Gauss-Seidel.
class LocalSgs {
 public:
  explicit LocalSgs(const lisi::sparse::DistCsrMatrix& a) {
    const CsrMatrix& loc = a.localBlock();
    const int start = a.startRow();
    const int end = start + a.localRows();
    blk_.rows = a.localRows();
    blk_.cols = a.localRows();
    blk_.rowPtr.assign(static_cast<std::size_t>(blk_.rows) + 1, 0);
    for (int i = 0; i < loc.rows; ++i) {
      for (int k = loc.rowPtr[static_cast<std::size_t>(i)];
           k < loc.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        const int c = loc.colIdx[static_cast<std::size_t>(k)];
        if (c >= start && c < end) {
          blk_.colIdx.push_back(c - start);
          blk_.values.push_back(loc.values[static_cast<std::size_t>(k)]);
        }
      }
      blk_.rowPtr[static_cast<std::size_t>(i) + 1] =
          static_cast<int>(blk_.values.size());
    }
    blk_.canonicalize();
    diagPos_.assign(static_cast<std::size_t>(blk_.rows), -1);
    for (int i = 0; i < blk_.rows; ++i) {
      for (int k = blk_.rowPtr[static_cast<std::size_t>(i)];
           k < blk_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        if (blk_.colIdx[static_cast<std::size_t>(k)] == i) {
          diagPos_[static_cast<std::size_t>(i)] = k;
        }
      }
      LISI_CHECK(diagPos_[static_cast<std::size_t>(i)] >= 0 &&
                     blk_.values[static_cast<std::size_t>(
                         diagPos_[static_cast<std::size_t>(i)])] != 0.0,
                 "AZ_sym_GS: zero or missing diagonal");
    }
  }

  void solve(std::span<const double> r, std::span<double> z) const {
    const int n = blk_.rows;
    // Forward: (D + L) y = r.
    for (int i = 0; i < n; ++i) {
      double acc = r[static_cast<std::size_t>(i)];
      for (int k = blk_.rowPtr[static_cast<std::size_t>(i)];
           k < diagPos_[static_cast<std::size_t>(i)]; ++k) {
        acc -= blk_.values[static_cast<std::size_t>(k)] *
               z[static_cast<std::size_t>(blk_.colIdx[static_cast<std::size_t>(k)])];
      }
      z[static_cast<std::size_t>(i)] =
          acc / blk_.values[static_cast<std::size_t>(
                    diagPos_[static_cast<std::size_t>(i)])];
    }
    // Scale by D: w = D y.
    for (int i = 0; i < n; ++i) {
      z[static_cast<std::size_t>(i)] *=
          blk_.values[static_cast<std::size_t>(
              diagPos_[static_cast<std::size_t>(i)])];
    }
    // Backward: (D + U) z = w.
    for (int i = n - 1; i >= 0; --i) {
      double acc = z[static_cast<std::size_t>(i)];
      for (int k = diagPos_[static_cast<std::size_t>(i)] + 1;
           k < blk_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        acc -= blk_.values[static_cast<std::size_t>(k)] *
               z[static_cast<std::size_t>(blk_.colIdx[static_cast<std::size_t>(k)])];
      }
      z[static_cast<std::size_t>(i)] =
          acc / blk_.values[static_cast<std::size_t>(
                    diagPos_[static_cast<std::size_t>(i)])];
    }
  }

 private:
  CsrMatrix blk_;
  std::vector<int> diagPos_;
};

PcApply makeSymGs(const RowMatrix& a) {
  const lisi::sparse::DistCsrMatrix* dist = a.assembled();
  LISI_CHECK(dist != nullptr,
             "AZ_sym_GS requires an assembled matrix (CrsMatrix)");
  auto sgs = std::make_shared<LocalSgs>(*dist);
  return [sgs](const Vector& r, Vector& z) {
    sgs->solve(r.localView(), z.localView());
  };
}

PcApply makeDomDecompIlu(const RowMatrix& a) {
  const lisi::sparse::DistCsrMatrix* dist = a.assembled();
  LISI_CHECK(dist != nullptr,
             "AZ_dom_decomp requires an assembled matrix (CrsMatrix)");
  auto ilu = std::make_shared<LocalIlu>(*dist);
  return [ilu](const Vector& r, Vector& z) {
    ilu->solve(r.localView(), z.localView());
  };
}

PcApply makePreconditioner(const RowMatrix& a, int precond, int polyOrd) {
  switch (precond) {
    case AZ_none:
      return [](const Vector& r, Vector& z) { z = r; };
    case AZ_Jacobi:
      return makeKStepJacobi(a, std::max(1, polyOrd));
    case AZ_Neumann:
      return makeNeumann(a, std::max(0, polyOrd));
    case AZ_dom_decomp:
      return makeDomDecompIlu(a);
    case AZ_sym_GS:
      return makeSymGs(a);
    default:
      throw lisi::Error("AztecOO: unknown AZ_precond value " +
                        std::to_string(precond));
  }
}

struct IterationResult {
  int its = 0;
  int why = AZ_breakdown;
  double resid = 0.0;
};

/// Preconditioned CG on r (true residual).
IterationResult runCg(const RowMatrix& a, const PcApply& pc, const Vector& b,
                      Vector& x, int maxIter, double threshold) {
  const Map& map = a.rowMap();
  Vector r(map), z(map), p(map), ap(map);
  a.apply(x, r);
  r.update(1.0, b, -1.0);
  IterationResult res;
  res.resid = r.norm2();
  if (res.resid <= threshold) {
    res.why = AZ_normal;
    return res;
  }
  pc(r, z);
  p = z;
  double rz = r.dot(z);
  for (int it = 1; it <= maxIter; ++it) {
    a.apply(p, ap);
    const double pap = p.dot(ap);
    if (pap == 0.0 || isBad(pap)) {
      res.its = it - 1;
      res.why = AZ_breakdown;
      return res;
    }
    const double alpha = rz / pap;
    x.update(alpha, p, 1.0);
    r.update(-alpha, ap, 1.0);
    res.its = it;
    res.resid = r.norm2();
    if (isBad(res.resid)) {
      res.why = AZ_breakdown;
      return res;
    }
    if (res.resid <= threshold) {
      res.why = AZ_normal;
      return res;
    }
    pc(r, z);
    const double rzNew = r.dot(z);
    if (rz == 0.0) {
      res.why = AZ_breakdown;
      return res;
    }
    const double beta = rzNew / rz;
    rz = rzNew;
    p.update(1.0, z, beta);
  }
  res.why = AZ_maxits;
  return res;
}

/// Right-preconditioned restarted GMRES (tracked residual = true residual).
IterationResult runGmres(const RowMatrix& a, const PcApply& pc,
                         const Vector& b, Vector& x, int maxIter,
                         double threshold, int kspace) {
  const Map& map = a.rowMap();
  const int m = std::max(1, kspace);
  IterationResult res;
  Vector r(map), w(map), mz(map);
  std::vector<Vector> v;
  v.reserve(static_cast<std::size_t>(m) + 1);
  for (int i = 0; i <= m; ++i) v.emplace_back(map);
  std::vector<std::vector<double>> h(
      static_cast<std::size_t>(m) + 1,
      std::vector<double>(static_cast<std::size_t>(m), 0.0));
  std::vector<double> cs(static_cast<std::size_t>(m), 0.0);
  std::vector<double> sn(static_cast<std::size_t>(m), 0.0);
  std::vector<double> g(static_cast<std::size_t>(m) + 1, 0.0);

  while (true) {
    a.apply(x, r);
    r.update(1.0, b, -1.0);
    double beta = r.norm2();
    res.resid = beta;
    if (isBad(beta)) {
      res.why = AZ_breakdown;
      return res;
    }
    if (beta <= threshold) {
      res.why = AZ_normal;
      return res;
    }
    v[0] = r;
    v[0].update(0.0, r, 1.0 / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    bool converged = false;
    for (; j < m && res.its < maxIter; ++j) {
      ++res.its;
      pc(v[static_cast<std::size_t>(j)], mz);   // mz = M^{-1} v_j
      a.apply(mz, w);                           // w = A M^{-1} v_j
      for (int i = 0; i <= j; ++i) {
        const double hij = w.dot(v[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = hij;
        w.update(-hij, v[static_cast<std::size_t>(i)], 1.0);
      }
      const double hnext = w.norm2();
      h[static_cast<std::size_t>(j) + 1][static_cast<std::size_t>(j)] = hnext;
      if (isBad(hnext)) {
        res.why = AZ_breakdown;
        return res;
      }
      const bool lucky = hnext <= 1e-300;
      if (!lucky) {
        v[static_cast<std::size_t>(j) + 1] = w;
        v[static_cast<std::size_t>(j) + 1].update(0.0, w, 1.0 / hnext);
      }
      for (int i = 0; i < j; ++i) {
        const double t =
            cs[static_cast<std::size_t>(i)] *
                h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +
            sn[static_cast<std::size_t>(i)] *
                h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(j)];
        h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(j)] =
            -sn[static_cast<std::size_t>(i)] *
                h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +
            cs[static_cast<std::size_t>(i)] *
                h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(j)];
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = t;
      }
      const double hjj = h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)];
      const double denom = std::sqrt(hjj * hjj + hnext * hnext);
      if (denom == 0.0) {
        res.why = AZ_breakdown;
        return res;
      }
      cs[static_cast<std::size_t>(j)] = hjj / denom;
      sn[static_cast<std::size_t>(j)] = hnext / denom;
      h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)] = denom;
      g[static_cast<std::size_t>(j) + 1] =
          -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] =
          cs[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      res.resid = std::abs(g[static_cast<std::size_t>(j) + 1]);
      if (res.resid <= threshold || lucky) {
        ++j;
        converged = true;
        break;
      }
    }

    // x += M^{-1} (V y): accumulate V y first, precondition once.
    std::vector<double> y(static_cast<std::size_t>(j), 0.0);
    for (int i = j - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k) {
        acc -= h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] *
               y[static_cast<std::size_t>(k)];
      }
      const double hii = h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
      if (hii == 0.0) {
        res.why = AZ_breakdown;
        return res;
      }
      y[static_cast<std::size_t>(i)] = acc / hii;
    }
    Vector vy(map);
    for (int i = 0; i < j; ++i) {
      vy.update(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)],
                1.0);
    }
    pc(vy, mz);
    x.update(1.0, mz, 1.0);

    if (converged && res.resid <= threshold) {
      // Recompute the true residual (right preconditioning keeps them
      // equal up to rounding, but report the honest number).
      a.apply(x, r);
      r.update(1.0, b, -1.0);
      res.resid = r.norm2();
      res.why = AZ_normal;
      return res;
    }
    if (res.its >= maxIter) {
      res.why = AZ_maxits;
      return res;
    }
    if (converged) {  // lucky breakdown without threshold: loop restarts
      continue;
    }
  }
}

/// Right-preconditioned BiCGSTAB.
IterationResult runBicgstab(const RowMatrix& a, const PcApply& pc,
                            const Vector& b, Vector& x, int maxIter,
                            double threshold) {
  const Map& map = a.rowMap();
  Vector r(map), rhat(map), p(map), ph(map), v(map), s(map), sh(map), t(map);
  a.apply(x, r);
  r.update(1.0, b, -1.0);
  IterationResult res;
  res.resid = r.norm2();
  if (res.resid <= threshold) {
    res.why = AZ_normal;
    return res;
  }
  rhat = r;
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  p.putScalar(0.0);
  v.putScalar(0.0);
  for (int it = 1; it <= maxIter; ++it) {
    const double rhoNew = rhat.dot(r);
    if (rhoNew == 0.0 || isBad(rhoNew) || omega == 0.0) {
      res.its = it - 1;
      res.why = AZ_breakdown;
      return res;
    }
    const double beta = (rhoNew / rho) * (alpha / omega);
    rho = rhoNew;
    // p = r + beta (p - omega v)
    p.update(-omega, v, 1.0);
    p.update(1.0, r, beta);
    pc(p, ph);
    a.apply(ph, v);
    const double rhatV = rhat.dot(v);
    if (rhatV == 0.0 || isBad(rhatV)) {
      res.its = it - 1;
      res.why = AZ_breakdown;
      return res;
    }
    alpha = rho / rhatV;
    s = r;
    s.update(-alpha, v, 1.0);
    res.its = it;
    res.resid = s.norm2();
    if (res.resid <= threshold) {
      x.update(alpha, ph, 1.0);
      res.why = AZ_normal;
      return res;
    }
    pc(s, sh);
    a.apply(sh, t);
    const double tt = t.dot(t);
    if (tt == 0.0 || isBad(tt)) {
      res.why = AZ_breakdown;
      return res;
    }
    omega = t.dot(s) / tt;
    x.update(alpha, ph, omega, sh, 1.0);
    r = s;
    r.update(-omega, t, 1.0);
    res.resid = r.norm2();
    if (isBad(res.resid)) {
      res.why = AZ_breakdown;
      return res;
    }
    if (res.resid <= threshold) {
      res.why = AZ_normal;
      return res;
    }
  }
  res.why = AZ_maxits;
  return res;
}

/// Dispatch one lane to the selected iteration kernel.
IterationResult runLane(const RowMatrix& a, const PcApply& pc, const Vector& b,
                        Vector& x, int maxIter, double threshold, int solver,
                        int kspace) {
  switch (solver) {
    case AZ_cg:
      return runCg(a, pc, b, x, maxIter, threshold);
    case AZ_gmres:
      return runGmres(a, pc, b, x, maxIter, threshold, kspace);
    case AZ_bicgstab:
      return runBicgstab(a, pc, b, x, maxIter, threshold);
    default:
      throw lisi::Error("AztecOO: unknown AZ_solver value " +
                        std::to_string(solver));
  }
}

}  // namespace

AztecOO::AztecOO(const RowMatrix& a, Vector& x, const Vector& b)
    : a_(&a), x_(&x), b_(&b) {
  LISI_CHECK(a.rowMap().sameAs(x.map()) && a.rowMap().sameAs(b.map()),
             "AztecOO: operator and vectors must share one map");
  options_[AZ_solver] = AZ_gmres;
  options_[AZ_precond] = AZ_none;
  options_[AZ_max_iter] = 500;
  options_[AZ_kspace] = 30;
  options_[AZ_conv] = AZ_rhs;
  options_[AZ_poly_ord] = 3;
  params_[AZ_tol] = 1e-6;
}

AztecOO::AztecOO(const RowMatrix& a, MultiVector& x, const MultiVector& b)
    : a_(&a), mx_(&x), mb_(&b) {
  LISI_CHECK(a.rowMap().sameAs(x.map()) && a.rowMap().sameAs(b.map()),
             "AztecOO: operator and block vectors must share one map");
  LISI_CHECK(x.numVectors() == b.numVectors(),
             "AztecOO: solution and RHS blocks must have equal lane counts");
  options_[AZ_solver] = AZ_gmres;
  options_[AZ_precond] = AZ_none;
  options_[AZ_max_iter] = 500;
  options_[AZ_kspace] = 30;
  options_[AZ_conv] = AZ_rhs;
  options_[AZ_poly_ord] = 3;
  params_[AZ_tol] = 1e-6;
}

AztecOO& AztecOO::setOption(int index, int value) {
  LISI_CHECK(index >= 0 && index < AZ_OPTIONS_SIZE,
             "AztecOO::setOption: index out of range");
  options_[static_cast<std::size_t>(index)] = value;
  return *this;
}

AztecOO& AztecOO::setParam(int index, double value) {
  LISI_CHECK(index >= 0 && index < AZ_PARAMS_SIZE,
             "AztecOO::setParam: index out of range");
  params_[static_cast<std::size_t>(index)] = value;
  return *this;
}

int AztecOO::option(int index) const {
  LISI_CHECK(index >= 0 && index < AZ_OPTIONS_SIZE,
             "AztecOO::option: index out of range");
  return options_[static_cast<std::size_t>(index)];
}

double AztecOO::param(int index) const {
  LISI_CHECK(index >= 0 && index < AZ_PARAMS_SIZE,
             "AztecOO::param: index out of range");
  return params_[static_cast<std::size_t>(index)];
}

int AztecOO::iterate() {
  return iterate(options_[AZ_max_iter], params_[AZ_tol]);
}

int AztecOO::iterate(int maxIter, double tol) {
  LISI_CHECK(maxIter >= 0, "AztecOO::iterate: negative maxIter");
  LISI_CHECK(tol >= 0, "AztecOO::iterate: negative tolerance");
  LISI_CHECK(x_ != nullptr, "AztecOO::iterate: solver is block-bound; "
                            "use iterateMulti");
  lisi::obs::Span span("aztec.iterate");

  const PcApply pc =
      makePreconditioner(*a_, options_[AZ_precond], options_[AZ_poly_ord]);

  // Convergence threshold per AZ_conv.
  double scale = 1.0;
  if (options_[AZ_conv] == AZ_rhs) {
    scale = b_->norm2();
  } else {
    Vector r0(a_->rowMap());
    a_->apply(*x_, r0);
    r0.update(1.0, *b_, -1.0);
    scale = r0.norm2();
  }
  if (scale == 0.0) scale = 1.0;  // zero RHS: absolute test
  const double threshold = tol * scale;

  const IterationResult res = runLane(*a_, pc, *b_, *x_, maxIter, threshold,
                                      options_[AZ_solver], options_[AZ_kspace]);
  status_[AZ_its] = res.its;
  status_[AZ_why] = res.why;
  status_[AZ_r] = res.resid;
  status_[AZ_scaled_r] = res.resid / scale;
  return res.why == AZ_normal ? 0 : 1;
}

int AztecOO::iterateMulti(int maxIter, double tol) {
  LISI_CHECK(maxIter >= 0, "AztecOO::iterateMulti: negative maxIter");
  LISI_CHECK(tol >= 0, "AztecOO::iterateMulti: negative tolerance");
  LISI_CHECK(mx_ != nullptr, "AztecOO::iterateMulti: solver is bound to a "
                             "single vector; use iterate");
  lisi::obs::Span span("aztec.iterate_multi",
                       static_cast<std::uint64_t>(mx_->numVectors()));

  // Built once, applied by every lane — the ILU(0)/SGS factorization cost
  // amortizes over the whole block.
  const PcApply pc =
      makePreconditioner(*a_, options_[AZ_precond], options_[AZ_poly_ord]);

  // Per-lane convergence scales with ONE fused allreduce for the block.
  const auto nv = static_cast<std::size_t>(mx_->numVectors());
  std::vector<double> scales(nv, 1.0);
  if (options_[AZ_conv] == AZ_rhs) {
    mb_->norms2(scales);
  } else {
    MultiVector r0(a_->rowMap(), mx_->numVectors());
    for (std::size_t k = 0; k < nv; ++k) {
      a_->apply((*mx_)(static_cast<int>(k)), r0(static_cast<int>(k)));
      r0(static_cast<int>(k)).update(1.0, (*mb_)(static_cast<int>(k)), -1.0);
    }
    r0.norms2(scales);
  }

  status_ = {};
  int rc = 0;
  for (std::size_t k = 0; k < nv; ++k) {
    double scale = scales[k];
    if (scale == 0.0) scale = 1.0;  // zero RHS lane: absolute test
    const IterationResult res =
        runLane(*a_, pc, (*mb_)(static_cast<int>(k)),
                (*mx_)(static_cast<int>(k)), maxIter, tol * scale,
                options_[AZ_solver], options_[AZ_kspace]);
    status_[AZ_its] = std::max(status_[AZ_its], static_cast<double>(res.its));
    status_[AZ_why] = std::max(status_[AZ_why], static_cast<double>(res.why));
    status_[AZ_r] = std::max(status_[AZ_r], res.resid);
    status_[AZ_scaled_r] = std::max(status_[AZ_scaled_r], res.resid / scale);
    if (res.why != AZ_normal) rc = 1;
  }
  return rc;
}


}  // namespace aztec
