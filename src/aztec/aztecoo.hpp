// AztecOO-style iteration driver.
//
// Configuration mirrors Aztec's classic interface: an integer options array
// indexed by AZ_* option ids and a double parameters array indexed by AZ_*
// parameter ids; results come back through a status array.  This is the
// "heavily parameterized, package-specific" configuration surface (§2.1 of
// the paper) that LISI's generic set(key, value) methods hide.
//
// Methods: CG, GMRES(kspace), BiCGSTAB — GMRES/BiCGSTAB use *right*
// preconditioning (so the tracked residual is the true residual), CG uses
// the standard preconditioned-CG recurrence.  Preconditioners: none,
// k-step Jacobi, Neumann-series polynomial (both matrix-free capable given
// extractDiagonal), and domain-decomposition ILU(0) on the local block.
#pragma once

#include <array>
#include <memory>

#include "aztec/multi_vector.hpp"
#include "aztec/row_matrix.hpp"

namespace aztec {

// ---- option indices (options array) ------------------------------------
inline constexpr int AZ_solver = 0;
inline constexpr int AZ_precond = 1;
inline constexpr int AZ_max_iter = 2;
inline constexpr int AZ_kspace = 3;    ///< GMRES restart length
inline constexpr int AZ_conv = 4;      ///< convergence-test selector
inline constexpr int AZ_poly_ord = 5;  ///< Jacobi steps / Neumann order
inline constexpr int AZ_OPTIONS_SIZE = 6;

// ---- AZ_solver values ---------------------------------------------------
inline constexpr int AZ_cg = 0;
inline constexpr int AZ_gmres = 1;
inline constexpr int AZ_bicgstab = 2;

// ---- AZ_precond values --------------------------------------------------
inline constexpr int AZ_none = 0;
inline constexpr int AZ_Jacobi = 1;      ///< k-step Jacobi
inline constexpr int AZ_Neumann = 2;     ///< Neumann-series polynomial
inline constexpr int AZ_dom_decomp = 3;  ///< local ILU(0) (one subdomain/rank)
inline constexpr int AZ_sym_GS = 4;      ///< symmetric Gauss-Seidel on the
                                         ///< local block (SPD-friendly)

// ---- AZ_conv values -----------------------------------------------------
inline constexpr int AZ_rhs = 0;  ///< ||r|| <= tol * ||b||
inline constexpr int AZ_r0 = 1;   ///< ||r|| <= tol * ||r0||

// ---- parameter indices (params array) -----------------------------------
inline constexpr int AZ_tol = 0;
inline constexpr int AZ_PARAMS_SIZE = 1;

// ---- status indices (status array) --------------------------------------
inline constexpr int AZ_its = 0;       ///< iterations performed
inline constexpr int AZ_why = 1;       ///< termination cause (below)
inline constexpr int AZ_r = 2;         ///< final true residual norm
inline constexpr int AZ_scaled_r = 3;  ///< final residual / scale
inline constexpr int AZ_STATUS_SIZE = 4;

// ---- AZ_why values --------------------------------------------------------
inline constexpr int AZ_normal = 0;     ///< converged
inline constexpr int AZ_maxits = 1;     ///< hit AZ_max_iter
inline constexpr int AZ_breakdown = 2;  ///< numerical breakdown / NaN

/// The iteration driver.  Holds non-owning references to the operator and
/// the solution/right-hand-side vectors (AztecOO style).
class AztecOO {
 public:
  /// Bind the problem A x = b.  All three must outlive the solver.
  AztecOO(const RowMatrix& a, Vector& x, const Vector& b);

  /// Bind the block problem A X = B over numVectors lanes (multi-RHS).
  /// Solve with iterateMulti; the single-vector iterate overloads reject a
  /// block-bound solver.
  AztecOO(const RowMatrix& a, MultiVector& x, const MultiVector& b);

  /// Set one option (bounds-checked); returns *this for chaining.
  AztecOO& setOption(int index, int value);
  /// Set one double parameter.
  AztecOO& setParam(int index, double value);

  [[nodiscard]] int option(int index) const;
  [[nodiscard]] double param(int index) const;

  /// Run at most `maxIter` iterations to tolerance `tol` (these override
  /// AZ_max_iter / AZ_tol).  Returns 0 on convergence, 1 otherwise.
  /// Collective.
  int iterate(int maxIter, double tol);

  /// Run with the stored AZ_max_iter / AZ_tol.
  int iterate();

  /// Solve every lane of a block-bound problem (multi-RHS).  The
  /// preconditioner is built ONCE and reused across all lanes, and the
  /// per-lane convergence scales come from one fused allreduce
  /// (MultiVector::norms2) instead of numVectors separate ones.  Each
  /// lane's iteration is identical to a standalone iterate() on it.  The
  /// status array aggregates over the block: AZ_its/AZ_r/AZ_scaled_r are
  /// the lane maxima and AZ_why the worst lane outcome.  Returns 0 only if
  /// every lane converged.  Collective.
  int iterateMulti(int maxIter, double tol);

  [[nodiscard]] int numIters() const {
    return static_cast<int>(status_[AZ_its]);
  }
  [[nodiscard]] double trueResidual() const { return status_[AZ_r]; }
  [[nodiscard]] double scaledResidual() const { return status_[AZ_scaled_r]; }
  [[nodiscard]] int terminationReason() const {
    return static_cast<int>(status_[AZ_why]);
  }
  [[nodiscard]] const std::array<double, AZ_STATUS_SIZE>& status() const {
    return status_;
  }

 private:
  const RowMatrix* a_;
  Vector* x_ = nullptr;
  const Vector* b_ = nullptr;
  MultiVector* mx_ = nullptr;        ///< block bindings (multi-RHS ctor)
  const MultiVector* mb_ = nullptr;
  std::array<int, AZ_OPTIONS_SIZE> options_;
  std::array<double, AZ_PARAMS_SIZE> params_;
  std::array<double, AZ_STATUS_SIZE> status_{};
};

}  // namespace aztec
