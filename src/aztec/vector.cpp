#include "aztec/vector.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/dist_csr.hpp"

namespace aztec {

Vector::Vector(const Map& map)
    : map_(&map),
      values_(static_cast<std::size_t>(map.numMyElements()), 0.0) {}

Vector::Vector(const Map& map, std::span<const double> localValues)
    : map_(&map), values_(localValues.begin(), localValues.end()) {
  LISI_CHECK(static_cast<int>(values_.size()) == map.numMyElements(),
             "Vector: local values size does not match the map");
}

void Vector::putScalar(double value) {
  std::fill(values_.begin(), values_.end(), value);
}

void Vector::update(double alpha, const Vector& a, double beta) {
  LISI_CHECK(map_->sameAs(a.map()), "Vector::update: incompatible maps");
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] = alpha * a.values_[i] + beta * values_[i];
  }
}

void Vector::update(double alpha, const Vector& a, double beta,
                    const Vector& b, double gamma) {
  LISI_CHECK(map_->sameAs(a.map()) && map_->sameAs(b.map()),
             "Vector::update: incompatible maps");
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] = alpha * a.values_[i] + beta * b.values_[i] + gamma * values_[i];
  }
}

double Vector::dot(const Vector& other) const {
  LISI_CHECK(map_->sameAs(other.map()), "Vector::dot: incompatible maps");
  return lisi::sparse::distDot(map_->comm(), values_, other.values_);
}

double Vector::norm2() const {
  return lisi::sparse::distNorm2(map_->comm(), values_);
}

double Vector::normInf() const {
  return lisi::sparse::distNormInf(map_->comm(), values_);
}

void Vector::multiply(const Vector& a, const Vector& b) {
  LISI_CHECK(map_->sameAs(a.map()) && map_->sameAs(b.map()),
             "Vector::multiply: incompatible maps");
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] = a.values_[i] * b.values_[i];
  }
}

void Vector::reciprocal(const Vector& a) {
  LISI_CHECK(map_->sameAs(a.map()), "Vector::reciprocal: incompatible maps");
  for (std::size_t i = 0; i < values_.size(); ++i) {
    LISI_CHECK(a.values_[i] != 0.0, "Vector::reciprocal: zero entry");
    values_[i] = 1.0 / a.values_[i];
  }
}

}  // namespace aztec
