// Aztec MultiVector: a block of distributed vectors sharing one Map (the
// Epetra_MultiVector analogue).  Beyond holding the lanes, it fuses the
// block-level reductions — one allreduce computes the dot products or norms
// of every lane — which is what AztecOO::iterateMulti uses to amortize the
// per-solve collective cost when a batch of right-hand sides shares the
// operator.
#pragma once

#include <span>
#include <vector>

#include "aztec/vector.hpp"

namespace aztec {

/// A block of `numVectors` distributed vectors over one Map.
class MultiVector {
 public:
  /// Zero-initialized block on `map` (the map must outlive the block).
  MultiVector(const Map& map, int numVectors);

  /// Copy local values in, vector-major: lane k occupies
  /// [k*numMyElements, (k+1)*numMyElements) of `localValues`.
  MultiVector(const Map& map, std::span<const double> localValues,
              int numVectors);

  [[nodiscard]] const Map& map() const { return *map_; }
  [[nodiscard]] int numVectors() const {
    return static_cast<int>(lanes_.size());
  }
  [[nodiscard]] int myLength() const { return map_->numMyElements(); }

  /// Lane access (0 <= k < numVectors).
  [[nodiscard]] Vector& operator()(int k) {
    return lanes_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] const Vector& operator()(int k) const {
    return lanes_[static_cast<std::size_t>(k)];
  }

  /// Per-lane global dot products <this_k, other_k>, all lanes fused into
  /// ONE allreduce (out.size() must equal numVectors).  Collective.
  void dots(const MultiVector& other, std::span<double> out) const;

  /// Per-lane global 2-norms, fused into one allreduce.  Collective.
  void norms2(std::span<double> out) const;

  /// Copy every lane's local values out, vector-major (size must equal
  /// numVectors * myLength).
  void extract(std::span<double> localValues) const;

 private:
  const Map* map_;
  std::vector<Vector> lanes_;
};

}  // namespace aztec
