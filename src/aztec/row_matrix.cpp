#include "aztec/row_matrix.hpp"

namespace aztec {

void RowMatrix::extractDiagonal(Vector&) const {
  throw lisi::Error(
      "this RowMatrix does not expose a diagonal; override extractDiagonal()"
      " to enable diagonal-based preconditioners");
}

CrsMatrix::CrsMatrix(const Map& map, lisi::sparse::CsrMatrix localRows)
    : map_(&map),
      dist_(map.comm(), map.numGlobalElements(), map.numGlobalElements(),
            map.minMyGlobalIndex(), std::move(localRows)) {
  LISI_CHECK(dist_.localRows() == map.numMyElements(),
             "CrsMatrix: local row count does not match the map");
}

void CrsMatrix::replaceValues(const lisi::sparse::CsrMatrix& localRows) {
  dist_.updateValues(localRows);
}

void CrsMatrix::apply(const Vector& x, Vector& y) const {
  LISI_CHECK(map_->sameAs(x.map()) && map_->sameAs(y.map()),
             "CrsMatrix::apply: incompatible maps");
  dist_.spmv(x.localView(), y.localView());
}

void CrsMatrix::extractDiagonal(Vector& d) const {
  LISI_CHECK(map_->sameAs(d.map()),
             "CrsMatrix::extractDiagonal: incompatible maps");
  const auto diag = dist_.localDiagonal();
  std::copy(diag.begin(), diag.end(), d.localView().begin());
}

}  // namespace aztec
