#include "aztec/map.hpp"

namespace aztec {

Map::Map(int numGlobalElements, const lisi::comm::Comm& comm)
    : comm_(comm), numGlobal_(numGlobalElements) {
  LISI_CHECK(comm_.valid(), "Map: invalid communicator");
  LISI_CHECK(numGlobalElements >= 0, "Map: negative global size");
  const lisi::sparse::BlockRowPartition part(numGlobalElements, comm_.size());
  starts_ = part.boundaries();
}

Map::Map(int numGlobalElements, int numMyElements,
         const lisi::comm::Comm& comm)
    : comm_(comm), numGlobal_(numGlobalElements) {
  LISI_CHECK(comm_.valid(), "Map: invalid communicator");
  LISI_CHECK(numMyElements >= 0, "Map: negative local size");
  std::vector<int> counts =
      comm_.allgatherv(std::span<const int>(&numMyElements, 1), nullptr);
  starts_.resize(counts.size() + 1);
  starts_[0] = 0;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    starts_[r + 1] = starts_[r] + counts[r];
  }
  LISI_CHECK(starts_.back() == numGlobalElements,
             "Map: local element counts do not sum to the global size");
}

}  // namespace aztec
