#include "aztec/multi_vector.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/dist_csr.hpp"

namespace aztec {

MultiVector::MultiVector(const Map& map, int numVectors) : map_(&map) {
  LISI_CHECK(numVectors >= 1, "MultiVector: numVectors must be positive");
  lanes_.reserve(static_cast<std::size_t>(numVectors));
  for (int k = 0; k < numVectors; ++k) lanes_.emplace_back(map);
}

MultiVector::MultiVector(const Map& map, std::span<const double> localValues,
                         int numVectors)
    : map_(&map) {
  LISI_CHECK(numVectors >= 1, "MultiVector: numVectors must be positive");
  const auto n = static_cast<std::size_t>(map.numMyElements());
  LISI_CHECK(localValues.size() == n * static_cast<std::size_t>(numVectors),
             "MultiVector: local values size does not match map x numVectors");
  lanes_.reserve(static_cast<std::size_t>(numVectors));
  for (int k = 0; k < numVectors; ++k) {
    lanes_.emplace_back(
        map, localValues.subspan(static_cast<std::size_t>(k) * n, n));
  }
}

void MultiVector::dots(const MultiVector& other, std::span<double> out) const {
  LISI_CHECK(map_->sameAs(other.map()) &&
                 other.numVectors() == numVectors(),
             "MultiVector::dots: incompatible blocks");
  LISI_CHECK(out.size() == lanes_.size(),
             "MultiVector::dots: output size must equal numVectors");
  std::vector<lisi::sparse::DotArgs> dotArgs(lanes_.size());
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    dotArgs[k] = {lanes_[k].localView(), other.lanes_[k].localView()};
  }
  lisi::sparse::PendingDots pending = lisi::sparse::distDotsBegin(
      map_->comm(), std::span<const lisi::sparse::DotArgs>(dotArgs));
  const std::span<const double> res = lisi::sparse::distDotsEnd(pending);
  std::copy(res.begin(), res.end(), out.begin());
}

void MultiVector::norms2(std::span<double> out) const {
  dots(*this, out);
  // Each lane matches Vector::norm2 bitwise: same local sum, same
  // elementwise reduction schedule, sqrt applied after.
  for (double& v : out) v = std::sqrt(v);
}

void MultiVector::extract(std::span<double> localValues) const {
  const auto n = static_cast<std::size_t>(myLength());
  LISI_CHECK(localValues.size() == n * lanes_.size(),
             "MultiVector::extract: output size mismatch");
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    const std::span<const double> lane = lanes_[k].localView();
    std::copy(lane.begin(), lane.end(), localValues.begin() +
                                            static_cast<std::ptrdiff_t>(k * n));
  }
}

}  // namespace aztec
