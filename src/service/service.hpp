// Session-scoped solver service (the tentpole of the service layer).
//
// The paper's components bind a solver to one communicator for the life of
// the application.  This layer refactors that World-bound model into a
// *service*: the World is split once into a pool of fixed-size session
// sub-communicators, each running its own solver components, and clients
// submit independent solve requests to a shared admission-controlled queue.
// Session leaders pull requests, greedily batch requests against the same
// operator into one multi-RHS solve (the "multi_rhs=blocked" backend path),
// and resolve each request's future with its lane of the block solution.
//
// Concurrency model: SolverService owns one background thread running
// comm::World::run(sessions * ranksPerSession).  Each rank thread splits
// into its session sub-communicator, labels it for the message checker
// (Comm::setLabel) and the observability layer (obs::setThreadSession), and
// loops: the session leader pops a batch from the shared queue and
// broadcasts a work/shutdown token to its peers; all session ranks then
// execute the solve collectively.  Sessions never communicate with each
// other — per-Comm tag windows and collective-schedule pins keep their
// message streams and schedules independent.
//
// Admission control: the queue is bounded (ServiceConfig::queueDepth);
// submit() on a full queue is rejected immediately (returns nullopt)
// instead of blocking the client — the §5.2 "don't wedge the application
// inside the solver" rule applied to scheduling.  submit() before start()
// is allowed and makes rejection and batching deterministic to test: queue
// first, then let the sessions drain.
//
// Runtime knobs (read by configFromEnv, all overridable in code):
//   LISI_SERVICE_SESSIONS     number of session sub-communicators
//   LISI_SERVICE_RANKS        ranks per session
//   LISI_SERVICE_QUEUE_DEPTH  admission-control queue bound
//   LISI_SERVICE_BATCH_WINDOW max same-operator requests fused per solve
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>

#include "support/thread_annotations.hpp"
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sparse/formats.hpp"

namespace lisi::comm {
class Comm;
}

namespace lisi::service {

/// Pool shape and scheduling limits.  Defaults are small on purpose: the
/// service targets many small independent systems (the paper's multi-domain
/// scenario), not one large one.
struct ServiceConfig {
  int sessions = 2;         ///< session sub-communicators in the pool
  int ranksPerSession = 2;  ///< ranks per session
  int queueDepth = 16;      ///< submit() rejects beyond this many queued
  int batchWindow = 4;      ///< max lanes fused into one multi-RHS solve
};

/// ServiceConfig with each field overridden by its LISI_SERVICE_* knob
/// when set (invalid or non-positive values fall back to the default).
[[nodiscard]] ServiceConfig configFromEnv();

/// One solve: a shared global operator, this request's right-hand side,
/// and the backend/parameter selection.  Requests are batchable into one
/// blocked multi-RHS solve when operatorId, matrix, backend, and every
/// parameter list compare equal.
struct SolveRequest {
  /// Global square operator with global column indices.  shared_ptr so a
  /// client can enqueue many requests against one assembled matrix without
  /// copies; pointer identity doubles as part of the batch key.
  std::shared_ptr<const sparse::CsrMatrix> matrix;
  std::vector<double> rhs;      ///< global right-hand side (matrix->rows)
  /// "pksp" | "aztec" | "slu" | "hymg", or a dlopen-loaded backend's CCA
  /// class name ("plugin.<name>", see src/plugin).
  std::string backend = "pksp";
  std::uint64_t operatorId = 0; ///< client-chosen operator identity
  std::vector<std::pair<std::string, std::string>> stringParams;
  std::vector<std::pair<std::string, int>> intParams;
  std::vector<std::pair<std::string, double>> doubleParams;
};

/// Outcome delivered through the request's future.
struct SolveResult {
  bool ok = false;           ///< solve ran and the backend returned success
  std::string error;         ///< failure description when !ok
  std::vector<double> x;     ///< global solution (matrix->rows entries)
  int iterations = 0;        ///< batch aggregate (lane maximum)
  double residualNorm = 0.0; ///< batch aggregate (lane maximum)
  bool converged = false;
  int session = -1;          ///< session that served the request
  int batchLanes = 1;        ///< lanes fused into the carrying solve
  double queueSeconds = 0.0; ///< submit -> dequeue wait
  double solveSeconds = 0.0; ///< dequeue -> futures-resolved service time
};

/// The service.  Lifecycle: construct (accepts submissions immediately),
/// start() the session pool, stop() to drain and join.  The destructor
/// stops.  Thread-safe: submit() may be called from any thread.
class SolverService {
 public:
  explicit SolverService(ServiceConfig cfg = configFromEnv());
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueue a request.  Returns the result future, or nullopt when
  /// admission control rejects it (queue full, or the service is
  /// stopping).  A malformed request (no matrix, size mismatch, unknown
  /// backend) is *accepted* and resolves immediately with ok = false so
  /// the caller gets the diagnostic through the normal channel.
  [[nodiscard]] std::optional<std::future<SolveResult>> submit(
      SolveRequest req);

  /// Launch the session pool (idempotent).  Requests queued before start()
  /// are served as soon as the sessions come up.
  void start();

  /// Drain every queued request, shut the sessions down, join the pool
  /// thread.  Requests submitted after stop() begins are rejected.  If the
  /// pool was never started, queued requests resolve with ok = false.
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t queuedRequests() const;

  // Lifetime statistics (monotonic, readable at any time).  Relaxed loads:
  // pure counters — no reader infers the state of any other memory from
  // them, so ordering buys nothing (pairs with the relaxed fetch_adds).
  [[nodiscard]] long long accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long long rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Multi-RHS solves executed (each serves >= 1 requests).
  [[nodiscard]] long long batchesServed() const {
    return batches_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending;
  struct Batch;
  struct SessionWorker;

  void rankBody(comm::Comm& world);
  void serveBatch(const comm::Comm& sc, int session, SessionWorker& worker,
                  Batch& batch);
  [[nodiscard]] std::shared_ptr<Batch> popBatch();
  void failAllQueued(const std::string& reason);

  ServiceConfig cfg_;
  mutable support::AnnotatedMutex mutex_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Pending>> queue_ LISI_GUARDED_BY(mutex_);
  bool accepting_ LISI_GUARDED_BY(mutex_) = true;
  bool stopping_ LISI_GUARDED_BY(mutex_) = false;

  /// Leader -> peer batch handoff, one slot per session.
  support::AnnotatedMutex slotMutex_;
  std::vector<std::shared_ptr<Batch>> slots_ LISI_GUARDED_BY(slotMutex_);

  std::thread pool_;
  std::atomic<bool> running_{false};
  std::atomic<long long> accepted_{0};
  std::atomic<long long> rejected_{0};
  std::atomic<long long> batches_{0};
};

}  // namespace lisi::service
