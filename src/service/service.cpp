#include "service/service.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <map>

#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace lisi::service {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

int envInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || v <= 0 || v > 1 << 20) return fallback;
  return static_cast<int>(v);
}

/// Component class for a backend name; empty when unknown.  Besides the
/// four built-in short names, any "plugin.<name>" class the dlopen registry
/// (src/plugin) has registered is a valid backend — per-session backend
/// selection reaches plugins exactly like built-ins.
std::string backendClass(const std::string& backend) {
  if (backend == "pksp") return kPkspComponentClass;
  if (backend == "aztec") return kAztecComponentClass;
  if (backend == "slu") return kSluComponentClass;
  if (backend == "hymg") return kHymgComponentClass;
  if (backend.rfind("plugin.", 0) == 0 &&
      cca::Framework::isClassRegistered(backend)) {
    return backend;
  }
  return {};
}

/// Two requests may share one blocked multi-RHS solve: same operator (by
/// declared id AND by pointer), same backend, identical parameter lists,
/// compatible sizes.
bool batchable(const SolveRequest& a, const SolveRequest& b) {
  return a.operatorId == b.operatorId && a.matrix.get() == b.matrix.get() &&
         a.backend == b.backend && a.rhs.size() == b.rhs.size() &&
         a.stringParams == b.stringParams && a.intParams == b.intParams &&
         a.doubleParams == b.doubleParams;
}

/// This rank's block of the near-even block-row partition of n rows over
/// p ranks — the same partition mesh::assembleLocal uses.
struct RowRange {
  int start = 0;
  int count = 0;
};

RowRange rowRange(int n, int rank, int nranks) {
  const int base = n / nranks;
  const int rem = n % nranks;
  RowRange rr;
  rr.count = base + (rank < rem ? 1 : 0);
  rr.start = rank * base + std::min(rank, rem);
  return rr;
}

/// Copy rows [rr.start, rr.start + rr.count) of a global CSR operator into
/// a local block (column indices stay global, as setupMatrix expects).
sparse::CsrMatrix sliceRows(const sparse::CsrMatrix& g, RowRange rr) {
  sparse::CsrMatrix local;
  local.rows = rr.count;
  local.cols = g.cols;
  local.rowPtr.resize(static_cast<std::size_t>(rr.count) + 1);
  const int nzBegin = g.rowPtr[static_cast<std::size_t>(rr.start)];
  const int nzEnd = g.rowPtr[static_cast<std::size_t>(rr.start + rr.count)];
  for (int i = 0; i <= rr.count; ++i) {
    local.rowPtr[static_cast<std::size_t>(i)] =
        g.rowPtr[static_cast<std::size_t>(rr.start + i)] - nzBegin;
  }
  local.colIdx.assign(g.colIdx.begin() + nzBegin, g.colIdx.begin() + nzEnd);
  local.values.assign(g.values.begin() + nzBegin, g.values.begin() + nzEnd);
  return local;
}

}  // namespace

ServiceConfig configFromEnv() {
  ServiceConfig cfg;
  cfg.sessions = envInt("LISI_SERVICE_SESSIONS", cfg.sessions);
  cfg.ranksPerSession = envInt("LISI_SERVICE_RANKS", cfg.ranksPerSession);
  cfg.queueDepth = envInt("LISI_SERVICE_QUEUE_DEPTH", cfg.queueDepth);
  cfg.batchWindow = envInt("LISI_SERVICE_BATCH_WINDOW", cfg.batchWindow);
  return cfg;
}

/// One queued request: payload, its future's feeding end, submit time.
struct SolverService::Pending {
  SolveRequest req;
  std::promise<SolveResult> promise;
  Clock::time_point enqueued;
};

/// One unit of session work: the lanes of a blocked multi-RHS solve.
struct SolverService::Batch {
  std::vector<std::unique_ptr<Pending>> lanes;
  Clock::time_point dequeued;
};

/// Per-rank, per-session solver state.  Components are cached by backend
/// so consecutive batches against the same backend reuse the component
/// (and its operator-change detection: a repeated matrix degenerates to a
/// value-only or no-op setup).
struct SolverService::SessionWorker {
  cca::Framework fw;
  long handle = 0;
  std::map<std::string, std::shared_ptr<SparseSolver>> solvers;

  std::shared_ptr<SparseSolver> solver(const std::string& backend) {
    const auto it = solvers.find(backend);
    if (it != solvers.end()) return it->second;
    const std::string cls = backendClass(backend);
    if (cls.empty()) return nullptr;
    const std::string name = "svc_" + backend;
    fw.instantiate(name, cls);
    auto s = fw.getProvidesPortAs<SparseSolver>(name, kSparseSolverPortName);
    if (s->initialize(handle) != 0) return nullptr;
    solvers.emplace(backend, s);
    return s;
  }
};

SolverService::SolverService(ServiceConfig cfg) : cfg_(cfg) {
  LISI_CHECK(cfg_.sessions >= 1 && cfg_.ranksPerSession >= 1 &&
                 cfg_.queueDepth >= 1 && cfg_.batchWindow >= 1,
             "SolverService: every ServiceConfig field must be positive");
  registerSolverComponents();
  slots_.assign(static_cast<std::size_t>(cfg_.sessions), nullptr);
}

SolverService::~SolverService() { stop(); }

std::optional<std::future<SolveResult>> SolverService::submit(
    SolveRequest req) {
  // Structural validation happens here, on the client thread, so sessions
  // never see a request they cannot partition.
  std::string bad;
  if (req.matrix == nullptr) {
    bad = "request has no matrix";
  } else if (req.matrix->rows != req.matrix->cols) {
    bad = "matrix is not square";
  } else if (req.rhs.size() != static_cast<std::size_t>(req.matrix->rows)) {
    bad = "rhs length does not match matrix rows";
  } else if (backendClass(req.backend).empty()) {
    bad = "unknown backend \"" + req.backend + "\"";
  } else if (req.matrix->rows < cfg_.ranksPerSession) {
    bad = "matrix has fewer rows than ranks per session";
  }

  auto pending = std::make_unique<Pending>();
  pending->req = std::move(req);
  pending->enqueued = Clock::now();
  std::future<SolveResult> future = pending->promise.get_future();

  if (!bad.empty()) {
    // Malformed requests are "accepted" and resolve immediately: the
    // diagnostic arrives through the same channel as a backend failure.
    SolveResult res;
    res.error = std::move(bad);
    pending->promise.set_value(std::move(res));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return future;
  }

  {
    support::MutexLock lock(mutex_);
    if (!accepting_ ||
        queue_.size() >= static_cast<std::size_t>(cfg_.queueDepth)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;  // admission control: reject, never block
    }
    queue_.push_back(std::move(pending));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return future;
}

void SolverService::start() {
  support::MutexLock lock(mutex_);
  if (running_.load() || stopping_) return;
  running_.store(true);
  const int nranks = cfg_.sessions * cfg_.ranksPerSession;
  pool_ = std::thread([this, nranks] {
    comm::World::run(nranks, [this](comm::Comm& world) { rankBody(world); });
  });
}

void SolverService::stop() {
  {
    support::MutexLock lock(mutex_);
    if (stopping_ && !pool_.joinable()) return;
    accepting_ = false;
    stopping_ = true;
  }
  cv_.notify_all();
  if (pool_.joinable()) pool_.join();
  running_.store(false);
  // Leaders drain the queue before shutting down, so anything left here
  // means the pool never started.
  failAllQueued("service stopped before serving this request");
}

bool SolverService::running() const { return running_.load(); }

std::size_t SolverService::queuedRequests() const {
  support::MutexLock lock(mutex_);
  return queue_.size();
}

void SolverService::failAllQueued(const std::string& reason) {
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    support::MutexLock lock(mutex_);
    orphans.swap(queue_);
  }
  for (auto& p : orphans) {
    SolveResult res;
    res.error = reason;
    p->promise.set_value(std::move(res));
  }
}

std::shared_ptr<SolverService::Batch> SolverService::popBatch() {
  support::CondLock lock(mutex_);
  // Manual wait loop rather than the predicate overload: the analysis
  // cannot see the capability inside a predicate lambda, and the loop body
  // reads guarded state directly under the held lock.
  while (!stopping_ && queue_.empty()) cv_.wait(lock.native());
  if (queue_.empty()) return nullptr;  // stopping and fully drained

  auto batch = std::make_shared<Batch>();
  batch->dequeued = Clock::now();
  batch->lanes.push_back(std::move(queue_.front()));
  queue_.pop_front();
  // Greedy same-operator batching: pull every still-queued request that
  // can share this solve, up to the batch window, preserving the relative
  // order of everything left behind.
  const SolveRequest& key = batch->lanes.front()->req;
  for (auto it = queue_.begin();
       it != queue_.end() &&
       batch->lanes.size() < static_cast<std::size_t>(cfg_.batchWindow);) {
    if (batchable(key, (*it)->req)) {
      batch->lanes.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

/// Everything the session does for one batch once all its ranks hold the
/// Batch pointer.  Collective over `sc`; the leader (session rank 0)
/// resolves the futures.
void SolverService::serveBatch(const comm::Comm& sc, int session,
                               SessionWorker& worker, Batch& batch) {
  const int nv = static_cast<int>(batch.lanes.size());
  obs::Span span("service.batch", static_cast<std::uint64_t>(nv));
  const SolveRequest& req0 = batch.lanes.front()->req;
  const int n = req0.matrix->rows;
  const RowRange rr = rowRange(n, sc.rank(), sc.size());
  const auto m = static_cast<std::size_t>(rr.count);

  int rc = 0;
  std::shared_ptr<SparseSolver> solver = worker.solver(req0.backend);
  if (solver == nullptr) rc = 1;

  if (rc == 0) {
    const sparse::CsrMatrix local = sliceRows(*req0.matrix, rr);
    rc = solver->setStartRow(rr.start);
    if (rc == 0) rc = solver->setLocalRows(rr.count);
    if (rc == 0) rc = solver->setGlobalCols(n);
    // The batched path is the point of the service; a request may still
    // override multi_rhs (e.g. "sequential" for A/B runs) via its params.
    if (rc == 0) rc = solver->set("multi_rhs", "blocked");
    for (const auto& [k, v] : req0.stringParams) {
      if (rc == 0) rc = solver->set(k, v);
    }
    for (const auto& [k, v] : req0.intParams) {
      if (rc == 0) rc = solver->setInt(k, v);
    }
    for (const auto& [k, v] : req0.doubleParams) {
      if (rc == 0) rc = solver->setDouble(k, v);
    }
    if (rc == 0) {
      rc = solver->setupMatrix(
          RArray<const double>(local.values.data(), local.nnz()),
          RArray<const int>(local.rowPtr.data(), local.rows + 1),
          RArray<const int>(local.colIdx.data(), local.nnz()),
          SparseStruct::kCsr, local.rows + 1, local.nnz());
    }
    if (rc == 0) {
      std::vector<double> b(m * static_cast<std::size_t>(nv));
      for (int k = 0; k < nv; ++k) {
        const auto& rhs = batch.lanes[static_cast<std::size_t>(k)]->req.rhs;
        std::copy(rhs.begin() + rr.start, rhs.begin() + rr.start + rr.count,
                  b.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(k) * m));
      }
      rc = solver->setupRHS(
          RArray<const double>(b.data(), static_cast<int>(b.size())),
          rr.count, nv);
    }
  }
  // Agree on the outcome so every rank takes the same collective path even
  // if only one rank's setup failed.
  rc = sc.allreduceValue(rc, comm::ReduceOp::kMax);

  std::vector<double> x(m * static_cast<std::size_t>(nv), 0.0);
  std::array<double, kStatusLength> st{};
  if (rc == 0) {
    const int solveRc =
        solver->solve(RArray<double>(x.data(), static_cast<int>(x.size())),
                      RArray<double>(st.data(), kStatusLength), rr.count,
                      kStatusLength);
    rc = sc.allreduceValue(solveRc, comm::ReduceOp::kMax);
  }

  std::vector<std::vector<double>> gathered;
  if (rc == 0) {
    gathered.reserve(static_cast<std::size_t>(nv));
    for (int k = 0; k < nv; ++k) {
      gathered.push_back(sc.gatherv(
          std::span<const double>(x.data() + static_cast<std::size_t>(k) * m,
                                  m),
          0));
    }
  }

  if (sc.rank() != 0) return;
  batches_.fetch_add(1, std::memory_order_relaxed);
  obs::count("service.batches");
  obs::count("service.lanes", nv);
  const Clock::time_point done = Clock::now();
  for (int k = 0; k < nv; ++k) {
    Pending& lane = *batch.lanes[static_cast<std::size_t>(k)];
    SolveResult res;
    res.session = session;
    res.batchLanes = nv;
    res.queueSeconds = secondsSince(lane.enqueued, batch.dequeued);
    res.solveSeconds = secondsSince(batch.dequeued, done);
    if (rc == 0) {
      res.ok = true;
      res.x = std::move(gathered[static_cast<std::size_t>(k)]);
      res.iterations = static_cast<int>(st[kStatusIterations]);
      res.residualNorm = st[kStatusResidualNorm];
      res.converged = st[kStatusConverged] != 0.0;
    } else {
      res.error = "backend \"" + req0.backend + "\" failed (rc=" +
                  std::to_string(rc) + ")";
    }
    lane.promise.set_value(std::move(res));
  }
}

void SolverService::rankBody(comm::Comm& world) {
  const int session = world.rank() / cfg_.ranksPerSession;
  comm::Comm sc = world.split(session, world.rank() % cfg_.ranksPerSession);
  sc.setLabel("service.session" + std::to_string(session));
  obs::setThreadSession(session);

  SessionWorker worker;
  worker.handle = comm::registerHandle(sc);
  for (;;) {
    std::shared_ptr<Batch> batch;
    int token = 0;
    if (sc.rank() == 0) {
      batch = popBatch();
      {
        support::MutexLock lock(slotMutex_);
        slots_[static_cast<std::size_t>(session)] = batch;
      }
      // lisi-lint: allow(rank-branch) both arms issue the same bcastValue; signatures match and LISI_COMM_CHECK verifies it at runtime
      token = sc.bcastValue(batch ? 1 : 0, 0);
    } else {
      // lisi-lint: allow(rank-branch) leader/peer arms of one lockstep bcast (see above)
      token = sc.bcastValue(0, 0);
      support::MutexLock lock(slotMutex_);
      batch = slots_[static_cast<std::size_t>(session)];
    }
    if (token == 0 || batch == nullptr) break;  // shutdown token
    try {
      serveBatch(sc, session, worker, *batch);
    } catch (const std::exception& e) {
      // A thrown batch is fatal for its lanes but not for the session.
      // (Exceptions out of a *collective* would desynchronize the session;
      // the backends return codes instead of throwing on those paths.)
      if (sc.rank() == 0) {
        for (auto& lane : batch->lanes) {
          SolveResult res;
          res.session = session;
          res.error = std::string("batch threw: ") + e.what();
          try {
            lane->promise.set_value(std::move(res));
          } catch (const std::future_error&) {
            // already resolved before the throw
          }
        }
      }
    }
  }
  comm::releaseHandle(worker.handle);
  obs::setThreadSession(-1);
}

}  // namespace lisi::service
