#include "tune/tune.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>

#include "support/thread_annotations.hpp"
#include <vector>

#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace lisi::tune {

namespace {

// Counters count per calling rank-thread (MiniMPI ranks are threads of one
// process): a world of p ranks bumps each by p per event.  Tests assert
// exact deltas with that multiplicity.
struct AtomicStats {
  std::atomic<long long> cacheHits{0};
  std::atomic<long long> cacheMisses{0};
  std::atomic<long long> retunes{0};
  std::atomic<long long> probeMeasurements{0};
  std::atomic<long long> budgetSkips{0};
  std::atomic<long long> autoSkips{0};
};
AtomicStats g_stats;

support::AnnotatedMutex g_cacheMutex;
/// Process-wide decision cache behind g_cacheMutex.  The REQUIRES contract
/// (not a lazy lock inside) keeps the lookup+insert sequences in decide()
/// atomic under one hold of the mutex.
std::map<OperatorKey, Decision>& cache() LISI_REQUIRES(g_cacheMutex) {
  static std::map<OperatorKey, Decision> c;
  return c;
}

// Probe shape: best-of-kProbeReps per rank (min filters scheduler noise on
// oversubscribed hosts), then a max-reduction picks the slowest rank — the
// one that gates the solve.
constexpr int kProbeReps = 3;
// Schedule probe: kScheduleBlocks blocks of kScheduleReps allreduces per
// family, best block kept — the same min-filters-noise discipline as the
// spmv probe, which matters doubly for collectives on oversubscribed hosts.
constexpr int kScheduleReps = 8;
constexpr int kScheduleBlocks = 4;
// A challenger must beat the default configuration by this margin before
// the tuner deviates from it.  Probes are short; without a deadband a few
// percent of scheduler noise could pin a genuinely slower configuration,
// and the default must stay the safe answer ("tuned never worse").
constexpr double kMinGain = 0.05;

std::vector<double> probeVector(int n) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = 1.0 + 0.0625 * static_cast<double>(i % 13);
  }
  return x;
}

/// Time one configuration: warm once, then best-of-reps, slowest rank.
double timeSpmvConfig(const TuneInput& in, std::span<const double> x,
                      std::span<double> y) {
  in.matrix->spmv(x, y);  // warm the aux storage and caches
  in.comm.barrier();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kProbeReps; ++rep) {
    WallTimer timer;
    in.matrix->spmv(x, y);
    best = std::min(best, timer.seconds());
  }
  g_stats.probeMeasurements.fetch_add(kProbeReps, std::memory_order_relaxed);
  obs::count("tune.probe_measurements", kProbeReps);
  return in.comm.allreduceValue(best, comm::ReduceOp::kMax);
}

/// Measure the candidate kernels and pick the winner (ties keep the earlier
/// candidate, and the default config is listed first, so "no change" wins
/// unless a challenger is strictly faster).
sparse::SpmvConfig probeSpmv(const TuneInput& in) {
  using sparse::LocalKernel;
  std::vector<sparse::SpmvConfig> candidates = {
      {LocalKernel::kCsr, /*overlapHalo=*/true, 0},
      {LocalKernel::kCsr, /*overlapHalo=*/false, 0},
      {LocalKernel::kCsrPrefetch, /*overlapHalo=*/true, 0},
      {LocalKernel::kSellC, /*overlapHalo=*/true, 0},
  };
  for (const int bs : {4, 2}) {
    // All ranks must run the block kernel or none: a per-rank fallback
    // would make the cached decision ambiguous.
    const int eligLocal = in.matrix->blockKernelEligible(bs) ? 1 : 0;
    if (in.comm.allreduceValue(eligLocal, comm::ReduceOp::kMin) == 1) {
      candidates.push_back({LocalKernel::kBlock, /*overlapHalo=*/false, bs});
      break;
    }
  }

  const std::vector<double> x = probeVector(in.matrix->localCols());
  std::vector<double> y(static_cast<std::size_t>(in.matrix->localRows()));
  // The default is measured first and challengers must clear the kMinGain
  // deadband against it; among those that do, the fastest wins.
  sparse::SpmvConfig winner = candidates.front();
  double defaultTime = std::numeric_limits<double>::infinity();
  double winnerTime = std::numeric_limits<double>::infinity();
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    const sparse::SpmvConfig& cand = candidates[ci];
    const sparse::SpmvConfig applied = in.matrix->setSpmvConfig(cand);
    if (!(applied == cand)) continue;  // local fallback: skip, do not time
    const double t = timeSpmvConfig(in, x, y);
    if (ci == 0) {
      defaultTime = t;
      winnerTime = t;
    } else if (t < defaultTime * (1.0 - kMinGain) && t < winnerTime) {
      winnerTime = t;
      winner = cand;
    }
  }
  in.matrix->setSpmvConfig(winner);
  return winner;
}

/// Measure the collective schedule families on the solve's dot/allreduce
/// pattern and pin the winner for this communicator context.
comm::CollectiveSchedule probeSchedule(const TuneInput& in) {
  if (in.comm.size() == 1) return comm::CollectiveSchedule::kAuto;
  obs::Span span("tune.probe.schedule");
  // The family kAuto would resolve to is the default and is measured first;
  // the other family must clear the kMinGain deadband to displace it.
  const bool defTree = comm::detail::useTreeSchedule(in.comm.size());
  const comm::CollectiveSchedule families[] = {
      defTree ? comm::CollectiveSchedule::kTree
              : comm::CollectiveSchedule::kStar,
      defTree ? comm::CollectiveSchedule::kStar
              : comm::CollectiveSchedule::kTree};
  comm::CollectiveSchedule winner = families[0];
  double defaultTime = std::numeric_limits<double>::infinity();
  double winnerTime = std::numeric_limits<double>::infinity();
  for (int fi = 0; fi < 2; ++fi) {
    in.comm.pinCollectiveSchedule(families[fi]);  // barriers internally
    (void)in.comm.allreduceValue(1.0, comm::ReduceOp::kSum);  // warm
    double local = std::numeric_limits<double>::infinity();
    for (int block = 0; block < kScheduleBlocks; ++block) {
      WallTimer timer;
      for (int rep = 0; rep < kScheduleReps; ++rep) {
        (void)in.comm.allreduceValue(1.0, comm::ReduceOp::kSum);
      }
      local = std::min(local, timer.seconds());
    }
    g_stats.probeMeasurements.fetch_add(kScheduleReps * kScheduleBlocks,
                                        std::memory_order_relaxed);
    obs::count("tune.probe_measurements", kScheduleReps * kScheduleBlocks);
    const double t = in.comm.allreduceValue(local, comm::ReduceOp::kMax);
    if (fi == 0) {
      defaultTime = t;
      winnerTime = t;
    } else if (t < defaultTime * (1.0 - kMinGain) && t < winnerTime) {
      winnerTime = t;
      winner = families[fi];
    }
  }
  in.comm.pinCollectiveSchedule(winner);
  return winner;
}

/// Apply a cached decision: kernel config locally, schedule pin only if it
/// differs from the current pin (the pin is shared world state, so every
/// rank reads the same value and takes the same branch).
void applyDecision(const TuneInput& in, const Decision& d) {
  (void)in.matrix->setSpmvConfig(d.spmv);
  if (d.schedule != comm::CollectiveSchedule::kAuto &&
      in.comm.pinnedCollectiveSchedule() != d.schedule) {
    in.comm.pinCollectiveSchedule(d.schedule);
  }
}

}  // namespace

Mode modeFromString(const std::string& s, Mode fallback) {
  std::string t;
  for (const char c : s) {
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (t == "off") return Mode::kOff;
  if (t == "on") return Mode::kOn;
  if (t == "auto") return Mode::kAuto;
  return fallback;
}

Mode modeFromEnv() {
  // Read fresh each call (no static cache): the verify suite flips LISI_TUNE
  // between in-process worlds.
  if (const char* env = std::getenv("LISI_TUNE")) {
    return modeFromString(env, Mode::kAuto);
  }
  return Mode::kAuto;
}

const char* modeName(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kOn: return "on";
    case Mode::kAuto: return "auto";
  }
  return "?";
}

Stats stats() {
  Stats s;
  s.cacheHits = g_stats.cacheHits.load(std::memory_order_relaxed);
  s.cacheMisses = g_stats.cacheMisses.load(std::memory_order_relaxed);
  s.retunes = g_stats.retunes.load(std::memory_order_relaxed);
  s.probeMeasurements =
      g_stats.probeMeasurements.load(std::memory_order_relaxed);
  s.budgetSkips = g_stats.budgetSkips.load(std::memory_order_relaxed);
  s.autoSkips = g_stats.autoSkips.load(std::memory_order_relaxed);
  return s;
}

void resetStatsForTest() {
  g_stats.cacheHits.store(0);
  g_stats.cacheMisses.store(0);
  g_stats.retunes.store(0);
  g_stats.probeMeasurements.store(0);
  g_stats.budgetSkips.store(0);
  g_stats.autoSkips.store(0);
}

void clearCacheForTest() {
  support::MutexLock lock(g_cacheMutex);
  cache().clear();
}

void noteReplayHit() {
  g_stats.cacheHits.fetch_add(1, std::memory_order_relaxed);
  obs::count("tune.cache_hit");
}

Decision tuneOperator(const TuneInput& in) {
  LISI_CHECK(in.matrix != nullptr, "tuneOperator: no matrix");
  LISI_CHECK(in.mode != Mode::kOff, "tuneOperator: called with tuning off");

  if (in.mode == Mode::kAuto && in.globalNnz < kAutoMinGlobalNnz) {
    // Too small for the decision to matter: the probe itself would cost
    // more than it could ever recoup.  Leave the default config in place.
    g_stats.autoSkips.fetch_add(1, std::memory_order_relaxed);
    obs::count("tune.auto_skip");
    return Decision{};
  }

  // Cache lookup under collective agreement.  Program order makes every
  // rank-thread see the same cache state here, but the min-reduction also
  // *verifies* it: a divergent hit/miss would otherwise desynchronize the
  // collective probing below.
  Decision cached;
  int hitLocal = 0;
  {
    support::MutexLock lock(g_cacheMutex);
    const auto it = cache().find(in.key);
    if (it != cache().end()) {
      hitLocal = 1;
      cached = it->second;
    }
  }
  const int hit = in.comm.allreduceValue(hitLocal, comm::ReduceOp::kMin);
  if (hit == 1) {
    applyDecision(in, cached);
    g_stats.cacheHits.fetch_add(1, std::memory_order_relaxed);
    obs::count("tune.cache_hit");
    return cached;
  }
  g_stats.cacheMisses.fetch_add(1, std::memory_order_relaxed);
  obs::count("tune.cache_miss");

  if (in.structureChanged && in.retunesSoFar >= in.retuneBudget) {
    // Budget exhausted: keep the component responsive by running the new
    // structure on the default config instead of stalling the time loop on
    // yet another probe.  Not cached — the structure was never measured.
    g_stats.budgetSkips.fetch_add(1, std::memory_order_relaxed);
    obs::count("tune.budget_skip");
    Decision d;
    applyDecision(in, d);
    return d;
  }
  if (in.structureChanged) {
    g_stats.retunes.fetch_add(1, std::memory_order_relaxed);
    obs::count("tune.retune");
  }

  obs::Span span("tune.probe", static_cast<std::uint64_t>(in.globalNnz));
  Decision d;
  d.spmv = probeSpmv(in);
  d.schedule = probeSchedule(in);
  d.probed = true;
  {
    support::MutexLock lock(g_cacheMutex);
    cache().emplace(in.key, d);
  }
  return d;
}

}  // namespace lisi::tune
