// lisi::tune — structure-fingerprint-keyed autotuner.
//
// On the first solve for a structural fingerprint the tuner micro-benchmarks
// the candidate SpMV configurations (local kernel: CSR / prefetch-CSR /
// SELL-C-σ / uniform-block VBR; halo exchange: overlapped vs eager) and the
// collective schedule family (kTree vs kStar, pinned per-World through
// Comm::pinCollectiveSchedule), then records the winner in a process-wide
// cache keyed by the *global* operator structure.  Every later solve that
// presents the same fingerprint — kSameOperator or kSameStructure under the
// operator change contract — replays the cached decision with zero probe
// measurements; kNewStructure invalidates and retunes, bounded per solver
// component by a retune budget so time-stepping loops with evolving meshes
// cannot stall on endless probing.
//
// The cache is process-wide on purpose: MiniMPI ranks are threads of one
// process and every rank executes tuneOperator() at the same point of its
// program, so hit/miss outcomes agree by program order.  The key includes a
// sum-reduction of the per-rank fingerprints, making it a property of the
// distributed operator, not of one rank's block.
#pragma once

#include <cstdint>
#include <string>

#include "comm/comm.hpp"
#include "sparse/dist_csr.hpp"

namespace lisi::tune {

/// Tuning policy.  kOff: never probe, never touch configs (pre-tuner
/// behavior).  kOn: probe every structure regardless of size.  kAuto:
/// probe only operators big enough for the decision to matter (small ones
/// keep the default config; the probe would cost more than it ever saves).
enum class Mode { kOff, kOn, kAuto };

/// Parse "off"/"on"/"auto" (case-insensitive); anything else -> fallback.
[[nodiscard]] Mode modeFromString(const std::string& s, Mode fallback);

/// Policy from the LISI_TUNE environment variable (default kAuto).
[[nodiscard]] Mode modeFromEnv();

[[nodiscard]] const char* modeName(Mode m);

/// Global operator identity: the kSum-allreduce of the per-rank structural
/// fingerprints (PR 3's FNV-1a structureHash) plus the communicator size,
/// plus the precision mode the solve runs under (prec::Mode as int): a
/// decision probed under float64 kernels must not be replayed for a
/// mixed-precision solve whose bandwidth profile differs, and vice versa.
struct OperatorKey {
  std::uint64_t fingerprint = 0;
  int ranks = 0;
  int precision = 0;
  friend bool operator==(const OperatorKey&, const OperatorKey&) = default;
  friend bool operator<(const OperatorKey& a, const OperatorKey& b) {
    if (a.fingerprint != b.fingerprint) return a.fingerprint < b.fingerprint;
    if (a.ranks != b.ranks) return a.ranks < b.ranks;
    return a.precision < b.precision;
  }
};

/// A complete tuning decision.
struct Decision {
  sparse::SpmvConfig spmv;
  comm::CollectiveSchedule schedule = comm::CollectiveSchedule::kAuto;
  bool probed = false;  ///< measured now (false: cache replay or fallback)
};

/// Process-wide tuner counters.  Always maintained (unlike obs counters,
/// which compile out when LISI_OBS=OFF) so tests can assert exact values in
/// every build flavor.  Mirrored into obs as tune.cache_hit / tune.cache_miss
/// / tune.retune / tune.probe_measurements when obs is enabled.
struct Stats {
  long long cacheHits = 0;          ///< decision replayed from the cache
  long long cacheMisses = 0;        ///< fingerprint not in the cache
  long long retunes = 0;            ///< probe triggered by kNewStructure
  long long probeMeasurements = 0;  ///< individual timed probe repetitions
  long long budgetSkips = 0;        ///< retune suppressed by the budget
  long long autoSkips = 0;          ///< kAuto left a small operator untuned
};
[[nodiscard]] Stats stats();

/// Test hooks: zero the counters / drop every cached decision.
void resetStatsForTest();
void clearCacheForTest();

/// Everything tuneOperator needs.  `matrix` must be the assembled distributed
/// operator (probes run real spmv calls on it); `key` the collectively agreed
/// OperatorKey; `structureChanged` true when this component had already tuned
/// an earlier structure (the kNewStructure path, charged against the budget).
struct TuneInput {
  comm::Comm comm;
  sparse::DistCsrMatrix* matrix = nullptr;
  OperatorKey key;
  long long globalNnz = 0;
  Mode mode = Mode::kAuto;
  bool structureChanged = false;
  int retunesSoFar = 0;
  int retuneBudget = 4;
};

/// kAuto probes only operators with at least this many global nonzeros.
inline constexpr long long kAutoMinGlobalNnz = 1 << 15;

/// Look up or measure the decision for `in.key` and apply it to the matrix
/// (and, for the schedule, to the communicator's context pin).  Collective:
/// every rank of in.comm must call together with the same key.  Never
/// probes on a cache hit; honors mode and the retune budget as documented
/// on Mode/TuneInput.
Decision tuneOperator(const TuneInput& in);

/// Record a replay on the solver fast path (structure epoch unchanged, no
/// cache lookup or communication needed).  Purely local.
void noteReplayHit();

}  // namespace lisi::tune
