// Serial sparse kernels: matrix-vector products for every storage format,
// transposes, diagonal extraction, and vector/matrix norms.  These are the
// reference kernels the solver packages and the test suite build on.
#pragma once

#include <span>

#include "sparse/formats.hpp"

namespace lisi::sparse {

/// y = A*x for CSR.  The kernel formats are templated on the stored scalar
/// (formats.hpp); each kernel ships a double and a float overload backed by
/// one shared template, so the mixed-precision paths reuse the exact same
/// loop structure.  Float kernels accumulate in float (they sit inside
/// float64 refinement loops); the vector reductions below accumulate in
/// double for both scalars because they feed convergence decisions.
void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> y);
void spmv(const CsrMatrixF& a, std::span<const float> x, std::span<float> y);

/// y = A'*x for CSR (i.e. multiply by the transpose without forming it).
void spmvTranspose(const CsrMatrix& a, std::span<const double> x,
                   std::span<double> y);

/// y = A*x for CSC.
void spmv(const CscMatrix& a, std::span<const double> x, std::span<double> y);

/// y = A*x for COO (duplicates accumulate).
void spmv(const CooMatrix& a, std::span<const double> x, std::span<double> y);

/// y = A*x for MSR.
void spmv(const MsrMatrix& a, std::span<const double> x, std::span<double> y);

/// y = A*x for VBR.
void spmv(const VbrMatrix& a, std::span<const double> x, std::span<double> y);
void spmv(const VbrMatrixF& a, std::span<const float> x, std::span<float> y);

/// y = A*x for SELL-C-σ.  Each lane accumulates its entries in stored (CSR)
/// order, so the result is bitwise-identical to spmv on the source CSR.
/// Rows without a lane (subset builds) are left untouched in y.
void spmv(const SellCMatrix& a, std::span<const double> x,
          std::span<double> y);
void spmv(const SellCMatrixF& a, std::span<const float> x,
          std::span<float> y);

/// Explicit transpose of a CSR matrix (canonical output).
[[nodiscard]] CsrMatrix transpose(const CsrMatrix& a);

/// Extract the main diagonal (missing entries are 0).
[[nodiscard]] std::vector<double> diagonal(const CsrMatrix& a);

/// Dense row-major expansion (small matrices / tests only).
[[nodiscard]] std::vector<double> toDense(const CsrMatrix& a);

/// Frobenius norm of A.
[[nodiscard]] double frobeniusNorm(const CsrMatrix& a);

/// Infinity norm of A (max absolute row sum).
[[nodiscard]] double infNorm(const CsrMatrix& a);

/// Max |a_ij - b_ij| over the union pattern (canonicalizes internally).
[[nodiscard]] double maxAbsDiff(const CsrMatrix& a, const CsrMatrix& b);

/// Euclidean norm of a vector (float input accumulates in double).
[[nodiscard]] double norm2(std::span<const double> x);
[[nodiscard]] double norm2(std::span<const float> x);

/// Dot product (float input accumulates in double).
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);
[[nodiscard]] double dot(std::span<const float> x, std::span<const float> y);

/// y += alpha*x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// ||b - A*x||_2 (serial reference residual).
[[nodiscard]] double residualNorm(const CsrMatrix& a, std::span<const double> x,
                                  std::span<const double> b);

}  // namespace lisi::sparse
