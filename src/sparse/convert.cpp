#include "sparse/convert.hpp"

#include <algorithm>
#include <cmath>

namespace lisi::sparse {

CsrMatrix cooToCsr(const CooMatrix& coo) {
  coo.check();
  CsrMatrix csr;
  csr.rows = coo.rows;
  csr.cols = coo.cols;
  csr.rowPtr.assign(static_cast<std::size_t>(coo.rows) + 1, 0);
  for (int r : coo.rowIdx) ++csr.rowPtr[static_cast<std::size_t>(r) + 1];
  for (int i = 0; i < coo.rows; ++i) {
    csr.rowPtr[static_cast<std::size_t>(i) + 1] +=
        csr.rowPtr[static_cast<std::size_t>(i)];
  }
  csr.colIdx.resize(coo.values.size());
  csr.values.resize(coo.values.size());
  std::vector<int> next(csr.rowPtr.begin(), csr.rowPtr.end() - 1);
  for (std::size_t k = 0; k < coo.values.size(); ++k) {
    const int slot = next[static_cast<std::size_t>(coo.rowIdx[k])]++;
    csr.colIdx[static_cast<std::size_t>(slot)] = coo.colIdx[k];
    csr.values[static_cast<std::size_t>(slot)] = coo.values[k];
  }
  csr.canonicalize();
  return csr;
}

CooMatrix csrToCoo(const CsrMatrix& csr) {
  csr.check();
  CooMatrix coo;
  coo.rows = csr.rows;
  coo.cols = csr.cols;
  coo.rowIdx.reserve(csr.values.size());
  coo.colIdx = csr.colIdx;
  coo.values = csr.values;
  for (int i = 0; i < csr.rows; ++i) {
    for (int k = csr.rowPtr[static_cast<std::size_t>(i)];
         k < csr.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      coo.rowIdx.push_back(i);
    }
  }
  return coo;
}

CscMatrix csrToCsc(const CsrMatrix& csr) {
  csr.check();
  CscMatrix csc;
  csc.rows = csr.rows;
  csc.cols = csr.cols;
  csc.colPtr.assign(static_cast<std::size_t>(csr.cols) + 1, 0);
  for (int c : csr.colIdx) ++csc.colPtr[static_cast<std::size_t>(c) + 1];
  for (int j = 0; j < csr.cols; ++j) {
    csc.colPtr[static_cast<std::size_t>(j) + 1] +=
        csc.colPtr[static_cast<std::size_t>(j)];
  }
  csc.rowIdx.resize(csr.values.size());
  csc.values.resize(csr.values.size());
  std::vector<int> next(csc.colPtr.begin(), csc.colPtr.end() - 1);
  for (int i = 0; i < csr.rows; ++i) {
    for (int k = csr.rowPtr[static_cast<std::size_t>(i)];
         k < csr.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = csr.colIdx[static_cast<std::size_t>(k)];
      const int slot = next[static_cast<std::size_t>(j)]++;
      csc.rowIdx[static_cast<std::size_t>(slot)] = i;
      csc.values[static_cast<std::size_t>(slot)] =
          csr.values[static_cast<std::size_t>(k)];
    }
  }
  return csc;
}

CsrMatrix cscToCsr(const CscMatrix& csc) {
  csc.check();
  CsrMatrix csr;
  csr.rows = csc.rows;
  csr.cols = csc.cols;
  csr.rowPtr.assign(static_cast<std::size_t>(csc.rows) + 1, 0);
  for (int r : csc.rowIdx) ++csr.rowPtr[static_cast<std::size_t>(r) + 1];
  for (int i = 0; i < csc.rows; ++i) {
    csr.rowPtr[static_cast<std::size_t>(i) + 1] +=
        csr.rowPtr[static_cast<std::size_t>(i)];
  }
  csr.colIdx.resize(csc.values.size());
  csr.values.resize(csc.values.size());
  std::vector<int> next(csr.rowPtr.begin(), csr.rowPtr.end() - 1);
  for (int j = 0; j < csc.cols; ++j) {
    for (int k = csc.colPtr[static_cast<std::size_t>(j)];
         k < csc.colPtr[static_cast<std::size_t>(j) + 1]; ++k) {
      const int i = csc.rowIdx[static_cast<std::size_t>(k)];
      const int slot = next[static_cast<std::size_t>(i)]++;
      csr.colIdx[static_cast<std::size_t>(slot)] = j;
      csr.values[static_cast<std::size_t>(slot)] =
          csc.values[static_cast<std::size_t>(k)];
    }
  }
  // Traversal by increasing column already yields sorted rows; duplicates in
  // a valid CSC would still need merging, so canonicalize defensively.
  csr.canonicalize();
  return csr;
}

MsrMatrix csrToMsr(const CsrMatrix& csrIn) {
  CsrMatrix csr = csrIn;  // canonical copy so duplicate entries merge
  csr.canonicalize();
  csr.check();
  LISI_CHECK(csr.rows == csr.cols, "MSR requires a square matrix");
  const int n = csr.rows;
  MsrMatrix msr;
  msr.n = n;
  msr.bindx.assign(static_cast<std::size_t>(n) + 1, 0);
  msr.val.assign(static_cast<std::size_t>(n) + 1, 0.0);
  msr.bindx[0] = n + 1;
  // First pass: count off-diagonals and capture the diagonal.
  for (int i = 0; i < n; ++i) {
    int offdiag = 0;
    for (int k = csr.rowPtr[static_cast<std::size_t>(i)];
         k < csr.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (csr.colIdx[static_cast<std::size_t>(k)] == i) {
        msr.val[static_cast<std::size_t>(i)] =
            csr.values[static_cast<std::size_t>(k)];
      } else {
        ++offdiag;
      }
    }
    msr.bindx[static_cast<std::size_t>(i) + 1] =
        msr.bindx[static_cast<std::size_t>(i)] + offdiag;
  }
  const auto total = static_cast<std::size_t>(msr.bindx[static_cast<std::size_t>(n)]);
  msr.bindx.resize(total);
  msr.val.resize(total);
  msr.bindx[0] = n + 1;  // resize preserved it, but be explicit
  std::vector<int> next(msr.bindx.begin(), msr.bindx.begin() + n);
  for (int i = 0; i < n; ++i) {
    for (int k = csr.rowPtr[static_cast<std::size_t>(i)];
         k < csr.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = csr.colIdx[static_cast<std::size_t>(k)];
      if (j == i) continue;
      const int slot = next[static_cast<std::size_t>(i)]++;
      msr.bindx[static_cast<std::size_t>(slot)] = j;
      msr.val[static_cast<std::size_t>(slot)] =
          csr.values[static_cast<std::size_t>(k)];
    }
  }
  return msr;
}

CsrMatrix msrToCsr(const MsrMatrix& msr) {
  msr.check();
  const int n = msr.n;
  CsrMatrix csr;
  csr.rows = n;
  csr.cols = n;
  csr.rowPtr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    const int offdiag = msr.bindx[static_cast<std::size_t>(i) + 1] -
                        msr.bindx[static_cast<std::size_t>(i)];
    csr.rowPtr[static_cast<std::size_t>(i) + 1] =
        csr.rowPtr[static_cast<std::size_t>(i)] + offdiag + 1;  // +1 diagonal
  }
  csr.colIdx.resize(static_cast<std::size_t>(csr.rowPtr.back()));
  csr.values.resize(static_cast<std::size_t>(csr.rowPtr.back()));
  for (int i = 0; i < n; ++i) {
    int slot = csr.rowPtr[static_cast<std::size_t>(i)];
    bool diagPlaced = false;
    for (int k = msr.bindx[static_cast<std::size_t>(i)];
         k < msr.bindx[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = msr.bindx[static_cast<std::size_t>(k)];
      if (!diagPlaced && j > i) {
        csr.colIdx[static_cast<std::size_t>(slot)] = i;
        csr.values[static_cast<std::size_t>(slot)] =
            msr.val[static_cast<std::size_t>(i)];
        ++slot;
        diagPlaced = true;
      }
      csr.colIdx[static_cast<std::size_t>(slot)] = j;
      csr.values[static_cast<std::size_t>(slot)] =
          msr.val[static_cast<std::size_t>(k)];
      ++slot;
    }
    if (!diagPlaced) {
      csr.colIdx[static_cast<std::size_t>(slot)] = i;
      csr.values[static_cast<std::size_t>(slot)] =
          msr.val[static_cast<std::size_t>(i)];
      ++slot;
    }
  }
  // MSR off-diagonals are not required to be sorted; canonicalize.
  csr.canonicalize();
  return csr;
}

namespace {
/// Map each scalar index to its block for a partition boundary array.
std::vector<int> indexToBlock(const std::vector<int>& part) {
  std::vector<int> map(static_cast<std::size_t>(part.back()));
  for (std::size_t b = 0; b + 1 < part.size(); ++b) {
    for (int i = part[b]; i < part[b + 1]; ++i) {
      map[static_cast<std::size_t>(i)] = static_cast<int>(b);
    }
  }
  return map;
}
}  // namespace

VbrMatrix csrToVbr(const CsrMatrix& csrIn, const std::vector<int>& rowPart,
                   const std::vector<int>& colPart) {
  CsrMatrix csr = csrIn;
  csr.canonicalize();
  csr.check();
  LISI_CHECK(rowPart.size() >= 2 && rowPart.front() == 0 &&
                 rowPart.back() == csr.rows,
             "csrToVbr: bad row partition");
  LISI_CHECK(colPart.size() >= 2 && colPart.front() == 0 &&
                 colPart.back() == csr.cols,
             "csrToVbr: bad col partition");
  const int nrb = static_cast<int>(rowPart.size()) - 1;
  const int ncb = static_cast<int>(colPart.size()) - 1;
  const std::vector<int> colBlockOf = indexToBlock(colPart);

  VbrMatrix vbr;
  vbr.rpntr = rowPart;
  vbr.cpntr = colPart;
  vbr.bpntr.assign(static_cast<std::size_t>(nrb) + 1, 0);
  vbr.indx.push_back(0);

  std::vector<char> blockUsed(static_cast<std::size_t>(ncb), 0);
  for (int br = 0; br < nrb; ++br) {
    // Which column blocks have a nonzero in this block row?
    std::fill(blockUsed.begin(), blockUsed.end(), 0);
    for (int i = rowPart[static_cast<std::size_t>(br)];
         i < rowPart[static_cast<std::size_t>(br) + 1]; ++i) {
      for (int k = csr.rowPtr[static_cast<std::size_t>(i)];
           k < csr.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        blockUsed[static_cast<std::size_t>(
            colBlockOf[static_cast<std::size_t>(
                csr.colIdx[static_cast<std::size_t>(k)])])] = 1;
      }
    }
    const int rdim = rowPart[static_cast<std::size_t>(br) + 1] -
                     rowPart[static_cast<std::size_t>(br)];
    for (int bc = 0; bc < ncb; ++bc) {
      if (!blockUsed[static_cast<std::size_t>(bc)]) continue;
      const int cdim = colPart[static_cast<std::size_t>(bc) + 1] -
                       colPart[static_cast<std::size_t>(bc)];
      vbr.bindx.push_back(bc);
      const int base = static_cast<int>(vbr.val.size());
      vbr.val.resize(vbr.val.size() + static_cast<std::size_t>(rdim * cdim), 0.0);
      // Fill column-major dense block.
      for (int i = rowPart[static_cast<std::size_t>(br)];
           i < rowPart[static_cast<std::size_t>(br) + 1]; ++i) {
        const int li = i - rowPart[static_cast<std::size_t>(br)];
        for (int k = csr.rowPtr[static_cast<std::size_t>(i)];
             k < csr.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
          const int j = csr.colIdx[static_cast<std::size_t>(k)];
          if (colBlockOf[static_cast<std::size_t>(j)] != bc) continue;
          const int lj = j - colPart[static_cast<std::size_t>(bc)];
          vbr.val[static_cast<std::size_t>(base + lj * rdim + li)] =
              csr.values[static_cast<std::size_t>(k)];
        }
      }
      vbr.indx.push_back(static_cast<int>(vbr.val.size()));
    }
    vbr.bpntr[static_cast<std::size_t>(br) + 1] =
        static_cast<int>(vbr.bindx.size());
  }
  return vbr;
}

VbrMatrix csrToVbrUniform(const CsrMatrix& csr, int blockSize) {
  LISI_CHECK(blockSize >= 1, "csrToVbrUniform: blockSize must be >= 1");
  auto makePart = [blockSize](int extent) {
    std::vector<int> part;
    for (int p = 0; p < extent; p += blockSize) part.push_back(p);
    part.push_back(extent);
    return part;
  };
  return csrToVbr(csr, makePart(csr.rows), makePart(csr.cols));
}

CsrMatrix vbrToCsr(const VbrMatrix& vbr) {
  vbr.check();
  CooMatrix coo;
  coo.rows = vbr.rows();
  coo.cols = vbr.cols();
  for (int br = 0; br < vbr.numRowBlocks(); ++br) {
    const int r0 = vbr.rpntr[static_cast<std::size_t>(br)];
    const int rdim = vbr.rpntr[static_cast<std::size_t>(br) + 1] - r0;
    for (int b = vbr.bpntr[static_cast<std::size_t>(br)];
         b < vbr.bpntr[static_cast<std::size_t>(br) + 1]; ++b) {
      const int bc = vbr.bindx[static_cast<std::size_t>(b)];
      const int c0 = vbr.cpntr[static_cast<std::size_t>(bc)];
      const int cdim = vbr.cpntr[static_cast<std::size_t>(bc) + 1] - c0;
      const int base = vbr.indx[static_cast<std::size_t>(b)];
      for (int lj = 0; lj < cdim; ++lj) {
        for (int li = 0; li < rdim; ++li) {
          coo.rowIdx.push_back(r0 + li);
          coo.colIdx.push_back(c0 + lj);
          coo.values.push_back(
              vbr.val[static_cast<std::size_t>(base + lj * rdim + li)]);
        }
      }
    }
  }
  return cooToCsr(coo);
}

CsrMatrix dropZeros(const CsrMatrix& csrIn, double tol) {
  CsrMatrix out;
  out.rows = csrIn.rows;
  out.cols = csrIn.cols;
  out.rowPtr.assign(static_cast<std::size_t>(csrIn.rows) + 1, 0);
  for (int i = 0; i < csrIn.rows; ++i) {
    for (int k = csrIn.rowPtr[static_cast<std::size_t>(i)];
         k < csrIn.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (std::abs(csrIn.values[static_cast<std::size_t>(k)]) > tol) {
        out.colIdx.push_back(csrIn.colIdx[static_cast<std::size_t>(k)]);
        out.values.push_back(csrIn.values[static_cast<std::size_t>(k)]);
      }
    }
    out.rowPtr[static_cast<std::size_t>(i) + 1] =
        static_cast<int>(out.values.size());
  }
  return out;
}

SellCMatrix csrRowsToSellC(const CsrMatrix& csr,
                           const std::vector<int>& rowList, int chunk,
                           int sigma, std::vector<int>* srcIdx) {
  csr.check();
  LISI_CHECK(chunk >= 1, "csrRowsToSellC: chunk must be >= 1");
  LISI_CHECK(sigma >= 1, "csrRowsToSellC: sigma must be >= 1");
  const int n = static_cast<int>(rowList.size());
  SellCMatrix sell;
  sell.rows = csr.rows;
  sell.cols = csr.cols;
  sell.chunk = chunk;
  sell.sigma = sigma;
  const int nc = (n + chunk - 1) / chunk;

  // Stable-sort each sigma window by descending row length so chunk-mates
  // have similar lengths (less padding); equal lengths keep list order.
  std::vector<int> order(rowList.begin(), rowList.end());
  const auto rowLenOf = [&](int r) {
    return csr.rowPtr[static_cast<std::size_t>(r) + 1] -
           csr.rowPtr[static_cast<std::size_t>(r)];
  };
  for (int w = 0; w < n; w += sigma) {
    const int end = std::min(n, w + sigma);
    std::stable_sort(order.begin() + w, order.begin() + end,
                     [&](int a, int b) { return rowLenOf(a) > rowLenOf(b); });
  }

  sell.chunkPtr.assign(static_cast<std::size_t>(nc) + 1, 0);
  sell.rowIds.assign(static_cast<std::size_t>(nc) * chunk, -1);
  sell.rowLen.assign(static_cast<std::size_t>(nc) * chunk, 0);
  for (int c = 0; c < nc; ++c) {
    int width = 0;
    for (int j = 0; j < chunk; ++j) {
      const int i = c * chunk + j;
      if (i >= n) break;
      const int r = order[static_cast<std::size_t>(i)];
      sell.rowIds[static_cast<std::size_t>(i)] = r;
      sell.rowLen[static_cast<std::size_t>(i)] = rowLenOf(r);
      width = std::max(width, rowLenOf(r));
    }
    sell.chunkPtr[static_cast<std::size_t>(c) + 1] =
        sell.chunkPtr[static_cast<std::size_t>(c)] + width * chunk;
  }

  const std::size_t padded = static_cast<std::size_t>(sell.paddedSize());
  sell.colIdx.assign(padded, 0);
  sell.values.assign(padded, 0.0);
  if (srcIdx != nullptr) srcIdx->assign(padded, -1);
  for (int c = 0; c < nc; ++c) {
    const int begin = sell.chunkPtr[static_cast<std::size_t>(c)];
    for (int j = 0; j < chunk && c * chunk + j < n; ++j) {
      const std::size_t lane = static_cast<std::size_t>(c) * chunk + j;
      const int r = sell.rowIds[lane];
      const int start = csr.rowPtr[static_cast<std::size_t>(r)];
      for (int k = 0; k < sell.rowLen[lane]; ++k) {
        const std::size_t slot =
            static_cast<std::size_t>(begin + k * chunk + j);
        sell.colIdx[slot] = csr.colIdx[static_cast<std::size_t>(start + k)];
        sell.values[slot] = csr.values[static_cast<std::size_t>(start + k)];
        if (srcIdx != nullptr) (*srcIdx)[slot] = start + k;
      }
    }
  }
  return sell;
}

SellCMatrix csrToSellC(const CsrMatrix& csr, int chunk, int sigma,
                       std::vector<int>* srcIdx) {
  std::vector<int> allRows(static_cast<std::size_t>(csr.rows));
  for (int i = 0; i < csr.rows; ++i) allRows[static_cast<std::size_t>(i)] = i;
  return csrRowsToSellC(csr, allRows, chunk, sigma, srcIdx);
}

CsrMatrix sellCToCsr(const SellCMatrix& sell) {
  sell.check();
  CooMatrix coo;
  coo.rows = sell.rows;
  coo.cols = sell.cols;
  for (int c = 0; c < sell.numChunks(); ++c) {
    const int begin = sell.chunkPtr[static_cast<std::size_t>(c)];
    for (int j = 0; j < sell.chunk; ++j) {
      const std::size_t lane = static_cast<std::size_t>(c) * sell.chunk + j;
      const int r = sell.rowIds[lane];
      for (int k = 0; k < sell.rowLen[lane]; ++k) {
        const std::size_t slot =
            static_cast<std::size_t>(begin + k * sell.chunk + j);
        coo.rowIdx.push_back(r);
        coo.colIdx.push_back(sell.colIdx[slot]);
        coo.values.push_back(sell.values[slot]);
      }
    }
  }
  return cooToCsr(coo);
}

}  // namespace lisi::sparse
