// Sparse matrix-matrix multiplication (SpGEMM), serial and distributed.
//
// The distributed product is what a real multilevel package needs to form
// Galerkin coarse operators A_c = R * A * P (hymg's Galerkin option uses
// exactly that); it also completes the sparse toolkit in its own right.
//
// Distribution semantics: operands are block-row distributed.  The result
// C = A*B inherits A's row distribution and B's input-vector (column)
// partition.  Each rank fetches the remote rows of B that its local rows
// of A touch — the row-wise analogue of the halo exchange in spmv.
#pragma once

#include "sparse/dist_csr.hpp"

namespace lisi::sparse {

/// Serial C = A * B (canonical output).  Requires a.cols == b.rows.
[[nodiscard]] CsrMatrix matMul(const CsrMatrix& a, const CsrMatrix& b);

/// Distributed C = A * B.  Requires a.globalCols() == b.globalRows() and
/// that A's input-vector partition equals B's row partition (i.e. the
/// operands are conformal the way R*A and A*P are in multigrid).
/// Collective over the shared communicator.
[[nodiscard]] DistCsrMatrix distMatMul(const DistCsrMatrix& a,
                                       const DistCsrMatrix& b);

/// Distributed triple product R * A * P (Galerkin coarse operator).
/// Collective.
[[nodiscard]] DistCsrMatrix galerkinProduct(const DistCsrMatrix& r,
                                            const DistCsrMatrix& a,
                                            const DistCsrMatrix& p);

}  // namespace lisi::sparse
