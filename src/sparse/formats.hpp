// Sparse matrix storage formats.
//
// §5.3 of the paper lists the formats a common solver interface must accept
// (its SparseStruct enum: CSR, COO, MSR, VBR, FEM ...).  This module defines
// concrete storage for each of them plus CSC (the native input format of the
// SuperLU-analogue direct solver), and src/sparse/convert.hpp provides the
// all-pairs conversions that LISI's setupMatrix adapter relies on.
//
// Conventions: 0-based indices throughout (LISI's setupMatrix carries an
// `Offset` argument for 1-based Fortran-style input; the adapter shifts
// before reaching these types).  Dimensions are plain `int` like the paper's
// interface; local problem sizes stay well below 2^31.
#pragma once

#include <string>
#include <vector>

#include "support/error.hpp"

namespace lisi::sparse {

/// Storage layouts understood by LISI's setupMatrix (paper §7.2 enum
/// SparseStruct) plus CSC, used natively by the direct-solver package.
enum class SparseStruct {
  kCsr,  ///< compressed sparse row
  kCoo,  ///< coordinate (triplet)
  kMsr,  ///< modified sparse row (diagonal stored separately)
  kVbr,  ///< variable block row
  kFem,  ///< unassembled finite-element triplets (assembled on input)
  kCsc,  ///< compressed sparse column
};

/// Human-readable name ("CSR", "COO", ...).
const char* sparseStructName(SparseStruct s);

/// Parse "csr"/"coo"/"msr"/"vbr"/"fem"/"csc" (case-insensitive).
SparseStruct sparseStructFromName(const std::string& name);

/// Coordinate (triplet) format.  Duplicate (row,col) entries are allowed and
/// mean summation on assembly — this is also how kFem input behaves.
struct CooMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<int> rowIdx;
  std::vector<int> colIdx;
  std::vector<double> values;

  [[nodiscard]] int nnz() const { return static_cast<int>(values.size()); }
  /// Validate index ranges and array-length agreement; throws lisi::Error.
  void check() const;
};

/// Compressed sparse row, templated on the stored value type (the kernel
/// formats carry their scalar as a template parameter so the mixed-precision
/// paths can keep float32 copies with identical index structure; `double` is
/// the canonical interface type and keeps its historical alias below).
/// Column indices within a row need not be sorted unless stated;
/// canonicalize() sorts them and merges duplicates.
template <class V>
struct CsrMatrixT {
  int rows = 0;
  int cols = 0;
  std::vector<int> rowPtr;   ///< size rows+1
  std::vector<int> colIdx;   ///< size nnz
  std::vector<V> values;

  [[nodiscard]] int nnz() const { return static_cast<int>(values.size()); }
  void check() const;
  /// Sort column indices within each row and merge duplicates (summing).
  void canonicalize();
  /// True if every row's column indices are strictly increasing.
  [[nodiscard]] bool isCanonical() const;
};
using CsrMatrix = CsrMatrixT<double>;
using CsrMatrixF = CsrMatrixT<float>;

/// Compressed sparse column.
template <class V>
struct CscMatrixT {
  int rows = 0;
  int cols = 0;
  std::vector<int> colPtr;   ///< size cols+1
  std::vector<int> rowIdx;   ///< size nnz
  std::vector<V> values;

  [[nodiscard]] int nnz() const { return static_cast<int>(values.size()); }
  void check() const;
};
using CscMatrix = CscMatrixT<double>;
using CscMatrixF = CscMatrixT<float>;

/// Modified sparse row (SPARSKIT/Aztec style), square matrices only:
///   val[0..n-1]   diagonal entries,
///   val[n]        unused padding,
///   bindx[0..n]   pointers into the off-diagonal section,
///   bindx[k], val[k] for k in [bindx[i], bindx[i+1]) = off-diagonals of row i.
struct MsrMatrix {
  int n = 0;
  std::vector<int> bindx;
  std::vector<double> val;

  /// Total stored entries including all diagonal slots.
  [[nodiscard]] int nnz() const {
    return n + (bindx.empty() ? 0 : bindx[static_cast<std::size_t>(n)] - (n + 1));
  }
  void check() const;
};

/// Variable block row format (Aztec/SPARSKIT VBR):
///   rpntr[0..nRowBlocks]  row-partition boundaries,
///   cpntr[0..nColBlocks]  column-partition boundaries,
///   bpntr[0..nRowBlocks]  block-row pointers into bindx,
///   bindx[..]             block column indices,
///   indx[..]              offset of each block's values in val,
///   val                   dense column-major storage of each block.
template <class V>
struct VbrMatrixT {
  std::vector<int> rpntr;
  std::vector<int> cpntr;
  std::vector<int> bpntr;
  std::vector<int> bindx;
  std::vector<int> indx;
  std::vector<V> val;

  [[nodiscard]] int rows() const {
    return rpntr.empty() ? 0 : rpntr.back();
  }
  [[nodiscard]] int cols() const {
    return cpntr.empty() ? 0 : cpntr.back();
  }
  [[nodiscard]] int numRowBlocks() const {
    return rpntr.empty() ? 0 : static_cast<int>(rpntr.size()) - 1;
  }
  [[nodiscard]] int numColBlocks() const {
    return cpntr.empty() ? 0 : static_cast<int>(cpntr.size()) - 1;
  }
  void check() const;
};
using VbrMatrix = VbrMatrixT<double>;
using VbrMatrixF = VbrMatrixT<float>;

/// Sliced ELLPACK (SELL-C-σ).  Rows are grouped into chunks of `chunk`
/// consecutive slots; within each sorting window of `sigma` rows the rows
/// are ordered by descending length so chunk-mates have similar lengths.
/// Each chunk stores its entries column-major, padded to the chunk's widest
/// row:
///   slot (c, j, k) for chunk c, lane j, entry k lives at
///   chunkPtr[c] + k*chunk + j.
/// Padding slots carry colIdx 0 / value 0 and are never dereferenced by the
/// kernel (it bounds each lane by rowLen).  `rowIds[c*chunk + j]` is the
/// original row stored in lane j of chunk c, so kernels scatter results
/// back without a separate permutation pass.  This is internal tuned
/// storage, not a setupMatrix input format — SparseStruct is unchanged.
template <class V>
struct SellCMatrixT {
  int rows = 0;             ///< logical rows (before chunk padding)
  int cols = 0;
  int chunk = 0;            ///< C: rows per chunk (slot count, >= 1)
  int sigma = 0;            ///< σ: sorting-window size used at build time
  std::vector<int> chunkPtr;  ///< size numChunks+1, offsets into colIdx/values
  std::vector<int> rowIds;    ///< size numChunks*chunk, original row per lane
  std::vector<int> rowLen;    ///< size numChunks*chunk, entries per lane
  std::vector<int> colIdx;    ///< padded column-major chunk storage
  std::vector<V> values;

  [[nodiscard]] int numChunks() const {
    return chunkPtr.empty() ? 0 : static_cast<int>(chunkPtr.size()) - 1;
  }
  /// Stored slots including padding (colIdx/values length).
  [[nodiscard]] int paddedSize() const {
    return chunkPtr.empty() ? 0 : chunkPtr.back();
  }
  void check() const;
};
using SellCMatrix = SellCMatrixT<double>;
using SellCMatrixF = SellCMatrixT<float>;

// The templated member functions are defined in formats.cpp and explicitly
// instantiated for double and float — the only scalars the kernels use.
extern template struct CsrMatrixT<double>;
extern template struct CsrMatrixT<float>;
extern template struct CscMatrixT<double>;
extern template struct CscMatrixT<float>;
extern template struct VbrMatrixT<double>;
extern template struct VbrMatrixT<float>;
extern template struct SellCMatrixT<double>;
extern template struct SellCMatrixT<float>;

}  // namespace lisi::sparse
