#include "sparse/partition.hpp"

#include <algorithm>

namespace lisi::sparse {

BlockRowPartition::BlockRowPartition(int globalRows, int nranks)
    : globalRows_(globalRows) {
  LISI_CHECK(globalRows >= 0, "BlockRowPartition: negative row count");
  LISI_CHECK(nranks >= 1, "BlockRowPartition: need at least one rank");
  starts_.resize(static_cast<std::size_t>(nranks) + 1);
  const int base = globalRows / nranks;
  const int extra = globalRows % nranks;
  int pos = 0;
  for (int r = 0; r < nranks; ++r) {
    starts_[static_cast<std::size_t>(r)] = pos;
    pos += base + (r < extra ? 1 : 0);
  }
  starts_[static_cast<std::size_t>(nranks)] = globalRows;
}

int BlockRowPartition::startRow(int rank) const {
  LISI_CHECK(rank >= 0 && rank < numRanks(), "startRow: rank out of range");
  return starts_[static_cast<std::size_t>(rank)];
}

int BlockRowPartition::localRows(int rank) const {
  LISI_CHECK(rank >= 0 && rank < numRanks(), "localRows: rank out of range");
  return starts_[static_cast<std::size_t>(rank) + 1] -
         starts_[static_cast<std::size_t>(rank)];
}

int BlockRowPartition::ownerOf(int row) const {
  LISI_CHECK(row >= 0 && row < globalRows_, "ownerOf: row out of range");
  auto it = std::upper_bound(starts_.begin(), starts_.end(), row);
  return static_cast<int>(it - starts_.begin()) - 1;
}

}  // namespace lisi::sparse
