// Block-row partitioning of a global index range across ranks.
//
// §5.4: until a sparse Distributed Array Descriptor exists, LISI assumes
// block row partitioning — each rank owns a contiguous range of global rows.
// This helper computes the standard near-even split and answers ownership
// queries; it is shared by the mesh generator, the distributed matrix, and
// every solver package.
#pragma once

#include <vector>

#include "support/error.hpp"

namespace lisi::sparse {

/// Contiguous block-row ownership map for `globalRows` rows over `nranks`
/// ranks: the first (globalRows % nranks) ranks get one extra row.
class BlockRowPartition {
 public:
  BlockRowPartition() = default;
  BlockRowPartition(int globalRows, int nranks);

  [[nodiscard]] int globalRows() const { return globalRows_; }
  [[nodiscard]] int numRanks() const {
    return static_cast<int>(starts_.size()) - 1;
  }
  /// First global row owned by `rank`.
  [[nodiscard]] int startRow(int rank) const;
  /// Number of rows owned by `rank`.
  [[nodiscard]] int localRows(int rank) const;
  /// Rank owning global row `row`.
  [[nodiscard]] int ownerOf(int row) const;
  /// Boundary array [0, s1, s2, ..., globalRows] (size numRanks+1).
  [[nodiscard]] const std::vector<int>& boundaries() const { return starts_; }

 private:
  int globalRows_ = 0;
  std::vector<int> starts_;
};

}  // namespace lisi::sparse
