// Synthetic sparse-matrix generators for tests, benches, and examples.
#pragma once

#include "sparse/formats.hpp"
#include "support/rng.hpp"

namespace lisi::sparse {

/// Random sparse matrix: each row gets `nnzPerRow` entries at uniformly
/// random columns (duplicates merged), values uniform in [-1, 1).
[[nodiscard]] CsrMatrix randomCsr(int rows, int cols, int nnzPerRow, Rng& rng);

/// Random strictly diagonally dominant square matrix (every iterative method
/// and ILU factorization in the repo converges on these), values in [-1,1)
/// off-diagonal, diagonal = (row abs sum) + `dominance`.
[[nodiscard]] CsrMatrix randomDiagDominant(int n, int nnzPerRow, double dominance,
                                           Rng& rng);

/// Symmetric positive definite matrix built as D + R + R' with dominant
/// diagonal (used by CG tests).
[[nodiscard]] CsrMatrix randomSpd(int n, int nnzPerRow, Rng& rng);

/// Standard 1-D Laplacian tridiag(-1, 2, -1) of order n (SPD, well studied).
[[nodiscard]] CsrMatrix laplacian1d(int n);

/// Standard 2-D 5-point Laplacian on an nx-by-ny grid (SPD).
[[nodiscard]] CsrMatrix laplacian2d(int nx, int ny);

/// 2-D 9-point Laplacian on an nx-by-ny grid (SPD): diagonal 8/3, edge
/// neighbours -1/3, corner neighbours -1/3 (the standard compact stencil
/// scaled so the row sum vanishes in the interior).
[[nodiscard]] CsrMatrix laplacian2d9(int nx, int ny);

/// Kronecker product of laplacian2d(nx, ny) with a dense SPD bs-by-bs
/// coupling block: every scalar stencil entry becomes a dense bs×bs block,
/// giving a uniformly block-sparse SPD matrix of order nx*ny*bs (the
/// block-kernel tuning target; multi-dof-per-node FEM shape).
[[nodiscard]] CsrMatrix blockLaplacian2d(int nx, int ny, int bs);

/// Symmetric permutation P*A*P' under a deterministic pseudo-random
/// permutation drawn from `rng` (models FEM node reordering: same spectrum
/// and row lengths, scattered locality).  Canonical output.
[[nodiscard]] CsrMatrix permuteSymmetric(const CsrMatrix& a, Rng& rng);

}  // namespace lisi::sparse
