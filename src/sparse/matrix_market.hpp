// Minimal MatrixMarket (coordinate, real) reader/writer.  Used by the mesh
// generator's per-node data files (§8: "Mesh data files are written out on
// each compute node locally for faster data input") and by examples that
// load external systems.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "sparse/formats.hpp"

namespace lisi::sparse {

/// Write `a` in MatrixMarket coordinate/real/general format.
void writeMatrixMarket(std::ostream& os, const CsrMatrix& a);
void writeMatrixMarket(const std::string& path, const CsrMatrix& a);

/// Read a MatrixMarket coordinate file (real or integer values; `general`
/// or `symmetric` symmetry — symmetric input is expanded).  Pattern and
/// complex files are rejected with lisi::Error.
[[nodiscard]] CsrMatrix readMatrixMarket(std::istream& is);
[[nodiscard]] CsrMatrix readMatrixMarket(const std::string& path);

/// Write a dense vector as a MatrixMarket array file.
void writeMatrixMarketVector(const std::string& path,
                             std::span<const double> v);

/// Read a dense vector from a MatrixMarket array file.
[[nodiscard]] std::vector<double> readMatrixMarketVector(const std::string& path);

}  // namespace lisi::sparse
