#include "sparse/ops.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/convert.hpp"

namespace lisi::sparse {

namespace {

// The kernels are templates over the stored scalar; the public double and
// float overloads below instantiate them.  Each kernel accumulates in its
// own scalar (the float paths are bandwidth plays wrapped in float64
// refinement; reductions that feed convergence checks accumulate in double
// regardless — see norm2/dot).
template <class V>
void spmvCsrImpl(const CsrMatrixT<V>& a, std::span<const V> x,
                 std::span<V> y) {
  LISI_CHECK(static_cast<int>(x.size()) == a.cols, "spmv(CSR): x size mismatch");
  LISI_CHECK(static_cast<int>(y.size()) == a.rows, "spmv(CSR): y size mismatch");
  for (int i = 0; i < a.rows; ++i) {
    V acc = V(0);
    for (int k = a.rowPtr[static_cast<std::size_t>(i)];
         k < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      acc += a.values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.colIdx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

template <class V>
void spmvSellImpl(const SellCMatrixT<V>& a, std::span<const V> x,
                  std::span<V> y) {
  LISI_CHECK(static_cast<int>(x.size()) == a.cols,
             "spmv(SELL): x size mismatch");
  LISI_CHECK(static_cast<int>(y.size()) == a.rows,
             "spmv(SELL): y size mismatch");
  const int chunk = a.chunk;
  for (int c = 0; c < a.numChunks(); ++c) {
    const int begin = a.chunkPtr[static_cast<std::size_t>(c)];
    for (int j = 0; j < chunk; ++j) {
      const std::size_t lane = static_cast<std::size_t>(c) * chunk + j;
      const int r = a.rowIds[lane];
      if (r < 0) continue;
      // Bounding by rowLen (not chunk width) keeps padding slots out of the
      // sum entirely — even +0.0 terms would flip signed zeros.
      V acc = V(0);
      for (int k = 0; k < a.rowLen[lane]; ++k) {
        const std::size_t slot = static_cast<std::size_t>(begin + k * chunk + j);
        acc += a.values[slot] *
               x[static_cast<std::size_t>(a.colIdx[slot])];
      }
      y[static_cast<std::size_t>(r)] = acc;
    }
  }
}

template <class V>
void spmvVbrImpl(const VbrMatrixT<V>& a, std::span<const V> x,
                 std::span<V> y) {
  LISI_CHECK(static_cast<int>(x.size()) == a.cols(), "spmv(VBR): x size mismatch");
  LISI_CHECK(static_cast<int>(y.size()) == a.rows(), "spmv(VBR): y size mismatch");
  std::fill(y.begin(), y.end(), V(0));
  for (int br = 0; br < a.numRowBlocks(); ++br) {
    const int r0 = a.rpntr[static_cast<std::size_t>(br)];
    const int rdim = a.rpntr[static_cast<std::size_t>(br) + 1] - r0;
    for (int b = a.bpntr[static_cast<std::size_t>(br)];
         b < a.bpntr[static_cast<std::size_t>(br) + 1]; ++b) {
      const int bc = a.bindx[static_cast<std::size_t>(b)];
      const int c0 = a.cpntr[static_cast<std::size_t>(bc)];
      const int cdim = a.cpntr[static_cast<std::size_t>(bc) + 1] - c0;
      const int base = a.indx[static_cast<std::size_t>(b)];
      for (int lj = 0; lj < cdim; ++lj) {
        const V xj = x[static_cast<std::size_t>(c0 + lj)];
        for (int li = 0; li < rdim; ++li) {
          y[static_cast<std::size_t>(r0 + li)] +=
              a.val[static_cast<std::size_t>(base + lj * rdim + li)] * xj;
        }
      }
    }
  }
}

}  // namespace

void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> y) {
  spmvCsrImpl<double>(a, x, y);
}

void spmv(const CsrMatrixF& a, std::span<const float> x, std::span<float> y) {
  spmvCsrImpl<float>(a, x, y);
}

void spmvTranspose(const CsrMatrix& a, std::span<const double> x,
                   std::span<double> y) {
  LISI_CHECK(static_cast<int>(x.size()) == a.rows,
             "spmvTranspose: x size mismatch");
  LISI_CHECK(static_cast<int>(y.size()) == a.cols,
             "spmvTranspose: y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (int i = 0; i < a.rows; ++i) {
    const double xi = x[static_cast<std::size_t>(i)];
    for (int k = a.rowPtr[static_cast<std::size_t>(i)];
         k < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      y[static_cast<std::size_t>(a.colIdx[static_cast<std::size_t>(k)])] +=
          a.values[static_cast<std::size_t>(k)] * xi;
    }
  }
}

void spmv(const CscMatrix& a, std::span<const double> x, std::span<double> y) {
  LISI_CHECK(static_cast<int>(x.size()) == a.cols, "spmv(CSC): x size mismatch");
  LISI_CHECK(static_cast<int>(y.size()) == a.rows, "spmv(CSC): y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (int j = 0; j < a.cols; ++j) {
    const double xj = x[static_cast<std::size_t>(j)];
    for (int k = a.colPtr[static_cast<std::size_t>(j)];
         k < a.colPtr[static_cast<std::size_t>(j) + 1]; ++k) {
      y[static_cast<std::size_t>(a.rowIdx[static_cast<std::size_t>(k)])] +=
          a.values[static_cast<std::size_t>(k)] * xj;
    }
  }
}

void spmv(const CooMatrix& a, std::span<const double> x, std::span<double> y) {
  LISI_CHECK(static_cast<int>(x.size()) == a.cols, "spmv(COO): x size mismatch");
  LISI_CHECK(static_cast<int>(y.size()) == a.rows, "spmv(COO): y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t k = 0; k < a.values.size(); ++k) {
    y[static_cast<std::size_t>(a.rowIdx[k])] +=
        a.values[k] * x[static_cast<std::size_t>(a.colIdx[k])];
  }
}

void spmv(const MsrMatrix& a, std::span<const double> x, std::span<double> y) {
  LISI_CHECK(static_cast<int>(x.size()) == a.n, "spmv(MSR): x size mismatch");
  LISI_CHECK(static_cast<int>(y.size()) == a.n, "spmv(MSR): y size mismatch");
  for (int i = 0; i < a.n; ++i) {
    double acc = a.val[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
    for (int k = a.bindx[static_cast<std::size_t>(i)];
         k < a.bindx[static_cast<std::size_t>(i) + 1]; ++k) {
      acc += a.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.bindx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

void spmv(const VbrMatrix& a, std::span<const double> x, std::span<double> y) {
  spmvVbrImpl<double>(a, x, y);
}

void spmv(const VbrMatrixF& a, std::span<const float> x, std::span<float> y) {
  spmvVbrImpl<float>(a, x, y);
}

void spmv(const SellCMatrix& a, std::span<const double> x,
          std::span<double> y) {
  spmvSellImpl<double>(a, x, y);
}

void spmv(const SellCMatrixF& a, std::span<const float> x,
          std::span<float> y) {
  spmvSellImpl<float>(a, x, y);
}

CsrMatrix transpose(const CsrMatrix& a) {
  CscMatrix csc = csrToCsc(a);
  CsrMatrix t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.rowPtr = std::move(csc.colPtr);
  t.colIdx = std::move(csc.rowIdx);
  t.values = std::move(csc.values);
  return t;
}

std::vector<double> diagonal(const CsrMatrix& a) {
  const int n = std::min(a.rows, a.cols);
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = a.rowPtr[static_cast<std::size_t>(i)];
         k < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.colIdx[static_cast<std::size_t>(k)] == i) {
        d[static_cast<std::size_t>(i)] += a.values[static_cast<std::size_t>(k)];
      }
    }
  }
  return d;
}

std::vector<double> toDense(const CsrMatrix& a) {
  std::vector<double> dense(static_cast<std::size_t>(a.rows) *
                                static_cast<std::size_t>(a.cols),
                            0.0);
  for (int i = 0; i < a.rows; ++i) {
    for (int k = a.rowPtr[static_cast<std::size_t>(i)];
         k < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      dense[static_cast<std::size_t>(i) * static_cast<std::size_t>(a.cols) +
            static_cast<std::size_t>(a.colIdx[static_cast<std::size_t>(k)])] +=
          a.values[static_cast<std::size_t>(k)];
    }
  }
  return dense;
}

double frobeniusNorm(const CsrMatrix& a) {
  double acc = 0.0;
  for (double v : a.values) acc += v * v;
  return std::sqrt(acc);
}

double infNorm(const CsrMatrix& a) {
  double best = 0.0;
  for (int i = 0; i < a.rows; ++i) {
    double rowSum = 0.0;
    for (int k = a.rowPtr[static_cast<std::size_t>(i)];
         k < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      rowSum += std::abs(a.values[static_cast<std::size_t>(k)]);
    }
    best = std::max(best, rowSum);
  }
  return best;
}

double maxAbsDiff(const CsrMatrix& aIn, const CsrMatrix& bIn) {
  LISI_CHECK(aIn.rows == bIn.rows && aIn.cols == bIn.cols,
             "maxAbsDiff: dimension mismatch");
  CsrMatrix a = aIn;
  CsrMatrix b = bIn;
  a.canonicalize();
  b.canonicalize();
  double best = 0.0;
  for (int i = 0; i < a.rows; ++i) {
    int ka = a.rowPtr[static_cast<std::size_t>(i)];
    int kb = b.rowPtr[static_cast<std::size_t>(i)];
    const int ea = a.rowPtr[static_cast<std::size_t>(i) + 1];
    const int eb = b.rowPtr[static_cast<std::size_t>(i) + 1];
    while (ka < ea || kb < eb) {
      const int ca = ka < ea ? a.colIdx[static_cast<std::size_t>(ka)] : a.cols;
      const int cb = kb < eb ? b.colIdx[static_cast<std::size_t>(kb)] : b.cols;
      if (ca == cb) {
        best = std::max(best, std::abs(a.values[static_cast<std::size_t>(ka)] -
                                       b.values[static_cast<std::size_t>(kb)]));
        ++ka;
        ++kb;
      } else if (ca < cb) {
        best = std::max(best, std::abs(a.values[static_cast<std::size_t>(ka)]));
        ++ka;
      } else {
        best = std::max(best, std::abs(b.values[static_cast<std::size_t>(kb)]));
        ++kb;
      }
    }
  }
  return best;
}

double norm2(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return std::sqrt(acc);
}

double dot(std::span<const double> x, std::span<const double> y) {
  LISI_CHECK(x.size() == y.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  LISI_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(std::span<const float> x) {
  // Float data, double accumulation: these reductions feed convergence
  // decisions, so the cheap storage must not cost accuracy in the sum.
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc);
}

double dot(std::span<const float> x, std::span<const float> y) {
  LISI_CHECK(x.size() == y.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  LISI_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double residualNorm(const CsrMatrix& a, std::span<const double> x,
                    std::span<const double> b) {
  std::vector<double> r(static_cast<std::size_t>(a.rows));
  spmv(a, x, std::span<double>(r));
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  return norm2(r);
}

}  // namespace lisi::sparse
