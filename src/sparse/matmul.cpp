#include "sparse/matmul.hpp"

#include <algorithm>

#include "comm/tags.hpp"

namespace lisi::sparse {

namespace {

constexpr int kRowFetchTag = comm::tags::kMatMulRowFetch;

/// Sparse accumulator (SPA) used to form one output row at a time.
class SparseAccumulator {
 public:
  explicit SparseAccumulator(int cols)
      : values_(static_cast<std::size_t>(cols), 0.0),
        present_(static_cast<std::size_t>(cols), 0) {}

  void add(int col, double value) {
    if (!present_[static_cast<std::size_t>(col)]) {
      present_[static_cast<std::size_t>(col)] = 1;
      pattern_.push_back(col);
    }
    values_[static_cast<std::size_t>(col)] += value;
  }

  /// Flush the accumulated row into CSR arrays (sorted columns) and reset.
  void emit(std::vector<int>& colIdx, std::vector<double>& values) {
    std::sort(pattern_.begin(), pattern_.end());
    for (int c : pattern_) {
      colIdx.push_back(c);
      values.push_back(values_[static_cast<std::size_t>(c)]);
      values_[static_cast<std::size_t>(c)] = 0.0;
      present_[static_cast<std::size_t>(c)] = 0;
    }
    pattern_.clear();
  }

 private:
  std::vector<double> values_;
  std::vector<char> present_;
  std::vector<int> pattern_;
};

}  // namespace

CsrMatrix matMul(const CsrMatrix& a, const CsrMatrix& b) {
  a.check();
  b.check();
  LISI_CHECK(a.cols == b.rows, "matMul: inner dimensions disagree");
  CsrMatrix c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.rowPtr.reserve(static_cast<std::size_t>(a.rows) + 1);
  c.rowPtr.push_back(0);
  SparseAccumulator spa(b.cols);
  for (int i = 0; i < a.rows; ++i) {
    for (int ka = a.rowPtr[static_cast<std::size_t>(i)];
         ka < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++ka) {
      const int k = a.colIdx[static_cast<std::size_t>(ka)];
      const double av = a.values[static_cast<std::size_t>(ka)];
      for (int kb = b.rowPtr[static_cast<std::size_t>(k)];
           kb < b.rowPtr[static_cast<std::size_t>(k) + 1]; ++kb) {
        spa.add(b.colIdx[static_cast<std::size_t>(kb)],
                av * b.values[static_cast<std::size_t>(kb)]);
      }
    }
    spa.emit(c.colIdx, c.values);
    c.rowPtr.push_back(static_cast<int>(c.colIdx.size()));
  }
  return c;
}

DistCsrMatrix distMatMul(const DistCsrMatrix& a, const DistCsrMatrix& b) {
  const comm::Comm& comm = a.comm();
  const int p = comm.size();
  const int rank = comm.rank();
  LISI_CHECK(a.globalCols() == b.globalRows(),
             "distMatMul: inner dimensions disagree");
  LISI_CHECK(a.colStarts() == b.rowStarts(),
             "distMatMul: A's column partition must match B's row partition");

  const CsrMatrix& la = a.localBlock();
  const CsrMatrix& lb = b.localBlock();
  const std::vector<int>& bRowStarts = b.rowStarts();
  const int bStart = bRowStarts[static_cast<std::size_t>(rank)];
  const int bEnd = bRowStarts[static_cast<std::size_t>(rank) + 1];

  // Which global rows of B do my rows of A touch, and who owns them?
  std::vector<int> needed;
  needed.reserve(la.colIdx.size());
  for (int cidx : la.colIdx) {
    if (cidx < bStart || cidx >= bEnd) needed.push_back(cidx);
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  std::vector<std::vector<int>> needFrom(static_cast<std::size_t>(p));
  for (int g : needed) {
    const auto it =
        std::upper_bound(bRowStarts.begin(), bRowStarts.end(), g);
    const int owner = static_cast<int>(it - bRowStarts.begin()) - 1;
    LISI_ASSERT(owner >= 0 && owner < p && owner != rank);
    needFrom[static_cast<std::size_t>(owner)].push_back(g);
  }

  // Exchange request counts, then the requests, then the packed rows.
  std::vector<int> requestCounts(static_cast<std::size_t>(p), 0);
  for (int r = 0; r < p; ++r) {
    requestCounts[static_cast<std::size_t>(r)] =
        static_cast<int>(needFrom[static_cast<std::size_t>(r)].size());
  }
  const std::vector<int> allCounts =
      comm.allgatherv(std::span<const int>(requestCounts), nullptr);
  for (int r = 0; r < p; ++r) {
    if (!needFrom[static_cast<std::size_t>(r)].empty()) {
      comm.send(std::span<const int>(needFrom[static_cast<std::size_t>(r)]), r,
                kRowFetchTag);
    }
  }
  // Serve incoming requests: pack each requested row as
  // [len, col..., (double) val...] in two messages (ints, doubles).
  for (int q = 0; q < p; ++q) {
    if (q == rank) continue;
    const int wanted =
        allCounts[static_cast<std::size_t>(q) * static_cast<std::size_t>(p) +
                  static_cast<std::size_t>(rank)];
    if (wanted == 0) continue;
    const std::vector<int> rows = comm.recvVector<int>(q, kRowFetchTag);
    std::vector<int> meta;
    std::vector<double> vals;
    for (int g : rows) {
      const int i = g - bStart;
      LISI_ASSERT(i >= 0 && i < lb.rows);
      const int kb = lb.rowPtr[static_cast<std::size_t>(i)];
      const int ke = lb.rowPtr[static_cast<std::size_t>(i) + 1];
      meta.push_back(ke - kb);
      meta.insert(meta.end(), lb.colIdx.begin() + kb, lb.colIdx.begin() + ke);
      vals.insert(vals.end(), lb.values.begin() + kb, lb.values.begin() + ke);
    }
    comm.send(std::span<const int>(meta), q, kRowFetchTag);
    comm.send(std::span<const double>(vals), q, kRowFetchTag);
  }
  // Collect the replies into a lookup: global row -> (cols, vals).
  std::vector<int> fetchedPtr;  // parallel arrays over `needed`
  std::vector<int> fetchedCols;
  std::vector<double> fetchedVals;
  {
    // Rebuild in the same per-owner order the requests used.
    std::vector<std::pair<int, std::pair<std::vector<int>, std::vector<double>>>>
        byOwner;
    for (int r = 0; r < p; ++r) {
      if (needFrom[static_cast<std::size_t>(r)].empty()) continue;
      std::vector<int> meta = comm.recvVector<int>(r, kRowFetchTag);
      std::vector<double> vals = comm.recvVector<double>(r, kRowFetchTag);
      byOwner.emplace_back(r, std::make_pair(std::move(meta), std::move(vals)));
    }
    // `needed` is globally sorted and owners own contiguous ranges, so the
    // per-owner reply order concatenates back in sorted order.
    fetchedPtr.push_back(0);
    for (auto& [r, data] : byOwner) {
      auto& [meta, vals] = data;
      std::size_t mi = 0;
      std::size_t vi = 0;
      const auto& rows = needFrom[static_cast<std::size_t>(r)];
      for (std::size_t k = 0; k < rows.size(); ++k) {
        const int len = meta[mi++];
        for (int t = 0; t < len; ++t) fetchedCols.push_back(meta[mi++]);
        for (int t = 0; t < len; ++t) fetchedVals.push_back(vals[vi++]);
        fetchedPtr.push_back(static_cast<int>(fetchedCols.size()));
      }
    }
  }
  auto fetchedIndexOf = [&needed](int g) {
    const auto it = std::lower_bound(needed.begin(), needed.end(), g);
    LISI_ASSERT(it != needed.end() && *it == g);
    return static_cast<int>(it - needed.begin());
  };

  // Local SpGEMM with the fetched rows standing in for remote B rows.
  CsrMatrix lc;
  lc.rows = la.rows;
  lc.cols = b.globalCols();
  lc.rowPtr.reserve(static_cast<std::size_t>(la.rows) + 1);
  lc.rowPtr.push_back(0);
  SparseAccumulator spa(b.globalCols());
  for (int i = 0; i < la.rows; ++i) {
    for (int ka = la.rowPtr[static_cast<std::size_t>(i)];
         ka < la.rowPtr[static_cast<std::size_t>(i) + 1]; ++ka) {
      const int g = la.colIdx[static_cast<std::size_t>(ka)];
      const double av = la.values[static_cast<std::size_t>(ka)];
      if (g >= bStart && g < bEnd) {
        const int k = g - bStart;
        for (int kb = lb.rowPtr[static_cast<std::size_t>(k)];
             kb < lb.rowPtr[static_cast<std::size_t>(k) + 1]; ++kb) {
          spa.add(lb.colIdx[static_cast<std::size_t>(kb)],
                  av * lb.values[static_cast<std::size_t>(kb)]);
        }
      } else {
        const int f = fetchedIndexOf(g);
        for (int kb = fetchedPtr[static_cast<std::size_t>(f)];
             kb < fetchedPtr[static_cast<std::size_t>(f) + 1]; ++kb) {
          spa.add(fetchedCols[static_cast<std::size_t>(kb)],
                  av * fetchedVals[static_cast<std::size_t>(kb)]);
        }
      }
    }
    spa.emit(lc.colIdx, lc.values);
    lc.rowPtr.push_back(static_cast<int>(lc.colIdx.size()));
  }

  return DistCsrMatrix(comm, a.globalRows(), b.globalCols(), a.startRow(),
                       std::move(lc), b.colStarts());
}

DistCsrMatrix galerkinProduct(const DistCsrMatrix& r, const DistCsrMatrix& a,
                              const DistCsrMatrix& p) {
  const DistCsrMatrix ap = distMatMul(a, p);
  return distMatMul(r, ap);
}

}  // namespace lisi::sparse
