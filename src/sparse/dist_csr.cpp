#include "sparse/dist_csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lisi::sparse {

namespace {
constexpr int kHaloTag = 701;  ///< user-tag for per-spmv ghost traffic
}

DistCsrMatrix::DistCsrMatrix(comm::Comm comm, int globalRows, int globalCols,
                             int startRow, CsrMatrix local,
                             std::vector<int> colStarts)
    : comm_(std::move(comm)),
      globalRows_(globalRows),
      globalCols_(globalCols),
      local_(std::move(local)),
      colStarts_(std::move(colStarts)) {
  LISI_CHECK(comm_.valid(), "DistCsrMatrix: invalid communicator");
  LISI_CHECK(globalRows_ >= 0 && globalCols_ >= 0,
             "DistCsrMatrix: negative dimensions");
  LISI_CHECK(local_.cols == globalCols_,
             "DistCsrMatrix: local block must carry global column indices");
  local_.check();
  local_.canonicalize();

  // Establish and validate the global row ownership map.
  struct Extent {
    int start;
    int count;
  };
  const Extent mine{startRow, local_.rows};
  std::vector<Extent> all =
      comm_.allgatherv(std::span<const Extent>(&mine, 1), nullptr);
  const int p = comm_.size();
  rowStarts_.resize(static_cast<std::size_t>(p) + 1);
  int pos = 0;
  for (int r = 0; r < p; ++r) {
    LISI_CHECK(all[static_cast<std::size_t>(r)].start == pos,
               "DistCsrMatrix: ranks do not tile the global rows contiguously");
    rowStarts_[static_cast<std::size_t>(r)] = pos;
    pos += all[static_cast<std::size_t>(r)].count;
  }
  rowStarts_[static_cast<std::size_t>(p)] = pos;
  LISI_CHECK(pos == globalRows_,
             "DistCsrMatrix: local row counts do not sum to globalRows");

  if (colStarts_.empty()) {
    // Square operators distribute x like the rows.
    if (globalRows_ == globalCols_) colStarts_ = rowStarts_;
  } else {
    LISI_CHECK(static_cast<int>(colStarts_.size()) == p + 1 &&
                   colStarts_.front() == 0 && colStarts_.back() == globalCols_,
               "DistCsrMatrix: bad colStarts boundaries");
    for (int r = 0; r < p; ++r) {
      LISI_CHECK(colStarts_[static_cast<std::size_t>(r)] <=
                     colStarts_[static_cast<std::size_t>(r) + 1],
                 "DistCsrMatrix: colStarts not monotone");
    }
  }
  if (!colStarts_.empty()) buildHaloPlan();
}

int DistCsrMatrix::localCols() const {
  LISI_CHECK(!colStarts_.empty(),
             "DistCsrMatrix: no input-vector partition (rectangular matrix "
             "constructed without colStarts)");
  return colStarts_[static_cast<std::size_t>(comm_.rank()) + 1] -
         colStarts_[static_cast<std::size_t>(comm_.rank())];
}

int DistCsrMatrix::startRow() const {
  return rowStarts_[static_cast<std::size_t>(comm_.rank())];
}

long long DistCsrMatrix::globalNnz() const {
  return comm_.allreduceValue<long long>(local_.nnz(), comm::ReduceOp::kSum);
}

DistCsrMatrix DistCsrMatrix::scatterFromRoot(comm::Comm comm,
                                             const CsrMatrix& global,
                                             int root) {
  const int p = comm.size();
  int dims[2] = {global.rows, global.cols};
  comm.bcast(std::span<int>(dims), root);
  const BlockRowPartition part(dims[0], p);
  const int rank = comm.rank();

  // Root slices its copy; everyone receives their block.
  std::vector<int> rowLens;
  std::vector<int> cols;
  std::vector<double> vals;
  if (rank == root) {
    for (int r = 0; r < p; ++r) {
      const int s = part.startRow(r);
      const int c = part.localRows(r);
      std::vector<int> lens(static_cast<std::size_t>(c));
      std::vector<int> blockCols;
      std::vector<double> blockVals;
      for (int i = 0; i < c; ++i) {
        const int g = s + i;
        const int b = global.rowPtr[static_cast<std::size_t>(g)];
        const int e = global.rowPtr[static_cast<std::size_t>(g) + 1];
        lens[static_cast<std::size_t>(i)] = e - b;
        blockCols.insert(blockCols.end(), global.colIdx.begin() + b,
                         global.colIdx.begin() + e);
        blockVals.insert(blockVals.end(), global.values.begin() + b,
                         global.values.begin() + e);
      }
      if (r == root) {
        rowLens = std::move(lens);
        cols = std::move(blockCols);
        vals = std::move(blockVals);
      } else {
        comm.send(std::span<const int>(lens), r, kHaloTag);
        comm.send(std::span<const int>(blockCols), r, kHaloTag);
        comm.send(std::span<const double>(blockVals), r, kHaloTag);
      }
    }
  } else {
    rowLens = comm.recvVector<int>(root, kHaloTag);
    cols = comm.recvVector<int>(root, kHaloTag);
    vals = comm.recvVector<double>(root, kHaloTag);
  }

  CsrMatrix local;
  local.rows = part.localRows(rank);
  local.cols = dims[1];
  local.rowPtr.assign(static_cast<std::size_t>(local.rows) + 1, 0);
  for (int i = 0; i < local.rows; ++i) {
    local.rowPtr[static_cast<std::size_t>(i) + 1] =
        local.rowPtr[static_cast<std::size_t>(i)] +
        rowLens[static_cast<std::size_t>(i)];
  }
  local.colIdx = std::move(cols);
  local.values = std::move(vals);
  return DistCsrMatrix(std::move(comm), dims[0], dims[1], part.startRow(rank),
                       std::move(local));
}

void DistCsrMatrix::buildHaloPlan() {
  const int p = comm_.size();
  const int rank = comm_.rank();
  const int myStart = colStarts_[static_cast<std::size_t>(rank)];
  const int myEnd = colStarts_[static_cast<std::size_t>(rank) + 1];
  const int nlocal = myEnd - myStart;

  // Ghost columns: referenced, not owned.
  ghostCols_.clear();
  for (int c : local_.colIdx) {
    if (c < myStart || c >= myEnd) ghostCols_.push_back(c);
  }
  std::sort(ghostCols_.begin(), ghostCols_.end());
  ghostCols_.erase(std::unique(ghostCols_.begin(), ghostCols_.end()),
                   ghostCols_.end());

  // Remap the local block's columns: owned -> [0, nlocal), ghost ->
  // nlocal + position in ghostCols_.
  mapped_ = local_;
  for (int& c : mapped_.colIdx) {
    if (c >= myStart && c < myEnd) {
      c -= myStart;
    } else {
      const auto it = std::lower_bound(ghostCols_.begin(), ghostCols_.end(), c);
      c = nlocal + static_cast<int>(it - ghostCols_.begin());
    }
  }
  mapped_.cols = nlocal + static_cast<int>(ghostCols_.size());

  // Group ghost columns by owner (ghostCols_ is sorted, so owners ascend).
  std::vector<std::vector<int>> needFrom(static_cast<std::size_t>(p));
  {
    // Owner lookup over the (possibly uneven) colStarts_ boundaries.  Empty
    // ranges make upper_bound ambiguous, so scan to the owning non-empty one.
    for (int c : ghostCols_) {
      const auto it =
          std::upper_bound(colStarts_.begin(), colStarts_.end(), c);
      int owner = static_cast<int>(it - colStarts_.begin()) - 1;
      while (owner + 1 < p && colStarts_[static_cast<std::size_t>(owner)] ==
                                  colStarts_[static_cast<std::size_t>(owner) + 1]) {
        ++owner;
      }
      LISI_ASSERT(owner >= 0 && owner < p && owner != rank);
      needFrom[static_cast<std::size_t>(owner)].push_back(c);
    }
  }
  recvFromRanks_.clear();
  recvCounts_.clear();
  recvOffsets_.clear();
  int offset = 0;
  for (int r = 0; r < p; ++r) {
    if (needFrom[static_cast<std::size_t>(r)].empty()) continue;
    recvFromRanks_.push_back(r);
    recvCounts_.push_back(
        static_cast<int>(needFrom[static_cast<std::size_t>(r)].size()));
    recvOffsets_.push_back(offset);
    offset += recvCounts_.back();
  }

  // Tell every rank how many of its entries we need, then exchange the
  // index lists so senders know what to ship each spmv.
  std::vector<int> requestCounts(static_cast<std::size_t>(p), 0);
  for (int r = 0; r < p; ++r) {
    requestCounts[static_cast<std::size_t>(r)] =
        static_cast<int>(needFrom[static_cast<std::size_t>(r)].size());
  }
  std::vector<int> allCounts =
      comm_.allgatherv(std::span<const int>(requestCounts), nullptr);
  // allCounts[q*p + r] = how many entries rank q needs from rank r.
  sendToRanks_.clear();
  sendLocal_.clear();
  for (const int r : recvFromRanks_) {
    comm_.send(std::span<const int>(needFrom[static_cast<std::size_t>(r)]), r,
               kHaloTag);
  }
  for (int q = 0; q < p; ++q) {
    if (q == rank) continue;
    const int needed =
        allCounts[static_cast<std::size_t>(q) * static_cast<std::size_t>(p) +
                  static_cast<std::size_t>(rank)];
    if (needed == 0) continue;
    std::vector<int> globalIdx = comm_.recvVector<int>(q, kHaloTag);
    LISI_ASSERT(static_cast<int>(globalIdx.size()) == needed);
    std::vector<int> localIdx(globalIdx.size());
    for (std::size_t k = 0; k < globalIdx.size(); ++k) {
      LISI_ASSERT(globalIdx[k] >= myStart && globalIdx[k] < myEnd);
      localIdx[k] = globalIdx[k] - myStart;
    }
    sendToRanks_.push_back(q);
    sendLocal_.push_back(std::move(localIdx));
  }
}

void DistCsrMatrix::spmv(std::span<const double> xLocal,
                         std::span<double> yLocal) const {
  LISI_CHECK(!colStarts_.empty(),
             "DistCsrMatrix::spmv: rectangular operator constructed without "
             "colStarts");
  LISI_CHECK(static_cast<int>(xLocal.size()) == localCols(),
             "DistCsrMatrix::spmv: x size mismatch");
  LISI_CHECK(static_cast<int>(yLocal.size()) == localRows(),
             "DistCsrMatrix::spmv: y size mismatch");

  // Ship requested x entries to their consumers (buffered sends complete
  // immediately in MiniMPI), then collect our ghosts.
  std::vector<double> buffer;
  for (std::size_t s = 0; s < sendToRanks_.size(); ++s) {
    const std::vector<int>& idx = sendLocal_[s];
    buffer.resize(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k) {
      buffer[k] = xLocal[static_cast<std::size_t>(idx[k])];
    }
    comm_.send(std::span<const double>(buffer), sendToRanks_[s], kHaloTag);
  }
  std::vector<double> xExt(xLocal.size() + ghostCols_.size());
  std::copy(xLocal.begin(), xLocal.end(), xExt.begin());
  for (std::size_t r = 0; r < recvFromRanks_.size(); ++r) {
    comm_.recv(std::span<double>(xExt.data() + xLocal.size() +
                                     static_cast<std::size_t>(recvOffsets_[r]),
                                 static_cast<std::size_t>(recvCounts_[r])),
               recvFromRanks_[r], kHaloTag);
  }

  // Local product on the remapped block.
  for (int i = 0; i < mapped_.rows; ++i) {
    double acc = 0.0;
    for (int k = mapped_.rowPtr[static_cast<std::size_t>(i)];
         k < mapped_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      acc += mapped_.values[static_cast<std::size_t>(k)] *
             xExt[static_cast<std::size_t>(
                 mapped_.colIdx[static_cast<std::size_t>(k)])];
    }
    yLocal[static_cast<std::size_t>(i)] = acc;
  }
}

CsrMatrix DistCsrMatrix::gatherToRoot(int root) const {
  std::vector<int> lens(static_cast<std::size_t>(local_.rows));
  for (int i = 0; i < local_.rows; ++i) {
    lens[static_cast<std::size_t>(i)] =
        local_.rowPtr[static_cast<std::size_t>(i) + 1] -
        local_.rowPtr[static_cast<std::size_t>(i)];
  }
  std::vector<int> allLens = comm_.gatherv(std::span<const int>(lens), root);
  std::vector<int> allCols =
      comm_.gatherv(std::span<const int>(local_.colIdx), root);
  std::vector<double> allVals =
      comm_.gatherv(std::span<const double>(local_.values), root);
  CsrMatrix global;
  if (comm_.rank() == root) {
    global.rows = globalRows_;
    global.cols = globalCols_;
    global.rowPtr.assign(static_cast<std::size_t>(globalRows_) + 1, 0);
    for (int i = 0; i < globalRows_; ++i) {
      global.rowPtr[static_cast<std::size_t>(i) + 1] =
          global.rowPtr[static_cast<std::size_t>(i)] +
          allLens[static_cast<std::size_t>(i)];
    }
    global.colIdx = std::move(allCols);
    global.values = std::move(allVals);
    global.check();
  }
  return global;
}

std::vector<double> DistCsrMatrix::gatherVectorToRoot(
    std::span<const double> xLocal, int root) const {
  LISI_CHECK(static_cast<int>(xLocal.size()) == localRows(),
             "gatherVectorToRoot: size mismatch");
  return comm_.gatherv(xLocal, root);
}

std::vector<double> DistCsrMatrix::scatterVectorFromRoot(
    std::span<const double> xGlobal, int root) const {
  const int p = comm_.size();
  std::vector<int> counts(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    counts[static_cast<std::size_t>(r)] =
        rowStarts_[static_cast<std::size_t>(r) + 1] -
        rowStarts_[static_cast<std::size_t>(r)];
  }
  if (comm_.rank() == root) {
    LISI_CHECK(static_cast<int>(xGlobal.size()) == globalRows_,
               "scatterVectorFromRoot: global size mismatch");
  }
  return comm_.scatterv(xGlobal, std::span<const int>(counts), root);
}

std::vector<double> DistCsrMatrix::localDiagonal() const {
  const int myStart = startRow();
  std::vector<double> d(static_cast<std::size_t>(local_.rows), 0.0);
  for (int i = 0; i < local_.rows; ++i) {
    for (int k = local_.rowPtr[static_cast<std::size_t>(i)];
         k < local_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (local_.colIdx[static_cast<std::size_t>(k)] == myStart + i) {
        d[static_cast<std::size_t>(i)] +=
            local_.values[static_cast<std::size_t>(k)];
      }
    }
  }
  return d;
}

double distDot(const comm::Comm& comm, std::span<const double> x,
               std::span<const double> y) {
  LISI_CHECK(x.size() == y.size(), "distDot: local size mismatch");
  double local = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) local += x[i] * y[i];
  return comm.allreduceValue(local, comm::ReduceOp::kSum);
}

double distNorm2(const comm::Comm& comm, std::span<const double> x) {
  return std::sqrt(distDot(comm, x, x));
}

double distNormInf(const comm::Comm& comm, std::span<const double> x) {
  double local = 0.0;
  for (double v : x) local = std::max(local, std::abs(v));
  return comm.allreduceValue(local, comm::ReduceOp::kMax);
}

}  // namespace lisi::sparse
