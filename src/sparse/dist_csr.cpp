#include "sparse/dist_csr.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "comm/tags.hpp"
#include "obs/obs.hpp"
#include "sparse/convert.hpp"
#include "sparse/ops.hpp"
#include "support/prec.hpp"

namespace lisi::sparse {

namespace {
// All fixed protocol tags live in the central registry (comm/tags.hpp);
// aliased locally to keep the call sites short.
constexpr int kScatterTag = comm::tags::kMatrixScatter;
constexpr int kPlanTag = comm::tags::kHaloPlan;
constexpr int kSpmvTagRounds = comm::tags::kSpmvTagRounds;

// SELL-C-σ build parameters: chunks of 8 lanes keep the padded storage
// small on CPU (SELL-C-σ targets SIMD widths, not GPU warps) and σ = 64
// localizes the length sort so y scatter stays cache-friendly.
constexpr int kSellChunk = 8;
constexpr int kSellSigma = 64;

// kBlock eligibility: padded block storage may exceed the true nonzeros by
// at most this factor.  Beyond it the dense-block sweep pays more bandwidth
// on fill zeros than it saves on index loads.
constexpr double kBlockMaxFill = 1.25;

// Reuse observability: MiniMPI ranks are threads of one process, so the
// counters are process-wide atomics (tests look at deltas, which is exactly
// what "no rank rebuilt its plan" means under threads-as-ranks).
// Memory order (audited): relaxed everywhere — monotonic counters with no
// publication duty; delta readers run between worlds, after thread joins.
std::atomic<long long> gHaloPlanBuilds{0};
std::atomic<long long> gValueUpdates{0};
}

long long haloPlanBuilds() {
  return gHaloPlanBuilds.load(std::memory_order_relaxed);
}

long long valueUpdates() {
  return gValueUpdates.load(std::memory_order_relaxed);
}

const char* localKernelName(LocalKernel k) {
  switch (k) {
    case LocalKernel::kCsr: return "csr";
    case LocalKernel::kCsrPrefetch: return "csr_prefetch";
    case LocalKernel::kSellC: return "sell_c";
    case LocalKernel::kBlock: return "block";
  }
  return "?";
}

void DistCsrMatrix::updateValues(const CsrMatrix& local) {
  LISI_CHECK(local.rows == local_.rows && local.cols == local_.cols,
             "updateValues: dimensions differ from the built operator");
  LISI_CHECK(local.rowPtr == local_.rowPtr && local.colIdx == local_.colIdx,
             "updateValues: sparsity structure differs from the built "
             "operator (callers must pass the canonical same-pattern block)");
  std::copy(local.values.begin(), local.values.end(), local_.values.begin());
  // mapped_ shares local_'s value layout (buildHaloPlan copies local_ and
  // remaps only the column indices), so the refresh is positional.
  if (mapped_.values.size() == local.values.size()) {
    std::copy(local.values.begin(), local.values.end(),
              mapped_.values.begin());
  }
  refreshKernelAux();
  floatMirrorFresh_ = false;  // spmvFloat re-mirrors on next use
  gValueUpdates.fetch_add(1, std::memory_order_relaxed);
  obs::count("sparse.value_updates");
}

void DistCsrMatrix::refreshKernelAux() {
  const auto replay = [this](std::vector<double>& vals,
                             const std::vector<int>& src) {
    for (std::size_t s = 0; s < src.size(); ++s) {
      if (src[s] >= 0) {
        vals[s] = mapped_.values[static_cast<std::size_t>(src[s])];
      }
    }
  };
  if (sellBuilt_) {
    replay(sellInterior_.values, sellInteriorSrc_);
    replay(sellBoundary_.values, sellBoundarySrc_);
  }
  if (vbrBlockSize_ > 0) replay(vbr_.val, vbrSrc_);
}

void DistCsrMatrix::buildSellAux() {
  sellInterior_ = csrRowsToSellC(mapped_, interiorRows_, kSellChunk,
                                 kSellSigma, &sellInteriorSrc_);
  sellBoundary_ = csrRowsToSellC(mapped_, boundaryRows_, kSellChunk,
                                 kSellSigma, &sellBoundarySrc_);
  sellBuilt_ = true;
}

bool DistCsrMatrix::blockKernelEligible(int blockSize) const {
  if (colStarts_.empty() || blockSize < 2 || mapped_.rows < blockSize) {
    return false;
  }
  // Padded size if every touched (rowBlock, colBlock) pair went dense.
  const auto blockOf = [blockSize](int i) { return i / blockSize; };
  long long padded = 0;
  std::vector<int> lastCol;  // last counted col block per row block lane
  for (int i = 0; i < mapped_.rows; i += blockSize) {
    const int rdim = std::min(blockSize, mapped_.rows - i);
    std::vector<int> touched;
    for (int r = i; r < std::min(i + blockSize, mapped_.rows); ++r) {
      for (int k = mapped_.rowPtr[static_cast<std::size_t>(r)];
           k < mapped_.rowPtr[static_cast<std::size_t>(r) + 1]; ++k) {
        touched.push_back(blockOf(mapped_.colIdx[static_cast<std::size_t>(k)]));
      }
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    for (const int bc : touched) {
      const int c0 = bc * blockSize;
      const int cdim = std::min(blockSize, mapped_.cols - c0);
      padded += static_cast<long long>(rdim) * cdim;
    }
  }
  const long long nnz = mapped_.nnz();
  return nnz > 0 &&
         static_cast<double>(padded) <= kBlockMaxFill * static_cast<double>(nnz);
}

void DistCsrMatrix::buildBlockAux(int blockSize) {
  vbr_ = csrToVbrUniform(mapped_, blockSize);
  vbrSrc_.assign(vbr_.val.size(), -1);
  // Map every CSR entry of mapped_ to its dense slot so value refreshes
  // replay positionally.  bindx is sorted ascending within each block row
  // (csrToVbr emits block columns in ascending order).
  for (int i = 0; i < mapped_.rows; ++i) {
    const int br = i / blockSize;
    const int r0 = vbr_.rpntr[static_cast<std::size_t>(br)];
    const int rdim = vbr_.rpntr[static_cast<std::size_t>(br) + 1] - r0;
    for (int k = mapped_.rowPtr[static_cast<std::size_t>(i)];
         k < mapped_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = mapped_.colIdx[static_cast<std::size_t>(k)];
      const int bc = c / blockSize;
      const auto first = vbr_.bindx.begin() + vbr_.bpntr[static_cast<std::size_t>(br)];
      const auto last = vbr_.bindx.begin() + vbr_.bpntr[static_cast<std::size_t>(br) + 1];
      const auto it = std::lower_bound(first, last, bc);
      LISI_ASSERT(it != last && *it == bc);
      const auto b = static_cast<std::size_t>(it - vbr_.bindx.begin());
      const int c0 = vbr_.cpntr[static_cast<std::size_t>(bc)];
      vbrSrc_[static_cast<std::size_t>(vbr_.indx[b] + (c - c0) * rdim +
                                       (i - r0))] = k;
    }
  }
  vbrBlockSize_ = blockSize;
}

SpmvConfig DistCsrMatrix::setSpmvConfig(const SpmvConfig& config) {
  LISI_CHECK(!colStarts_.empty(),
             "setSpmvConfig: rectangular operator constructed without "
             "colStarts has no spmv to tune");
  SpmvConfig applied = config;
  if (applied.kernel == LocalKernel::kBlock &&
      (vbrBlockSize_ != applied.blockSize &&
       !blockKernelEligible(applied.blockSize))) {
    applied.kernel = LocalKernel::kCsr;
    applied.blockSize = 0;
  }
  if (applied.kernel == LocalKernel::kSellC && !sellBuilt_) buildSellAux();
  if (applied.kernel == LocalKernel::kBlock &&
      vbrBlockSize_ != applied.blockSize) {
    buildBlockAux(applied.blockSize);
  }
  if (applied.kernel != LocalKernel::kCsr) {
    // Aux kernels read x through one contiguous owned+ghost vector.
    xExt_.resize(static_cast<std::size_t>(mapped_.cols));
  }
  spmvConfig_ = applied;
  return applied;
}

DistCsrMatrix::DistCsrMatrix(comm::Comm comm, int globalRows, int globalCols,
                             int startRow, CsrMatrix local,
                             std::vector<int> colStarts)
    : comm_(std::move(comm)),
      globalRows_(globalRows),
      globalCols_(globalCols),
      local_(std::move(local)),
      colStarts_(std::move(colStarts)) {
  LISI_CHECK(comm_.valid(), "DistCsrMatrix: invalid communicator");
  LISI_CHECK(globalRows_ >= 0 && globalCols_ >= 0,
             "DistCsrMatrix: negative dimensions");
  LISI_CHECK(local_.cols == globalCols_,
             "DistCsrMatrix: local block must carry global column indices");
  local_.check();
  local_.canonicalize();

  // Establish and validate the global row ownership map.
  struct Extent {
    int start;
    int count;
  };
  const Extent mine{startRow, local_.rows};
  std::vector<Extent> all =
      comm_.allgatherv(std::span<const Extent>(&mine, 1), nullptr);
  const int p = comm_.size();
  rowStarts_.resize(static_cast<std::size_t>(p) + 1);
  int pos = 0;
  for (int r = 0; r < p; ++r) {
    LISI_CHECK(all[static_cast<std::size_t>(r)].start == pos,
               "DistCsrMatrix: ranks do not tile the global rows contiguously");
    rowStarts_[static_cast<std::size_t>(r)] = pos;
    pos += all[static_cast<std::size_t>(r)].count;
  }
  rowStarts_[static_cast<std::size_t>(p)] = pos;
  LISI_CHECK(pos == globalRows_,
             "DistCsrMatrix: local row counts do not sum to globalRows");

  if (colStarts_.empty()) {
    // Square operators distribute x like the rows.
    if (globalRows_ == globalCols_) colStarts_ = rowStarts_;
  } else {
    LISI_CHECK(static_cast<int>(colStarts_.size()) == p + 1 &&
                   colStarts_.front() == 0 && colStarts_.back() == globalCols_,
               "DistCsrMatrix: bad colStarts boundaries");
    for (int r = 0; r < p; ++r) {
      LISI_CHECK(colStarts_[static_cast<std::size_t>(r)] <=
                     colStarts_[static_cast<std::size_t>(r) + 1],
                 "DistCsrMatrix: colStarts not monotone");
    }
  }
  if (!colStarts_.empty()) buildHaloPlan();
}

int DistCsrMatrix::localCols() const {
  LISI_CHECK(!colStarts_.empty(),
             "DistCsrMatrix: no input-vector partition (rectangular matrix "
             "constructed without colStarts)");
  return colStarts_[static_cast<std::size_t>(comm_.rank()) + 1] -
         colStarts_[static_cast<std::size_t>(comm_.rank())];
}

int DistCsrMatrix::startRow() const {
  return rowStarts_[static_cast<std::size_t>(comm_.rank())];
}

long long DistCsrMatrix::globalNnz() const {
  return comm_.allreduceValue<long long>(local_.nnz(), comm::ReduceOp::kSum);
}

DistCsrMatrix DistCsrMatrix::scatterFromRoot(comm::Comm comm,
                                             const CsrMatrix& global,
                                             int root) {
  const int p = comm.size();
  int dims[2] = {global.rows, global.cols};
  comm.bcast(std::span<int>(dims), root);
  const BlockRowPartition part(dims[0], p);
  const int rank = comm.rank();

  // Root slices its copy; everyone receives their block.
  std::vector<int> rowLens;
  std::vector<int> cols;
  std::vector<double> vals;
  if (rank == root) {
    for (int r = 0; r < p; ++r) {
      const int s = part.startRow(r);
      const int c = part.localRows(r);
      std::vector<int> lens(static_cast<std::size_t>(c));
      std::vector<int> blockCols;
      std::vector<double> blockVals;
      for (int i = 0; i < c; ++i) {
        const int g = s + i;
        const int b = global.rowPtr[static_cast<std::size_t>(g)];
        const int e = global.rowPtr[static_cast<std::size_t>(g) + 1];
        lens[static_cast<std::size_t>(i)] = e - b;
        blockCols.insert(blockCols.end(), global.colIdx.begin() + b,
                         global.colIdx.begin() + e);
        blockVals.insert(blockVals.end(), global.values.begin() + b,
                         global.values.begin() + e);
      }
      if (r == root) {
        rowLens = std::move(lens);
        cols = std::move(blockCols);
        vals = std::move(blockVals);
      } else {
        comm.send(std::span<const int>(lens), r, kScatterTag);
        comm.send(std::span<const int>(blockCols), r, kScatterTag);
        comm.send(std::span<const double>(blockVals), r, kScatterTag);
      }
    }
  } else {
    rowLens = comm.recvVector<int>(root, kScatterTag);
    cols = comm.recvVector<int>(root, kScatterTag);
    vals = comm.recvVector<double>(root, kScatterTag);
  }

  CsrMatrix local;
  local.rows = part.localRows(rank);
  local.cols = dims[1];
  local.rowPtr.assign(static_cast<std::size_t>(local.rows) + 1, 0);
  for (int i = 0; i < local.rows; ++i) {
    local.rowPtr[static_cast<std::size_t>(i) + 1] =
        local.rowPtr[static_cast<std::size_t>(i)] +
        rowLens[static_cast<std::size_t>(i)];
  }
  local.colIdx = std::move(cols);
  local.values = std::move(vals);
  return DistCsrMatrix(std::move(comm), dims[0], dims[1], part.startRow(rank),
                       std::move(local));
}

void DistCsrMatrix::buildHaloPlan() {
  gHaloPlanBuilds.fetch_add(1, std::memory_order_relaxed);
  obs::count("sparse.halo_plan_builds");
  obs::Span span("sparse.halo_plan_build");
  const int p = comm_.size();
  const int rank = comm_.rank();
  const int myStart = colStarts_[static_cast<std::size_t>(rank)];
  const int myEnd = colStarts_[static_cast<std::size_t>(rank) + 1];
  const int nlocal = myEnd - myStart;

  // Ghost columns: referenced, not owned.
  ghostCols_.clear();
  for (int c : local_.colIdx) {
    if (c < myStart || c >= myEnd) ghostCols_.push_back(c);
  }
  std::sort(ghostCols_.begin(), ghostCols_.end());
  ghostCols_.erase(std::unique(ghostCols_.begin(), ghostCols_.end()),
                   ghostCols_.end());

  // Remap the local block's columns: owned -> [0, nlocal), ghost ->
  // nlocal + position in ghostCols_.
  mapped_ = local_;
  for (int& c : mapped_.colIdx) {
    if (c >= myStart && c < myEnd) {
      c -= myStart;
    } else {
      const auto it = std::lower_bound(ghostCols_.begin(), ghostCols_.end(), c);
      c = nlocal + static_cast<int>(it - ghostCols_.begin());
    }
  }
  mapped_.cols = nlocal + static_cast<int>(ghostCols_.size());

  // Group ghost columns by owner (ghostCols_ is sorted, so owners ascend).
  std::vector<std::vector<int>> needFrom(static_cast<std::size_t>(p));
  {
    // Owner lookup over the (possibly uneven) colStarts_ boundaries.  Empty
    // ranges make upper_bound ambiguous, so scan to the owning non-empty one.
    for (int c : ghostCols_) {
      const auto it =
          std::upper_bound(colStarts_.begin(), colStarts_.end(), c);
      int owner = static_cast<int>(it - colStarts_.begin()) - 1;
      while (owner + 1 < p && colStarts_[static_cast<std::size_t>(owner)] ==
                                  colStarts_[static_cast<std::size_t>(owner) + 1]) {
        ++owner;
      }
      LISI_ASSERT(owner >= 0 && owner < p && owner != rank);
      needFrom[static_cast<std::size_t>(owner)].push_back(c);
    }
  }
  recvFromRanks_.clear();
  recvCounts_.clear();
  recvOffsets_.clear();
  int offset = 0;
  for (int r = 0; r < p; ++r) {
    if (needFrom[static_cast<std::size_t>(r)].empty()) continue;
    recvFromRanks_.push_back(r);
    recvCounts_.push_back(
        static_cast<int>(needFrom[static_cast<std::size_t>(r)].size()));
    recvOffsets_.push_back(offset);
    offset += recvCounts_.back();
  }

  // Tell every rank how many of its entries we need, then exchange the
  // index lists so senders know what to ship each spmv.
  std::vector<int> requestCounts(static_cast<std::size_t>(p), 0);
  for (int r = 0; r < p; ++r) {
    requestCounts[static_cast<std::size_t>(r)] =
        static_cast<int>(needFrom[static_cast<std::size_t>(r)].size());
  }
  std::vector<int> allCounts =
      comm_.allgatherv(std::span<const int>(requestCounts), nullptr);
  // allCounts[q*p + r] = how many entries rank q needs from rank r.
  sendToRanks_.clear();
  sendIdx_.clear();
  sendOffsets_.assign(1, 0);
  for (const int r : recvFromRanks_) {
    comm_.send(std::span<const int>(needFrom[static_cast<std::size_t>(r)]), r,
               kPlanTag);
  }
  for (int q = 0; q < p; ++q) {
    if (q == rank) continue;
    const int needed =
        allCounts[static_cast<std::size_t>(q) * static_cast<std::size_t>(p) +
                  static_cast<std::size_t>(rank)];
    if (needed == 0) continue;
    std::vector<int> globalIdx = comm_.recvVector<int>(q, kPlanTag);
    LISI_ASSERT(static_cast<int>(globalIdx.size()) == needed);
    for (const int g : globalIdx) {
      LISI_ASSERT(g >= myStart && g < myEnd);
      sendIdx_.push_back(g - myStart);
    }
    sendToRanks_.push_back(q);
    sendOffsets_.push_back(static_cast<int>(sendIdx_.size()));
  }

  // One-time interior/boundary row split: interior rows read only owned x
  // entries, so they can run while ghost values are still in flight.
  interiorRows_.clear();
  boundaryRows_.clear();
  for (int i = 0; i < mapped_.rows; ++i) {
    bool interior = true;
    for (int k = mapped_.rowPtr[static_cast<std::size_t>(i)];
         k < mapped_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (mapped_.colIdx[static_cast<std::size_t>(k)] >= nlocal) {
        interior = false;
        break;
      }
    }
    (interior ? interiorRows_ : boundaryRows_).push_back(i);
  }

  // Persistent per-spmv scratch + reserved tag block: sized here so spmv()
  // itself never touches the heap.
  sendBuf_.assign(sendIdx_.size(), 0.0);
  xGhost_.assign(ghostCols_.size(), 0.0);
  spmvTags_ = comm_.reserveCollectiveTags(kSpmvTagRounds);
  spmvRound_ = 0;
}

// lisi-lint: zero-alloc-begin(spmv steady state: plan-owned scratch only)
// The halo-plan build (buildHaloPlan) sizes sendBuf_/xGhost_/xExt_ and
// reserves the spmv tag block precisely so this function never touches the
// heap; the markers make that promise a lint-enforced contract.
void DistCsrMatrix::spmv(std::span<const double> xLocal,
                         std::span<double> yLocal) const {
  LISI_CHECK(!colStarts_.empty(),
             "DistCsrMatrix::spmv: rectangular operator constructed without "
             "colStarts");
  LISI_CHECK(static_cast<int>(xLocal.size()) == localCols(),
             "DistCsrMatrix::spmv: x size mismatch");
  LISI_CHECK(static_cast<int>(yLocal.size()) == localRows(),
             "DistCsrMatrix::spmv: y size mismatch");

  // Overlapped exchange on plan-owned scratch, one tag per round:
  //   1. pack + post all sends (buffered: they complete immediately),
  //   2. compute interior rows while ghost values are in flight,
  //   3. receive ghosts, then finish the boundary rows.
  const int tag = spmvTags_[spmvRound_ % spmvTags_.size()];
  ++spmvRound_;
  obs::Span spmvSpan("sparse.spmv");
  // Precision accounting: value bytes this product moves in float64 —
  // stored matrix values plus the packed/received halo payload.
  const long long bytesHigh =
      8LL * (static_cast<long long>(mapped_.nnz()) +
             static_cast<long long>(sendIdx_.size()) +
             static_cast<long long>(ghostCols_.size()));
  prec::noteBytesHigh(bytesHigh);
  obs::count("prec.bytes_high", bytesHigh);
  {
    obs::Span phase("sparse.spmv.halo_send");
    for (std::size_t s = 0; s < sendToRanks_.size(); ++s) {
      const auto b = static_cast<std::size_t>(sendOffsets_[s]);
      const auto e = static_cast<std::size_t>(sendOffsets_[s + 1]);
      for (std::size_t k = b; k < e; ++k) {
        sendBuf_[k] = xLocal[static_cast<std::size_t>(sendIdx_[k])];
      }
      comm_.send(std::span<const double>(sendBuf_.data() + b, e - b),
                 sendToRanks_[s], tag);
    }
  }
  // Owned columns read straight from the caller's x (no copy); ghost
  // columns read from the plan's receive buffer via their remapped index.
  const int nloc = static_cast<int>(xLocal.size());
  const auto rowProduct = [&](int i) {
    double acc = 0.0;
    for (int k = mapped_.rowPtr[static_cast<std::size_t>(i)];
         k < mapped_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = mapped_.colIdx[static_cast<std::size_t>(k)];
      acc += mapped_.values[static_cast<std::size_t>(k)] *
             (c < nloc ? xLocal[static_cast<std::size_t>(c)]
                       : xGhost_[static_cast<std::size_t>(c - nloc)]);
    }
    yLocal[static_cast<std::size_t>(i)] = acc;
  };
  const auto recvGhosts = [&] {
    obs::Span phase("sparse.spmv.halo_recv");
    for (std::size_t r = 0; r < recvFromRanks_.size(); ++r) {
      comm_.recv(
          std::span<double>(xGhost_.data() +
                                static_cast<std::size_t>(recvOffsets_[r]),
                            static_cast<std::size_t>(recvCounts_[r])),
          recvFromRanks_[r], tag);
    }
  };

  if (spmvConfig_.kernel == LocalKernel::kCsr) {
    if (spmvConfig_.overlapHalo) {
      // Reference path: interior rows hide the ghost exchange.
      {
        obs::Span phase("sparse.spmv.interior");
        for (const int i : interiorRows_) rowProduct(i);
      }
      recvGhosts();
      obs::Span phase("sparse.spmv.boundary");
      for (const int i : boundaryRows_) rowProduct(i);
    } else {
      // Eager: complete the exchange, then one natural-order row sweep
      // (bitwise identical per row to the overlapped path).
      recvGhosts();
      obs::Span phase("sparse.spmv.local");
      for (int i = 0; i < mapped_.rows; ++i) rowProduct(i);
    }
    return;
  }

  // Aux kernels read x through the contiguous owned+ghost vector; the
  // owned prefix is filled up front, the ghost tail after the receive.
  std::copy(xLocal.begin(), xLocal.end(), xExt_.begin());
  const auto fillGhostTail = [&] {
    std::copy(xGhost_.begin(), xGhost_.end(),
              xExt_.begin() + static_cast<std::ptrdiff_t>(nloc));
  };
  const std::span<const double> xExt(xExt_);

  switch (spmvConfig_.kernel) {
    case LocalKernel::kCsr:
      break;  // handled above
    case LocalKernel::kCsrPrefetch: {
      // Branch-free gather through xExt_ plus one-row-ahead software
      // prefetch of the next row's x targets.  Same accumulation order as
      // kCsr, so results stay bitwise identical.
      const auto rowProductExt = [&](int i) {
        double acc = 0.0;
        for (int k = mapped_.rowPtr[static_cast<std::size_t>(i)];
             k < mapped_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
          acc += mapped_.values[static_cast<std::size_t>(k)] *
                 xExt[static_cast<std::size_t>(
                     mapped_.colIdx[static_cast<std::size_t>(k)])];
        }
        yLocal[static_cast<std::size_t>(i)] = acc;
      };
      const auto prefetchRow = [&](int i) {
#if defined(__GNUC__) || defined(__clang__)
        for (int k = mapped_.rowPtr[static_cast<std::size_t>(i)];
             k < mapped_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
          __builtin_prefetch(
              &xExt_[static_cast<std::size_t>(
                  mapped_.colIdx[static_cast<std::size_t>(k)])],
              0, 1);
        }
#else
        (void)i;
#endif
      };
      const auto sweep = [&](const std::vector<int>& rowsList) {
        for (std::size_t n = 0; n < rowsList.size(); ++n) {
          if (n + 1 < rowsList.size()) prefetchRow(rowsList[n + 1]);
          rowProductExt(rowsList[n]);
        }
      };
      if (spmvConfig_.overlapHalo) {
        {
          obs::Span phase("sparse.spmv.interior");
          sweep(interiorRows_);
        }
        recvGhosts();
        fillGhostTail();
        obs::Span phase("sparse.spmv.boundary");
        sweep(boundaryRows_);
      } else {
        recvGhosts();
        fillGhostTail();
        obs::Span phase("sparse.spmv.local");
        sweep(interiorRows_);
        sweep(boundaryRows_);
      }
      break;
    }
    case LocalKernel::kSellC: {
      if (spmvConfig_.overlapHalo) {
        {
          obs::Span phase("sparse.spmv.interior");
          sparse::spmv(sellInterior_, xExt, yLocal);
        }
        recvGhosts();
        fillGhostTail();
        obs::Span phase("sparse.spmv.boundary");
        sparse::spmv(sellBoundary_, xExt, yLocal);
      } else {
        recvGhosts();
        fillGhostTail();
        obs::Span phase("sparse.spmv.local");
        sparse::spmv(sellInterior_, xExt, yLocal);
        sparse::spmv(sellBoundary_, xExt, yLocal);
      }
      break;
    }
    case LocalKernel::kBlock: {
      // The dense-block sweep has no interior/boundary split; the exchange
      // always completes first (overlapHalo is ignored).
      recvGhosts();
      fillGhostTail();
      obs::Span phase("sparse.spmv.local");
      sparse::spmv(vbr_, xExt, yLocal);
      break;
    }
  }
}
// lisi-lint: zero-alloc-end

void DistCsrMatrix::spmvFloat(std::span<const float> xLocal,
                              std::span<float> yLocal) const {
  LISI_CHECK(!colStarts_.empty(),
             "DistCsrMatrix::spmvFloat: rectangular operator constructed "
             "without colStarts");
  LISI_CHECK(static_cast<int>(xLocal.size()) == localCols(),
             "DistCsrMatrix::spmvFloat: x size mismatch");
  LISI_CHECK(static_cast<int>(yLocal.size()) == localRows(),
             "DistCsrMatrix::spmvFloat: y size mismatch");

  if (!floatMirrorFresh_) {
    // Lazy mirror: cast the current values once; the halo plan, index
    // arrays, and interior/boundary split are shared with the double path.
    mappedValsF_.resize(mapped_.values.size());
    std::copy(mapped_.values.begin(), mapped_.values.end(),
              mappedValsF_.begin());
    sendBufF_.assign(sendIdx_.size(), 0.0F);
    xGhostF_.assign(ghostCols_.size(), 0.0F);
    floatMirrorFresh_ = true;
  }

  // Same overlapped exchange as spmv(), on the float scratch.  The tuned
  // aux kernels are double-only; this path always runs the reference CSR
  // loop — it is the error-correction inner product, where the bandwidth
  // halving, not the kernel shape, is the lever.
  const int tag = spmvTags_[spmvRound_ % spmvTags_.size()];
  ++spmvRound_;
  obs::Span spmvSpan("sparse.spmv_f32");
  const long long bytesLow =
      4LL * (static_cast<long long>(mapped_.nnz()) +
             static_cast<long long>(sendIdx_.size()) +
             static_cast<long long>(ghostCols_.size()));
  prec::noteBytesLow(bytesLow);
  obs::count("prec.bytes_low", bytesLow);
  {
    obs::Span phase("sparse.spmv.halo_send");
    for (std::size_t s = 0; s < sendToRanks_.size(); ++s) {
      const auto b = static_cast<std::size_t>(sendOffsets_[s]);
      const auto e = static_cast<std::size_t>(sendOffsets_[s + 1]);
      for (std::size_t k = b; k < e; ++k) {
        sendBufF_[k] = xLocal[static_cast<std::size_t>(sendIdx_[k])];
      }
      comm_.send(std::span<const float>(sendBufF_.data() + b, e - b),
                 sendToRanks_[s], tag);
    }
  }
  const int nloc = static_cast<int>(xLocal.size());
  const auto rowProduct = [&](int i) {
    float acc = 0.0F;
    for (int k = mapped_.rowPtr[static_cast<std::size_t>(i)];
         k < mapped_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = mapped_.colIdx[static_cast<std::size_t>(k)];
      acc += mappedValsF_[static_cast<std::size_t>(k)] *
             (c < nloc ? xLocal[static_cast<std::size_t>(c)]
                       : xGhostF_[static_cast<std::size_t>(c - nloc)]);
    }
    yLocal[static_cast<std::size_t>(i)] = acc;
  };
  {
    obs::Span phase("sparse.spmv.interior");
    for (const int i : interiorRows_) rowProduct(i);
  }
  {
    obs::Span phase("sparse.spmv.halo_recv");
    for (std::size_t r = 0; r < recvFromRanks_.size(); ++r) {
      comm_.recv(
          std::span<float>(xGhostF_.data() +
                               static_cast<std::size_t>(recvOffsets_[r]),
                           static_cast<std::size_t>(recvCounts_[r])),
          recvFromRanks_[r], tag);
    }
  }
  obs::Span phase("sparse.spmv.boundary");
  for (const int i : boundaryRows_) rowProduct(i);
}

void DistCsrMatrix::spmvMulti(std::span<const double> xLocal,
                              std::span<double> yLocal, int nVec) const {
  LISI_CHECK(nVec >= 1, "DistCsrMatrix::spmvMulti: nVec must be >= 1");
  if (nVec == 1) {
    spmv(xLocal, yLocal);
    return;
  }
  LISI_CHECK(!colStarts_.empty(),
             "DistCsrMatrix::spmvMulti: rectangular operator constructed "
             "without colStarts");
  const auto nloc = static_cast<std::size_t>(localCols());
  const auto mloc = static_cast<std::size_t>(localRows());
  const auto nv = static_cast<std::size_t>(nVec);
  LISI_CHECK(xLocal.size() == nloc * nv,
             "DistCsrMatrix::spmvMulti: x size mismatch");
  LISI_CHECK(yLocal.size() == mloc * nv,
             "DistCsrMatrix::spmvMulti: y size mismatch");

  // One tag, one message per neighbour — same wire schedule as spmv(), the
  // payload just carries nVec values per ghost index (index-major), so the
  // blocked Krylov solvers amortize the halo latency across the batch.
  const int tag = spmvTags_[spmvRound_ % spmvTags_.size()];
  ++spmvRound_;
  obs::Span spmvSpan("sparse.spmv_multi");
  const long long bytesHigh =
      8LL * (static_cast<long long>(mapped_.nnz()) +
             static_cast<long long>(nv) *
                 (static_cast<long long>(sendIdx_.size()) +
                  static_cast<long long>(ghostCols_.size())));
  prec::noteBytesHigh(bytesHigh);
  obs::count("prec.bytes_high", bytesHigh);

  if (sendBufMulti_.size() < sendIdx_.size() * nv) {
    sendBufMulti_.resize(sendIdx_.size() * nv);
  }
  if (xGhostMulti_.size() < ghostCols_.size() * nv) {
    xGhostMulti_.resize(ghostCols_.size() * nv);
  }
  {
    obs::Span phase("sparse.spmv.halo_send");
    for (std::size_t s = 0; s < sendToRanks_.size(); ++s) {
      const auto b = static_cast<std::size_t>(sendOffsets_[s]);
      const auto e = static_cast<std::size_t>(sendOffsets_[s + 1]);
      for (std::size_t k = b; k < e; ++k) {
        const auto idx = static_cast<std::size_t>(sendIdx_[k]);
        for (std::size_t v = 0; v < nv; ++v) {
          sendBufMulti_[k * nv + v] = xLocal[v * nloc + idx];
        }
      }
      comm_.send(
          std::span<const double>(sendBufMulti_.data() + b * nv, (e - b) * nv),
          sendToRanks_[s], tag);
    }
  }
  // Reference kCsr accumulation per vector (bitwise identical per lane to
  // spmv); the tuned aux kernels stay single-vector — the multi path's win
  // is communication amortization, not local kernel shape.
  const auto rowProduct = [&](int i, std::size_t v) {
    double acc = 0.0;
    const std::size_t xBase = v * nloc;
    for (int k = mapped_.rowPtr[static_cast<std::size_t>(i)];
         k < mapped_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = mapped_.colIdx[static_cast<std::size_t>(k)];
      acc += mapped_.values[static_cast<std::size_t>(k)] *
             (c < static_cast<int>(nloc)
                  ? xLocal[xBase + static_cast<std::size_t>(c)]
                  : xGhostMulti_[static_cast<std::size_t>(
                                     c - static_cast<int>(nloc)) *
                                     nv +
                                 v]);
    }
    yLocal[v * mloc + static_cast<std::size_t>(i)] = acc;
  };
  {
    obs::Span phase("sparse.spmv.interior");
    for (const int i : interiorRows_) {
      for (std::size_t v = 0; v < nv; ++v) rowProduct(i, v);
    }
  }
  {
    obs::Span phase("sparse.spmv.halo_recv");
    for (std::size_t r = 0; r < recvFromRanks_.size(); ++r) {
      comm_.recv(std::span<double>(
                     xGhostMulti_.data() +
                         static_cast<std::size_t>(recvOffsets_[r]) * nv,
                     static_cast<std::size_t>(recvCounts_[r]) * nv),
                 recvFromRanks_[r], tag);
    }
  }
  obs::Span phase("sparse.spmv.boundary");
  for (const int i : boundaryRows_) {
    for (std::size_t v = 0; v < nv; ++v) rowProduct(i, v);
  }
}

CsrMatrix DistCsrMatrix::gatherToRoot(int root) const {
  std::vector<int> lens(static_cast<std::size_t>(local_.rows));
  for (int i = 0; i < local_.rows; ++i) {
    lens[static_cast<std::size_t>(i)] =
        local_.rowPtr[static_cast<std::size_t>(i) + 1] -
        local_.rowPtr[static_cast<std::size_t>(i)];
  }
  std::vector<int> allLens = comm_.gatherv(std::span<const int>(lens), root);
  std::vector<int> allCols =
      comm_.gatherv(std::span<const int>(local_.colIdx), root);
  std::vector<double> allVals =
      comm_.gatherv(std::span<const double>(local_.values), root);
  CsrMatrix global;
  if (comm_.rank() == root) {
    global.rows = globalRows_;
    global.cols = globalCols_;
    global.rowPtr.assign(static_cast<std::size_t>(globalRows_) + 1, 0);
    for (int i = 0; i < globalRows_; ++i) {
      global.rowPtr[static_cast<std::size_t>(i) + 1] =
          global.rowPtr[static_cast<std::size_t>(i)] +
          allLens[static_cast<std::size_t>(i)];
    }
    global.colIdx = std::move(allCols);
    global.values = std::move(allVals);
    global.check();
  }
  return global;
}

std::vector<double> DistCsrMatrix::gatherVectorToRoot(
    std::span<const double> xLocal, int root) const {
  LISI_CHECK(static_cast<int>(xLocal.size()) == localRows(),
             "gatherVectorToRoot: size mismatch");
  return comm_.gatherv(xLocal, root);
}

std::vector<double> DistCsrMatrix::scatterVectorFromRoot(
    std::span<const double> xGlobal, int root) const {
  const int p = comm_.size();
  std::vector<int> counts(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    counts[static_cast<std::size_t>(r)] =
        rowStarts_[static_cast<std::size_t>(r) + 1] -
        rowStarts_[static_cast<std::size_t>(r)];
  }
  if (comm_.rank() == root) {
    LISI_CHECK(static_cast<int>(xGlobal.size()) == globalRows_,
               "scatterVectorFromRoot: global size mismatch");
  }
  return comm_.scatterv(xGlobal, std::span<const int>(counts), root);
}

std::vector<double> DistCsrMatrix::localDiagonal() const {
  const int myStart = startRow();
  std::vector<double> d(static_cast<std::size_t>(local_.rows), 0.0);
  for (int i = 0; i < local_.rows; ++i) {
    for (int k = local_.rowPtr[static_cast<std::size_t>(i)];
         k < local_.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (local_.colIdx[static_cast<std::size_t>(k)] == myStart + i) {
        d[static_cast<std::size_t>(i)] +=
            local_.values[static_cast<std::size_t>(k)];
      }
    }
  }
  return d;
}

double distDot(const comm::Comm& comm, std::span<const double> x,
               std::span<const double> y) {
  LISI_CHECK(x.size() == y.size(), "distDot: local size mismatch");
  double local = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) local += x[i] * y[i];
  return comm.allreduceValue(local, comm::ReduceOp::kSum);
}

std::array<double, 2> distDot2(const comm::Comm& comm,
                               std::span<const double> x1,
                               std::span<const double> y1,
                               std::span<const double> x2,
                               std::span<const double> y2) {
  LISI_CHECK(x1.size() == y1.size() && x2.size() == y2.size(),
             "distDot2: local size mismatch");
  std::array<double, 2> local{0.0, 0.0};
  for (std::size_t i = 0; i < x1.size(); ++i) local[0] += x1[i] * y1[i];
  for (std::size_t i = 0; i < x2.size(); ++i) local[1] += x2[i] * y2[i];
  std::array<double, 2> global{0.0, 0.0};
  comm.allreduce(std::span<const double>(local),
                 std::span<double>(global), comm::ReduceOp::kSum);
  return global;
}

double distNorm2(const comm::Comm& comm, std::span<const double> x) {
  return std::sqrt(distDot(comm, x, x));
}

double distNormInf(const comm::Comm& comm, std::span<const double> x) {
  double local = 0.0;
  for (double v : x) local = std::max(local, std::abs(v));
  return comm.allreduceValue(local, comm::ReduceOp::kMax);
}

PendingDots distDotsBegin(const comm::Comm& comm,
                          std::span<const DotArgs> dots) {
  PendingDots pending;
  pending.buf_ = std::make_unique<PendingDots::Buf>();
  auto& buf = *pending.buf_;
  buf.local.resize(dots.size());
  buf.global.resize(dots.size());
  for (std::size_t lane = 0; lane < dots.size(); ++lane) {
    const DotArgs& d = dots[lane];
    LISI_CHECK(d.x.size() == d.y.size(), "distDotsBegin: local size mismatch");
    // Identical summation loop to distDot, so each lane's partial is
    // bitwise what the blocking call would feed the reduction.
    double local = 0.0;
    for (std::size_t i = 0; i < d.x.size(); ++i) local += d.x[i] * d.y[i];
    buf.local[lane] = local;
  }
  pending.handle_ = comm.iallreduce(std::span<const double>(buf.local),
                                    std::span<double>(buf.global),
                                    comm::ReduceOp::kSum);
  return pending;
}

std::span<const double> distDotsEnd(PendingDots& pending) {
  LISI_CHECK(pending.valid(), "distDotsEnd: no batch in flight");
  pending.handle_.wait();
  return std::span<const double>(pending.buf_->global);
}

PendingDots distDotBegin(const comm::Comm& comm, std::span<const double> x,
                         std::span<const double> y) {
  const DotArgs lane{x, y};
  return distDotsBegin(comm, std::span<const DotArgs>(&lane, 1));
}

double distDotEnd(PendingDots& pending) {
  const std::span<const double> r = distDotsEnd(pending);
  LISI_CHECK(r.size() == 1, "distDotEnd: batch is not single-lane");
  return r[0];
}

PendingDots distDot2Begin(const comm::Comm& comm, std::span<const double> x1,
                          std::span<const double> y1,
                          std::span<const double> x2,
                          std::span<const double> y2) {
  const std::array<DotArgs, 2> lanes{DotArgs{x1, y1}, DotArgs{x2, y2}};
  return distDotsBegin(comm, std::span<const DotArgs>(lanes));
}

std::array<double, 2> distDot2End(PendingDots& pending) {
  const std::span<const double> r = distDotsEnd(pending);
  LISI_CHECK(r.size() == 2, "distDot2End: batch is not two-lane");
  return {r[0], r[1]};
}

}  // namespace lisi::sparse
