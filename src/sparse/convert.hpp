// Conversions between sparse storage formats.
//
// LISI's setupMatrix is, per §7.2, "an adapter to convert the input data
// format to the libraries' internal data structure and frees up users from
// doing it by their own".  CSR is the hub format: every format converts to
// and from CSR, giving all-pairs conversion in at most two hops.  All
// converters produce canonical CSR (sorted columns, duplicates summed).
#pragma once

#include "sparse/formats.hpp"

namespace lisi::sparse {

/// Assemble COO triplets (duplicates summed) into canonical CSR.
[[nodiscard]] CsrMatrix cooToCsr(const CooMatrix& coo);

/// Expand CSR into COO triplets (row-major order).
[[nodiscard]] CooMatrix csrToCoo(const CsrMatrix& csr);

/// Column-compress a CSR matrix (equivalently: CSR of the transpose).
[[nodiscard]] CscMatrix csrToCsc(const CsrMatrix& csr);

/// Row-compress a CSC matrix.
[[nodiscard]] CsrMatrix cscToCsr(const CscMatrix& csc);

/// Convert square CSR to MSR.  Missing diagonal entries are stored as 0 in
/// the MSR diagonal section (MSR always materializes the diagonal).
[[nodiscard]] MsrMatrix csrToMsr(const CsrMatrix& csr);

/// Convert MSR back to canonical CSR.  Structurally-zero diagonal slots
/// (value exactly 0.0 with no explicit CSR entry originally) are emitted as
/// explicit zeros; callers needing the original pattern should drop zeros.
[[nodiscard]] CsrMatrix msrToCsr(const MsrMatrix& msr);

/// Convert CSR to VBR with the given row/column partitions
/// (rpntr/cpntr-style boundary arrays).  Any block containing at least one
/// nonzero is stored dense.
[[nodiscard]] VbrMatrix csrToVbr(const CsrMatrix& csr,
                                 const std::vector<int>& rowPart,
                                 const std::vector<int>& colPart);

/// Convert CSR to VBR with a uniform block size (last block may be smaller).
[[nodiscard]] VbrMatrix csrToVbrUniform(const CsrMatrix& csr, int blockSize);

/// Flatten VBR to canonical CSR; exact zeros inside stored blocks are kept
/// (they are part of the VBR structure).
[[nodiscard]] CsrMatrix vbrToCsr(const VbrMatrix& vbr);

/// Drop explicit zeros from a CSR matrix.
[[nodiscard]] CsrMatrix dropZeros(const CsrMatrix& csr, double tol = 0.0);

/// Convert canonical CSR to SELL-C-σ.  Within each σ-window rows are sorted
/// by descending length (stable, so equal-length rows keep CSR order); each
/// chunk is padded to its widest lane.  `srcIdx`, when non-null, receives
/// one entry per SELL slot: the CSR value index the slot mirrors, or -1 for
/// padding — the map a value-only refresh replays without rebuilding.
[[nodiscard]] SellCMatrix csrToSellC(const CsrMatrix& csr, int chunk,
                                     int sigma,
                                     std::vector<int>* srcIdx = nullptr);

/// SELL-C-σ over a subset of CSR rows (`rowList`, e.g. a halo plan's
/// interior or boundary rows).  Lane row ids refer to the original CSR row
/// numbers; rows not listed are simply absent.  srcIdx as in csrToSellC.
[[nodiscard]] SellCMatrix csrRowsToSellC(const CsrMatrix& csr,
                                         const std::vector<int>& rowList,
                                         int chunk, int sigma,
                                         std::vector<int>* srcIdx = nullptr);

/// Flatten SELL-C-σ back to canonical CSR (padding slots dropped).  When
/// the SELL matrix covers a row subset, absent rows come back empty.
[[nodiscard]] CsrMatrix sellCToCsr(const SellCMatrix& sell);

}  // namespace lisi::sparse
