#include "sparse/generate.hpp"

#include <cmath>
#include <utility>

#include "sparse/convert.hpp"
#include "sparse/ops.hpp"

namespace lisi::sparse {

CsrMatrix randomCsr(int rows, int cols, int nnzPerRow, Rng& rng) {
  LISI_CHECK(rows >= 0 && cols > 0, "randomCsr: bad dimensions");
  LISI_CHECK(nnzPerRow >= 0, "randomCsr: negative nnzPerRow");
  CooMatrix coo;
  coo.rows = rows;
  coo.cols = cols;
  for (int i = 0; i < rows; ++i) {
    for (int k = 0; k < nnzPerRow; ++k) {
      coo.rowIdx.push_back(i);
      coo.colIdx.push_back(static_cast<int>(rng.below(static_cast<std::uint64_t>(cols))));
      coo.values.push_back(rng.uniform(-1.0, 1.0));
    }
  }
  return cooToCsr(coo);
}

CsrMatrix randomDiagDominant(int n, int nnzPerRow, double dominance, Rng& rng) {
  CsrMatrix a = randomCsr(n, n, nnzPerRow, rng);
  // Remove any random diagonal contributions, then set the diagonal to
  // strictly dominate the row.
  CooMatrix coo = csrToCoo(a);
  CooMatrix clean;
  clean.rows = n;
  clean.cols = n;
  std::vector<double> rowAbs(static_cast<std::size_t>(n), 0.0);
  for (std::size_t k = 0; k < coo.values.size(); ++k) {
    if (coo.rowIdx[k] == coo.colIdx[k]) continue;
    clean.rowIdx.push_back(coo.rowIdx[k]);
    clean.colIdx.push_back(coo.colIdx[k]);
    clean.values.push_back(coo.values[k]);
    rowAbs[static_cast<std::size_t>(coo.rowIdx[k])] += std::abs(coo.values[k]);
  }
  for (int i = 0; i < n; ++i) {
    clean.rowIdx.push_back(i);
    clean.colIdx.push_back(i);
    clean.values.push_back(rowAbs[static_cast<std::size_t>(i)] + dominance);
  }
  return cooToCsr(clean);
}

CsrMatrix randomSpd(int n, int nnzPerRow, Rng& rng) {
  CsrMatrix r = randomCsr(n, n, nnzPerRow, rng);
  CsrMatrix rt = transpose(r);
  // S = R + R' (symmetric), then add a dominant diagonal.
  CooMatrix coo = csrToCoo(r);
  CooMatrix coot = csrToCoo(rt);
  CooMatrix sum;
  sum.rows = n;
  sum.cols = n;
  auto append = [&sum](const CooMatrix& m) {
    sum.rowIdx.insert(sum.rowIdx.end(), m.rowIdx.begin(), m.rowIdx.end());
    sum.colIdx.insert(sum.colIdx.end(), m.colIdx.begin(), m.colIdx.end());
    sum.values.insert(sum.values.end(), m.values.begin(), m.values.end());
  };
  append(coo);
  append(coot);
  CsrMatrix s = cooToCsr(sum);
  std::vector<double> rowAbs(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = s.rowPtr[static_cast<std::size_t>(i)];
         k < s.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (s.colIdx[static_cast<std::size_t>(k)] != i) {
        rowAbs[static_cast<std::size_t>(i)] +=
            std::abs(s.values[static_cast<std::size_t>(k)]);
      }
    }
  }
  CooMatrix withDiag = csrToCoo(s);
  for (int i = 0; i < n; ++i) {
    withDiag.rowIdx.push_back(i);
    withDiag.colIdx.push_back(i);
    withDiag.values.push_back(rowAbs[static_cast<std::size_t>(i)] + 1.0);
  }
  return cooToCsr(withDiag);
}

CsrMatrix laplacian1d(int n) {
  LISI_CHECK(n >= 1, "laplacian1d: n must be >= 1");
  CooMatrix coo;
  coo.rows = n;
  coo.cols = n;
  for (int i = 0; i < n; ++i) {
    coo.rowIdx.push_back(i);
    coo.colIdx.push_back(i);
    coo.values.push_back(2.0);
    if (i > 0) {
      coo.rowIdx.push_back(i);
      coo.colIdx.push_back(i - 1);
      coo.values.push_back(-1.0);
    }
    if (i + 1 < n) {
      coo.rowIdx.push_back(i);
      coo.colIdx.push_back(i + 1);
      coo.values.push_back(-1.0);
    }
  }
  return cooToCsr(coo);
}

CsrMatrix laplacian2d(int nx, int ny) {
  LISI_CHECK(nx >= 1 && ny >= 1, "laplacian2d: grid must be >= 1x1");
  const int n = nx * ny;
  CooMatrix coo;
  coo.rows = n;
  coo.cols = n;
  auto id = [nx](int ix, int iy) { return iy * nx + ix; };
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const int row = id(ix, iy);
      coo.rowIdx.push_back(row);
      coo.colIdx.push_back(row);
      coo.values.push_back(4.0);
      const int nbr[4][2] = {{ix - 1, iy}, {ix + 1, iy}, {ix, iy - 1}, {ix, iy + 1}};
      for (const auto& nb : nbr) {
        if (nb[0] < 0 || nb[0] >= nx || nb[1] < 0 || nb[1] >= ny) continue;
        coo.rowIdx.push_back(row);
        coo.colIdx.push_back(id(nb[0], nb[1]));
        coo.values.push_back(-1.0);
      }
    }
  }
  return cooToCsr(coo);
}

CsrMatrix laplacian2d9(int nx, int ny) {
  LISI_CHECK(nx >= 1 && ny >= 1, "laplacian2d9: grid must be >= 1x1");
  const int n = nx * ny;
  CooMatrix coo;
  coo.rows = n;
  coo.cols = n;
  auto id = [nx](int ix, int iy) { return iy * nx + ix; };
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const int row = id(ix, iy);
      coo.rowIdx.push_back(row);
      coo.colIdx.push_back(row);
      coo.values.push_back(8.0 / 3.0);
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const int jx = ix + dx;
          const int jy = iy + dy;
          if (jx < 0 || jx >= nx || jy < 0 || jy >= ny) continue;
          coo.rowIdx.push_back(row);
          coo.colIdx.push_back(id(jx, jy));
          coo.values.push_back(-1.0 / 3.0);
        }
      }
    }
  }
  return cooToCsr(coo);
}

CsrMatrix blockLaplacian2d(int nx, int ny, int bs) {
  LISI_CHECK(bs >= 1, "blockLaplacian2d: block size must be >= 1");
  const CsrMatrix l = laplacian2d(nx, ny);
  // Dense SPD coupling block D = I + 0.1 * ones: eigenvalues {1, 1 + bs/10},
  // so kron(L, D) inherits positive definiteness from L.
  CooMatrix coo;
  coo.rows = l.rows * bs;
  coo.cols = l.cols * bs;
  for (int i = 0; i < l.rows; ++i) {
    for (int k = l.rowPtr[static_cast<std::size_t>(i)];
         k < l.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = l.colIdx[static_cast<std::size_t>(k)];
      const double lij = l.values[static_cast<std::size_t>(k)];
      for (int bi = 0; bi < bs; ++bi) {
        for (int bj = 0; bj < bs; ++bj) {
          const double d = (bi == bj ? 1.1 : 0.1);
          coo.rowIdx.push_back(i * bs + bi);
          coo.colIdx.push_back(j * bs + bj);
          coo.values.push_back(lij * d);
        }
      }
    }
  }
  return cooToCsr(coo);
}

CsrMatrix permuteSymmetric(const CsrMatrix& a, Rng& rng) {
  a.check();
  LISI_CHECK(a.rows == a.cols, "permuteSymmetric: matrix must be square");
  std::vector<int> perm(static_cast<std::size_t>(a.rows));
  for (int i = 0; i < a.rows; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (int i = a.rows - 1; i > 0; --i) {  // Fisher-Yates with the repo Rng
    const int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  CooMatrix coo;
  coo.rows = a.rows;
  coo.cols = a.cols;
  for (int i = 0; i < a.rows; ++i) {
    for (int k = a.rowPtr[static_cast<std::size_t>(i)];
         k < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      coo.rowIdx.push_back(perm[static_cast<std::size_t>(i)]);
      coo.colIdx.push_back(
          perm[static_cast<std::size_t>(a.colIdx[static_cast<std::size_t>(k)])]);
      coo.values.push_back(a.values[static_cast<std::size_t>(k)]);
    }
  }
  return cooToCsr(coo);
}

}  // namespace lisi::sparse
