#include "sparse/formats.hpp"

#include <algorithm>
#include <numeric>

#include "support/string_util.hpp"

namespace lisi::sparse {

const char* sparseStructName(SparseStruct s) {
  switch (s) {
    case SparseStruct::kCsr: return "CSR";
    case SparseStruct::kCoo: return "COO";
    case SparseStruct::kMsr: return "MSR";
    case SparseStruct::kVbr: return "VBR";
    case SparseStruct::kFem: return "FEM";
    case SparseStruct::kCsc: return "CSC";
  }
  return "?";
}

SparseStruct sparseStructFromName(const std::string& name) {
  const std::string t = toLower(trim(name));
  if (t == "csr") return SparseStruct::kCsr;
  if (t == "coo") return SparseStruct::kCoo;
  if (t == "msr") return SparseStruct::kMsr;
  if (t == "vbr") return SparseStruct::kVbr;
  if (t == "fem") return SparseStruct::kFem;
  if (t == "csc") return SparseStruct::kCsc;
  throw Error("unknown sparse format name: '" + name + "'");
}

void CooMatrix::check() const {
  LISI_CHECK(rows >= 0 && cols >= 0, "COO: negative dimensions");
  LISI_CHECK(rowIdx.size() == values.size() && colIdx.size() == values.size(),
             "COO: index/value array length mismatch");
  for (std::size_t k = 0; k < values.size(); ++k) {
    LISI_CHECK(rowIdx[k] >= 0 && rowIdx[k] < rows, "COO: row index out of range");
    LISI_CHECK(colIdx[k] >= 0 && colIdx[k] < cols, "COO: col index out of range");
  }
}

template <class V>
void CsrMatrixT<V>::check() const {
  LISI_CHECK(rows >= 0 && cols >= 0, "CSR: negative dimensions");
  LISI_CHECK(rowPtr.size() == static_cast<std::size_t>(rows) + 1,
             "CSR: rowPtr length != rows+1");
  LISI_CHECK(rowPtr.front() == 0, "CSR: rowPtr[0] != 0");
  LISI_CHECK(colIdx.size() == values.size(), "CSR: colIdx/values length mismatch");
  LISI_CHECK(rowPtr.back() == static_cast<int>(values.size()),
             "CSR: rowPtr[rows] != nnz");
  for (int i = 0; i < rows; ++i) {
    LISI_CHECK(rowPtr[static_cast<std::size_t>(i)] <=
                   rowPtr[static_cast<std::size_t>(i) + 1],
               "CSR: rowPtr not monotone");
  }
  for (int c : colIdx) {
    LISI_CHECK(c >= 0 && c < cols, "CSR: col index out of range");
  }
}

template <class V>
void CsrMatrixT<V>::canonicalize() {
  std::vector<int> newPtr(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<int> newCol;
  std::vector<V> newVal;
  newCol.reserve(colIdx.size());
  newVal.reserve(values.size());
  std::vector<std::pair<int, V>> row;
  for (int i = 0; i < rows; ++i) {
    row.clear();
    for (int k = rowPtr[static_cast<std::size_t>(i)];
         k < rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      row.emplace_back(colIdx[static_cast<std::size_t>(k)],
                       values[static_cast<std::size_t>(k)]);
    }
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (!newCol.empty() &&
          static_cast<int>(newCol.size()) > newPtr[static_cast<std::size_t>(i)] &&
          newCol.back() == row[k].first) {
        newVal.back() += row[k].second;  // merge duplicate
      } else {
        newCol.push_back(row[k].first);
        newVal.push_back(row[k].second);
      }
    }
    newPtr[static_cast<std::size_t>(i) + 1] = static_cast<int>(newCol.size());
  }
  rowPtr = std::move(newPtr);
  colIdx = std::move(newCol);
  values = std::move(newVal);
}

template <class V>
bool CsrMatrixT<V>::isCanonical() const {
  for (int i = 0; i < rows; ++i) {
    for (int k = rowPtr[static_cast<std::size_t>(i)] + 1;
         k < rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (colIdx[static_cast<std::size_t>(k) - 1] >=
          colIdx[static_cast<std::size_t>(k)]) {
        return false;
      }
    }
  }
  return true;
}

template <class V>
void CscMatrixT<V>::check() const {
  LISI_CHECK(rows >= 0 && cols >= 0, "CSC: negative dimensions");
  LISI_CHECK(colPtr.size() == static_cast<std::size_t>(cols) + 1,
             "CSC: colPtr length != cols+1");
  LISI_CHECK(colPtr.front() == 0, "CSC: colPtr[0] != 0");
  LISI_CHECK(rowIdx.size() == values.size(), "CSC: rowIdx/values length mismatch");
  LISI_CHECK(colPtr.back() == static_cast<int>(values.size()),
             "CSC: colPtr[cols] != nnz");
  for (int j = 0; j < cols; ++j) {
    LISI_CHECK(colPtr[static_cast<std::size_t>(j)] <=
                   colPtr[static_cast<std::size_t>(j) + 1],
               "CSC: colPtr not monotone");
  }
  for (int r : rowIdx) {
    LISI_CHECK(r >= 0 && r < rows, "CSC: row index out of range");
  }
}

void MsrMatrix::check() const {
  LISI_CHECK(n >= 0, "MSR: negative dimension");
  LISI_CHECK(bindx.size() >= static_cast<std::size_t>(n) + 1,
             "MSR: bindx shorter than n+1");
  LISI_CHECK(val.size() == bindx.size(), "MSR: val/bindx length mismatch");
  LISI_CHECK(bindx[0] == n + 1, "MSR: bindx[0] != n+1");
  for (int i = 0; i < n; ++i) {
    LISI_CHECK(bindx[static_cast<std::size_t>(i)] <=
                   bindx[static_cast<std::size_t>(i) + 1],
               "MSR: bindx row pointers not monotone");
  }
  LISI_CHECK(bindx[static_cast<std::size_t>(n)] ==
                 static_cast<int>(bindx.size()),
             "MSR: bindx[n] != total length");
  for (std::size_t k = static_cast<std::size_t>(n) + 1; k < bindx.size(); ++k) {
    LISI_CHECK(bindx[k] >= 0 && bindx[k] < n, "MSR: col index out of range");
  }
}

template <class V>
void VbrMatrixT<V>::check() const {
  const int nrb = numRowBlocks();
  const int ncb = numColBlocks();
  LISI_CHECK(nrb >= 0 && ncb >= 0, "VBR: negative block counts");
  if (nrb == 0) return;
  LISI_CHECK(rpntr[0] == 0 && cpntr[0] == 0, "VBR: partitions must start at 0");
  for (int b = 0; b < nrb; ++b) {
    LISI_CHECK(rpntr[static_cast<std::size_t>(b)] <
                   rpntr[static_cast<std::size_t>(b) + 1],
               "VBR: empty row block");
  }
  for (int b = 0; b < ncb; ++b) {
    LISI_CHECK(cpntr[static_cast<std::size_t>(b)] <
                   cpntr[static_cast<std::size_t>(b) + 1],
               "VBR: empty col block");
  }
  LISI_CHECK(bpntr.size() == static_cast<std::size_t>(nrb) + 1,
             "VBR: bpntr length != nRowBlocks+1");
  LISI_CHECK(bpntr[0] == 0, "VBR: bpntr[0] != 0");
  const int nblocks = bpntr[static_cast<std::size_t>(nrb)];
  LISI_CHECK(static_cast<int>(bindx.size()) == nblocks,
             "VBR: bindx length != total blocks");
  LISI_CHECK(indx.size() == static_cast<std::size_t>(nblocks) + 1,
             "VBR: indx length != blocks+1");
  LISI_CHECK(indx[0] == 0, "VBR: indx[0] != 0");
  LISI_CHECK(indx[static_cast<std::size_t>(nblocks)] ==
                 static_cast<int>(val.size()),
             "VBR: indx end != val length");
  for (int br = 0; br < nrb; ++br) {
    const int rdim = rpntr[static_cast<std::size_t>(br) + 1] -
                     rpntr[static_cast<std::size_t>(br)];
    for (int b = bpntr[static_cast<std::size_t>(br)];
         b < bpntr[static_cast<std::size_t>(br) + 1]; ++b) {
      const int bc = bindx[static_cast<std::size_t>(b)];
      LISI_CHECK(bc >= 0 && bc < ncb, "VBR: block col index out of range");
      const int cdim = cpntr[static_cast<std::size_t>(bc) + 1] -
                       cpntr[static_cast<std::size_t>(bc)];
      LISI_CHECK(indx[static_cast<std::size_t>(b) + 1] -
                         indx[static_cast<std::size_t>(b)] ==
                     rdim * cdim,
                 "VBR: block value extent mismatch");
    }
  }
}

template <class V>
void SellCMatrixT<V>::check() const {
  LISI_CHECK(rows >= 0 && cols >= 0, "SELL: negative dimensions");
  LISI_CHECK(chunk >= 1, "SELL: chunk must be >= 1");
  LISI_CHECK(sigma >= 1, "SELL: sigma must be >= 1");
  const int nc = numChunks();
  LISI_CHECK(nc * chunk >= rows, "SELL: chunks do not cover all rows");
  LISI_CHECK(rowIds.size() == static_cast<std::size_t>(nc) * chunk,
             "SELL: rowIds length != numChunks*chunk");
  LISI_CHECK(rowLen.size() == rowIds.size(),
             "SELL: rowLen length != rowIds length");
  LISI_CHECK(chunkPtr.empty() || chunkPtr[0] == 0, "SELL: chunkPtr[0] != 0");
  LISI_CHECK(colIdx.size() == static_cast<std::size_t>(paddedSize()),
             "SELL: colIdx length != chunkPtr end");
  LISI_CHECK(values.size() == colIdx.size(),
             "SELL: values length != colIdx length");
  std::vector<char> seen(static_cast<std::size_t>(rows), 0);
  for (int c = 0; c < nc; ++c) {
    const int begin = chunkPtr[static_cast<std::size_t>(c)];
    const int end = chunkPtr[static_cast<std::size_t>(c) + 1];
    LISI_CHECK(begin <= end && (end - begin) % chunk == 0,
               "SELL: chunk extent not a multiple of chunk size");
    const int width = (end - begin) / chunk;
    for (int j = 0; j < chunk; ++j) {
      const std::size_t lane = static_cast<std::size_t>(c) * chunk + j;
      const int row = rowIds[lane];
      const int len = rowLen[lane];
      if (row < 0) {  // padding lane past the last row
        LISI_CHECK(len == 0, "SELL: padding lane with entries");
        continue;
      }
      LISI_CHECK(row < rows, "SELL: row id out of range");
      LISI_CHECK(!seen[static_cast<std::size_t>(row)],
                 "SELL: row stored in two lanes");
      seen[static_cast<std::size_t>(row)] = 1;
      LISI_CHECK(len >= 0 && len <= width, "SELL: lane longer than chunk width");
      for (int k = 0; k < len; ++k) {
        const int col = colIdx[static_cast<std::size_t>(begin + k * chunk + j)];
        LISI_CHECK(col >= 0 && col < cols, "SELL: column index out of range");
      }
    }
  }
  // Note: not every row in [0, rows) need appear — csrRowsToSellC builds
  // SELL storage over a row subset (e.g. a halo plan's boundary rows).
}

template struct CsrMatrixT<double>;
template struct CsrMatrixT<float>;
template struct CscMatrixT<double>;
template struct CscMatrixT<float>;
template struct VbrMatrixT<double>;
template struct VbrMatrixT<float>;
template struct SellCMatrixT<double>;
template struct SellCMatrixT<float>;

}  // namespace lisi::sparse
