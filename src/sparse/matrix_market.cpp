#include "sparse/matrix_market.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "sparse/convert.hpp"
#include "support/string_util.hpp"

namespace lisi::sparse {

void writeMatrixMarket(std::ostream& os, const CsrMatrix& a) {
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << a.rows << ' ' << a.cols << ' ' << a.nnz() << '\n';
  os << std::setprecision(17);
  for (int i = 0; i < a.rows; ++i) {
    for (int k = a.rowPtr[static_cast<std::size_t>(i)];
         k < a.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
      os << (i + 1) << ' ' << (a.colIdx[static_cast<std::size_t>(k)] + 1) << ' '
         << a.values[static_cast<std::size_t>(k)] << '\n';
    }
  }
}

void writeMatrixMarket(const std::string& path, const CsrMatrix& a) {
  std::ofstream os(path);
  LISI_CHECK(os.good(), "cannot open for write: " + path);
  writeMatrixMarket(os, a);
  LISI_CHECK(os.good(), "write failed: " + path);
}

CsrMatrix readMatrixMarket(std::istream& is) {
  std::string line;
  LISI_CHECK(static_cast<bool>(std::getline(is, line)), "empty MatrixMarket stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  LISI_CHECK(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  LISI_CHECK(toLower(object) == "matrix", "not a matrix file");
  LISI_CHECK(toLower(format) == "coordinate", "only coordinate format supported");
  const std::string f = toLower(field);
  LISI_CHECK(f == "real" || f == "integer",
             "only real/integer MatrixMarket fields supported");
  const std::string sym = toLower(symmetry);
  LISI_CHECK(sym == "general" || sym == "symmetric",
             "only general/symmetric symmetry supported");

  // Skip comments.
  while (std::getline(is, line)) {
    const std::string t = trim(line);
    if (!t.empty() && t[0] != '%') break;
  }
  std::istringstream sizes(line);
  int rows = 0;
  int cols = 0;
  long long nnz = 0;
  sizes >> rows >> cols >> nnz;
  LISI_CHECK(rows > 0 && cols > 0 && nnz >= 0, "bad MatrixMarket size line");

  CooMatrix coo;
  coo.rows = rows;
  coo.cols = cols;
  coo.rowIdx.reserve(static_cast<std::size_t>(nnz));
  coo.colIdx.reserve(static_cast<std::size_t>(nnz));
  coo.values.reserve(static_cast<std::size_t>(nnz));
  for (long long k = 0; k < nnz; ++k) {
    int i = 0;
    int j = 0;
    double v = 0.0;
    is >> i >> j >> v;
    LISI_CHECK(static_cast<bool>(is), "truncated MatrixMarket entries");
    coo.rowIdx.push_back(i - 1);
    coo.colIdx.push_back(j - 1);
    coo.values.push_back(v);
    if (sym == "symmetric" && i != j) {
      coo.rowIdx.push_back(j - 1);
      coo.colIdx.push_back(i - 1);
      coo.values.push_back(v);
    }
  }
  return cooToCsr(coo);
}

CsrMatrix readMatrixMarket(const std::string& path) {
  std::ifstream is(path);
  LISI_CHECK(is.good(), "cannot open for read: " + path);
  return readMatrixMarket(is);
}

void writeMatrixMarketVector(const std::string& path,
                             std::span<const double> v) {
  std::ofstream os(path);
  LISI_CHECK(os.good(), "cannot open for write: " + path);
  os << "%%MatrixMarket matrix array real general\n";
  os << v.size() << " 1\n";
  os << std::setprecision(17);
  for (double x : v) os << x << '\n';
  LISI_CHECK(os.good(), "write failed: " + path);
}

std::vector<double> readMatrixMarketVector(const std::string& path) {
  std::ifstream is(path);
  LISI_CHECK(is.good(), "cannot open for read: " + path);
  std::string line;
  LISI_CHECK(static_cast<bool>(std::getline(is, line)), "empty vector file");
  LISI_CHECK(line.rfind("%%MatrixMarket", 0) == 0, "missing banner");
  while (std::getline(is, line)) {
    const std::string t = trim(line);
    if (!t.empty() && t[0] != '%') break;
  }
  std::istringstream sizes(line);
  long long n = 0;
  int one = 0;
  sizes >> n >> one;
  LISI_CHECK(n >= 0 && one == 1, "bad vector size line");
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    is >> x;
    LISI_CHECK(static_cast<bool>(is), "truncated vector entries");
  }
  return v;
}

}  // namespace lisi::sparse
