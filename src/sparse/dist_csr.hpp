// Block-row distributed sparse matrix with halo exchange.
//
// Every parallel solver package in this repository stores its operator this
// way: rank r owns a contiguous range of global rows (§5.4 block row
// partitioning) as a local CSR block whose column indices are *global*.
// For y = A*x with x partitioned conformally, the off-process x entries a
// rank's columns touch (its "ghosts") are fetched from their owners through
// a communication plan built once at construction.
//
// The plan owns all per-spmv scratch (pack buffer, extended x) and a
// one-time split of the local rows into *interior* rows (touch no ghost
// column) and *boundary* rows, so spmv() performs no heap allocation and
// overlaps the ghost exchange with the interior computation.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "sparse/formats.hpp"
#include "sparse/partition.hpp"

namespace lisi::sparse {

/// Local SpMV kernel family for the owned block — the autotuner's
/// per-structure decision (DESIGN.md "Structure-fingerprint-keyed
/// autotuner").  kCsr is byte-for-byte the original reference path.
enum class LocalKernel {
  kCsr,          ///< reference CSR row loop (the default)
  kCsrPrefetch,  ///< CSR with one-row-ahead software prefetch of x gathers
  kSellC,        ///< SELL-C-σ storage over the interior/boundary row lists
  kBlock,        ///< uniform dense blocks on the VBR substrate
};

/// Human-readable kernel name ("csr", "csr_prefetch", ...).
const char* localKernelName(LocalKernel k);

/// A complete tuned SpMV configuration: which local kernel runs the owned
/// block and whether the ghost exchange overlaps the interior computation
/// (true) or completes eagerly before one natural-order sweep (false).
struct SpmvConfig {
  LocalKernel kernel = LocalKernel::kCsr;
  bool overlapHalo = true;
  int blockSize = 0;  ///< kBlock only: uniform block edge (>= 2)
  friend bool operator==(const SpmvConfig&, const SpmvConfig&) = default;
};

/// Distributed CSR matrix (square operators distribute x like rows; spmv
/// requires globalRows == globalCols).
class DistCsrMatrix {
 public:
  /// Wrap this rank's block of rows [startRow, startRow + local.rows).
  /// `local.cols` must equal `globalCols` (column indices are global).
  /// Collective: all ranks of `comm` must construct together.
  ///
  /// For square operators the input vector of spmv() is partitioned like
  /// the rows.  Rectangular operators (multigrid transfer operators, for
  /// example) must pass `colStarts`: the ownership boundaries of the input
  /// vector (size comm.size()+1, covering [0, globalCols]).
  DistCsrMatrix(comm::Comm comm, int globalRows, int globalCols, int startRow,
                CsrMatrix local, std::vector<int> colStarts = {});

  /// Scatter a replicated global matrix by near-even block rows (rank 0's
  /// copy is authoritative).  Collective.
  static DistCsrMatrix scatterFromRoot(comm::Comm comm, const CsrMatrix& global,
                                       int root = 0);

  [[nodiscard]] int globalRows() const { return globalRows_; }
  [[nodiscard]] int globalCols() const { return globalCols_; }
  [[nodiscard]] int startRow() const;
  [[nodiscard]] int localRows() const { return local_.rows; }
  [[nodiscard]] long long globalNnz() const;
  /// This rank's rows with *global* column indices.
  [[nodiscard]] const CsrMatrix& localBlock() const { return local_; }
  [[nodiscard]] const comm::Comm& comm() const { return comm_; }
  /// Row-ownership boundaries across ranks (size comm.size()+1).
  [[nodiscard]] const std::vector<int>& rowStarts() const { return rowStarts_; }
  /// Input-vector ownership boundaries (== rowStarts() for square operators).
  [[nodiscard]] const std::vector<int>& colStarts() const { return colStarts_; }
  /// Number of input-vector entries owned by this rank.
  [[nodiscard]] int localCols() const;

  /// Refresh the numerical values in place, keeping the halo-exchange plan,
  /// ghost column map, and all scratch.  `local` must be canonical (sorted
  /// columns, merged duplicates) and carry exactly the sparsity structure of
  /// localBlock(); anything else throws.  Purely local: no communication and
  /// no allocation — this is the same-pattern fast path of the operator
  /// change contract (DESIGN.md "Operator change contract").  Any tuned
  /// kernel aux storage (SELL/block) is refreshed positionally in the same
  /// pass.
  void updateValues(const CsrMatrix& local);

  /// y = A*x; x is this rank's piece under colStarts(), y under rowStarts().
  /// Collective.
  void spmv(std::span<const double> xLocal, std::span<double> yLocal) const;

  /// y = A*x through the float32 value mirror: the same halo plan, tag
  /// rotation, and interior/boundary overlap as spmv(), but the matrix
  /// values, the packed halo payload, and the accumulation all run in
  /// float32 — half the value bandwidth.  The mirror (values + float
  /// scratch) is built lazily on first use and invalidated by updateValues;
  /// the index structure is shared with the double path.  Intended for the
  /// error-correction inner kernels of the mixed-precision backends, always
  /// wrapped in float64 refinement.  Collective: all ranks must call the
  /// same variant (spmv vs spmvFloat) together.
  void spmvFloat(std::span<const float> xLocal, std::span<float> yLocal) const;

  /// Y = A*X for `nVec` right-hand vectors stored contiguously
  /// vector-major: vector v occupies x[v*localCols(), (v+1)*localCols())
  /// and y[v*localRows(), (v+1)*localRows()).  ONE halo-exchange round
  /// moves every vector's ghost entries (nVec values per ghost index,
  /// index-major on the wire), so the per-spmv message count — the latency
  /// term that dominates small systems — is paid once instead of nVec
  /// times.  Each vector's rows accumulate in the reference kCsr order, so
  /// lane v is bitwise identical to spmv() on that vector.  Collective;
  /// all ranks must pass the same nVec.  nVec == 1 delegates to spmv().
  void spmvMulti(std::span<const double> xLocal, std::span<double> yLocal,
                 int nVec) const;

  /// Gather the whole matrix onto `root` (empty matrix elsewhere).
  /// Used by the direct-solver package.  Collective.
  [[nodiscard]] CsrMatrix gatherToRoot(int root = 0) const;

  /// Gather a conformally partitioned vector onto `root`.  Collective.
  [[nodiscard]] std::vector<double> gatherVectorToRoot(
      std::span<const double> xLocal, int root = 0) const;

  /// Scatter a global vector on `root` into conformal local pieces.
  /// Collective.
  [[nodiscard]] std::vector<double> scatterVectorFromRoot(
      std::span<const double> xGlobal, int root = 0) const;

  /// The diagonal part of this rank's rows (global diagonal restricted to
  /// the owned range).
  [[nodiscard]] std::vector<double> localDiagonal() const;

  /// Number of ghost entries this rank pulls per spmv (plan statistics).
  [[nodiscard]] int numGhosts() const { return static_cast<int>(ghostCols_.size()); }

  /// Rows whose columns are all locally owned (computed while ghosts are
  /// in flight).
  [[nodiscard]] int numInteriorRows() const {
    return static_cast<int>(interiorRows_.size());
  }
  /// Rows that touch at least one ghost column (computed after the recv).
  [[nodiscard]] int numBoundaryRows() const {
    return static_cast<int>(boundaryRows_.size());
  }

  // ---- Tuned local kernel (the autotuner's plug) -----------------------

  /// Select the local kernel + halo strategy for subsequent spmv() calls.
  /// Purely local, no communication; auxiliary storage (SELL-C-σ lanes,
  /// VBR blocks) is built on first selection and refreshed positionally by
  /// updateValues afterwards.  A kBlock request whose structure fails
  /// blockKernelEligible falls back to kCsr; the returned config is the one
  /// actually applied.  The default (kCsr, overlapped) is exactly the
  /// original spmv path and builds nothing.
  SpmvConfig setSpmvConfig(const SpmvConfig& config);

  /// The configuration spmv() currently runs.
  [[nodiscard]] const SpmvConfig& spmvConfig() const { return spmvConfig_; }

  /// True if the owned block stays within the fill budget when carved into
  /// uniform blockSize-sized dense blocks (kBlock eligibility).  Purely
  /// local — tuners agree across ranks with a min-reduction.
  [[nodiscard]] bool blockKernelEligible(int blockSize) const;

 private:
  void buildHaloPlan();
  void buildSellAux();
  void buildBlockAux(int blockSize);
  void refreshKernelAux();

  comm::Comm comm_;
  int globalRows_ = 0;
  int globalCols_ = 0;
  CsrMatrix local_;             ///< global column indices
  std::vector<int> rowStarts_;  ///< row ownership boundaries, size P+1
  std::vector<int> colStarts_;  ///< input-vector ownership boundaries

  // Halo plan (built once):
  std::vector<int> ghostCols_;              ///< sorted global cols we need
  CsrMatrix mapped_;                        ///< local_ with remapped columns:
                                            ///< owned -> [0,nlocal), ghost ->
                                            ///< nlocal + slot
  std::vector<int> recvFromRanks_;          ///< ranks we receive ghosts from
  std::vector<int> recvCounts_;             ///< ghosts per recv rank
  std::vector<int> recvOffsets_;            ///< slot offset per recv rank
  std::vector<int> sendToRanks_;            ///< ranks we send x entries to
  std::vector<int> sendIdx_;                ///< local x indices, flat
  std::vector<int> sendOffsets_;            ///< sendIdx_ range per send rank,
                                            ///< size sendToRanks_.size()+1
  std::vector<int> interiorRows_;           ///< rows with no ghost column
  std::vector<int> boundaryRows_;           ///< rows with >= 1 ghost column
  std::vector<int> spmvTags_;               ///< reserved tags, one per round

  // Per-spmv scratch, sized once by buildHaloPlan() so spmv() never
  // allocates.  Mutable: spmv() is logically const; each rank owns its
  // DistCsrMatrix instance, so there is no cross-thread aliasing.
  mutable std::vector<double> sendBuf_;     ///< packed outgoing x entries
  mutable std::vector<double> xGhost_;      ///< received ghost values, by slot
  mutable std::size_t spmvRound_ = 0;       ///< rotates through spmvTags_

  // spmvMulti scratch: nVec-wide halo payload and ghost store, grown on
  // demand (growth-only, so steady-state batched solves never reallocate).
  mutable std::vector<double> sendBufMulti_;
  mutable std::vector<double> xGhostMulti_;  ///< ghost slot-major × nVec

  // Float32 value mirror for spmvFloat(), built lazily from mapped_ on
  // first use (the index structure is shared); updateValues marks it stale.
  mutable std::vector<float> mappedValsF_;  ///< float copy of mapped_.values
  mutable std::vector<float> sendBufF_;     ///< float halo pack buffer
  mutable std::vector<float> xGhostF_;      ///< float ghost receive buffer
  mutable bool floatMirrorFresh_ = false;

  // Tuned-kernel state (setSpmvConfig).  Aux storage mirrors mapped_'s
  // values through the *Src_ index maps, so updateValues refreshes it
  // without rebuilding (-1 slots are padding/fill and stay 0.0).
  SpmvConfig spmvConfig_;
  SellCMatrix sellInterior_;                ///< kSellC lanes, interior rows
  SellCMatrix sellBoundary_;                ///< kSellC lanes, boundary rows
  std::vector<int> sellInteriorSrc_;
  std::vector<int> sellBoundarySrc_;
  bool sellBuilt_ = false;
  VbrMatrix vbr_;                           ///< kBlock substrate over mapped_
  std::vector<int> vbrSrc_;
  int vbrBlockSize_ = 0;
  mutable std::vector<double> xExt_;        ///< owned+ghost x, aux kernels only
};

// ---- Reuse observability (process-wide, across MiniMPI rank-threads) ----

/// Number of halo-plan constructions since process start.  Tests assert a
/// zero delta across a same-pattern re-setup to prove the plan was reused.
[[nodiscard]] long long haloPlanBuilds();

/// Number of in-place value refreshes (updateValues calls) since process
/// start.
[[nodiscard]] long long valueUpdates();

// ---- Distributed vector helpers (conformal block-row pieces) -----------

/// Global dot product of two partitioned vectors.  Collective.
[[nodiscard]] double distDot(const comm::Comm& comm, std::span<const double> x,
                             std::span<const double> y);

/// Two global dot products fused into one two-element allreduce (halves the
/// latency-bound collective count on the CG hot path).  The allreduce
/// schedule is elementwise, so each result is bitwise identical to the
/// corresponding standalone distDot.  Collective.
[[nodiscard]] std::array<double, 2> distDot2(const comm::Comm& comm,
                                             std::span<const double> x1,
                                             std::span<const double> y1,
                                             std::span<const double> x2,
                                             std::span<const double> y2);

/// Global Euclidean norm of a partitioned vector.  Collective.
[[nodiscard]] double distNorm2(const comm::Comm& comm,
                               std::span<const double> x);

/// Global infinity norm of a partitioned vector.  Collective.
[[nodiscard]] double distNormInf(const comm::Comm& comm,
                                 std::span<const double> x);

// ---- Split-phase (latency-hiding) dot products -------------------------
//
// distDotsBegin computes the local partial sums and starts ONE fused
// nonblocking allreduce over all lanes; the caller overlaps useful work
// (SpMV, preconditioner application) and collects the results with
// distDotsEnd.  Each lane is bitwise identical to the corresponding
// blocking distDot/distDot2 lane: the local summation loop and the
// elementwise reduction schedule are the same, only the waiting moves.
// Like every collective, all ranks must begin the same dot batches in the
// same order.

/// One dot-product lane: accumulates sum_i x[i]*y[i] across all ranks.
struct DotArgs {
  std::span<const double> x;
  std::span<const double> y;
};

/// In-flight fused dot batch.  Move-only; results land in an internally
/// owned buffer whose address is stable across moves, so a PendingDots can
/// be returned from helpers and stored freely while the reduction runs.
class PendingDots {
 public:
  PendingDots() = default;
  PendingDots(PendingDots&&) noexcept = default;
  PendingDots& operator=(PendingDots&&) noexcept = default;

  /// Poke collective progress without blocking; true once results are in.
  /// Call this between overlapped work items to drive middle schedule
  /// rounds (MiniMPI has no progress thread).
  [[nodiscard]] bool test() { return handle_.test(); }

  /// True if this object holds a started (possibly finished) batch.
  [[nodiscard]] bool valid() const { return handle_.valid(); }

 private:
  friend PendingDots distDotsBegin(const comm::Comm&,
                                   std::span<const DotArgs>);
  friend std::span<const double> distDotsEnd(PendingDots&);

  struct Buf {
    std::vector<double> local;
    std::vector<double> global;
  };
  std::unique_ptr<Buf> buf_;  ///< heap: the collective writes into global
  comm::CollHandle handle_;
};

/// Start a fused batch of global dot products (one lane per entry).
[[nodiscard]] PendingDots distDotsBegin(const comm::Comm& comm,
                                        std::span<const DotArgs> dots);

/// Finish a batch: wait for the reduction and return the per-lane results.
/// The span points into `pending` and stays valid until it is destroyed or
/// reused.
std::span<const double> distDotsEnd(PendingDots& pending);

/// Single-lane convenience: begin sum_i x[i]*y[i].
[[nodiscard]] PendingDots distDotBegin(const comm::Comm& comm,
                                       std::span<const double> x,
                                       std::span<const double> y);

/// Finish a single-lane begin.
[[nodiscard]] double distDotEnd(PendingDots& pending);

/// Fused two-lane variant, split-phase twin of distDot2.
[[nodiscard]] PendingDots distDot2Begin(const comm::Comm& comm,
                                        std::span<const double> x1,
                                        std::span<const double> y1,
                                        std::span<const double> x2,
                                        std::span<const double> y2);

/// Finish a two-lane begin.
[[nodiscard]] std::array<double, 2> distDot2End(PendingDots& pending);

}  // namespace lisi::sparse
