#include "comm/check.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace lisi::comm::check {

bool enabled() {
#ifdef LISI_COMM_CHECK
  return true;
#else
  return false;
#endif
}

const char* collKindName(CollKind kind) {
  switch (kind) {
    case CollKind::kBarrier: return "barrier";
    case CollKind::kBcast: return "bcast";
    case CollKind::kReduce: return "reduce";
    case CollKind::kAllreduce: return "allreduce";
    case CollKind::kGather: return "gather";
    case CollKind::kGatherv: return "gatherv";
    case CollKind::kAllgatherv: return "allgatherv";
    case CollKind::kScatter: return "scatter";
    case CollKind::kScatterv: return "scatterv";
    case CollKind::kIallreduce: return "iallreduce";
    case CollKind::kIbarrier: return "ibarrier";
    case CollKind::kReserveTags: return "reserveCollectiveTags";
  }
  return "?";
}

namespace {

const char* reduceOpName(int op) {
  switch (op) {
    case 0: return "sum";
    case 1: return "prod";
    case 2: return "max";
    case 3: return "min";
    default: return "-";
  }
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffU;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t signatureHash(const CollSignature& sig, std::uint64_t ctx,
                            std::uint64_t seq) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, ctx);
  h = fnv1a(h, seq);
  h = fnv1a(h, static_cast<std::uint64_t>(sig.kind));
  h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(sig.root)));
  h = fnv1a(h, sig.bytes);
  h = fnv1a(h,
            static_cast<std::uint64_t>(static_cast<std::int64_t>(sig.reduceOp)));
  h = fnv1a(h, sig.treeFamily ? 1 : 0);
  return h;
}

std::string describeSignature(const CollSignature& sig) {
  std::ostringstream out;
  out << collKindName(sig.kind) << "(root=";
  if (sig.root < 0) {
    out << "-";
  } else {
    out << sig.root;
  }
  out << ", bytes=";
  if (sig.bytes == kVariableBytes) {
    out << "variable";
  } else {
    out << sig.bytes;
  }
  out << ", op=" << reduceOpName(sig.reduceOp)
      << ", family=" << (sig.treeFamily ? "tree" : "star") << ")";
  return out.str();
}

WorldChecker::WorldChecker(int worldSize, int maxUserTag,
                           int collectiveTagWindow, QueueProbe probe,
                           ViolationReport report, MailboxDump dump)
    : worldSize_(worldSize),
      maxUserTag_(maxUserTag),
      collectiveTagWindow_(collectiveTagWindow),
      probe_(std::move(probe)),
      report_(std::move(report)),
      dump_(std::move(dump)),
      waits_(static_cast<std::size_t>(worldSize)),
      exited_(static_cast<std::size_t>(worldSize), false),
      recentTags_(static_cast<std::size_t>(worldSize)),
      recentTagPos_(static_cast<std::size_t>(worldSize), 0),
      history_(static_cast<std::size_t>(worldSize)),
      historyPos_(static_cast<std::size_t>(worldSize), 0),
      handles_(static_cast<std::size_t>(worldSize)) {}

void WorldChecker::fail(const std::string& msg) const {
  if (report_) report_(msg);
  throw Error(msg);
}

void WorldChecker::onCommCreated(std::uint64_t ctx,
                                 const std::vector<int>& groupWorldRanks,
                                 int collectiveTagWindow) {
  support::MutexLock lock(mutex_);
  ctxGroups_.try_emplace(ctx, groupWorldRanks);
  ctxWindows_.try_emplace(ctx, collectiveTagWindow);
}

void WorldChecker::onCommTagWindow(std::uint64_t ctx, int window) {
  support::MutexLock lock(mutex_);
  ctxWindows_[ctx] = window;
}

void WorldChecker::onCommLabeled(std::uint64_t ctx, std::string label) {
  support::MutexLock lock(mutex_);
  ctxLabels_[ctx] = std::move(label);
}

int WorldChecker::windowOfLocked(std::uint64_t ctx) const {
  const auto it = ctxWindows_.find(ctx);
  return it == ctxWindows_.end() ? collectiveTagWindow_ : it->second;
}

std::string WorldChecker::ctxNameLocked(std::uint64_t ctx) const {
  std::string name = "ctx=" + std::to_string(ctx);
  const auto it = ctxLabels_.find(ctx);
  if (it != ctxLabels_.end() && !it->second.empty()) {
    name += " [" + it->second + "]";
  }
  return name;
}

int WorldChecker::worldRankOfLocked(std::uint64_t ctx, int localRank) const {
  const auto it = ctxGroups_.find(ctx);
  if (it == ctxGroups_.end() || localRank < 0 ||
      localRank >= static_cast<int>(it->second.size())) {
    return -1;
  }
  return it->second[static_cast<std::size_t>(localRank)];
}

void WorldChecker::onCollectiveStart(std::uint64_t ctx, int localRank,
                                     std::uint64_t seq, int firstTag,
                                     int tagCount, const CollSignature& sig) {
  support::MutexLock lock(mutex_);
  const int worldRank = worldRankOfLocked(ctx, localRank);

  // Record the issued tags so the send lint accepts this rank's own
  // schedule traffic, and keep reserved blocks in a per-ctx interval list.
  if (sig.kind == CollKind::kReserveTags) {
    for (const ReservedBlock& block : reserved_) {
      if (block.ctx != ctx) continue;
      const bool disjoint = firstTag + tagCount <= block.firstTag ||
                            block.firstTag + block.count <= firstTag;
      if (!disjoint && block.firstTag != firstTag) {
        fail(
            "LISI_COMM_CHECK: reserveCollectiveTags overlap on " +
            ctxNameLocked(ctx) + ": new block [" + std::to_string(firstTag) +
            ", " + std::to_string(firstTag + tagCount) +
            ") collides with live block [" + std::to_string(block.firstTag) +
            ", " + std::to_string(block.firstTag + block.count) +
            ") — the collective tag sequence wrapped its window while the "
            "old reservation was still in use");
      }
    }
    if (std::none_of(reserved_.begin(), reserved_.end(),
                     [&](const ReservedBlock& b) {
                       return b.ctx == ctx && b.firstTag == firstTag;
                     })) {
      reserved_.emplace_back(ctx, firstTag, tagCount);
    }
  } else if (worldRank >= 0) {
    if (tagReservedOnLocked(ctx, firstTag)) {
      fail(
          "LISI_COMM_CHECK: collective tag sequence wrapped into a reserved "
          "block on " +
          ctxNameLocked(ctx) + ": " + describeSignature(sig) +
          " at collective #" + std::to_string(seq) + " drew tag " +
          std::to_string(firstTag) +
          " which belongs to a live reserveCollectiveTags() block");
    }
    auto& ring = recentTags_[static_cast<std::size_t>(worldRank)];
    auto& pos = recentTagPos_[static_cast<std::size_t>(worldRank)];
    for (int i = 0; i < tagCount; ++i) {
      ring[pos % ring.size()] = RecentTag{ctx, firstTag + i};
      ++pos;
    }
  }

  if (worldRank >= 0) {
    auto& hist = history_[static_cast<std::size_t>(worldRank)];
    auto& hpos = historyPos_[static_cast<std::size_t>(worldRank)];
    hist[hpos % hist.size()] = SigRecord{ctx, seq, sig, true};
    ++hpos;
  }

  // Lockstep cross-check: the first rank to reach (ctx, seq) posts its
  // signature; every later arrival must hash identically.
  const std::uint64_t hash = signatureHash(sig, ctx, seq);
  auto [it, inserted] =
      board_.try_emplace(std::make_pair(ctx, seq), BoardEntry{});
  BoardEntry& entry = it->second;
  if (inserted) {
    entry.hash = hash;
    entry.sig = sig;
    entry.firstWorldRank = worldRank;
  } else if (entry.hash != hash) {
    std::ostringstream out;
    out << "LISI_COMM_CHECK: lockstep collective mismatch on "
        << ctxNameLocked(ctx)
        << " at collective #" << seq << ": rank " << localRank << " (world "
        << worldRank << ") called " << describeSignature(sig)
        << " [signature 0x" << std::hex << hash << std::dec << "] but rank "
        << entry.firstWorldRank << " called " << describeSignature(entry.sig)
        << " [signature 0x" << std::hex << entry.hash << std::dec
        << "]; all ranks of a communicator must issue the same collective "
           "sequence";
    if (entry.firstWorldRank >= 0) {
      out << "; " << describeHistoryLocked(entry.firstWorldRank);
    }
    if (worldRank >= 0) out << "; " << describeHistoryLocked(worldRank);
    fail(out.str());
  }
  ++entry.arrived;
  const auto group = ctxGroups_.find(ctx);
  if (group != ctxGroups_.end() &&
      entry.arrived >= static_cast<int>(group->second.size())) {
    board_.erase(it);
  }
}

bool WorldChecker::tagReservedOnLocked(std::uint64_t ctx, int tag) const {
  return std::any_of(reserved_.begin(), reserved_.end(),
                     [&](const ReservedBlock& b) {
                       return b.ctx == ctx && tag >= b.firstTag &&
                              tag < b.firstTag + b.count;
                     });
}

void WorldChecker::onSend(std::uint64_t ctx, int localRank, int worldRank,
                          int dest, int tag) {
  if (tag >= 0 && tag <= maxUserTag_) return;  // user tag space: always legal
  support::MutexLock lock(mutex_);
  // The collective tag window is a per-context session property, so the
  // tag-space bound follows the sending communicator's window, not the
  // world default.
  const int window = windowOfLocked(ctx);
  if (tag > maxUserTag_ + window || tag < 0) {
    fail("LISI_COMM_CHECK: send from rank " + std::to_string(localRank) +
                " to rank " + std::to_string(dest) + " on " +
                ctxNameLocked(ctx) + " uses tag " + std::to_string(tag) +
                " outside the tag space [0, " +
                std::to_string(maxUserTag_ + window) + "] (user tags end at " +
                std::to_string(maxUserTag_) + ")");
  }
  if (tagReservedOnLocked(ctx, tag)) return;  // reserved-block protocol
  const auto& ring = recentTags_[static_cast<std::size_t>(worldRank)];
  if (std::any_of(ring.begin(), ring.end(), [&](const RecentTag& r) {
        return r.ctx == ctx && r.tag == tag;
      })) {
    return;  // this rank's own in-flight collective schedule
  }
  fail(
      "LISI_COMM_CHECK: send from rank " + std::to_string(localRank) +
      " to rank " + std::to_string(dest) + " uses tag " + std::to_string(tag) +
      " which lands in the reserved collective tag space (tags above " +
      std::to_string(maxUserTag_) +
      ") without a reserveCollectiveTags() block — user point-to-point "
      "traffic must stay in [0, " +
      std::to_string(maxUserTag_) + "]");
}

std::string WorldChecker::describeHistoryLocked(int worldRank) const {
  const auto& hist = history_[static_cast<std::size_t>(worldRank)];
  const std::size_t pos = historyPos_[static_cast<std::size_t>(worldRank)];
  std::ostringstream out;
  out << "rank " << worldRank << " history:";
  bool any = false;
  for (std::size_t i = 0; i < hist.size(); ++i) {
    // Oldest first: the ring's next write slot is its oldest entry.
    const SigRecord& rec = hist[(pos + i) % hist.size()];
    if (!rec.valid) continue;
    any = true;
    out << " #" << rec.seq;
    if (rec.ctx != 0) out << "@ctx" << rec.ctx;
    out << ":" << describeSignature(rec.sig);
  }
  if (!any) out << " (none)";
  return out.str();
}

std::string WorldChecker::describeWaitLocked(int worldRank) const {
  const WaitState& w = waits_[static_cast<std::size_t>(worldRank)];
  std::ostringstream out;
  out << "rank " << worldRank << " blocked in " << w.what << " (";
  for (std::size_t i = 0; i < w.needs.size(); ++i) {
    const WaitNeed& need = w.needs[i];
    if (i != 0) out << " | ";
    out << ctxNameLocked(need.ctx) << ", src=";
    if (need.src < 0) {
      out << "any";
    } else {
      out << need.src;
    }
    out << ", tag=";
    if (need.tag < 0) {
      out << "any";
    } else {
      out << need.tag;
      if (tagReservedOnLocked(need.ctx, need.tag)) out << " [reserved block]";
    }
  }
  out << ")";
  return out.str();
}

void WorldChecker::detectDeadlockLocked(int aboutRank,
                                        const std::string& prologue) {
  // Releasability fixpoint: a rank is releasable if it is running (neither
  // blocked nor exited), if a message satisfying its wait is already queued,
  // or if some rank that could produce such a message is itself releasable.
  // Whatever remains is a closed wait set: every member waits on messages
  // only other members (or exited ranks) could send, and none of them will
  // ever run again.  Wildcard sources make this a set-based analysis rather
  // than a single-successor cycle walk, but a two-rank recv/recv cycle is
  // simply the smallest closed set.
  const auto n = static_cast<std::size_t>(worldSize_);
  std::vector<char> releasable(n, 0);
  bool anyBlocked = false;
  for (std::size_t r = 0; r < n; ++r) {
    if (!waits_[r].blocked) {
      releasable[r] = exited_[r] ? 0 : 1;
    } else {
      anyBlocked = true;
      // Probe first, satisfied second — the order is load-bearing.  The
      // waiter dequeues its message and sets `satisfied` inside one mailbox
      // critical section, and the probe locks that same mailbox: if the
      // probe finds the queue empty because the rank just consumed the
      // message, the mutex hand-off guarantees the satisfied store is
      // visible to the load below.  Reading `satisfied` before probing
      // leaves a window (load false -> rank dequeues -> probe sees empty)
      // that condemns a rank which is about to run.
      if (probe_ && probe_(static_cast<int>(r), waits_[r].needs)) {
        releasable[r] = 1;
      } else if (waits_[r].satisfied.load()) {
        releasable[r] = 1;
      }
    }
  }
  if (!anyBlocked) return;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t r = 0; r < n; ++r) {
      if (!waits_[r].blocked || releasable[r]) continue;
      for (const WaitNeed& need : waits_[r].needs) {
        const auto group = ctxGroups_.find(need.ctx);
        if (group == ctxGroups_.end()) continue;
        bool satisfiable = false;
        if (need.src >= 0) {
          const int sender = worldRankOfLocked(need.ctx, need.src);
          satisfiable =
              sender >= 0 && releasable[static_cast<std::size_t>(sender)];
        } else {
          for (const int sender : group->second) {
            if (sender != static_cast<int>(r) &&
                releasable[static_cast<std::size_t>(sender)]) {
              satisfiable = true;
              break;
            }
          }
        }
        if (satisfiable) {
          releasable[r] = 1;
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<int> stuck;
  for (std::size_t r = 0; r < n; ++r) {
    if (waits_[r].blocked && !releasable[r]) stuck.push_back(static_cast<int>(r));
  }
  if (stuck.empty()) return;
  // Last-chance re-verification: the probes above ran one mailbox at a
  // time, so a member may have consumed its message after its own probe
  // but before the fixpoint settled.  Consumption sets `satisfied`, so one
  // more load per member suffices — and a single hit invalidates the whole
  // closed set, because that member will run and can unblock the rest.
  //
  // Memory order (audited): this load must stay seq_cst, matching the
  // seq_cst store in noteWaitSatisfied.  No mutex is shared between this
  // load and that store (the store runs under the waiter's *mailbox* mutex,
  // this loop holds only the checker mutex), so acquire/release would only
  // order the flag against the storer's other writes — it could not
  // guarantee that a store sequenced before the probe's queue observation
  // is seen here.  seq_cst puts the probe's queue read, the waiter's
  // dequeue+store, and this load into one total order, which is exactly
  // the "probe missed it => flag is visible" argument the comment above
  // relies on.
  for (const int r : stuck) {
    if (waits_[static_cast<std::size_t>(r)].satisfied.load()) return;
  }
  if (aboutRank >= 0 &&
      std::find(stuck.begin(), stuck.end(), aboutRank) == stuck.end()) {
    return;  // the registering rank can still be released; let it wait
  }
  std::ostringstream out;
  out << "LISI_COMM_CHECK: deadlock detected (closed wait-for cycle";
  if (!prologue.empty()) out << "; " << prologue;
  out << "): ";
  for (std::size_t i = 0; i < stuck.size(); ++i) {
    if (i != 0) out << "; ";
    out << describeWaitLocked(stuck[i]);
    if (dump_) out << " mailbox[" << dump_(stuck[i]) << "]";
    out << " " << describeHistoryLocked(stuck[i]);
  }
  for (std::size_t r = 0; r < n; ++r) {
    if (!exited_[r]) continue;
    const auto& abandoned = handles_[r].abandonedTags;
    out << "; rank " << r << " already exited";
    if (!abandoned.empty()) {
      out << " after abandoning " << abandoned.size()
          << " incomplete CollHandle(s) (tag";
      for (const int t : abandoned) out << " " << t;
      out << ")";
    }
  }
  fail(out.str());
}

void WorldChecker::beginWait(int worldRank, const char* what,
                             std::vector<WaitNeed> needs) {
  support::MutexLock lock(mutex_);
  WaitState& w = waits_[static_cast<std::size_t>(worldRank)];
  w.blocked = true;
  w.what = what;
  w.needs = std::move(needs);
  w.satisfied.store(false);
  try {
    detectDeadlockLocked(worldRank, "");
  } catch (...) {
    // The throw skips this wait's RAII scope (the scope object never
    // finishes constructing), so un-register here or the rank would read
    // as blocked forever.
    w.blocked = false;
    throw;
  }
}

void WorldChecker::endWait(int worldRank) {
  support::MutexLock lock(mutex_);
  waits_[static_cast<std::size_t>(worldRank)].blocked = false;
}

// NO_THREAD_SAFETY_ANALYSIS: the one sanctioned mutex_-free touch of
// guarded checker state (see the declaration).  Runs under the caller's
// mailbox mutex, where taking mutex_ would invert the documented
// checker -> mailbox lock order; it writes only the per-rank `satisfied`
// atomic, and waits_ itself is sized once in the constructor, so the
// element reference is stable without the lock.
void WorldChecker::noteWaitSatisfied(int worldRank)
    LISI_NO_THREAD_SAFETY_ANALYSIS {
  // seq_cst store, deliberately: the probe-first/satisfied-second protocol
  // in detectDeadlockLocked relies on this store being ordered into the
  // single total order *before* the waiter's message leaves its mailbox
  // queue becomes observable as "consumed" to a later probe.  The store
  // happens inside the mailbox critical section, so the mutex hand-off
  // covers the probe path; the last-chance re-check path reads the flag
  // with NO common lock held, and seq_cst is what makes "probe saw the
  // message missing => this store is visible" a total-order argument
  // rather than a per-mutex one.  Do not relax.
  waits_[static_cast<std::size_t>(worldRank)].satisfied.store(true);
}

void WorldChecker::onNonblockingStart(int worldRank, int tag, const void* data,
                                      std::size_t bytes,
                                      const std::vector<BufferRange>& outstanding) {
  if (data != nullptr && bytes != 0) {
    const auto* lo = static_cast<const std::byte*>(data);
    const std::byte* hi = lo + bytes;
    for (const BufferRange& range : outstanding) {
      if (range.data == nullptr || range.bytes == 0) continue;
      const auto* rlo = static_cast<const std::byte*>(range.data);
      const std::byte* rhi = rlo + range.bytes;
      if (lo < rhi && rlo < hi) {
        fail(
            "LISI_COMM_CHECK: in-flight buffer aliasing on rank " +
            std::to_string(worldRank) + ": nonblocking collective (tag " +
            std::to_string(tag) + ") output buffer overlaps the buffer of an "
            "outstanding nonblocking collective (tag " +
            std::to_string(range.tag) +
            "); a buffer belongs to its operation until the handle "
            "completes");
      }
    }
  }
  support::MutexLock lock(mutex_);
  handles_[static_cast<std::size_t>(worldRank)].liveTags.push_back(tag);
}

void WorldChecker::onNonblockingEnd(int worldRank, int tag, bool completed,
                                    std::size_t stepsLeft) {
  support::MutexLock lock(mutex_);
  RankHandles& h = handles_[static_cast<std::size_t>(worldRank)];
  const auto it = std::find(h.liveTags.begin(), h.liveTags.end(), tag);
  if (it != h.liveTags.end()) h.liveTags.erase(it);
  if (!completed && stepsLeft > 0) h.abandonedTags.push_back(tag);
}

void WorldChecker::onRankExit(int worldRank) {
  support::MutexLock lock(mutex_);
  const RankHandles& h = handles_[static_cast<std::size_t>(worldRank)];
  if (!h.liveTags.empty()) {
    std::ostringstream out;
    out << "LISI_COMM_CHECK: CollHandle leak at world teardown: rank "
        << worldRank << " exited with " << h.liveTags.size()
        << " live nonblocking collective handle(s) (tag";
    for (const int t : h.liveTags) out << " " << t;
    out << "); every CollHandle must be completed or destroyed before the "
           "rank returns";
    fail(out.str());
  }
  exited_[static_cast<std::size_t>(worldRank)] = true;
  // A rank blocked on a now-exited peer can never be released; sweep on the
  // survivors' behalf so abandonment that strands a peer is diagnosed
  // immediately instead of via the recv timeout.
  detectDeadlockLocked(-1, "rank " + std::to_string(worldRank) + " exited");
}

}  // namespace lisi::comm::check
