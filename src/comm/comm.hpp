// MiniMPI: a thread-backed message-passing substrate.
//
// The paper's experiments run SPMD solver components over MPI on a Linux
// cluster.  This repository substitutes a library that preserves the MPI
// programming model on a single node: every *rank* is an OS thread with
// private data that communicates exclusively through tagged point-to-point
// messages and collectives on a communicator.  No module in this repository
// shares mutable state across ranks except through this API, so all
// distributed algorithms are written exactly as they would be against MPI.
//
// Semantics implemented (names follow MPI where the behaviour matches):
//   * Comm: rank()/size(), copyable handle (copies alias one communicator).
//   * Tagged blocking send/recv with kAnySource / kAnyTag wildcards and
//     per-pair FIFO ordering.
//   * Collectives: barrier, bcast, reduce, allreduce, gather(v),
//     allgather(v), scatter(v).  Two schedule families exist: *tree*
//     (binomial trees, recursive doubling, dissemination, a ring for
//     allgatherv — logarithmic critical path) and *star* (everything
//     funnels through a root — fewest scheduler handoffs).  By default the
//     tree schedules run when the host has a core per rank and the star
//     schedules run when the rank-threads oversubscribe the cores, where
//     the chained cv-wakeups of a deep schedule serialize and the star's
//     independent sends batch better; setCollectiveSchedule() pins either
//     family explicitly.  Every schedule is fixed at call time, so results
//     are deterministic and bitwise reproducible run-to-run for a given
//     rank count and schedule (reductions rely on the bitwise
//     commutativity of IEEE +, *, min, max).
//   * split(color, key) / dup() sub-communicators (multilevel solvers in
//     src/hymg use these for level sub-solves).
//   * A long-integer handle registry (comm_handle.hpp) so the LISI port can
//     keep the paper's `int initialize(in long comm)` signature.
//
// Deadlock containment: if any rank throws, the communicator is aborted and
// every blocked rank wakes with an Error; recv also carries a large default
// timeout so a lost message fails a test instead of hanging it.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "comm/check.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace lisi::comm {

/// Wildcard source rank for recv().
inline constexpr int kAnySource = -1;
/// Wildcard tag for recv().
inline constexpr int kAnyTag = -1;
/// Largest tag available to user code; higher tags are reserved for
/// collective implementations.
inline constexpr int kMaxUserTag = (1 << 24) - 1;

/// Reduction operators for reduce/allreduce.
enum class ReduceOp { kSum, kProd, kMax, kMin };

/// Collective schedule family.  kAuto resolves per call: tree schedules
/// when the host has at least one core per rank (critical-path depth sets
/// latency), star schedules when the rank-threads oversubscribe the cores
/// (scheduler-handoff count sets latency).  kTree/kStar pin one family —
/// used by tests and benchmarks to exercise both regardless of host shape.
enum class CollectiveSchedule { kAuto, kTree, kStar };

/// Set the global schedule family — the process-wide *default*, layered
/// under any per-communicator pin (Comm::pinCollectiveSchedule); a pinned
/// communicator ignores it.  Affects every unpinned communicator; must not
/// change while a world is running (all ranks of a collective must resolve
/// the same family or their tag sequences diverge).
void setCollectiveSchedule(CollectiveSchedule schedule);

/// Current global schedule family (kAuto unless overridden).
[[nodiscard]] CollectiveSchedule collectiveSchedule();

namespace detail {
struct CommState;
/// True if collectives over `p` ranks should run the tree family under the
/// global policy alone (no communicator context).
[[nodiscard]] bool useTreeSchedule(int p);
/// Full resolution for one communicator: its context pin if set, else the
/// global override, else the kAuto host heuristic.
[[nodiscard]] bool useTreeSchedule(const CommState& state, int p);
}  // namespace detail

/// Completion information for a receive.
struct Status {
  int source = kAnySource;   ///< Rank the message actually came from.
  int tag = kAnyTag;         ///< Tag the message actually carried.
  std::size_t bytes = 0;     ///< Payload size in bytes.
};

namespace detail {
class WorldContext;
struct CommState;
class CollOp;
}  // namespace detail

/// Completion handle for a nonblocking collective (iallreduce / ibarrier).
///
/// MiniMPI has no progress thread: a nonblocking collective advances only
/// inside test() / wait() (and one eager step at start time, which posts the
/// leading sends).  test()/wait() drive *every* outstanding nonblocking
/// collective of the calling rank on the same communicator, not just this
/// handle's, so handles may be completed in any order without deadlock.
///
/// Rules (MPI-like):
///   * All ranks must start the same nonblocking collectives in the same
///     order (each start draws one collective-sequence tag in lockstep).
///   * Every rank must eventually complete every handle; a rank that
///     abandons one strands its peers (the recv-timeout guard then aborts
///     the world instead of hanging it).
///   * The `out` buffer belongs to the operation until completion; reading
///     or writing it earlier is undefined.
///   * A handle is owned by the rank thread that started it — like the
///     Comm it came from, it must not be shared across rank threads.
class CollHandle {
 public:
  CollHandle();
  CollHandle(CollHandle&&) noexcept;
  CollHandle& operator=(CollHandle&&) noexcept;
  CollHandle(const CollHandle&) = delete;
  CollHandle& operator=(const CollHandle&) = delete;
  /// Destroying an incomplete handle deregisters it without blocking (the
  /// operation is considered abandoned; see class comment).
  ~CollHandle();

  /// Advance this rank's outstanding collectives without blocking; true
  /// once this handle's operation has completed (idempotent afterwards).
  [[nodiscard]] bool test();

  /// Block until this handle's operation completes, progressing all of the
  /// rank's outstanding collectives while waiting.
  void wait();

  /// True if this handle denotes a started (possibly completed) operation.
  [[nodiscard]] bool valid() const { return op_ != nullptr; }

 private:
  friend class Comm;
  explicit CollHandle(std::unique_ptr<detail::CollOp> op);
  std::unique_ptr<detail::CollOp> op_;
};

/// Communicator handle.  Cheap to copy; all copies denote the same
/// communication context (like an MPI_Comm).  Obtained from World::run,
/// split(), or dup() — never default-constructed into a usable state.
class Comm {
 public:
  Comm() = default;

  /// Rank of the calling thread within this communicator.
  [[nodiscard]] int rank() const;
  /// Number of ranks in this communicator.
  [[nodiscard]] int size() const;
  /// True if this handle denotes a live communicator.
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  // ---- Point-to-point (blocking) -------------------------------------

  /// Send `n` raw bytes to `dest` with `tag` (0 <= tag <= kMaxUserTag).
  void sendBytes(const void* data, std::size_t n, int dest, int tag) const;

  /// Receive a message of unknown size; returns the payload.
  [[nodiscard]] std::vector<std::byte> recvBytes(int src, int tag,
                                                 Status* status = nullptr) const;

  /// Receive into a caller-provided buffer; the message size must equal `n`.
  void recvBytesInto(void* data, std::size_t n, int src, int tag,
                     Status* status = nullptr) const;

  /// Typed send of a contiguous range (T must be trivially copyable).
  template <class T>
  void send(std::span<const T> data, int dest, int tag) const {
    static_assert(std::is_trivially_copyable_v<T>);
    sendBytes(data.data(), data.size_bytes(), dest, tag);
  }

  /// Typed send of a single value.
  template <class T>
  void sendValue(const T& value, int dest, int tag) const {
    send(std::span<const T>(&value, 1), dest, tag);
  }

  /// Typed receive into a caller-provided range of exactly the sent length.
  template <class T>
  void recv(std::span<T> out, int src, int tag, Status* status = nullptr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    recvBytesInto(out.data(), out.size_bytes(), src, tag, status);
  }

  /// Typed receive of a single value.
  template <class T>
  [[nodiscard]] T recvValue(int src, int tag, Status* status = nullptr) const {
    T value{};
    recv(std::span<T>(&value, 1), src, tag, status);
    return value;
  }

  /// Typed receive of a message whose length is unknown to the receiver.
  template <class T>
  [[nodiscard]] std::vector<T> recvVector(int src, int tag,
                                          Status* status = nullptr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw = recvBytes(src, tag, status);
    LISI_CHECK(raw.size() % sizeof(T) == 0, "message size not a multiple of T");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  // ---- Collectives (must be called by every rank, in the same order) --

  /// Block until every rank has entered the barrier.
  void barrier() const;

  /// Broadcast `data` from `root` to all ranks (in place on non-roots).
  template <class T>
  void bcast(std::span<T> data, int root) const {
    bcastBytes(data.data(), data.size_bytes(), root);
  }

  /// Broadcast a single value; returns it on every rank.
  template <class T>
  [[nodiscard]] T bcastValue(T value, int root) const {
    bcastBytes(&value, sizeof(T), root);
    return value;
  }

  /// Element-wise reduction of `in` into `out` on `root` (rank order, hence
  /// deterministic).  `out` may be empty on non-root ranks.
  template <class T>
  void reduce(std::span<const T> in, std::span<T> out, ReduceOp op,
              int root) const;

  /// Reduction delivered to every rank.  Tree family: recursive doubling,
  /// O(log p) rounds.  Star family: star reduce to rank 0 + star bcast.
  /// `out` must have in.size() elements on every rank.
  template <class T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) const;

  /// Scalar allreduce convenience.
  template <class T>
  [[nodiscard]] T allreduceValue(T value, ReduceOp op) const {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  // ---- Nonblocking collectives (same ordering rules; see CollHandle) ---

  /// Start an allreduce; `in` is read (and copied into `out`) at call time,
  /// `out` receives the result by completion and must stay alive and
  /// untouched until then.  Runs the same schedule as the blocking
  /// allreduce, so the completed `out` is bitwise identical to it.
  template <class T>
  [[nodiscard]] CollHandle iallreduce(std::span<const T> in, std::span<T> out,
                                      ReduceOp op) const;

  /// Start a barrier; completes once every rank has started it and driven
  /// its own handle far enough (dissemination or star schedule).
  [[nodiscard]] CollHandle ibarrier() const;

  /// Fixed-size gather: every rank contributes `in` (same length everywhere);
  /// on root, `out` must have size()*in.size() elements, laid out by rank.
  /// Fast path: receives land directly in `out` (no per-rank staging).
  template <class T>
  void gather(std::span<const T> in, std::span<T> out, int root) const;

  /// Variable-size gather; root receives the rank-ordered concatenation,
  /// non-roots receive an empty vector.  `counts` (root only, optional out)
  /// receives per-rank element counts.
  template <class T>
  [[nodiscard]] std::vector<T> gatherv(std::span<const T> in, int root,
                                       std::vector<int>* counts = nullptr) const;

  /// Variable-size allgather: every rank receives the concatenation.
  /// Tree family: counts travel through a logarithmic allreduce, the
  /// payload around a ring (p-1 steps, each forwarding one block to the
  /// right neighbour) — nothing funnels through rank 0.  Star family:
  /// gatherv to rank 0 + bcast.
  template <class T>
  [[nodiscard]] std::vector<T> allgatherv(std::span<const T> in,
                                          std::vector<int>* counts = nullptr) const;

  /// Fixed-size scatter from root: `in` on root holds size()*chunk elements.
  /// Fast path: root sends slices of `in` directly (no per-rank staging).
  template <class T>
  void scatter(std::span<const T> in, std::span<T> out, int root) const;

  /// Variable-size scatter: root provides concatenated `in` plus per-rank
  /// element `counts`; every rank receives its chunk.
  template <class T>
  [[nodiscard]] std::vector<T> scatterv(std::span<const T> in,
                                        std::span<const int> counts,
                                        int root) const;

  // ---- Communicator management ---------------------------------------

  /// Partition ranks by `color` (ranks with equal color form a new
  /// communicator, ordered by `key` then by parent rank).  Collective.
  [[nodiscard]] Comm split(int color, int key) const;

  /// Duplicate this communicator (fresh message context, same group).
  [[nodiscard]] Comm dup() const;

  /// Abort the whole world: wakes every blocked rank with an error.
  /// Used by failure-injection tests and fatal error paths.
  void abort(const std::string& reason) const;

  /// Reserve `count` tags from the collective tag space for long-lived
  /// point-to-point protocols (e.g. a matrix's halo-exchange rounds).
  /// Collective in ordering: every rank must call this in the same position
  /// of its collective sequence so all ranks receive identical tags.
  [[nodiscard]] std::vector<int> reserveCollectiveTags(int count) const;

  /// Pin the collective schedule family for THIS communicator's context
  /// (split/dup siblings and the parent keep their own resolution).  The
  /// pin overrides the process-global setCollectiveSchedule default;
  /// kAuto removes the pin.  Collective: internally barriers first so no
  /// rank can still be inside a collective that resolved the old family,
  /// then every rank records the same value — call it at the same point of
  /// the collective sequence on all ranks, like any collective.
  void pinCollectiveSchedule(CollectiveSchedule schedule) const;

  /// This communicator's context pin (kAuto when unpinned).  Purely local.
  [[nodiscard]] CollectiveSchedule pinnedCollectiveSchedule() const;

  /// Set the collective tag window for THIS communicator's context.  The
  /// window is a per-communicator session property: split()/dup() children
  /// inherit the parent's value at creation, and changing it here never
  /// affects the parent or sibling sub-communicators — sessions carved out
  /// of one World tune their tag spaces independently.  Collective with the
  /// same barrier-then-set discipline as pinCollectiveSchedule: no rank can
  /// still be drawing tags under the old window when any rank records the
  /// new one.  `window` must lie in [16, 2^20] (the default).
  void setCollectiveTagWindow(int window) const;

  /// The collective tag window of this communicator's context.  Local.
  [[nodiscard]] int collectiveTagWindow() const;

  /// Attach a human-readable label to this communicator's context ("session
  /// 2", "coarse level").  Purely diagnostic: the LISI_COMM_CHECK verifier
  /// renders it next to the ctx id in lockstep/deadlock reports, so a
  /// violation inside a session pool names the session, not just a number.
  /// Not collective (the label is metadata, not schedule state); call it on
  /// every rank with the same string for coherent reports.
  void setLabel(const std::string& label) const;

  /// This context's label ("" when unset).  Local.
  [[nodiscard]] std::string label() const;

 private:
  friend class World;
  friend struct detail::CommState;
  explicit Comm(std::shared_ptr<detail::CommState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] CollHandle iallreduceBytes(
      const void* in, void* out, std::size_t count, std::size_t elemSize,
      ReduceOp op,
      void (*combine)(void*, const void*, std::size_t, ReduceOp)) const;
  void bcastBytes(void* data, std::size_t n, int root) const;
  void reduceBytes(const void* in, void* out, std::size_t count,
                   std::size_t elemSize, ReduceOp op, int root,
                   void (*combine)(void*, const void*, std::size_t,
                                   ReduceOp)) const;
  void allreduceBytes(const void* in, void* out, std::size_t count,
                      std::size_t elemSize, ReduceOp op,
                      void (*combine)(void*, const void*, std::size_t,
                                      ReduceOp)) const;

  /// Next reserved tag for a collective step (advances a shared counter).
  /// The signature arguments describe the calling collective for the
  /// LISI_COMM_CHECK lockstep verifier; unchecked builds ignore them.
  [[nodiscard]] int nextCollectiveTag(check::CollKind kind, int root,
                                      std::uint64_t bytes,
                                      int reduceOp = -1) const;

  std::shared_ptr<detail::CommState> state_;
};

/// SPMD launcher: runs `body(comm)` on `nranks` rank-threads and joins them.
/// If any rank throws, the world is aborted (all blocked ranks wake) and the
/// lowest-ranked exception is rethrown to the caller.
class World {
 public:
  static void run(int nranks, const std::function<void(Comm&)>& body);
};

// ---- template implementations ----------------------------------------

namespace detail {
template <class T>
void combineElems(void* acc, const void* contrib, std::size_t count,
                  ReduceOp op) {
  auto* a = static_cast<T*>(acc);
  const auto* c = static_cast<const T*>(contrib);
  for (std::size_t i = 0; i < count; ++i) {
    switch (op) {
      case ReduceOp::kSum: a[i] += c[i]; break;
      case ReduceOp::kProd: a[i] *= c[i]; break;
      case ReduceOp::kMax: if (c[i] > a[i]) a[i] = c[i]; break;
      case ReduceOp::kMin: if (c[i] < a[i]) a[i] = c[i]; break;
    }
  }
}
}  // namespace detail

template <class T>
void Comm::reduce(std::span<const T> in, std::span<T> out, ReduceOp op,
                  int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank() == root) {
    LISI_CHECK(out.size() == in.size(), "reduce: out size mismatch on root");
  }
  reduceBytes(in.data(), out.data(), in.size(), sizeof(T), op, root,
              &detail::combineElems<T>);
}

template <class T>
void Comm::allreduce(std::span<const T> in, std::span<T> out,
                     ReduceOp op) const {
  static_assert(std::is_trivially_copyable_v<T>);
  LISI_CHECK(out.size() == in.size(), "allreduce: out size mismatch");
  allreduceBytes(in.data(), out.data(), in.size(), sizeof(T), op,
                 &detail::combineElems<T>);
}

template <class T>
CollHandle Comm::iallreduce(std::span<const T> in, std::span<T> out,
                            ReduceOp op) const {
  static_assert(std::is_trivially_copyable_v<T>);
  LISI_CHECK(out.size() == in.size(), "iallreduce: out size mismatch");
  return iallreduceBytes(in.data(), out.data(), in.size(), sizeof(T), op,
                         &detail::combineElems<T>);
}

template <class T>
void Comm::gather(std::span<const T> in, std::span<T> out, int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag =
      nextCollectiveTag(check::CollKind::kGather, root, in.size_bytes());
  const int p = size();
  obs::Span span("coll.gather", in.size_bytes());
  LISI_CHECK(root >= 0 && root < p, "gather: root out of range");
  const std::size_t chunk = in.size();
  if (rank() == root) {
    LISI_CHECK(out.size() == chunk * static_cast<std::size_t>(p),
               "gather: out size mismatch on root");
    std::copy(in.begin(), in.end(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                chunk * static_cast<std::size_t>(root)));
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      recv(out.subspan(chunk * static_cast<std::size_t>(r), chunk), r, tag);
    }
  } else {
    send(in, root, tag);
  }
}

template <class T>
std::vector<T> Comm::gatherv(std::span<const T> in, int root,
                             std::vector<int>* counts) const {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag =
      nextCollectiveTag(check::CollKind::kGatherv, root, check::kVariableBytes);
  const int p = size();
  obs::Span span("coll.gatherv", in.size_bytes());
  std::vector<T> result;
  if (rank() == root) {
    if (counts) counts->assign(static_cast<std::size_t>(p), 0);
    std::vector<std::vector<T>> parts(static_cast<std::size_t>(p));
    parts[static_cast<std::size_t>(root)].assign(in.begin(), in.end());
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      parts[static_cast<std::size_t>(r)] = recvVector<T>(r, tag);
    }
    for (int r = 0; r < p; ++r) {
      const auto& part = parts[static_cast<std::size_t>(r)];
      if (counts) (*counts)[static_cast<std::size_t>(r)] = static_cast<int>(part.size());
      result.insert(result.end(), part.begin(), part.end());
    }
  } else {
    send(in, root, tag);
  }
  return result;
}

template <class T>
std::vector<T> Comm::allgatherv(std::span<const T> in,
                                std::vector<int>* counts) const {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  const int r = rank();
  const bool tree = detail::useTreeSchedule(*state_, p);
  obs::Span span(tree ? "coll.allgatherv.tree" : "coll.allgatherv.star",
                 in.size_bytes());
  if (!tree) {
    // Star: gatherv to rank 0, then broadcast counts and concatenation.
    std::vector<int> localCounts;
    std::vector<T> all = gatherv(in, 0, &localCounts);
    if (r != 0) localCounts.assign(static_cast<std::size_t>(p), 0);
    bcast(std::span<int>(localCounts), 0);
    std::size_t total = 0;
    for (int c : localCounts) total += static_cast<std::size_t>(c);
    if (r != 0) all.resize(total);
    bcast(std::span<T>(all), 0);
    if (counts) *counts = std::move(localCounts);
    return all;
  }
  // Everyone learns every rank's count through a logarithmic allreduce.
  std::vector<int> cnt(static_cast<std::size_t>(p), 0);
  cnt[static_cast<std::size_t>(r)] = static_cast<int>(in.size());
  allreduce(std::span<const int>(cnt), std::span<int>(cnt), ReduceOp::kSum);
  std::vector<std::size_t> offset(static_cast<std::size_t>(p) + 1, 0);
  for (int q = 0; q < p; ++q) {
    offset[static_cast<std::size_t>(q) + 1] =
        offset[static_cast<std::size_t>(q)] +
        static_cast<std::size_t>(cnt[static_cast<std::size_t>(q)]);
  }
  std::vector<T> all(offset[static_cast<std::size_t>(p)]);
  std::copy(in.begin(), in.end(),
            all.begin() + static_cast<std::ptrdiff_t>(
                              offset[static_cast<std::size_t>(r)]));
  if (p > 1) {
    // Ring exchange: in step s every rank forwards the block that
    // originated s hops to its left, so after p-1 steps everyone holds the
    // full concatenation and no rank serializes more than its neighbours.
    const int tag = nextCollectiveTag(check::CollKind::kAllgatherv, -1,
                                      check::kVariableBytes);
    const int right = (r + 1) % p;
    const int left = (r - 1 + p) % p;
    for (int s = 0; s < p - 1; ++s) {
      const int sendBlock = (r - s + p) % p;
      const int recvBlock = (r - s - 1 + p) % p;
      send(std::span<const T>(
               all.data() + offset[static_cast<std::size_t>(sendBlock)],
               static_cast<std::size_t>(cnt[static_cast<std::size_t>(sendBlock)])),
           right, tag);
      recv(std::span<T>(
               all.data() + offset[static_cast<std::size_t>(recvBlock)],
               static_cast<std::size_t>(cnt[static_cast<std::size_t>(recvBlock)])),
           left, tag);
    }
  }
  if (counts) *counts = std::move(cnt);
  return all;
}

template <class T>
void Comm::scatter(std::span<const T> in, std::span<T> out, int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag =
      nextCollectiveTag(check::CollKind::kScatter, root, out.size_bytes());
  const int p = size();
  obs::Span span("coll.scatter", out.size_bytes());
  LISI_CHECK(root >= 0 && root < p, "scatter: root out of range");
  const std::size_t chunk = out.size();
  if (rank() == root) {
    LISI_CHECK(in.size() == chunk * static_cast<std::size_t>(p),
               "scatter: chunk size mismatch");
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      send(in.subspan(chunk * static_cast<std::size_t>(r), chunk), r, tag);
    }
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(
                               chunk * static_cast<std::size_t>(root)),
              in.begin() + static_cast<std::ptrdiff_t>(
                               chunk * static_cast<std::size_t>(root) + chunk),
              out.begin());
  } else {
    recv(out, root, tag);
  }
}

template <class T>
std::vector<T> Comm::scatterv(std::span<const T> in,
                              std::span<const int> counts, int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag =
      nextCollectiveTag(check::CollKind::kScatterv, root, check::kVariableBytes);
  const int p = size();
  obs::Span span("coll.scatterv", in.size_bytes());
  if (rank() == root) {
    LISI_CHECK(static_cast<int>(counts.size()) == p,
               "scatterv: counts.size() != comm size");
    std::size_t offset = 0;
    std::vector<T> mine;
    for (int r = 0; r < p; ++r) {
      const auto n = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
      LISI_CHECK(offset + n <= in.size(), "scatterv: counts exceed input");
      if (r == root) {
        mine.assign(in.begin() + static_cast<std::ptrdiff_t>(offset),
                    in.begin() + static_cast<std::ptrdiff_t>(offset + n));
      } else {
        send(std::span<const T>(in.data() + offset, n), r, tag);
      }
      offset += n;
    }
    return mine;
  }
  return recvVector<T>(root, tag);
}

}  // namespace lisi::comm
