// Long-integer communicator handles.
//
// The LISI SIDL interface declares `int initialize(in long comm)`: the
// application passes its communicator to the solver component as an opaque
// integer, exactly as Fortran MPI codes pass MPI_Comm integers through
// language boundaries.  This registry provides the conversion both ways
// (the analogue of MPI_Comm_c2f / MPI_Comm_f2c).
#pragma once

#include "comm/comm.hpp"

namespace lisi::comm {

/// Register `comm` and obtain an opaque handle (> 0) for it.  The handle is
/// valid until releaseHandle(); handles are process-global so they can cross
/// component boundaries within a rank.
[[nodiscard]] long registerHandle(const Comm& comm);

/// Look up a registered communicator.  Throws lisi::Error for an unknown
/// handle.
[[nodiscard]] Comm commFromHandle(long handle);

/// Drop a handle from the registry (the communicator itself stays alive as
/// long as other Comm copies exist).
void releaseHandle(long handle);

/// Number of live handles (used by leak-checking tests).
[[nodiscard]] std::size_t liveHandleCount();

}  // namespace lisi::comm
